//===- binary/Module.h - Guest binary module format -------------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Module is a guest executable or shared library: the analogue of an
/// ELF image in the paper's Linux/IA32 setup. It carries everything the
/// persistent cache keys hash (Section 3.2.1): path, program header,
/// sizes, and a modification timestamp — plus the text/data payload, an
/// export symbol table, import entries resolved through GOT slots, and
/// relocation lists (all code addresses in the ISA are absolute, so text
/// immediates and data words holding addresses are rebased at load).
///
/// Loaded layout (single contiguous mapping at a base address B):
///
///   B .. B+textSize()            encoded instructions
///   B+dataStart() .. +DataSize   initialized data (page aligned start)
///   ... BssSize                  zero-initialized data
///
//===----------------------------------------------------------------------===//

#ifndef PCC_BINARY_MODULE_H
#define PCC_BINARY_MODULE_H

#include "isa/Instruction.h"
#include "support/Error.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace pcc {
namespace binary {

/// Guest page size; module sections and load bases are page aligned.
inline constexpr uint32_t PageSize = 4096;

/// Rounds \p Value up to the next multiple of PageSize.
inline uint32_t alignToPage(uint32_t Value) {
  return (Value + PageSize - 1) & ~(PageSize - 1);
}

/// Executable vs shared library.
enum class ModuleKind : uint8_t { Executable, SharedLibrary };

/// An exported function: name plus module-relative text offset.
struct Symbol {
  std::string Name;
  uint32_t Offset = 0;

  bool operator==(const Symbol &Other) const = default;
};

/// An import resolved at load time: the loader looks up \c SymbolName in
/// \c LibraryName and stores the absolute address into the 32-bit data
/// word at \c GotOffset (module-relative offset of the slot within the
/// data section).
struct ImportEntry {
  std::string SymbolName;
  std::string LibraryName;
  uint32_t GotOffset = 0;

  bool operator==(const ImportEntry &Other) const = default;
};

/// A guest binary image.
class Module {
public:
  Module() = default;
  Module(std::string Name, std::string Path, ModuleKind Kind)
      : Name(std::move(Name)), Path(std::move(Path)), Kind(Kind) {}

  const std::string &name() const { return Name; }
  const std::string &path() const { return Path; }
  ModuleKind kind() const { return Kind; }
  bool isExecutable() const { return Kind == ModuleKind::Executable; }

  /// \name Code
  /// @{
  const std::vector<isa::Instruction> &instructions() const {
    return Insts;
  }
  std::vector<isa::Instruction> &instructions() { return Insts; }
  void setInstructions(std::vector<isa::Instruction> NewInsts) {
    Insts = std::move(NewInsts);
  }
  /// Size of the text section in bytes.
  uint32_t textSize() const {
    return static_cast<uint32_t>(Insts.size()) * isa::InstructionSize;
  }
  /// @}

  /// \name Data
  /// @{
  const std::vector<uint8_t> &data() const { return Data; }
  std::vector<uint8_t> &data() { return Data; }
  void setData(std::vector<uint8_t> NewData) { Data = std::move(NewData); }
  uint32_t bssSize() const { return BssSize; }
  void setBssSize(uint32_t Size) { BssSize = Size; }
  /// Module-relative offset where the data section starts.
  uint32_t dataStart() const { return alignToPage(textSize()); }
  /// Total mapping size in bytes (text + data + bss, page aligned).
  uint32_t imageSize() const {
    return alignToPage(dataStart() +
                       static_cast<uint32_t>(Data.size()) + BssSize);
  }
  /// @}

  /// \name Entry point (executables)
  /// @{
  uint32_t entryOffset() const { return EntryOffset; }
  void setEntryOffset(uint32_t Offset) { EntryOffset = Offset; }
  /// @}

  /// \name Symbols and imports
  /// @{
  const std::vector<Symbol> &symbols() const { return Symbols; }
  void addSymbol(std::string SymName, uint32_t Offset) {
    Symbols.push_back(Symbol{std::move(SymName), Offset});
  }
  /// Module-relative text offset of \p SymName, if exported.
  std::optional<uint32_t> findSymbol(const std::string &SymName) const;

  const std::vector<ImportEntry> &imports() const { return Imports; }
  void addImport(std::string SymName, std::string LibName,
                 uint32_t GotOffset) {
    Imports.push_back(
        ImportEntry{std::move(SymName), std::move(LibName), GotOffset});
  }
  /// Library names this module depends on (deduplicated, insertion order).
  std::vector<std::string> dependencyNames() const;
  /// @}

  /// \name Relocations
  /// @{
  /// Marks the instruction at index \p InstIndex as holding a
  /// module-relative address in Imm that must be rebased at load.
  void addTextRelocation(uint32_t InstIndex) {
    TextRelocs.push_back(InstIndex);
  }
  const std::vector<uint32_t> &textRelocations() const {
    return TextRelocs;
  }
  /// Marks the 32-bit data word at data-section offset \p DataOffset as a
  /// module-relative address that must be rebased at load.
  void addDataRelocation(uint32_t DataOffset) {
    DataRelocs.push_back(DataOffset);
  }
  const std::vector<uint32_t> &dataRelocations() const {
    return DataRelocs;
  }
  /// @}

  /// \name Versioning (for key invalidation experiments)
  /// @{
  /// Synthetic modification timestamp (would be mtime on a real system).
  uint64_t modificationTime() const { return ModTime; }
  void setModificationTime(uint64_t Time) { ModTime = Time; }

  /// Marks the module as rebuilt: bumps the timestamp, as a static
  /// compiler or optimizer would (Section 3.2.1).
  void touch() { ++ModTime; }
  /// @}

  /// Hash of the program header (structural metadata: kind, sizes, entry,
  /// symbol/import shape). One of the key ingredients.
  uint64_t programHeaderHash() const;

  /// Hash of the full content (header + code + data + relocations).
  uint64_t contentHash() const;

  /// \name Serialization
  /// @{
  std::vector<uint8_t> serialize() const;
  static ErrorOr<Module> deserialize(const std::vector<uint8_t> &Bytes);
  /// @}

  bool operator==(const Module &Other) const = default;

private:
  std::string Name;
  std::string Path;
  ModuleKind Kind = ModuleKind::Executable;
  std::vector<isa::Instruction> Insts;
  std::vector<uint8_t> Data;
  uint32_t BssSize = 0;
  uint32_t EntryOffset = 0;
  std::vector<Symbol> Symbols;
  std::vector<ImportEntry> Imports;
  std::vector<uint32_t> TextRelocs;
  std::vector<uint32_t> DataRelocs;
  uint64_t ModTime = 1;
};

} // namespace binary
} // namespace pcc

#endif // PCC_BINARY_MODULE_H
