//===- binary/Assembler.h - Textual guest assembly -----------------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A two-pass assembler from a small textual assembly language to a
/// binary::Module, plus the matching module disassembler. Lets guest
/// programs be written by hand (tests, tools, examples) instead of only
/// generated.
///
/// Language summary (one statement per line, `;` starts a comment):
///
///   .module  NAME "PATH"      module identity (default: "a", "/a")
///   .library                  module is a shared library (default:
///                             executable)
///   .entry   LABEL            executable entry point (default: first
///                             instruction)
///   .export  LABEL            export LABEL as a symbol
///   .text / .data             switch section (default .text)
///
///   In .text:
///     LABEL:                  define a code label
///     add  r1, r2, r3         register ALU (sub mul divu and or xor
///                             shl shr sltu seq)
///     addi r1, r2, 5          immediate ALU (muli andi ori xori shli
///                             shri sltiu)
///     ldi  r1, 0x10           load immediate; `ldi r1, @LABEL` loads
///                             the absolute address of a code or data
///                             label (emits a relocation)
///     ld   r1, [r2+8]         load word;  st [r2-4], r3  store word
///     beq  r1, r2, LABEL      conditional branches (bne bltu bgeu)
///     jmp LABEL / jr r1 / call LABEL / callr r1 / ret
///     sys  N / halt / nop
///
///   In .data:
///     LABEL:                  define a data label
///     .word 1 2 0xff          32-bit words
///     .word @LABEL            address of a label (emits a relocation)
///     .byte 1 2 3             raw bytes
///     .space N                N zero bytes
///     .got LABEL "LIB" "SYM"  a GOT slot resolved by the loader to
///                             SYM exported from LIB
///
//===----------------------------------------------------------------------===//

#ifndef PCC_BINARY_ASSEMBLER_H
#define PCC_BINARY_ASSEMBLER_H

#include "binary/Module.h"
#include "support/Error.h"

#include <string>

namespace pcc {
namespace binary {

/// Assembles \p Source into a module. Errors carry 1-based line numbers.
ErrorOr<Module> assemble(const std::string &Source);

/// Renders a module as annotated assembly-like text: header, symbols,
/// disassembled instructions with label/symbol annotations, and a data
/// summary. Round-trip fidelity is not a goal (relocation provenance is
/// shown as comments); readability is.
std::string disassembleModule(const Module &M);

} // namespace binary
} // namespace pcc

#endif // PCC_BINARY_ASSEMBLER_H
