//===- binary/Assembler.cpp --------------------------------------------------===//

#include "binary/Assembler.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <map>
#include <optional>
#include <vector>

using namespace pcc;
using namespace pcc::binary;
using namespace pcc::isa;
using binary::Module;

namespace {

/// Where a label points.
struct Label {
  bool InData = false;
  uint32_t Offset = 0; ///< Instruction index (.text) or byte offset
                       ///< (.data).
};

/// A pending use of a label whose address is patched in pass 2.
struct LabelUse {
  std::string Name;
  unsigned Line = 0;
  /// Instruction index whose Imm receives the address, or (for .word
  /// references) the data offset of the word.
  uint32_t Where = 0;
  bool InData = false;
};

/// Tokenizer state for one line.
class LineParser {
public:
  LineParser(std::string Text, unsigned Line)
      : Text(std::move(Text)), Line(Line) {}

  /// Consumes leading whitespace; true at end of line.
  bool atEnd() {
    while (Pos < Text.size() && std::isspace(Byte(Pos)))
      ++Pos;
    return Pos == Text.size();
  }

  /// Next bare word (identifier / mnemonic / directive / number body).
  ErrorOr<std::string> word() {
    if (atEnd())
      return err("expected a word");
    size_t Start = Pos;
    auto isWordChar = [](char C) {
      return !std::isspace(static_cast<unsigned char>(C)) &&
             C != ',' && C != ':' && C != '[' && C != ']' &&
             C != '+' && C != '-' && C != '"' && C != '@';
    };
    while (Pos < Text.size() && isWordChar(Text[Pos]))
      ++Pos;
    if (Pos == Start)
      return err("expected a word");
    return Text.substr(Start, Pos - Start);
  }

  /// Consumes \p C (after whitespace); error if absent.
  Status expect(char C) {
    if (atEnd() || Text[Pos] != C)
      return err(formatString("expected '%c'", C));
    ++Pos;
    return Status::success();
  }

  /// True if the next character is \p C (consumed when present).
  bool accept(char C) {
    if (!atEnd() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  char peek() { return atEnd() ? '\0' : Text[Pos]; }

  /// Register operand: r0..r15.
  ErrorOr<unsigned> reg() {
    auto W = word();
    if (!W)
      return W.status();
    const std::string &Name = *W;
    if (Name.size() < 2 || Name[0] != 'r')
      return err("expected a register, got '" + Name + "'");
    unsigned Index = 0;
    for (size_t I = 1; I != Name.size(); ++I) {
      if (!std::isdigit(static_cast<unsigned char>(Name[I])))
        return err("expected a register, got '" + Name + "'");
      Index = Index * 10 + (Name[I] - '0');
    }
    if (Index >= NumRegisters)
      return err("register out of range: " + Name);
    return Index;
  }

  /// Numeric immediate: decimal (optionally negative), 0x hex, or a
  /// character literal 'c'.
  ErrorOr<uint32_t> number() {
    if (atEnd())
      return err("expected a number");
    if (Text[Pos] == '\'') {
      if (Pos + 2 >= Text.size() || Text[Pos + 2] != '\'')
        return err("malformed character literal");
      uint32_t Value = static_cast<uint8_t>(Text[Pos + 1]);
      Pos += 3;
      return Value;
    }
    bool Negative = accept('-');
    auto W = word();
    if (!W)
      return W.status();
    const std::string &Digits = *W;
    uint64_t Value = 0;
    if (Digits.size() > 2 && Digits[0] == '0' &&
        (Digits[1] == 'x' || Digits[1] == 'X')) {
      for (size_t I = 2; I != Digits.size(); ++I) {
        int Nibble = hexValue(Digits[I]);
        if (Nibble < 0)
          return err("bad hex number: " + Digits);
        Value = Value * 16 + static_cast<unsigned>(Nibble);
      }
    } else {
      for (char C : Digits) {
        if (!std::isdigit(static_cast<unsigned char>(C)))
          return err("bad number: " + Digits);
        Value = Value * 10 + static_cast<unsigned>(C - '0');
      }
    }
    uint32_t Result = static_cast<uint32_t>(Value);
    return Negative ? static_cast<uint32_t>(-static_cast<int64_t>(Result))
                    : Result;
  }

  /// Quoted string.
  ErrorOr<std::string> string() {
    if (atEnd() || Text[Pos] != '"')
      return err("expected a quoted string");
    size_t End = Text.find('"', Pos + 1);
    if (End == std::string::npos)
      return err("unterminated string");
    std::string Value = Text.substr(Pos + 1, End - Pos - 1);
    Pos = End + 1;
    return Value;
  }

  Status err(const std::string &Message) const {
    return Status::error(ErrorCode::InvalidFormat,
                         formatString("line %u: %s", Line,
                                      Message.c_str()));
  }

private:
  static int hexValue(char C) {
    if (C >= '0' && C <= '9')
      return C - '0';
    if (C >= 'a' && C <= 'f')
      return C - 'a' + 10;
    if (C >= 'A' && C <= 'F')
      return C - 'A' + 10;
    return -1;
  }
  unsigned char Byte(size_t I) const {
    return static_cast<unsigned char>(Text[I]);
  }

  std::string Text;
  unsigned Line;
  size_t Pos = 0;
};

/// The assembler proper: accumulates sections, labels and fixups.
class Assembler {
public:
  ErrorOr<Module> run(const std::string &Source);

private:
  Status parseLine(const std::string &Text, unsigned Line);
  Status parseDirective(LineParser &P, const std::string &Directive,
                        unsigned Line);
  Status parseInstruction(LineParser &P, const std::string &Mnemonic,
                          unsigned Line);

  /// Operand that is either a number or @label / bare label (for branch
  /// targets). Returns the immediate; records a fixup when a label was
  /// referenced.
  ErrorOr<uint32_t> immOrLabel(LineParser &P, unsigned Line,
                               bool BareLabelAllowed);

  /// [rN+off] memory operand.
  struct MemOperand {
    unsigned Base = 0;
    uint32_t Offset = 0;
  };
  ErrorOr<MemOperand> memOperand(LineParser &P);

  Status defineLabel(const std::string &Name, unsigned Line);
  Status resolveFixups(Module &M);

  std::string Name = "a";
  std::string Path = "/a";
  binary::ModuleKind Kind = binary::ModuleKind::Executable;
  std::optional<std::string> EntryLabel;
  bool InData = false;

  std::vector<Instruction> Text;
  std::vector<uint8_t> Data;
  std::map<std::string, Label> Labels;
  std::vector<LabelUse> Uses;
  std::vector<std::string> Exports;
  std::vector<unsigned> ExportLines;
  struct GotSlot {
    uint32_t DataOffset;
    std::string Lib;
    std::string Sym;
  };
  std::vector<GotSlot> GotSlots;
};

Status Assembler::defineLabel(const std::string &Name, unsigned Line) {
  if (Labels.count(Name))
    return Status::error(ErrorCode::InvalidFormat,
                         formatString("line %u: duplicate label '%s'",
                                      Line, Name.c_str()));
  Label L;
  L.InData = InData;
  L.Offset = InData ? static_cast<uint32_t>(Data.size())
                    : static_cast<uint32_t>(Text.size());
  Labels.emplace(Name, L);
  return Status::success();
}

ErrorOr<uint32_t> Assembler::immOrLabel(LineParser &P, unsigned Line,
                                        bool BareLabelAllowed) {
  bool IsLabel = P.accept('@');
  if (!IsLabel && BareLabelAllowed && !std::isdigit(P.peek()) &&
      P.peek() != '-' && P.peek() != '\'')
    IsLabel = true;
  if (!IsLabel)
    return P.number();
  auto LabelName = P.word();
  if (!LabelName)
    return LabelName.status();
  Uses.push_back(LabelUse{*LabelName, Line,
                          static_cast<uint32_t>(Text.size()),
                          /*InData=*/false});
  return 0u; // Patched in pass 2.
}

ErrorOr<Assembler::MemOperand> Assembler::memOperand(LineParser &P) {
  Status S = P.expect('[');
  if (!S.ok())
    return S;
  auto Base = P.reg();
  if (!Base)
    return Base.status();
  MemOperand Operand;
  Operand.Base = *Base;
  if (P.accept('+')) {
    auto Offset = P.number();
    if (!Offset)
      return Offset.status();
    Operand.Offset = *Offset;
  } else if (P.accept('-')) {
    auto Offset = P.number();
    if (!Offset)
      return Offset.status();
    Operand.Offset = static_cast<uint32_t>(
        -static_cast<int64_t>(*Offset));
  }
  S = P.expect(']');
  if (!S.ok())
    return S;
  return Operand;
}

Status Assembler::parseDirective(LineParser &P,
                                 const std::string &Directive,
                                 unsigned Line) {
  auto lineErr = [&](const std::string &Message) {
    return Status::error(ErrorCode::InvalidFormat,
                         formatString("line %u: %s", Line,
                                      Message.c_str()));
  };

  if (Directive == ".module") {
    auto N = P.word();
    if (!N)
      return N.status();
    Name = *N;
    auto Quoted = P.string();
    if (!Quoted)
      return Quoted.status();
    Path = *Quoted;
    return Status::success();
  }
  if (Directive == ".library") {
    Kind = binary::ModuleKind::SharedLibrary;
    return Status::success();
  }
  if (Directive == ".entry") {
    auto L = P.word();
    if (!L)
      return L.status();
    EntryLabel = *L;
    return Status::success();
  }
  if (Directive == ".export") {
    auto L = P.word();
    if (!L)
      return L.status();
    Exports.push_back(*L);
    ExportLines.push_back(Line);
    return Status::success();
  }
  if (Directive == ".text") {
    InData = false;
    return Status::success();
  }
  if (Directive == ".data") {
    InData = true;
    return Status::success();
  }
  if (Directive == ".word") {
    if (!InData)
      return lineErr(".word outside .data");
    while (!P.atEnd()) {
      uint32_t Value = 0;
      if (P.accept('@')) {
        auto LabelName = P.word();
        if (!LabelName)
          return LabelName.status();
        Uses.push_back(LabelUse{*LabelName, Line,
                                static_cast<uint32_t>(Data.size()),
                                /*InData=*/true});
      } else {
        auto Number = P.number();
        if (!Number)
          return Number.status();
        Value = *Number;
      }
      for (unsigned I = 0; I != 4; ++I)
        Data.push_back(static_cast<uint8_t>(Value >> (8 * I)));
    }
    return Status::success();
  }
  if (Directive == ".byte") {
    if (!InData)
      return lineErr(".byte outside .data");
    while (!P.atEnd()) {
      auto Number = P.number();
      if (!Number)
        return Number.status();
      Data.push_back(static_cast<uint8_t>(*Number));
    }
    return Status::success();
  }
  if (Directive == ".space") {
    if (!InData)
      return lineErr(".space outside .data");
    auto Count = P.number();
    if (!Count)
      return Count.status();
    Data.insert(Data.end(), *Count, 0);
    return Status::success();
  }
  if (Directive == ".got") {
    if (!InData)
      return lineErr(".got outside .data");
    auto LabelName = P.word();
    if (!LabelName)
      return LabelName.status();
    Status S = defineLabel(*LabelName, Line);
    if (!S.ok())
      return S;
    auto Lib = P.string();
    if (!Lib)
      return Lib.status();
    auto Sym = P.string();
    if (!Sym)
      return Sym.status();
    GotSlots.push_back(
        GotSlot{static_cast<uint32_t>(Data.size()), *Lib, *Sym});
    Data.insert(Data.end(), 4, 0);
    return Status::success();
  }
  return lineErr("unknown directive " + Directive);
}

Status Assembler::parseInstruction(LineParser &P,
                                   const std::string &Mnemonic,
                                   unsigned Line) {
  auto lineErr = [&](const std::string &Message) {
    return Status::error(ErrorCode::InvalidFormat,
                         formatString("line %u: %s", Line,
                                      Message.c_str()));
  };
  if (InData)
    return lineErr("instruction outside .text");

  static const std::map<std::string, Opcode> RegOps = {
      {"add", Opcode::Add},   {"sub", Opcode::Sub},
      {"mul", Opcode::Mul},   {"divu", Opcode::Divu},
      {"and", Opcode::And},   {"or", Opcode::Or},
      {"xor", Opcode::Xor},   {"shl", Opcode::Shl},
      {"shr", Opcode::Shr},   {"sltu", Opcode::Sltu},
      {"seq", Opcode::Seq}};
  static const std::map<std::string, Opcode> ImmOps = {
      {"addi", Opcode::Addi},   {"muli", Opcode::Muli},
      {"andi", Opcode::Andi},   {"ori", Opcode::Ori},
      {"xori", Opcode::Xori},   {"shli", Opcode::Shli},
      {"shri", Opcode::Shri},   {"sltiu", Opcode::Sltiu}};
  static const std::map<std::string, Opcode> BranchOps = {
      {"beq", Opcode::Beq},
      {"bne", Opcode::Bne},
      {"bltu", Opcode::Bltu},
      {"bgeu", Opcode::Bgeu}};

  if (auto It = RegOps.find(Mnemonic); It != RegOps.end()) {
    auto Rd = P.reg();
    if (!Rd)
      return Rd.status();
    if (Status S = P.expect(','); !S.ok())
      return S;
    auto Rs1 = P.reg();
    if (!Rs1)
      return Rs1.status();
    if (Status S = P.expect(','); !S.ok())
      return S;
    auto Rs2 = P.reg();
    if (!Rs2)
      return Rs2.status();
    Text.push_back(makeAlu(It->second, *Rd, *Rs1, *Rs2));
    return Status::success();
  }
  if (auto It = ImmOps.find(Mnemonic); It != ImmOps.end()) {
    auto Rd = P.reg();
    if (!Rd)
      return Rd.status();
    if (Status S = P.expect(','); !S.ok())
      return S;
    auto Rs1 = P.reg();
    if (!Rs1)
      return Rs1.status();
    if (Status S = P.expect(','); !S.ok())
      return S;
    auto Imm = P.number();
    if (!Imm)
      return Imm.status();
    Text.push_back(makeAluImm(It->second, *Rd, *Rs1, *Imm));
    return Status::success();
  }
  if (auto It = BranchOps.find(Mnemonic); It != BranchOps.end()) {
    auto Rs1 = P.reg();
    if (!Rs1)
      return Rs1.status();
    if (Status S = P.expect(','); !S.ok())
      return S;
    auto Rs2 = P.reg();
    if (!Rs2)
      return Rs2.status();
    if (Status S = P.expect(','); !S.ok())
      return S;
    auto Target = immOrLabel(*&P, Line, /*BareLabelAllowed=*/true);
    if (!Target)
      return Target.status();
    Text.push_back(makeBranch(It->second, *Rs1, *Rs2, *Target));
    return Status::success();
  }

  if (Mnemonic == "ldi") {
    auto Rd = P.reg();
    if (!Rd)
      return Rd.status();
    if (Status S = P.expect(','); !S.ok())
      return S;
    auto Imm = immOrLabel(P, Line, /*BareLabelAllowed=*/false);
    if (!Imm)
      return Imm.status();
    Text.push_back(makeLdi(*Rd, *Imm));
    return Status::success();
  }
  if (Mnemonic == "ld") {
    auto Rd = P.reg();
    if (!Rd)
      return Rd.status();
    if (Status S = P.expect(','); !S.ok())
      return S;
    auto Mem = memOperand(P);
    if (!Mem)
      return Mem.status();
    Text.push_back(makeLoad(*Rd, Mem->Base,
                            static_cast<int32_t>(Mem->Offset)));
    return Status::success();
  }
  if (Mnemonic == "st") {
    auto Mem = memOperand(P);
    if (!Mem)
      return Mem.status();
    if (Status S = P.expect(','); !S.ok())
      return S;
    auto Rs = P.reg();
    if (!Rs)
      return Rs.status();
    Text.push_back(makeStore(Mem->Base,
                             static_cast<int32_t>(Mem->Offset), *Rs));
    return Status::success();
  }
  if (Mnemonic == "jmp" || Mnemonic == "call") {
    auto Target = immOrLabel(P, Line, /*BareLabelAllowed=*/true);
    if (!Target)
      return Target.status();
    Text.push_back(Mnemonic == "jmp" ? makeJmp(*Target)
                                     : makeCall(*Target));
    return Status::success();
  }
  if (Mnemonic == "jr" || Mnemonic == "callr") {
    auto Rs = P.reg();
    if (!Rs)
      return Rs.status();
    Text.push_back(Mnemonic == "jr" ? makeJr(*Rs) : makeCallr(*Rs));
    return Status::success();
  }
  if (Mnemonic == "ret") {
    Text.push_back(makeRet());
    return Status::success();
  }
  if (Mnemonic == "halt") {
    Text.push_back(makeHalt());
    return Status::success();
  }
  if (Mnemonic == "nop") {
    Text.push_back(makeNop());
    return Status::success();
  }
  if (Mnemonic == "sys") {
    auto Number = P.number();
    if (!Number)
      return Number.status();
    Text.push_back(makeSys(*Number));
    return Status::success();
  }
  return lineErr("unknown mnemonic '" + Mnemonic + "'");
}

Status Assembler::parseLine(const std::string &RawText, unsigned Line) {
  // Strip comments.
  std::string Stripped = RawText.substr(0, RawText.find(';'));
  LineParser P(Stripped, Line);
  if (P.atEnd())
    return Status::success();

  auto First = P.word();
  if (!First)
    return First.status();

  // Label definitions: one or more "name:" prefixes.
  std::string Token = *First;
  while (P.accept(':')) {
    Status S = defineLabel(Token, Line);
    if (!S.ok())
      return S;
    if (P.atEnd())
      return Status::success();
    auto NextWord = P.word();
    if (!NextWord)
      return NextWord.status();
    Token = *NextWord;
  }

  if (!Token.empty() && Token[0] == '.')
    return parseDirective(P, Token, Line);
  Status S = parseInstruction(P, Token, Line);
  if (!S.ok())
    return S;
  if (!P.atEnd())
    return Status::error(ErrorCode::InvalidFormat,
                         formatString("line %u: trailing operands",
                                      Line));
  return Status::success();
}

Status Assembler::resolveFixups(Module &M) {
  uint32_t DataStart = M.dataStart();
  auto addressOf = [&](const Label &L) {
    return L.InData ? DataStart + L.Offset
                    : L.Offset * InstructionSize;
  };

  for (const LabelUse &Use : Uses) {
    auto It = Labels.find(Use.Name);
    if (It == Labels.end())
      return Status::error(ErrorCode::NotFound,
                           formatString("line %u: undefined label '%s'",
                                        Use.Line, Use.Name.c_str()));
    uint32_t Address = addressOf(It->second);
    if (Use.InData) {
      for (unsigned I = 0; I != 4; ++I)
        M.data()[Use.Where + I] =
            static_cast<uint8_t>(Address >> (8 * I));
      M.addDataRelocation(Use.Where);
    } else {
      M.instructions()[Use.Where].Imm = Address;
      M.addTextRelocation(Use.Where);
    }
  }

  for (size_t I = 0; I != Exports.size(); ++I) {
    auto It = Labels.find(Exports[I]);
    if (It == Labels.end() || It->second.InData)
      return Status::error(
          ErrorCode::NotFound,
          formatString("line %u: cannot export '%s': not a code label",
                       ExportLines[I], Exports[I].c_str()));
    M.addSymbol(Exports[I], It->second.Offset * InstructionSize);
  }

  if (EntryLabel) {
    auto It = Labels.find(*EntryLabel);
    if (It == Labels.end() || It->second.InData)
      return Status::error(ErrorCode::NotFound,
                           ".entry label not found: " + *EntryLabel);
    M.setEntryOffset(It->second.Offset * InstructionSize);
  }
  return Status::success();
}

ErrorOr<Module> Assembler::run(const std::string &Source) {
  unsigned Line = 0;
  size_t Pos = 0;
  while (Pos <= Source.size()) {
    size_t End = Source.find('\n', Pos);
    if (End == std::string::npos)
      End = Source.size();
    ++Line;
    Status S = parseLine(Source.substr(Pos, End - Pos), Line);
    if (!S.ok())
      return S;
    Pos = End + 1;
  }

  Module M(Name, Path, Kind);
  M.setInstructions(std::move(Text));
  M.setData(std::move(Data));
  for (const GotSlot &Slot : GotSlots)
    M.addImport(Slot.Sym, Slot.Lib, Slot.DataOffset);
  Status S = resolveFixups(M);
  if (!S.ok())
    return S;
  return M;
}

} // namespace

ErrorOr<Module> pcc::binary::assemble(const std::string &Source) {
  Assembler A;
  return A.run(Source);
}

std::string pcc::binary::disassembleModule(const Module &M) {
  std::string Out;
  Out += formatString("; module %s (\"%s\") %s\n", M.name().c_str(),
                      M.path().c_str(),
                      M.isExecutable() ? "executable" : "library");
  Out += formatString("; text %u bytes, data %zu bytes, bss %u bytes, "
                      "entry +0x%x, mtime %llu\n",
                      M.textSize(), M.data().size(), M.bssSize(),
                      M.entryOffset(),
                      (unsigned long long)M.modificationTime());
  for (const binary::ImportEntry &Import : M.imports())
    Out += formatString("; import %s from %s -> data+0x%x\n",
                        Import.SymbolName.c_str(),
                        Import.LibraryName.c_str(), Import.GotOffset);

  // Symbol and relocation annotations by instruction index.
  std::map<uint32_t, std::string> SymbolAt;
  for (const binary::Symbol &Sym : M.symbols())
    SymbolAt[Sym.Offset / InstructionSize] = Sym.Name;
  std::vector<uint32_t> Relocs = M.textRelocations();
  std::sort(Relocs.begin(), Relocs.end());

  const auto &Insts = M.instructions();
  for (uint32_t I = 0; I != Insts.size(); ++I) {
    if (auto It = SymbolAt.find(I); It != SymbolAt.end())
      Out += It->second + ":\n";
    bool Relocated =
        std::binary_search(Relocs.begin(), Relocs.end(), I);
    Out += formatString("  %06x:  %-28s%s\n", I * InstructionSize,
                        Insts[I].toString().c_str(),
                        Relocated ? " ; reloc" : "");
  }
  if (!M.data().empty()) {
    Out += formatString(".data  ; %zu bytes at +0x%x\n",
                        M.data().size(), M.dataStart());
    for (uint32_t Offset : M.dataRelocations())
      Out += formatString("  ; reloc word at data+0x%x\n", Offset);
  }
  return Out;
}
