//===- binary/Module.cpp --------------------------------------------------===//

#include "binary/Module.h"

#include "support/ByteStream.h"
#include "support/Hashing.h"

#include <algorithm>

using namespace pcc;
using namespace pcc::binary;

std::optional<uint32_t> Module::findSymbol(const std::string &SymName) const {
  for (const Symbol &Sym : Symbols)
    if (Sym.Name == SymName)
      return Sym.Offset;
  return std::nullopt;
}

std::vector<std::string> Module::dependencyNames() const {
  std::vector<std::string> Names;
  for (const ImportEntry &Import : Imports)
    if (std::find(Names.begin(), Names.end(), Import.LibraryName) ==
        Names.end())
      Names.push_back(Import.LibraryName);
  return Names;
}

uint64_t Module::programHeaderHash() const {
  uint64_t Hash = fnv1a64(Name);
  Hash = fnv1a64(Path, Hash);
  Hash = fnv1a64U64(static_cast<uint64_t>(Kind), Hash);
  Hash = fnv1a64U64(textSize(), Hash);
  Hash = fnv1a64U64(Data.size(), Hash);
  Hash = fnv1a64U64(BssSize, Hash);
  Hash = fnv1a64U64(EntryOffset, Hash);
  Hash = fnv1a64U64(Symbols.size(), Hash);
  Hash = fnv1a64U64(Imports.size(), Hash);
  return Hash;
}

uint64_t Module::contentHash() const {
  uint64_t Hash = programHeaderHash();
  for (const isa::Instruction &Inst : Insts) {
    auto Bytes = Inst.encode();
    Hash = fnv1a64Bytes(Bytes.data(), Bytes.size(), Hash);
  }
  Hash = fnv1a64Bytes(Data.data(), Data.size(), Hash);
  for (const Symbol &Sym : Symbols) {
    Hash = fnv1a64(Sym.Name, Hash);
    Hash = fnv1a64U64(Sym.Offset, Hash);
  }
  for (const ImportEntry &Import : Imports) {
    Hash = fnv1a64(Import.SymbolName, Hash);
    Hash = fnv1a64(Import.LibraryName, Hash);
    Hash = fnv1a64U64(Import.GotOffset, Hash);
  }
  for (uint32_t Reloc : TextRelocs)
    Hash = fnv1a64U64(Reloc, Hash);
  for (uint32_t Reloc : DataRelocs)
    Hash = fnv1a64U64(Reloc, Hash);
  return Hash;
}

namespace {
constexpr uint32_t ModuleMagic = 0x4d434350; // "PCCM"
constexpr uint32_t ModuleVersion = 1;
} // namespace

std::vector<uint8_t> Module::serialize() const {
  ByteWriter Writer;
  Writer.writeU32(ModuleMagic);
  Writer.writeU32(ModuleVersion);
  Writer.writeString(Name);
  Writer.writeString(Path);
  Writer.writeU8(static_cast<uint8_t>(Kind));
  Writer.writeU64(ModTime);
  Writer.writeU32(EntryOffset);
  Writer.writeU32(BssSize);

  Writer.writeU32(static_cast<uint32_t>(Insts.size()));
  for (const isa::Instruction &Inst : Insts) {
    auto Bytes = Inst.encode();
    Writer.writeBytes(Bytes.data(), Bytes.size());
  }
  Writer.writeBlob(Data);

  Writer.writeU32(static_cast<uint32_t>(Symbols.size()));
  for (const Symbol &Sym : Symbols) {
    Writer.writeString(Sym.Name);
    Writer.writeU32(Sym.Offset);
  }
  Writer.writeU32(static_cast<uint32_t>(Imports.size()));
  for (const ImportEntry &Import : Imports) {
    Writer.writeString(Import.SymbolName);
    Writer.writeString(Import.LibraryName);
    Writer.writeU32(Import.GotOffset);
  }
  Writer.writeU32(static_cast<uint32_t>(TextRelocs.size()));
  for (uint32_t Reloc : TextRelocs)
    Writer.writeU32(Reloc);
  Writer.writeU32(static_cast<uint32_t>(DataRelocs.size()));
  for (uint32_t Reloc : DataRelocs)
    Writer.writeU32(Reloc);
  return Writer.take();
}

ErrorOr<Module> Module::deserialize(const std::vector<uint8_t> &Bytes) {
  ByteReader Reader(Bytes);
  if (Reader.readU32() != ModuleMagic)
    return Status::error(ErrorCode::InvalidFormat, "bad module magic");
  if (Reader.readU32() != ModuleVersion)
    return Status::error(ErrorCode::VersionMismatch,
                         "unsupported module version");
  Module Mod;
  Mod.Name = Reader.readString();
  Mod.Path = Reader.readString();
  uint8_t KindByte = Reader.readU8();
  if (KindByte > static_cast<uint8_t>(ModuleKind::SharedLibrary))
    return Status::error(ErrorCode::InvalidFormat, "bad module kind");
  Mod.Kind = static_cast<ModuleKind>(KindByte);
  Mod.ModTime = Reader.readU64();
  Mod.EntryOffset = Reader.readU32();
  Mod.BssSize = Reader.readU32();

  uint32_t NumInsts = Reader.readU32();
  if (Reader.remaining() < static_cast<size_t>(NumInsts) *
                               isa::InstructionSize)
    return Status::error(ErrorCode::InvalidFormat, "truncated text");
  Mod.Insts.reserve(NumInsts);
  for (uint32_t I = 0; I != NumInsts; ++I) {
    uint8_t Raw[isa::InstructionSize];
    Reader.readBytes(Raw, sizeof(Raw));
    auto Inst = isa::Instruction::decode(Raw);
    if (!Inst)
      return Inst.status();
    Mod.Insts.push_back(*Inst);
  }
  Mod.Data = Reader.readBlob();

  uint32_t NumSymbols = Reader.readU32();
  for (uint32_t I = 0; I != NumSymbols && !Reader.failed(); ++I) {
    std::string SymName = Reader.readString();
    uint32_t Offset = Reader.readU32();
    Mod.Symbols.push_back(Symbol{std::move(SymName), Offset});
  }
  uint32_t NumImports = Reader.readU32();
  for (uint32_t I = 0; I != NumImports && !Reader.failed(); ++I) {
    std::string SymName = Reader.readString();
    std::string LibName = Reader.readString();
    uint32_t GotOffset = Reader.readU32();
    Mod.Imports.push_back(
        ImportEntry{std::move(SymName), std::move(LibName), GotOffset});
  }
  uint32_t NumTextRelocs = Reader.readU32();
  for (uint32_t I = 0; I != NumTextRelocs && !Reader.failed(); ++I)
    Mod.TextRelocs.push_back(Reader.readU32());
  uint32_t NumDataRelocs = Reader.readU32();
  for (uint32_t I = 0; I != NumDataRelocs && !Reader.failed(); ++I)
    Mod.DataRelocs.push_back(Reader.readU32());

  if (Reader.failed())
    return Status::error(ErrorCode::InvalidFormat,
                         "truncated module image");
  return Mod;
}
