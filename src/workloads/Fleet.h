//===- workloads/Fleet.h - Fleet-scale cache reuse simulation ---*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulates a fleet of machines sharing one remote (L2) cache tier:
/// every machine keeps a private L1 store across rounds and, in tiered
/// mode, reads through / writes through a single shared L2 — the
/// paper's inter-application database lifted to a population of
/// desktops. Each round every machine runs one application drawn from a
/// Zipf popularity distribution; application versions are staggered
/// across the fleet (a rolling upgrade), so version-skewed machines
/// exercise the inter-application findCompatible path against caches
/// the rest of the fleet published.
///
/// The simulation reports per-round cache-hit convergence, the modeled
/// remote-link traffic, and time-to-first-trace percentiles — the
/// numbers that justify (or refute) a shared tier: translations any one
/// machine produced should make every other machine's cold start warm.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_WORKLOADS_FLEET_H
#define PCC_WORKLOADS_FLEET_H

#include "persist/TieredStore.h"
#include "support/ThreadPool.h"

#include <cstdint>
#include <vector>

namespace pcc {
namespace workloads {

/// Fleet simulation shape and knobs.
struct FleetOptions {
  uint32_t Machines = 1000; ///< Simulated machines (private L1 each).
  uint32_t Rounds = 4;      ///< Runs per machine (one app draw per round).
  uint32_t Apps = 6;        ///< Distinct applications in the catalog.
  /// Concurrently deployed versions of each app. Versions differ in
  /// application-local code only (the lookup key changes, the shared
  /// libraries do not), so a skewed machine's first run must adopt a
  /// donor cache via findCompatible to reuse the library translations.
  uint32_t AppVersions = 3;
  uint32_t Libraries = 6;   ///< Shared libraries, identical fleet-wide.
  /// Library size. The defaults make one application's cold translation
  /// cost several remote fetches — the regime where a shared tier pays
  /// (GUI startup in the paper is dominated by cold library code).
  uint32_t RegionsPerLibrary = 20;
  /// Zipf exponent of app popularity (higher = more skew; the head app
  /// dominates and converges first).
  double ZipfS = 1.1;
  uint64_t Seed = 1;
  /// With a shared L2 (TieredStore per machine over one remote store);
  /// off, every machine is L1-only — the no-L2 baseline.
  bool WithL2 = true;
  /// Finalize-time AOT optimization tier on every machine's runs: hot
  /// traces are promoted (validator-proved, certificate-emitting), so
  /// later rounds prime promoted bodies and the proof-work ledger
  /// (CertsChecked / CertChecksFailed / ProofsReplayed) fills in. The
  /// fleet never enables ValidateSemantic — certificate checks are the
  /// only prime-time verification, exactly the deployment the trusted
  /// checker exists for.
  bool OptTier = false;
  /// Adversarial injection: between rounds, flip one bit in every
  /// validation certificate stored in the shared L2 tier. Every
  /// tampered certificate must be rejected by the trusted checker at
  /// its next prime (never falsely accepted) and its body re-proved by
  /// the full validator — the soundness property the simulation gates
  /// on.
  bool TamperCerts = false;
  /// Tier policy for every machine's store (quotas, modeled remote
  /// charges, breaker) in tiered mode.
  persist::TieredOptions Tier;
  /// Machines of a round run in parallel across this pool (null:
  /// sequential). Sessions themselves run synchronously — the pool
  /// models fleet concurrency, not per-machine pipelining.
  support::ThreadPool *Pool = nullptr;
};

/// One round's aggregate over every machine.
struct FleetRound {
  uint64_t Runs = 0;
  uint64_t CacheHits = 0; ///< Runs primed from some cache (own or donor).
  double HitRate = 0.0;
  double CumulativeHitRate = 0.0; ///< Over all rounds so far.
  uint64_t L1Hits = 0;            ///< Primes served by local tiers.
  uint64_t L2Hits = 0;            ///< Primes served by read-through.
  uint64_t RemoteFetches = 0;
  uint64_t RemoteFetchBytes = 0;
  uint64_t RemotePublishBytes = 0;
  uint64_t TracesCompiled = 0; ///< Fleet-wide translation work done.
  /// \name Proof-work ledger
  /// Prime-time verification work across the round's machines: how
  /// many promoted installs the trusted checker served, how many
  /// certificates it rejected, and how many bodies needed the full
  /// symbolic prover (rejected or certificate-less).
  /// @{
  uint64_t CertsChecked = 0;
  uint64_t CertChecksFailed = 0;
  uint64_t ProofsReplayed = 0;
  /// @}
  /// Modeled time-to-first-trace of the interactive phase: every cycle
  /// from engine start until the startup input is drained and the app's
  /// first interactive trace can run — key hashing, cache open, remote
  /// fetches, translation or materialization, and the startup
  /// execution itself. Median and 99th percentile across machines.
  uint64_t TtftP50 = 0;
  uint64_t TtftP99 = 0;
};

/// Whole-simulation outcome.
struct FleetReport {
  std::vector<FleetRound> Rounds;
  uint64_t TotalRuns = 0;
  uint64_t TotalHits = 0;
  /// Final shared-tier footprint (0 in the no-L2 baseline).
  uint64_t L2Files = 0;
  uint64_t L2Bytes = 0;
  uint64_t RemoteFailures = 0; ///< Absorbed L2 failures, fleet-wide.
  /// Whether the cumulative hit rate never decreased round over round —
  /// the convergence property the shared tier exists to provide.
  bool MonotoneConvergence = true;
  /// \name Proof-work ledger totals
  /// @{
  uint64_t CertsChecked = 0;
  uint64_t CertChecksFailed = 0;
  uint64_t ProofsReplayed = 0;
  /// Certificates the tamper pass bit-flipped in L2 (Opts.TamperCerts).
  uint64_t CertsTampered = 0;
  /// L2->L1 fill-time certificate telemetry, fleet-wide.
  uint64_t CertFillChecks = 0;
  uint64_t CertFillRejects = 0;
  /// Of the promotion installs that needed prime-time verification,
  /// the fraction the trusted checker served without the prover:
  /// (CertsChecked - CertChecksFailed) / (that + ProofsReplayed).
  /// 1.0 when no verification work happened at all.
  double certServedRatio() const {
    uint64_t Served = CertsChecked - CertChecksFailed;
    uint64_t Work = Served + ProofsReplayed;
    return Work == 0 ? 1.0 : double(Served) / double(Work);
  }
  /// @}
};

/// Runs the simulation. Deterministic for a fixed (options, pool-less)
/// configuration; with a pool, per-round aggregates may vary slightly in
/// tiered mode because machines racing within a round publish to L2 in
/// host order, but cumulative convergence holds regardless.
ErrorOr<FleetReport> runFleet(const FleetOptions &Opts);

} // namespace workloads
} // namespace pcc

#endif // PCC_WORKLOADS_FLEET_H
