//===- workloads/Coverage.h - Code-coverage design and measurement -*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two halves of the coverage story:
///
///   1. CoverageDesigner — fits per-input region sets to a target
///      pairwise code-coverage matrix (Table 3 of the paper) by
///      searching over "atom" weights: an atom is a group of regions
///      executed by exactly one subset of inputs; coverage(i by j) is
///      then a ratio of atom-weight sums. Local search over the 2^n - 1
///      atom weights gets within a few percent of any feasible matrix.
///
///   2. Measurement — code coverage between two runs, computed from the
///      guest address intervals their compiled traces cover, exactly the
///      quantity the paper reports ("the amount of static code
///      corresponding to an input also executed by other inputs").
///
//===----------------------------------------------------------------------===//

#ifndef PCC_WORKLOADS_COVERAGE_H
#define PCC_WORKLOADS_COVERAGE_H

#include "dbi/Engine.h"
#include "loader/Loader.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pcc {
namespace workloads {

/// A pairwise coverage matrix; entry [i][j] is the fraction of input i's
/// code also executed by input j (diagonal = 1).
using CoverageMatrix = std::vector<std::vector<double>>;

/// Result of fitting region sets to a coverage matrix.
struct CoverageDesign {
  /// Region indices (into a shared universe 0..NumRegions-1) executed by
  /// each input.
  std::vector<std::vector<uint32_t>> InputRegions;
  uint32_t NumRegions = 0;
  /// The matrix the design actually achieves.
  CoverageMatrix Achieved;
  /// Root-mean-square error vs. the target off-diagonal entries.
  double RmsError = 0;
};

/// Fits region sets for |Target| inputs to the target matrix, using
/// roughly \p RegionsPerInput regions per input (all regions weighted
/// equally). Deterministic for a fixed \p Seed.
CoverageDesign designCoverage(const CoverageMatrix &Target,
                              uint32_t RegionsPerInput, uint64_t Seed);

/// Computes the coverage matrix achieved by a design (unit-weight
/// regions). Exposed for tests.
CoverageMatrix
coverageOfSets(const std::vector<std::vector<uint32_t>> &Sets);

/// Sorted, disjoint guest address intervals [first, second).
using AddressIntervals = std::vector<std::pair<uint32_t, uint32_t>>;

/// Address intervals covered by the traces resident in \p Cache —
/// the static code this run executed under the engine.
AddressIntervals coveredCode(const dbi::CodeCache &Cache);

/// Total bytes covered.
uint64_t intervalBytes(const AddressIntervals &Intervals);

/// Bytes in the intersection of two interval sets.
uint64_t intervalIntersectionBytes(const AddressIntervals &A,
                                   const AddressIntervals &B);

/// Fraction of \p Of's code also present in \p By (the paper's
/// "coverage of input Of by input By"). Returns 1 for empty \p Of.
double codeCoverage(const AddressIntervals &Of,
                    const AddressIntervals &By);

/// Coverage intervals split per module and rebased to module-relative
/// offsets, keyed by module name. Needed to compare library coverage
/// across processes that load the same library at different addresses
/// (Table 4 of the paper). Intervals outside every module are dropped.
std::map<std::string, AddressIntervals>
moduleRelativeCoverage(const AddressIntervals &Coverage,
                       const std::vector<loader::LoadedModule> &Modules);

/// Coverage fraction across per-module interval maps: bytes of \p Of
/// found in \p By (matching module names, module-relative) over total
/// bytes of \p Of.
double moduleRelativeCodeCoverage(
    const std::map<std::string, AddressIntervals> &Of,
    const std::map<std::string, AddressIntervals> &By);

} // namespace workloads
} // namespace pcc

#endif // PCC_WORKLOADS_COVERAGE_H
