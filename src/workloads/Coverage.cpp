//===- workloads/Coverage.cpp ---------------------------------------------===//

#include "workloads/Coverage.h"

#include "support/Random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace pcc;
using namespace pcc::workloads;

namespace {

/// Coverage matrix induced by atom weights: atom S (bitmask over inputs)
/// holds W[S] regions; coverage(i by j) = sum of atoms containing both /
/// sum of atoms containing i.
CoverageMatrix matrixFromWeights(const std::vector<uint32_t> &Weights,
                                 unsigned NumInputs) {
  CoverageMatrix M(NumInputs, std::vector<double>(NumInputs, 1.0));
  for (unsigned I = 0; I != NumInputs; ++I) {
    uint64_t SizeI = 0;
    for (size_t S = 1; S != Weights.size(); ++S)
      if (S & (1u << I))
        SizeI += Weights[S];
    for (unsigned J = 0; J != NumInputs; ++J) {
      if (I == J)
        continue;
      uint64_t Both = 0;
      for (size_t S = 1; S != Weights.size(); ++S)
        if ((S & (1u << I)) && (S & (1u << J)))
          Both += Weights[S];
      M[I][J] = SizeI == 0 ? 0.0
                           : static_cast<double>(Both) /
                                 static_cast<double>(SizeI);
    }
  }
  return M;
}

double matrixError(const CoverageMatrix &A, const CoverageMatrix &B) {
  double Sum = 0;
  unsigned Count = 0;
  for (size_t I = 0; I != A.size(); ++I)
    for (size_t J = 0; J != A.size(); ++J) {
      if (I == J)
        continue;
      double D = A[I][J] - B[I][J];
      Sum += D * D;
      ++Count;
    }
  return Count == 0 ? 0.0 : std::sqrt(Sum / Count);
}

} // namespace

CoverageDesign pcc::workloads::designCoverage(const CoverageMatrix &Target,
                                              uint32_t RegionsPerInput,
                                              uint64_t Seed) {
  const unsigned NumInputs = static_cast<unsigned>(Target.size());
  assert(NumInputs >= 1 && NumInputs <= 10 && "unsupported input count");
  const size_t NumAtoms = size_t(1) << NumInputs;

  // Start from a uniform guess: most weight in the all-inputs atom.
  std::vector<uint32_t> Weights(NumAtoms, 1);
  Weights[0] = 0;
  Weights[NumAtoms - 1] = std::max<uint32_t>(RegionsPerInput / 2, 1);

  Rng Gen(Seed);
  CoverageMatrix Current = matrixFromWeights(Weights, NumInputs);
  double CurrentError = matrixError(Current, Target);

  // Greedy local search with random restart steps: perturb one atom
  // weight, keep improvements. Also softly steer per-input sizes toward
  // RegionsPerInput via a size penalty.
  auto sizePenalty = [&](const std::vector<uint32_t> &W) {
    double Penalty = 0;
    for (unsigned I = 0; I != NumInputs; ++I) {
      uint64_t Size = 0;
      for (size_t S = 1; S != NumAtoms; ++S)
        if (S & (1u << I))
          Size += W[S];
      double Rel = (static_cast<double>(Size) - RegionsPerInput) /
                   std::max<double>(RegionsPerInput, 1);
      Penalty += Rel * Rel;
    }
    return Penalty * 1e-3;
  };

  double CurrentScore = CurrentError + sizePenalty(Weights);
  const unsigned Steps = 20000;
  for (unsigned Step = 0; Step != Steps; ++Step) {
    size_t Atom = 1 + Gen.nextBelow(NumAtoms - 1);
    int Delta = Gen.nextBool(0.5) ? 1 : -1;
    if (Gen.nextBool(0.2))
      Delta *= static_cast<int>(1 + Gen.nextBelow(4));
    int64_t NewWeight = static_cast<int64_t>(Weights[Atom]) + Delta;
    if (NewWeight < 0)
      continue;
    uint32_t Saved = Weights[Atom];
    Weights[Atom] = static_cast<uint32_t>(NewWeight);
    CoverageMatrix Candidate = matrixFromWeights(Weights, NumInputs);
    double Score =
        matrixError(Candidate, Target) + sizePenalty(Weights);
    if (Score <= CurrentScore) {
      CurrentScore = Score;
      Current = std::move(Candidate);
    } else {
      Weights[Atom] = Saved;
    }
  }

  // Materialize regions: atoms get contiguous region-id ranges.
  CoverageDesign Design;
  Design.InputRegions.resize(NumInputs);
  uint32_t NextRegion = 0;
  for (size_t S = 1; S != NumAtoms; ++S) {
    for (uint32_t R = 0; R != Weights[S]; ++R) {
      for (unsigned I = 0; I != NumInputs; ++I)
        if (S & (1u << I))
          Design.InputRegions[I].push_back(NextRegion);
      ++NextRegion;
    }
  }
  Design.NumRegions = NextRegion;
  Design.Achieved = matrixFromWeights(Weights, NumInputs);
  Design.RmsError = matrixError(Design.Achieved, Target);
  return Design;
}

CoverageMatrix pcc::workloads::coverageOfSets(
    const std::vector<std::vector<uint32_t>> &Sets) {
  const size_t N = Sets.size();
  CoverageMatrix M(N, std::vector<double>(N, 1.0));
  for (size_t I = 0; I != N; ++I) {
    std::vector<uint32_t> SetI = Sets[I];
    std::sort(SetI.begin(), SetI.end());
    for (size_t J = 0; J != N; ++J) {
      if (I == J)
        continue;
      std::vector<uint32_t> SetJ = Sets[J];
      std::sort(SetJ.begin(), SetJ.end());
      std::vector<uint32_t> Both;
      std::set_intersection(SetI.begin(), SetI.end(), SetJ.begin(),
                            SetJ.end(), std::back_inserter(Both));
      M[I][J] = SetI.empty() ? 1.0
                             : static_cast<double>(Both.size()) /
                                   static_cast<double>(SetI.size());
    }
  }
  return M;
}

AddressIntervals
pcc::workloads::coveredCode(const dbi::CodeCache &Cache) {
  AddressIntervals Intervals;
  for (const auto &T : Cache.traces())
    Intervals.emplace_back(T->guestStart(),
                           T->guestStart() +
                               T->guestInstCount() *
                                   isa::InstructionSize);
  std::sort(Intervals.begin(), Intervals.end());
  // Merge overlaps (traces overlap when one starts mid-way into code
  // another trace already covered).
  AddressIntervals Merged;
  for (const auto &[Start, End] : Intervals) {
    if (!Merged.empty() && Start <= Merged.back().second)
      Merged.back().second = std::max(Merged.back().second, End);
    else
      Merged.emplace_back(Start, End);
  }
  return Merged;
}

uint64_t pcc::workloads::intervalBytes(const AddressIntervals &Intervals) {
  uint64_t Total = 0;
  for (const auto &[Start, End] : Intervals)
    Total += End - Start;
  return Total;
}

uint64_t
pcc::workloads::intervalIntersectionBytes(const AddressIntervals &A,
                                          const AddressIntervals &B) {
  uint64_t Total = 0;
  size_t I = 0, J = 0;
  while (I != A.size() && J != B.size()) {
    uint32_t Low = std::max(A[I].first, B[J].first);
    uint32_t High = std::min(A[I].second, B[J].second);
    if (Low < High)
      Total += High - Low;
    if (A[I].second < B[J].second)
      ++I;
    else
      ++J;
  }
  return Total;
}

double pcc::workloads::codeCoverage(const AddressIntervals &Of,
                                    const AddressIntervals &By) {
  uint64_t Bytes = intervalBytes(Of);
  if (Bytes == 0)
    return 1.0;
  return static_cast<double>(intervalIntersectionBytes(Of, By)) /
         static_cast<double>(Bytes);
}

std::map<std::string, AddressIntervals>
pcc::workloads::moduleRelativeCoverage(
    const AddressIntervals &Coverage,
    const std::vector<loader::LoadedModule> &Modules) {
  std::map<std::string, AddressIntervals> Result;
  for (const auto &[Start, End] : Coverage) {
    for (const loader::LoadedModule &Mod : Modules) {
      uint32_t Low = std::max(Start, Mod.Base);
      uint32_t High = std::min(End, Mod.Base + Mod.Size);
      if (Low < High)
        Result[Mod.Image->name()].emplace_back(Low - Mod.Base,
                                               High - Mod.Base);
    }
  }
  for (auto &[Name, Intervals] : Result)
    std::sort(Intervals.begin(), Intervals.end());
  return Result;
}

double pcc::workloads::moduleRelativeCodeCoverage(
    const std::map<std::string, AddressIntervals> &Of,
    const std::map<std::string, AddressIntervals> &By) {
  uint64_t Total = 0;
  uint64_t Shared = 0;
  for (const auto &[Name, Intervals] : Of) {
    Total += intervalBytes(Intervals);
    auto It = By.find(Name);
    if (It != By.end())
      Shared += intervalIntersectionBytes(Intervals, It->second);
  }
  return Total == 0 ? 1.0
                    : static_cast<double>(Shared) /
                          static_cast<double>(Total);
}
