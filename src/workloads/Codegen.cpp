//===- workloads/Codegen.cpp ----------------------------------------------===//

#include "workloads/Codegen.h"

#include "support/ByteStream.h"
#include "support/Hashing.h"
#include "support/Random.h"
#include "vm/Machine.h"

#include <cassert>
#include <iterator>

using namespace pcc;
using namespace pcc::workloads;
using binary::Module;
using isa::Instruction;
using isa::Opcode;

// Register convention of generated code:
//   r1         region argument (iteration count); scratch inside regions
//   r2..r9     scratch (clobbered by regions and main's item decode)
//   r10        main: work-item count
//   r11        region: scratch-memory base
//   r12        zero (re-established by every region and by main)
//   r13        main: input-region base
//   r14        main: work-item index
//   r15        stack pointer
namespace {

/// Bytes of per-region scratch memory in the data section.
constexpr uint32_t ScratchBytes = 32;

/// Accumulates module text plus the fixups that can only be resolved
/// once the total text size (and hence the data-section start) is known.
struct Emitter {
  std::vector<Instruction> Insts;
  /// (instruction index, data-section offset): Imm must become the
  /// module-relative address of that data byte, then be base-relocated.
  std::vector<std::pair<uint32_t, uint32_t>> DataAddrFixups;
  /// Instruction indices whose Imm is a module-relative code address.
  std::vector<uint32_t> CodeAddrRelocs;

  uint32_t here() const { return static_cast<uint32_t>(Insts.size()); }

  void emit(Instruction Inst) { Insts.push_back(Inst); }

  /// Emits `ldi Rd, &data[DataOffset]`.
  void emitDataAddr(unsigned Rd, uint32_t DataOffset) {
    DataAddrFixups.emplace_back(here(), DataOffset);
    emit(isa::makeLdi(Rd, 0));
  }

  /// Emits a control transfer to the instruction at \p TargetIndex.
  void emitCodeTarget(Instruction Inst, uint32_t TargetIndex) {
    Inst.Imm = TargetIndex * isa::InstructionSize;
    CodeAddrRelocs.push_back(here());
    emit(Inst);
  }

  /// Resolves data-address fixups and installs everything into \p M.
  void finishInto(Module &M) {
    M.setInstructions(std::move(Insts));
    uint32_t DataStart = M.dataStart();
    for (auto &[InstIndex, DataOffset] : DataAddrFixups) {
      M.instructions()[InstIndex].Imm = DataStart + DataOffset;
      M.addTextRelocation(InstIndex);
    }
    for (uint32_t InstIndex : CodeAddrRelocs)
      M.addTextRelocation(InstIndex);
  }
};

bool blockHasYield(const RegionDef &Def, uint32_t Block) {
  return Def.YieldEveryBlocks != 0 &&
         (Block + 1) % Def.YieldEveryBlocks == 0;
}

uint32_t blockSize(const RegionDef &Def, uint32_t Block) {
  return Def.InstsPerBlock + (blockHasYield(Def, Block) ? 1 : 0);
}

/// Emits one region's code; returns its start instruction index.
/// \p ScratchOffset is the region's scratch area in the data section.
uint32_t emitRegion(Emitter &E, const RegionDef &Def,
                    uint32_t ScratchOffset) {
  assert(Def.Blocks >= 1 && Def.InstsPerBlock >= 4 &&
         "region too small to generate");
  Rng Gen(Def.Seed);
  const uint32_t Start = E.here();

  E.emit(isa::makeLdi(12, 0));
  E.emitDataAddr(11, ScratchOffset);

  // Precompute block start indices so forward branch targets are known.
  const uint32_t LoopHead = Start + 2;
  std::vector<uint32_t> BlockStart(Def.Blocks);
  uint32_t Cursor = LoopHead;
  for (uint32_t B = 0; B != Def.Blocks; ++B) {
    BlockStart[B] = Cursor;
    Cursor += blockSize(Def, B);
  }
  const uint32_t LoopCheck = Cursor;

  static const Opcode RegOps[] = {Opcode::Add,  Opcode::Sub, Opcode::Mul,
                                  Opcode::And,  Opcode::Or,  Opcode::Xor,
                                  Opcode::Sltu, Opcode::Seq};
  static const Opcode ImmOps[] = {Opcode::Addi, Opcode::Muli,
                                  Opcode::Xori, Opcode::Ori,
                                  Opcode::Shri, Opcode::Sltiu};

  for (uint32_t B = 0; B != Def.Blocks; ++B) {
    assert(E.here() == BlockStart[B] && "block layout drift");
    uint32_t Slot = (B % 8) * 4;
    E.emit(isa::makeLoad(3, 11, static_cast<int32_t>(Slot)));
    for (uint32_t I = 0; I != Def.InstsPerBlock - 3; ++I) {
      unsigned Rd = 3 + static_cast<unsigned>(Gen.nextBelow(7));
      unsigned Rs1 = 3 + static_cast<unsigned>(Gen.nextBelow(7));
      if (Gen.nextBool(0.3)) {
        Opcode Op = ImmOps[Gen.nextBelow(std::size(ImmOps))];
        E.emit(isa::makeAluImm(Op, Rd, Rs1,
                               1 + static_cast<uint32_t>(
                                       Gen.nextBelow(997))));
      } else {
        Opcode Op = RegOps[Gen.nextBelow(std::size(RegOps))];
        unsigned Rs2 = 3 + static_cast<unsigned>(Gen.nextBelow(7));
        E.emit(isa::makeAlu(Op, Rd, Rs1, Rs2));
      }
    }
    E.emit(isa::makeStore(11, static_cast<int32_t>(Slot), 3));
    if (blockHasYield(Def, B))
      E.emit(isa::makeSys(
          static_cast<uint32_t>(vm::SyscallNumber::Yield)));
    // Data-dependent branch that skips the next block (or exits the
    // body) — generates multi-block traces and realistic control flow.
    uint32_t TargetIndex =
        B + 2 < Def.Blocks ? BlockStart[B + 2] : LoopCheck;
    Opcode BranchOp =
        Gen.nextBool(0.5) ? Opcode::Beq : Opcode::Bltu;
    E.emitCodeTarget(isa::makeBranch(BranchOp, 4, 12, 0), TargetIndex);
  }

  assert(E.here() == LoopCheck && "loop-check layout drift");
  E.emit(isa::makeAluImm(Opcode::Addi, 1, 1, 0xffffffffu));
  E.emitCodeTarget(isa::makeBranch(Opcode::Bne, 1, 12, 0), LoopHead);
  E.emit(isa::makeRet());
  return Start;
}

/// Fills \p NumRegions scratch areas with deterministic bytes.
std::vector<uint8_t> makeScratchData(uint32_t BaseOffset,
                                     uint32_t NumRegions, uint64_t Seed) {
  (void)BaseOffset;
  std::vector<uint8_t> Data(NumRegions * ScratchBytes);
  Rng Gen(Seed);
  for (uint8_t &Byte : Data)
    Byte = static_cast<uint8_t>(Gen.nextBelow(256));
  return Data;
}

} // namespace

uint32_t RegionDef::sizeInInsts() const {
  uint32_t Size = 2 + 3; // Prologue + loop check + ret.
  for (uint32_t B = 0; B != Blocks; ++B)
    Size += blockSize(*this, B);
  return Size;
}

std::shared_ptr<Module>
pcc::workloads::buildLibrary(const LibraryDef &Def) {
  auto M = std::make_shared<Module>(Def.Name, Def.Path,
                                    binary::ModuleKind::SharedLibrary);
  Emitter E;
  for (size_t I = 0; I != Def.Regions.size(); ++I) {
    uint32_t Start = emitRegion(E, Def.Regions[I],
                                static_cast<uint32_t>(I) * ScratchBytes);
    M->addSymbol(Def.Regions[I].Name, Start * isa::InstructionSize);
  }
  E.finishInto(*M);
  M->setData(makeScratchData(0,
                             static_cast<uint32_t>(Def.Regions.size()),
                             fnv1a64(Def.Name)));
  return M;
}

std::shared_ptr<Module>
pcc::workloads::buildExecutable(const AppDef &Def) {
  auto M = std::make_shared<Module>(Def.Name, Def.Path,
                                    binary::ModuleKind::Executable);
  const uint32_t NumSlots = static_cast<uint32_t>(Def.Slots.size());
  const uint32_t TableOffset = 0;
  const uint32_t ScratchBase = NumSlots * 4;

  Emitter E;
  // main: iterate the input work list, dispatching through the table.
  constexpr uint32_t InputBase = vm::Machine::InputRegionBase;
  E.emit(isa::makeLdi(13, InputBase));
  E.emit(isa::makeLoad(10, 13, 0));
  E.emit(isa::makeLdi(14, 0));
  E.emit(isa::makeLdi(12, 0));
  const uint32_t MainLoop = E.here();
  // Layout of the loop is fixed: beq(+0) .. jmp(+11), done at +12.
  const uint32_t Done = MainLoop + 12;
  E.emitCodeTarget(isa::makeBranch(Opcode::Beq, 14, 10, 0), Done);
  E.emit(isa::makeAluImm(Opcode::Muli, 2, 14, 8));
  E.emit(isa::makeAlu(Opcode::Add, 2, 2, 13));
  E.emit(isa::makeLoad(3, 2, 4)); // Slot id.
  E.emit(isa::makeLoad(1, 2, 8)); // Iteration count.
  E.emitDataAddr(5, TableOffset);
  E.emit(isa::makeAluImm(Opcode::Muli, 6, 3, 4));
  E.emit(isa::makeAlu(Opcode::Add, 5, 5, 6));
  E.emit(isa::makeLoad(7, 5, 0));
  E.emit(isa::makeCallr(7));
  E.emit(isa::makeAluImm(Opcode::Addi, 14, 14, 1));
  E.emitCodeTarget(isa::makeJmp(0), MainLoop);
  assert(E.here() == Done && "main layout drift");
  E.emit(isa::makeLdi(1, 0));
  E.emit(isa::makeSys(static_cast<uint32_t>(vm::SyscallNumber::Exit)));

  // Local regions.
  std::vector<uint32_t> LocalStart(NumSlots, 0);
  uint32_t LocalIndex = 0;
  for (uint32_t Slot = 0; Slot != NumSlots; ++Slot) {
    if (!Def.Slots[Slot].Local)
      continue;
    LocalStart[Slot] =
        emitRegion(E, *Def.Slots[Slot].Local,
                   ScratchBase + LocalIndex * ScratchBytes);
    ++LocalIndex;
  }
  E.finishInto(*M);
  M->setEntryOffset(0);

  // Data section: dispatch table then scratch areas.
  std::vector<uint8_t> Data(ScratchBase, 0);
  std::vector<uint8_t> Scratch =
      makeScratchData(ScratchBase, LocalIndex, fnv1a64(Def.Name));
  Data.insert(Data.end(), Scratch.begin(), Scratch.end());
  for (uint32_t Slot = 0; Slot != NumSlots; ++Slot) {
    const FunctionSlot &Fn = Def.Slots[Slot];
    uint32_t SlotOffset = TableOffset + Slot * 4;
    if (Fn.Local) {
      // Module-relative code address, rebased at load.
      uint32_t Target = LocalStart[Slot] * isa::InstructionSize;
      for (unsigned I = 0; I != 4; ++I)
        Data[SlotOffset + I] = static_cast<uint8_t>(Target >> (8 * I));
      M->addDataRelocation(SlotOffset);
    } else {
      M->addImport(Fn.SymbolName, Fn.LibraryName, SlotOffset);
    }
  }
  M->setData(std::move(Data));
  return M;
}

std::vector<uint8_t>
pcc::workloads::encodeWorkload(const std::vector<WorkItem> &Items) {
  ByteWriter Writer;
  Writer.writeU32(static_cast<uint32_t>(Items.size()));
  for (const WorkItem &Item : Items) {
    assert(Item.Iterations >= 1 && "zero iterations would wrap");
    Writer.writeU32(Item.Slot);
    Writer.writeU32(Item.Iterations);
  }
  return Writer.take();
}
