//===- workloads/Fleet.cpp ------------------------------------------------===//

#include "workloads/Fleet.h"

#include "persist/MemoryStore.h"
#include "support/Hashing.h"
#include "support/Random.h"
#include "support/StringUtils.h"
#include "workloads/Codegen.h"
#include "workloads/Runner.h"

#include <algorithm>
#include <cmath>
#include <memory>

using namespace pcc;
using namespace pcc::workloads;

namespace {

/// One deployable (application, version) binary plus its startup input.
struct AppVariant {
  std::shared_ptr<binary::Module> App;
  std::vector<uint8_t> Input;
};

/// The fleet's software catalog: shared libraries (identical across
/// versions) and every app's version lineup.
struct FleetCatalog {
  loader::ModuleRegistry Registry;
  std::vector<std::vector<AppVariant>> Apps; // [app][version]
};

FleetCatalog buildCatalog(const FleetOptions &Opts) {
  FleetCatalog Catalog;

  // Shared libraries. Every version of every app links the same library
  // binaries — a rolling app upgrade does not touch them — so their
  // translations are the fleet's reusable asset.
  struct BuiltLib {
    std::string Name;
    std::vector<std::string> Symbols;
  };
  std::vector<BuiltLib> Libs;
  for (uint32_t L = 0; L != Opts.Libraries; ++L) {
    LibraryDef Def;
    Def.Name = formatString("libfleet%u.so", L);
    Def.Path = "/usr/lib/" + Def.Name;
    BuiltLib Built;
    Built.Name = Def.Name;
    for (uint32_t R = 0; R != Opts.RegionsPerLibrary; ++R) {
      RegionDef Region;
      Region.Name = formatString("fn%u_%u", L, R);
      Region.Blocks = 8;
      Region.InstsPerBlock = 12;
      Region.Seed = fnv1a64U64(L * 97 + R, Opts.Seed);
      Built.Symbols.push_back(Region.Name);
      Def.Regions.push_back(std::move(Region));
    }
    Catalog.Registry.add(buildLibrary(Def));
    Libs.push_back(std::move(Built));
  }

  // Applications: each uses an overlapping subset of roughly half the
  // libraries (so inter-application donors share real code) plus a
  // little version-dependent local code — the version bump that changes
  // the lookup key without touching the libraries.
  uint32_t LibsPerApp = std::max<uint32_t>(1, (Opts.Libraries + 1) / 2);
  Catalog.Apps.resize(Opts.Apps);
  for (uint32_t A = 0; A != Opts.Apps; ++A) {
    for (uint32_t V = 0; V != Opts.AppVersions; ++V) {
      AppDef Def;
      Def.Name = formatString("app%u_v%u", A, V);
      Def.Path = "/usr/bin/" + Def.Name;
      uint32_t Slots = 0;
      for (uint32_t I = 0; I != LibsPerApp; ++I) {
        const BuiltLib &Lib = Libs[(A + I) % Libs.size()];
        for (const std::string &Symbol : Lib.Symbols) {
          Def.Slots.push_back(FunctionSlot::import(Lib.Name, Symbol));
          ++Slots;
        }
      }
      for (uint32_t I = 0; I != 2; ++I) {
        RegionDef Region;
        Region.Name = formatString("app%u", I);
        Region.Blocks = 8;
        Region.InstsPerBlock = 12;
        Region.Seed = fnv1a64U64((uint64_t(A) << 20) | (V << 4) | I,
                                 fnv1a64("fleet-app"));
        Def.Slots.push_back(FunctionSlot::local(std::move(Region)));
        ++Slots;
      }
      AppVariant Variant;
      Variant.App = buildExecutable(Def);
      // Startup: every slot once (cold), then the entry slot re-runs
      // warm. Identical shape across versions.
      std::vector<WorkItem> Items;
      for (uint32_t S = 0; S != Slots; ++S)
        Items.push_back(WorkItem{S, 1});
      Items.push_back(WorkItem{0, 4});
      Variant.Input = encodeWorkload(Items);
      Catalog.Registry.add(Variant.App);
      Catalog.Apps[A].push_back(std::move(Variant));
    }
  }
  return Catalog;
}

/// Zipf CDF over app popularity ranks.
std::vector<double> zipfCdf(uint32_t N, double S) {
  std::vector<double> Cdf(N);
  double Total = 0;
  for (uint32_t K = 0; K != N; ++K) {
    Total += 1.0 / std::pow(double(K + 1), S);
    Cdf[K] = Total;
  }
  for (double &C : Cdf)
    C /= Total;
  return Cdf;
}

uint32_t sampleZipf(const std::vector<double> &Cdf, Rng &R) {
  double P = R.nextDouble();
  for (uint32_t K = 0; K != Cdf.size(); ++K)
    if (P < Cdf[K])
      return K;
  return static_cast<uint32_t>(Cdf.size() - 1);
}

uint64_t percentile(std::vector<uint64_t> &Sorted, uint32_t P) {
  if (Sorted.empty())
    return 0;
  size_t Index = (Sorted.size() - 1) * P / 100;
  return Sorted[Index];
}

} // namespace

ErrorOr<FleetReport>
pcc::workloads::runFleet(const FleetOptions &Opts) {
  if (Opts.Machines == 0 || Opts.Rounds == 0 || Opts.Apps == 0 ||
      Opts.AppVersions == 0 || Opts.Libraries == 0)
    return Status::error(ErrorCode::InvalidArgument,
                         "fleet simulation requires nonzero shape");

  FleetCatalog Catalog = buildCatalog(Opts);
  std::vector<double> Cdf = zipfCdf(Opts.Apps, Opts.ZipfS);

  // One private L1 per machine, surviving across rounds; one shared L2
  // for the whole fleet in tiered mode. TieredStore instances also
  // persist per machine so their LRU clocks and breakers carry over.
  auto L2 = std::make_shared<persist::MemoryStore>("<remote>");
  std::vector<std::shared_ptr<persist::CacheStore>> MachineStores;
  std::vector<persist::TieredStore *> Tiers; // Borrowed views (tiered).
  MachineStores.reserve(Opts.Machines);
  for (uint32_t M = 0; M != Opts.Machines; ++M) {
    auto L1 = std::make_shared<persist::MemoryStore>(
        formatString("<l1-%u>", M));
    if (Opts.WithL2) {
      auto Tier =
          std::make_shared<persist::TieredStore>(L1, L2, Opts.Tier);
      Tiers.push_back(Tier.get());
      MachineStores.push_back(std::move(Tier));
    } else {
      MachineStores.push_back(std::move(L1));
    }
  }

  struct RunSample {
    Status Failure = Status::success();
    bool Hit = false;
    uint64_t Ttft = 0;
    uint64_t L1Hits = 0, L2Hits = 0;
    uint64_t RemoteFetches = 0, RemoteBytes = 0;
    uint64_t TracesCompiled = 0;
    uint64_t CertsChecked = 0, CertChecksFailed = 0, ProofsReplayed = 0;
  };

  FleetReport Report;
  uint64_t PublishBytesBefore = 0;
  double PrevCumulative = 0.0;
  for (uint32_t Round = 0; Round != Opts.Rounds; ++Round) {
    std::vector<RunSample> Samples(Opts.Machines);
    auto RunMachine = [&](size_t M) {
      RunSample &Sample = Samples[M];
      // Staggered rollout: each machine is pinned to one version wave.
      uint32_t Version = static_cast<uint32_t>(
          fnv1a64U64(M, fnv1a64U64(Opts.Seed, fnv1a64("wave"))) %
          Opts.AppVersions);
      Rng R(fnv1a64U64(Round, fnv1a64U64(M, Opts.Seed)));
      const AppVariant &Variant =
          Catalog.Apps[sampleZipf(Cdf, R)][Version];

      persist::CacheDatabase Db(MachineStores[M]);
      persist::PersistOptions Persist;
      Persist.InterApplication = true; // Donor adoption across versions.
      // The opt-tier leg promotes hot traces at finalize; later rounds
      // then prime certificate-carrying promoted bodies. Note
      // ValidateSemantic stays off: the trusted checker (with its
      // prover backstop) is the only prime-time verification, so the
      // proof-work ledger measures exactly the deployment trade.
      Persist.OptTier = Opts.OptTier;
      auto Result = runPersistent(Catalog.Registry, Variant.App,
                                  Variant.Input, Db, Persist);
      if (!Result) {
        Sample.Failure = Result.status();
        return;
      }
      Sample.Hit = Result->Prime.CacheFound;
      // Startup is the whole run: the input models everything up to
      // the ready-for-interaction point, so total modeled cycles are
      // the machine's time until its first interactive trace.
      Sample.Ttft = Result->Stats.totalCycles();
      Sample.L1Hits = Result->Stats.PersistL1Hits;
      Sample.L2Hits = Result->Stats.PersistL2Hits;
      Sample.RemoteFetches = Result->Stats.PersistRemoteFetches;
      Sample.RemoteBytes = Result->Stats.PersistRemoteBytes;
      Sample.TracesCompiled = Result->Stats.TracesCompiled;
      Sample.CertsChecked = Result->Stats.CertsChecked;
      Sample.CertChecksFailed = Result->Stats.CertChecksFailed;
      Sample.ProofsReplayed = Result->Stats.ProofsReplayed;
    };
    if (Opts.Pool)
      Opts.Pool->parallelFor(Opts.Machines, RunMachine);
    else
      for (uint32_t M = 0; M != Opts.Machines; ++M)
        RunMachine(M);

    FleetRound Agg;
    std::vector<uint64_t> Ttfts;
    Ttfts.reserve(Opts.Machines);
    for (const RunSample &Sample : Samples) {
      if (!Sample.Failure.ok())
        return Sample.Failure;
      ++Agg.Runs;
      Agg.CacheHits += Sample.Hit;
      Agg.L1Hits += Sample.L1Hits;
      Agg.L2Hits += Sample.L2Hits;
      Agg.RemoteFetches += Sample.RemoteFetches;
      Agg.RemoteFetchBytes += Sample.RemoteBytes;
      Agg.TracesCompiled += Sample.TracesCompiled;
      Agg.CertsChecked += Sample.CertsChecked;
      Agg.CertChecksFailed += Sample.CertChecksFailed;
      Agg.ProofsReplayed += Sample.ProofsReplayed;
      Ttfts.push_back(Sample.Ttft);
    }
    std::sort(Ttfts.begin(), Ttfts.end());
    Agg.TtftP50 = percentile(Ttfts, 50);
    Agg.TtftP99 = percentile(Ttfts, 99);
    Agg.HitRate = double(Agg.CacheHits) / double(Agg.Runs);
    Report.TotalRuns += Agg.Runs;
    Report.TotalHits += Agg.CacheHits;
    Agg.CumulativeHitRate =
        double(Report.TotalHits) / double(Report.TotalRuns);
    if (Agg.CumulativeHitRate + 1e-9 < PrevCumulative)
      Report.MonotoneConvergence = false;
    PrevCumulative = Agg.CumulativeHitRate;

    uint64_t PublishBytes = 0;
    for (persist::TieredStore *Tier : Tiers)
      PublishBytes += Tier->tieredStats().RemotePublishBytes;
    Agg.RemotePublishBytes = PublishBytes - PublishBytesBefore;
    PublishBytesBefore = PublishBytes;

    Report.CertsChecked += Agg.CertsChecked;
    Report.CertChecksFailed += Agg.CertChecksFailed;
    Report.ProofsReplayed += Agg.ProofsReplayed;
    Report.Rounds.push_back(Agg);

    // Adversarial injection between rounds: corrupt every validation
    // certificate currently in the shared tier (one bit each — the
    // blob's own CRC plus the proof replay make any flip detectable).
    // Machines that read the file through in the next round must see
    // the trusted checker reject it and the prover re-vouch for the
    // body; machines still holding an intact L1 copy are unaffected.
    // No run may ever accept a tampered certificate.
    if (Opts.TamperCerts && Opts.WithL2 && Round + 1 != Opts.Rounds) {
      auto Refs = L2->listRefs();
      if (!Refs)
        return Refs.status();
      for (const std::string &Ref : *Refs) {
        auto File = L2->loadRef(Ref);
        if (!File)
          continue; // Racing shrink/retire; nothing to tamper.
        bool Dirty = false;
        for (persist::TraceRecord &Rec : File->Traces) {
          if (Rec.Cert.empty())
            continue;
          Rec.Cert[Rec.Cert.size() / 2] ^= 0x10;
          ++Report.CertsTampered;
          Dirty = true;
        }
        if (Dirty)
          if (Status S = L2->putRef(Ref, *File); !S.ok())
            return S;
      }
    }
  }

  if (Opts.WithL2) {
    if (auto S = L2->stats()) {
      Report.L2Files = S->CacheFiles;
      Report.L2Bytes = S->DiskBytes;
    }
    for (persist::TieredStore *Tier : Tiers) {
      persist::TieredStats S = Tier->tieredStats();
      Report.RemoteFailures += S.RemoteFailures;
      Report.CertFillChecks += S.CertFillChecks;
      Report.CertFillRejects += S.CertFillRejects;
    }
  }
  return Report;
}
