//===- workloads/Gui.cpp --------------------------------------------------===//

#include "workloads/Gui.h"

#include "support/Hashing.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace pcc;
using namespace pcc::workloads;

CoverageMatrix pcc::workloads::guiLibCoverageTarget() {
  // Paper Table 4: library code coverage between GUI applications.
  return {
      {1.00, 0.71, 0.64, 0.78, 0.78},
      {0.78, 1.00, 0.76, 0.62, 0.72},
      {0.64, 0.55, 1.00, 0.74, 0.78},
      {0.62, 0.81, 0.74, 1.00, 0.84},
      {0.79, 0.72, 0.78, 0.84, 1.00},
  };
}

std::vector<double> pcc::workloads::guiLibCodeFractionTargets() {
  // Paper Table 1: % of startup code executed from libraries.
  return {0.97, 0.80, 0.96, 0.97, 0.95};
}

namespace {

struct AppProfile {
  const char *Name;
  const char *Path;
  /// Warm re-execution: fraction of slots re-run and their iterations.
  /// Controls the startup slowdown under the engine (higher warmth ⇒
  /// more reuse ⇒ lower slowdown), spanning the paper's 20x-100x range.
  double WarmFraction;
  uint32_t WarmIters;
  /// Syscall pressure in local code; File-Roller replaces signal
  /// handlers, making Pin emulate signals on its behalf (Figure 2b).
  uint32_t LocalYieldEveryBlocks;
};

const AppProfile Profiles[5] = {
    {"gftp", "/usr/bin/gftp", 0.28, 3, 0},
    {"gvim", "/usr/bin/gvim", 0.35, 8, 0},
    {"dia", "/usr/bin/dia", 0.30, 3, 0},
    {"file-roller", "/usr/bin/file-roller", 0.30, 4, 1},
    {"gqview", "/usr/bin/gqview", 0.30, 6, 0},
};

/// Max regions bundled into one synthetic shared library.
constexpr uint32_t RegionsPerLibrary = 10;

} // namespace

GuiSuite pcc::workloads::buildGuiSuite() {
  GuiSuite Suite;
  const CoverageMatrix Target = guiLibCoverageTarget();
  const std::vector<double> LibFractions = guiLibCodeFractionTargets();

  // Large library universe: GUI startup executes a lot of cold code
  // (Pin startup times of 20+ seconds in Figure 2b), and a big footprint
  // amortizes the fixed cache-open/key costs the way the paper's
  // applications do.
  CoverageDesign Design =
      designCoverage(Target, /*RegionsPerInput=*/220, fnv1a64("gui"));

  // Invert the design: for every region, which apps use it? Regions with
  // the same app subset form the atoms that become shared libraries.
  std::map<uint32_t, std::vector<uint32_t>> AtomRegions; // mask -> regions
  std::vector<uint32_t> RegionMask(Design.NumRegions, 0);
  for (uint32_t App = 0; App != 5; ++App)
    for (uint32_t Region : Design.InputRegions[App])
      RegionMask[Region] |= 1u << App;
  for (uint32_t Region = 0; Region != Design.NumRegions; ++Region)
    AtomRegions[RegionMask[Region]].push_back(Region);

  // One or more shared libraries per atom; libraries are chunks of at
  // most RegionsPerLibrary regions used by exactly the atom's apps.
  struct BuiltLib {
    std::string Name;
    uint32_t Mask;
    std::vector<std::string> Symbols;
  };
  std::vector<BuiltLib> Libs;
  for (const auto &[Mask, Regions] : AtomRegions) {
    for (size_t Chunk = 0; Chunk * RegionsPerLibrary < Regions.size();
         ++Chunk) {
      LibraryDef Def;
      Def.Name = formatString("libgui%02x_%zu.so", Mask, Chunk);
      Def.Path = "/usr/lib/" + Def.Name;
      BuiltLib Built;
      Built.Name = Def.Name;
      Built.Mask = Mask;
      size_t Begin = Chunk * RegionsPerLibrary;
      size_t End =
          std::min(Begin + RegionsPerLibrary, Regions.size());
      for (size_t I = Begin; I != End; ++I) {
        RegionDef Region;
        Region.Name = "fn" + std::to_string(Regions[I]);
        Region.Blocks = 6;
        Region.InstsPerBlock = 10;
        Region.Seed = fnv1a64U64(Regions[I], fnv1a64("guilib"));
        Built.Symbols.push_back(Region.Name);
        Def.Regions.push_back(std::move(Region));
      }
      Suite.Registry.add(buildLibrary(Def));
      Libs.push_back(std::move(Built));
    }
  }

  // Applications: import every region of every library they use, plus
  // local startup code sized to hit the Table 1 library fraction.
  for (uint32_t AppIndex = 0; AppIndex != 5; ++AppIndex) {
    const AppProfile &Profile = Profiles[AppIndex];
    GuiApp App;
    App.Name = Profile.Name;
    App.LibCodeFraction = LibFractions[AppIndex];

    AppDef Def;
    Def.Name = Profile.Name;
    Def.Path = Profile.Path;
    uint32_t LibRegionCount = 0;
    for (const BuiltLib &Lib : Libs) {
      if (!(Lib.Mask & (1u << AppIndex)))
        continue;
      App.Libraries.push_back(Lib.Name);
      for (const std::string &Symbol : Lib.Symbols) {
        Def.Slots.push_back(FunctionSlot::import(Lib.Name, Symbol));
        ++LibRegionCount;
      }
    }
    // local / (local + lib) = 1 - fraction.
    double Fraction = LibFractions[AppIndex];
    uint32_t LocalCount = std::max<uint32_t>(
        1, static_cast<uint32_t>(LibRegionCount * (1.0 - Fraction) /
                                 Fraction + 0.5));
    for (uint32_t I = 0; I != LocalCount; ++I) {
      RegionDef Region;
      Region.Name = "app" + std::to_string(I);
      Region.Blocks = 6;
      Region.InstsPerBlock = 10;
      Region.YieldEveryBlocks = Profile.LocalYieldEveryBlocks;
      Region.Seed = fnv1a64U64(I, fnv1a64(Profile.Name));
      Def.Slots.push_back(FunctionSlot::local(std::move(Region)));
    }
    App.App = buildExecutable(Def);

    // Startup: every slot executes once (cold), then a warm subset
    // re-runs — initialization loops, widget layout passes, and the
    // event-loop warmup before the UI is interactive.
    std::vector<WorkItem> Items;
    uint32_t NumSlots = LibRegionCount + LocalCount;
    for (uint32_t Slot = 0; Slot != NumSlots; ++Slot)
      Items.push_back(WorkItem{Slot, 1});
    uint32_t WarmCount =
        static_cast<uint32_t>(NumSlots * Profile.WarmFraction);
    for (uint32_t I = 0; I != WarmCount; ++I)
      Items.push_back(
          WorkItem{(I * 7) % NumSlots, Profile.WarmIters});
    App.StartupInput = encodeWorkload(Items);
    Suite.Apps.push_back(std::move(App));
  }
  return Suite;
}
