//===- workloads/Spec2k.h - SPEC2K INT-like benchmark suite -----*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic stand-ins for the SPEC2K INT benchmarks (252.eon omitted,
/// as in the paper). Each benchmark's knobs — code footprint, hot/cold
/// split, run length, number of Reference inputs and the cross-input
/// code-coverage matrix — are calibrated to the characteristics the
/// paper reports: 176.gcc translates new code throughout its run with
/// 84–98% input coverage (Table 3a); gzip/bzip2 inputs exercise
/// near-identical code (Figure 4); Train inputs run roughly 6x shorter
/// than Reference (Section 4.2).
///
//===----------------------------------------------------------------------===//

#ifndef PCC_WORKLOADS_SPEC2K_H
#define PCC_WORKLOADS_SPEC2K_H

#include "loader/Loader.h"
#include "workloads/Codegen.h"
#include "workloads/Coverage.h"

#include <memory>
#include <string>
#include <vector>

namespace pcc {
namespace workloads {

/// Calibration profile of one synthetic SPEC2K benchmark.
struct SpecProfile {
  std::string Name;
  uint32_t NumRefInputs = 1;
  /// Uniform off-diagonal coverage target; ignored when an explicit
  /// matrix is set.
  double UniformCoverage = 0.99;
  /// Explicit coverage-matrix target (e.g. gcc's Table 3a), optional.
  CoverageMatrix ExplicitCoverage;
  uint32_t RegionsPerInput = 40;
  /// Number of hot regions per input (rest are cold).
  uint32_t HotRegions = 8;
  uint32_t HotIters = 6000;
  uint32_t ColdIters = 3;
  /// Hot iterations of the (single) Train input.
  uint32_t TrainHotIters = 1000;
  /// Interleave cold discovery through the run (gcc's Figure 2a
  /// profile) instead of clustering it at startup.
  bool SpreadDiscovery = false;
};

/// A built benchmark: the executable plus encoded inputs.
struct SpecBenchmark {
  SpecProfile Profile;
  std::shared_ptr<binary::Module> App;
  std::vector<std::vector<uint8_t>> RefInputs;
  std::vector<uint8_t> TrainInput;
  CoverageDesign Design;
};

/// The full suite sharing one module registry (all benchmarks link the
/// same libc).
struct SpecSuite {
  loader::ModuleRegistry Registry;
  std::vector<SpecBenchmark> Benchmarks;
};

/// The default profiles (11 benchmarks, paper Section 4.1).
std::vector<SpecProfile> defaultSpecProfiles();

/// gcc's Reference-input coverage target (paper Table 3a).
CoverageMatrix gccCoverageTarget();

/// Builds the whole suite. \p Scale in (0, 1] shrinks hot iteration
/// counts proportionally (quick test runs).
SpecSuite buildSpecSuite(double Scale = 1.0);

/// Builds one benchmark from \p Profile into \p Registry (the shared
/// libc is added to the registry if missing).
SpecBenchmark buildSpecBenchmark(const SpecProfile &Profile,
                                 loader::ModuleRegistry &Registry,
                                 double Scale = 1.0);

} // namespace workloads
} // namespace pcc

#endif // PCC_WORKLOADS_SPEC2K_H
