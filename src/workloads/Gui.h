//===- workloads/Gui.h - GUI application startup workloads ------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five Linux GUI applications of the paper's Table 1 (Gftp, Gvim,
/// Dia, File-Roller, Gqview), modeled at startup: almost entirely cold
/// code, 80–97% of it executed from shared libraries, with heavy library
/// sharing between the applications (Tables 2 and 4). File-Roller's
/// signal-emulation burden (Figure 2b) appears as syscall pressure in
/// its regions.
///
/// The shared-library universe is derived from the paper's Table 4
/// pairwise library-code coverage matrix via the coverage designer: each
/// atom (subset of apps) becomes one or more shared libraries used by
/// exactly those apps.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_WORKLOADS_GUI_H
#define PCC_WORKLOADS_GUI_H

#include "loader/Loader.h"
#include "workloads/Codegen.h"
#include "workloads/Coverage.h"

#include <memory>
#include <string>
#include <vector>

namespace pcc {
namespace workloads {

/// One GUI application ready to run its startup phase.
struct GuiApp {
  std::string Name;
  std::shared_ptr<binary::Module> App;
  /// Startup input (the only input: reaching the ready-for-interaction
  /// point, reproduced deterministically — the paper used Xnee).
  std::vector<uint8_t> StartupInput;
  /// Names of the shared libraries this app links.
  std::vector<std::string> Libraries;
  /// Fraction of startup code expected from libraries (Table 1 target).
  double LibCodeFraction = 0.9;
};

/// The whole GUI suite with its shared library pool.
struct GuiSuite {
  loader::ModuleRegistry Registry;
  std::vector<GuiApp> Apps;
};

/// Paper Table 4: library code coverage between GUI applications
/// (row app's library code found in column app's cache).
CoverageMatrix guiLibCoverageTarget();

/// Paper Table 1 %-library-code targets, in suite order
/// (Gftp, Gvim, Dia, File-Roller, Gqview).
std::vector<double> guiLibCodeFractionTargets();

/// Builds the five applications and their shared libraries.
GuiSuite buildGuiSuite();

} // namespace workloads
} // namespace pcc

#endif // PCC_WORKLOADS_GUI_H
