//===- workloads/Spec2k.cpp -----------------------------------------------===//

#include "workloads/Spec2k.h"

#include "support/Hashing.h"
#include "support/Random.h"

#include <algorithm>
#include <cassert>

using namespace pcc;
using namespace pcc::workloads;

namespace {

/// Startup regions every benchmark executes once: run-time loader and C
/// library initialization (the cold code bursts of Figure 2a).
constexpr uint32_t LibcInitRegions = 25;

std::shared_ptr<binary::Module> buildLibc() {
  LibraryDef Def;
  Def.Name = "libc.so";
  Def.Path = "/lib/libc.so";
  for (uint32_t I = 0; I != LibcInitRegions; ++I) {
    RegionDef Region;
    Region.Name = "init" + std::to_string(I);
    Region.Blocks = 6;
    Region.InstsPerBlock = 10;
    Region.Seed = fnv1a64U64(I, fnv1a64("libc"));
    Def.Regions.push_back(std::move(Region));
  }
  return buildLibrary(Def);
}

/// Scaled hot iteration count, never below 2.
uint32_t scaleIters(uint32_t Iters, double Scale) {
  auto Scaled = static_cast<uint32_t>(Iters * Scale);
  return std::max<uint32_t>(Scaled, 2);
}

} // namespace

CoverageMatrix pcc::workloads::gccCoverageTarget() {
  // Paper Table 3(a): coverage of row input by column input.
  return {
      {1.00, 0.87, 0.89, 0.84, 0.88},
      {0.93, 1.00, 0.90, 0.85, 0.98},
      {0.93, 0.88, 1.00, 0.91, 0.89},
      {0.95, 0.90, 0.98, 1.00, 0.90},
      {0.92, 0.97, 0.90, 0.84, 1.00},
  };
}

std::vector<SpecProfile> pcc::workloads::defaultSpecProfiles() {
  auto uniform = [](std::string Name, uint32_t Inputs, double Coverage,
                    uint32_t Regions, uint32_t Hot, uint32_t HotIters,
                    uint32_t TrainIters) {
    SpecProfile P;
    P.Name = std::move(Name);
    P.NumRefInputs = Inputs;
    P.UniformCoverage = Coverage;
    P.RegionsPerInput = Regions;
    P.HotRegions = Hot;
    P.HotIters = HotIters;
    P.TrainHotIters = TrainIters;
    return P;
  };

  std::vector<SpecProfile> Profiles;
  Profiles.push_back(
      uniform("164.gzip", 5, 0.99, 40, 10, 27000, 4500));
  Profiles.push_back(uniform("175.vpr", 2, 0.80, 55, 9, 16000, 2700));

  SpecProfile Gcc;
  Gcc.Name = "176.gcc";
  Gcc.NumRefInputs = 5;
  Gcc.ExplicitCoverage = gccCoverageTarget();
  Gcc.RegionsPerInput = 120;
  Gcc.HotRegions = 14;
  Gcc.HotIters = 2600;
  Gcc.ColdIters = 6;
  Gcc.TrainHotIters = 430;
  Gcc.SpreadDiscovery = true;
  Profiles.push_back(std::move(Gcc));

  Profiles.push_back(uniform("181.mcf", 1, 1.0, 25, 6, 25000, 4200));
  Profiles.push_back(
      uniform("186.crafty", 1, 1.0, 45, 10, 18000, 3000));
  Profiles.push_back(uniform("197.parser", 1, 1.0, 30, 6, 24000, 540));
  Profiles.push_back(
      uniform("253.perlbmk", 4, 0.85, 40, 8, 10000, 1700));
  Profiles.push_back(uniform("254.gap", 1, 1.0, 35, 8, 24000, 420));
  Profiles.push_back(
      uniform("255.vortex", 3, 0.95, 50, 11, 28000, 4700));
  Profiles.push_back(
      uniform("256.bzip2", 3, 0.99, 35, 9, 27000, 4500));
  Profiles.push_back(uniform("300.twolf", 1, 1.0, 40, 9, 21000, 3500));
  return Profiles;
}

SpecBenchmark pcc::workloads::buildSpecBenchmark(
    const SpecProfile &Profile, loader::ModuleRegistry &Registry,
    double Scale) {
  if (!Registry.find("libc.so"))
    Registry.add(buildLibc());

  SpecBenchmark Bench;
  Bench.Profile = Profile;

  // Region universe sized by the coverage design across inputs.
  CoverageMatrix Target = Profile.ExplicitCoverage;
  if (Target.empty()) {
    Target.assign(Profile.NumRefInputs,
                  std::vector<double>(Profile.NumRefInputs,
                                      Profile.UniformCoverage));
    for (uint32_t I = 0; I != Profile.NumRefInputs; ++I)
      Target[I][I] = 1.0;
  }
  Bench.Design = designCoverage(Target, Profile.RegionsPerInput,
                                fnv1a64(Profile.Name));

  // The executable: libc imports in slots [0, LibcInitRegions), then the
  // local region universe.
  AppDef Def;
  Def.Name = Profile.Name;
  Def.Path = "/spec/" + Profile.Name;
  for (uint32_t I = 0; I != LibcInitRegions; ++I)
    Def.Slots.push_back(
        FunctionSlot::import("libc.so", "init" + std::to_string(I)));
  const uint32_t FirstLocal = LibcInitRegions;
  for (uint32_t R = 0; R != Bench.Design.NumRegions; ++R) {
    RegionDef Region;
    Region.Name = "r" + std::to_string(R);
    Region.Blocks = 6;
    Region.InstsPerBlock = 10;
    Region.Seed = fnv1a64U64(R, fnv1a64(Profile.Name));
    Def.Slots.push_back(FunctionSlot::local(std::move(Region)));
  }
  Bench.App = buildExecutable(Def);

  // Work lists. Hot regions are the highest-numbered regions of each
  // input's set: the atom enumeration puts widely-shared regions there,
  // so the hot working set is stable across inputs (as in real
  // programs, where the hot loops are input-independent).
  auto makeInput = [&](const std::vector<uint32_t> &Regions,
                       uint32_t HotIters, uint64_t OrderSeed) {
    std::vector<uint32_t> Sorted = Regions;
    std::sort(Sorted.begin(), Sorted.end());
    uint32_t NumHot =
        std::min<uint32_t>(Profile.HotRegions,
                           static_cast<uint32_t>(Sorted.size()));
    std::vector<WorkItem> Cold, Hot;
    for (size_t I = 0; I != Sorted.size(); ++I) {
      bool IsHot = I + NumHot >= Sorted.size();
      WorkItem Item;
      Item.Slot = FirstLocal + Sorted[I];
      Item.Iterations = IsHot ? scaleIters(HotIters, Scale)
                              : std::max<uint32_t>(Profile.ColdIters, 1);
      (IsHot ? Hot : Cold).push_back(Item);
    }

    std::vector<WorkItem> Items;
    // Startup: every libc init region once.
    for (uint32_t I = 0; I != LibcInitRegions; ++I)
      Items.push_back(WorkItem{I, 1});
    if (Profile.SpreadDiscovery) {
      // Interleave discovery of cold code with hot execution: the
      // gcc profile, where translation requests continue throughout
      // the run (Figure 2a).
      Rng Gen(OrderSeed);
      size_t ColdIndex = 0;
      size_t HotIndex = 0;
      uint32_t ColdPerHot = Hot.empty() ? 0
                            : static_cast<uint32_t>(
                                  (Cold.size() + Hot.size() - 1) /
                                  std::max<size_t>(Hot.size(), 1));
      while (HotIndex != Hot.size() || ColdIndex != Cold.size()) {
        if (HotIndex != Hot.size())
          Items.push_back(Hot[HotIndex++]);
        for (uint32_t K = 0;
             K != ColdPerHot && ColdIndex != Cold.size(); ++K)
          Items.push_back(Cold[ColdIndex++]);
      }
    } else {
      // Typical profile: cold initialization first, then a short
      // warm-up over the hot working set (this is where its code is
      // discovered and translated), then the long hot loops.
      Items.insert(Items.end(), Cold.begin(), Cold.end());
      for (const WorkItem &Item : Hot)
        if (Item.Iterations > 30)
          Items.push_back(WorkItem{Item.Slot, 25});
      for (const WorkItem &Item : Hot)
        Items.push_back(WorkItem{
            Item.Slot,
            Item.Iterations > 30 ? Item.Iterations - 25
                                 : Item.Iterations});
    }
    return encodeWorkload(Items);
  };

  for (uint32_t I = 0; I != Profile.NumRefInputs; ++I)
    Bench.RefInputs.push_back(
        makeInput(Bench.Design.InputRegions[I], Profile.HotIters,
                  fnv1a64U64(I, fnv1a64(Profile.Name))));
  Bench.TrainInput = makeInput(Bench.Design.InputRegions[0],
                               Profile.TrainHotIters,
                               fnv1a64("train-" + Profile.Name));
  return Bench;
}

SpecSuite pcc::workloads::buildSpecSuite(double Scale) {
  SpecSuite Suite;
  for (const SpecProfile &Profile : defaultSpecProfiles())
    Suite.Benchmarks.push_back(
        buildSpecBenchmark(Profile, Suite.Registry, Scale));
  return Suite;
}
