//===- workloads/Oracle.cpp -----------------------------------------------===//

#include "workloads/Oracle.h"

#include "support/Hashing.h"

#include <algorithm>
#include <cassert>

using namespace pcc;
using namespace pcc::workloads;

const char *pcc::workloads::oraclePhaseName(unsigned Phase) {
  static const char *Names[OraclePhases] = {"Start", "Mount", "Open",
                                            "Work", "Close"};
  assert(Phase < OraclePhases && "phase index out of range");
  return Names[Phase];
}

CoverageMatrix pcc::workloads::oracleCoverageTarget() {
  // Paper Table 3(b): coverage of row phase by column phase.
  return {
      {1.00, 0.47, 0.47, 0.33, 0.46},
      {0.22, 1.00, 0.78, 0.66, 0.64},
      {0.18, 0.66, 1.00, 0.68, 0.56},
      {0.18, 0.66, 0.77, 1.00, 0.56},
      {0.29, 0.89, 0.91, 0.74, 1.00},
  };
}

OracleSetup pcc::workloads::buildOracleSetup(double Scale) {
  OracleSetup Setup;
  Setup.Design = designCoverage(oracleCoverageTarget(),
                                /*RegionsPerInput=*/90, fnv1a64("oracle"));

  // One server binary holding the whole region universe. Database code
  // makes frequent system calls (I/O, IPC), which the engine's emulation
  // unit intercepts: every region carries syscall pressure.
  AppDef Def;
  Def.Name = "oracle";
  Def.Path = "/opt/oracle/bin/oracle";
  for (uint32_t R = 0; R != Setup.Design.NumRegions; ++R) {
    RegionDef Region;
    Region.Name = "srv" + std::to_string(R);
    Region.Blocks = 6;
    Region.InstsPerBlock = 10;
    // I/O- and IPC-heavy routines emulate a syscall per pass; the mix is
    // calibrated so translation is ~60% of engine time (Section 4.2) and
    // the engine runs ~16x slower than native on this workload.
    Region.YieldEveryBlocks = R % 12 == 0 ? 6 : 0;
    Region.Seed = fnv1a64U64(R, fnv1a64("oracle"));
    Def.Slots.push_back(FunctionSlot::local(std::move(Region)));
  }
  Setup.App = buildExecutable(Def);

  auto scaled = [&](uint32_t Iters) {
    return std::max<uint32_t>(static_cast<uint32_t>(Iters * Scale), 2);
  };

  for (unsigned Phase = 0; Phase != OraclePhases; ++Phase) {
    std::vector<uint32_t> Regions = Setup.Design.InputRegions[Phase];
    std::sort(Regions.begin(), Regions.end());

    std::vector<WorkItem> Items;
    // Cold pass: the phase discovers its code (regression tests are
    // short, so most code is cold — the paper's central observation).
    for (uint32_t Region : Regions)
      Items.push_back(WorkItem{Region, 2});
    // Warm pass over a third of the phase's regions.
    for (size_t I = 0; I < Regions.size(); I += 3)
      Items.push_back(WorkItem{Regions[I], scaled(45)});

    if (Phase == 3) {
      // Work: sixty transactions over ten "table" regions.
      uint32_t NumTables =
          std::min<uint32_t>(10, static_cast<uint32_t>(Regions.size()));
      for (uint32_t Txn = 0; Txn != 60; ++Txn)
        Items.push_back(
            WorkItem{Regions[Txn % NumTables], scaled(12)});
    }
    Setup.PhaseInputs.push_back(encodeWorkload(Items));
  }
  return Setup;
}
