//===- workloads/Runner.cpp -----------------------------------------------===//

#include "workloads/Runner.h"

using namespace pcc;
using namespace pcc::workloads;

ErrorOr<vm::Machine>
pcc::workloads::makeMachine(const loader::ModuleRegistry &Registry,
                            std::shared_ptr<const binary::Module> App,
                            const std::vector<uint8_t> &Input,
                            loader::BasePolicy Policy,
                            uint64_t AslrSeed) {
  auto M = vm::Machine::create(std::move(App), Registry, Policy,
                               AslrSeed);
  if (!M)
    return M.status();
  Status S = M->installInput(Input);
  if (!S.ok())
    return S;
  return M;
}

ErrorOr<vm::RunResult>
pcc::workloads::runNative(const loader::ModuleRegistry &Registry,
                          std::shared_ptr<const binary::Module> App,
                          const std::vector<uint8_t> &Input) {
  auto M = makeMachine(Registry, std::move(App), Input);
  if (!M)
    return M.status();
  vm::RunResult Result = M->runNative();
  if (!Result.ok())
    return Result.Error;
  return Result;
}

ErrorOr<EngineRun> pcc::workloads::runUnderEngine(
    const loader::ModuleRegistry &Registry,
    std::shared_ptr<const binary::Module> App,
    const std::vector<uint8_t> &Input, dbi::Tool *ClientTool,
    const dbi::EngineOptions &Opts, loader::BasePolicy Policy,
    uint64_t AslrSeed) {
  auto M = makeMachine(Registry, std::move(App), Input, Policy,
                       AslrSeed);
  if (!M)
    return M.status();
  dbi::Engine Engine(*M, ClientTool, Opts);
  EngineRun Result;
  Result.Run = Engine.run();
  if (!Result.Run.ok())
    return Result.Run.Error;
  Result.Stats = Engine.stats();
  Result.Coverage = coveredCode(Engine.cache());
  Result.Modules = M->image().Modules;
  return Result;
}

ErrorOr<persist::PersistentRunResult> pcc::workloads::runPersistent(
    const loader::ModuleRegistry &Registry,
    std::shared_ptr<const binary::Module> App,
    const std::vector<uint8_t> &Input, const persist::CacheDatabase &Db,
    const persist::PersistOptions &PersistOpts, dbi::Tool *ClientTool,
    const dbi::EngineOptions &Opts, loader::BasePolicy Policy,
    uint64_t AslrSeed) {
  auto M = makeMachine(Registry, std::move(App), Input, Policy,
                       AslrSeed);
  if (!M)
    return M.status();
  auto Result = persist::runWithPersistence(*M, ClientTool, Opts, Db,
                                            PersistOpts);
  if (!Result)
    return Result.status();
  if (!Result->Run.ok())
    return Result->Run.Error;
  return Result;
}
