//===- workloads/Oracle.h - Oracle regression-test workload -----*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Oracle Database 10g XE regression-test workload of Section 4.1:
/// one binary, five phases — Start, Mount, Open, Work, Close — each a
/// separate process execution treated as a unique input. The phases
/// exercise significantly different code (Table 3b, 18–91% coverage),
/// carry heavy system-call/emulation pressure, and the Work phase runs
/// sixty transactions over ten database tables.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_WORKLOADS_ORACLE_H
#define PCC_WORKLOADS_ORACLE_H

#include "loader/Loader.h"
#include "workloads/Codegen.h"
#include "workloads/Coverage.h"

#include <memory>
#include <string>
#include <vector>

namespace pcc {
namespace workloads {

/// Number of regression-test phases.
inline constexpr unsigned OraclePhases = 5;

/// Phase names, in execution order.
const char *oraclePhaseName(unsigned Phase);

/// The built workload.
struct OracleSetup {
  loader::ModuleRegistry Registry;
  std::shared_ptr<binary::Module> App;
  /// One encoded input per phase (Start..Close).
  std::vector<std::vector<uint8_t>> PhaseInputs;
  CoverageDesign Design;
};

/// Paper Table 3(b): phase coverage matrix (row phase's code covered by
/// column phase).
CoverageMatrix oracleCoverageTarget();

/// Builds the Oracle binary and its five phase inputs. \p Scale in
/// (0, 1] shrinks the warm iteration counts.
OracleSetup buildOracleSetup(double Scale = 1.0);

} // namespace workloads
} // namespace pcc

#endif // PCC_WORKLOADS_ORACLE_H
