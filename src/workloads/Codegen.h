//===- workloads/Codegen.h - Synthetic guest program builder ----*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds synthetic guest executables and shared libraries with precisely
/// controllable code footprint, hot/cold behaviour, library composition
/// and syscall pressure — the knobs the paper's workload classes differ
/// in. Programs are *real* guest code (they execute, access memory, make
/// syscalls); only their provenance is synthetic.
///
/// Structure of a generated program:
///
///   * The executable's `main` reads a work list from the input region
///     (outside every module, so inputs never perturb module keys):
///     a count N followed by N (slot, iterations) pairs.
///   * Each slot of the dispatch table names a *region* — a generated
///     function of several basic blocks with loads/stores, data-dependent
///     conditional branches and an iteration loop — either local to the
///     executable or imported from a shared library through a GOT slot.
///   * Cold code = regions run with iterations == 1; hot code = large
///     iteration counts. Code coverage of an input = the set of slots
///     its work list touches.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_WORKLOADS_CODEGEN_H
#define PCC_WORKLOADS_CODEGEN_H

#include "binary/Module.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace pcc {
namespace workloads {

/// Shape of one generated region (function).
struct RegionDef {
  /// Exported symbol name (library regions) / diagnostic name.
  std::string Name;
  /// Straight-line basic blocks in the loop body.
  uint32_t Blocks = 6;
  /// Instructions per block (>= 4: load, ALU work, store, branch).
  uint32_t InstsPerBlock = 10;
  /// Emit a Yield syscall at the end of every k-th block (0 = never);
  /// models emulation-heavy workloads such as the Oracle server.
  uint32_t YieldEveryBlocks = 0;
  /// Seed selecting the ALU operation mix and block-skip branches.
  uint64_t Seed = 1;

  /// Instructions this region occupies (exact; layout is deterministic).
  uint32_t sizeInInsts() const;
};

/// A shared library: a bag of exported regions.
struct LibraryDef {
  std::string Name; ///< e.g. "libgtk.so"
  std::string Path; ///< e.g. "/usr/lib/libgtk.so"
  std::vector<RegionDef> Regions;
};

/// One dispatch-table slot of an executable: either a region generated
/// into the executable itself or an import resolved from a library.
struct FunctionSlot {
  /// Local region (when set).
  std::optional<RegionDef> Local;
  /// Import (when Local is not set).
  std::string LibraryName;
  std::string SymbolName;

  static FunctionSlot local(RegionDef Def) {
    FunctionSlot Slot;
    Slot.Local = std::move(Def);
    return Slot;
  }
  static FunctionSlot import(std::string Lib, std::string Sym) {
    FunctionSlot Slot;
    Slot.LibraryName = std::move(Lib);
    Slot.SymbolName = std::move(Sym);
    return Slot;
  }
};

/// An executable: a dispatch table over function slots.
struct AppDef {
  std::string Name; ///< e.g. "gftp"
  std::string Path; ///< e.g. "/usr/bin/gftp"
  std::vector<FunctionSlot> Slots;
};

/// Builds the shared-library module for \p Def.
std::shared_ptr<binary::Module> buildLibrary(const LibraryDef &Def);

/// Builds the executable module for \p Def.
std::shared_ptr<binary::Module> buildExecutable(const AppDef &Def);

/// One unit of work: run dispatch slot \p Slot for \p Iterations loop
/// iterations.
struct WorkItem {
  uint32_t Slot = 0;
  uint32_t Iterations = 1;
};

/// Encodes a work list into the program input format.
std::vector<uint8_t> encodeWorkload(const std::vector<WorkItem> &Items);

} // namespace workloads
} // namespace pcc

#endif // PCC_WORKLOADS_CODEGEN_H
