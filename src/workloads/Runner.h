//===- workloads/Runner.h - Workload execution helpers ----------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience entry points tying workloads to execution engines: run an
/// (application, input) pair natively, under the DBI engine, or under
/// the engine with persistent code caching. Each run gets a fresh
/// Machine — the process model of the paper's experiments.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_WORKLOADS_RUNNER_H
#define PCC_WORKLOADS_RUNNER_H

#include "dbi/Engine.h"
#include "persist/Session.h"
#include "workloads/Coverage.h"

#include <memory>

namespace pcc {
namespace workloads {

/// Outcome of a run under the engine (with or without a tool).
struct EngineRun {
  vm::RunResult Run;
  dbi::EngineStats Stats;
  /// Static code the run executed (trace coverage).
  AddressIntervals Coverage;
  /// Modules mapped for the run (for attributing coverage to images).
  std::vector<loader::LoadedModule> Modules;
};

/// Creates a loaded machine for (\p App, \p Input).
ErrorOr<vm::Machine>
makeMachine(const loader::ModuleRegistry &Registry,
            std::shared_ptr<const binary::Module> App,
            const std::vector<uint8_t> &Input,
            loader::BasePolicy Policy = loader::BasePolicy::Fixed,
            uint64_t AslrSeed = 0);

/// Native (reference interpreter) run.
ErrorOr<vm::RunResult>
runNative(const loader::ModuleRegistry &Registry,
          std::shared_ptr<const binary::Module> App,
          const std::vector<uint8_t> &Input);

/// Run under the DBI engine without persistence.
ErrorOr<EngineRun>
runUnderEngine(const loader::ModuleRegistry &Registry,
               std::shared_ptr<const binary::Module> App,
               const std::vector<uint8_t> &Input,
               dbi::Tool *ClientTool = nullptr,
               const dbi::EngineOptions &Opts = dbi::EngineOptions(),
               loader::BasePolicy Policy = loader::BasePolicy::Fixed,
               uint64_t AslrSeed = 0);

/// Run under the DBI engine with persistent code caching.
ErrorOr<persist::PersistentRunResult>
runPersistent(const loader::ModuleRegistry &Registry,
              std::shared_ptr<const binary::Module> App,
              const std::vector<uint8_t> &Input,
              const persist::CacheDatabase &Db,
              const persist::PersistOptions &PersistOpts =
                  persist::PersistOptions(),
              dbi::Tool *ClientTool = nullptr,
              const dbi::EngineOptions &Opts = dbi::EngineOptions(),
              loader::BasePolicy Policy = loader::BasePolicy::Fixed,
              uint64_t AslrSeed = 0);

} // namespace workloads
} // namespace pcc

#endif // PCC_WORKLOADS_RUNNER_H
