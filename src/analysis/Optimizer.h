//===- analysis/Optimizer.h - Finalize-time trace optimizer -----*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The finalize-time AOT optimization pipeline that promotes hot
/// persisted traces to a higher optimization generation:
///
///   1. constant propagation (solveTraceConstants) — pure ALU results
///      proven constant are re-materialized as `Ldi`,
///   2. redundant-load elimination (solveTraceRedundantLoads) — a
///      reload whose value is provably still in a register becomes a
///      register move (or a Nop when it reloads in place), and
///   3. dead-flag/def elision (findDeadTraceDefs) — defs shadowed
///      before any exit become Nops,
///
/// plus superblock planning: fall-through-linked trace chains merged
/// into one straight-line body so the dispatcher and per-trace
/// materialization costs are paid once per chain.
///
/// Nothing here is trusted: the caller must prove every transformed
/// body with analysis::validateTranslation against the guest source
/// before persisting it, and keep the generation-0 body on rejection.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_ANALYSIS_OPTIMIZER_H
#define PCC_ANALYSIS_OPTIMIZER_H

#include "isa/Instruction.h"

#include <cstdint>
#include <vector>

namespace pcc {
namespace analysis {

/// What one optimizeTraceBody run changed.
struct TraceOptStats {
  uint32_t ConstsFolded = 0;
  uint32_t LoadsEliminated = 0;
  uint32_t FlagsElided = 0;

  bool changedAnything() const {
    return ConstsFolded || LoadsEliminated || FlagsElided;
  }
};

/// Runs the optimization pipeline over \p Body (a trace starting at
/// guest address \p GuestStart) in place. \p AllowConstFold gates
/// constant propagation — position-independent caches must disable it,
/// because a folded constant could bake in an address the rebase step
/// would otherwise relocate. Returns true when the body changed.
bool optimizeTraceBody(std::vector<isa::Instruction> &Body,
                       uint32_t GuestStart, bool AllowConstFold,
                       TraceOptStats &Stats);

/// One trace considered for superblock formation, in the caller's
/// index space.
struct SuperblockCandidate {
  uint32_t Start = 0;       ///< Guest start address.
  uint32_t InstCount = 0;   ///< Body length in instructions.
  uint32_t ModuleIndex = 0; ///< Owning module (chains never cross).
  uint32_t Heat = 0;        ///< Accumulated execution heat.
  /// The trace's final exit runs off the end (FallThrough) to
  /// FallTarget == Start + InstCount * 8.
  bool EndsInFallThrough = false;
  uint32_t FallTarget = 0;
};

/// Greedy heat-ordered superblock planning: starting from the hottest
/// unconsumed candidate, follows contiguous fall-through edges
/// (FallTarget must be exactly the next candidate's Start, same
/// module) while the combined body stays within \p MaxInsts. Returns
/// chains of candidate indices, each at least two long; a candidate
/// appears in at most one chain. Tail members keep their own traces
/// (tail duplication — they remain valid entry points), so the caller
/// merges each chain into the head's record only.
std::vector<std::vector<uint32_t>>
planSuperblocks(const std::vector<SuperblockCandidate> &Candidates,
                uint32_t MaxInsts);

} // namespace analysis
} // namespace pcc

#endif // PCC_ANALYSIS_OPTIMIZER_H
