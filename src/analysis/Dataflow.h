//===- analysis/Dataflow.h - Worklist dataflow framework --------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An iterative (worklist) dataflow framework over analysis::Cfg plus
/// the two instances the rest of the system uses: liveness of guest
/// registers (backward, may) and reaching definitions (forward, may).
///
/// Every edge that leaves the analyzed region — indirect transfers,
/// out-of-region targets, syscalls, and (in trace mode) every taken
/// branch — meets the problem's Boundary value. For liveness the
/// boundary is "all registers live": whatever executes after the region
/// may read anything, which is exactly the conservatism the
/// liveness-driven elision pass in dbi::Compiler needs to stay sound.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_ANALYSIS_DATAFLOW_H
#define PCC_ANALYSIS_DATAFLOW_H

#include "analysis/Cfg.h"

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace pcc {
namespace analysis {

/// \name Per-instruction register effects
/// @{

/// A set of guest registers, bit i = register i.
using RegSet = uint32_t;

/// All NumRegisters registers.
inline constexpr RegSet AllRegs =
    (1u << isa::NumRegisters) - 1;

/// Registers the instruction reads (including the implicit stack
/// pointer of Call/Callr/Ret, and everything for Sys — the emulation
/// unit may inspect any register).
RegSet instUses(const isa::Instruction &Inst);

/// The register the instruction writes, or -1. Call/Callr/Ret update
/// the stack pointer; Sys conservatively defines nothing (its clobbers
/// are modeled as uses by the boundary instead).
int instDef(const isa::Instruction &Inst);

/// True for instructions whose only effect is writing instDef(): ALU
/// ops and immediate loads. Ld is excluded — it can fault, which is a
/// guest-visible effect even when the loaded value is dead.
bool isPureDef(const isa::Instruction &Inst);

/// Evaluates a pure binary ALU op over concrete operands with exactly
/// vm::executeInstruction's semantics (uint32 wrap, Divu-by-zero -> 0,
/// shift counts masked to 5 bits, comparisons producing 0/1). For the
/// immediate forms pass the immediate as \p B. Returns nullopt for any
/// opcode that is not a pure ALU op.
std::optional<uint32_t> foldBinaryOp(isa::Opcode Op, uint32_t A,
                                     uint32_t B);

/// @}

/// Direction of a dataflow problem.
enum class Direction : uint8_t { Forward, Backward };

/// An iterative dataflow problem over the blocks of a Cfg. D is the
/// domain value (a value type with operator==).
template <typename D> struct DataflowProblem {
  Direction Dir = Direction::Forward;
  /// Initial interior value (the meet identity / optimistic value).
  D Init{};
  /// Value met in from outside the region: at root blocks (forward)
  /// or across external-successor edges (backward).
  D Boundary{};
  /// Meet of two values (must be monotone, e.g. set union).
  std::function<D(const D &, const D &)> Meet;
  /// Transfer across block \p Block given the value at its input side.
  std::function<D(const Cfg &G, uint32_t Block, const D &)> Transfer;
};

/// Per-block fixpoint: In/Out in the conventional orientation (In is
/// the value before the block's first instruction, Out after its last,
/// for both directions).
template <typename D> struct DataflowSolution {
  std::vector<D> In, Out;
};

/// Runs \p P to fixpoint over \p G with a worklist. Unreachable blocks
/// do not exist in a Cfg; blocks with no predecessors (forward) or no
/// successors and no external edge (backward) keep Init on their meet
/// side.
template <typename D>
DataflowSolution<D> solveDataflow(const Cfg &G,
                                  const DataflowProblem<D> &P) {
  const auto &Blocks = G.blocks();
  const size_t N = Blocks.size();
  DataflowSolution<D> S;
  S.In.assign(N, P.Init);
  S.Out.assign(N, P.Init);

  std::vector<bool> IsRoot(N, false);
  for (uint32_t R : G.roots())
    IsRoot[R] = true;

  std::vector<bool> Queued(N, true);
  std::vector<uint32_t> Work;
  Work.reserve(N);
  for (uint32_t I = 0; I != N; ++I)
    Work.push_back(static_cast<uint32_t>(N - 1 - I));

  while (!Work.empty()) {
    uint32_t B = Work.back();
    Work.pop_back();
    Queued[B] = false;

    if (P.Dir == Direction::Forward) {
      D NewIn = IsRoot[B] ? P.Boundary : P.Init;
      for (uint32_t Pred : Blocks[B].Preds)
        NewIn = P.Meet(NewIn, S.Out[Pred]);
      S.In[B] = std::move(NewIn);
      D NewOut = P.Transfer(G, B, S.In[B]);
      if (!(NewOut == S.Out[B])) {
        S.Out[B] = std::move(NewOut);
        for (uint32_t Succ : Blocks[B].Succs)
          if (!Queued[Succ]) {
            Queued[Succ] = true;
            Work.push_back(Succ);
          }
      }
    } else {
      D NewOut = Blocks[B].HasExternalSucc ? P.Boundary : P.Init;
      for (uint32_t Succ : Blocks[B].Succs)
        NewOut = P.Meet(NewOut, S.In[Succ]);
      S.Out[B] = std::move(NewOut);
      D NewIn = P.Transfer(G, B, S.Out[B]);
      if (!(NewIn == S.In[B])) {
        S.In[B] = std::move(NewIn);
        for (uint32_t Pred : Blocks[B].Preds)
          if (!Queued[Pred]) {
            Queued[Pred] = true;
            Work.push_back(Pred);
          }
      }
    }
  }
  return S;
}

/// \name Liveness (backward, may)
/// @{

struct LivenessResult {
  /// Registers live at block entry / exit, per block.
  std::vector<RegSet> LiveIn, LiveOut;

  /// Registers live immediately *before* instruction \p InstIndex of
  /// block \p Block executes (recomputed by a backward walk from
  /// LiveOut).
  RegSet liveBefore(const Cfg &G, uint32_t Block,
                    uint32_t InstIndex) const;
};

LivenessResult solveLiveness(const Cfg &G);

/// @}

/// \name Reaching definitions (forward, may)
/// @{

struct ReachingDefsResult {
  /// Definition sites: instruction index of each def, in instruction
  /// order. Def id d is DefSites[d].
  std::vector<uint32_t> DefSites;
  /// Def-id bitsets (one uint64_t word per 64 defs) at block entry and
  /// exit.
  std::vector<std::vector<uint64_t>> In, Out;

  bool reachesEntry(uint32_t DefId, uint32_t Block) const {
    return (In[Block][DefId / 64] >> (DefId % 64)) & 1;
  }
  bool reachesExit(uint32_t DefId, uint32_t Block) const {
    return (Out[Block][DefId / 64] >> (DefId % 64)) & 1;
  }
};

ReachingDefsResult solveReachingDefs(const Cfg &G);

/// @}

/// Dead pure defs of a DBI trace body: instructions whose destination
/// register is overwritten before control can leave the trace (every
/// exit point conservatively treats all registers as live, so only
/// defs shadowed within the trace qualify). The result is what the
/// Compiler's --opt-flags pass may replace with Nop; the translation
/// validator accepts exactly these substitutions.
std::vector<bool>
findDeadTraceDefs(const std::vector<isa::Instruction> &Body,
                  uint32_t StartAddr);

/// \name Constant propagation (forward, must)
/// @{

/// Lattice value of one register: Top (unconstrained optimistic),
/// Konst (known compile-time constant), or Bottom (runtime value).
struct ConstVal {
  enum State : uint8_t { Top, Konst, Bottom };
  uint8_t S = Top;
  uint32_t Value = 0;

  bool operator==(const ConstVal &O) const {
    return S == O.S && (S != Konst || Value == O.Value);
  }
};

/// Per-register constant lattice over a whole machine state.
using ConstState = std::array<ConstVal, isa::NumRegisters>;

struct TraceConstantsResult {
  /// Folded[I] holds the constant a pure binary ALU instruction I is
  /// statically proven to produce (all operands constant at I), i.e.
  /// the value a promoted body may materialize with `Ldi rd, Folded[I]`
  /// instead. Empty optional everywhere else (including Ldi itself).
  std::vector<std::optional<uint32_t>> Folded;
};

/// Constant propagation over a DBI trace body (trace-model CFG: taken
/// branches leave the region; registers are unknown at entry). Built on
/// the generic worklist framework with the must-meet per-register
/// lattice above.
TraceConstantsResult
solveTraceConstants(const std::vector<isa::Instruction> &Body,
                    uint32_t StartAddr);

/// @}

/// \name Available loads (forward, must)
/// @{

/// One available-load fact: register Holder currently contains the
/// value of guest memory [Base + Imm], and neither Base nor Holder has
/// been redefined — and no store or syscall has intervened — since the
/// load that established it.
struct AvailLoad {
  uint8_t Base = 0;
  uint8_t Holder = 0;
  uint32_t Imm = 0;

  bool operator==(const AvailLoad &O) const {
    return Base == O.Base && Holder == O.Holder && Imm == O.Imm;
  }
};

/// The available-loads domain: either the universal set (meet
/// identity, before any path reaches a block) or an explicit fact set.
struct AvailSet {
  bool Universal = false;
  std::vector<AvailLoad> Facts;

  bool operator==(const AvailSet &O) const {
    return Universal == O.Universal &&
           (Universal || Facts == O.Facts);
  }
};

struct TraceRedundantLoadsResult {
  /// Holder[I] >= 0 iff instruction I is a Ld whose loaded value is
  /// already held in register Holder[I] (same base register with the
  /// same value, same displacement, no intervening store/syscall). The
  /// load may be replaced by a register move from that holder (or a
  /// Nop when the holder is the destination itself).
  std::vector<int> Holder;
};

/// Available-load analysis over a DBI trace body (trace-model CFG).
/// Any St conservatively kills every fact — the ISA has no alias
/// information — as does Sys; Call/Callr push to the stack and kill
/// everything too.
TraceRedundantLoadsResult
solveTraceRedundantLoads(const std::vector<isa::Instruction> &Body,
                         uint32_t StartAddr);

/// @}

} // namespace analysis
} // namespace pcc

#endif // PCC_ANALYSIS_DATAFLOW_H
