//===- analysis/Dataflow.h - Worklist dataflow framework --------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An iterative (worklist) dataflow framework over analysis::Cfg plus
/// the two instances the rest of the system uses: liveness of guest
/// registers (backward, may) and reaching definitions (forward, may).
///
/// Every edge that leaves the analyzed region — indirect transfers,
/// out-of-region targets, syscalls, and (in trace mode) every taken
/// branch — meets the problem's Boundary value. For liveness the
/// boundary is "all registers live": whatever executes after the region
/// may read anything, which is exactly the conservatism the
/// liveness-driven elision pass in dbi::Compiler needs to stay sound.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_ANALYSIS_DATAFLOW_H
#define PCC_ANALYSIS_DATAFLOW_H

#include "analysis/Cfg.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace pcc {
namespace analysis {

/// \name Per-instruction register effects
/// @{

/// A set of guest registers, bit i = register i.
using RegSet = uint32_t;

/// All NumRegisters registers.
inline constexpr RegSet AllRegs =
    (1u << isa::NumRegisters) - 1;

/// Registers the instruction reads (including the implicit stack
/// pointer of Call/Callr/Ret, and everything for Sys — the emulation
/// unit may inspect any register).
RegSet instUses(const isa::Instruction &Inst);

/// The register the instruction writes, or -1. Call/Callr/Ret update
/// the stack pointer; Sys conservatively defines nothing (its clobbers
/// are modeled as uses by the boundary instead).
int instDef(const isa::Instruction &Inst);

/// True for instructions whose only effect is writing instDef(): ALU
/// ops and immediate loads. Ld is excluded — it can fault, which is a
/// guest-visible effect even when the loaded value is dead.
bool isPureDef(const isa::Instruction &Inst);

/// @}

/// Direction of a dataflow problem.
enum class Direction : uint8_t { Forward, Backward };

/// An iterative dataflow problem over the blocks of a Cfg. D is the
/// domain value (a value type with operator==).
template <typename D> struct DataflowProblem {
  Direction Dir = Direction::Forward;
  /// Initial interior value (the meet identity / optimistic value).
  D Init{};
  /// Value met in from outside the region: at root blocks (forward)
  /// or across external-successor edges (backward).
  D Boundary{};
  /// Meet of two values (must be monotone, e.g. set union).
  std::function<D(const D &, const D &)> Meet;
  /// Transfer across block \p Block given the value at its input side.
  std::function<D(const Cfg &G, uint32_t Block, const D &)> Transfer;
};

/// Per-block fixpoint: In/Out in the conventional orientation (In is
/// the value before the block's first instruction, Out after its last,
/// for both directions).
template <typename D> struct DataflowSolution {
  std::vector<D> In, Out;
};

/// Runs \p P to fixpoint over \p G with a worklist. Unreachable blocks
/// do not exist in a Cfg; blocks with no predecessors (forward) or no
/// successors and no external edge (backward) keep Init on their meet
/// side.
template <typename D>
DataflowSolution<D> solveDataflow(const Cfg &G,
                                  const DataflowProblem<D> &P) {
  const auto &Blocks = G.blocks();
  const size_t N = Blocks.size();
  DataflowSolution<D> S;
  S.In.assign(N, P.Init);
  S.Out.assign(N, P.Init);

  std::vector<bool> IsRoot(N, false);
  for (uint32_t R : G.roots())
    IsRoot[R] = true;

  std::vector<bool> Queued(N, true);
  std::vector<uint32_t> Work;
  Work.reserve(N);
  for (uint32_t I = 0; I != N; ++I)
    Work.push_back(static_cast<uint32_t>(N - 1 - I));

  while (!Work.empty()) {
    uint32_t B = Work.back();
    Work.pop_back();
    Queued[B] = false;

    if (P.Dir == Direction::Forward) {
      D NewIn = IsRoot[B] ? P.Boundary : P.Init;
      for (uint32_t Pred : Blocks[B].Preds)
        NewIn = P.Meet(NewIn, S.Out[Pred]);
      S.In[B] = std::move(NewIn);
      D NewOut = P.Transfer(G, B, S.In[B]);
      if (!(NewOut == S.Out[B])) {
        S.Out[B] = std::move(NewOut);
        for (uint32_t Succ : Blocks[B].Succs)
          if (!Queued[Succ]) {
            Queued[Succ] = true;
            Work.push_back(Succ);
          }
      }
    } else {
      D NewOut = Blocks[B].HasExternalSucc ? P.Boundary : P.Init;
      for (uint32_t Succ : Blocks[B].Succs)
        NewOut = P.Meet(NewOut, S.In[Succ]);
      S.Out[B] = std::move(NewOut);
      D NewIn = P.Transfer(G, B, S.Out[B]);
      if (!(NewIn == S.In[B])) {
        S.In[B] = std::move(NewIn);
        for (uint32_t Pred : Blocks[B].Preds)
          if (!Queued[Pred]) {
            Queued[Pred] = true;
            Work.push_back(Pred);
          }
      }
    }
  }
  return S;
}

/// \name Liveness (backward, may)
/// @{

struct LivenessResult {
  /// Registers live at block entry / exit, per block.
  std::vector<RegSet> LiveIn, LiveOut;

  /// Registers live immediately *before* instruction \p InstIndex of
  /// block \p Block executes (recomputed by a backward walk from
  /// LiveOut).
  RegSet liveBefore(const Cfg &G, uint32_t Block,
                    uint32_t InstIndex) const;
};

LivenessResult solveLiveness(const Cfg &G);

/// @}

/// \name Reaching definitions (forward, may)
/// @{

struct ReachingDefsResult {
  /// Definition sites: instruction index of each def, in instruction
  /// order. Def id d is DefSites[d].
  std::vector<uint32_t> DefSites;
  /// Def-id bitsets (one uint64_t word per 64 defs) at block entry and
  /// exit.
  std::vector<std::vector<uint64_t>> In, Out;

  bool reachesEntry(uint32_t DefId, uint32_t Block) const {
    return (In[Block][DefId / 64] >> (DefId % 64)) & 1;
  }
  bool reachesExit(uint32_t DefId, uint32_t Block) const {
    return (Out[Block][DefId / 64] >> (DefId % 64)) & 1;
  }
};

ReachingDefsResult solveReachingDefs(const Cfg &G);

/// @}

/// Dead pure defs of a DBI trace body: instructions whose destination
/// register is overwritten before control can leave the trace (every
/// exit point conservatively treats all registers as live, so only
/// defs shadowed within the trace qualify). The result is what the
/// Compiler's --opt-flags pass may replace with Nop; the translation
/// validator accepts exactly these substitutions.
std::vector<bool>
findDeadTraceDefs(const std::vector<isa::Instruction> &Body,
                  uint32_t StartAddr);

} // namespace analysis
} // namespace pcc

#endif // PCC_ANALYSIS_DATAFLOW_H
