//===- analysis/Certificate.cpp -------------------------------------------===//

#include "analysis/Certificate.h"

#include "support/Hashing.h"
#include "support/StringUtils.h"

#include <cstring>

using namespace pcc;
using namespace pcc::analysis;
using isa::Instruction;
using isa::InstructionSize;

namespace {

/// Blob layout (all fields little-endian):
///
///   u32 Magic            'CERT'
///   u16 Version          CertVersion
///   u16 Reserved         0
///   u32 GuestStart
///   u32 OptGen
///   u32 InstCount        embedded source length (== body length)
///   u32 SrcCrc
///   u32 BodyCrc
///   u32 StepCount
///   u32 WitnessCount
///   u32 ExitCount
///   u32 StoresDigest
///   u32 LoadsDigest
///   u32 StepBytes        packed step-stream byte length
///   -- 52 bytes to here --
///   InstCount * 8        embedded source instruction encodings
///   StepBytes            packed step stream (see below)
///   WitnessCount * 4     skip witnesses
///   ExitCount * 4        per-exit digests
///   u32 CertCrc          CRC32 over every preceding blob byte
///
/// Packed step stream: most intern requests create a brand-new node
/// (the next dense id), so the stream stores a *fresh bitmap* of
/// StepCount bits (bit i set = step i interned a new node — one bit
/// instead of four bytes) followed by one LEB128 varint per clear bit,
/// in step order: the *backref distance* D >= 1 from the current node
/// count F, naming existing node F - D. This keeps the dominant blob
/// section ~16x smaller than flat u32 ids, which is most of what makes
/// a certificate cheaper to CRC, store and ship than a re-proof.
constexpr uint32_t CertMagic = 0x54524543; // "CERT"
constexpr size_t CertHeaderBytes = 52;

void putU16(std::vector<uint8_t> &Out, uint16_t V) {
  Out.push_back(static_cast<uint8_t>(V));
  Out.push_back(static_cast<uint8_t>(V >> 8));
}

void putU32(std::vector<uint8_t> &Out, uint32_t V) {
  for (unsigned I = 0; I != 4; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

uint16_t getU16(const uint8_t *P) {
  return static_cast<uint16_t>(P[0] | (P[1] << 8));
}

uint32_t getU32(const uint8_t *P) {
  return static_cast<uint32_t>(P[0]) |
         (static_cast<uint32_t>(P[1]) << 8) |
         (static_cast<uint32_t>(P[2]) << 16) |
         (static_cast<uint32_t>(P[3]) << 24);
}

Status malformed(const char *What) {
  return Status::error(ErrorCode::InvalidFormat,
                       formatString("certificate: %s", What));
}

} // namespace

std::vector<uint8_t> Certificate::serialize() const {
  // Pack the step stream: fresh bitmap + varint backref distances. A
  // recorded id equal to the running fresh count F is a new node; a
  // smaller one is a backref at distance F - Id. (An id above F never
  // comes from the prover; encode it as fresh so even a hand-corrupted
  // in-memory certificate serializes to a well-formed — if unprovable —
  // blob.)
  std::vector<uint8_t> Bitmap((Steps.size() + 7) / 8, 0);
  std::vector<uint8_t> Refs;
  uint32_t F = 0;
  for (size_t I = 0; I != Steps.size(); ++I) {
    const uint32_t Id = Steps[I];
    if (Id >= F) {
      Bitmap[I >> 3] |= static_cast<uint8_t>(1u << (I & 7));
      ++F;
    } else {
      uint32_t D = F - Id;
      while (D >= 0x80) {
        Refs.push_back(static_cast<uint8_t>(0x80 | (D & 0x7f)));
        D >>= 7;
      }
      Refs.push_back(static_cast<uint8_t>(D));
    }
  }
  const size_t StepBytes = Bitmap.size() + Refs.size();

  std::vector<uint8_t> Out;
  Out.reserve(CertHeaderBytes + Source.size() * InstructionSize +
              StepBytes + (Witnesses.size() + ExitDigests.size()) * 4 + 4);
  putU32(Out, CertMagic);
  putU16(Out, Version);
  putU16(Out, 0);
  putU32(Out, GuestStart);
  putU32(Out, OptGen);
  putU32(Out, static_cast<uint32_t>(Source.size()));
  putU32(Out, SrcCrc);
  putU32(Out, BodyCrc);
  putU32(Out, static_cast<uint32_t>(Steps.size()));
  putU32(Out, static_cast<uint32_t>(Witnesses.size()));
  putU32(Out, static_cast<uint32_t>(ExitDigests.size()));
  putU32(Out, StoresDigest);
  putU32(Out, LoadsDigest);
  putU32(Out, static_cast<uint32_t>(StepBytes));
  for (const Instruction &Inst : Source)
    Inst.encodeTo(Out);
  Out.insert(Out.end(), Bitmap.begin(), Bitmap.end());
  Out.insert(Out.end(), Refs.begin(), Refs.end());
  for (uint32_t W : Witnesses)
    putU32(Out, W);
  for (uint32_t D : ExitDigests)
    putU32(Out, D);
  putU32(Out, crc32(Out.data(), Out.size()));
  return Out;
}

std::optional<CertPeek> pcc::analysis::peekCertificate(const uint8_t *Data,
                                                       size_t Size) {
  if (Size < CertHeaderBytes || getU32(Data) != CertMagic ||
      getU16(Data + 4) != CertVersion)
    return std::nullopt;
  CertPeek P;
  P.GuestStart = getU32(Data + 8);
  P.OptGen = getU32(Data + 12);
  P.InstCount = getU32(Data + 16);
  P.SrcCrc = getU32(Data + 20);
  P.BodyCrc = getU32(Data + 24);
  return P;
}

ErrorOr<CertView> pcc::analysis::viewCertificate(const uint8_t *Data,
                                                 size_t Size) {
  if (Size < CertHeaderBytes + 4)
    return malformed("blob truncated");
  if (getU32(Data) != CertMagic)
    return malformed("bad magic");
  if (getU16(Data + 4) != CertVersion)
    return malformed("unsupported version");

  CertView V;
  V.GuestStart = getU32(Data + 8);
  V.OptGen = getU32(Data + 12);
  V.InstCount = getU32(Data + 16);
  V.SrcCrc = getU32(Data + 20);
  V.BodyCrc = getU32(Data + 24);
  V.StepCount = getU32(Data + 28);
  V.WitnessCount = getU32(Data + 32);
  V.ExitCount = getU32(Data + 36);
  V.StoresDigest = getU32(Data + 40);
  V.LoadsDigest = getU32(Data + 44);
  const uint32_t StepBytes = getU32(Data + 48);

  // Overflow-safe total: each count contributes at most 8 bytes per
  // element and all counts are 32-bit, so 64-bit math is exact.
  const uint64_t Want =
      static_cast<uint64_t>(CertHeaderBytes) +
      static_cast<uint64_t>(V.InstCount) * InstructionSize +
      static_cast<uint64_t>(StepBytes) +
      (static_cast<uint64_t>(V.WitnessCount) +
       static_cast<uint64_t>(V.ExitCount)) *
          4 +
      4;
  if (Want != Size)
    return malformed("declared sizes do not match blob size");
  if (StepBytes < (static_cast<uint64_t>(V.StepCount) + 7) / 8)
    return malformed("step stream shorter than its fresh bitmap");

  const uint32_t WantCrc = getU32(Data + Size - 4);
  if (crc32(Data, Size - 4) != WantCrc)
    return malformed("blob CRC mismatch");

  V.SourceBytes = Data + CertHeaderBytes;
  V.StepBitmap =
      V.SourceBytes + static_cast<size_t>(V.InstCount) * InstructionSize;
  V.StepRefs = V.StepBitmap + (V.StepCount + 7) / 8;
  V.StepRefsEnd = V.StepBitmap + StepBytes;
  V.WitnessWords = V.StepRefsEnd;
  V.ExitDigestWords =
      V.WitnessWords + static_cast<size_t>(V.WitnessCount) * 4;
  return V;
}

ErrorOr<Certificate> Certificate::deserialize(const uint8_t *Data,
                                              size_t Size) {
  auto View = viewCertificate(Data, Size);
  if (!View)
    return View.status();
  const CertView &V = *View;

  Certificate C;
  C.Version = getU16(Data + 4);
  C.GuestStart = V.GuestStart;
  C.OptGen = V.OptGen;
  C.SrcCrc = V.SrcCrc;
  C.BodyCrc = V.BodyCrc;
  C.StoresDigest = V.StoresDigest;
  C.LoadsDigest = V.LoadsDigest;

  auto Decoded = isa::decodeAll(V.SourceBytes, V.InstCount);
  if (!Decoded)
    return malformed("embedded source does not decode");
  C.Source = Decoded.take();

  // Unpack the step stream back to absolute node ids.
  const uint8_t *Ref = V.StepRefs;
  C.Steps.reserve(V.StepCount);
  uint32_t F = 0;
  for (uint32_t I = 0; I != V.StepCount; ++I) {
    if ((V.StepBitmap[I >> 3] >> (I & 7)) & 1) {
      C.Steps.push_back(F++);
      continue;
    }
    uint32_t D = 0;
    int Shift = 0;
    while (true) {
      if (Ref == V.StepRefsEnd || Shift > 28)
        return malformed("step backref varint overruns its section");
      const uint8_t B = *Ref++;
      D |= static_cast<uint32_t>(B & 0x7f) << Shift;
      if (!(B & 0x80))
        break;
      Shift += 7;
    }
    if (D == 0 || D > F)
      return malformed("step backref distance out of range");
    C.Steps.push_back(F - D);
  }
  if (Ref != V.StepRefsEnd)
    return malformed("unconsumed bytes after the step stream");

  C.Witnesses.reserve(V.WitnessCount);
  for (uint32_t I = 0; I != V.WitnessCount; ++I)
    C.Witnesses.push_back(getU32(V.WitnessWords + 4 * static_cast<size_t>(I)));
  C.ExitDigests.reserve(V.ExitCount);
  for (uint32_t I = 0; I != V.ExitCount; ++I)
    C.ExitDigests.push_back(
        getU32(V.ExitDigestWords + 4 * static_cast<size_t>(I)));
  return C;
}

uint32_t pcc::analysis::exitDigest(const SymExit &E,
                                   uint32_t MatchedLoads) {
  std::array<uint32_t, 7 + isa::NumRegisters> Packed;
  Packed[0] = static_cast<uint32_t>(E.K);
  Packed[1] = E.InstIndex;
  Packed[2] = E.Cond;
  Packed[3] = E.Target;
  Packed[4] = E.SysNumber;
  Packed[5] = E.NumStores;
  Packed[6] = MatchedLoads;
  for (unsigned R = 0; R != isa::NumRegisters; ++R)
    Packed[7 + R] = E.Regs[R];
  return crc32(Packed.data(), Packed.size() * sizeof(uint32_t));
}

uint32_t pcc::analysis::storesDigest(const SymTrace &T) {
  // (address, value) pairs CRC'd straight out of the trace: the pair
  // layout is two adjacent u32s, byte-identical to pushing Addr then
  // Val into a packed vector.
  static_assert(sizeof(std::pair<uint32_t, uint32_t>) ==
                2 * sizeof(uint32_t));
  return crc32(T.Stores.data(),
               T.Stores.size() * sizeof(std::pair<uint32_t, uint32_t>));
}

uint32_t pcc::analysis::loadsDigest(const SymTrace &T) {
  static_assert(sizeof(LoadRec) == 2 * sizeof(uint32_t));
  return crc32(T.Loads.data(), T.Loads.size() * sizeof(LoadRec));
}
