//===- analysis/Cfg.cpp ---------------------------------------------------===//

#include "analysis/Cfg.h"

#include <algorithm>
#include <map>
#include <set>

using namespace pcc;
using namespace pcc::analysis;
using isa::Instruction;
using isa::InstructionSize;
using isa::Opcode;

int Cfg::blockStartingAt(uint32_t Addr) const {
  auto It = std::lower_bound(Blocks.begin(), Blocks.end(), Addr,
                             [](const CfgBlock &B, uint32_t A) {
                               return B.Start < A;
                             });
  if (It == Blocks.end() || It->Start != Addr)
    return -1;
  return static_cast<int>(It - Blocks.begin());
}

int Cfg::blockContaining(uint32_t Addr) const {
  auto It = std::upper_bound(Blocks.begin(), Blocks.end(), Addr,
                             [](uint32_t A, const CfgBlock &B) {
                               return A < B.Start;
                             });
  if (It == Blocks.begin())
    return -1;
  --It;
  if (Addr - It->Start < It->InstCount * InstructionSize)
    return static_cast<int>(It - Blocks.begin());
  return -1;
}

namespace {

/// Where control can go after the instruction at \p Index.
struct Flow {
  /// Fall-through to Index + 1 (sequential or untaken branch or the
  /// resumption after a syscall).
  bool FallsThrough = false;
  /// Absolute target of a direct transfer (taken branch, Jmp, Call).
  std::optional<uint32_t> Target = std::nullopt;
  /// Jr/Callr/Ret: target unknowable statically.
  bool Indirect = false;
  /// Ends the containing basic block.
  bool EndsBlock = false;
};

Flow flowOf(const Instruction &Inst) {
  Flow F;
  switch (Inst.Op) {
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Bltu:
  case Opcode::Bgeu:
    F.FallsThrough = true;
    F.Target = Inst.Imm;
    F.EndsBlock = true;
    break;
  case Opcode::Jmp:
    F.Target = Inst.Imm;
    F.EndsBlock = true;
    break;
  case Opcode::Call:
    // The callee may return: the return point is discoverable code
    // even though this instruction never falls through itself.
    F.FallsThrough = true;
    F.Target = Inst.Imm;
    F.EndsBlock = true;
    break;
  case Opcode::Callr:
    F.FallsThrough = true;
    F.Indirect = true;
    F.EndsBlock = true;
    break;
  case Opcode::Jr:
  case Opcode::Ret:
    F.Indirect = true;
    F.EndsBlock = true;
    break;
  case Opcode::Halt:
    F.EndsBlock = true;
    break;
  case Opcode::Sys:
    // Execution resumes at the fall-through after emulation, but the
    // transfer leaves the translated region (thread switch point).
    F.FallsThrough = true;
    F.EndsBlock = true;
    break;
  default:
    F.FallsThrough = true;
    break;
  }
  return F;
}

} // namespace

Cfg pcc::analysis::buildCfg(std::vector<Instruction> Insts, uint32_t Base,
                            const std::vector<uint32_t> &RootAddrs,
                            const CfgOptions &Opts) {
  Cfg G;
  G.Insts = std::move(Insts);
  G.Base = Base;
  const uint32_t N = static_cast<uint32_t>(G.Insts.size());

  auto IndexOf = [&](uint32_t Addr) -> std::optional<uint32_t> {
    if (Addr < Base || (Addr - Base) % InstructionSize != 0)
      return std::nullopt;
    uint32_t Index = (Addr - Base) / InstructionSize;
    if (Index >= N)
      return std::nullopt;
    return Index;
  };

  // Pass 1: worklist reachability from the roots, collecting leaders
  // (block entry instructions). A direct target inside the region is a
  // leader — and in trace mode additionally an *external* edge, so it
  // is not followed.
  std::vector<bool> Reachable(N, false);
  std::set<uint32_t> Leaders;
  std::vector<uint32_t> Work;
  std::vector<uint32_t> RootIndices;
  for (uint32_t Addr : RootAddrs) {
    auto Index = IndexOf(Addr);
    if (!Index)
      continue;
    RootIndices.push_back(*Index);
    if (Leaders.insert(*Index).second)
      Work.push_back(*Index);
  }

  while (!Work.empty()) {
    uint32_t I = Work.back();
    Work.pop_back();
    // Walk the straight-line run from this leader. An
    // already-reachable instruction means the rest of the run (and its
    // outgoing targets) were covered by an earlier walk.
    for (; I < N && !Reachable[I]; ++I) {
      Reachable[I] = true;
      Flow F = flowOf(G.Insts[I]);
      if (F.Target && !Opts.BranchTargetsExternal) {
        if (auto T = IndexOf(*F.Target))
          if (Leaders.insert(*T).second)
            Work.push_back(*T);
      }
      if (F.EndsBlock) {
        if (F.FallsThrough && I + 1 < N &&
            Leaders.insert(I + 1).second)
          Work.push_back(I + 1);
        break;
      }
    }
  }

  // Pass 2: carve blocks out of the reachable instructions. A block
  // runs from its leader to the next leader, a block-ending
  // instruction, or the end of the reachable run.
  std::map<uint32_t, uint32_t> BlockOfLeader; // leader index -> block id
  for (uint32_t L : Leaders) {
    if (L >= N || !Reachable[L])
      continue;
    CfgBlock B;
    B.Start = G.addrOf(L);
    B.FirstInst = L;
    uint32_t I = L;
    for (; I < N && Reachable[I]; ++I) {
      if (I != L && Leaders.count(I))
        break; // next block starts here
      if (flowOf(G.Insts[I]).EndsBlock) {
        ++I;
        break;
      }
    }
    B.InstCount = I - L;
    if (B.InstCount == 0)
      continue;
    BlockOfLeader[L] = static_cast<uint32_t>(G.Blocks.size());
    G.Blocks.push_back(std::move(B));
  }

  // Pass 3: edges. Succs from the last instruction's flow; preds are
  // the reverse. External targets (outside the region, or any direct
  // target in trace mode) and indirect transfers mark the block.
  for (uint32_t BI = 0; BI != G.Blocks.size(); ++BI) {
    CfgBlock &B = G.Blocks[BI];
    uint32_t Last = B.lastInst();
    Flow F = flowOf(G.Insts[Last]);
    std::set<uint32_t> Succ;

    if (F.Indirect) {
      B.EndsInIndirect = true;
      B.HasExternalSucc = true;
      G.IndirectSources.push_back(Last);
    }
    if (F.Target) {
      auto T = IndexOf(*F.Target);
      if (Opts.BranchTargetsExternal || !T)
        B.HasExternalSucc = true;
      else if (auto It = BlockOfLeader.find(*T);
               It != BlockOfLeader.end())
        Succ.insert(It->second);
      else
        B.HasExternalSucc = true; // target not reachable as a block
    }
    bool Falls = F.EndsBlock ? F.FallsThrough
                             : true; // block split by a leader
    if (Falls) {
      uint32_t NextIndex = Last + 1;
      if (NextIndex < N) {
        if (auto It = BlockOfLeader.find(NextIndex);
            It != BlockOfLeader.end())
          Succ.insert(It->second);
        else
          B.HasExternalSucc = true;
      } else {
        B.HasExternalSucc = true; // falls off the analyzed region
      }
    }
    if (G.Insts[Last].Op == Opcode::Sys)
      B.HasExternalSucc = true; // emulation unit observes all state

    B.Succs.assign(Succ.begin(), Succ.end());
    for (uint32_t S : Succ)
      G.Blocks[S].Preds.push_back(BI);
  }
  for (CfgBlock &B : G.Blocks) {
    std::sort(B.Preds.begin(), B.Preds.end());
    B.Preds.erase(std::unique(B.Preds.begin(), B.Preds.end()),
                  B.Preds.end());
  }

  // Root block ids, deduplicated in first-seen order.
  std::set<uint32_t> SeenRoot;
  for (uint32_t R : RootIndices)
    if (auto It = BlockOfLeader.find(R); It != BlockOfLeader.end())
      if (SeenRoot.insert(It->second).second)
        G.Roots.push_back(It->second);

  std::sort(G.IndirectSources.begin(), G.IndirectSources.end());
  G.IndirectSources.erase(std::unique(G.IndirectSources.begin(),
                                      G.IndirectSources.end()),
                          G.IndirectSources.end());
  return G;
}

Cfg pcc::analysis::buildCfgFromBytes(const uint8_t *Bytes, size_t NumBytes,
                                     uint32_t Base,
                                     const std::vector<uint32_t> &RootAddrs,
                                     const CfgOptions &Opts) {
  isa::DecodeResult Decoded = isa::decodeBuffer(Bytes, NumBytes);
  Cfg G = buildCfg(std::move(Decoded.Insts), Base, RootAddrs, Opts);
  G.Fault = std::move(Decoded.Error);
  return G;
}
