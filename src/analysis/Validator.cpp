//===- analysis/Validator.cpp ---------------------------------------------===//

#include "analysis/Validator.h"

#include "analysis/Dataflow.h"
#include "support/StringUtils.h"

#include <array>
#include <map>
#include <tuple>

using namespace pcc;
using namespace pcc::analysis;
using isa::Instruction;
using isa::InstructionSize;
using isa::Opcode;

namespace {

/// Hash-consed symbolic expressions. Both executions intern into one
/// pool, so structural equality is id equality.
///
/// bin() additionally *canonicalizes* through semantics-preserving
/// rewrites — constant folding with exactly vm::executeInstruction's
/// arithmetic (via foldBinaryOp) and right-zero identities — so that a
/// body the finalize-time optimizer transformed (constants propagated,
/// redundant loads replaced by register moves) interns to the same ids
/// as the unoptimized source. Every rewrite maps an expression to a
/// semantically equal one, so id equality still implies value equality:
/// canonicalization only ever *accepts more* correct translations, it
/// never equates two expressions that could differ at runtime.
class ExprPool {
public:
  enum class Kind : uint8_t { Init, Const, Bin, Load };

  uint32_t init(unsigned Reg) {
    return intern(Kind::Init, 0, 0, 0, Reg);
  }
  uint32_t konst(uint32_t Value) {
    return intern(Kind::Const, 0, 0, 0, Value);
  }
  uint32_t bin(Opcode Op, uint32_t A, uint32_t B) {
    uint32_t AV = 0, BV = 0;
    const bool AConst = constValue(A, AV);
    const bool BConst = constValue(B, BV);
    if (AConst && BConst)
      if (auto V = foldBinaryOp(Op, AV, BV))
        return konst(*V);
    if (BConst && BV == 0) {
      // x op 0 == x for the additive/bitwise/shift family.
      switch (Op) {
      case Opcode::Add:
      case Opcode::Addi:
      case Opcode::Sub:
      case Opcode::Or:
      case Opcode::Ori:
      case Opcode::Xor:
      case Opcode::Xori:
      case Opcode::Shl:
      case Opcode::Shli:
      case Opcode::Shr:
      case Opcode::Shri:
        return A;
      default:
        break;
      }
    }
    return intern(Kind::Bin, static_cast<uint8_t>(Op), A, B, 0);
  }
  /// A memory read of \p Addr observing the first \p Version stores.
  uint32_t load(uint32_t Addr, uint32_t Version) {
    return intern(Kind::Load, 0, Addr, 0, Version);
  }

private:
  using Key = std::tuple<uint8_t, uint8_t, uint32_t, uint32_t, uint32_t>;
  std::map<Key, uint32_t> Interned;
  /// Node payloads by id (ids are assigned densely in intern order), so
  /// bin() can recognize Const operands.
  std::vector<Key> Nodes;

  bool constValue(uint32_t Id, uint32_t &Value) const {
    const Key &N = Nodes[Id];
    if (std::get<0>(N) != static_cast<uint8_t>(Kind::Const))
      return false;
    Value = std::get<4>(N);
    return true;
  }

  uint32_t intern(Kind K, uint8_t Op, uint32_t A, uint32_t B,
                  uint32_t Aux) {
    Key Id{static_cast<uint8_t>(K), Op, A, B, Aux};
    auto [It, Inserted] =
        Interned.emplace(Id, static_cast<uint32_t>(Interned.size()));
    if (Inserted)
      Nodes.push_back(Id);
    return It->second;
  }
};

constexpr uint32_t NoExpr = ~0u;

/// One point where control can leave the trace, with the symbolic
/// machine state observable there.
struct SymExit {
  enum class Kind : uint8_t {
    Branch,      ///< Conditional branch taken.
    Direct,      ///< Jmp/Call.
    Indirect,    ///< Jr/Callr/Ret.
    Syscall,     ///< Sys (control leaves to the emulation unit).
    Halt,        ///< Halt.
    FallThrough, ///< Ran off the end of the body.
  };

  Kind K = Kind::Halt;
  uint32_t InstIndex = 0;
  uint32_t Cond = NoExpr;   ///< Branch condition expression.
  uint32_t Target = NoExpr; ///< Exit target expression.
  uint32_t SysNumber = 0;
  std::array<uint32_t, isa::NumRegisters> Regs{};
  uint32_t NumStores = 0; ///< Stores performed before this exit.
  uint32_t NumLoads = 0;  ///< Loads performed before this exit.
};

const char *exitKindName(SymExit::Kind K) {
  switch (K) {
  case SymExit::Kind::Branch:
    return "branch";
  case SymExit::Kind::Direct:
    return "direct";
  case SymExit::Kind::Indirect:
    return "indirect";
  case SymExit::Kind::Syscall:
    return "syscall";
  case SymExit::Kind::Halt:
    return "halt";
  case SymExit::Kind::FallThrough:
    return "fall-through";
  }
  return "?";
}

/// One memory read: the address expression (loads can fault) and the
/// value expression it produced. Two reads with equal Val read the same
/// address at the same store version — the second is redundant.
struct LoadRec {
  uint32_t Addr = 0;
  uint32_t Val = 0;

  bool operator==(const LoadRec &O) const {
    return Addr == O.Addr && Val == O.Val;
  }
};

/// The observable effects of one symbolic execution.
struct SymTrace {
  std::vector<SymExit> Exits;
  /// All stores in program order: (address expr, value expr).
  std::vector<std::pair<uint32_t, uint32_t>> Stores;
  /// All loads in program order.
  std::vector<LoadRec> Loads;
};

/// Symbolically executes \p Body following vm::executeInstruction's
/// semantics exactly (operands read before any write; Call pushes the
/// return address below the old stack pointer; Ret pops).
SymTrace symExecute(ExprPool &Pool, uint32_t GuestStart,
                    const std::vector<Instruction> &Body) {
  SymTrace T;
  std::array<uint32_t, isa::NumRegisters> Regs;
  for (unsigned R = 0; R != isa::NumRegisters; ++R)
    Regs[R] = Pool.init(R);

  auto Snapshot = [&](SymExit E) {
    E.Regs = Regs;
    E.NumStores = static_cast<uint32_t>(T.Stores.size());
    E.NumLoads = static_cast<uint32_t>(T.Loads.size());
    T.Exits.push_back(E);
  };
  auto Version = [&] {
    return static_cast<uint32_t>(T.Stores.size());
  };

  for (uint32_t I = 0; I != Body.size(); ++I) {
    const Instruction &Inst = Body[I];
    const uint32_t InstPc = GuestStart + I * InstructionSize;
    const uint32_t FallPc = InstPc + InstructionSize;
    const uint32_t A = Regs[Inst.Rs1];
    const uint32_t B = Regs[Inst.Rs2];
    const unsigned Sp = isa::StackPointerReg;

    switch (Inst.Op) {
    case Opcode::Nop:
      break;
    case Opcode::Halt:
      Snapshot(SymExit{SymExit::Kind::Halt, I, NoExpr, NoExpr, 0});
      return T;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Divu:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::Sltu:
    case Opcode::Seq:
      Regs[Inst.Rd] = Pool.bin(Inst.Op, A, B);
      break;
    case Opcode::Addi:
    case Opcode::Muli:
    case Opcode::Andi:
    case Opcode::Ori:
    case Opcode::Xori:
    case Opcode::Shli:
    case Opcode::Shri:
    case Opcode::Sltiu:
      Regs[Inst.Rd] = Pool.bin(Inst.Op, A, Pool.konst(Inst.Imm));
      break;
    case Opcode::Ldi:
      Regs[Inst.Rd] = Pool.konst(Inst.Imm);
      break;
    case Opcode::Ld: {
      uint32_t Addr = Pool.bin(Opcode::Add, A, Pool.konst(Inst.Imm));
      uint32_t Val = Pool.load(Addr, Version());
      T.Loads.push_back(LoadRec{Addr, Val});
      Regs[Inst.Rd] = Val;
      break;
    }
    case Opcode::St: {
      uint32_t Addr = Pool.bin(Opcode::Add, A, Pool.konst(Inst.Imm));
      T.Stores.emplace_back(Addr, B);
      break;
    }
    case Opcode::Beq:
    case Opcode::Bne:
    case Opcode::Bltu:
    case Opcode::Bgeu:
      Snapshot(SymExit{SymExit::Kind::Branch, I,
                       Pool.bin(Inst.Op, A, B), Pool.konst(Inst.Imm),
                       0});
      break; // fall through to the next instruction (untaken path)
    case Opcode::Jmp:
      Snapshot(SymExit{SymExit::Kind::Direct, I, NoExpr,
                       Pool.konst(Inst.Imm), 0});
      return T;
    case Opcode::Call:
    case Opcode::Callr: {
      uint32_t NewSp =
          Pool.bin(Opcode::Add, Regs[Sp],
                   Pool.konst(static_cast<uint32_t>(-4)));
      T.Stores.emplace_back(NewSp, Pool.konst(FallPc));
      Regs[Sp] = NewSp;
      if (Inst.Op == Opcode::Call)
        Snapshot(SymExit{SymExit::Kind::Direct, I, NoExpr,
                         Pool.konst(Inst.Imm), 0});
      else
        Snapshot(SymExit{SymExit::Kind::Indirect, I, NoExpr, A, 0});
      return T;
    }
    case Opcode::Jr:
      Snapshot(SymExit{SymExit::Kind::Indirect, I, NoExpr, A, 0});
      return T;
    case Opcode::Ret: {
      uint32_t Addr = Regs[Sp];
      uint32_t Return = Pool.load(Addr, Version());
      T.Loads.push_back(LoadRec{Addr, Return});
      Regs[Sp] =
          Pool.bin(Opcode::Add, Addr, Pool.konst(4));
      Snapshot(
          SymExit{SymExit::Kind::Indirect, I, NoExpr, Return, 0});
      return T;
    }
    case Opcode::Sys:
      Snapshot(SymExit{SymExit::Kind::Syscall, I, NoExpr,
                       Pool.konst(FallPc), Inst.Imm});
      return T;
    case Opcode::NumOpcodes:
      break;
    }
  }

  if (!Body.empty()) {
    uint32_t EndPc = GuestStart +
                     static_cast<uint32_t>(Body.size()) * InstructionSize;
    Snapshot(SymExit{SymExit::Kind::FallThrough,
                     static_cast<uint32_t>(Body.size()) - 1, NoExpr,
                     Pool.konst(EndPc), 0});
  }
  return T;
}

ValidationResult mismatch(uint32_t InstIndex, uint32_t ExitIndex,
                          std::string What) {
  ValidationResult R;
  R.Equivalent = false;
  R.Mismatch = TraceMismatch{InstIndex, ExitIndex, std::move(What)};
  return R;
}

} // namespace

std::string ValidationResult::message() const {
  if (Equivalent)
    return "equivalent";
  return formatString("mismatch at instruction %u%s: %s",
                      Mismatch->InstIndex,
                      Mismatch->ExitIndex == ~0u
                          ? ""
                          : formatString(" (exit %u)",
                                         Mismatch->ExitIndex)
                                .c_str(),
                      Mismatch->What.c_str());
}

ValidationResult pcc::analysis::validateTranslation(
    uint32_t GuestStart, const std::vector<Instruction> &Source,
    const std::vector<Instruction> &Translated) {
  if (Source.size() != Translated.size())
    return mismatch(
        static_cast<uint32_t>(
            std::min(Source.size(), Translated.size())),
        ~0u,
        formatString("body length differs: source %zu, translated %zu",
                     Source.size(), Translated.size()));

  ExprPool Pool;
  SymTrace S = symExecute(Pool, GuestStart, Source);
  SymTrace T = symExecute(Pool, GuestStart, Translated);

  // Match the translated loads against the source loads as an ordered
  // subsequence. A source load may be absent from the translation only
  // when it is provably redundant: the identical load expression (same
  // address, same observed-store version) already occurred earlier in
  // the source, so re-reading can neither fault anew nor observe a
  // different value. MatchedPrefix[i] is the number of translated loads
  // consumed by the first i source loads, which lets the per-exit check
  // below verify that loads line up at every observable exit point.
  std::vector<uint32_t> MatchedPrefix(S.Loads.size() + 1, 0);
  {
    size_t J = 0;
    for (size_t I = 0; I != S.Loads.size(); ++I) {
      if (J < T.Loads.size() && S.Loads[I] == T.Loads[J]) {
        ++J;
      } else {
        bool Redundant = false;
        for (size_t K = 0; K != I && !Redundant; ++K)
          Redundant = S.Loads[K].Val == S.Loads[I].Val;
        if (!Redundant)
          return mismatch(
              0, ~0u,
              formatString("load %zu missing from translation and "
                           "not redundant",
                           I));
      }
      MatchedPrefix[I + 1] = static_cast<uint32_t>(J);
    }
    if (J != T.Loads.size())
      return mismatch(0, ~0u,
                      "translated performs memory reads the source "
                      "does not");
  }

  if (S.Exits.size() != T.Exits.size())
    return mismatch(
        0, static_cast<uint32_t>(
               std::min(S.Exits.size(), T.Exits.size())),
        formatString("exit count differs: source %zu, translated %zu",
                     S.Exits.size(), T.Exits.size()));

  for (uint32_t E = 0; E != S.Exits.size(); ++E) {
    const SymExit &A = S.Exits[E];
    const SymExit &B = T.Exits[E];
    if (A.InstIndex != B.InstIndex)
      return mismatch(A.InstIndex, E,
                      formatString("exit position differs: source "
                                   "instruction %u, translated %u",
                                   A.InstIndex, B.InstIndex));
    if (A.K != B.K)
      return mismatch(A.InstIndex, E,
                      formatString("exit kind differs: source %s, "
                                   "translated %s",
                                   exitKindName(A.K),
                                   exitKindName(B.K)));
    if (A.Cond != B.Cond)
      return mismatch(A.InstIndex, E, "branch condition differs");
    if (A.Target != B.Target)
      return mismatch(A.InstIndex, E, "exit target differs");
    if (A.SysNumber != B.SysNumber)
      return mismatch(A.InstIndex, E,
                      formatString("syscall number differs: source "
                                   "%u, translated %u",
                                   A.SysNumber, B.SysNumber));
    if (A.NumStores != B.NumStores)
      return mismatch(A.InstIndex, E,
                      formatString("memory-write count differs: "
                                   "source %u, translated %u",
                                   A.NumStores, B.NumStores));
    if (MatchedPrefix[A.NumLoads] != B.NumLoads)
      return mismatch(A.InstIndex, E,
                      formatString("memory reads do not line up at "
                                   "exit: source %u (of which %u "
                                   "required), translated %u",
                                   A.NumLoads, MatchedPrefix[A.NumLoads],
                                   B.NumLoads));
    for (unsigned R = 0; R != isa::NumRegisters; ++R)
      if (A.Regs[R] != B.Regs[R])
        return mismatch(A.InstIndex, E,
                        formatString("register r%u differs", R));
  }

  if (S.Stores.size() != T.Stores.size())
    return mismatch(0, ~0u, "memory-write count differs");
  for (uint32_t I = 0; I != S.Stores.size(); ++I) {
    if (S.Stores[I].first != T.Stores[I].first)
      return mismatch(0, ~0u,
                      formatString("store %u address differs", I));
    if (S.Stores[I].second != T.Stores[I].second)
      return mismatch(0, ~0u,
                      formatString("store %u value differs", I));
  }
  return ValidationResult{};
}
