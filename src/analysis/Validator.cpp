//===- analysis/Validator.cpp ---------------------------------------------===//

#include "analysis/Validator.h"

#include "analysis/Certificate.h"
#include "analysis/SymExec.h"
#include "support/Hashing.h"
#include "support/StringUtils.h"

#include <map>

using namespace pcc;
using namespace pcc::analysis;
using isa::Instruction;
using isa::Opcode;

namespace {

/// The prover's hash-consed expression pool. Both executions intern
/// into one pool, so structural equality is id equality. When a
/// Transcript is attached, every intern request appends the id it
/// resolved to — the certificate's step stream; the checker's
/// ReplayPool consumes the same stream while re-running the shared
/// symExecute, so recording costs one vector push per intern and no
/// separate bookkeeping.
class ExprPool {
public:
  /// When non-null, receives one id per intern request.
  std::vector<uint32_t> *Transcript = nullptr;

  uint32_t init(unsigned Reg) {
    return intern(ExprKind::Init, 0, 0, 0, Reg);
  }
  uint32_t konst(uint32_t Value) {
    return intern(ExprKind::Const, 0, 0, 0, Value);
  }
  uint32_t bin(Opcode Op, uint32_t A, uint32_t B) {
    return canonicalBin(*this, Op, A, B);
  }
  /// A memory read of \p Addr observing the first \p Version stores.
  uint32_t load(uint32_t Addr, uint32_t Version) {
    return intern(ExprKind::Load, 0, Addr, 0, Version);
  }

  uint32_t binNode(Opcode Op, uint32_t A, uint32_t B) {
    return intern(ExprKind::Bin, static_cast<uint8_t>(Op), A, B, 0);
  }
  bool constValue(uint32_t Id, uint32_t &Value) const {
    const ExprKey &N = Nodes[Id];
    if (std::get<0>(N) != static_cast<uint8_t>(ExprKind::Const))
      return false;
    Value = std::get<4>(N);
    return true;
  }

private:
  std::map<ExprKey, uint32_t> Interned;
  /// Node payloads by id (ids are assigned densely in intern order), so
  /// bin() can recognize Const operands.
  std::vector<ExprKey> Nodes;

  uint32_t intern(ExprKind K, uint8_t Op, uint32_t A, uint32_t B,
                  uint32_t Aux) {
    ExprKey Id{static_cast<uint8_t>(K), Op, A, B, Aux};
    auto [It, Inserted] =
        Interned.emplace(Id, static_cast<uint32_t>(Interned.size()));
    if (Inserted)
      Nodes.push_back(Id);
    if (Transcript)
      Transcript->push_back(It->second);
    return It->second;
  }
};

ValidationResult mismatch(uint32_t InstIndex, uint32_t ExitIndex,
                          std::string What) {
  ValidationResult R;
  R.Equivalent = false;
  R.Mismatch = TraceMismatch{InstIndex, ExitIndex, std::move(What)};
  return R;
}

} // namespace

std::string ValidationResult::message() const {
  if (Equivalent)
    return "equivalent";
  return formatString("mismatch at instruction %u%s: %s",
                      Mismatch->InstIndex,
                      Mismatch->ExitIndex == ~0u
                          ? ""
                          : formatString(" (exit %u)",
                                         Mismatch->ExitIndex)
                                .c_str(),
                      Mismatch->What.c_str());
}

ValidationResult pcc::analysis::validateTranslation(
    uint32_t GuestStart, const std::vector<Instruction> &Source,
    const std::vector<Instruction> &Translated, Certificate *CertOut) {
  if (CertOut)
    *CertOut = Certificate{};
  if (Source.size() != Translated.size())
    return mismatch(
        static_cast<uint32_t>(
            std::min(Source.size(), Translated.size())),
        ~0u,
        formatString("body length differs: source %zu, translated %zu",
                     Source.size(), Translated.size()));

  ExprPool Pool;
  std::vector<uint32_t> Steps;
  if (CertOut)
    Pool.Transcript = &Steps;
  SymTrace S = symExecute(Pool, GuestStart, Source);
  SymTrace T = symExecute(Pool, GuestStart, Translated);

  // Match the translated loads against the source loads as an ordered
  // subsequence. A source load may be absent from the translation only
  // when it is provably redundant: the identical load expression (same
  // address, same observed-store version) already occurred earlier in
  // the source, so re-reading can neither fault anew nor observe a
  // different value. MatchedPrefix[i] is the number of translated loads
  // consumed by the first i source loads, which lets the per-exit check
  // below verify that loads line up at every observable exit point.
  std::vector<uint32_t> MatchedPrefix(S.Loads.size() + 1, 0);
  std::vector<uint32_t> Witnesses;
  {
    size_t J = 0;
    for (size_t I = 0; I != S.Loads.size(); ++I) {
      if (J < T.Loads.size() && S.Loads[I] == T.Loads[J]) {
        ++J;
      } else {
        size_t Witness = I;
        for (size_t K = 0; K != I && Witness == I; ++K)
          if (S.Loads[K].Val == S.Loads[I].Val)
            Witness = K;
        if (Witness == I)
          return mismatch(
              0, ~0u,
              formatString("load %zu missing from translation and "
                           "not redundant",
                           I));
        if (CertOut)
          Witnesses.push_back(static_cast<uint32_t>(Witness));
      }
      MatchedPrefix[I + 1] = static_cast<uint32_t>(J);
    }
    if (J != T.Loads.size())
      return mismatch(0, ~0u,
                      "translated performs memory reads the source "
                      "does not");
  }

  if (S.Exits.size() != T.Exits.size())
    return mismatch(
        0, static_cast<uint32_t>(
               std::min(S.Exits.size(), T.Exits.size())),
        formatString("exit count differs: source %zu, translated %zu",
                     S.Exits.size(), T.Exits.size()));

  for (uint32_t E = 0; E != S.Exits.size(); ++E) {
    const SymExit &A = S.Exits[E];
    const SymExit &B = T.Exits[E];
    if (A.InstIndex != B.InstIndex)
      return mismatch(A.InstIndex, E,
                      formatString("exit position differs: source "
                                   "instruction %u, translated %u",
                                   A.InstIndex, B.InstIndex));
    if (A.K != B.K)
      return mismatch(A.InstIndex, E,
                      formatString("exit kind differs: source %s, "
                                   "translated %s",
                                   exitKindName(A.K),
                                   exitKindName(B.K)));
    if (A.Cond != B.Cond)
      return mismatch(A.InstIndex, E, "branch condition differs");
    if (A.Target != B.Target)
      return mismatch(A.InstIndex, E, "exit target differs");
    if (A.SysNumber != B.SysNumber)
      return mismatch(A.InstIndex, E,
                      formatString("syscall number differs: source "
                                   "%u, translated %u",
                                   A.SysNumber, B.SysNumber));
    if (A.NumStores != B.NumStores)
      return mismatch(A.InstIndex, E,
                      formatString("memory-write count differs: "
                                   "source %u, translated %u",
                                   A.NumStores, B.NumStores));
    if (MatchedPrefix[A.NumLoads] != B.NumLoads)
      return mismatch(A.InstIndex, E,
                      formatString("memory reads do not line up at "
                                   "exit: source %u (of which %u "
                                   "required), translated %u",
                                   A.NumLoads, MatchedPrefix[A.NumLoads],
                                   B.NumLoads));
    for (unsigned R = 0; R != isa::NumRegisters; ++R)
      if (A.Regs[R] != B.Regs[R])
        return mismatch(A.InstIndex, E,
                        formatString("register r%u differs", R));
  }

  if (S.Stores.size() != T.Stores.size())
    return mismatch(0, ~0u, "memory-write count differs");
  for (uint32_t I = 0; I != S.Stores.size(); ++I) {
    if (S.Stores[I].first != T.Stores[I].first)
      return mismatch(0, ~0u,
                      formatString("store %u address differs", I));
    if (S.Stores[I].second != T.Stores[I].second)
      return mismatch(0, ~0u,
                      formatString("store %u value differs", I));
  }

  if (CertOut) {
    // The proof went through: persist what the checker needs to replay
    // it. OptGen is the caller's to fill — the validator does not know
    // which generation this body will be published as.
    Certificate &C = *CertOut;
    C.GuestStart = GuestStart;
    C.Source = Source;
    const std::vector<uint8_t> SrcBytes = isa::encodeAll(Source);
    C.SrcCrc = crc32(SrcBytes.data(), SrcBytes.size());
    const std::vector<uint8_t> BodyBytes = isa::encodeAll(Translated);
    C.BodyCrc = crc32(BodyBytes.data(), BodyBytes.size());
    C.Steps = std::move(Steps);
    C.Witnesses = std::move(Witnesses);
    C.ExitDigests.reserve(S.Exits.size());
    for (const SymExit &E : S.Exits)
      C.ExitDigests.push_back(
          exitDigest(E, MatchedPrefix[E.NumLoads]));
    C.StoresDigest = storesDigest(S);
    C.LoadsDigest = loadsDigest(S);
  }
  return ValidationResult{};
}

ValidationResult pcc::analysis::validateTranslation(
    uint32_t GuestStart, const std::vector<Instruction> &Source,
    const std::vector<Instruction> &Translated) {
  return validateTranslation(GuestStart, Source, Translated, nullptr);
}
