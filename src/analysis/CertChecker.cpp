//===- analysis/CertChecker.cpp -------------------------------------------===//

#include "analysis/CertChecker.h"

#include "support/Hashing.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstring>

using namespace pcc;
using namespace pcc::analysis;
using isa::Instruction;

namespace {

uint32_t getU32(const uint8_t *P) {
  return static_cast<uint32_t>(P[0]) |
         (static_cast<uint32_t>(P[1]) << 8) |
         (static_cast<uint32_t>(P[2]) << 16) |
         (static_cast<uint32_t>(P[3]) << 24);
}

/// The checker's expression pool: no map, no search. Every intern
/// request consumes the next packed step — a set fresh-bit appends the
/// requested payload as the next dense id; a clear bit decodes a varint
/// backref distance D and verifies that node (fresh count - D) holds
/// exactly the requested payload. After a successful replay every id in
/// the pool provably denotes its payload, which is all the comparison
/// loop relies on. The stream is consumed in place from the blob; no
/// decoded id vector is ever materialized.
///
/// On the first divergence (including a malformed or out-of-range
/// backref) the pool latches Failed and every subsequent operation
/// returns id 0 without touching state, so one corrupted step cannot
/// push later reads out of bounds.
class ReplayPool {
public:
  ReplayPool(const uint8_t *Bitmap, const uint8_t *Refs,
             const uint8_t *RefsEnd, uint32_t StepCount)
      : Bitmap(Bitmap), Ref(Refs), RefEnd(RefsEnd), StepCount(StepCount) {
    // A genuine stream appends at most one node per step; cap the
    // reserve so a fabricated StepCount cannot demand a huge upfront
    // allocation.
    Nodes.reserve(std::min<uint32_t>(StepCount, 1u << 16));
  }

  bool failed() const { return Failed; }
  bool exhausted() const { return Next == StepCount && Ref == RefEnd; }

  uint32_t init(unsigned Reg) {
    return take({static_cast<uint8_t>(ExprKind::Init), 0, 0, 0, Reg});
  }
  uint32_t konst(uint32_t Value) {
    return take({static_cast<uint8_t>(ExprKind::Const), 0, 0, 0, Value});
  }
  uint32_t bin(isa::Opcode Op, uint32_t A, uint32_t B) {
    return canonicalBin(*this, Op, A, B);
  }
  uint32_t load(uint32_t Addr, uint32_t Version) {
    return take({static_cast<uint8_t>(ExprKind::Load), 0, Addr, 0,
                 Version});
  }

  uint32_t binNode(isa::Opcode Op, uint32_t A, uint32_t B) {
    return take({static_cast<uint8_t>(ExprKind::Bin),
                 static_cast<uint8_t>(Op), A, B, 0});
  }
  bool constValue(uint32_t Id, uint32_t &Value) const {
    if (Id >= Nodes.size())
      return false; // Only reachable after a latched failure.
    const ExprKey &N = Nodes[Id];
    if (std::get<0>(N) != static_cast<uint8_t>(ExprKind::Const))
      return false;
    Value = std::get<4>(N);
    return true;
  }

private:
  const uint8_t *Bitmap;
  const uint8_t *Ref;
  const uint8_t *RefEnd;
  uint32_t StepCount;
  std::vector<ExprKey> Nodes;
  uint32_t Next = 0;
  bool Failed = false;

  uint32_t take(const ExprKey &Want) {
    if (Failed)
      return 0;
    if (Next == StepCount) {
      Failed = true;
      return 0;
    }
    const uint32_t I = Next++;
    if ((Bitmap[I >> 3] >> (I & 7)) & 1) {
      const uint32_t Id = static_cast<uint32_t>(Nodes.size());
      Nodes.push_back(Want);
      return Id;
    }
    uint32_t D = 0;
    int Shift = 0;
    while (true) {
      if (Ref == RefEnd || Shift > 28) {
        Failed = true;
        return 0;
      }
      const uint8_t B = *Ref++;
      D |= static_cast<uint32_t>(B & 0x7f) << Shift;
      if (!(B & 0x80))
        break;
      Shift += 7;
    }
    if (D == 0 || D > Nodes.size()) {
      Failed = true;
      return 0;
    }
    const uint32_t Id = static_cast<uint32_t>(Nodes.size()) - D;
    if (Nodes[Id] == Want)
      return Id;
    Failed = true;
    return 0;
  }
};

CertCheckResult fail(CertCheckStatus S, std::string Detail) {
  CertCheckResult R;
  R.Status = S;
  R.Detail = std::move(Detail);
  return R;
}

} // namespace

const char *pcc::analysis::certCheckStatusName(CertCheckStatus S) {
  switch (S) {
  case CertCheckStatus::Ok:
    return "ok";
  case CertCheckStatus::Malformed:
    return "malformed";
  case CertCheckStatus::BindMismatch:
    return "bind-mismatch";
  case CertCheckStatus::StepMismatch:
    return "step-mismatch";
  case CertCheckStatus::ObligationMismatch:
    return "obligation-mismatch";
  case CertCheckStatus::DigestMismatch:
    return "digest-mismatch";
  }
  return "?";
}

CertCheckResult pcc::analysis::checkCertificate(
    const Certificate &C, uint32_t GuestStart,
    const std::vector<Instruction> &Body,
    const std::vector<Instruction> *ExpectedSource) {
  // The in-place blob check is the single trusted implementation;
  // round-trip through the canonical serialization so both entry
  // points verify identical obligations.
  const std::vector<uint8_t> Blob = C.serialize();
  return checkCertificateBlob(Blob.data(), Blob.size(), GuestStart, Body,
                              ExpectedSource);
}

CertCheckResult pcc::analysis::checkCertificateBlob(
    const uint8_t *Data, size_t Size, uint32_t GuestStart,
    const std::vector<Instruction> &Body,
    const std::vector<Instruction> *ExpectedSource,
    const CertBindings *Bind) {
  auto View = viewCertificate(Data, Size);
  if (!View)
    return fail(CertCheckStatus::Malformed, View.status().message());
  const CertView &V = *View;

  // 1. Binding: this certificate must be about exactly these bytes.
  if (V.GuestStart != GuestStart)
    return fail(CertCheckStatus::BindMismatch,
                formatString("guest start differs: cert %u, trace %u",
                             V.GuestStart, GuestStart));
  if (V.InstCount != Body.size())
    return fail(CertCheckStatus::BindMismatch,
                formatString("body length differs: cert source %u, "
                             "body %zu",
                             V.InstCount, Body.size()));
  const size_t SectionBytes =
      static_cast<size_t>(V.InstCount) * isa::InstructionSize;
  if (crc32(V.SourceBytes, SectionBytes) != V.SrcCrc)
    return fail(CertCheckStatus::BindMismatch,
                "embedded source CRC mismatch");
  if (Bind && Bind->BodyBytes) {
    // Raw at-rest encodings: decode validated them and the encoding is
    // canonical, so their CRC equals encodeAll(Body)'s.
    if (Bind->BodyByteCount != SectionBytes ||
        crc32(Bind->BodyBytes, Bind->BodyByteCount) != V.BodyCrc)
      return fail(CertCheckStatus::BindMismatch,
                  "body CRC mismatch (stale or foreign certificate)");
  } else {
    const std::vector<uint8_t> BodyBytes = isa::encodeAll(Body);
    if (crc32(BodyBytes.data(), BodyBytes.size()) != V.BodyCrc)
      return fail(CertCheckStatus::BindMismatch,
                  "body CRC mismatch (stale or foreign certificate)");
  }

  // 2. The source execution's instructions. With raw source bytes
  // bound, a memcmp against the embedded section both verifies the
  // guest-memory binding and licenses executing the caller's already
  // decoded ExpectedSource; otherwise decode the embedded section.
  const std::vector<Instruction> *Src = nullptr;
  std::vector<Instruction> DecodedSrc;
  if (ExpectedSource && Bind && Bind->SourceBytes) {
    if (Bind->SourceByteCount != SectionBytes ||
        std::memcmp(Bind->SourceBytes, V.SourceBytes, SectionBytes) != 0)
      return fail(CertCheckStatus::BindMismatch,
                  "embedded source differs from guest memory");
    Src = ExpectedSource;
  } else {
    auto Decoded = isa::decodeAll(V.SourceBytes, V.InstCount);
    if (!Decoded)
      return fail(CertCheckStatus::Malformed,
                  "certificate: embedded source does not decode");
    DecodedSrc = Decoded.take();
    if (ExpectedSource && *ExpectedSource != DecodedSrc)
      return fail(CertCheckStatus::BindMismatch,
                  "embedded source differs from guest memory");
    Src = &DecodedSrc;
  }

  // 3. Replay both symbolic executions through the recorded step
  // stream: source first, then the body, exactly as the prover ran
  // them. A verified stream reconstructs the prover's node ids.
  ReplayPool Pool(V.StepBitmap, V.StepRefs, V.StepRefsEnd, V.StepCount);
  SymTrace S = symExecute(Pool, GuestStart, *Src);
  SymTrace T = symExecute(Pool, GuestStart, Body);
  if (Pool.failed())
    return fail(CertCheckStatus::StepMismatch,
                "step stream diverges from re-evaluated executions");
  if (!Pool.exhausted())
    return fail(CertCheckStatus::StepMismatch,
                "step stream longer than the executions consume");

  // 4. Load lineup with recorded witnesses: a source load may be
  // absent from the body only when its recorded witness is an earlier
  // source load with the identical value expression (same address,
  // same observed-store version).
  std::vector<uint32_t> MatchedPrefix(S.Loads.size() + 1, 0);
  {
    size_t J = 0, W = 0;
    for (size_t I = 0; I != S.Loads.size(); ++I) {
      if (J < T.Loads.size() && S.Loads[I] == T.Loads[J]) {
        ++J;
      } else {
        if (W == V.WitnessCount)
          return fail(CertCheckStatus::ObligationMismatch,
                      formatString("load %zu elided without a witness",
                                   I));
        const uint32_t K = getU32(V.WitnessWords + 4 * W++);
        if (K >= I || !(S.Loads[K].Val == S.Loads[I].Val))
          return fail(CertCheckStatus::ObligationMismatch,
                      formatString("witness for elided load %zu does "
                                   "not prove redundancy",
                                   I));
      }
      MatchedPrefix[I + 1] = static_cast<uint32_t>(J);
    }
    if (J != T.Loads.size())
      return fail(CertCheckStatus::ObligationMismatch,
                  "body performs memory reads the source does not");
    if (W != V.WitnessCount)
      return fail(CertCheckStatus::ObligationMismatch,
                  "unconsumed witnesses in certificate");
  }

  // 5. The prover's own exit/store comparison, re-evaluated.
  if (S.Exits.size() != T.Exits.size())
    return fail(CertCheckStatus::ObligationMismatch,
                "exit count differs");
  for (uint32_t E = 0; E != S.Exits.size(); ++E) {
    const SymExit &A = S.Exits[E];
    const SymExit &B = T.Exits[E];
    if (A.InstIndex != B.InstIndex || A.K != B.K || A.Cond != B.Cond ||
        A.Target != B.Target || A.SysNumber != B.SysNumber ||
        A.NumStores != B.NumStores ||
        MatchedPrefix[A.NumLoads] != B.NumLoads)
      return fail(CertCheckStatus::ObligationMismatch,
                  formatString("exit %u summary differs", E));
    for (unsigned R = 0; R != isa::NumRegisters; ++R)
      if (A.Regs[R] != B.Regs[R])
        return fail(CertCheckStatus::ObligationMismatch,
                    formatString("exit %u register r%u differs", E, R));
  }
  if (S.Stores.size() != T.Stores.size())
    return fail(CertCheckStatus::ObligationMismatch,
                "memory-write count differs");
  for (uint32_t I = 0; I != S.Stores.size(); ++I)
    if (S.Stores[I] != T.Stores[I])
      return fail(CertCheckStatus::ObligationMismatch,
                  formatString("store %u differs", I));

  // 6. Recorded effect digests must match the re-evaluated state —
  // the per-exit symbolic summaries the proof claims to have checked.
  if (V.ExitCount != S.Exits.size())
    return fail(CertCheckStatus::DigestMismatch,
                "exit digest count differs");
  for (uint32_t E = 0; E != S.Exits.size(); ++E)
    if (exitDigest(S.Exits[E], MatchedPrefix[S.Exits[E].NumLoads]) !=
        getU32(V.ExitDigestWords + 4 * static_cast<size_t>(E)))
      return fail(CertCheckStatus::DigestMismatch,
                  formatString("exit %u digest differs", E));
  if (storesDigest(S) != V.StoresDigest)
    return fail(CertCheckStatus::DigestMismatch, "stores digest differs");
  if (loadsDigest(S) != V.LoadsDigest)
    return fail(CertCheckStatus::DigestMismatch, "loads digest differs");

  return CertCheckResult{};
}
