//===- analysis/SymExec.h - Shared symbolic execution core ------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The symbolic-execution core shared by the translation validator (the
/// prover) and the certificate checker. Both walk a trace body with
/// vm::executeInstruction's semantics over a hash-consed expression
/// pool; they differ only in how expression nodes are *interned*:
///
///   * the prover's pool (Validator.cpp) interns through a map and can
///     record the id it hands out for every intern request — the
///     certificate's step stream;
///   * the checker's pool (CertChecker.cpp) owns no map at all: it
///     consumes the recorded stream, verifying that each recorded id
///     either appends a brand-new node or names an existing node with
///     exactly the requested payload.
///
/// Keeping one symExecute template (and one canonicalization routine,
/// canonicalBin) guarantees the two sides agree on the *decision
/// procedure* — constant folding and right-zero identities are
/// replayed, not trusted — so a certificate can only make the checker
/// accept something the prover would also have accepted.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_ANALYSIS_SYMEXEC_H
#define PCC_ANALYSIS_SYMEXEC_H

#include "analysis/Dataflow.h"
#include "isa/Instruction.h"

#include <array>
#include <cstdint>
#include <tuple>
#include <vector>

namespace pcc {
namespace analysis {

/// Kinds of hash-consed symbolic expression nodes.
enum class ExprKind : uint8_t { Init, Const, Bin, Load };

/// One expression node's full payload. Structural equality of keys is
/// semantic equality of the expressions they denote (given equal
/// operand ids): (kind, opcode, operand A, operand B, auxiliary).
using ExprKey = std::tuple<uint8_t, uint8_t, uint32_t, uint32_t, uint32_t>;

constexpr uint32_t NoExpr = ~0u;

/// One point where control can leave the trace, with the symbolic
/// machine state observable there.
struct SymExit {
  enum class Kind : uint8_t {
    Branch,      ///< Conditional branch taken.
    Direct,      ///< Jmp/Call.
    Indirect,    ///< Jr/Callr/Ret.
    Syscall,     ///< Sys (control leaves to the emulation unit).
    Halt,        ///< Halt.
    FallThrough, ///< Ran off the end of the body.
  };

  Kind K = Kind::Halt;
  uint32_t InstIndex = 0;
  uint32_t Cond = NoExpr;   ///< Branch condition expression.
  uint32_t Target = NoExpr; ///< Exit target expression.
  uint32_t SysNumber = 0;
  std::array<uint32_t, isa::NumRegisters> Regs{};
  uint32_t NumStores = 0; ///< Stores performed before this exit.
  uint32_t NumLoads = 0;  ///< Loads performed before this exit.
};

inline const char *exitKindName(SymExit::Kind K) {
  switch (K) {
  case SymExit::Kind::Branch:
    return "branch";
  case SymExit::Kind::Direct:
    return "direct";
  case SymExit::Kind::Indirect:
    return "indirect";
  case SymExit::Kind::Syscall:
    return "syscall";
  case SymExit::Kind::Halt:
    return "halt";
  case SymExit::Kind::FallThrough:
    return "fall-through";
  }
  return "?";
}

/// One memory read: the address expression (loads can fault) and the
/// value expression it produced. Two reads with equal Val read the same
/// address at the same store version — the second is redundant.
struct LoadRec {
  uint32_t Addr = 0;
  uint32_t Val = 0;

  bool operator==(const LoadRec &O) const {
    return Addr == O.Addr && Val == O.Val;
  }
};

/// The observable effects of one symbolic execution.
struct SymTrace {
  std::vector<SymExit> Exits;
  /// All stores in program order: (address expr, value expr).
  std::vector<std::pair<uint32_t, uint32_t>> Stores;
  /// All loads in program order.
  std::vector<LoadRec> Loads;
};

/// Canonicalizing binary-expression construction, shared verbatim by
/// prover and checker. Rewrites through semantics-preserving identities
/// — constant folding with exactly vm::executeInstruction's arithmetic
/// (via foldBinaryOp) and right-zero identities — so a body the
/// finalize-time optimizer transformed interns to the same ids as the
/// unoptimized source. Every rewrite maps an expression to a
/// semantically equal one, so id equality still implies value equality.
///
/// PoolT provides: constValue(Id, &Value), konst(Value), and
/// binNode(Op, A, B) — the uninterpreted-node fallback.
template <class PoolT>
uint32_t canonicalBin(PoolT &Pool, isa::Opcode Op, uint32_t A,
                      uint32_t B) {
  uint32_t AV = 0, BV = 0;
  const bool AConst = Pool.constValue(A, AV);
  const bool BConst = Pool.constValue(B, BV);
  if (AConst && BConst)
    if (auto V = foldBinaryOp(Op, AV, BV))
      return Pool.konst(*V);
  if (BConst && BV == 0) {
    // x op 0 == x for the additive/bitwise/shift family.
    switch (Op) {
    case isa::Opcode::Add:
    case isa::Opcode::Addi:
    case isa::Opcode::Sub:
    case isa::Opcode::Or:
    case isa::Opcode::Ori:
    case isa::Opcode::Xor:
    case isa::Opcode::Xori:
    case isa::Opcode::Shl:
    case isa::Opcode::Shli:
    case isa::Opcode::Shr:
    case isa::Opcode::Shri:
      return A;
    default:
      break;
    }
  }
  return Pool.binNode(Op, A, B);
}

/// Symbolically executes \p Body following vm::executeInstruction's
/// semantics exactly (operands read before any write; Call pushes the
/// return address below the old stack pointer; Ret pops). PoolT
/// additionally provides init(Reg), konst(Value), bin(Op, A, B) and
/// load(Addr, Version).
///
/// The instruction walk is deliberately the only definition in the
/// system: the prover records its intern decisions while running it,
/// and the checker re-runs the identical template, so the two sides
/// intern in exactly the same order with no separate bookkeeping.
template <class PoolT>
SymTrace symExecute(PoolT &Pool, uint32_t GuestStart,
                    const std::vector<isa::Instruction> &Body) {
  using isa::Instruction;
  using isa::InstructionSize;
  using isa::Opcode;

  SymTrace T;
  // At most one load per instruction; reserving once keeps the hot
  // walk free of vector growth for both prover and checker.
  T.Loads.reserve(Body.size());
  std::array<uint32_t, isa::NumRegisters> Regs;
  for (unsigned R = 0; R != isa::NumRegisters; ++R)
    Regs[R] = Pool.init(R);

  auto Snapshot = [&](SymExit E) {
    E.Regs = Regs;
    E.NumStores = static_cast<uint32_t>(T.Stores.size());
    E.NumLoads = static_cast<uint32_t>(T.Loads.size());
    T.Exits.push_back(E);
  };
  auto Version = [&] {
    return static_cast<uint32_t>(T.Stores.size());
  };

  for (uint32_t I = 0; I != Body.size(); ++I) {
    const Instruction &Inst = Body[I];
    const uint32_t InstPc = GuestStart + I * InstructionSize;
    const uint32_t FallPc = InstPc + InstructionSize;
    const uint32_t A = Regs[Inst.Rs1];
    const uint32_t B = Regs[Inst.Rs2];
    const unsigned Sp = isa::StackPointerReg;

    switch (Inst.Op) {
    case Opcode::Nop:
      break;
    case Opcode::Halt:
      Snapshot(SymExit{SymExit::Kind::Halt, I, NoExpr, NoExpr, 0});
      return T;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Divu:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::Sltu:
    case Opcode::Seq:
      Regs[Inst.Rd] = Pool.bin(Inst.Op, A, B);
      break;
    case Opcode::Addi:
    case Opcode::Muli:
    case Opcode::Andi:
    case Opcode::Ori:
    case Opcode::Xori:
    case Opcode::Shli:
    case Opcode::Shri:
    case Opcode::Sltiu:
      Regs[Inst.Rd] = Pool.bin(Inst.Op, A, Pool.konst(Inst.Imm));
      break;
    case Opcode::Ldi:
      Regs[Inst.Rd] = Pool.konst(Inst.Imm);
      break;
    case Opcode::Ld: {
      uint32_t Addr = Pool.bin(Opcode::Add, A, Pool.konst(Inst.Imm));
      uint32_t Val = Pool.load(Addr, Version());
      T.Loads.push_back(LoadRec{Addr, Val});
      Regs[Inst.Rd] = Val;
      break;
    }
    case Opcode::St: {
      uint32_t Addr = Pool.bin(Opcode::Add, A, Pool.konst(Inst.Imm));
      T.Stores.emplace_back(Addr, B);
      break;
    }
    case Opcode::Beq:
    case Opcode::Bne:
    case Opcode::Bltu:
    case Opcode::Bgeu:
      Snapshot(SymExit{SymExit::Kind::Branch, I,
                       Pool.bin(Inst.Op, A, B), Pool.konst(Inst.Imm),
                       0});
      break; // fall through to the next instruction (untaken path)
    case Opcode::Jmp:
      Snapshot(SymExit{SymExit::Kind::Direct, I, NoExpr,
                       Pool.konst(Inst.Imm), 0});
      return T;
    case Opcode::Call:
    case Opcode::Callr: {
      uint32_t NewSp =
          Pool.bin(Opcode::Add, Regs[Sp],
                   Pool.konst(static_cast<uint32_t>(-4)));
      T.Stores.emplace_back(NewSp, Pool.konst(FallPc));
      Regs[Sp] = NewSp;
      if (Inst.Op == Opcode::Call)
        Snapshot(SymExit{SymExit::Kind::Direct, I, NoExpr,
                         Pool.konst(Inst.Imm), 0});
      else
        Snapshot(SymExit{SymExit::Kind::Indirect, I, NoExpr, A, 0});
      return T;
    }
    case Opcode::Jr:
      Snapshot(SymExit{SymExit::Kind::Indirect, I, NoExpr, A, 0});
      return T;
    case Opcode::Ret: {
      uint32_t Addr = Regs[Sp];
      uint32_t Return = Pool.load(Addr, Version());
      T.Loads.push_back(LoadRec{Addr, Return});
      Regs[Sp] =
          Pool.bin(Opcode::Add, Addr, Pool.konst(4));
      Snapshot(
          SymExit{SymExit::Kind::Indirect, I, NoExpr, Return, 0});
      return T;
    }
    case Opcode::Sys:
      Snapshot(SymExit{SymExit::Kind::Syscall, I, NoExpr,
                       Pool.konst(FallPc), Inst.Imm});
      return T;
    case Opcode::NumOpcodes:
      break;
    }
  }

  if (!Body.empty()) {
    uint32_t EndPc = GuestStart +
                     static_cast<uint32_t>(Body.size()) * InstructionSize;
    Snapshot(SymExit{SymExit::Kind::FallThrough,
                     static_cast<uint32_t>(Body.size()) - 1, NoExpr,
                     Pool.konst(EndPc), 0});
  }
  return T;
}

} // namespace analysis
} // namespace pcc

#endif // PCC_ANALYSIS_SYMEXEC_H
