//===- analysis/Certificate.h - Persisted validation proof ------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A proof-carrying-code style certificate for one validated trace
/// translation. The prover (analysis::validateTranslation's emitting
/// overload) records, while proving, everything a much smaller checker
/// needs to re-establish the verdict without re-running the prover's
/// search:
///
///   * the **step stream** — one node id per expression-intern request,
///     across both symbolic executions (source first, then translated
///     body), which lets the checker replace the prover's map-based
///     hash-consing with a linear stream verification;
///   * the **skip witnesses** — for every source load the optimizer
///     elided, the index of the earlier identical load that proves it
///     redundant, turning the prover's quadratic redundancy search into
///     an O(1) check per elision;
///   * **per-exit symbolic effect digests** plus whole-trace store/load
///     digests — CRCs over the exit summaries the two executions must
///     agree on;
///   * **binding CRCs** over the exact gen-0 source bytes (embedded in
///     the certificate, so checks need no module access) and the exact
///     gen-N translated body bytes.
///
/// The serialized blob is self-delimiting and self-checking (a trailing
/// CRC over the whole blob); persist/ stores it in the PCC2 certificate
/// section, keyed by trace index.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_ANALYSIS_CERTIFICATE_H
#define PCC_ANALYSIS_CERTIFICATE_H

#include "analysis/SymExec.h"
#include "isa/Instruction.h"
#include "support/Error.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace pcc {
namespace analysis {

/// In-memory form of one translation-validation certificate.
struct Certificate {
  /// Blob format version (CertVersion when emitted by this build).
  uint16_t Version = 1;
  /// Guest address the trace translates (pre-rebase; a rebase
  /// invalidates the certificate by construction).
  uint32_t GuestStart = 0;
  /// Optimization generation of the body this proof covers.
  uint32_t OptGen = 0;
  /// CRC32 over the embedded source's instruction encodings.
  uint32_t SrcCrc = 0;
  /// CRC32 over the translated body's instruction encodings (body
  /// instructions only — prologue and exit stubs are covered by the
  /// trace record's own payload CRC).
  uint32_t BodyCrc = 0;
  /// The gen-0 guest instructions the proof is against, embedded so a
  /// certificate checks without any module mapped (L2 fills, dbcheck
  /// without --module).
  std::vector<isa::Instruction> Source;
  /// One recorded node id per expression-intern request, in execution
  /// order: source execution first, then the translated body.
  std::vector<uint32_t> Steps;
  /// For each source load absent from the translation, in source-load
  /// order: the index of the earlier source load proving it redundant.
  std::vector<uint32_t> Witnesses;
  /// Per-exit digest (exitDigest) for every source exit, in order.
  std::vector<uint32_t> ExitDigests;
  /// CRC32 over the source execution's (address, value) store id pairs.
  uint32_t StoresDigest = 0;
  /// CRC32 over the source execution's (address, value) load id pairs.
  uint32_t LoadsDigest = 0;

  /// Serializes to the self-checking blob form.
  std::vector<uint8_t> serialize() const;

  /// Parses and CRC-verifies a blob. Fails (InvalidFormat) on any
  /// structural damage: bad magic/version, truncation, size overflow,
  /// undecodable embedded source, or trailing-CRC mismatch.
  static ErrorOr<Certificate> deserialize(const uint8_t *Data,
                                          size_t Size);
};

/// Current certificate blob version.
inline constexpr uint16_t CertVersion = 1;

/// Fixed-size header fields readable without a full (CRC-checked)
/// parse — enough to decide whether a certificate *claims* to cover a
/// given body before paying for deserialization.
struct CertPeek {
  uint32_t GuestStart = 0;
  uint32_t OptGen = 0;
  uint32_t InstCount = 0;
  uint32_t SrcCrc = 0;
  uint32_t BodyCrc = 0;
};

/// Reads the fixed header of a certificate blob. Returns nullopt when
/// the buffer is too small or the magic/version do not match; performs
/// no CRC verification.
std::optional<CertPeek> peekCertificate(const uint8_t *Data, size_t Size);

/// Zero-copy wire view of a certificate blob: decoded header fields
/// plus section pointers into the caller's buffer. Produced only after
/// the size arithmetic and the trailing whole-blob CRC have been
/// verified, so the trusted checker can consume sections in place
/// (no Certificate materialization) — a forgery that survives the CRC
/// is still rejected by the checker's semantic replay.
struct CertView {
  uint32_t GuestStart = 0;
  uint32_t OptGen = 0;
  uint32_t InstCount = 0;
  uint32_t SrcCrc = 0;
  uint32_t BodyCrc = 0;
  uint32_t StepCount = 0;
  uint32_t WitnessCount = 0;
  uint32_t ExitCount = 0;
  uint32_t StoresDigest = 0;
  uint32_t LoadsDigest = 0;
  const uint8_t *SourceBytes = nullptr; ///< InstCount * 8 encodings.
  const uint8_t *StepBitmap = nullptr;  ///< (StepCount + 7) / 8 bytes.
  const uint8_t *StepRefs = nullptr;    ///< Varint backrefs after bitmap.
  const uint8_t *StepRefsEnd = nullptr; ///< One past the step stream.
  const uint8_t *WitnessWords = nullptr;    ///< WitnessCount * u32.
  const uint8_t *ExitDigestWords = nullptr; ///< ExitCount * u32.
};

/// Structurally validates a blob (magic, version, section arithmetic,
/// whole-blob CRC — not the embedded source encodings or the step
/// stream, which consumers decode in place) and returns the wire view.
ErrorOr<CertView> viewCertificate(const uint8_t *Data, size_t Size);

/// The per-exit symbolic effect digest both prover and checker compute:
/// CRC32 over the packed exit summary (kind, position, condition,
/// target, syscall number, store count, required-load count, all
/// registers — as pool node ids).
uint32_t exitDigest(const SymExit &E, uint32_t MatchedLoads);

/// Digest over an execution's ordered (address, value) store id pairs.
uint32_t storesDigest(const SymTrace &T);

/// Digest over an execution's ordered (address, value) load id pairs.
uint32_t loadsDigest(const SymTrace &T);

} // namespace analysis
} // namespace pcc

#endif // PCC_ANALYSIS_CERTIFICATE_H
