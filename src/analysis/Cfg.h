//===- analysis/Cfg.h - Guest control-flow graph ----------------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control-flow-graph reconstruction over guest code: basic-block
/// discovery by worklist from a set of entry points (module entry
/// points, exported symbols, persisted trace starts), successor and
/// predecessor edges, and summaries of the indirect control transfers
/// whose targets static analysis cannot resolve (Jr/Callr/Ret — every
/// one is a conservative "control may go anywhere" edge).
///
/// The builder never asserts on bad input: raw bytes decode through
/// isa::decodeBuffer, and a decode fault truncates the analyzed region
/// at the fault (recorded in Cfg::decodeFault()) so corrupt modules are
/// reported, not fatal.
///
/// Trace mode (CfgOptions::BranchTargetsExternal) models the DBI trace
/// discipline: translated traces are entered only at their head, so a
/// taken branch or terminator always leaves the analyzed region through
/// the dispatcher even when its target lies inside the region. The
/// dataflow boundary then treats every such edge as "all state
/// observable", which is what makes the liveness-driven elision in
/// dbi::Compiler sound.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_ANALYSIS_CFG_H
#define PCC_ANALYSIS_CFG_H

#include "isa/Instruction.h"
#include "support/Error.h"

#include <optional>
#include <vector>

namespace pcc {
namespace analysis {

/// CFG construction policy.
struct CfgOptions {
  /// Treat every control-transfer *target* edge (taken branches, Jmp,
  /// Call) as leaving the analyzed region, even when the target address
  /// falls inside it. Fall-through edges stay internal. This is the
  /// trace model; module-level CFGs leave it off.
  bool BranchTargetsExternal = false;
};

/// One basic block: a maximal single-entry straight-line run of
/// instructions.
struct CfgBlock {
  /// Guest address of the first instruction.
  uint32_t Start = 0;
  /// Index of the first instruction in Cfg::instructions().
  uint32_t FirstInst = 0;
  uint32_t InstCount = 0;
  /// Successor / predecessor block indices (deduplicated, ascending).
  std::vector<uint32_t> Succs;
  std::vector<uint32_t> Preds;
  /// Control can leave the analyzed region from this block's end: an
  /// indirect transfer, a target outside the region (or any target in
  /// trace mode), a syscall thread switch, or falling off the region.
  bool HasExternalSucc = false;
  /// The block ends in Jr/Callr/Ret.
  bool EndsInIndirect = false;

  uint32_t lastInst() const { return FirstInst + InstCount - 1; }
};

/// A reconstructed control-flow graph over one contiguous code region.
class Cfg {
public:
  /// The decoded region (instruction i sits at base() + i * 8).
  const std::vector<isa::Instruction> &instructions() const {
    return Insts;
  }
  uint32_t base() const { return Base; }
  uint32_t addrOf(uint32_t InstIndex) const {
    return Base + InstIndex * isa::InstructionSize;
  }

  /// Blocks in ascending start-address order. Instructions not reachable
  /// from any root belong to no block.
  const std::vector<CfgBlock> &blocks() const { return Blocks; }

  /// Block indices of the entry points the discovery started from.
  const std::vector<uint32_t> &roots() const { return Roots; }

  /// Indirect-transfer summary: instruction indices of every reachable
  /// Jr/Callr/Ret. Their targets are unknowable statically; each is an
  /// external edge.
  const std::vector<uint32_t> &indirectSources() const {
    return IndirectSources;
  }

  /// First decode fault hit when the region was built from raw bytes;
  /// the region was truncated there. Absent for clean input.
  const std::optional<isa::DecodeError> &decodeFault() const {
    return Fault;
  }

  /// Index of the block starting exactly at \p Addr, or -1.
  int blockStartingAt(uint32_t Addr) const;

  /// Index of the block containing \p Addr, or -1.
  int blockContaining(uint32_t Addr) const;

private:
  friend Cfg buildCfg(std::vector<isa::Instruction> Insts, uint32_t Base,
                      const std::vector<uint32_t> &RootAddrs,
                      const CfgOptions &Opts);
  friend Cfg buildCfgFromBytes(const uint8_t *Bytes, size_t NumBytes,
                               uint32_t Base,
                               const std::vector<uint32_t> &RootAddrs,
                               const CfgOptions &Opts);

  std::vector<isa::Instruction> Insts;
  uint32_t Base = 0;
  std::vector<CfgBlock> Blocks;
  std::vector<uint32_t> Roots;
  std::vector<uint32_t> IndirectSources;
  std::optional<isa::DecodeError> Fault;
};

/// Builds the CFG of \p Insts (loaded at \p Base) reachable from
/// \p RootAddrs. Roots outside the region or misaligned are ignored.
Cfg buildCfg(std::vector<isa::Instruction> Insts, uint32_t Base,
             const std::vector<uint32_t> &RootAddrs,
             const CfgOptions &Opts = {});

/// Builds the CFG from raw encoded bytes; a decode fault truncates the
/// region (see Cfg::decodeFault()) instead of failing the build.
Cfg buildCfgFromBytes(const uint8_t *Bytes, size_t NumBytes,
                      uint32_t Base,
                      const std::vector<uint32_t> &RootAddrs,
                      const CfgOptions &Opts = {});

} // namespace analysis
} // namespace pcc

#endif // PCC_ANALYSIS_CFG_H
