//===- analysis/CertChecker.h - Minimal certificate checker -----*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trusted checker for translation-validation certificates. Where
/// the prover (analysis::validateTranslation) hash-conses expressions
/// through a map and searches for redundancy witnesses, the checker
/// only *re-evaluates and compares* what the certificate recorded:
///
///   * it re-runs the shared symbolic execution (SymExec.h) over both
///     the embedded source and the presented body, but replaces every
///     map lookup with a verification of the recorded step stream —
///     each recorded id must either append a brand-new node or name an
///     existing node whose payload equals the request;
///   * it checks each recorded skip witness in O(1) instead of
///     searching (the witness must precede the elided load and carry an
///     identical value expression);
///   * it recomputes and compares the per-exit / store / load digests
///     and the CRCs binding the certificate to the exact source and
///     body bytes.
///
/// Soundness does not rest on the certificate being honest: a verified
/// step stream reconstructs, by induction, exactly the node payloads
/// the ids denote, and the comparison loop is the prover's own. A
/// tampered or fabricated certificate can make the checker *reject*
/// (then the caller falls back to the full prover), never make it
/// accept an inequivalent translation.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_ANALYSIS_CERTCHECKER_H
#define PCC_ANALYSIS_CERTCHECKER_H

#include "analysis/Certificate.h"
#include "isa/Instruction.h"

#include <string>
#include <vector>

namespace pcc {
namespace analysis {

/// Why a certificate check failed (or Ok).
enum class CertCheckStatus : uint8_t {
  Ok,
  Malformed,     ///< Blob does not parse or fails its own CRC.
  BindMismatch,  ///< Cert is for different bytes (stale gen, wrong
                 ///< address, source/body CRC mismatch).
  StepMismatch,  ///< Step stream diverges from the re-run executions.
  ObligationMismatch, ///< Recorded obligations do not discharge: a
                      ///< witness fails, or an exit/store/register
                      ///< comparison differs.
  DigestMismatch,     ///< Recomputed effect digests differ from the
                      ///< recorded ones.
};

const char *certCheckStatusName(CertCheckStatus S);

/// Outcome of checking one certificate.
struct CertCheckResult {
  CertCheckStatus Status = CertCheckStatus::Ok;
  /// One-line failure description (empty on Ok).
  std::string Detail;

  bool ok() const { return Status == CertCheckStatus::Ok; }
};

/// Optional raw-byte bindings for at-rest checks (dbcheck, L2 fills,
/// benchmarks), letting the checker CRC the caller's stored encodings
/// instead of re-encoding the decoded vectors. Sound because the
/// instruction encoding is canonical: decode validates every field and
/// the in-memory layout equals the 8-byte wire form, so raw bytes and
/// encodeAll(decodeAll(bytes)) are the same bytes. Do NOT bind BodyBytes
/// to a rebased (position-adjusted) body — at prime time the body bytes
/// in memory are no longer the bytes the proof covers; leave the
/// binding empty there and the checker re-encodes.
struct CertBindings {
  /// The stored GuestInstCount * 8 body encodings, exactly as persisted.
  const uint8_t *BodyBytes = nullptr;
  size_t BodyByteCount = 0;
  /// The raw guest bytes \p ExpectedSource was decoded from; enables a
  /// memcmp against the embedded source instead of decode + compare.
  const uint8_t *SourceBytes = nullptr;
  size_t SourceByteCount = 0;
};

/// Checks that \p C proves \p Body (the decoded gen-N instructions of a
/// trace at guest address \p GuestStart) equivalent to the certificate's
/// embedded source. When \p ExpectedSource is provided (prime with the
/// module mapped, dbcheck --deep), the embedded source must equal it,
/// binding the proof to the real guest bytes; when null (L2 fills,
/// module-less checks), the embedded source is still covered by SrcCrc,
/// and the check establishes body-vs-embedded-source equivalence.
CertCheckResult
checkCertificate(const Certificate &C, uint32_t GuestStart,
                 const std::vector<isa::Instruction> &Body,
                 const std::vector<isa::Instruction> *ExpectedSource =
                     nullptr);

/// Structurally validates \p Data/\p Size (returning Malformed on
/// damage) and checks it against \p Body as checkCertificate, consuming
/// the blob's sections in place — this is the hot path primed installs
/// and store fills pay, so it materializes no Certificate. \p Bind, when
/// provided, supplies the caller's raw at-rest encodings (see
/// CertBindings) so the binding CRCs run over existing bytes. When
/// Bind->SourceBytes and \p ExpectedSource are both given they must
/// describe the same instructions (ExpectedSource == decodeAll of
/// SourceBytes); the checker then verifies the embedded source by
/// memcmp and executes \p *ExpectedSource directly.
CertCheckResult checkCertificateBlob(
    const uint8_t *Data, size_t Size, uint32_t GuestStart,
    const std::vector<isa::Instruction> &Body,
    const std::vector<isa::Instruction> *ExpectedSource = nullptr,
    const CertBindings *Bind = nullptr);

} // namespace analysis
} // namespace pcc

#endif // PCC_ANALYSIS_CERTCHECKER_H
