//===- analysis/Validator.h - Trace translation validator -------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translation validation for DBI traces: proves that a translated
/// trace body has the same guest-visible effects as the source guest
/// instructions it claims to translate. Both sequences are executed
/// symbolically over a shared hash-consed expression DAG; at every
/// point where control can leave the trace (taken branch, terminator,
/// syscall, instruction-count fall-through) the two executions must
/// agree on
///
///   * the exit's kind, position and (symbolic) target,
///   * the branch condition, for conditional exits,
///   * the full register state (all 16 registers),
///   * the ordered list of memory writes (address and value), and
///   * the ordered list of memory-read addresses (a load can fault,
///     which is guest-visible even when the loaded value is dead).
///
/// Structural expression equality is sound, never complete: identical
/// instruction sequences always validate, and the one transformation
/// this system performs — Nop substitution of defs that are dead at
/// every exit (analysis::findDeadTraceDefs) — is invisible at exit
/// points by construction, so it validates too. Any mutation of a
/// semantically live instruction changes some exit summary and is
/// reported as a structured TraceMismatch.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_ANALYSIS_VALIDATOR_H
#define PCC_ANALYSIS_VALIDATOR_H

#include "isa/Instruction.h"

#include <optional>
#include <string>
#include <vector>

namespace pcc {
namespace analysis {

struct Certificate;

/// Structured diagnostic for a failed validation.
struct TraceMismatch {
  /// Instruction index (in the source body) of the exit point — or for
  /// body-shape mismatches, the first differing position.
  uint32_t InstIndex = 0;
  /// Which exit point diverged (index into the exit sequence), or ~0u
  /// when the divergence is not tied to one exit.
  uint32_t ExitIndex = ~0u;
  /// What differed ("register r3", "store 2 address", "exit kind", ...).
  std::string What;
};

/// Outcome of validating one trace translation.
struct ValidationResult {
  bool Equivalent = true;
  std::optional<TraceMismatch> Mismatch;

  /// Human-readable one-line summary ("equivalent" or the mismatch).
  std::string message() const;
};

/// Validates that \p Translated (the decoded body of a compiled or
/// persisted trace starting at guest address \p GuestStart) is
/// effect-equivalent to \p Source (the guest instructions at that
/// address).
ValidationResult
validateTranslation(uint32_t GuestStart,
                    const std::vector<isa::Instruction> &Source,
                    const std::vector<isa::Instruction> &Translated);

/// As above, and on success additionally emits into \p CertOut a
/// proof-carrying certificate (analysis::Certificate) from which the
/// minimal checker (analysis::checkCertificate) can re-establish the
/// verdict without re-running the prover. \p CertOut may be null (then
/// this is exactly the plain overload); on failure it is reset to an
/// empty certificate. The caller fills Certificate::OptGen — the
/// validator does not know the generation the body publishes as.
ValidationResult
validateTranslation(uint32_t GuestStart,
                    const std::vector<isa::Instruction> &Source,
                    const std::vector<isa::Instruction> &Translated,
                    Certificate *CertOut);

} // namespace analysis
} // namespace pcc

#endif // PCC_ANALYSIS_VALIDATOR_H
