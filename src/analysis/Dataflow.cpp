//===- analysis/Dataflow.cpp ----------------------------------------------===//

#include "analysis/Dataflow.h"

#include <algorithm>
#include <cassert>
#include <tuple>

using namespace pcc;
using namespace pcc::analysis;
using isa::Instruction;
using isa::Opcode;

RegSet pcc::analysis::instUses(const Instruction &Inst) {
  auto Bit = [](unsigned Reg) { return RegSet(1) << Reg; };
  switch (Inst.Op) {
  case Opcode::Nop:
  case Opcode::Halt:
  case Opcode::Ldi:
  case Opcode::Jmp:
    return 0;
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Divu:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Sltu:
  case Opcode::Seq:
    return Bit(Inst.Rs1) | Bit(Inst.Rs2);
  case Opcode::Addi:
  case Opcode::Muli:
  case Opcode::Andi:
  case Opcode::Ori:
  case Opcode::Xori:
  case Opcode::Shli:
  case Opcode::Shri:
  case Opcode::Sltiu:
  case Opcode::Ld:
    return Bit(Inst.Rs1);
  case Opcode::St:
    return Bit(Inst.Rs1) | Bit(Inst.Rs2);
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Bltu:
  case Opcode::Bgeu:
    return Bit(Inst.Rs1) | Bit(Inst.Rs2);
  case Opcode::Jr:
    return Bit(Inst.Rs1);
  case Opcode::Call:
    return Bit(isa::StackPointerReg);
  case Opcode::Callr:
    return Bit(Inst.Rs1) | Bit(isa::StackPointerReg);
  case Opcode::Ret:
    return Bit(isa::StackPointerReg);
  case Opcode::Sys:
    // The emulation unit (and a spawned thread's initial state) may
    // read any register.
    return AllRegs;
  case Opcode::NumOpcodes:
    break;
  }
  return AllRegs; // unreachable; stay conservative
}

int pcc::analysis::instDef(const Instruction &Inst) {
  switch (Inst.Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Divu:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Sltu:
  case Opcode::Seq:
  case Opcode::Addi:
  case Opcode::Muli:
  case Opcode::Andi:
  case Opcode::Ori:
  case Opcode::Xori:
  case Opcode::Shli:
  case Opcode::Shri:
  case Opcode::Sltiu:
  case Opcode::Ldi:
  case Opcode::Ld:
    return Inst.Rd;
  case Opcode::Call:
  case Opcode::Callr:
  case Opcode::Ret:
    return static_cast<int>(isa::StackPointerReg);
  default:
    return -1;
  }
}

bool pcc::analysis::isPureDef(const Instruction &Inst) {
  switch (Inst.Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Divu:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Sltu:
  case Opcode::Seq:
  case Opcode::Addi:
  case Opcode::Muli:
  case Opcode::Andi:
  case Opcode::Ori:
  case Opcode::Xori:
  case Opcode::Shli:
  case Opcode::Shri:
  case Opcode::Sltiu:
  case Opcode::Ldi:
    return true;
  default:
    return false;
  }
}

RegSet LivenessResult::liveBefore(const Cfg &G, uint32_t Block,
                                  uint32_t InstIndex) const {
  const CfgBlock &B = G.blocks()[Block];
  assert(InstIndex >= B.FirstInst && InstIndex <= B.lastInst() &&
         "instruction outside block");
  RegSet Live = LiveOut[Block];
  for (uint32_t I = B.lastInst();; --I) {
    const Instruction &Inst = G.instructions()[I];
    if (int Def = instDef(Inst); Def >= 0)
      Live &= ~(RegSet(1) << Def);
    Live |= instUses(Inst);
    if (I == InstIndex)
      break;
    assert(I != 0 && "walked past block start");
  }
  return Live;
}

LivenessResult pcc::analysis::solveLiveness(const Cfg &G) {
  DataflowProblem<RegSet> P;
  P.Dir = Direction::Backward;
  P.Init = 0;
  P.Boundary = AllRegs;
  P.Meet = [](const RegSet &A, const RegSet &B) { return A | B; };
  P.Transfer = [](const Cfg &Graph, uint32_t Block, const RegSet &Out) {
    const CfgBlock &B = Graph.blocks()[Block];
    RegSet Live = Out;
    for (uint32_t I = B.lastInst() + 1; I-- != B.FirstInst;) {
      const Instruction &Inst = Graph.instructions()[I];
      if (int Def = instDef(Inst); Def >= 0)
        Live &= ~(RegSet(1) << Def);
      Live |= instUses(Inst);
    }
    return Live;
  };
  auto S = solveDataflow(G, P);
  return LivenessResult{std::move(S.In), std::move(S.Out)};
}

ReachingDefsResult pcc::analysis::solveReachingDefs(const Cfg &G) {
  ReachingDefsResult R;
  // Number the definition sites and group them by register for the
  // kill sets.
  std::vector<int> DefIdOf(G.instructions().size(), -1);
  std::vector<std::vector<uint32_t>> DefsOfReg(isa::NumRegisters);
  for (const CfgBlock &B : G.blocks())
    for (uint32_t I = B.FirstInst; I <= B.lastInst(); ++I)
      if (int Reg = instDef(G.instructions()[I]); Reg >= 0) {
        DefIdOf[I] = static_cast<int>(R.DefSites.size());
        DefsOfReg[Reg].push_back(
            static_cast<uint32_t>(R.DefSites.size()));
        R.DefSites.push_back(I);
      }
  const size_t Words = (R.DefSites.size() + 63) / 64;

  using Bits = std::vector<uint64_t>;
  DataflowProblem<Bits> P;
  P.Dir = Direction::Forward;
  P.Init = Bits(Words, 0);
  P.Boundary = Bits(Words, 0); // nothing defined before the region
  P.Meet = [](const Bits &A, const Bits &B) {
    Bits M = A;
    for (size_t I = 0; I != M.size(); ++I)
      M[I] |= B[I];
    return M;
  };
  P.Transfer = [&](const Cfg &Graph, uint32_t Block, const Bits &In) {
    const CfgBlock &B = Graph.blocks()[Block];
    Bits Val = In;
    for (uint32_t I = B.FirstInst; I <= B.lastInst(); ++I) {
      int Reg = instDef(Graph.instructions()[I]);
      if (Reg < 0)
        continue;
      for (uint32_t Dead : DefsOfReg[Reg])
        Val[Dead / 64] &= ~(uint64_t(1) << (Dead % 64));
      uint32_t Id = static_cast<uint32_t>(DefIdOf[I]);
      Val[Id / 64] |= uint64_t(1) << (Id % 64);
    }
    return Val;
  };
  auto S = solveDataflow(G, P);
  R.In = std::move(S.In);
  R.Out = std::move(S.Out);
  return R;
}

std::optional<uint32_t> pcc::analysis::foldBinaryOp(Opcode Op,
                                                    uint32_t A,
                                                    uint32_t B) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Addi:
    return A + B;
  case Opcode::Sub:
    return A - B;
  case Opcode::Mul:
  case Opcode::Muli:
    return A * B;
  case Opcode::Divu:
    return B == 0 ? 0 : A / B;
  case Opcode::And:
  case Opcode::Andi:
    return A & B;
  case Opcode::Or:
  case Opcode::Ori:
    return A | B;
  case Opcode::Xor:
  case Opcode::Xori:
    return A ^ B;
  case Opcode::Shl:
  case Opcode::Shli:
    return A << (B & 31);
  case Opcode::Shr:
  case Opcode::Shri:
    return A >> (B & 31);
  case Opcode::Sltu:
  case Opcode::Sltiu:
    return A < B ? 1 : 0;
  case Opcode::Seq:
    return A == B ? 1 : 0;
  default:
    return std::nullopt;
  }
}

std::vector<bool> pcc::analysis::findDeadTraceDefs(
    const std::vector<Instruction> &Body, uint32_t StartAddr) {
  std::vector<bool> Dead(Body.size(), false);
  if (Body.empty())
    return Dead;
  CfgOptions Opts;
  Opts.BranchTargetsExternal = true; // the trace model
  Cfg G = buildCfg(Body, StartAddr, {StartAddr}, Opts);
  LivenessResult L = solveLiveness(G);
  for (uint32_t BI = 0; BI != G.blocks().size(); ++BI) {
    const CfgBlock &B = G.blocks()[BI];
    RegSet Live = L.LiveOut[BI];
    for (uint32_t I = B.lastInst() + 1; I-- != B.FirstInst;) {
      const Instruction &Inst = Body[I];
      int Def = instDef(Inst);
      if (Def >= 0 && isPureDef(Inst) &&
          (Live & (RegSet(1) << Def)) == 0)
        Dead[I] = true;
      if (Def >= 0)
        Live &= ~(RegSet(1) << Def);
      Live |= instUses(Inst);
    }
  }
  return Dead;
}

namespace {

/// Applies one instruction's effect to a per-register constant state,
/// mirroring vm::executeInstruction via foldBinaryOp. Conservative for
/// everything that is not a pure ALU def: the defined register (and for
/// Sys every register) drops to Bottom.
void constTransferInst(const Instruction &Inst, ConstState &Regs) {
  using analysis::ConstVal;
  auto Bottom = [] {
    ConstVal V;
    V.S = ConstVal::Bottom;
    return V;
  };
  if (Inst.Op == Opcode::Sys) {
    // The emulation unit may rewrite any register (thread switches
    // restore a different context).
    Regs.fill(Bottom());
    return;
  }
  int Def = instDef(Inst);
  if (Def < 0)
    return;
  if (Inst.Op == Opcode::Ldi) {
    Regs[Def] = ConstVal{ConstVal::Konst, Inst.Imm};
    return;
  }
  if (isPureDef(Inst)) {
    const ConstVal &A = Regs[Inst.Rs1];
    bool IsImmForm = false;
    switch (Inst.Op) {
    case Opcode::Addi:
    case Opcode::Muli:
    case Opcode::Andi:
    case Opcode::Ori:
    case Opcode::Xori:
    case Opcode::Shli:
    case Opcode::Shri:
    case Opcode::Sltiu:
      IsImmForm = true;
      break;
    default:
      break;
    }
    if (A.S == ConstVal::Konst) {
      if (IsImmForm) {
        if (auto V = foldBinaryOp(Inst.Op, A.Value, Inst.Imm)) {
          Regs[Def] = ConstVal{ConstVal::Konst, *V};
          return;
        }
      } else if (Regs[Inst.Rs2].S == ConstVal::Konst) {
        if (auto V =
                foldBinaryOp(Inst.Op, A.Value, Regs[Inst.Rs2].Value)) {
          Regs[Def] = ConstVal{ConstVal::Konst, *V};
          return;
        }
      }
    }
  }
  Regs[Def] = Bottom();
}

} // namespace

TraceConstantsResult pcc::analysis::solveTraceConstants(
    const std::vector<Instruction> &Body, uint32_t StartAddr) {
  TraceConstantsResult R;
  R.Folded.assign(Body.size(), std::nullopt);
  if (Body.empty())
    return R;

  CfgOptions Opts;
  Opts.BranchTargetsExternal = true; // the trace model
  Cfg G = buildCfg(Body, StartAddr, {StartAddr}, Opts);

  ConstState Top{};
  ConstState Bottom{};
  for (ConstVal &V : Bottom)
    V.S = ConstVal::Bottom;

  DataflowProblem<ConstState> P;
  P.Dir = Direction::Forward;
  P.Init = Top;
  P.Boundary = Bottom; // register values are unknown at trace entry
  P.Meet = [](const ConstState &A, const ConstState &B) {
    ConstState M;
    for (unsigned R = 0; R != isa::NumRegisters; ++R) {
      if (A[R].S == ConstVal::Top)
        M[R] = B[R];
      else if (B[R].S == ConstVal::Top || A[R] == B[R])
        M[R] = A[R];
      else
        M[R].S = ConstVal::Bottom;
    }
    return M;
  };
  P.Transfer = [](const Cfg &Graph, uint32_t Block,
                  const ConstState &In) {
    const CfgBlock &B = Graph.blocks()[Block];
    ConstState Regs = In;
    for (uint32_t I = B.FirstInst; I <= B.lastInst(); ++I)
      constTransferInst(Graph.instructions()[I], Regs);
    return Regs;
  };
  auto S = solveDataflow(G, P);

  for (uint32_t BI = 0; BI != G.blocks().size(); ++BI) {
    const CfgBlock &B = G.blocks()[BI];
    ConstState Regs = S.In[BI];
    for (uint32_t I = B.FirstInst; I <= B.lastInst(); ++I) {
      const Instruction &Inst = Body[I];
      if (isPureDef(Inst) && Inst.Op != Opcode::Ldi) {
        ConstState After = Regs;
        constTransferInst(Inst, After);
        const ConstVal &D = After[instDef(Inst)];
        if (D.S == ConstVal::Konst)
          R.Folded[I] = D.Value;
        Regs = After;
      } else {
        constTransferInst(Inst, Regs);
      }
    }
  }
  return R;
}

namespace {

/// Applies one instruction's effect to an available-load fact set.
void availTransferInst(const Instruction &Inst, AvailSet &S) {
  auto KillReg = [&](unsigned Reg) {
    S.Facts.erase(std::remove_if(S.Facts.begin(), S.Facts.end(),
                                 [&](const AvailLoad &F) {
                                   return F.Base == Reg ||
                                          F.Holder == Reg;
                                 }),
                  S.Facts.end());
  };
  auto KillAll = [&] {
    S.Universal = false;
    S.Facts.clear();
  };

  switch (Inst.Op) {
  case Opcode::Ld:
    KillReg(Inst.Rd);
    // After the load, Rd holds [Rs1 + Imm] — unless the load just
    // clobbered its own base register.
    if (Inst.Rd != Inst.Rs1)
      S.Facts.push_back(AvailLoad{Inst.Rs1, Inst.Rd, Inst.Imm});
    return;
  case Opcode::St:
    // No alias information in the ISA: any store may hit any fact.
    KillAll();
    return;
  case Opcode::Sys:
    // The emulation unit may write memory and registers.
    KillAll();
    return;
  case Opcode::Call:
  case Opcode::Callr:
  case Opcode::Ret:
    // Push/pop touch memory and redefine the stack pointer.
    KillAll();
    return;
  default:
    if (int Def = instDef(Inst); Def >= 0)
      KillReg(static_cast<unsigned>(Def));
    return;
  }
}

/// Canonical order so structurally equal sets compare equal regardless
/// of the path that built them.
void normalizeAvail(AvailSet &S) {
  std::sort(S.Facts.begin(), S.Facts.end(),
            [](const AvailLoad &A, const AvailLoad &B) {
              return std::tie(A.Base, A.Holder, A.Imm) <
                     std::tie(B.Base, B.Holder, B.Imm);
            });
}

} // namespace

TraceRedundantLoadsResult pcc::analysis::solveTraceRedundantLoads(
    const std::vector<Instruction> &Body, uint32_t StartAddr) {
  TraceRedundantLoadsResult R;
  R.Holder.assign(Body.size(), -1);
  if (Body.empty())
    return R;

  CfgOptions Opts;
  Opts.BranchTargetsExternal = true; // the trace model
  Cfg G = buildCfg(Body, StartAddr, {StartAddr}, Opts);

  AvailSet Top;
  Top.Universal = true;
  AvailSet Empty; // nothing available at trace entry

  DataflowProblem<AvailSet> P;
  P.Dir = Direction::Forward;
  P.Init = Top;
  P.Boundary = Empty;
  P.Meet = [](const AvailSet &A, const AvailSet &B) {
    if (A.Universal)
      return B;
    if (B.Universal)
      return A;
    AvailSet M;
    for (const AvailLoad &F : A.Facts)
      if (std::find(B.Facts.begin(), B.Facts.end(), F) !=
          B.Facts.end())
        M.Facts.push_back(F);
    normalizeAvail(M);
    return M;
  };
  P.Transfer = [](const Cfg &Graph, uint32_t Block,
                  const AvailSet &In) {
    const CfgBlock &B = Graph.blocks()[Block];
    AvailSet S = In;
    for (uint32_t I = B.FirstInst; I <= B.lastInst(); ++I)
      availTransferInst(Graph.instructions()[I], S);
    normalizeAvail(S);
    return S;
  };
  auto Sol = solveDataflow(G, P);

  for (uint32_t BI = 0; BI != G.blocks().size(); ++BI) {
    const CfgBlock &B = G.blocks()[BI];
    AvailSet S = Sol.In[BI];
    for (uint32_t I = B.FirstInst; I <= B.lastInst(); ++I) {
      const Instruction &Inst = Body[I];
      if (Inst.Op == Opcode::Ld && !S.Universal) {
        int Holder = -1;
        for (const AvailLoad &F : S.Facts)
          if (F.Base == Inst.Rs1 && F.Imm == Inst.Imm) {
            Holder = F.Holder;
            if (F.Holder == Inst.Rd)
              break; // prefer the in-place form (pure Nop)
          }
        R.Holder[I] = Holder;
      }
      availTransferInst(Inst, S);
    }
  }
  return R;
}
