//===- analysis/Dataflow.cpp ----------------------------------------------===//

#include "analysis/Dataflow.h"

#include <cassert>

using namespace pcc;
using namespace pcc::analysis;
using isa::Instruction;
using isa::Opcode;

RegSet pcc::analysis::instUses(const Instruction &Inst) {
  auto Bit = [](unsigned Reg) { return RegSet(1) << Reg; };
  switch (Inst.Op) {
  case Opcode::Nop:
  case Opcode::Halt:
  case Opcode::Ldi:
  case Opcode::Jmp:
    return 0;
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Divu:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Sltu:
  case Opcode::Seq:
    return Bit(Inst.Rs1) | Bit(Inst.Rs2);
  case Opcode::Addi:
  case Opcode::Muli:
  case Opcode::Andi:
  case Opcode::Ori:
  case Opcode::Xori:
  case Opcode::Shli:
  case Opcode::Shri:
  case Opcode::Sltiu:
  case Opcode::Ld:
    return Bit(Inst.Rs1);
  case Opcode::St:
    return Bit(Inst.Rs1) | Bit(Inst.Rs2);
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Bltu:
  case Opcode::Bgeu:
    return Bit(Inst.Rs1) | Bit(Inst.Rs2);
  case Opcode::Jr:
    return Bit(Inst.Rs1);
  case Opcode::Call:
    return Bit(isa::StackPointerReg);
  case Opcode::Callr:
    return Bit(Inst.Rs1) | Bit(isa::StackPointerReg);
  case Opcode::Ret:
    return Bit(isa::StackPointerReg);
  case Opcode::Sys:
    // The emulation unit (and a spawned thread's initial state) may
    // read any register.
    return AllRegs;
  case Opcode::NumOpcodes:
    break;
  }
  return AllRegs; // unreachable; stay conservative
}

int pcc::analysis::instDef(const Instruction &Inst) {
  switch (Inst.Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Divu:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Sltu:
  case Opcode::Seq:
  case Opcode::Addi:
  case Opcode::Muli:
  case Opcode::Andi:
  case Opcode::Ori:
  case Opcode::Xori:
  case Opcode::Shli:
  case Opcode::Shri:
  case Opcode::Sltiu:
  case Opcode::Ldi:
  case Opcode::Ld:
    return Inst.Rd;
  case Opcode::Call:
  case Opcode::Callr:
  case Opcode::Ret:
    return static_cast<int>(isa::StackPointerReg);
  default:
    return -1;
  }
}

bool pcc::analysis::isPureDef(const Instruction &Inst) {
  switch (Inst.Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Divu:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Sltu:
  case Opcode::Seq:
  case Opcode::Addi:
  case Opcode::Muli:
  case Opcode::Andi:
  case Opcode::Ori:
  case Opcode::Xori:
  case Opcode::Shli:
  case Opcode::Shri:
  case Opcode::Sltiu:
  case Opcode::Ldi:
    return true;
  default:
    return false;
  }
}

RegSet LivenessResult::liveBefore(const Cfg &G, uint32_t Block,
                                  uint32_t InstIndex) const {
  const CfgBlock &B = G.blocks()[Block];
  assert(InstIndex >= B.FirstInst && InstIndex <= B.lastInst() &&
         "instruction outside block");
  RegSet Live = LiveOut[Block];
  for (uint32_t I = B.lastInst();; --I) {
    const Instruction &Inst = G.instructions()[I];
    if (int Def = instDef(Inst); Def >= 0)
      Live &= ~(RegSet(1) << Def);
    Live |= instUses(Inst);
    if (I == InstIndex)
      break;
    assert(I != 0 && "walked past block start");
  }
  return Live;
}

LivenessResult pcc::analysis::solveLiveness(const Cfg &G) {
  DataflowProblem<RegSet> P;
  P.Dir = Direction::Backward;
  P.Init = 0;
  P.Boundary = AllRegs;
  P.Meet = [](const RegSet &A, const RegSet &B) { return A | B; };
  P.Transfer = [](const Cfg &Graph, uint32_t Block, const RegSet &Out) {
    const CfgBlock &B = Graph.blocks()[Block];
    RegSet Live = Out;
    for (uint32_t I = B.lastInst() + 1; I-- != B.FirstInst;) {
      const Instruction &Inst = Graph.instructions()[I];
      if (int Def = instDef(Inst); Def >= 0)
        Live &= ~(RegSet(1) << Def);
      Live |= instUses(Inst);
    }
    return Live;
  };
  auto S = solveDataflow(G, P);
  return LivenessResult{std::move(S.In), std::move(S.Out)};
}

ReachingDefsResult pcc::analysis::solveReachingDefs(const Cfg &G) {
  ReachingDefsResult R;
  // Number the definition sites and group them by register for the
  // kill sets.
  std::vector<int> DefIdOf(G.instructions().size(), -1);
  std::vector<std::vector<uint32_t>> DefsOfReg(isa::NumRegisters);
  for (const CfgBlock &B : G.blocks())
    for (uint32_t I = B.FirstInst; I <= B.lastInst(); ++I)
      if (int Reg = instDef(G.instructions()[I]); Reg >= 0) {
        DefIdOf[I] = static_cast<int>(R.DefSites.size());
        DefsOfReg[Reg].push_back(
            static_cast<uint32_t>(R.DefSites.size()));
        R.DefSites.push_back(I);
      }
  const size_t Words = (R.DefSites.size() + 63) / 64;

  using Bits = std::vector<uint64_t>;
  DataflowProblem<Bits> P;
  P.Dir = Direction::Forward;
  P.Init = Bits(Words, 0);
  P.Boundary = Bits(Words, 0); // nothing defined before the region
  P.Meet = [](const Bits &A, const Bits &B) {
    Bits M = A;
    for (size_t I = 0; I != M.size(); ++I)
      M[I] |= B[I];
    return M;
  };
  P.Transfer = [&](const Cfg &Graph, uint32_t Block, const Bits &In) {
    const CfgBlock &B = Graph.blocks()[Block];
    Bits Val = In;
    for (uint32_t I = B.FirstInst; I <= B.lastInst(); ++I) {
      int Reg = instDef(Graph.instructions()[I]);
      if (Reg < 0)
        continue;
      for (uint32_t Dead : DefsOfReg[Reg])
        Val[Dead / 64] &= ~(uint64_t(1) << (Dead % 64));
      uint32_t Id = static_cast<uint32_t>(DefIdOf[I]);
      Val[Id / 64] |= uint64_t(1) << (Id % 64);
    }
    return Val;
  };
  auto S = solveDataflow(G, P);
  R.In = std::move(S.In);
  R.Out = std::move(S.Out);
  return R;
}

std::vector<bool> pcc::analysis::findDeadTraceDefs(
    const std::vector<Instruction> &Body, uint32_t StartAddr) {
  std::vector<bool> Dead(Body.size(), false);
  if (Body.empty())
    return Dead;
  CfgOptions Opts;
  Opts.BranchTargetsExternal = true; // the trace model
  Cfg G = buildCfg(Body, StartAddr, {StartAddr}, Opts);
  LivenessResult L = solveLiveness(G);
  for (uint32_t BI = 0; BI != G.blocks().size(); ++BI) {
    const CfgBlock &B = G.blocks()[BI];
    RegSet Live = L.LiveOut[BI];
    for (uint32_t I = B.lastInst() + 1; I-- != B.FirstInst;) {
      const Instruction &Inst = Body[I];
      int Def = instDef(Inst);
      if (Def >= 0 && isPureDef(Inst) &&
          (Live & (RegSet(1) << Def)) == 0)
        Dead[I] = true;
      if (Def >= 0)
        Live &= ~(RegSet(1) << Def);
      Live |= instUses(Inst);
    }
  }
  return Dead;
}
