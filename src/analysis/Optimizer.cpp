//===- analysis/Optimizer.cpp ---------------------------------------------===//

#include "analysis/Optimizer.h"

#include "analysis/Dataflow.h"

#include <algorithm>
#include <numeric>

using namespace pcc;
using namespace pcc::analysis;
using isa::Instruction;
using isa::Opcode;

bool pcc::analysis::optimizeTraceBody(std::vector<Instruction> &Body,
                                      uint32_t GuestStart,
                                      bool AllowConstFold,
                                      TraceOptStats &Stats) {
  bool Changed = false;

  if (AllowConstFold) {
    TraceConstantsResult C = solveTraceConstants(Body, GuestStart);
    for (size_t I = 0; I != Body.size(); ++I)
      if (C.Folded[I]) {
        Body[I] = isa::makeLdi(Body[I].Rd, *C.Folded[I]);
        ++Stats.ConstsFolded;
        Changed = true;
      }
  }

  TraceRedundantLoadsResult L =
      solveTraceRedundantLoads(Body, GuestStart);
  for (size_t I = 0; I != Body.size(); ++I)
    if (L.Holder[I] >= 0) {
      unsigned Holder = static_cast<unsigned>(L.Holder[I]);
      if (Holder == Body[I].Rd)
        Body[I] = isa::makeNop();
      else
        Body[I] = isa::makeAluImm(Opcode::Ori, Body[I].Rd, Holder, 0);
      ++Stats.LoadsEliminated;
      Changed = true;
    }

  std::vector<bool> Dead = findDeadTraceDefs(Body, GuestStart);
  for (size_t I = 0; I != Body.size(); ++I)
    if (Dead[I] && Body[I].Op != Opcode::Nop) {
      Body[I] = isa::makeNop();
      ++Stats.FlagsElided;
      Changed = true;
    }

  return Changed;
}

std::vector<std::vector<uint32_t>> pcc::analysis::planSuperblocks(
    const std::vector<SuperblockCandidate> &Candidates,
    uint32_t MaxInsts) {
  std::vector<std::vector<uint32_t>> Chains;

  // Hottest heads first; ties broken by start address so planning is
  // deterministic for equal heat.
  std::vector<uint32_t> Order(Candidates.size());
  std::iota(Order.begin(), Order.end(), 0u);
  std::stable_sort(Order.begin(), Order.end(),
                   [&](uint32_t A, uint32_t B) {
                     if (Candidates[A].Heat != Candidates[B].Heat)
                       return Candidates[A].Heat > Candidates[B].Heat;
                     return Candidates[A].Start < Candidates[B].Start;
                   });

  std::vector<bool> Consumed(Candidates.size(), false);
  for (uint32_t Head : Order) {
    if (Consumed[Head])
      continue;
    std::vector<uint32_t> Chain{Head};
    uint64_t Total = Candidates[Head].InstCount;
    uint32_t Cur = Head;
    while (Candidates[Cur].EndsInFallThrough) {
      // The successor must start exactly where this body ends, so the
      // merged body stays contiguous guest code.
      if (Candidates[Cur].FallTarget !=
          Candidates[Cur].Start +
              Candidates[Cur].InstCount * isa::InstructionSize)
        break;
      int Next = -1;
      for (uint32_t I = 0; I != Candidates.size(); ++I)
        if (!Consumed[I] && I != Head &&
            Candidates[I].Start == Candidates[Cur].FallTarget &&
            Candidates[I].ModuleIndex == Candidates[Cur].ModuleIndex) {
          Next = static_cast<int>(I);
          break;
        }
      if (Next < 0 ||
          Total + Candidates[Next].InstCount > MaxInsts)
        break;
      Chain.push_back(static_cast<uint32_t>(Next));
      Consumed[Next] = true;
      Total += Candidates[Next].InstCount;
      Cur = static_cast<uint32_t>(Next);
    }
    if (Chain.size() > 1) {
      Consumed[Head] = true;
      Chains.push_back(std::move(Chain));
    }
  }
  return Chains;
}
