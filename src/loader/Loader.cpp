//===- loader/Loader.cpp --------------------------------------------------===//

#include "loader/Loader.h"

#include "support/Hashing.h"
#include "support/Random.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <deque>

using namespace pcc;
using namespace pcc::loader;
using binary::Module;
using binary::PageSize;

void ModuleRegistry::add(std::shared_ptr<const Module> Mod) {
  assert(Mod && "null module");
  Modules[Mod->name()] = std::move(Mod);
}

std::shared_ptr<const Module>
ModuleRegistry::find(const std::string &Name) const {
  auto It = Modules.find(Name);
  return It == Modules.end() ? nullptr : It->second;
}

std::vector<std::shared_ptr<const Module>> ModuleRegistry::all() const {
  std::vector<std::shared_ptr<const Module>> Out;
  Out.reserve(Modules.size());
  for (const auto &[Name, Mod] : Modules)
    Out.push_back(Mod);
  std::sort(Out.begin(), Out.end(),
            [](const auto &A, const auto &B) {
              return A->name() < B->name();
            });
  return Out;
}

const LoadedModule *LoadedImage::findByAddress(uint32_t Addr) const {
  for (const LoadedModule &Mod : Modules)
    if (Mod.contains(Addr))
      return &Mod;
  return nullptr;
}

const LoadedModule *LoadedImage::findByName(const std::string &Name) const {
  for (const LoadedModule &Mod : Modules)
    if (Mod.Image->name() == Name)
      return &Mod;
  return nullptr;
}

static bool overlaps(uint32_t BaseA, uint32_t SizeA, uint32_t BaseB,
                     uint32_t SizeB) {
  return BaseA < BaseB + SizeB && BaseB < BaseA + SizeA;
}

ErrorOr<uint32_t> Loader::chooseBase(const Module &Mod,
                                     std::vector<LoadedModule> &Loaded) {
  if (Mod.isExecutable())
    return ExecutableBase;
  if (Policy == BasePolicy::Fixed) {
    // Prelink-style: preferred base from the library name, probing past
    // any module already occupying the slot. Identical libraries land at
    // identical addresses across applications unless a collision chain
    // differs — exactly the partial-sharing behaviour of Section 4.5.
    const uint32_t ArenaSize = 0x50000000;
    uint32_t Candidate =
        LibraryRegionBase +
        static_cast<uint32_t>(fnv1a64(Mod.name()) %
                              (ArenaSize / PageSize)) *
            PageSize;
    for (unsigned Attempt = 0; Attempt != 1024; ++Attempt) {
      if (Candidate < LibraryRegionBase ||
          Candidate + Mod.imageSize() >
              LibraryRegionBase + ArenaSize)
        Candidate = LibraryRegionBase;
      const LoadedModule *Colliding = nullptr;
      for (const LoadedModule &Prior : Loaded)
        if (overlaps(Candidate, Mod.imageSize(), Prior.Base,
                     Prior.Size))
          Colliding = &Prior;
      if (!Colliding)
        return Candidate;
      Candidate = binary::alignToPage(Colliding->Base +
                                      Colliding->Size) +
                  PageSize;
    }
    return Status::error(ErrorCode::OutOfMemory,
                         "cannot place " + Mod.name());
  }
  // Randomized: derive a per-run, per-module base from the seed and pick
  // the first candidate that does not collide with prior mappings.
  Rng Generator(hashCombine(AslrSeed, fnv1a64(Mod.name())));
  for (unsigned Attempt = 0; Attempt != 64; ++Attempt) {
    // Library arena: 0x10000000..0x70000000, page aligned.
    uint32_t Base = static_cast<uint32_t>(
        LibraryRegionBase +
        Generator.nextBelow((0x70000000u - LibraryRegionBase) / PageSize) *
            PageSize);
    bool Collides = overlaps(Base, Mod.imageSize(), ExecutableBase,
                             0x10000000u - ExecutableBase) ||
                    overlaps(Base, Mod.imageSize(), StackBase, StackSize);
    for (const LoadedModule &Prior : Loaded)
      Collides |= overlaps(Base, Mod.imageSize(), Prior.Base, Prior.Size);
    if (!Collides)
      return Base;
  }
  return Status::error(ErrorCode::OutOfMemory,
                       "cannot place " + Mod.name());
}

Status Loader::mapModule(const Module &Mod, uint32_t Base) {
  Status MapResult = Space.mapRegion(Base, Mod.imageSize());
  if (!MapResult.ok())
    return MapResult;

  // Copy text, rebasing relocated immediates.
  std::vector<isa::Instruction> Insts = Mod.instructions();
  for (uint32_t InstIndex : Mod.textRelocations()) {
    if (InstIndex >= Insts.size())
      return Status::error(ErrorCode::InvalidFormat,
                           "text relocation out of range in " +
                               Mod.name());
    Insts[InstIndex].Imm += Base;
  }
  std::vector<uint8_t> TextBytes = isa::encodeAll(Insts);
  Status S = Space.writeBytes(Base, TextBytes.data(),
                              static_cast<uint32_t>(TextBytes.size()));
  if (!S.ok())
    return S;

  // Copy data and rebase address-holding words.
  if (!Mod.data().empty()) {
    S = Space.writeBytes(Base + Mod.dataStart(), Mod.data().data(),
                         static_cast<uint32_t>(Mod.data().size()));
    if (!S.ok())
      return S;
  }
  for (uint32_t DataOffset : Mod.dataRelocations()) {
    uint32_t Addr = Base + Mod.dataStart() + DataOffset;
    auto Word = Space.read32(Addr);
    if (!Word)
      return Status::error(ErrorCode::InvalidFormat,
                           "data relocation out of range in " +
                               Mod.name());
    S = Space.write32(Addr, *Word + Base);
    if (!S.ok())
      return S;
  }
  return Status::success();
}

Status Loader::resolveImports(const LoadedModule &Mod,
                              const LoadedImage &Image) {
  for (const binary::ImportEntry &Import : Mod.Image->imports()) {
    const LoadedModule *Lib = Image.findByName(Import.LibraryName);
    if (!Lib)
      return Status::error(ErrorCode::NotFound,
                           "unresolved library " + Import.LibraryName +
                               " needed by " + Mod.Image->name());
    auto SymOffset = Lib->Image->findSymbol(Import.SymbolName);
    if (!SymOffset)
      return Status::error(ErrorCode::NotFound,
                           "unresolved symbol " + Import.SymbolName +
                               " in " + Import.LibraryName);
    uint32_t SlotAddr = Mod.dataBase() + Import.GotOffset;
    Status S = Space.write32(SlotAddr, Lib->Base + *SymOffset);
    if (!S.ok())
      return S;
  }
  return Status::success();
}

ErrorOr<LoadedImage> Loader::load(std::shared_ptr<const Module> App) {
  assert(App && "null application module");
  if (!App->isExecutable())
    return Status::error(ErrorCode::InvalidArgument,
                         App->name() + " is not an executable");

  // Discover the transitive dependency set breadth-first, executable
  // first, preserving first-seen order (the paper's load order).
  std::vector<std::shared_ptr<const Module>> ToLoad = {App};
  std::deque<const Module *> Worklist = {App.get()};
  auto alreadyQueued = [&](const std::string &Name) {
    for (const auto &Mod : ToLoad)
      if (Mod->name() == Name)
        return true;
    return false;
  };
  while (!Worklist.empty()) {
    const Module *Current = Worklist.front();
    Worklist.pop_front();
    for (const std::string &Dep : Current->dependencyNames()) {
      if (alreadyQueued(Dep))
        continue;
      auto Lib = Registry.find(Dep);
      if (!Lib)
        return Status::error(ErrorCode::NotFound,
                             "library not found: " + Dep);
      ToLoad.push_back(Lib);
      Worklist.push_back(Lib.get());
    }
  }

  LoadedImage Image;
  for (const auto &Mod : ToLoad) {
    auto Base = chooseBase(*Mod, Image.Modules);
    if (!Base)
      return Base.status();
    Status S = mapModule(*Mod, *Base);
    if (!S.ok())
      return S;
    Image.Modules.push_back(
        LoadedModule{Mod, *Base, Mod->imageSize()});
  }

  // Imports can only be resolved once every module has a base.
  for (const LoadedModule &Mod : Image.Modules) {
    Status S = resolveImports(Mod, Image);
    if (!S.ok())
      return S;
  }

  Status S = Space.mapRegion(StackBase, StackSize);
  if (!S.ok())
    return S;
  Image.EntryAddress = Image.Modules.front().entryAddress();
  Image.StackTop = StackBase + StackSize;

  if (ObserverFn)
    for (const LoadedModule &Mod : Image.Modules)
      ObserverFn(Mod);
  return Image;
}
