//===- loader/AddressSpace.cpp --------------------------------------------===//

#include "loader/AddressSpace.h"

#include "support/Hashing.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace pcc;
using namespace pcc::loader;
using binary::PageSize;

static uint32_t pageIndex(uint32_t Addr) { return Addr / PageSize; }
static uint32_t pageOffset(uint32_t Addr) { return Addr % PageSize; }

static Status faultAt(uint32_t Addr) {
  return Status::error(ErrorCode::GuestFault,
                       formatString("access to unmapped address 0x%x",
                                    Addr));
}

const AddressSpace::Page *AddressSpace::findPage(uint32_t Addr) const {
  auto It = Pages.find(pageIndex(Addr));
  return It == Pages.end() ? nullptr : It->second.get();
}

AddressSpace::Page *AddressSpace::findPage(uint32_t Addr) {
  auto It = Pages.find(pageIndex(Addr));
  return It == Pages.end() ? nullptr : It->second.get();
}

Status AddressSpace::mapRegion(uint32_t Addr, uint32_t Size) {
  if (Size == 0)
    return Status::success();
  uint32_t First = pageIndex(Addr);
  uint32_t Last = pageIndex(Addr + Size - 1);
  for (uint32_t Index = First;; ++Index) {
    if (Pages.count(Index))
      return Status::error(
          ErrorCode::InvalidArgument,
          formatString("page 0x%x already mapped", Index * PageSize));
    if (Index == Last)
      break;
  }
  for (uint32_t Index = First;; ++Index) {
    Pages.emplace(Index, std::make_unique<Page>(PageSize, 0));
    if (Index == Last)
      break;
  }
  return Status::success();
}

bool AddressSpace::isMapped(uint32_t Addr) const {
  return findPage(Addr) != nullptr;
}

ErrorOr<uint8_t> AddressSpace::read8(uint32_t Addr) const {
  const Page *P = findPage(Addr);
  if (!P)
    return faultAt(Addr);
  return (*P)[pageOffset(Addr)];
}

ErrorOr<uint32_t> AddressSpace::read32(uint32_t Addr) const {
  // Fast path: within one page.
  const Page *P = findPage(Addr);
  if (P && pageOffset(Addr) + 4 <= PageSize) {
    const uint8_t *Bytes = P->data() + pageOffset(Addr);
    return static_cast<uint32_t>(Bytes[0]) |
           (static_cast<uint32_t>(Bytes[1]) << 8) |
           (static_cast<uint32_t>(Bytes[2]) << 16) |
           (static_cast<uint32_t>(Bytes[3]) << 24);
  }
  uint32_t Value = 0;
  for (unsigned I = 0; I != 4; ++I) {
    auto Byte = read8(Addr + I);
    if (!Byte)
      return Byte.status();
    Value |= static_cast<uint32_t>(*Byte) << (8 * I);
  }
  return Value;
}

Status AddressSpace::write8(uint32_t Addr, uint8_t Value) {
  Page *P = findPage(Addr);
  if (!P)
    return faultAt(Addr);
  (*P)[pageOffset(Addr)] = Value;
  return Status::success();
}

Status AddressSpace::write32(uint32_t Addr, uint32_t Value) {
  Page *P = findPage(Addr);
  if (P && pageOffset(Addr) + 4 <= PageSize) {
    uint8_t *Bytes = P->data() + pageOffset(Addr);
    Bytes[0] = static_cast<uint8_t>(Value);
    Bytes[1] = static_cast<uint8_t>(Value >> 8);
    Bytes[2] = static_cast<uint8_t>(Value >> 16);
    Bytes[3] = static_cast<uint8_t>(Value >> 24);
    return Status::success();
  }
  for (unsigned I = 0; I != 4; ++I) {
    Status S = write8(Addr + I, static_cast<uint8_t>(Value >> (8 * I)));
    if (!S.ok())
      return S;
  }
  return Status::success();
}

Status AddressSpace::writeBytes(uint32_t Addr, const void *Data,
                                uint32_t Size) {
  const auto *Src = static_cast<const uint8_t *>(Data);
  uint32_t Done = 0;
  while (Done != Size) {
    Page *P = findPage(Addr + Done);
    if (!P)
      return faultAt(Addr + Done);
    uint32_t Offset = pageOffset(Addr + Done);
    uint32_t Chunk = std::min(Size - Done, PageSize - Offset);
    std::copy(Src + Done, Src + Done + Chunk, P->data() + Offset);
    Done += Chunk;
  }
  return Status::success();
}

Status AddressSpace::readBytes(uint32_t Addr, void *Out,
                               uint32_t Size) const {
  auto *Dst = static_cast<uint8_t *>(Out);
  uint32_t Done = 0;
  while (Done != Size) {
    const Page *P = findPage(Addr + Done);
    if (!P)
      return faultAt(Addr + Done);
    uint32_t Offset = pageOffset(Addr + Done);
    uint32_t Chunk = std::min(Size - Done, PageSize - Offset);
    std::copy(P->data() + Offset, P->data() + Offset + Chunk, Dst + Done);
    Done += Chunk;
  }
  return Status::success();
}

Status AddressSpace::fetchInstructionBytes(uint32_t Addr,
                                           uint8_t *Out) const {
  return readBytes(Addr, Out, isa::InstructionSize);
}

uint64_t AddressSpace::contentHash() const {
  std::vector<uint32_t> Indices;
  Indices.reserve(Pages.size());
  for (const auto &[Index, P] : Pages)
    Indices.push_back(Index);
  std::sort(Indices.begin(), Indices.end());
  uint64_t Hash = Fnv1a64Init;
  for (uint32_t Index : Indices) {
    Hash = fnv1a64U64(Index, Hash);
    const Page &P = *Pages.at(Index);
    Hash = fnv1a64Bytes(P.data(), P.size(), Hash);
  }
  return Hash;
}
