//===- loader/AddressSpace.h - Guest virtual address space ------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sparse, paged 32-bit guest address space. Pages are allocated on
/// mapRegion(); access to unmapped memory is a guest fault surfaced as a
/// Status, never undefined behaviour. The interpreter and the DBI engine
/// both execute against this memory, so results are bit-identical across
/// execution modes — the property the equivalence tests rely on.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_LOADER_ADDRESSSPACE_H
#define PCC_LOADER_ADDRESSSPACE_H

#include "binary/Module.h"
#include "support/Error.h"

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace pcc {
namespace loader {

/// Paged guest memory. All multi-byte accesses are little-endian and may
/// span page boundaries.
class AddressSpace {
public:
  /// Maps [Addr, Addr+Size) zero-filled. Both ends are page aligned
  /// internally. Fails if any page in the range is already mapped.
  Status mapRegion(uint32_t Addr, uint32_t Size);

  /// True if the byte at \p Addr is mapped.
  bool isMapped(uint32_t Addr) const;

  /// \name Checked accessors (guest-visible semantics)
  /// @{
  ErrorOr<uint8_t> read8(uint32_t Addr) const;
  ErrorOr<uint32_t> read32(uint32_t Addr) const;
  Status write8(uint32_t Addr, uint8_t Value);
  Status write32(uint32_t Addr, uint32_t Value);
  Status writeBytes(uint32_t Addr, const void *Data, uint32_t Size);
  Status readBytes(uint32_t Addr, void *Out, uint32_t Size) const;
  /// @}

  /// Reads the 8 instruction bytes at \p Addr into \p Out. Hot path for
  /// both the interpreter and trace selection.
  Status fetchInstructionBytes(uint32_t Addr, uint8_t *Out) const;

  /// Total mapped bytes (for memory accounting).
  uint64_t mappedBytes() const {
    return static_cast<uint64_t>(Pages.size()) * binary::PageSize;
  }

  /// Order-independent digest of the full mapped contents: pages are
  /// hashed in ascending page-number order, so two spaces with the same
  /// mappings and bytes produce the same value regardless of mapping
  /// order. Replay uses this to prove final memory is bit-identical.
  uint64_t contentHash() const;

private:
  using Page = std::vector<uint8_t>;

  const Page *findPage(uint32_t Addr) const;
  Page *findPage(uint32_t Addr);

  std::unordered_map<uint32_t, std::unique_ptr<Page>> Pages;
};

} // namespace loader
} // namespace pcc

#endif // PCC_LOADER_ADDRESSSPACE_H
