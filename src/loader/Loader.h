//===- loader/Loader.h - Guest program loader -------------------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps an executable and its transitive shared-library dependencies into
/// a guest address space: base-address assignment, absolute-address
/// relocation, and GOT-based import resolution. The base-address policy is
/// what drives the paper's Section 3.2.3 failure mode: "libraries may load
/// at different addresses across executions"; a randomized policy models
/// hosts with address-space layout randomization (the paper cites PaX).
///
/// Module-load events can be observed through a callback — the analogue of
/// Pin intercepting mmap — which is how the persistent cache manager
/// validates keys for every loaded image.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_LOADER_LOADER_H
#define PCC_LOADER_LOADER_H

#include "binary/Module.h"
#include "loader/AddressSpace.h"
#include "support/Error.h"

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace pcc {
namespace loader {

/// Set of modules available to the loader — the analogue of the
/// filesystem's library directories.
class ModuleRegistry {
public:
  /// Registers \p Mod under its name. Replaces any same-named module
  /// (models installing a new library version).
  void add(std::shared_ptr<const binary::Module> Mod);

  /// \returns the module named \p Name, or nullptr.
  std::shared_ptr<const binary::Module>
  find(const std::string &Name) const;

  size_t size() const { return Modules.size(); }

  /// All registered modules, sorted by name — a deterministic order for
  /// serialization (the record/replay log stores registries this way).
  std::vector<std::shared_ptr<const binary::Module>> all() const;

private:
  std::unordered_map<std::string, std::shared_ptr<const binary::Module>>
      Modules;
};

/// How load bases are chosen across runs.
enum class BasePolicy : uint8_t {
  /// Deterministic, prelink-style: every library has a preferred base
  /// derived from its name, with collision probing. The same library
  /// therefore loads at the same address across runs *and across
  /// applications* — the common case on the paper's RedHat systems, and
  /// what makes inter-application persistence pay off. Collisions
  /// (different library mixes probing into each other) are the paper's
  /// "identical libraries loaded at different addresses" case.
  Fixed,
  /// Randomized per run from a seed (ASLR-like, the paper cites PaX).
  /// Persisted translations for relocated modules become unusable and
  /// are retranslated (unless position-independent translations are
  /// enabled).
  Randomized,
};

/// A module mapped into the guest address space.
struct LoadedModule {
  std::shared_ptr<const binary::Module> Image;
  uint32_t Base = 0;
  uint32_t Size = 0; ///< Mapping size in bytes.

  /// Absolute address of the text section start.
  uint32_t textBase() const { return Base; }
  /// Absolute address of the data section start.
  uint32_t dataBase() const { return Base + Image->dataStart(); }
  /// Absolute entry point (executables).
  uint32_t entryAddress() const { return Base + Image->entryOffset(); }
  /// True if \p Addr falls inside this mapping.
  bool contains(uint32_t Addr) const {
    return Addr >= Base && Addr - Base < Size;
  }
};

/// Result of loading an executable: all mapped modules (executable first,
/// then libraries in load order) plus the initial PC and SP.
struct LoadedImage {
  std::vector<LoadedModule> Modules;
  uint32_t EntryAddress = 0;
  uint32_t StackTop = 0;

  /// \returns the module containing \p Addr, or nullptr.
  const LoadedModule *findByAddress(uint32_t Addr) const;
  /// \returns the module named \p Name, or nullptr.
  const LoadedModule *findByName(const std::string &Name) const;
};

/// Loads guest programs into an AddressSpace.
class Loader {
public:
  /// Called once per module as it is mapped (the persistence manager's
  /// interception point).
  using LoadObserver = std::function<void(const LoadedModule &)>;

  Loader(AddressSpace &Space, const ModuleRegistry &Registry,
         BasePolicy Policy = BasePolicy::Fixed, uint64_t AslrSeed = 0)
      : Space(Space), Registry(Registry), Policy(Policy),
        AslrSeed(AslrSeed) {}

  void setLoadObserver(LoadObserver Observer) {
    ObserverFn = std::move(Observer);
  }

  /// Loads \p App plus its transitive dependencies, maps a stack, and
  /// resolves all imports. Fails on missing libraries/symbols, address
  /// conflicts, or malformed GOT offsets.
  ErrorOr<LoadedImage>
  load(std::shared_ptr<const binary::Module> App);

  /// Default base of the executable image.
  static constexpr uint32_t ExecutableBase = 0x00400000;
  /// First base considered for shared libraries under the Fixed policy.
  static constexpr uint32_t LibraryRegionBase = 0x10000000;
  /// Stack mapping: [StackBase, StackBase+StackSize).
  static constexpr uint32_t StackBase = 0x7ffe0000;
  static constexpr uint32_t StackSize = 0x00020000;

private:
  ErrorOr<uint32_t> chooseBase(const binary::Module &Mod,
                               std::vector<LoadedModule> &Loaded);
  Status mapModule(const binary::Module &Mod, uint32_t Base);
  Status resolveImports(const LoadedModule &Mod,
                        const LoadedImage &Image);

  AddressSpace &Space;
  const ModuleRegistry &Registry;
  BasePolicy Policy;
  uint64_t AslrSeed;
  LoadObserver ObserverFn;
};

} // namespace loader
} // namespace pcc

#endif // PCC_LOADER_LOADER_H
