//===- dbi/Engine.h - The run-time compilation engine -----------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The virtual machine that runs a guest program completely under its
/// control — the Pin analogue of Figure 1 in the paper. The dispatcher
/// looks up traces in the translation map, invokes the compilation unit
/// on misses (the dominant VM overhead), links traces so hot paths stay
/// inside the code cache, and hands syscalls to the emulation unit.
///
/// Persistence (the paper's contribution) is layered on top by
/// pcc::persist: it pre-populates this engine's code cache from a
/// persistent cache file before run() and harvests resident traces after.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_DBI_ENGINE_H
#define PCC_DBI_ENGINE_H

#include "dbi/CodeCache.h"
#include "dbi/Compiler.h"
#include "dbi/CostModel.h"
#include "dbi/InstallQueue.h"
#include "dbi/Stats.h"
#include "dbi/Tool.h"
#include "vm/Machine.h"

#include <functional>
#include <memory>
#include <unordered_map>

namespace pcc {
namespace dbi {

/// What the engine does when a code-cache pool fills up.
enum class EvictionPolicy : uint8_t {
  /// Discard everything (Pin's behaviour, and the paper's: "a code
  /// cache flush discards all translated code and data structures").
  FlushAll,
  /// Evict the oldest half of the traces and compact the pool —
  /// granular code-cache management in the spirit of the Hazelwood
  /// work the paper builds on. Evaluated in bench/ablate_eviction.
  EvictOldestHalf,
};

/// Engine configuration. Defaults mirror the paper's setup scaled to the
/// synthetic workloads (the paper reserves 512 MB split evenly between
/// code cache and data structures; a flush discards everything).
struct EngineOptions {
  /// Fixed instruction count bounding trace selection.
  uint32_t MaxTraceInsts = 16;
  uint64_t CodePoolBytes = 64ull << 20;
  uint64_t DataPoolBytes = 64ull << 20;
  /// Trace linking (proactive branch patching). On in Pin; switchable
  /// for ablation.
  bool EnableLinking = true;
  /// Ablation of the separate code/data pools (Section 3.2.2): when
  /// true, data structures are intermixed with code in a single pool,
  /// degrading translated-code locality.
  bool IntermixPools = false;
  /// Reaction to a full pool.
  EvictionPolicy Eviction = EvictionPolicy::FlushAll;
  /// Liveness-driven dead-def elision in the compilation unit: defs
  /// that cannot be observed at any trace exit are replaced with Nop in
  /// the translated image. Every elided trace is proved
  /// effect-equivalent to its source by analysis::validateTranslation;
  /// on a validator rejection the unelided translation is kept.
  /// Architectural results are identical either way.
  bool OptimizeFlags = false;
  CostModel Costs;
  vm::RunLimits Limits;
};

/// Version stamp of the engine implementation. Part of every persistent
/// cache key: "code and the data structures are specific to a version of
/// the system and cannot be utilized across versions" (Section 3.2.1).
uint64_t engineVersionHash();

/// One run of one guest program under dynamic binary translation.
class Engine {
public:
  /// \p ClientTool may be nullptr (no instrumentation — the paper's
  /// "minimum overhead Pin must overcome" baseline).
  Engine(vm::Machine &M, Tool *ClientTool,
         EngineOptions Opts = EngineOptions());

  /// Executes the guest to completion. Callable once per Engine.
  vm::RunResult run();

  CodeCache &cache() { return Cache; }
  const CodeCache &cache() const { return Cache; }
  EngineStats &stats() { return Stats; }
  const EngineStats &stats() const { return Stats; }
  const EngineOptions &options() const { return Opts; }
  vm::Machine &machine() { return M; }
  Tool *tool() const { return ClientTool; }

  /// Instrumentation compiled into every trace (empty without a tool).
  InstrumentationSpec spec() const {
    return ClientTool ? ClientTool->spec() : InstrumentationSpec();
  }

  /// Attaches the async-prime install queue: worker threads publish
  /// CRC-validated, pre-decoded persisted payloads there and run()
  /// drains them at dispatcher boundaries. Results are bit-identical
  /// with and without a queue — the background work is host-side only
  /// and every modeled cycle is still charged here at first execution.
  void setInstallQueue(std::shared_ptr<TraceInstallQueue> Q) {
    InstallQ = std::move(Q);
  }

  /// What a materialize-time verification hook did, reported back so
  /// the engine can account for it without knowing how the session
  /// verifies (full symbolic re-proof, certificate check, or neither).
  struct MaterializeCheckInfo {
    /// The hook established effect-equivalence for this body (counts in
    /// EngineStats::TracesVerified). False when the hook passed the
    /// trace through unverified (e.g. an unpromoted trace under
    /// certificate-only checking).
    bool Verified = false;
    /// Certificate checks attempted / failed for this body.
    uint32_t CertsChecked = 0;
    uint32_t CertChecksFailed = 0;
    /// Full symbolic re-proofs run (certificate missing or rejected).
    uint32_t ProofsReplayed = 0;
  };

  /// Deep-verification hook run when a persisted trace's body is
  /// decoded (at first execution or during a synchronous/async prime),
  /// before the trace becomes executable. Receives the trace's guest
  /// start address, its decoded (rebased) body, and an Info out-param
  /// describing the verification work done; a non-success Status
  /// rejects the trace, which is then dropped and retranslated from
  /// guest memory exactly like a payload CRC failure. Installed by
  /// persist::Session when PersistOptions::ValidateSemantic or
  /// certificate checking applies; the engine itself stays
  /// persistence-agnostic.
  using MaterializeValidator = std::function<Status(
      uint32_t GuestStart, const std::vector<isa::Instruction> &Body,
      MaterializeCheckInfo &Info)>;
  void setMaterializeValidator(MaterializeValidator V) {
    ValidateMaterialize = std::move(V);
  }

  /// Shared-residency probe for persisted code pages: given a code-pool
  /// page number, returns true when another process already has that
  /// page mapped and resident. A newly touched page that probes true is
  /// charged CostModel::SharedPageTouchCycles (a soft fault wiring in a
  /// shared page) instead of PersistPageTouchCycles (demand-paged I/O),
  /// and counts in EngineStats::PersistSharedPageHits. The probe
  /// applies identically to XIP and materializing primes, so attaching
  /// it never breaks their stats bit-identity. Null = every first touch
  /// is I/O (the single-process default).
  using ResidencyProbe = std::function<bool(uint32_t Page)>;
  void setResidencyProbe(ResidencyProbe P) {
    ProbeResidency = std::move(P);
  }

  /// Validates and materializes every still-pending persisted trace on
  /// the calling thread (corrupt ones are dropped for retranslation,
  /// exactly as at first execution). This is the fully synchronous
  /// prime the async pipeline is measured against; demand-paged costs
  /// are charged as if every trace had been executed once.
  void prevalidatePersistedTraces();

private:
  /// Dispatcher slow path: translation-map lookup, compiling on a miss,
  /// flushing and retrying when a pool fills.
  ErrorOr<TranslatedTrace *> lookupOrCompile(uint32_t Pc);

  /// Decodes a persisted trace's body on first execution, charging
  /// demand-paging costs. Consumes a background-validated body when
  /// one is available; otherwise does the work inline. XIP traces are
  /// CRC-checked and bounds-scanned in place instead of decoded.
  Status ensureMaterialized(TranslatedTrace *T);

  /// Charges the first-execution materialize + page-touch cycles for
  /// \p T, splitting newly touched pages into shared soft faults and
  /// demand-paged I/O when a residency probe is attached.
  void chargePersistFirstTouch(TranslatedTrace *T);

  /// Runs ValidateMaterialize over \p Body, folding the hook's
  /// MaterializeCheckInfo into Stats (certificate and re-proof
  /// counters; TracesVerified only when the hook actually verified).
  /// Must only be called with the hook installed.
  Status runMaterializeCheck(uint32_t GuestStart,
                             const std::vector<isa::Instruction> &Body);

  /// Moves every published install-queue result into Prevalidated.
  void drainInstallQueue();

  vm::Machine &M;
  Tool *ClientTool;
  EngineOptions Opts;
  CodeCache Cache;
  Compiler TheCompiler;
  EngineStats Stats;
  bool HasRun = false;
  /// Async-prime plumbing (null when priming is synchronous).
  std::shared_ptr<TraceInstallQueue> InstallQ;
  /// Semantic-verification hook for persisted bodies (null = off).
  MaterializeValidator ValidateMaterialize;
  /// Cross-process page-residency probe (null = single process).
  ResidencyProbe ProbeResidency;
  /// Drained-but-not-yet-consumed worker results, by guest start. An
  /// entry whose trace was flushed before first execution simply goes
  /// unused; the dispatcher recompiles that PC as on a cold run.
  std::unordered_map<uint32_t, ReadyTrace> Prevalidated;
};

} // namespace dbi
} // namespace pcc

#endif // PCC_DBI_ENGINE_H
