//===- dbi/CodeCache.cpp --------------------------------------------------===//

#include "dbi/CodeCache.h"

#include "binary/Module.h"

#include <algorithm>

using namespace pcc;
using namespace pcc::dbi;
using binary::PageSize;

TraceExit *TranslatedTrace::findBranchExit(uint32_t InstIndex) {
  for (TraceExit &Exit : Exits)
    if (Exit.Kind == ExitKind::Branch && Exit.InstIndex == InstIndex)
      return &Exit;
  return nullptr;
}

TranslatedTrace *CodeCache::lookup(uint32_t GuestAddr) const {
  auto It = TranslationMap.find(GuestAddr);
  return It == TranslationMap.end() ? nullptr : It->second;
}

ErrorOr<uint32_t> CodeCache::allocateCode(uint32_t NumBytes) {
  if (BorrowedSize + CodePool.size() + NumBytes > CodePoolCapacity)
    return Status::error(ErrorCode::OutOfMemory, "code pool exhausted");
  uint32_t Offset =
      static_cast<uint32_t>(BorrowedSize + CodePool.size());
  CodePool.resize(CodePool.size() + NumBytes);
  return Offset;
}

void CodeCache::writeCode(uint32_t Offset,
                          const std::vector<uint8_t> &Bytes) {
  assert(Offset >= BorrowedSize && "code write into borrowed mapping");
  assert(Offset - BorrowedSize + Bytes.size() <= CodePool.size() &&
         "code write outside allocation");
  std::copy(Bytes.begin(), Bytes.end(),
            CodePool.begin() + (Offset - BorrowedSize));
  // Freshly written pages are resident by construction.
  touchPages(Offset, static_cast<uint32_t>(Bytes.size()));
}

const uint8_t *CodeCache::codeAt(uint32_t Offset) const {
  if (Offset < BorrowedSize)
    return Borrowed + Offset;
  assert(Offset - BorrowedSize <= CodePool.size() &&
         "offset outside code pool");
  return CodePool.data() + (Offset - BorrowedSize);
}

uint8_t *CodeCache::mutableCodeAt(uint32_t Offset) {
  // Borrowed pages are shared with other processes and must stay clean;
  // rebasing and link patching are only legal in owned storage.
  assert(Offset >= BorrowedSize && "mutating borrowed (shared) code");
  assert(Offset - BorrowedSize <= CodePool.size() &&
         "offset outside code pool");
  return CodePool.data() + (Offset - BorrowedSize);
}

ErrorOr<TranslatedTrace *>
CodeCache::addTrace(std::unique_ptr<TranslatedTrace> T) {
  assert(!TranslationMap.count(T->guestStart()) &&
         "duplicate trace for guest address");
  if (DataPoolUsed + T->dataBytes() > DataPoolCapacity)
    return Status::error(ErrorCode::OutOfMemory, "data pool exhausted");
  DataPoolUsed += T->dataBytes();
  TranslatedTrace *Raw = T.get();
  TranslationMap.emplace(Raw->guestStart(), Raw);
  Traces.push_back(std::move(T));
  return Raw;
}

void CodeCache::reserveTraces(size_t N) {
  TranslationMap.reserve(TranslationMap.size() + N);
  Traces.reserve(Traces.size() + N);
}

Status CodeCache::installPersistedPool(std::vector<uint8_t> PoolBytes) {
  if (!Traces.empty() || !CodePool.empty() || BorrowedSize != 0)
    return Status::error(ErrorCode::InvalidArgument,
                         "cache not empty at persistent-pool install");
  if (PoolBytes.size() > CodePoolCapacity)
    return Status::error(ErrorCode::OutOfMemory,
                         "persistent pool exceeds code pool capacity");
  CodePool = std::move(PoolBytes);
  // Mapped, not resident: pages fault in on first touch.
  ResidentPages.assign((CodePool.size() + PageSize - 1) / PageSize, false);
  return Status::success();
}

Status CodeCache::installBorrowedPool(const uint8_t *Data, size_t Size,
                                      std::shared_ptr<const void> Keepalive) {
  if (!Traces.empty() || !CodePool.empty() || BorrowedSize != 0)
    return Status::error(ErrorCode::InvalidArgument,
                         "cache not empty at borrowed-pool install");
  if (Size > CodePoolCapacity)
    return Status::error(ErrorCode::OutOfMemory,
                         "borrowed pool exceeds code pool capacity");
  Borrowed = Data;
  BorrowedSize = Size;
  BorrowedKeepalive = std::move(Keepalive);
  // Same demand-paging model as an owned persisted pool: mapped, not
  // resident; pages fault in on first touch.
  ResidentPages.assign((Size + PageSize - 1) / PageSize, false);
  return Status::success();
}

void CodeCache::link(TranslatedTrace *From, uint32_t ExitIndex,
                     TranslatedTrace *To) {
  assert(ExitIndex < From->exits().size() && "bad exit index");
  TraceExit &Exit = From->exits()[ExitIndex];
  assert(isLinkableExit(Exit.Kind) && "linking a non-linkable exit");
  assert(Exit.Target == To->guestStart() && "link target mismatch");
  assert(!Exit.Link && "exit already linked");
  Exit.Link = To;
  To->incomingLinks().emplace_back(From, ExitIndex);
}

void CodeCache::unlinkTrace(TranslatedTrace *T) {
  // Unlink edges into the dying trace.
  for (auto &[Pred, ExitIndex] : T->incomingLinks()) {
    assert(Pred->exits()[ExitIndex].Link == T && "stale incoming link");
    Pred->exits()[ExitIndex].Link = nullptr;
  }
  T->incomingLinks().clear();
  // Unlink edges out of the dying trace.
  for (uint32_t I = 0; I != T->exits().size(); ++I) {
    TranslatedTrace *Succ = T->exits()[I].Link;
    if (!Succ)
      continue;
    auto &In = Succ->incomingLinks();
    In.erase(std::remove(In.begin(), In.end(), std::make_pair(T, I)),
             In.end());
  }
}

uint32_t CodeCache::removeTracesInRange(uint32_t Base, uint32_t Size) {
  auto inRange = [&](uint32_t Addr) {
    return Addr >= Base && Addr - Base < Size;
  };
  uint32_t Removed = 0;
  for (auto &T : Traces) {
    if (!T || !inRange(T->guestStart()))
      continue;
    unlinkTrace(T.get());
    TranslationMap.erase(T->guestStart());
    DataPoolUsed -= T->dataBytes();
    T.reset();
    ++Removed;
  }
  Traces.erase(std::remove_if(Traces.begin(), Traces.end(),
                              [](const auto &T) { return !T; }),
               Traces.end());
  return Removed;
}

void CodeCache::flush() {
  Traces.clear();
  TranslationMap.clear();
  CodePool.clear();
  // A borrowed pool is unmapped (keepalive released), never freed.
  Borrowed = nullptr;
  BorrowedSize = 0;
  BorrowedKeepalive.reset();
  ResidentPages.clear();
  DataPoolUsed = 0;
  ++ModificationGeneration;
}

uint32_t CodeCache::evictOldest(double Fraction) {
  assert(Fraction > 0 && Fraction <= 1 && "fraction out of range");
  uint32_t ToEvict = static_cast<uint32_t>(Traces.size() * Fraction);
  if (ToEvict == 0 && !Traces.empty())
    ToEvict = 1;
  if (ToEvict == 0)
    return 0;

  for (uint32_t I = 0; I != ToEvict; ++I) {
    TranslatedTrace *T = Traces[I].get();
    unlinkTrace(T);
    TranslationMap.erase(T->guestStart());
    DataPoolUsed -= T->dataBytes();
  }
  Traces.erase(Traces.begin(), Traces.begin() + ToEvict);

  // Compact the code pool around the survivors so the reclaimed bytes
  // are actually reusable (linear pools do not free holes). Survivors
  // whose storage was a borrowed mapping are copied into owned memory
  // first — their bodies are disowned and their pending payloads drop
  // the XIP flag — because the mapping itself is released (unmapped,
  // not freed) at the end.
  std::vector<uint8_t> NewPool;
  NewPool.reserve(BorrowedSize + CodePool.size());
  for (auto &T : Traces) {
    uint32_t NewOffset = static_cast<uint32_t>(NewPool.size());
    const uint8_t *Src = codeAt(T->poolOffset());
    NewPool.insert(NewPool.end(), Src, Src + T->poolBytes());
    T->relocateInPool(NewOffset);
    T->disownBody();
    if (PersistedPayload *P = T->persistedPayload())
      P->Xip = false;
  }
  CodePool = std::move(NewPool);
  Borrowed = nullptr;
  BorrowedSize = 0;
  BorrowedKeepalive.reset();
  // Compaction copies everything through memory: all pages resident.
  ResidentPages.assign(
      (CodePool.size() + PageSize - 1) / PageSize, true);
  ++ModificationGeneration;
  return ToEvict;
}

uint32_t CodeCache::touchPages(uint32_t Offset, uint32_t Bytes,
                               std::vector<uint32_t> *NewlyTouched) {
  if (Bytes == 0)
    return 0;
  uint32_t First = Offset / PageSize;
  uint32_t Last = (Offset + Bytes - 1) / PageSize;
  if (ResidentPages.size() <= Last)
    ResidentPages.resize(Last + 1, false);
  uint32_t Count = 0;
  for (uint32_t Page = First; Page <= Last; ++Page) {
    if (!ResidentPages[Page]) {
      ResidentPages[Page] = true;
      ++Count;
      if (NewlyTouched)
        NewlyTouched->push_back(Page);
    }
  }
  return Count;
}
