//===- dbi/CostModel.h - Cycle cost model for the DBI engine ----*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deterministic cycle cost model that stands in for wall-clock time
/// on the paper's Pentium 4 / Xeon hosts. Every engine activity the paper
/// measures — translation (VM overhead), translated-code execution,
/// dispatch, trace linking, syscall emulation, key hashing and persistent
/// cache demand paging — is charged from these constants, so all
/// experiments are exactly reproducible. See DESIGN.md for the
/// calibration rationale.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_DBI_COSTMODEL_H
#define PCC_DBI_COSTMODEL_H

#include <cstdint>

namespace pcc {
namespace dbi {

/// Cycle costs of engine activities. All values are per-event unless the
/// name says otherwise.
struct CostModel {
  /// \name Translation (the paper's "VM overhead")
  /// @{
  uint64_t CompileCyclesPerInst = 100;
  uint64_t CompileCyclesPerTrace = 600;
  /// Extra compile work per instrumentation point, by point kind.
  /// Basic-block counting is cheap glue (+25% VM in the paper's Figure
  /// 5b); memory instrumentation passes effective addresses and spills
  /// registers around every access, which is what makes the paper's
  /// instrumented Oracle runs several times more expensive.
  uint64_t CompileCyclesPerBlockPoint = 2400;
  uint64_t CompileCyclesPerMemoryPoint = 1700;
  uint64_t CompileCyclesPerInstPoint = 80;
  /// @}

  /// \name Dispatch and linking
  /// @{
  /// Code-cache exit into the dispatcher plus translation-map lookup.
  uint64_t DispatchCycles = 40;
  /// Patching a direct exit to jump straight to the target trace.
  uint64_t LinkCycles = 24;
  /// Inline hash lookup executed by every indirect control transfer.
  uint64_t IndirectLookupCycles = 12;
  /// @}

  /// \name Translated-code execution
  /// Translated code runs at Num/Den cycles per guest instruction (the
  /// paper: near-native without instrumentation, with residual overhead
  /// from maintaining VM control).
  /// @{
  uint64_t ExecCyclesNum = 6;
  uint64_t ExecCyclesDen = 5;
  /// Analysis-routine execution per instrumented point, by point kind.
  uint64_t AnalysisCyclesPerBlockCall = 3;
  uint64_t AnalysisCyclesPerMemoryCall = 30;
  uint64_t AnalysisCyclesPerInstCall = 4;
  /// @}

  /// System-call interception and emulation by the VM.
  uint64_t SyscallEmulationCycles = 4000;

  /// Granular eviction (unlink + compaction) work per evicted trace.
  uint64_t EvictionCyclesPerTrace = 40;

  /// \name Persistence costs
  /// @{
  /// Computing one module key: hashing path/header/timestamps.
  uint64_t KeyHashCyclesPerModule = 1500;
  /// Opening a persistent cache: two mmaps plus header validation.
  uint64_t PersistOpenCycles = 60000;
  /// First touch of one 4 KiB page of persisted code (demand paging).
  uint64_t PersistPageTouchCycles = 900;
  /// First touch of a persisted code page another process already has
  /// mapped and resident: a soft fault wiring the shared page into this
  /// process's tables, not disk I/O. The gap between this and
  /// PersistPageTouchCycles is the modeled per-page win of
  /// execute-in-place sharing.
  uint64_t SharedPageTouchCycles = 150;
  /// Materializing one persisted trace's data structures.
  uint64_t PersistTraceMaterializeCycles = 60;
  /// Checksumming one lazily validated trace payload at first execution
  /// (format v2 defers per-trace CRC from prime to materialization).
  uint64_t PersistTraceCrcCycles = 150;
  /// Writing the persistent cache at exit, per 4 KiB page written.
  uint64_t PersistWriteCyclesPerPage = 600;
  /// Fetching a cache from a remote (L2) store tier: fixed request
  /// latency — a round trip to a fleet-shared cache service, several
  /// orders above a local open but far below retranslating a warm
  /// working set.
  uint64_t RemoteFetchLatencyCycles = 400000;
  /// Remote-fetch transfer cost per 4 KiB page of cache file pulled
  /// over the link (the bandwidth term next to the latency term above).
  uint64_t RemoteFetchCyclesPerPage = 2000;
  /// @}

  /// Locality penalty on translated-code execution when code and data
  /// structures share one pool (Section 3.2.2 ablation: intermixing
  /// "results in increased cache misses/conflicts, page faults, and
  /// translation lookaside buffer misses").
  uint64_t IntermixExecPenaltyNum = 7;
  uint64_t IntermixExecPenaltyDen = 5;

  /// Cycles to execute \p GuestInsts guest instructions as translated
  /// code (without instrumentation).
  uint64_t translatedExecCycles(uint64_t GuestInsts) const {
    return GuestInsts * ExecCyclesNum / ExecCyclesDen;
  }
};

} // namespace dbi
} // namespace pcc

#endif // PCC_DBI_COSTMODEL_H
