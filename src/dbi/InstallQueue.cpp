//===- dbi/InstallQueue.cpp -----------------------------------------------===//

#include "dbi/InstallQueue.h"

#include <cassert>

using namespace pcc;
using namespace pcc::dbi;

void TraceInstallQueue::addJob(std::vector<uint32_t> Starts, JobFn Fn) {
  std::unique_lock<std::mutex> Lock(Mutex);
  for (uint32_t Start : Starts) {
    assert(!ByStart.count(Start) && "duplicate payload job");
    ByStart.emplace(Start, Jobs.size());
  }
  Jobs.push_back(Job{std::move(Fn), JobState::Unclaimed, {}});
}

bool TraceInstallQueue::runNextJob() {
  size_t Index;
  JobFn Fn;
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    while (NextScan != Jobs.size() &&
           Jobs[NextScan].State != JobState::Unclaimed)
      ++NextScan;
    if (NextScan == Jobs.size())
      return false;
    Index = NextScan++;
    Jobs[Index].State = JobState::Claimed;
    ++InFlight;
    ++Sched.ChunksClaimed;
    Fn = std::move(Jobs[Index].Fn);
  }
  std::vector<ReadyTrace> Results = Fn(); // Outside the lock.
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Jobs[Index].Results = std::move(Results);
    Jobs[Index].State = JobState::Published;
    ++Sched.ChunksPublished;
    --InFlight;
  }
  Advanced.notify_all();
  return true;
}

std::vector<ReadyTrace> TraceInstallQueue::drainReady() {
  std::vector<ReadyTrace> Out;
  std::unique_lock<std::mutex> Lock(Mutex);
  for (Job &J : Jobs) {
    if (J.State != JobState::Published)
      continue;
    for (ReadyTrace &R : J.Results)
      Out.push_back(std::move(R));
    J.Results.clear();
    J.State = JobState::Consumed;
  }
  return Out;
}

std::vector<ReadyTrace> TraceInstallQueue::takeFor(uint32_t GuestStart) {
  std::unique_lock<std::mutex> Lock(Mutex);
  auto It = ByStart.find(GuestStart);
  if (It == ByStart.end())
    return {};
  Job &J = Jobs[It->second];
  switch (J.State) {
  case JobState::Unclaimed:
    // Withdraw: the engine needs the trace *now*; validating just that
    // one inline is exactly the synchronous path, and consuming the job
    // keeps a worker from repeating the work. The chunk-mates fall back
    // to the same inline path at their own first executions.
    J.State = JobState::Consumed;
    J.Fn = nullptr;
    ++Sched.ChunksWithdrawn;
    return {};
  case JobState::Claimed:
    // A worker is mid-validation. Do not wait for it: the workers may
    // run at background priority, so blocking here would invert
    // priorities and stall the run behind arbitrary external load. The
    // caller validates its one trace inline — duplicate host-side work
    // on immutable bytes, invisible to the cost model — and the
    // worker's result is simply never consumed for that trace.
    ++Sched.ChunksInFlightSkipped;
    return {};
  case JobState::Published:
    break;
  case JobState::Consumed:
    return {};
  }
  J.State = JobState::Consumed;
  return std::move(J.Results);
}

void TraceInstallQueue::cancelPending() {
  std::unique_lock<std::mutex> Lock(Mutex);
  for (Job &J : Jobs) {
    if (J.State != JobState::Unclaimed)
      continue;
    J.State = JobState::Consumed;
    J.Fn = nullptr;
  }
}

void TraceInstallQueue::waitInFlight() {
  std::unique_lock<std::mutex> Lock(Mutex);
  Advanced.wait(Lock, [this] { return InFlight == 0; });
}

ScheduleStats TraceInstallQueue::scheduleStats() const {
  std::unique_lock<std::mutex> Lock(Mutex);
  return Sched;
}
