//===- dbi/Compiler.cpp ---------------------------------------------------===//

#include "dbi/Compiler.h"

#include "analysis/Dataflow.h"
#include "analysis/Validator.h"

using namespace pcc;
using namespace pcc::dbi;

uint32_t Compiler::instrumentationPoints(const Trace &T,
                                         const InstrumentationSpec &Spec) {
  uint32_t Points = 0;
  if (Spec.BasicBlocks)
    Points += T.numBasicBlocks();
  if (Spec.MemoryAccesses)
    Points += T.numMemoryAccesses();
  if (Spec.Instructions)
    Points += T.numInsts();
  return Points;
}

uint32_t Compiler::translatedBytes(const Trace &T,
                                   const InstrumentationSpec &Spec) {
  return TracePrologueBytes + T.numInsts() * isa::InstructionSize +
         static_cast<uint32_t>(T.Exits.size()) * ExitStubBytes +
         instrumentationPoints(T, Spec) * InstrumentStubBytes;
}

ErrorOr<TranslatedTrace *> Compiler::compile(uint32_t StartAddr,
                                             EngineStats &Stats) {
  auto Selected = selectTrace(Space, StartAddr, MaxTraceInsts);
  if (!Selected)
    return Selected.status();
  const Trace &T = *Selected;

  uint32_t PoolBytes = translatedBytes(T, Spec);
  auto Offset = Cache.allocateCode(PoolBytes);
  if (!Offset)
    return Offset.status();

  // Dead-def elision (--opt-flags): pure defs that cannot reach any
  // trace exit become Nops, in both the emitted image and the resident
  // body so the two never diverge. Instruction count, exit structure
  // and per-instruction PCs are all preserved — only the spelling of
  // provably unobservable computations changes — and the translation
  // validator must agree before the elided form is accepted.
  std::vector<isa::Instruction> Body = T.Insts;
  uint32_t Elided = 0;
  if (OptFlags) {
    std::vector<bool> Dead =
        analysis::findDeadTraceDefs(T.Insts, T.StartAddr);
    for (uint32_t I = 0; I != Body.size(); ++I)
      if (Dead[I]) {
        Body[I] = isa::Instruction{};
        ++Elided;
      }
    if (Elided != 0) {
      auto Check =
          analysis::validateTranslation(T.StartAddr, T.Insts, Body);
      if (Check.Equivalent) {
        ++Stats.TracesVerified;
        Stats.FlagsElided += Elided;
      } else {
        // Never emit an elision the validator cannot prove.
        ++Stats.VerifyFailures;
        Body = T.Insts;
        Elided = 0;
      }
    }
  }

  // Emit the translated image: zeroed prologue, the re-encoded guest
  // instructions, then zeroed stubs. The encoded instruction bytes are
  // what a persistent cache stores and later re-decodes.
  std::vector<uint8_t> Image(PoolBytes, 0);
  std::vector<uint8_t> Encoded = isa::encodeAll(Body);
  std::copy(Encoded.begin(), Encoded.end(),
            Image.begin() + TracePrologueBytes);
  Cache.writeCode(*Offset, Image);

  std::vector<TraceExit> Exits;
  Exits.reserve(T.Exits.size());
  for (const TraceExitInfo &Info : T.Exits)
    Exits.push_back(TraceExit{Info.Kind, Info.InstIndex, Info.Target,
                              nullptr});

  auto NewTrace = std::make_unique<TranslatedTrace>(
      T.StartAddr, T.numInsts(), *Offset, PoolBytes, std::move(Exits),
      /*FromPersistentCache=*/false);
  NewTrace->materialize(std::move(Body));

  auto Added = Cache.addTrace(std::move(NewTrace));
  if (!Added)
    return Added.status();

  uint64_t InstrumentCycles = 0;
  if (Spec.BasicBlocks)
    InstrumentCycles +=
        Costs.CompileCyclesPerBlockPoint * T.numBasicBlocks();
  if (Spec.MemoryAccesses)
    InstrumentCycles +=
        Costs.CompileCyclesPerMemoryPoint * T.numMemoryAccesses();
  if (Spec.Instructions)
    InstrumentCycles += Costs.CompileCyclesPerInstPoint * T.numInsts();
  Stats.CompileCycles += Costs.CompileCyclesPerTrace +
                         Costs.CompileCyclesPerInst * T.numInsts() +
                         InstrumentCycles;
  ++Stats.TracesCompiled;
  Stats.Timeline.push_back(
      CompileEvent{Stats.GuestInstsExecuted, T.numInsts()});
  return *Added;
}

void pcc::dbi::rebaseTranslatedImmediate(uint8_t *TraceImage,
                                         size_t ImageBytes,
                                         uint32_t InstIndex,
                                         int64_t Delta) {
  size_t Offset = TracePrologueBytes +
                  static_cast<size_t>(InstIndex) * isa::InstructionSize +
                  4;
  assert(Offset + 4 <= ImageBytes && "immediate outside code image");
  (void)ImageBytes;
  uint32_t Imm = 0;
  for (unsigned I = 0; I != 4; ++I)
    Imm |= static_cast<uint32_t>(TraceImage[Offset + I]) << (8 * I);
  Imm = static_cast<uint32_t>(Imm + Delta);
  for (unsigned I = 0; I != 4; ++I)
    TraceImage[Offset + I] = static_cast<uint8_t>(Imm >> (8 * I));
}
