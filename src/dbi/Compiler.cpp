//===- dbi/Compiler.cpp ---------------------------------------------------===//

#include "dbi/Compiler.h"

using namespace pcc;
using namespace pcc::dbi;

uint32_t Compiler::instrumentationPoints(const Trace &T,
                                         const InstrumentationSpec &Spec) {
  uint32_t Points = 0;
  if (Spec.BasicBlocks)
    Points += T.numBasicBlocks();
  if (Spec.MemoryAccesses)
    Points += T.numMemoryAccesses();
  if (Spec.Instructions)
    Points += T.numInsts();
  return Points;
}

uint32_t Compiler::translatedBytes(const Trace &T,
                                   const InstrumentationSpec &Spec) {
  return TracePrologueBytes + T.numInsts() * isa::InstructionSize +
         static_cast<uint32_t>(T.Exits.size()) * ExitStubBytes +
         instrumentationPoints(T, Spec) * InstrumentStubBytes;
}

ErrorOr<TranslatedTrace *> Compiler::compile(uint32_t StartAddr,
                                             EngineStats &Stats) {
  auto Selected = selectTrace(Space, StartAddr, MaxTraceInsts);
  if (!Selected)
    return Selected.status();
  const Trace &T = *Selected;

  uint32_t PoolBytes = translatedBytes(T, Spec);
  auto Offset = Cache.allocateCode(PoolBytes);
  if (!Offset)
    return Offset.status();

  // Emit the translated image: zeroed prologue, the re-encoded guest
  // instructions, then zeroed stubs. The encoded instruction bytes are
  // what a persistent cache stores and later re-decodes.
  std::vector<uint8_t> Image(PoolBytes, 0);
  std::vector<uint8_t> Encoded = isa::encodeAll(T.Insts);
  std::copy(Encoded.begin(), Encoded.end(),
            Image.begin() + TracePrologueBytes);
  Cache.writeCode(*Offset, Image);

  std::vector<TraceExit> Exits;
  Exits.reserve(T.Exits.size());
  for (const TraceExitInfo &Info : T.Exits)
    Exits.push_back(TraceExit{Info.Kind, Info.InstIndex, Info.Target,
                              nullptr});

  auto NewTrace = std::make_unique<TranslatedTrace>(
      T.StartAddr, T.numInsts(), *Offset, PoolBytes, std::move(Exits),
      /*FromPersistentCache=*/false);
  NewTrace->materialize(T.Insts);

  auto Added = Cache.addTrace(std::move(NewTrace));
  if (!Added)
    return Added.status();

  uint64_t InstrumentCycles = 0;
  if (Spec.BasicBlocks)
    InstrumentCycles +=
        Costs.CompileCyclesPerBlockPoint * T.numBasicBlocks();
  if (Spec.MemoryAccesses)
    InstrumentCycles +=
        Costs.CompileCyclesPerMemoryPoint * T.numMemoryAccesses();
  if (Spec.Instructions)
    InstrumentCycles += Costs.CompileCyclesPerInstPoint * T.numInsts();
  Stats.CompileCycles += Costs.CompileCyclesPerTrace +
                         Costs.CompileCyclesPerInst * T.numInsts() +
                         InstrumentCycles;
  ++Stats.TracesCompiled;
  Stats.Timeline.push_back(
      CompileEvent{Stats.GuestInstsExecuted, T.numInsts()});
  return *Added;
}

void pcc::dbi::rebaseTranslatedImmediate(uint8_t *TraceImage,
                                         size_t ImageBytes,
                                         uint32_t InstIndex,
                                         int64_t Delta) {
  size_t Offset = TracePrologueBytes +
                  static_cast<size_t>(InstIndex) * isa::InstructionSize +
                  4;
  assert(Offset + 4 <= ImageBytes && "immediate outside code image");
  (void)ImageBytes;
  uint32_t Imm = 0;
  for (unsigned I = 0; I != 4; ++I)
    Imm |= static_cast<uint32_t>(TraceImage[Offset + I]) << (8 * I);
  Imm = static_cast<uint32_t>(Imm + Delta);
  for (unsigned I = 0; I != 4; ++I)
    TraceImage[Offset + I] = static_cast<uint8_t>(Imm >> (8 * I));
}
