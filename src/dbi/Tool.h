//===- dbi/Tool.h - Client instrumentation API ------------------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client API — the analogue of a Pin Tool. A Tool declares which
/// instrumentation points it wants (its InstrumentationSpec, applied
/// uniformly at trace compile time) and receives analysis callbacks as
/// translated code executes. The tool's identity hashes into the
/// persistent cache key (Section 3.2.1: "The Pin Tool key ensures
/// instrumentation semantics are consistent across executions"), so a
/// cache created under one tool is never reused under another.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_DBI_TOOL_H
#define PCC_DBI_TOOL_H

#include "isa/Instruction.h"

#include <cstdint>
#include <string>
#include <unordered_map>

namespace pcc {
namespace dbi {

/// Which instrumentation points a tool inserts into every trace.
struct InstrumentationSpec {
  bool BasicBlocks = false;  ///< Callback at every basic-block entry.
  bool MemoryAccesses = false; ///< Callback before every load/store.
  bool Instructions = false;   ///< Callback before every instruction.

  bool any() const { return BasicBlocks || MemoryAccesses || Instructions; }

  /// Stable hash (feeds the tool key).
  uint64_t hash() const;

  bool operator==(const InstrumentationSpec &Other) const = default;
};

/// Base class for clients. Subclasses override the callbacks they
/// requested through spec(). Callbacks must be deterministic functions of
/// the observed execution for persistent-cache results to be meaningful.
class Tool {
public:
  virtual ~Tool();

  /// Unique, stable tool name (part of the persistent cache key).
  virtual std::string name() const = 0;

  /// Tool version; bump to invalidate previously persisted caches.
  virtual uint32_t version() const { return 1; }

  /// Instrumentation this tool wants compiled into every trace.
  virtual InstrumentationSpec spec() const { return InstrumentationSpec(); }

  /// \name Analysis callbacks (execution time)
  /// @{
  virtual void onBasicBlock(uint32_t Addr, uint32_t NumInsts);
  virtual void onMemoryAccess(uint32_t Pc, uint32_t EffectiveAddr,
                              bool IsWrite);
  virtual void onInstruction(uint32_t Pc);
  /// @}

  /// Key ingredient: hash of name, version and spec.
  uint64_t keyHash() const;
};

/// A named tool that instruments nothing. Exists to demonstrate that the
/// tool identity alone partitions the persistent cache database.
class NullTool : public Tool {
public:
  std::string name() const override { return "null"; }
};

/// Counts executions of every basic block (the paper's "detailed basic
/// block profiling", Figure 5(b)).
class BasicBlockCounterTool : public Tool {
public:
  std::string name() const override { return "bbcount"; }
  InstrumentationSpec spec() const override;
  void onBasicBlock(uint32_t Addr, uint32_t NumInsts) override;

  /// Execution count per basic-block start address.
  const std::unordered_map<uint32_t, uint64_t> &counts() const {
    return Counts;
  }
  /// Total dynamic basic blocks observed.
  uint64_t totalBlocks() const { return TotalBlocks; }
  /// Total dynamic instructions attributed through block sizes.
  uint64_t totalInstructions() const { return TotalInsts; }

private:
  std::unordered_map<uint32_t, uint64_t> Counts;
  uint64_t TotalBlocks = 0;
  uint64_t TotalInsts = 0;
};

/// Traces memory references (the paper instruments memory references on
/// Oracle, Section 4.2). Keeps counts plus an order-sensitive checksum
/// instead of an unbounded log.
class MemRefTraceTool : public Tool {
public:
  std::string name() const override { return "memtrace"; }
  InstrumentationSpec spec() const override;
  void onMemoryAccess(uint32_t Pc, uint32_t EffectiveAddr,
                      bool IsWrite) override;

  uint64_t loadCount() const { return Loads; }
  uint64_t storeCount() const { return Stores; }
  /// Order-sensitive checksum over (pc, address, kind) triples; equal
  /// checksums across engines mean identical observed reference streams.
  uint64_t checksum() const { return Checksum; }

private:
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t Checksum = 0;
};

/// Counts every executed instruction (icount-style tool).
class InstructionCounterTool : public Tool {
public:
  std::string name() const override { return "icount"; }
  InstrumentationSpec spec() const override;
  void onInstruction(uint32_t Pc) override;

  uint64_t count() const { return Count; }

private:
  uint64_t Count = 0;
};

} // namespace dbi
} // namespace pcc

#endif // PCC_DBI_TOOL_H
