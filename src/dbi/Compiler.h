//===- dbi/Compiler.h - Trace compilation unit ------------------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compilation unit: selects a trace from guest memory, emits its
/// translated form into the code cache pool (original layout preserved —
/// Pin "does not attempt original program optimization"), weaves in the
/// tool's instrumentation points, and charges the translation cycles that
/// constitute the paper's VM overhead.
///
/// Translated code layout in the pool:
///
///   [ prologue 16B ][ N guest instructions re-encoded, 8B each ]
///   [ one 16B exit stub per exit ][ one 16B stub per instr. point ]
///
//===----------------------------------------------------------------------===//

#ifndef PCC_DBI_COMPILER_H
#define PCC_DBI_COMPILER_H

#include "dbi/CodeCache.h"
#include "dbi/CostModel.h"
#include "dbi/Stats.h"
#include "dbi/Tool.h"
#include "dbi/Trace.h"

namespace pcc {
namespace dbi {

/// Pool-layout constants of the translated form.
inline constexpr uint32_t TracePrologueBytes = 16;
inline constexpr uint32_t ExitStubBytes = 16;
inline constexpr uint32_t InstrumentStubBytes = 16;

/// Rebases the 32-bit immediate of the translated instruction at
/// \p InstIndex inside a trace's pool image by \p Delta (wraps modulo
/// 2^32). Used for position-independent persisted code: the stored bytes
/// keep the original immediates, and the load-address delta is applied
/// in place — at prime time for eagerly decoded caches, or after the
/// deferred CRC check for lazily materialized ones.
void rebaseTranslatedImmediate(uint8_t *TraceImage, size_t ImageBytes,
                               uint32_t InstIndex, int64_t Delta);

/// Compiles traces on behalf of one engine run.
class Compiler {
public:
  /// \p OptFlags enables the liveness-driven dead-def elision pass
  /// (EngineOptions::OptimizeFlags): pure defs proved dead at every
  /// trace exit are replaced with Nop in the emitted image, and every
  /// touched trace must pass analysis::validateTranslation against the
  /// unmodified selection or the elision is discarded.
  Compiler(const loader::AddressSpace &Space, CodeCache &Cache,
           const CostModel &Costs, InstrumentationSpec Spec,
           uint32_t MaxTraceInsts, bool OptFlags = false)
      : Space(Space), Cache(Cache), Costs(Costs), Spec(Spec),
        MaxTraceInsts(MaxTraceInsts), OptFlags(OptFlags) {}

  /// Translates the code starting at \p StartAddr into a new resident
  /// trace, charging compile cycles into \p Stats. Fails with
  /// OutOfMemory when a pool is full (caller flushes and retries) and
  /// with GuestFault/InvalidFormat on unexecutable guest memory.
  ErrorOr<TranslatedTrace *> compile(uint32_t StartAddr,
                                     EngineStats &Stats);

  /// Number of instrumentation points \p Spec inserts into \p T.
  static uint32_t instrumentationPoints(const Trace &T,
                                        const InstrumentationSpec &Spec);

  /// Translated size in pool bytes of \p T under \p Spec.
  static uint32_t translatedBytes(const Trace &T,
                                  const InstrumentationSpec &Spec);

private:
  const loader::AddressSpace &Space;
  CodeCache &Cache;
  const CostModel &Costs;
  InstrumentationSpec Spec;
  uint32_t MaxTraceInsts;
  bool OptFlags;
};

} // namespace dbi
} // namespace pcc

#endif // PCC_DBI_COMPILER_H
