//===- dbi/Tool.cpp -------------------------------------------------------===//

#include "dbi/Tool.h"

#include "support/Hashing.h"

using namespace pcc;
using namespace pcc::dbi;

uint64_t InstrumentationSpec::hash() const {
  uint64_t Bits = (BasicBlocks ? 1 : 0) | (MemoryAccesses ? 2 : 0) |
                  (Instructions ? 4 : 0);
  return fnv1a64U64(Bits, Fnv1a64Init);
}

Tool::~Tool() = default;

void Tool::onBasicBlock(uint32_t, uint32_t) {}
void Tool::onMemoryAccess(uint32_t, uint32_t, bool) {}
void Tool::onInstruction(uint32_t) {}

uint64_t Tool::keyHash() const {
  uint64_t Hash = fnv1a64(name());
  Hash = fnv1a64U64(version(), Hash);
  return hashCombine(Hash, spec().hash());
}

InstrumentationSpec BasicBlockCounterTool::spec() const {
  InstrumentationSpec Spec;
  Spec.BasicBlocks = true;
  return Spec;
}

void BasicBlockCounterTool::onBasicBlock(uint32_t Addr, uint32_t NumInsts) {
  ++Counts[Addr];
  ++TotalBlocks;
  TotalInsts += NumInsts;
}

InstrumentationSpec MemRefTraceTool::spec() const {
  InstrumentationSpec Spec;
  Spec.MemoryAccesses = true;
  return Spec;
}

void MemRefTraceTool::onMemoryAccess(uint32_t Pc, uint32_t EffectiveAddr,
                                     bool IsWrite) {
  if (IsWrite)
    ++Stores;
  else
    ++Loads;
  uint64_t Record = (static_cast<uint64_t>(Pc) << 32) | EffectiveAddr;
  Checksum = hashCombine(hashCombine(Checksum, Record), IsWrite ? 1 : 0);
}

InstrumentationSpec InstructionCounterTool::spec() const {
  InstrumentationSpec Spec;
  Spec.Instructions = true;
  return Spec;
}

void InstructionCounterTool::onInstruction(uint32_t) { ++Count; }
