//===- dbi/InstallQueue.h - Async persisted-trace validation ----*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hand-off between background payload validation and the engine:
/// prime() installs persisted traces synchronously (so the translation
/// map, links and every modeled cost are identical at any worker
/// count) but defers the *host-side* work of each payload — CRC over
/// the stored bytes and decoding the translated body — to jobs on the
/// shared ThreadPool. Workers publish finished bodies here; the engine
/// drains them at dispatcher boundaries and attaches them to the
/// still-unmaterialized traces, so first execution skips the inline
/// CRC + decode stall while charging exactly the modeled cycles the
/// synchronous path charges.
///
/// Invariants that keep results bit-identical for any worker count:
///
///   * Jobs read only the session-owned cache-file view, never engine
///     memory — a flush or eviction can never race a worker.
///   * All modeled charges (CRC, materialize, page-touch cycles) are
///     made by the engine thread at first execution, whether the body
///     came from a worker, was claimed back unclaimed, or was decoded
///     inline.
///   * takeFor() is deterministic: an unclaimed job is withdrawn (the
///     engine validates inline, exactly as with no pool); an in-flight
///     job is waited for; either way the engine observes the same
///     bytes and produces the same trace.
///   * A result whose trace was flushed or evicted before arrival is
///     simply never consumed — the guest PC recompiles through the
///     normal dispatcher path, same as a cold run.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_DBI_INSTALLQUEUE_H
#define PCC_DBI_INSTALLQUEUE_H

#include "isa/Instruction.h"
#include "support/Error.h"

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace pcc {
namespace dbi {

/// Counters of the scheduling decisions the queue made over its
/// lifetime. The engine's results are invariant to them by design
/// (see the class invariants below); a recorder captures them as a
/// *diagnostic* timeline so a replay divergence can be attributed to
/// scheduling vs. input drift.
struct ScheduleStats {
  uint64_t ChunksPublished = 0; ///< Worker jobs that ran to publish.
  uint64_t ChunksClaimed = 0;   ///< Jobs claimed by a worker.
  uint64_t ChunksWithdrawn = 0; ///< Unclaimed jobs takeFor() withdrew.
  uint64_t ChunksInFlightSkipped = 0; ///< takeFor() hit a Claimed job.
};

/// One background-validated persisted payload, ready to install.
struct ReadyTrace {
  uint32_t GuestStart = 0;
  /// Payload CRC over the raw stored bytes matched the trace index.
  bool CrcOk = false;
  /// Decode failure of a CRC-clean payload (success otherwise). The
  /// engine surfaces it exactly as the inline decode would.
  Status DecodeError = Status::success();
  /// Decoded translated body with the position-independent rebase
  /// already applied; empty unless CrcOk and DecodeError is success.
  std::vector<isa::Instruction> Body;
};

/// Lock-protected queue of payload-validation jobs and their results.
/// One producer (the session, before run()), N worker threads, one
/// consumer (the engine thread).
///
/// Jobs are *batched*: each covers a contiguous chunk of persisted
/// traces and publishes one ReadyTrace per trace. Batching keeps the
/// producer/consumer overhead (closure allocation, map inserts, lock
/// round-trips, per-boundary scans) proportional to the chunk count
/// rather than the trace count, which matters because the producer loop
/// runs on the engine thread inside prime().
class TraceInstallQueue {
public:
  using JobFn = std::function<std::vector<ReadyTrace>()>;

  /// Registers a job producing the payloads for the persisted traces
  /// starting at \p Starts (one ReadyTrace each, same order). Called
  /// only before workers start (no locking vs. addJob itself).
  void addJob(std::vector<uint32_t> Starts, JobFn Fn);

  /// Worker protocol: claims the next unclaimed job, runs it outside
  /// the lock, publishes the results. Returns false when no unclaimed
  /// job remains (the worker loop exits).
  bool runNextJob();

  /// Engine side: removes and returns every published-but-unconsumed
  /// result. Called at dispatcher boundaries.
  std::vector<ReadyTrace> drainReady();

  /// Engine side: the published results of the job covering
  /// \p GuestStart — the requested trace plus its chunk-mates, which
  /// the caller stashes for their own first executions. An unclaimed
  /// job is withdrawn and empty returned: the caller validates the one
  /// trace it needs inline (exactly the synchronous path), and the
  /// withdrawn chunk-mates fall back to the same inline path at their
  /// own first executions. An in-flight job also returns empty — the
  /// engine never blocks on a worker (the workers may be running at
  /// background priority, so waiting would invert priorities); it
  /// validates inline, and the worker's duplicate result is ignored
  /// when it later arrives against an already-materialized trace.
  /// Empty also when no job covers the start or the job was already
  /// consumed.
  std::vector<ReadyTrace> takeFor(uint32_t GuestStart);

  /// Withdraws every still-unclaimed job (the session is done with the
  /// prime pipeline; workers drain out).
  void cancelPending();

  /// Blocks until no job is mid-execution on a worker. Combined with
  /// cancelPending() this quiesces the queue so the bytes the jobs
  /// read (the session's cache-file view) can be released.
  void waitInFlight();

  size_t jobCount() const { return Jobs.size(); }

  /// Snapshot of the scheduling decisions made so far (thread-safe).
  ScheduleStats scheduleStats() const;

private:
  enum class JobState : uint8_t {
    Unclaimed, ///< Waiting for a worker (or a takeFor withdrawal).
    Claimed,   ///< Running on a worker right now.
    Published, ///< Results available, not yet consumed.
    Consumed,  ///< Taken by the engine (or withdrawn/cancelled).
  };

  struct Job {
    JobFn Fn;
    JobState State = JobState::Unclaimed;
    std::vector<ReadyTrace> Results;
  };

  mutable std::mutex Mutex;
  std::condition_variable Advanced; ///< Signalled on publish.
  std::vector<Job> Jobs;
  std::unordered_map<uint32_t, size_t> ByStart;
  size_t NextScan = 0;  ///< Claim cursor (everything before is taken).
  size_t InFlight = 0;  ///< Jobs in state Claimed.
  ScheduleStats Sched;  ///< Guarded by Mutex.
};

} // namespace dbi
} // namespace pcc

#endif // PCC_DBI_INSTALLQUEUE_H
