//===- dbi/CodeCache.h - Software code cache --------------------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The software-managed code cache: two linear memory pools (translated
/// code and its supporting data structures — kept separate per Section
/// 3.2.2 of the paper), the translation map from original guest addresses
/// to translated traces, and trace links. When either pool fills, the
/// whole cache is flushed, discarding all translated code and data
/// structures (Section 4.1).
///
/// Persisted traces are installed *unmaterialized*: their translated code
/// lives in the memory-mapped pool and is decoded on first execution,
/// charging demand-paging costs — mirroring "disk I/O occurs based on the
/// access pattern of the executing code" (Section 3.2.3).
///
//===----------------------------------------------------------------------===//

#ifndef PCC_DBI_CODECACHE_H
#define PCC_DBI_CODECACHE_H

#include "dbi/Trace.h"
#include "support/Error.h"

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

namespace pcc {
namespace dbi {

class TranslatedTrace;

/// One exit of a translated trace, linkable to a successor trace.
struct TraceExit {
  ExitKind Kind = ExitKind::Halt;
  uint32_t InstIndex = 0;
  uint32_t Target = 0;
  /// Linked successor, or nullptr when the exit still goes through the
  /// dispatcher. Only linkable exits are ever linked.
  TranslatedTrace *Link = nullptr;
};

/// Deferred-validation state for a trace installed from an indexed (v2)
/// persistent cache: the payload CRC recorded in the cache file's trace
/// index, plus the position-independent rebase that must be applied to
/// the raw stored bytes *after* the CRC is verified. Cleared once the
/// trace materializes successfully.
struct PersistedPayload {
  uint32_t ExpectedCodeCrc = 0;
  /// Load-address delta to rebase position-independent immediates by;
  /// zero when no rebase is needed.
  int64_t RebaseDelta = 0;
  /// Per-instruction reloc bitmask (empty when RebaseDelta == 0).
  std::vector<uint8_t> RelocMask;
  /// Index of this trace in the source cache file's trace index, so
  /// finalize() can harvest unexecuted traces without decoding them.
  uint32_t SourceTraceIndex = 0;
  /// True when the trace's pool bytes live in a borrowed executable
  /// mapping: first execution CRC-checks and bounds-scans the mapped
  /// bytes in place instead of decoding a private copy. Cleared when
  /// eviction compacts the pool into owned storage.
  bool Xip = false;
};

/// A compiled trace resident in the code cache.
class TranslatedTrace {
public:
  TranslatedTrace(uint32_t GuestStart, uint32_t GuestInstCount,
                  uint32_t PoolOffset, uint32_t PoolBytes,
                  std::vector<TraceExit> Exits, bool FromPersistentCache)
      : GuestStart(GuestStart), GuestInstCount(GuestInstCount),
        PoolOffset(PoolOffset), PoolBytes(PoolBytes),
        Exits(std::move(Exits)),
        FromPersistentCache(FromPersistentCache) {}

  uint32_t guestStart() const { return GuestStart; }
  uint32_t guestInstCount() const { return GuestInstCount; }
  uint32_t poolOffset() const { return PoolOffset; }
  uint32_t poolBytes() const { return PoolBytes; }

  bool isFromPersistentCache() const { return FromPersistentCache; }
  bool isMaterialized() const { return Materialized; }

  /// Translated body; valid only when materialized. Owned traces view
  /// their decoded vector; XIP traces view the borrowed mapping.
  std::span<const isa::Instruction> body() const {
    assert(Materialized && "trace not materialized");
    if (BorrowedBody)
      return {BorrowedBody, GuestInstCount};
    return {Body.data(), Body.size()};
  }

  /// Installs the decoded body (at compile time, or on demand for
  /// persisted traces).
  void materialize(std::vector<isa::Instruction> DecodedBody) {
    assert(DecodedBody.size() == GuestInstCount && "body size mismatch");
    Body = std::move(DecodedBody);
    BorrowedBody = nullptr;
    Materialized = true;
  }

  /// Installs an execute-in-place body: \p InPlaceBody points at
  /// GuestInstCount instructions inside a borrowed mapping owned by the
  /// cache. The caller has already CRC-checked and bounds-scanned them.
  void materializeBorrowed(const isa::Instruction *InPlaceBody) {
    assert(InPlaceBody && "null in-place body");
    BorrowedBody = InPlaceBody;
    Materialized = true;
  }

  /// True when body() views a borrowed mapping rather than owned memory.
  bool isBorrowed() const { return BorrowedBody != nullptr; }

  /// Converts a borrowed body into an owned copy (the mapping is about
  /// to go away, e.g. eviction compaction).
  void disownBody() {
    if (!BorrowedBody)
      return;
    Body.assign(BorrowedBody, BorrowedBody + GuestInstCount);
    BorrowedBody = nullptr;
  }

  /// Moves the trace's code within the pool (cache compaction).
  void relocateInPool(uint32_t NewOffset) { PoolOffset = NewOffset; }

  /// \name Lazy payload validation (format v2)
  /// @{
  void setPersistedPayload(std::unique_ptr<PersistedPayload> P) {
    Pending = std::move(P);
  }
  PersistedPayload *persistedPayload() const { return Pending.get(); }
  void clearPersistedPayload() { Pending.reset(); }
  /// @}

  std::vector<TraceExit> &exits() { return Exits; }
  const std::vector<TraceExit> &exits() const { return Exits; }

  /// Exit taken when the conditional branch at \p InstIndex is taken.
  /// A branch in the final trace slot shares its instruction index with
  /// the fall-through exit, so the kinds are distinct lookups.
  TraceExit *findBranchExit(uint32_t InstIndex);

  /// The final exit (always present, always last).
  TraceExit &finalExit() {
    assert(!Exits.empty() && "trace without exits");
    return Exits.back();
  }

  /// Traces whose exits link to this trace (for unlinking on removal).
  std::vector<std::pair<TranslatedTrace *, uint32_t>> &incomingLinks() {
    return Incoming;
  }

  uint64_t executionCount() const { return ExecCount; }
  void countExecution() { ++ExecCount; }

  /// Lifetime execution heat carried in from the persistent cache file
  /// (0 for freshly compiled traces); finalize adds the current run's
  /// executions on top, saturating.
  uint32_t persistedHeat() const { return PersistedHeat; }
  void setPersistedHeat(uint32_t Heat) { PersistedHeat = Heat; }

  /// Optimization generation carried in from the persistent cache file
  /// (0 for freshly compiled or unpromoted traces). Promoted bodies
  /// earn a modeled execution discount for their Nop slots, and
  /// finalize re-persists the generation so it survives accumulation.
  uint32_t optGen() const { return OptGen; }
  void setOptGen(uint32_t Gen) { OptGen = Gen; }

  /// Bytes of supporting data structures this trace consumes in the data
  /// pool: trace descriptor, exit records, translation-map node, and
  /// per-instruction bookkeeping (liveness, register bindings). The
  /// paper's Figure 9 observes these outweigh the code itself.
  uint32_t dataBytes() const {
    return 64 + 40 * static_cast<uint32_t>(Exits.size()) + 24 +
           8 * GuestInstCount;
  }

private:
  uint32_t GuestStart;
  uint32_t GuestInstCount;
  uint32_t PoolOffset;
  uint32_t PoolBytes;
  std::vector<TraceExit> Exits;
  bool FromPersistentCache;
  bool Materialized = false;
  std::unique_ptr<PersistedPayload> Pending;
  std::vector<isa::Instruction> Body;
  /// Non-null when the body executes in place from a borrowed mapping.
  const isa::Instruction *BorrowedBody = nullptr;
  std::vector<std::pair<TranslatedTrace *, uint32_t>> Incoming;
  uint64_t ExecCount = 0;
  uint32_t PersistedHeat = 0;
  uint32_t OptGen = 0;
};

/// The code cache: pools, translation map, and link bookkeeping.
class CodeCache {
public:
  CodeCache(uint64_t CodePoolCapacity, uint64_t DataPoolCapacity)
      : CodePoolCapacity(CodePoolCapacity),
        DataPoolCapacity(DataPoolCapacity) {}

  /// \name Translation map
  /// @{
  TranslatedTrace *lookup(uint32_t GuestAddr) const;
  /// @}

  /// Reserves \p NumBytes in the code pool; fails with OutOfMemory when
  /// the pool is full (the engine then flushes). Returns the offset.
  ErrorOr<uint32_t> allocateCode(uint32_t NumBytes);

  /// Writes translated code bytes at \p Offset (within an allocation).
  void writeCode(uint32_t Offset, const std::vector<uint8_t> &Bytes);

  /// Code-pool bytes starting at \p Offset (for materialization).
  const uint8_t *codeAt(uint32_t Offset) const;

  /// Writable code-pool bytes at \p Offset (for in-place rebasing of
  /// position-independent persisted code after its CRC is verified).
  uint8_t *mutableCodeAt(uint32_t Offset);

  /// Registers a freshly compiled or persisted trace. Fails with
  /// OutOfMemory when the data pool is exhausted. A trace for the same
  /// guest address must not already exist.
  ErrorOr<TranslatedTrace *> addTrace(std::unique_ptr<TranslatedTrace> T);

  /// Pre-sizes the translation map and trace list for \p N upcoming
  /// addTrace() calls (bulk install at prime: avoids rehashing on the
  /// run's critical path).
  void reserveTraces(size_t N);

  /// Replaces the code pool with the memory-mapped contents of a
  /// persistent cache; only valid on an empty cache. Subsequent
  /// allocateCode() calls append after the mapped image.
  Status installPersistedPool(std::vector<uint8_t> PoolBytes);

  /// Execute-in-place variant: the pool's first \p Size bytes are a
  /// *borrowed* read-only mapping (an XIP cache file's payload section)
  /// kept alive by \p Keepalive; nothing is copied. Only valid on an
  /// empty cache. Offsets below \p Size resolve into the mapping and
  /// are never writable (shared pages stay clean); allocateCode()
  /// appends owned storage after it. flush() and eviction release the
  /// keepalive — unmap, not free.
  Status installBorrowedPool(const uint8_t *Data, size_t Size,
                             std::shared_ptr<const void> Keepalive);

  /// Size of the borrowed mapping prefix (0 when the pool is fully
  /// owned).
  uint64_t borrowedCodeBytes() const { return BorrowedSize; }

  /// Links \p Exit of \p From to \p To and records the incoming edge.
  void link(TranslatedTrace *From, uint32_t ExitIndex,
            TranslatedTrace *To);

  /// Removes every trace whose guest start lies in
  /// [\p Base, \p Base + \p Size), unlinking all edges in and out.
  /// Pool space is not reclaimed (linear pools, as in Pin).
  /// \returns the number of traces removed.
  uint32_t removeTracesInRange(uint32_t Base, uint32_t Size);

  /// Discards all traces, links, map entries and pool contents.
  void flush();

  /// Granular alternative to flush() (beyond the paper, which always
  /// flushes wholesale; finer-grained code-cache management follows the
  /// Hazelwood line of work the paper cites): evicts the oldest
  /// \p Fraction of resident traces and *compacts* the code pool around
  /// the survivors, reclaiming their bytes. All evicted traces are
  /// unlinked; surviving pool pages are resident afterwards.
  /// \returns the number of traces evicted.
  uint32_t evictOldest(double Fraction);

  /// Monotonic counter bumped by flush() and evictOldest(); callers
  /// holding trace pointers across cache mutations use it as a guard.
  uint64_t modificationGeneration() const {
    return ModificationGeneration;
  }

  /// \name Demand-paging support
  /// Marks the code-pool pages of [Offset, Offset+Bytes) as resident and
  /// returns how many pages were newly touched (persisted pages fault in
  /// on first touch; freshly written pages are already resident). When
  /// \p NewlyTouched is non-null, the newly touched page numbers are
  /// appended to it (shared-residency accounting asks whether another
  /// process already has each page).
  /// @{
  uint32_t touchPages(uint32_t Offset, uint32_t Bytes,
                      std::vector<uint32_t> *NewlyTouched = nullptr);
  /// @}

  /// \name Accounting
  /// @{
  uint64_t codeBytesUsed() const { return BorrowedSize + CodePool.size(); }
  uint64_t dataBytesUsed() const { return DataPoolUsed; }
  uint64_t codePoolCapacity() const { return CodePoolCapacity; }
  uint64_t dataPoolCapacity() const { return DataPoolCapacity; }
  /// @}

  /// All resident traces, in insertion order.
  const std::vector<std::unique_ptr<TranslatedTrace>> &traces() const {
    return Traces;
  }

private:
  uint64_t CodePoolCapacity;
  uint64_t DataPoolCapacity;
  std::vector<uint8_t> CodePool;
  /// Borrowed read-only pool prefix (XIP): pool offsets below
  /// BorrowedSize resolve to Borrowed + Offset, offsets at or above it
  /// to CodePool[Offset - BorrowedSize].
  const uint8_t *Borrowed = nullptr;
  size_t BorrowedSize = 0;
  std::shared_ptr<const void> BorrowedKeepalive;
  uint64_t DataPoolUsed = 0;
  std::vector<std::unique_ptr<TranslatedTrace>> Traces;
  std::unordered_map<uint32_t, TranslatedTrace *> TranslationMap;
  /// One bit per 4 KiB code-pool page: resident or not.
  std::vector<bool> ResidentPages;
  uint64_t ModificationGeneration = 0;

  /// Detaches \p T from the link graph (both directions).
  void unlinkTrace(TranslatedTrace *T);
};

} // namespace dbi
} // namespace pcc

#endif // PCC_DBI_CODECACHE_H
