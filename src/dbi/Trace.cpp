//===- dbi/Trace.cpp ------------------------------------------------------===//

#include "dbi/Trace.h"

#include <cassert>

using namespace pcc;
using namespace pcc::dbi;
using isa::Instruction;
using isa::Opcode;

uint32_t Trace::numBasicBlocks() const {
  uint32_t Blocks = Insts.empty() ? 0 : 1;
  for (size_t I = 0; I + 1 < Insts.size(); ++I)
    if (isa::isConditionalBranch(Insts[I].Op))
      ++Blocks;
  return Blocks;
}

uint32_t Trace::numMemoryAccesses() const {
  uint32_t Count = 0;
  for (const Instruction &Inst : Insts)
    if (isa::isMemoryAccess(Inst.Op))
      ++Count;
  return Count;
}

ErrorOr<Trace> pcc::dbi::selectTrace(const loader::AddressSpace &Space,
                                     uint32_t StartAddr,
                                     uint32_t MaxInsts) {
  assert(MaxInsts > 0 && "trace limit must be positive");
  Trace Result;
  Result.StartAddr = StartAddr;
  // MaxInsts bounds the body exactly; exits are one per conditional
  // branch plus the terminator, so the same bound covers them too.
  Result.Insts.reserve(MaxInsts);
  Result.Exits.reserve(MaxInsts);

  uint32_t Pc = StartAddr;
  for (uint32_t Count = 0; Count != MaxInsts; ++Count) {
    uint8_t Raw[isa::InstructionSize];
    Status FetchStatus = Space.fetchInstructionBytes(Pc, Raw);
    if (!FetchStatus.ok())
      return FetchStatus;
    auto Inst = Instruction::decode(Raw);
    if (!Inst)
      return Inst.status();
    uint32_t Index = Result.numInsts();
    Result.Insts.push_back(*Inst);

    if (isa::isConditionalBranch(Inst->Op)) {
      // Mid-trace exit on the taken path; fall-through continues the
      // trace (unless this is the last slot, handled below).
      Result.Exits.push_back(
          TraceExitInfo{ExitKind::Branch, Index, Inst->Imm});
      Pc += isa::InstructionSize;
      continue;
    }
    if (isa::isTraceTerminator(Inst->Op)) {
      TraceExitInfo Exit;
      Exit.InstIndex = Index;
      switch (Inst->Op) {
      case Opcode::Jmp:
      case Opcode::Call:
        Exit.Kind = ExitKind::Direct;
        Exit.Target = Inst->Imm;
        break;
      case Opcode::Jr:
      case Opcode::Callr:
      case Opcode::Ret:
        Exit.Kind = ExitKind::Indirect;
        break;
      case Opcode::Sys:
        Exit.Kind = ExitKind::Syscall;
        Exit.Target = Pc + isa::InstructionSize;
        break;
      case Opcode::Halt:
        Exit.Kind = ExitKind::Halt;
        break;
      default:
        assert(false && "unexpected terminator");
      }
      Result.Exits.push_back(Exit);
      return Result;
    }
    Pc += isa::InstructionSize;
  }

  // Instruction limit reached without a terminator: fall-through exit.
  Result.Exits.push_back(TraceExitInfo{
      ExitKind::FallThrough, Result.numInsts() - 1, Pc});
  return Result;
}
