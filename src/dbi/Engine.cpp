//===- dbi/Engine.cpp -----------------------------------------------------===//

#include "dbi/Engine.h"

#include "support/Hashing.h"
#include "vm/Exec.h"
#include "vm/Threads.h"

#include <cassert>
#include <type_traits>

using namespace pcc;
using namespace pcc::dbi;
using isa::Instruction;
using isa::Opcode;

uint64_t pcc::dbi::engineVersionHash() {
  // Bump the string when the translation scheme or persistent format
  // changes incompatibly.
  return fnv1a64("pcc-dbi-engine-1.0");
}

Engine::Engine(vm::Machine &M, Tool *ClientTool, EngineOptions Opts)
    : M(M), ClientTool(ClientTool), Opts(Opts),
      Cache(Opts.CodePoolBytes, Opts.DataPoolBytes),
      TheCompiler(M.space(), Cache, this->Opts.Costs, spec(),
                  this->Opts.MaxTraceInsts, this->Opts.OptimizeFlags) {}

ErrorOr<TranslatedTrace *> Engine::lookupOrCompile(uint32_t Pc) {
  if (TranslatedTrace *T = Cache.lookup(Pc))
    return T;
  auto Compiled = TheCompiler.compile(Pc, Stats);
  if (Compiled)
    return Compiled;
  if (Compiled.status().code() != ErrorCode::OutOfMemory)
    return Compiled;
  if (Opts.Eviction == EvictionPolicy::EvictOldestHalf) {
    // Granular reaction: drop the oldest half, compact, retry.
    uint32_t Evicted = Cache.evictOldest(0.5);
    Stats.TracesEvicted += Evicted;
    Stats.EvictionCycles +=
        Evicted * Opts.Costs.EvictionCyclesPerTrace;
    auto Retry = TheCompiler.compile(Pc, Stats);
    if (Retry || Retry.status().code() != ErrorCode::OutOfMemory)
      return Retry;
  }
  // A pool filled up: flush the whole cache (translated code and data
  // structures) and retry once, as Pin does.
  Cache.flush();
  ++Stats.CacheFlushes;
  return TheCompiler.compile(Pc, Stats);
}

void Engine::chargePersistFirstTouch(TranslatedTrace *T) {
  if (!ProbeResidency) {
    uint32_t NewPages = Cache.touchPages(T->poolOffset(), T->poolBytes());
    Stats.PersistCycles += Opts.Costs.PersistTraceMaterializeCycles +
                           NewPages * Opts.Costs.PersistPageTouchCycles;
    return;
  }
  std::vector<uint32_t> NewPages;
  Cache.touchPages(T->poolOffset(), T->poolBytes(), &NewPages);
  Stats.PersistCycles += Opts.Costs.PersistTraceMaterializeCycles;
  for (uint32_t Page : NewPages) {
    if (ProbeResidency(Page)) {
      // Another process already has this page: soft fault, not I/O.
      Stats.PersistCycles += Opts.Costs.SharedPageTouchCycles;
      ++Stats.PersistSharedPageHits;
    } else {
      Stats.PersistCycles += Opts.Costs.PersistPageTouchCycles;
    }
  }
}

Status Engine::ensureMaterialized(TranslatedTrace *T) {
  if (T->isMaterialized())
    return Status::success();
  assert(T->isFromPersistentCache() &&
         "only persisted traces are unmaterialized");
  if (PersistedPayload *P = T->persistedPayload()) {
    if (P->Xip) {
      // Execute-in-place materialization: the pool bytes live in a
      // borrowed read-only mapping. CRC-check them where they lie,
      // bounds-scan the instruction fields in place (the executor
      // indexes the register file unchecked, so a CRC-intact but
      // malicious body must still be rejected), and point the trace's
      // body at the mapping — no decode, no copy. The modeled charges
      // are exactly the materializing path's: per-trace CRC +
      // materialize + first-touch paging, so EngineStats stay
      // bit-identical across the two paths.
      assert(P->RebaseDelta == 0 && "XIP requires an unrelocated load");
      Stats.PersistCycles += Opts.Costs.PersistTraceCrcCycles;
      ++Stats.TracePayloadsValidated;
      const uint8_t *Raw = Cache.codeAt(T->poolOffset());
      if (crc32(Raw, T->poolBytes()) != P->ExpectedCodeCrc)
        return Status::error(ErrorCode::InvalidFormat,
                             "persisted trace payload checksum mismatch");
      const auto *InPlace =
          reinterpret_cast<const Instruction *>(Raw + TracePrologueBytes);
      if (!isa::validInPlace(InPlace, T->guestInstCount()))
        return Status::error(
            ErrorCode::InvalidFormat,
            "persisted trace body fails in-place field validation");
      if (ValidateMaterialize) {
        std::vector<Instruction> Copy(InPlace,
                                      InPlace + T->guestInstCount());
        Status Verdict = runMaterializeCheck(T->guestStart(), Copy);
        if (!Verdict.ok())
          return Verdict;
      }
      T->clearPersistedPayload();
      T->materializeBorrowed(InPlace);
      chargePersistFirstTouch(T);
      ++Stats.TracesReused;
      return Status::success();
    }
    // Deferred per-trace validation (cache format v2): prime() checked
    // only the header, module table and trace index, so the payload CRC
    // runs here, on first execution — over the raw stored bytes, before
    // any position-independent rebase touches them. With an install
    // queue the host-side CRC + decode may already have happened on a
    // worker (over the same stored bytes); the modeled charges below
    // are made here either way, so the cost model cannot observe the
    // worker count.
    std::optional<ReadyTrace> Ready;
    if (InstallQ) {
      auto It = Prevalidated.find(T->guestStart());
      if (It != Prevalidated.end()) {
        Ready = std::move(It->second);
        Prevalidated.erase(It);
      } else {
        // Unclaimed jobs are withdrawn (we validate inline); in-flight
        // jobs are waited for so the work happens exactly once. The
        // chunk-mates that arrive alongside the requested trace are
        // stashed for their own first executions.
        for (ReadyTrace &R : InstallQ->takeFor(T->guestStart())) {
          if (R.GuestStart == T->guestStart())
            Ready = std::move(R);
          else
            Prevalidated.emplace(R.GuestStart, std::move(R));
        }
      }
    }
    Stats.PersistCycles += Opts.Costs.PersistTraceCrcCycles;
    ++Stats.TracePayloadsValidated;
    if (Ready) {
      if (!Ready->CrcOk)
        return Status::error(ErrorCode::InvalidFormat,
                             "persisted trace payload checksum mismatch");
      // The worker rebased the decoded body; the pool copy still holds
      // the raw stored bytes and finalize() harvests code from the
      // pool, so it must be rebased here exactly as the inline path
      // does.
      if (P->RebaseDelta != 0) {
        uint8_t *Image = Cache.mutableCodeAt(T->poolOffset());
        for (uint32_t I = 0; I != T->guestInstCount(); ++I) {
          uint32_t Byte = I / 8;
          if (Byte < P->RelocMask.size() &&
              (P->RelocMask[Byte] >> (I % 8)) & 1)
            rebaseTranslatedImmediate(Image, T->poolBytes(), I,
                                      P->RebaseDelta);
        }
      }
      T->clearPersistedPayload();
      if (!Ready->DecodeError.ok())
        return Ready->DecodeError;
      if (ValidateMaterialize) {
        Status Verdict =
            runMaterializeCheck(T->guestStart(), Ready->Body);
        if (!Verdict.ok())
          return Verdict;
      }
      T->materialize(std::move(Ready->Body));
      chargePersistFirstTouch(T);
      ++Stats.TracesReused;
      return Status::success();
    }
    const uint8_t *Raw = Cache.codeAt(T->poolOffset());
    if (crc32(Raw, T->poolBytes()) != P->ExpectedCodeCrc)
      return Status::error(ErrorCode::InvalidFormat,
                           "persisted trace payload checksum mismatch");
    if (P->RebaseDelta != 0) {
      uint8_t *Image = Cache.mutableCodeAt(T->poolOffset());
      for (uint32_t I = 0; I != T->guestInstCount(); ++I) {
        uint32_t Byte = I / 8;
        if (Byte < P->RelocMask.size() &&
            (P->RelocMask[Byte] >> (I % 8)) & 1)
          rebaseTranslatedImmediate(Image, T->poolBytes(), I,
                                    P->RebaseDelta);
      }
    }
    T->clearPersistedPayload();
  }
  auto Body = isa::decodeAll(
      Cache.codeAt(T->poolOffset() + TracePrologueBytes),
      T->guestInstCount());
  if (!Body)
    return Body.status();
  std::vector<Instruction> Decoded = Body.take();
  if (ValidateMaterialize) {
    // Deep semantic verification: the decoded (rebased) body must be
    // effect-equivalent to the guest instructions it claims to
    // translate. Runs before materialize so a rejected trace follows
    // the same drop-and-retranslate path as a CRC mismatch.
    Status Verdict = runMaterializeCheck(T->guestStart(), Decoded);
    if (!Verdict.ok())
      return Verdict;
  }
  T->materialize(std::move(Decoded));
  chargePersistFirstTouch(T);
  ++Stats.TracesReused;
  return Status::success();
}

Status Engine::runMaterializeCheck(
    uint32_t GuestStart, const std::vector<Instruction> &Body) {
  MaterializeCheckInfo Info;
  Status Verdict = ValidateMaterialize(GuestStart, Body, Info);
  Stats.CertsChecked += Info.CertsChecked;
  Stats.CertChecksFailed += Info.CertChecksFailed;
  Stats.ProofsReplayed += Info.ProofsReplayed;
  if (!Verdict.ok()) {
    ++Stats.VerifyFailures;
    return Verdict;
  }
  if (Info.Verified)
    ++Stats.TracesVerified;
  return Status::success();
}

void Engine::drainInstallQueue() {
  for (ReadyTrace &R : InstallQ->drainReady()) {
    uint32_t Start = R.GuestStart;
    Prevalidated.emplace(Start, std::move(R));
  }
}

void Engine::prevalidatePersistedTraces() {
  // Snapshot the starts first: dropping a corrupt trace mutates the
  // trace list mid-iteration otherwise.
  std::vector<uint32_t> Starts;
  Starts.reserve(Cache.traces().size());
  for (const auto &T : Cache.traces())
    if (T->isFromPersistentCache() && !T->isMaterialized())
      Starts.push_back(T->guestStart());
  for (uint32_t Start : Starts) {
    TranslatedTrace *T = Cache.lookup(Start);
    if (!T || T->isMaterialized())
      continue;
    if (ensureMaterialized(T).ok())
      continue;
    // Same disposition as a first-execution failure: drop just this
    // trace; the dispatcher retranslates it if the run ever needs it.
    Cache.removeTracesInRange(Start, 1);
    ++Stats.TracesDroppedCorrupt;
  }
}

namespace {

/// Size in instructions of the basic block starting at \p StartIndex:
/// through the next conditional branch (inclusive) or the trace end.
uint32_t basicBlockSize(std::span<const Instruction> Body,
                        uint32_t StartIndex) {
  for (uint32_t I = StartIndex; I != Body.size(); ++I)
    if (isa::isConditionalBranch(Body[I].Op))
      return I - StartIndex + 1;
  return static_cast<uint32_t>(Body.size()) - StartIndex;
}

/// A direct exit waiting to be linked once its target trace exists.
struct PendingLink {
  TranslatedTrace *From = nullptr;
  uint32_t ExitIndex = 0;
  /// CodeCache::modificationGeneration() when the exit was recorded;
  /// a flush or eviction in between invalidates the pointer.
  uint64_t CacheGeneration = 0;
};

} // namespace

vm::RunResult Engine::run() {
  assert(!HasRun && "Engine::run is single-shot");
  HasRun = true;

  const CostModel &Costs = Opts.Costs;
  const InstrumentationSpec Spec = spec();
  vm::SyscallEnv Env;
  vm::ThreadScheduler Threads(M.initialCpuState());
  loader::AddressSpace &Space = M.space();
  vm::RunResult Result;

  uint32_t Pc = Threads.current().Cpu.Pc;
  TranslatedTrace *Current = nullptr;
  PendingLink Pending;
  bool Done = false;

  while (!Done) {
    if (Stats.GuestInstsExecuted >= Opts.Limits.MaxInstructions) {
      Result.Error = Status::error(ErrorCode::GuestFault,
                                   "instruction limit exceeded");
      break;
    }

    if (!Current) {
      // Dispatcher boundary: collect payloads the async-prime workers
      // finished since the last exit from the code cache. Host-side
      // bookkeeping only — no modeled charge, no translation-map
      // change, so the cost model is blind to it.
      if (InstallQ)
        drainInstallQueue();
      // Dispatcher: context switch out of the code cache plus
      // translation-map lookup; compile on a miss.
      Stats.DispatchCycles += Costs.DispatchCycles;
      auto Found = lookupOrCompile(Pc);
      if (!Found) {
        Result.Error = Found.status();
        break;
      }
      Current = *Found;
      // Link the exit that brought us here, unless a flush invalidated
      // the source trace in the meantime.
      if (Pending.From && Opts.EnableLinking &&
          Pending.CacheGeneration == Cache.modificationGeneration()) {
        Cache.link(Pending.From, Pending.ExitIndex, Current);
        Stats.LinkCycles += Costs.LinkCycles;
        ++Stats.LinksCreated;
      }
      Pending = PendingLink();
    }

    Status MatStatus = ensureMaterialized(Current);
    if (!MatStatus.ok()) {
      if (Current->isFromPersistentCache() &&
          !Current->isMaterialized()) {
        // Corrupt persisted payload caught at first use (lazy CRC):
        // drop just this trace and retranslate it from guest memory.
        // The run continues; only the damaged translation is lost.
        Pc = Current->guestStart();
        Cache.removeTracesInRange(Pc, 1);
        ++Stats.TracesDroppedCorrupt;
        Current = nullptr;
        Pending = PendingLink();
        continue;
      }
      Result.Error = MatStatus;
      break;
    }
    Current->countExecution();
    ++Stats.TraceExecutions;
    if (Stats.TraceExecutions == 1)
      // Time-to-first-trace: every modeled cycle spent before guest
      // code first ran — key hashing, cache open, remote fetches,
      // first compiles/materializations. Guest execution cycles are
      // still zero here, so totalCycles() is pure startup cost.
      Stats.FirstTraceReadyCycles = Stats.totalCycles();

    const std::span<const Instruction> Body = Current->body();
    const uint32_t TraceStart = Current->guestStart();
    // Promoted (gen >= 1) bodies earn the modeled execution discount for
    // their Nop slots: the optimizer proved the slot's work redundant,
    // so a real backend would not emit it. Gen-0 bodies get no discount
    // even when flag elision produced Nops, keeping unpromoted runs
    // bit-identical to the pre-opt-tier engine.
    const bool Promoted = Current->optGen() > 0;
    TranslatedTrace *Next = nullptr;
    vm::CpuState &Cpu = Threads.current().Cpu;

    // The trace body loop, stamped out twice: instrumented and not.
    // The null-tool baseline must not pay the three Spec branches per
    // guest instruction, so the tool dispatch is decided once per
    // trace and `if constexpr` deletes the checks from the fast copy.
    auto runBody = [&](auto WithToolTag) {
      constexpr bool WithTool = decltype(WithToolTag)::value;
      for (uint32_t Index = 0; Index != Body.size(); ++Index) {
        const Instruction &Inst = Body[Index];
        const uint32_t InstPc =
            TraceStart + Index * isa::InstructionSize;

        if constexpr (WithTool) {
          // Analysis callbacks compiled in by the tool.
          if (Spec.BasicBlocks && Index == 0) {
            ClientTool->onBasicBlock(InstPc, basicBlockSize(Body, 0));
            Stats.ToolCycles += Costs.AnalysisCyclesPerBlockCall;
          }
          if (Spec.Instructions) {
            ClientTool->onInstruction(InstPc);
            Stats.ToolCycles += Costs.AnalysisCyclesPerInstCall;
          }
          if (Spec.MemoryAccesses && isa::isMemoryAccess(Inst.Op)) {
            uint32_t EffectiveAddr = Cpu.Regs[Inst.Rs1] + Inst.Imm;
            ClientTool->onMemoryAccess(InstPc, EffectiveAddr,
                                       Inst.Op == Opcode::St);
            Stats.ToolCycles += Costs.AnalysisCyclesPerMemoryCall;
          }
        }

        auto Step =
            vm::executeInstruction(Inst, InstPc, Cpu, Space, Env);
        if (!Step) {
          Result.Error = Step.status();
          Done = true;
          break;
        }
        ++Stats.GuestInstsExecuted;
        if (Promoted && Inst.Op == Opcode::Nop)
          ++Stats.OptNopsExecuted;

        if (Step->Kind == vm::StepKind::Halted) {
          Done = true;
          break;
        }

        if (Step->Kind == vm::StepKind::Syscall) {
          // Control leaves the code cache for the emulation unit; the
          // syscall exit is never linked. This is also the cooperative
          // thread-switch point — the same point the interpreter
          // switches at, so interleavings match across engines.
          Stats.EmulationCycles += Costs.SyscallEmulationCycles;
          auto Alive = Threads.afterSyscall(Env, Space, Step->NextPc);
          if (!Alive) {
            Result.Error = Alive.status();
            Done = true;
            break;
          }
          if (!*Alive) {
            Done = true; // Every thread exited: program ends, code 0.
            break;
          }
          Pc = Threads.current().Cpu.Pc;
          break;
        }

        if (Step->Kind == vm::StepKind::Sequential) {
          if constexpr (WithTool) {
            if (isa::isConditionalBranch(Inst.Op) && Spec.BasicBlocks &&
                Index + 1 != Body.size()) {
              // Fell through into the next basic block of this trace.
              uint32_t NextBlockPc = InstPc + isa::InstructionSize;
              ClientTool->onBasicBlock(NextBlockPc,
                                       basicBlockSize(Body, Index + 1));
              Stats.ToolCycles += Costs.AnalysisCyclesPerBlockCall;
            }
          }
          if (Index + 1 != Body.size())
            continue;
          // Instruction-limit cutoff: fall-through exit.
          TraceExit *Exit = &Current->finalExit();
          assert(Exit->Kind == ExitKind::FallThrough &&
                 "missing fall-through exit");
          if (Exit->Link) {
            Next = Exit->Link;
            break;
          }
          Pc = Exit->Target;
          Pending = PendingLink{
              Current,
              static_cast<uint32_t>(Exit - Current->exits().data()),
              Cache.modificationGeneration()};
          break;
        }

        assert(Step->Kind == vm::StepKind::Control);
        TraceExit *Exit = isa::isConditionalBranch(Inst.Op)
                              ? Current->findBranchExit(Index)
                              : &Current->finalExit();
        assert(Exit && "control transfer without an exit record");
        if (Exit->Kind == ExitKind::Indirect) {
          // Inline indirect-target lookup; a hit stays in the cache, a
          // miss surfaces through the dispatcher.
          Stats.IndirectCycles += Costs.IndirectLookupCycles;
          Pc = Step->NextPc;
          Next = Cache.lookup(Pc);
          break;
        }
        assert(isLinkableExit(Exit->Kind) && "unexpected exit kind");
        assert(Exit->Target == Step->NextPc && "exit target mismatch");
        if (Exit->Link) {
          Next = Exit->Link;
          break;
        }
        Pc = Exit->Target;
        Pending = PendingLink{
            Current,
            static_cast<uint32_t>(Exit - Current->exits().data()),
            Cache.modificationGeneration()};
        break;
      }
    };
    if (Spec.BasicBlocks || Spec.Instructions || Spec.MemoryAccesses)
      runBody(std::true_type{});
    else
      runBody(std::false_type{});

    Current = Next;
  }

  assert(Stats.OptNopsExecuted <= Stats.GuestInstsExecuted);
  Stats.ExecCycles = Costs.translatedExecCycles(Stats.GuestInstsExecuted -
                                                Stats.OptNopsExecuted);
  if (Opts.IntermixPools)
    Stats.ExecCycles = Stats.ExecCycles * Costs.IntermixExecPenaltyNum /
                       Costs.IntermixExecPenaltyDen;
  Stats.SyscallCount = Env.SyscallCount;

  Result.ExitCode = Env.Exited ? Env.ExitCode : 0;
  Result.Output = std::move(Env.Output);
  Result.WordLog = std::move(Env.WordLog);
  Result.InstructionsExecuted = Stats.GuestInstsExecuted;
  Result.SyscallCount = Stats.SyscallCount;
  Result.Cycles = Stats.totalCycles();
  return Result;
}
