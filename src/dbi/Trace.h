//===- dbi/Trace.h - Trace selection ----------------------------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trace selection per Section 2.1 of the paper: "a linear sequence of
/// instructions fetched from a starting address until a fixed instruction
/// count is reached or an unconditional branch instruction is
/// encountered. Execution always enters a trace via its first
/// instruction; no side-entrances are allowed." The fetched layout is not
/// altered and no optimization is applied.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_DBI_TRACE_H
#define PCC_DBI_TRACE_H

#include "isa/Instruction.h"
#include "loader/AddressSpace.h"
#include "support/Error.h"

#include <cstdint>
#include <vector>

namespace pcc {
namespace dbi {

/// How control leaves a trace at a given exit point.
enum class ExitKind : uint8_t {
  Branch,      ///< Conditional branch taken (mid-trace or final).
  Direct,      ///< Jmp or Call: unconditional, statically known target.
  FallThrough, ///< Instruction-limit cutoff: continue at the next PC.
  Indirect,    ///< Jr / Callr / Ret: target known only at run time.
  Syscall,     ///< Sys: control returns to the VM's emulation unit.
  Halt,        ///< Halt or guest exit.
};

/// True if exits of this kind have a statically known guest target that
/// can be linked to another trace.
inline bool isLinkableExit(ExitKind Kind) {
  return Kind == ExitKind::Branch || Kind == ExitKind::Direct ||
         Kind == ExitKind::FallThrough;
}

/// One exit point of a (selected or translated) trace.
struct TraceExitInfo {
  ExitKind Kind = ExitKind::Halt;
  /// Index of the instruction producing this exit.
  uint32_t InstIndex = 0;
  /// Absolute guest target; 0 for Indirect/Halt (Syscall stores the
  /// fall-through address, where execution resumes after emulation).
  uint32_t Target = 0;
};

/// A selected trace: original guest instructions plus exit metadata.
struct Trace {
  uint32_t StartAddr = 0;
  std::vector<isa::Instruction> Insts;
  std::vector<TraceExitInfo> Exits;

  uint32_t numInsts() const {
    return static_cast<uint32_t>(Insts.size());
  }
  /// Guest bytes covered by the trace.
  uint32_t guestBytes() const {
    return numInsts() * isa::InstructionSize;
  }
  /// Number of basic blocks: the head plus one per conditional branch
  /// fall-through (traces have no side entries).
  uint32_t numBasicBlocks() const;
  /// Number of memory-access instructions.
  uint32_t numMemoryAccesses() const;
};

/// Fetches and decodes a trace starting at \p StartAddr.
/// \p MaxInsts bounds the trace length (the paper's fixed instruction
/// count). Fails on unmapped code or undecodable bytes.
ErrorOr<Trace> selectTrace(const loader::AddressSpace &Space,
                           uint32_t StartAddr, uint32_t MaxInsts);

} // namespace dbi
} // namespace pcc

#endif // PCC_DBI_TRACE_H
