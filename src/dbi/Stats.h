//===- dbi/Stats.h - Engine execution statistics ----------------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cycle and event accounting for one engine run, split exactly the way
/// the paper reports results: VM overhead (translation + dispatch +
/// linking + persistence bookkeeping) vs. translated-code execution vs.
/// emulation. The compile-event timeline feeds Figure 2(a).
///
//===----------------------------------------------------------------------===//

#ifndef PCC_DBI_STATS_H
#define PCC_DBI_STATS_H

#include <cstdint>
#include <string>
#include <vector>

namespace pcc {
namespace dbi {

/// One VM translation request, recorded for the Figure 2(a) timeline.
struct CompileEvent {
  /// Guest instructions executed when the request occurred.
  uint64_t GuestInstsExecuted = 0;
  /// Number of guest instructions in the compiled trace.
  uint32_t TraceInsts = 0;
};

/// Aggregated counters for one engine run.
struct EngineStats {
  /// \name Cycle accounts
  /// @{
  uint64_t CompileCycles = 0;      ///< Trace translation work.
  uint64_t DispatchCycles = 0;     ///< Code cache exits to the VM.
  uint64_t LinkCycles = 0;         ///< Trace link patching.
  uint64_t IndirectCycles = 0;     ///< Inline indirect-target lookups.
  uint64_t ExecCycles = 0;         ///< Translated guest instructions.
  uint64_t ToolCycles = 0;         ///< Analysis-routine execution.
  uint64_t EmulationCycles = 0;    ///< Syscall interception/emulation.
  uint64_t PersistCycles = 0;      ///< Keys, cache open, demand paging,
                                   ///< cache write-back.
  uint64_t EvictionCycles = 0;     ///< Granular cache eviction work.
  /// @}

  /// \name Event counts
  /// @{
  uint64_t GuestInstsExecuted = 0;
  uint64_t SyscallCount = 0;
  uint64_t TracesCompiled = 0;
  uint64_t TracesLoadedFromCache = 0; ///< Persisted traces installed.
  uint64_t TracesReused = 0;          ///< Persisted traces executed.
  uint64_t TraceExecutions = 0;
  uint64_t LinksCreated = 0;
  uint64_t CacheFlushes = 0;
  uint64_t TracesEvicted = 0;
  uint64_t ModulesInvalidated = 0;    ///< Key conflicts at load time.
  uint64_t TracePayloadsValidated = 0; ///< Lazy per-trace CRC checks run
                                       ///< at first materialization.
  uint64_t TracesDroppedCorrupt = 0;   ///< Persisted traces whose payload
                                       ///< CRC failed; retranslated.
  uint64_t PersistSharedPageHits = 0;  ///< First-touched persisted pages
                                       ///< already resident in another
                                       ///< process (soft fault, not I/O).
                                       ///< 0 unless a shared-residency
                                       ///< map is attached; attaching one
                                       ///< affects XIP and materializing
                                       ///< runs identically.
  uint64_t TracesVerified = 0;    ///< Traces proven effect-equivalent at
                                  ///< materialization (full symbolic
                                  ///< proof or certificate check).
  uint64_t VerifyFailures = 0;    ///< Traces the validator rejected.
  uint64_t CertsChecked = 0;      ///< Persisted validation certificates
                                  ///< checked at prime time.
  uint64_t CertChecksFailed = 0;  ///< Of those, rejected (tampered,
                                  ///< stale, or unsound); each falls
                                  ///< back to a full re-proof.
  uint64_t ProofsReplayed = 0;    ///< Promoted bodies re-proved with the
                                  ///< full symbolic validator at prime
                                  ///< (certificate missing/rebased or
                                  ///< rejected).
  uint64_t FlagsElided = 0;       ///< Dead pure defs replaced with Nop
                                  ///< by the --opt-flags pass.
  uint64_t TracesPromoted = 0;    ///< Traces finalize promoted to a
                                  ///< higher optimization generation
                                  ///< (validator-proved).
  uint64_t SuperblocksFormed = 0; ///< Fall-through trace chains merged
                                  ///< into one straight-line body.
  uint64_t OptLoadsEliminated = 0; ///< Redundant loads the promotion
                                   ///< pipeline removed.
  uint64_t OptConstsFolded = 0;    ///< ALU results constant-folded by
                                   ///< the promotion pipeline.
  uint64_t OptValidatorRejections = 0; ///< Promotion attempts the
                                       ///< validator refused; the gen-0
                                       ///< body was kept.
  uint64_t OptNopsExecuted = 0;   ///< Nop slots executed inside
                                  ///< promoted (gen >= 1) bodies; these
                                  ///< earn the modeled execution
                                  ///< discount. Gen-0 elision Nops are
                                  ///< deliberately not counted, so
                                  ///< unpromoted runs cost exactly what
                                  ///< they did before the opt tier.
  uint64_t PersistL1Hits = 0;     ///< Primes satisfied by the local
                                  ///< (L1) tier of a tiered store.
  uint64_t PersistL2Hits = 0;     ///< Primes satisfied by read-through
                                  ///< from the remote (L2) tier.
  uint64_t PersistRemoteFetches = 0; ///< Cache files pulled over the
                                     ///< modeled remote link.
  uint64_t PersistRemoteBytes = 0;   ///< Bytes those fetches moved.
  uint64_t FirstTraceReadyCycles = 0; ///< Modeled cycles from engine
                                      ///< start until the first trace
                                      ///< began executing (key hashing,
                                      ///< cache open, remote fetch and
                                      ///< compile/materialize charges
                                      ///< included); 0 if no trace ever
                                      ///< ran.
  /// @}

  /// \name Fault tolerance
  /// Persistence is an accelerator: store failures are absorbed here,
  /// never surfaced as run failures (the paper's Oracle deployment
  /// cannot afford a worker dying to a full disk).
  /// @{
  uint64_t PersistStoreFailures = 0; ///< Failed store operations
                                     ///< (publish attempts included).
  uint64_t PersistStoreRetries = 0;  ///< Publish attempts retried after
                                     ///< a failure, plus lock-contention
                                     ///< retries the backoff absorbed.
  uint64_t PersistCandidatesSkippedIo = 0; ///< Candidate caches skipped
                                           ///< because of I/O errors (as
                                           ///< opposed to none existing).
  bool PersistDegraded = false; ///< Session tripped its circuit breaker
                                ///< and fell back to in-memory-only.
  std::string PersistDegradeReason; ///< What tripped the breaker.
  /// @}

  /// Translation-request timeline (Figure 2(a)).
  std::vector<CompileEvent> Timeline;

  /// The paper's "VM overhead": everything spent inside the virtual
  /// machine generating and managing code.
  uint64_t vmCycles() const {
    return CompileCycles + DispatchCycles + LinkCycles + PersistCycles +
           EvictionCycles;
  }

  /// The paper's "translated code performance" time.
  uint64_t translatedCycles() const {
    return ExecCycles + ToolCycles + IndirectCycles;
  }

  /// Total run cycles under the engine.
  uint64_t totalCycles() const {
    return vmCycles() + translatedCycles() + EmulationCycles;
  }
};

} // namespace dbi
} // namespace pcc

#endif // PCC_DBI_STATS_H
