//===- replay/Replay.h - Re-drive a recorded run ----------------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The replayer: rebuilds a recorded run's entire input surface — guest
/// modules, input blob, load-base policy and seed, the cache bytes the
/// store served (seeded into a scratch store of the recorded shape),
/// and the literal fault-decision streams — re-drives the engine, and
/// compares the outcome against the log's trailer. A clean replay is
/// bit-identical: full EngineStats, every RunResult field including
/// modeled cycles, the final guest-memory digest, and the quarantine
/// verdicts.
///
/// Differential mode replays the same log twice — persistence enabled
/// (checked against the trailer) and persistence disabled — and then
/// requires the two legs to agree on everything the guest can observe.
/// That is the robustness claim under test: the persistent code cache
/// is an accelerator, invisible to guest semantics, even on runs whose
/// recording includes injected store faults and quarantine decisions.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_REPLAY_REPLAY_H
#define PCC_REPLAY_REPLAY_H

#include "replay/Log.h"
#include "support/ThreadPool.h"

#include <string>
#include <vector>

namespace pcc {
namespace replay {

/// Knobs of one replay leg.
struct ReplayOptions {
  /// Worker pool for the persistence pipeline (null = synchronous).
  /// Any worker count must replay identically — that is the PR 4
  /// invariant the log's decision streams rely on.
  support::ThreadPool *Pool = nullptr;
  /// Drive the persistent session (true) or the bare engine (false).
  /// With persistence off the trailer's stats are not comparable; use
  /// observable equivalence (replayDiff does).
  bool Persistence = true;
  /// Force deep semantic validation regardless of the recorded config
  /// (pcc-dbcheck --replay re-runs quarantined evidence this way).
  bool ForceValidate = false;
};

/// Everything one replay leg produced.
struct ReplayOutcome {
  dbi::EngineStats Stats;
  vm::RunResult Run;
  uint64_t MemoryDigest = 0;
  /// Quarantine decisions the replay made, in event order.
  std::vector<RecordedQuarantine> Quarantines;
  /// Install-queue outcomes of this leg (diagnostics).
  persist::ScheduleOutcomes Schedule;
  /// Modules whose replayed base differed from the recording
  /// ("name: recorded 0x…, replayed 0x…"); any entry is a divergence.
  std::vector<std::string> BaseMismatches;
};

/// Re-drives \p Rec in a scratch store. Owns the process-global
/// FaultInjector for the duration (resets it, arms the recorded
/// decision streams, resets again on exit). Errors are environmental
/// (temp-dir creation, module deserialization) — a *divergence* is not
/// an error; compare with compareToRecording().
ErrorOr<ReplayOutcome> replayRun(const RecordedRun &Rec,
                                 const ReplayOptions &Opts);

/// First divergence between the log's trailer and \p Out as a
/// human-readable string; "" when the replay is bit-identical.
/// Quarantines must match by (ref basename, reason code) in order;
/// details are not byte-compared (they embed host paths).
std::string compareToRecording(const RecordedRun &Rec,
                               const ReplayOutcome &Out);

/// Differential verification: replays \p Rec with persistence on
/// (compared bit-identically against the trailer) and off (compared on
/// guest-observable results and final memory against the on-leg).
/// Returns "" when both legs pass, else the first divergence.
ErrorOr<std::string> replayDiff(const RecordedRun &Rec,
                                support::ThreadPool *Pool = nullptr);

/// Reads and parses a `.pcrr` file. Error codes follow deserializeLog
/// (IoError for unreadable files).
ErrorOr<RecordedRun> readLogFile(const std::string &Path);

/// Writes \p Run to \p Path. Uses plain stdio deliberately: the log
/// writer must never consume fault-injector decisions.
Status writeLogFile(const std::string &Path, const RecordedRun &Run);

} // namespace replay
} // namespace pcc

#endif // PCC_REPLAY_REPLAY_H
