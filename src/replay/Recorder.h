//===- replay/Recorder.h - Record one persistent run ------------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives one persistent engine run while capturing every
/// nondeterministic input into a RecordedRun: the recorder installs
/// itself as the process-global persist::RecordingHooks (cache bytes,
/// consumed tier, quarantine decisions, install-queue outcomes) and as
/// the FaultInjector's decision observer (per-op fault streams), wraps
/// the loader's module-mapping callback (load bases under ASLR), and
/// snapshots the armed fault plan before the run starts.
///
/// Recording is one-at-a-time per process (the hooks are global);
/// recordRun() enforces the attach/detach pairing even on error paths.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_REPLAY_RECORDER_H
#define PCC_REPLAY_RECORDER_H

#include "persist/Session.h"
#include "replay/Log.h"
#include "workloads/Runner.h"

#include <memory>
#include <mutex>

namespace pcc {
namespace replay {

/// Caller-chosen knobs of the run being recorded (everything else is
/// captured automatically).
struct RecordSpec {
  /// Name the log will be persisted under; stamped into quarantine
  /// reasons and used as the attachment file name. "" records
  /// anonymously (no quarantine annotation, no attachment).
  std::string LogName;
  std::string ToolName = "none";
  bool OptimizeFlags = false;
  loader::BasePolicy Policy = loader::BasePolicy::Fixed;
  uint64_t AslrSeed = 0;
  /// The database is a tiered (L1 + remote L2) store; replay rebuilds
  /// the same shape.
  bool Tiered = false;
};

/// Instantiates the canned instrumentation tool \p Name ("none" ->
/// nullptr result with success). InvalidArgument for unknown names.
ErrorOr<std::unique_ptr<dbi::Tool>>
makeNamedTool(const std::string &Name);

/// Runs (\p App, \p Input) under the engine with persistence against
/// \p Db — exactly workloads::runPersistent — while recording. On
/// success the returned RecordedRun holds the inputs and the expected-
/// results trailer; if the run quarantined anything and \p Spec names
/// the log, the serialized log is also attached to the store's
/// quarantine so `pcc-dbcheck --replay` can find it later.
///
/// The caller arms the FaultInjector (or leaves it disarmed) before
/// calling; the armed plan is snapshotted and the injector's state is
/// left exactly as the run left it (totalInjected() stays readable).
ErrorOr<RecordedRun>
recordRun(const loader::ModuleRegistry &Registry,
          std::shared_ptr<const binary::Module> App,
          const std::vector<uint8_t> &Input,
          const persist::CacheDatabase &Db,
          const persist::PersistOptions &PersistOpts,
          const RecordSpec &Spec);

} // namespace replay
} // namespace pcc

#endif // PCC_REPLAY_RECORDER_H
