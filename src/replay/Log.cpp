//===- replay/Log.cpp -----------------------------------------------------===//

#include "replay/Log.h"

#include "dbi/Engine.h"
#include "support/ByteStream.h"
#include "support/Hashing.h"
#include "support/StringUtils.h"

using namespace pcc;
using namespace pcc::replay;

namespace {

constexpr size_t NumFaultOps = static_cast<size_t>(FaultOp::OpCount);

void writeStats(ByteWriter &W, const dbi::EngineStats &S) {
  W.writeU64(S.CompileCycles);
  W.writeU64(S.DispatchCycles);
  W.writeU64(S.LinkCycles);
  W.writeU64(S.IndirectCycles);
  W.writeU64(S.ExecCycles);
  W.writeU64(S.ToolCycles);
  W.writeU64(S.EmulationCycles);
  W.writeU64(S.PersistCycles);
  W.writeU64(S.EvictionCycles);
  W.writeU64(S.GuestInstsExecuted);
  W.writeU64(S.SyscallCount);
  W.writeU64(S.TracesCompiled);
  W.writeU64(S.TracesLoadedFromCache);
  W.writeU64(S.TracesReused);
  W.writeU64(S.TraceExecutions);
  W.writeU64(S.LinksCreated);
  W.writeU64(S.CacheFlushes);
  W.writeU64(S.TracesEvicted);
  W.writeU64(S.ModulesInvalidated);
  W.writeU64(S.TracePayloadsValidated);
  W.writeU64(S.TracesDroppedCorrupt);
  W.writeU64(S.PersistSharedPageHits);
  W.writeU64(S.TracesVerified);
  W.writeU64(S.VerifyFailures);
  W.writeU64(S.CertsChecked);
  W.writeU64(S.CertChecksFailed);
  W.writeU64(S.ProofsReplayed);
  W.writeU64(S.FlagsElided);
  W.writeU64(S.PersistL1Hits);
  W.writeU64(S.PersistL2Hits);
  W.writeU64(S.PersistRemoteFetches);
  W.writeU64(S.PersistRemoteBytes);
  W.writeU64(S.FirstTraceReadyCycles);
  W.writeU64(S.PersistStoreFailures);
  W.writeU64(S.PersistStoreRetries);
  W.writeU64(S.PersistCandidatesSkippedIo);
  W.writeU8(S.PersistDegraded ? 1 : 0);
  W.writeString(S.PersistDegradeReason);
  W.writeU32(static_cast<uint32_t>(S.Timeline.size()));
  for (const dbi::CompileEvent &E : S.Timeline) {
    W.writeU64(E.GuestInstsExecuted);
    W.writeU32(E.TraceInsts);
  }
}

dbi::EngineStats readStats(ByteReader &R) {
  dbi::EngineStats S;
  S.CompileCycles = R.readU64();
  S.DispatchCycles = R.readU64();
  S.LinkCycles = R.readU64();
  S.IndirectCycles = R.readU64();
  S.ExecCycles = R.readU64();
  S.ToolCycles = R.readU64();
  S.EmulationCycles = R.readU64();
  S.PersistCycles = R.readU64();
  S.EvictionCycles = R.readU64();
  S.GuestInstsExecuted = R.readU64();
  S.SyscallCount = R.readU64();
  S.TracesCompiled = R.readU64();
  S.TracesLoadedFromCache = R.readU64();
  S.TracesReused = R.readU64();
  S.TraceExecutions = R.readU64();
  S.LinksCreated = R.readU64();
  S.CacheFlushes = R.readU64();
  S.TracesEvicted = R.readU64();
  S.ModulesInvalidated = R.readU64();
  S.TracePayloadsValidated = R.readU64();
  S.TracesDroppedCorrupt = R.readU64();
  S.PersistSharedPageHits = R.readU64();
  S.TracesVerified = R.readU64();
  S.VerifyFailures = R.readU64();
  S.CertsChecked = R.readU64();
  S.CertChecksFailed = R.readU64();
  S.ProofsReplayed = R.readU64();
  S.FlagsElided = R.readU64();
  S.PersistL1Hits = R.readU64();
  S.PersistL2Hits = R.readU64();
  S.PersistRemoteFetches = R.readU64();
  S.PersistRemoteBytes = R.readU64();
  S.FirstTraceReadyCycles = R.readU64();
  S.PersistStoreFailures = R.readU64();
  S.PersistStoreRetries = R.readU64();
  S.PersistCandidatesSkippedIo = R.readU64();
  S.PersistDegraded = R.readU8() != 0;
  S.PersistDegradeReason = R.readString();
  uint32_t Events = R.readU32();
  // Cap pre-reservation against a hostile length field; push_back
  // fails naturally when the reader runs dry.
  S.Timeline.reserve(std::min<uint32_t>(Events, 1u << 16));
  for (uint32_t I = 0; I != Events && !R.failed(); ++I) {
    dbi::CompileEvent E;
    E.GuestInstsExecuted = R.readU64();
    E.TraceInsts = R.readU32();
    S.Timeline.push_back(E);
  }
  return S;
}

void writeRunResult(ByteWriter &W, const vm::RunResult &Run) {
  W.writeU8(Run.ok() ? 1 : 0);
  W.writeU32(static_cast<uint32_t>(Run.Error.code()));
  W.writeString(Run.Error.message());
  W.writeU32(Run.ExitCode);
  W.writeString(Run.Output);
  W.writeU32(static_cast<uint32_t>(Run.WordLog.size()));
  for (uint32_t Word : Run.WordLog)
    W.writeU32(Word);
  W.writeU64(Run.InstructionsExecuted);
  W.writeU64(Run.SyscallCount);
  W.writeU64(Run.Cycles);
}

vm::RunResult readRunResult(ByteReader &R) {
  vm::RunResult Run;
  bool Ok = R.readU8() != 0;
  auto Code = static_cast<ErrorCode>(R.readU32());
  std::string Message = R.readString();
  if (!Ok)
    Run.Error = Status::error(Code, Message);
  Run.ExitCode = R.readU32();
  Run.Output = R.readString();
  uint32_t Words = R.readU32();
  Run.WordLog.reserve(std::min<uint32_t>(Words, 1u << 20));
  for (uint32_t I = 0; I != Words && !R.failed(); ++I)
    Run.WordLog.push_back(R.readU32());
  Run.InstructionsExecuted = R.readU64();
  Run.SyscallCount = R.readU64();
  Run.Cycles = R.readU64();
  return Run;
}

Status badLog(const std::string &What) {
  return Status::error(ErrorCode::InvalidFormat,
                       "replay log: " + What);
}

} // namespace

std::vector<uint8_t> replay::serializeLog(const RecordedRun &Run) {
  ByteWriter Body;
  // Config.
  Body.writeString(Run.Config.ToolName);
  Body.writeU8(Run.Config.OptimizeFlags ? 1 : 0);
  Body.writeU8(Run.Config.InterApplication ? 1 : 0);
  Body.writeU8(Run.Config.PositionIndependent ? 1 : 0);
  Body.writeU8(Run.Config.ExecuteInPlace ? 1 : 0);
  Body.writeU8(Run.Config.WriteBack ? 1 : 0);
  Body.writeU8(Run.Config.ValidateSemantic ? 1 : 0);
  Body.writeU8(Run.Config.Tiered ? 1 : 0);
  Body.writeU8(Run.Config.BasePolicy);
  Body.writeU64(Run.Config.AslrSeed);
  Body.writeString(Run.Config.FaultPlan);
  // Guest program and input.
  Body.writeU32(static_cast<uint32_t>(Run.Modules.size()));
  for (const std::vector<uint8_t> &Mod : Run.Modules)
    Body.writeBlob(Mod);
  Body.writeBlob(Run.Input);
  Body.writeU32(static_cast<uint32_t>(Run.LoadBases.size()));
  for (const auto &[Name, Base] : Run.LoadBases) {
    Body.writeString(Name);
    Body.writeU32(Base);
  }
  // Observed cache state.
  Body.writeU32(static_cast<uint32_t>(Run.Caches.size()));
  for (const RecordedCache &C : Run.Caches) {
    Body.writeString(C.RefName);
    Body.writeBlob(C.Bytes);
    Body.writeU8(C.Consumed ? 1 : 0);
    Body.writeU8(C.Tier);
    Body.writeU64(C.FetchBytes);
    Body.writeU64(C.FetchCycles);
  }
  // Fault decision streams.
  for (size_t Op = 0; Op != NumFaultOps; ++Op)
    Body.writeBlob(Run.FaultDecisions[Op]);
  // Quarantines.
  Body.writeU32(static_cast<uint32_t>(Run.Quarantines.size()));
  for (const RecordedQuarantine &Q : Run.Quarantines) {
    Body.writeString(Q.RefName);
    Body.writeU8(Q.Code);
    Body.writeString(Q.Detail);
  }
  // Schedule diagnostics.
  Body.writeU64(Run.Schedule.ChunksPublished);
  Body.writeU64(Run.Schedule.ChunksClaimed);
  Body.writeU64(Run.Schedule.ChunksWithdrawn);
  Body.writeU64(Run.Schedule.ChunksInFlightSkipped);
  // Trailer.
  writeStats(Body, Run.Stats);
  writeRunResult(Body, Run.Run);
  Body.writeU64(Run.MemoryDigest);
  Body.writeString(Run.LogName);

  ByteWriter Out;
  Out.reserve(Body.size() + 24);
  Out.writeU32(LogMagic);
  Out.writeU32(LogVersion);
  Out.writeU64(dbi::engineVersionHash());
  Out.writeU32(static_cast<uint32_t>(Body.size()));
  Out.writeBytes(Body.bytes().data(), Body.size());
  Out.writeU32(crc32(Body.bytes().data(), Body.size()));
  return Out.take();
}

ErrorOr<RecordedRun> replay::deserializeLog(
    const std::vector<uint8_t> &Bytes) {
  ByteReader Header(Bytes);
  if (Header.readU32() != LogMagic || Header.failed())
    return badLog("bad magic (not a .pcrr file)");
  uint32_t Version = Header.readU32();
  uint64_t EngineHash = Header.readU64();
  uint32_t BodySize = Header.readU32();
  if (Header.failed() || BodySize > Header.remaining())
    return badLog("truncated header");
  if (Version != LogVersion)
    return Status::error(
        ErrorCode::VersionMismatch,
        formatString("replay log: version %u, this binary reads %u",
                     Version, LogVersion));
  const uint8_t *BodyData = Bytes.data() + Header.offset();
  ByteReader Body(BodyData, BodySize);
  ByteReader Trailer(BodyData + BodySize,
                     Bytes.size() - Header.offset() - BodySize);
  if (Trailer.readU32() != crc32(BodyData, BodySize) || Trailer.failed())
    return badLog("body CRC mismatch (truncated or corrupted)");
  if (EngineHash != dbi::engineVersionHash())
    return Status::error(
        ErrorCode::VersionMismatch,
        "replay log: recorded under a different engine version");

  RecordedRun Run;
  Run.Config.ToolName = Body.readString();
  Run.Config.OptimizeFlags = Body.readU8() != 0;
  Run.Config.InterApplication = Body.readU8() != 0;
  Run.Config.PositionIndependent = Body.readU8() != 0;
  Run.Config.ExecuteInPlace = Body.readU8() != 0;
  Run.Config.WriteBack = Body.readU8() != 0;
  Run.Config.ValidateSemantic = Body.readU8() != 0;
  Run.Config.Tiered = Body.readU8() != 0;
  Run.Config.BasePolicy = Body.readU8();
  Run.Config.AslrSeed = Body.readU64();
  Run.Config.FaultPlan = Body.readString();
  uint32_t NumModules = Body.readU32();
  for (uint32_t I = 0; I != NumModules && !Body.failed(); ++I)
    Run.Modules.push_back(Body.readBlob());
  Run.Input = Body.readBlob();
  uint32_t NumBases = Body.readU32();
  for (uint32_t I = 0; I != NumBases && !Body.failed(); ++I) {
    std::string Name = Body.readString();
    uint32_t Base = Body.readU32();
    Run.LoadBases.emplace_back(std::move(Name), Base);
  }
  uint32_t NumCaches = Body.readU32();
  for (uint32_t I = 0; I != NumCaches && !Body.failed(); ++I) {
    RecordedCache C;
    C.RefName = Body.readString();
    C.Bytes = Body.readBlob();
    C.Consumed = Body.readU8() != 0;
    C.Tier = Body.readU8();
    C.FetchBytes = Body.readU64();
    C.FetchCycles = Body.readU64();
    Run.Caches.push_back(std::move(C));
  }
  for (size_t Op = 0; Op != NumFaultOps; ++Op)
    Run.FaultDecisions[Op] = Body.readBlob();
  uint32_t NumQuarantines = Body.readU32();
  for (uint32_t I = 0; I != NumQuarantines && !Body.failed(); ++I) {
    RecordedQuarantine Q;
    Q.RefName = Body.readString();
    Q.Code = Body.readU8();
    Q.Detail = Body.readString();
    Run.Quarantines.push_back(std::move(Q));
  }
  Run.Schedule.ChunksPublished = Body.readU64();
  Run.Schedule.ChunksClaimed = Body.readU64();
  Run.Schedule.ChunksWithdrawn = Body.readU64();
  Run.Schedule.ChunksInFlightSkipped = Body.readU64();
  Run.Stats = readStats(Body);
  Run.Run = readRunResult(Body);
  Run.MemoryDigest = Body.readU64();
  Run.LogName = Body.readString();
  if (Body.failed())
    return badLog("truncated body");
  if (Run.Modules.empty())
    return badLog("no application module recorded");
  return Run;
}

std::string replay::diffStats(const dbi::EngineStats &A,
                              const dbi::EngineStats &B) {
  auto Diff = [](const char *Name, uint64_t X, uint64_t Y) {
    return formatString("%s: recorded %llu, replayed %llu", Name,
                        (unsigned long long)X, (unsigned long long)Y);
  };
#define PCC_CHECK_FIELD(F)                                             \
  do {                                                                 \
    if (A.F != B.F)                                                    \
      return Diff(#F, A.F, B.F);                                       \
  } while (0)
  PCC_CHECK_FIELD(CompileCycles);
  PCC_CHECK_FIELD(DispatchCycles);
  PCC_CHECK_FIELD(LinkCycles);
  PCC_CHECK_FIELD(IndirectCycles);
  PCC_CHECK_FIELD(ExecCycles);
  PCC_CHECK_FIELD(ToolCycles);
  PCC_CHECK_FIELD(EmulationCycles);
  PCC_CHECK_FIELD(PersistCycles);
  PCC_CHECK_FIELD(EvictionCycles);
  PCC_CHECK_FIELD(GuestInstsExecuted);
  PCC_CHECK_FIELD(SyscallCount);
  PCC_CHECK_FIELD(TracesCompiled);
  PCC_CHECK_FIELD(TracesLoadedFromCache);
  PCC_CHECK_FIELD(TracesReused);
  PCC_CHECK_FIELD(TraceExecutions);
  PCC_CHECK_FIELD(LinksCreated);
  PCC_CHECK_FIELD(CacheFlushes);
  PCC_CHECK_FIELD(TracesEvicted);
  PCC_CHECK_FIELD(ModulesInvalidated);
  PCC_CHECK_FIELD(TracePayloadsValidated);
  PCC_CHECK_FIELD(TracesDroppedCorrupt);
  PCC_CHECK_FIELD(PersistSharedPageHits);
  PCC_CHECK_FIELD(TracesVerified);
  PCC_CHECK_FIELD(VerifyFailures);
  PCC_CHECK_FIELD(CertsChecked);
  PCC_CHECK_FIELD(CertChecksFailed);
  PCC_CHECK_FIELD(ProofsReplayed);
  PCC_CHECK_FIELD(FlagsElided);
  PCC_CHECK_FIELD(PersistL1Hits);
  PCC_CHECK_FIELD(PersistL2Hits);
  PCC_CHECK_FIELD(PersistRemoteFetches);
  PCC_CHECK_FIELD(PersistRemoteBytes);
  PCC_CHECK_FIELD(FirstTraceReadyCycles);
  PCC_CHECK_FIELD(PersistStoreFailures);
  PCC_CHECK_FIELD(PersistStoreRetries);
  PCC_CHECK_FIELD(PersistCandidatesSkippedIo);
#undef PCC_CHECK_FIELD
  if (A.PersistDegraded != B.PersistDegraded)
    return formatString("PersistDegraded: recorded %d, replayed %d",
                        A.PersistDegraded ? 1 : 0,
                        B.PersistDegraded ? 1 : 0);
  // The degrade reason embeds host paths; only its presence is part of
  // the deterministic surface.
  if (A.PersistDegradeReason.empty() != B.PersistDegradeReason.empty())
    return "PersistDegradeReason: presence differs";
  if (A.Timeline.size() != B.Timeline.size())
    return Diff("Timeline.size", A.Timeline.size(), B.Timeline.size());
  for (size_t I = 0; I != A.Timeline.size(); ++I) {
    if (A.Timeline[I].GuestInstsExecuted !=
        B.Timeline[I].GuestInstsExecuted ||
        A.Timeline[I].TraceInsts != B.Timeline[I].TraceInsts)
      return formatString("Timeline[%zu] differs", I);
  }
  return "";
}

std::string replay::diffRunResult(const vm::RunResult &A,
                                  const vm::RunResult &B) {
  if (A.ok() != B.ok())
    return formatString("run outcome: recorded %s, replayed %s",
                        A.ok() ? "success" : "failure",
                        B.ok() ? "success" : "failure");
  if (!A.ok() && A.Error.code() != B.Error.code())
    return "run error code differs";
  if (A.ExitCode != B.ExitCode)
    return formatString("ExitCode: recorded %u, replayed %u",
                        A.ExitCode, B.ExitCode);
  if (A.Output != B.Output)
    return "guest Output differs";
  if (A.WordLog != B.WordLog)
    return "guest WordLog differs";
  if (A.InstructionsExecuted != B.InstructionsExecuted)
    return formatString(
        "InstructionsExecuted: recorded %llu, replayed %llu",
        (unsigned long long)A.InstructionsExecuted,
        (unsigned long long)B.InstructionsExecuted);
  if (A.SyscallCount != B.SyscallCount)
    return "SyscallCount differs";
  if (A.Cycles != B.Cycles)
    return formatString("Cycles: recorded %llu, replayed %llu",
                        (unsigned long long)A.Cycles,
                        (unsigned long long)B.Cycles);
  return "";
}
