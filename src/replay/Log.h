//===- replay/Log.h - Record/replay event-log format ------------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `.pcrr` log: a compact, versioned, CRC-protected capture of one
/// run's *nondeterministic inputs* plus a trailer of its expected
/// results. rr-style, the log records only what the environment chose —
/// the guest program and input, library load bases, the cache bytes the
/// store served, the armed fault plan and every fired fault decision —
/// and the replayer re-derives everything else by re-executing. The
/// trailer (full EngineStats, RunResult, final memory digest) is what
/// replay asserts bit-identical.
///
/// Deliberately *not* recorded (see DESIGN.md "Record & replay"):
/// host wall-clock, thread interleavings (the PR 4 invariant makes
/// engine results independent of them; the install queue's outcomes are
/// kept as diagnostics only), host paths inside degrade/status messages
/// (compared by presence, not bytes), and the written-back cache (an
/// output, not an input).
///
/// Layout: magic "PCRR" | u32 version | u64 engine-version hash |
/// u32 body length | body | u32 CRC-32 of body. A magic or CRC failure
/// reads as InvalidFormat; a version or engine-hash mismatch as
/// VersionMismatch — tools map both to their "unreadable log" exit.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_REPLAY_LOG_H
#define PCC_REPLAY_LOG_H

#include "dbi/Stats.h"
#include "persist/RecordingHooks.h"
#include "support/Error.h"
#include "support/FaultInjector.h"
#include "vm/Interpreter.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pcc {
namespace replay {

/// "PCRR" in little-endian byte order.
inline constexpr uint32_t LogMagic = 0x52524350;
/// Bump on any layout change to the body or trailer.
/// v2: EngineStats gained the certificate counters (CertsChecked,
/// CertChecksFailed, ProofsReplayed).
inline constexpr uint32_t LogVersion = 2;

/// The run configuration knobs that affect engine-visible results.
struct RecordedConfig {
  std::string ToolName = "none"; ///< none|bbcount|memtrace|icount.
  bool OptimizeFlags = false;
  bool InterApplication = false;
  bool PositionIndependent = false;
  bool ExecuteInPlace = false;
  bool WriteBack = true;
  bool ValidateSemantic = false;
  bool Tiered = false;  ///< Store was L1 + remote L2.
  uint8_t BasePolicy = 0; ///< loader::BasePolicy.
  uint64_t AslrSeed = 0;
  /// FaultInjector::planString() at record start: the armed rules with
  /// their consumed state, so replay re-arms the exact generators.
  std::string FaultPlan;
};

/// One cache file the run observed through the store, captured raw
/// (before parsing — corrupt caches are inputs too).
struct RecordedCache {
  std::string RefName;             ///< Basename ("<hex16>.pcc").
  std::vector<uint8_t> Bytes;      ///< Raw contents as served.
  bool Consumed = false;           ///< The prime committed to this one.
  uint8_t Tier = 0;                ///< persist::CacheTier at consume.
  uint64_t FetchBytes = 0;         ///< Modeled remote-fetch charges
  uint64_t FetchCycles = 0;        ///< (diagnostic cross-check).
};

/// One quarantine decision the run made.
struct RecordedQuarantine {
  std::string RefName;  ///< Basename of the quarantined cache.
  uint8_t Code = 0;     ///< persist::QuarantineReasonCode.
  std::string Detail;   ///< Human detail (not byte-compared at replay).
};

/// Everything one recorded run needs to be replayed and checked.
struct RecordedRun {
  RecordedConfig Config;
  /// Serialized guest modules: [0] is the application, the rest the
  /// registry's libraries sorted by name.
  std::vector<std::vector<uint8_t>> Modules;
  std::vector<uint8_t> Input;
  /// Module name -> base address as the loader chose them (replay
  /// verifies ASLR reproduced the same layout).
  std::vector<std::pair<std::string, uint32_t>> LoadBases;
  /// Caches observed, in first-observation order.
  std::vector<RecordedCache> Caches;
  /// Per-op fault decision streams, in call order (index =
  /// support::FaultOp). Nonzero byte = that call failed.
  std::vector<uint8_t>
      FaultDecisions[static_cast<size_t>(FaultOp::OpCount)];
  std::vector<RecordedQuarantine> Quarantines;
  /// Install-queue scheduling outcomes (diagnostics; never asserted).
  persist::ScheduleOutcomes Schedule;

  /// \name Trailer: the expected results replay must reproduce.
  /// @{
  dbi::EngineStats Stats;
  vm::RunResult Run;
  uint64_t MemoryDigest = 0; ///< AddressSpace::contentHash() after run.
  /// @}

  /// Name this log is persisted under ("" for anonymous recordings);
  /// quarantine reasons embed it.
  std::string LogName;
};

/// Serializes \p Run into a `.pcrr` image.
std::vector<uint8_t> serializeLog(const RecordedRun &Run);

/// Parses a `.pcrr` image. InvalidFormat on bad magic/CRC/structure;
/// VersionMismatch when the log version or the recording engine's
/// version hash differs from this binary.
ErrorOr<RecordedRun> deserializeLog(const std::vector<uint8_t> &Bytes);

/// First difference between recorded and replayed stats as a
/// human-readable "field: recorded X, replayed Y" string; "" when
/// bit-identical. PersistDegradeReason is compared by presence only
/// (the message embeds host paths).
std::string diffStats(const dbi::EngineStats &Recorded,
                      const dbi::EngineStats &Replayed);

/// Same contract for the guest-visible run result (all fields,
/// including modeled cycles).
std::string diffRunResult(const vm::RunResult &Recorded,
                          const vm::RunResult &Replayed);

} // namespace replay
} // namespace pcc

#endif // PCC_REPLAY_LOG_H
