//===- replay/Recorder.cpp ------------------------------------------------===//

#include "replay/Recorder.h"

#include "support/FaultInjector.h"

#include <algorithm>

using namespace pcc;
using namespace pcc::replay;

namespace {

std::string baseNameOf(const std::string &Ref) {
  size_t Slash = Ref.rfind('/');
  return Slash == std::string::npos ? Ref : Ref.substr(Slash + 1);
}

/// The RecordingHooks implementation: accumulates observed state under
/// a mutex (callbacks can arrive from pool workers during a background
/// publish).
class Recorder final : public persist::RecordingHooks {
public:
  explicit Recorder(std::string LogName) : LogName(std::move(LogName)) {}

  void onCacheObserved(const std::string &Ref,
                       const std::vector<uint8_t> &Bytes) override {
    std::lock_guard<std::mutex> Guard(Mutex);
    std::string Name = baseNameOf(Ref);
    // First observation wins: that is the pre-run state of the slot
    // (a later open may see bytes this very run wrote back).
    for (const RecordedCache &C : Caches)
      if (C.RefName == Name)
        return;
    RecordedCache C;
    C.RefName = std::move(Name);
    C.Bytes = Bytes;
    Caches.push_back(std::move(C));
  }

  void onCacheConsumed(const std::string &Ref, persist::CacheTier Tier,
                       uint64_t FetchBytes,
                       uint64_t FetchCycles) override {
    std::lock_guard<std::mutex> Guard(Mutex);
    std::string Name = baseNameOf(Ref);
    for (RecordedCache &C : Caches) {
      if (C.RefName != Name)
        continue;
      C.Consumed = true;
      C.Tier = static_cast<uint8_t>(Tier);
      C.FetchBytes = FetchBytes;
      C.FetchCycles = FetchCycles;
      return;
    }
  }

  void onQuarantine(const std::string &Ref,
                    persist::QuarantineReasonCode Code,
                    const std::string &Detail) override {
    std::lock_guard<std::mutex> Guard(Mutex);
    RecordedQuarantine Q;
    Q.RefName = baseNameOf(Ref);
    Q.Code = static_cast<uint8_t>(Code);
    Q.Detail = Detail;
    Quarantines.push_back(std::move(Q));
  }

  void onScheduleOutcomes(
      const persist::ScheduleOutcomes &Outcomes) override {
    std::lock_guard<std::mutex> Guard(Mutex);
    Schedule = Outcomes;
  }

  std::string logName() const override { return LogName; }

  void noteFaultDecision(FaultOp Op, bool Failed) {
    // Serialized by the injector's own mutex; no further locking.
    Decisions[static_cast<size_t>(Op)].push_back(Failed ? 1 : 0);
  }

  void moveInto(RecordedRun &Run) {
    std::lock_guard<std::mutex> Guard(Mutex);
    Run.Caches = std::move(Caches);
    Run.Quarantines = std::move(Quarantines);
    Run.Schedule = Schedule;
    for (size_t Op = 0;
         Op != static_cast<size_t>(FaultOp::OpCount); ++Op)
      Run.FaultDecisions[Op] = std::move(Decisions[Op]);
  }

private:
  std::string LogName;
  std::mutex Mutex;
  std::vector<RecordedCache> Caches;
  std::vector<RecordedQuarantine> Quarantines;
  persist::ScheduleOutcomes Schedule;
  std::vector<uint8_t>
      Decisions[static_cast<size_t>(FaultOp::OpCount)];
};

/// Detaches the global hooks and the injector observer on every exit
/// path.
struct TapGuard {
  ~TapGuard() {
    persist::setRecordingHooks(nullptr);
    FaultInjector::instance().setDecisionObserver(nullptr);
  }
};

} // namespace

ErrorOr<std::unique_ptr<dbi::Tool>>
replay::makeNamedTool(const std::string &Name) {
  std::unique_ptr<dbi::Tool> Tool;
  if (Name == "bbcount")
    Tool = std::make_unique<dbi::BasicBlockCounterTool>();
  else if (Name == "memtrace")
    Tool = std::make_unique<dbi::MemRefTraceTool>();
  else if (Name == "icount")
    Tool = std::make_unique<dbi::InstructionCounterTool>();
  else if (Name != "none")
    return Status::error(ErrorCode::InvalidArgument,
                         "unknown tool: " + Name);
  return Tool;
}

ErrorOr<RecordedRun>
replay::recordRun(const loader::ModuleRegistry &Registry,
                  std::shared_ptr<const binary::Module> App,
                  const std::vector<uint8_t> &Input,
                  const persist::CacheDatabase &Db,
                  const persist::PersistOptions &PersistOpts,
                  const RecordSpec &Spec) {
  RecordedRun Run;
  Run.LogName = Spec.LogName;
  Run.Config.ToolName = Spec.ToolName;
  Run.Config.OptimizeFlags = Spec.OptimizeFlags;
  Run.Config.InterApplication = PersistOpts.InterApplication;
  Run.Config.PositionIndependent = PersistOpts.PositionIndependent;
  Run.Config.ExecuteInPlace = PersistOpts.ExecuteInPlace;
  Run.Config.WriteBack = PersistOpts.WriteBack;
  Run.Config.ValidateSemantic = PersistOpts.ValidateSemantic;
  Run.Config.Tiered = Spec.Tiered;
  Run.Config.BasePolicy = static_cast<uint8_t>(Spec.Policy);
  Run.Config.AslrSeed = Spec.AslrSeed;
  // Snapshot of the armed rules *with their consumed state*: replay
  // re-arms the exact same generators, or (preferably) the literal
  // decision streams recorded below.
  Run.Config.FaultPlan = FaultInjector::instance().planString();

  // The guest program and its library universe, app first, then the
  // registry sorted by name — a deterministic serialization order.
  Run.Modules.push_back(App->serialize());
  for (const auto &Mod : Registry.all())
    Run.Modules.push_back(Mod->serialize());
  Run.Input = Input;

  auto Tool = makeNamedTool(Spec.ToolName);
  if (!Tool)
    return Tool.status();

  Recorder Rec(Spec.LogName);
  TapGuard Guard;
  FaultInjector::instance().setDecisionObserver(
      [&Rec](FaultOp Op, bool Failed) {
        Rec.noteFaultDecision(Op, Failed);
      });
  persist::setRecordingHooks(&Rec);

  auto M = vm::Machine::create(
      App, Registry, Spec.Policy, Spec.AslrSeed,
      [&Run](const loader::LoadedModule &Mod) {
        Run.LoadBases.emplace_back(Mod.Image->name(), Mod.Base);
      });
  if (!M)
    return M.status();
  Status S = M->installInput(Input);
  if (!S.ok())
    return S;

  dbi::EngineOptions EngineOpts;
  EngineOpts.OptimizeFlags = Spec.OptimizeFlags;
  auto Result = persist::runWithPersistence(*M, Tool->get(), EngineOpts,
                                            Db, PersistOpts);
  if (!Result)
    return Result.status();

  // Trailer: what the replayer must reproduce bit-identically.
  Run.Stats = Result->Stats;
  Run.Run = Result->Run;
  Run.MemoryDigest = M->space().contentHash();
  Rec.moveInto(Run);

  // Detach before touching the store again: the attachment write must
  // not record itself.
  persist::setRecordingHooks(nullptr);
  FaultInjector::instance().setDecisionObserver(nullptr);

  // A quarantining run leaves its log next to the evidence, so
  // `pcc-dbcheck --replay <name>` can re-drive the offending run.
  if (!Run.Quarantines.empty() && !Spec.LogName.empty())
    (void)Db.backend()->attachToQuarantine(Spec.LogName,
                                           serializeLog(Run));
  return Run;
}
