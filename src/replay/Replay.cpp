//===- replay/Replay.cpp --------------------------------------------------===//

#include "replay/Replay.h"

#include "dbi/Engine.h"
#include "persist/DirectoryStore.h"
#include "persist/TieredStore.h"
#include "replay/Recorder.h"
#include "support/FaultInjector.h"
#include "support/FileSystem.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace pcc;
using namespace pcc::replay;

namespace {

/// Raw stdio file I/O: the replay layer must never route its own reads
/// and writes through pcc::readFile/writeFileAtomic, which would
/// consume fault-injector decisions meant for the run under test.
bool readRaw(const std::string &Path, std::vector<uint8_t> &Out) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return false;
  Out.clear();
  uint8_t Buffer[1 << 16];
  size_t Got = 0;
  while ((Got = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Out.insert(Out.end(), Buffer, Buffer + Got);
  bool Ok = std::ferror(File) == 0;
  std::fclose(File);
  return Ok;
}

bool writeRaw(const std::string &Path,
              const std::vector<uint8_t> &Bytes) {
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return false;
  size_t Wrote = std::fwrite(Bytes.data(), 1, Bytes.size(), File);
  bool Ok = Wrote == Bytes.size() && std::fflush(File) == 0;
  return std::fclose(File) == 0 && Ok;
}

/// Deletes the scratch tree and resets the injector on every exit path.
struct ReplayScope {
  std::string ScratchDir;
  ~ReplayScope() {
    FaultInjector::instance().reset();
    persist::setRecordingHooks(nullptr);
    if (!ScratchDir.empty())
      (void)removeRecursively(ScratchDir);
  }
};

/// Collects the replay leg's quarantine and schedule events. logName()
/// is empty so quarantine reasons written during replay carry no
/// annotation of their own.
class ReplayCollector final : public persist::RecordingHooks {
public:
  void onCacheObserved(const std::string &,
                       const std::vector<uint8_t> &) override {}
  void onCacheConsumed(const std::string &, persist::CacheTier,
                       uint64_t, uint64_t) override {}
  void onQuarantine(const std::string &Ref,
                    persist::QuarantineReasonCode Code,
                    const std::string &Detail) override {
    std::lock_guard<std::mutex> Guard(Mutex);
    RecordedQuarantine Q;
    size_t Slash = Ref.rfind('/');
    Q.RefName = Slash == std::string::npos ? Ref : Ref.substr(Slash + 1);
    Q.Code = static_cast<uint8_t>(Code);
    Q.Detail = Detail;
    Quarantines.push_back(std::move(Q));
  }
  void onScheduleOutcomes(
      const persist::ScheduleOutcomes &Outcomes) override {
    std::lock_guard<std::mutex> Guard(Mutex);
    Schedule = Outcomes;
  }
  std::string logName() const override { return ""; }

  void moveInto(ReplayOutcome &Out) {
    std::lock_guard<std::mutex> Guard(Mutex);
    Out.Quarantines = std::move(Quarantines);
    Out.Schedule = Schedule;
  }

private:
  std::mutex Mutex;
  std::vector<RecordedQuarantine> Quarantines;
  persist::ScheduleOutcomes Schedule;
};

} // namespace

ErrorOr<ReplayOutcome> replay::replayRun(const RecordedRun &Rec,
                                         const ReplayOptions &Opts) {
  // Rebuild the module universe: [0] is the app, the rest the registry.
  auto App = binary::Module::deserialize(Rec.Modules[0]);
  if (!App)
    return App.status();
  auto AppPtr = std::make_shared<const binary::Module>(App.take());
  loader::ModuleRegistry Registry;
  for (size_t I = 1; I != Rec.Modules.size(); ++I) {
    auto Mod = binary::Module::deserialize(Rec.Modules[I]);
    if (!Mod)
      return Mod.status();
    Registry.add(std::make_shared<const binary::Module>(Mod.take()));
  }

  // Scratch store of the recorded shape, seeded with the exact bytes
  // the recorded run observed. Seeding happens before the injector is
  // armed, so it consumes no fault decisions.
  auto Scratch = createUniqueTempDir("pcc-replay");
  if (!Scratch)
    return Scratch.status();
  ReplayScope Scope;
  Scope.ScratchDir = *Scratch;
  std::string L1Dir = *Scratch + "/l1";
  std::string L2Dir = *Scratch + "/l2";
  Status S = createDirectories(L1Dir);
  if (S.ok() && Rec.Config.Tiered)
    S = createDirectories(L2Dir);
  if (!S.ok())
    return S;
  for (const RecordedCache &C : Rec.Caches) {
    bool ToL2 = Rec.Config.Tiered && C.Consumed &&
                static_cast<persist::CacheTier>(C.Tier) ==
                    persist::CacheTier::L2;
    std::string Path = (ToL2 ? L2Dir : L1Dir) + "/" + C.RefName;
    if (!writeRaw(Path, C.Bytes))
      return Status::error(ErrorCode::IoError,
                           "cannot seed scratch cache " + Path);
  }

  // Re-arm the injector with the literal recorded decision streams:
  // call K of op X fails exactly when it failed at record time, and
  // each stream disarms at the recorded rule's disarm point.
  FaultInjector &Injector = FaultInjector::instance();
  Injector.reset();
  for (size_t Op = 0; Op != static_cast<size_t>(FaultOp::OpCount); ++Op)
    if (!Rec.FaultDecisions[Op].empty())
      Injector.armReplay(static_cast<FaultOp>(Op),
                         Rec.FaultDecisions[Op]);

  ReplayOutcome Out;
  auto M = vm::Machine::create(
      AppPtr, Registry,
      static_cast<loader::BasePolicy>(Rec.Config.BasePolicy),
      Rec.Config.AslrSeed,
      [&Rec, &Out](const loader::LoadedModule &Mod) {
        for (const auto &[Name, Base] : Rec.LoadBases) {
          if (Name != Mod.Image->name())
            continue;
          if (Base != Mod.Base)
            Out.BaseMismatches.push_back(formatString(
                "%s: recorded 0x%x, replayed 0x%x", Name.c_str(),
                Base, Mod.Base));
          return;
        }
        Out.BaseMismatches.push_back(
            Mod.Image->name() + ": not present in the recording");
      });
  if (!M)
    return M.status();
  S = M->installInput(Rec.Input);
  if (!S.ok())
    return S;

  auto Tool = makeNamedTool(Rec.Config.ToolName);
  if (!Tool)
    return Tool.status();
  dbi::EngineOptions EngineOpts;
  EngineOpts.OptimizeFlags = Rec.Config.OptimizeFlags;

  ReplayCollector Collector;
  persist::setRecordingHooks(&Collector);

  if (Opts.Persistence) {
    std::shared_ptr<persist::CacheStore> Backend;
    if (Rec.Config.Tiered)
      Backend = std::make_shared<persist::TieredStore>(
          std::make_shared<persist::DirectoryStore>(L1Dir),
          std::make_shared<persist::DirectoryStore>(L2Dir));
    else
      Backend = std::make_shared<persist::DirectoryStore>(L1Dir);
    persist::CacheDatabase Db(Backend);
    persist::PersistOptions POpts;
    POpts.InterApplication = Rec.Config.InterApplication;
    POpts.PositionIndependent = Rec.Config.PositionIndependent;
    POpts.ExecuteInPlace = Rec.Config.ExecuteInPlace;
    POpts.WriteBack = Rec.Config.WriteBack;
    POpts.ValidateSemantic =
        Rec.Config.ValidateSemantic || Opts.ForceValidate;
    POpts.Pool = Opts.Pool;
    auto R = persist::runWithPersistence(*M, Tool->get(), EngineOpts,
                                         Db, POpts);
    if (!R)
      return R.status();
    Out.Stats = R->Stats;
    Out.Run = R->Run;
  } else {
    dbi::Engine Engine(*M, Tool->get(), EngineOpts);
    Out.Run = Engine.run();
    Out.Stats = Engine.stats();
    Out.Run.Cycles = Out.Stats.totalCycles();
  }
  persist::setRecordingHooks(nullptr);
  Out.MemoryDigest = M->space().contentHash();
  Collector.moveInto(Out);
  return Out;
}

std::string replay::compareToRecording(const RecordedRun &Rec,
                                       const ReplayOutcome &Out) {
  if (!Out.BaseMismatches.empty())
    return "load base: " + Out.BaseMismatches.front();
  std::string Diff = diffStats(Rec.Stats, Out.Stats);
  if (!Diff.empty())
    return "stats: " + Diff;
  Diff = diffRunResult(Rec.Run, Out.Run);
  if (!Diff.empty())
    return "run: " + Diff;
  if (Rec.MemoryDigest != Out.MemoryDigest)
    return formatString(
        "final memory digest: recorded %016llx, replayed %016llx",
        (unsigned long long)Rec.MemoryDigest,
        (unsigned long long)Out.MemoryDigest);
  if (Rec.Quarantines.size() != Out.Quarantines.size())
    return formatString("quarantines: recorded %zu, replayed %zu",
                        Rec.Quarantines.size(), Out.Quarantines.size());
  for (size_t I = 0; I != Rec.Quarantines.size(); ++I) {
    const RecordedQuarantine &A = Rec.Quarantines[I];
    const RecordedQuarantine &B = Out.Quarantines[I];
    if (A.RefName != B.RefName || A.Code != B.Code)
      return formatString(
          "quarantine %zu: recorded %s (code %u), replayed %s "
          "(code %u)",
          I, A.RefName.c_str(), A.Code, B.RefName.c_str(), B.Code);
  }
  return "";
}

ErrorOr<std::string> replay::replayDiff(const RecordedRun &Rec,
                                        support::ThreadPool *Pool) {
  ReplayOptions OnOpts;
  OnOpts.Pool = Pool;
  auto On = replayRun(Rec, OnOpts);
  if (!On)
    return On.status();
  std::string Diff = compareToRecording(Rec, *On);
  if (!Diff.empty())
    return "persistence-on leg: " + Diff;

  ReplayOptions OffOpts;
  OffOpts.Persistence = false;
  auto Off = replayRun(Rec, OffOpts);
  if (!Off)
    return Off.status();
  if (!On->Run.observablyEquals(Off->Run))
    return std::string("differential: guest-observable results differ "
                       "between the persistence-on and -off legs");
  if (On->MemoryDigest != Off->MemoryDigest)
    return std::string("differential: final guest memory differs "
                       "between the persistence-on and -off legs");
  return std::string();
}

ErrorOr<RecordedRun> replay::readLogFile(const std::string &Path) {
  std::vector<uint8_t> Bytes;
  if (!readRaw(Path, Bytes))
    return Status::error(ErrorCode::IoError,
                         "cannot read replay log " + Path);
  return deserializeLog(Bytes);
}

Status replay::writeLogFile(const std::string &Path,
                            const RecordedRun &Run) {
  if (!writeRaw(Path, serializeLog(Run)))
    return Status::error(ErrorCode::IoError,
                         "cannot write replay log " + Path);
  return Status::success();
}
