//===- support/Error.h - Status and ErrorOr error handling ------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exception-free recoverable-error handling in the style of
/// llvm::Expected: a Status carries a code and message, and ErrorOr<T>
/// carries either a value or a Status. Library code never throws;
/// unrecoverable programmer errors are asserts.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_SUPPORT_ERROR_H
#define PCC_SUPPORT_ERROR_H

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace pcc {

/// Error categories surfaced by the library. Benign conditions that callers
/// routinely branch on (e.g. "no persistent cache for this key") get their
/// own codes so callers need not parse messages.
enum class ErrorCode {
  Success = 0,
  NotFound,        ///< Lookup miss (cache database, symbol, module).
  InvalidFormat,   ///< Malformed or truncated serialized data.
  VersionMismatch, ///< Persistent cache from a different engine version.
  KeyMismatch,     ///< Module/tool key conflict (Section 3.2.1).
  OutOfMemory,     ///< A fixed-size pool or guest region is exhausted.
  IoError,         ///< Host filesystem failure.
  GuestFault,      ///< Guest program performed an illegal operation.
  InvalidArgument, ///< Caller passed an out-of-contract value.
  WouldBlock,      ///< A non-blocking lock acquisition found a holder.
};

/// Human-readable name of \p Code (for messages and tests).
const char *errorCodeName(ErrorCode Code);

/// A success-or-error result with an optional message. Cheap to copy on
/// the success path (no allocation).
class Status {
public:
  Status() = default;
  Status(ErrorCode Code, std::string Message)
      : Code(Code), Message(std::move(Message)) {
    assert(Code != ErrorCode::Success && "error status requires a code");
  }

  static Status success() { return Status(); }
  static Status error(ErrorCode Code, std::string Message) {
    return Status(Code, std::move(Message));
  }

  bool ok() const { return Code == ErrorCode::Success; }
  ErrorCode code() const { return Code; }
  const std::string &message() const { return Message; }

  /// Renders "code: message" for logs and test failures.
  std::string toString() const;

private:
  ErrorCode Code = ErrorCode::Success;
  std::string Message;
};

/// Either a T or a Status describing why no T could be produced.
template <typename T> class ErrorOr {
public:
  ErrorOr(T Value) : Storage(std::move(Value)) {}
  ErrorOr(Status Error) : Storage(std::move(Error)) {
    assert(!std::get<Status>(Storage).ok() &&
           "ErrorOr must not hold a success status");
  }

  bool ok() const { return std::holds_alternative<T>(Storage); }
  explicit operator bool() const { return ok(); }

  T &value() {
    assert(ok() && "value() on error ErrorOr");
    return std::get<T>(Storage);
  }
  const T &value() const {
    assert(ok() && "value() on error ErrorOr");
    return std::get<T>(Storage);
  }
  T &operator*() { return value(); }
  const T &operator*() const { return value(); }
  T *operator->() { return &value(); }
  const T *operator->() const { return &value(); }

  /// The error; valid only when !ok().
  const Status &status() const {
    assert(!ok() && "status() on success ErrorOr");
    return std::get<Status>(Storage);
  }

  /// Moves the value out; valid only when ok().
  T take() {
    assert(ok() && "take() on error ErrorOr");
    return std::move(std::get<T>(Storage));
  }

private:
  std::variant<T, Status> Storage;
};

} // namespace pcc

#endif // PCC_SUPPORT_ERROR_H
