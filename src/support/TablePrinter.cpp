//===- support/TablePrinter.cpp -------------------------------------------===//

#include "support/TablePrinter.h"

#include <algorithm>
#include <cstdio>

using namespace pcc;

void TablePrinter::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

void TablePrinter::addSeparator() {
  if (!Rows.empty())
    SeparatorAfter.push_back(Rows.size() - 1);
}

std::string TablePrinter::render() const {
  std::vector<size_t> Widths;
  for (const auto &Row : Rows) {
    if (Row.size() > Widths.size())
      Widths.resize(Row.size(), 0);
    for (size_t I = 0; I != Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());
  }

  auto renderSeparator = [&] {
    std::string Line;
    for (size_t I = 0; I != Widths.size(); ++I) {
      Line += std::string(Widths[I] + 2, '-');
      if (I + 1 != Widths.size())
        Line += '+';
    }
    Line += '\n';
    return Line;
  };

  std::string Out;
  if (!Title.empty())
    Out += "== " + Title + " ==\n";
  for (size_t R = 0; R != Rows.size(); ++R) {
    const auto &Row = Rows[R];
    std::string Line;
    for (size_t I = 0; I != Widths.size(); ++I) {
      std::string Cell = I < Row.size() ? Row[I] : std::string();
      Line += ' ';
      Line += Cell;
      Line += std::string(Widths[I] - Cell.size() + 1, ' ');
      if (I + 1 != Widths.size())
        Line += '|';
    }
    // Trim trailing spaces for cleaner diffs.
    while (!Line.empty() && Line.back() == ' ')
      Line.pop_back();
    Out += Line + '\n';
    if (R == 0 && Rows.size() > 1)
      Out += renderSeparator();
    else if (std::find(SeparatorAfter.begin(), SeparatorAfter.end(), R) !=
             SeparatorAfter.end())
      Out += renderSeparator();
  }
  return Out;
}

void TablePrinter::print() const {
  std::string Text = render();
  std::fwrite(Text.data(), 1, Text.size(), stdout);
  std::fflush(stdout);
}
