//===- support/Hashing.cpp ------------------------------------------------===//

#include "support/Hashing.h"

#include <array>

using namespace pcc;

uint64_t pcc::fnv1a64Bytes(const void *Data, size_t Size, uint64_t State) {
  const auto *Bytes = static_cast<const uint8_t *>(Data);
  for (size_t I = 0; I != Size; ++I) {
    State ^= Bytes[I];
    State *= 0x100000001b3ULL;
  }
  return State;
}

uint64_t pcc::fnv1a64U64(uint64_t Value, uint64_t State) {
  uint8_t Bytes[8];
  for (unsigned I = 0; I != 8; ++I)
    Bytes[I] = static_cast<uint8_t>(Value >> (8 * I));
  return fnv1a64Bytes(Bytes, sizeof(Bytes), State);
}

// Slice-by-8 CRC-32: eight derived tables let the inner loop consume 8
// bytes per iteration instead of 1, with the identical IEEE (reflected
// 0xedb88320) polynomial and check values as the classic bytewise loop.
// Table[K][B] is the CRC contribution of byte B seen K+1 positions before
// the end of an 8-byte group.
static std::array<std::array<uint32_t, 256>, 8> makeCrc32Tables() {
  std::array<std::array<uint32_t, 256>, 8> Tables{};
  for (uint32_t I = 0; I != 256; ++I) {
    uint32_t C = I;
    for (int K = 0; K != 8; ++K)
      C = (C & 1) ? 0xedb88320U ^ (C >> 1) : C >> 1;
    Tables[0][I] = C;
  }
  for (uint32_t K = 1; K != 8; ++K)
    for (uint32_t I = 0; I != 256; ++I)
      Tables[K][I] =
          (Tables[K - 1][I] >> 8) ^ Tables[0][Tables[K - 1][I] & 0xff];
  return Tables;
}

uint32_t pcc::crc32(const void *Data, size_t Size, uint32_t Seed) {
  static const std::array<std::array<uint32_t, 256>, 8> T =
      makeCrc32Tables();
  uint32_t C = Seed ^ 0xffffffffU;
  const auto *Bytes = static_cast<const uint8_t *>(Data);
  while (Size >= 8) {
    uint32_t Lo = C ^ (static_cast<uint32_t>(Bytes[0]) |
                       static_cast<uint32_t>(Bytes[1]) << 8 |
                       static_cast<uint32_t>(Bytes[2]) << 16 |
                       static_cast<uint32_t>(Bytes[3]) << 24);
    uint32_t Hi = static_cast<uint32_t>(Bytes[4]) |
                  static_cast<uint32_t>(Bytes[5]) << 8 |
                  static_cast<uint32_t>(Bytes[6]) << 16 |
                  static_cast<uint32_t>(Bytes[7]) << 24;
    C = T[7][Lo & 0xff] ^ T[6][(Lo >> 8) & 0xff] ^
        T[5][(Lo >> 16) & 0xff] ^ T[4][Lo >> 24] ^ T[3][Hi & 0xff] ^
        T[2][(Hi >> 8) & 0xff] ^ T[1][(Hi >> 16) & 0xff] ^ T[0][Hi >> 24];
    Bytes += 8;
    Size -= 8;
  }
  while (Size--)
    C = T[0][(C ^ *Bytes++) & 0xff] ^ (C >> 8);
  return C ^ 0xffffffffU;
}

uint64_t pcc::hashCombine(uint64_t A, uint64_t B) {
  // 64-bit variant of boost::hash_combine's magic constant (derived from
  // the golden ratio) with extra shifts for avalanche.
  A ^= B + 0x9e3779b97f4a7c15ULL + (A << 12) + (A >> 4);
  return A;
}
