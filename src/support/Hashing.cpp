//===- support/Hashing.cpp ------------------------------------------------===//

#include "support/Hashing.h"

#include <array>

using namespace pcc;

uint64_t pcc::fnv1a64Bytes(const void *Data, size_t Size, uint64_t State) {
  const auto *Bytes = static_cast<const uint8_t *>(Data);
  for (size_t I = 0; I != Size; ++I) {
    State ^= Bytes[I];
    State *= 0x100000001b3ULL;
  }
  return State;
}

uint64_t pcc::fnv1a64U64(uint64_t Value, uint64_t State) {
  uint8_t Bytes[8];
  for (unsigned I = 0; I != 8; ++I)
    Bytes[I] = static_cast<uint8_t>(Value >> (8 * I));
  return fnv1a64Bytes(Bytes, sizeof(Bytes), State);
}

static std::array<uint32_t, 256> makeCrc32Table() {
  std::array<uint32_t, 256> Table{};
  for (uint32_t I = 0; I != 256; ++I) {
    uint32_t C = I;
    for (int K = 0; K != 8; ++K)
      C = (C & 1) ? 0xedb88320U ^ (C >> 1) : C >> 1;
    Table[I] = C;
  }
  return Table;
}

uint32_t pcc::crc32(const void *Data, size_t Size, uint32_t Seed) {
  static const std::array<uint32_t, 256> Table = makeCrc32Table();
  uint32_t C = Seed ^ 0xffffffffU;
  const auto *Bytes = static_cast<const uint8_t *>(Data);
  for (size_t I = 0; I != Size; ++I)
    C = Table[(C ^ Bytes[I]) & 0xff] ^ (C >> 8);
  return C ^ 0xffffffffU;
}

uint64_t pcc::hashCombine(uint64_t A, uint64_t B) {
  // 64-bit variant of boost::hash_combine's magic constant (derived from
  // the golden ratio) with extra shifts for avalanche.
  A ^= B + 0x9e3779b97f4a7c15ULL + (A << 12) + (A >> 4);
  return A;
}
