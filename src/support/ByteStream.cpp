//===- support/ByteStream.cpp ---------------------------------------------===//

#include "support/ByteStream.h"

#include <cassert>

using namespace pcc;

void ByteWriter::writeLittleEndian(uint64_t Value, unsigned NumBytes) {
  for (unsigned I = 0; I != NumBytes; ++I)
    Bytes.push_back(static_cast<uint8_t>(Value >> (8 * I)));
}

void ByteWriter::writeString(const std::string &Str) {
  assert(Str.size() <= UINT32_MAX && "string too long to serialize");
  writeU32(static_cast<uint32_t>(Str.size()));
  writeBytes(Str.data(), Str.size());
}

void ByteWriter::writeBytes(const void *Data, size_t Size) {
  if (Size == 0)
    return;
  // Single grow + memcpy append: vector<uint8_t> resize value-initializes
  // cheaply and memcpy beats element-wise insert on large code payloads.
  size_t Old = Bytes.size();
  Bytes.resize(Old + Size);
  std::memcpy(Bytes.data() + Old, Data, Size);
}

void ByteWriter::writeBlob(const std::vector<uint8_t> &Blob) {
  assert(Blob.size() <= UINT32_MAX && "blob too long to serialize");
  writeU32(static_cast<uint32_t>(Blob.size()));
  writeBytes(Blob.data(), Blob.size());
}

void ByteWriter::patchU32(size_t Offset, uint32_t Value) {
  assert(Offset + 4 <= Bytes.size() && "patch offset out of range");
  for (unsigned I = 0; I != 4; ++I)
    Bytes[Offset + I] = static_cast<uint8_t>(Value >> (8 * I));
}

bool ByteReader::checkAvailable(size_t Count) {
  if (Failed)
    return false;
  if (Count > Size - Offset) {
    Failed = true;
    return false;
  }
  return true;
}

uint64_t ByteReader::readLittleEndian(unsigned NumBytes) {
  if (!checkAvailable(NumBytes))
    return 0;
  uint64_t Value = 0;
  for (unsigned I = 0; I != NumBytes; ++I)
    Value |= static_cast<uint64_t>(Data[Offset + I]) << (8 * I);
  Offset += NumBytes;
  return Value;
}

uint8_t ByteReader::readU8() {
  return static_cast<uint8_t>(readLittleEndian(1));
}

uint16_t ByteReader::readU16() {
  return static_cast<uint16_t>(readLittleEndian(2));
}

uint32_t ByteReader::readU32() {
  return static_cast<uint32_t>(readLittleEndian(4));
}

uint64_t ByteReader::readU64() { return readLittleEndian(8); }

std::string ByteReader::readString() {
  uint32_t Length = readU32();
  if (!checkAvailable(Length))
    return std::string();
  std::string Str(reinterpret_cast<const char *>(Data + Offset), Length);
  Offset += Length;
  return Str;
}

void ByteReader::readBytes(void *Out, size_t Count) {
  if (!checkAvailable(Count)) {
    std::memset(Out, 0, Count);
    return;
  }
  std::memcpy(Out, Data + Offset, Count);
  Offset += Count;
}

std::vector<uint8_t> ByteReader::readBlob() {
  uint32_t Length = readU32();
  if (!checkAvailable(Length))
    return {};
  std::vector<uint8_t> Blob(Data + Offset, Data + Offset + Length);
  Offset += Length;
  return Blob;
}

void ByteReader::skip(size_t Count) {
  if (!checkAvailable(Count))
    return;
  Offset += Count;
}
