//===- support/FaultInjector.h - Host-failure injection ---------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One configurable facility for provoking host-filesystem failures
/// underneath FileSystem and FileLock. The paper's headline deployment
/// (Section 5: an Oracle middle tier with many worker processes sharing
/// one cache database) demands that a disk-full, a torn file or a
/// contended lock never take down the *application* — persistence is an
/// accelerator, and the worst acceptable outcome is falling back to
/// baseline translation. Proving that requires provoking those failures
/// on demand: tests, benches and `pccrun --fault-plan` all arm this
/// injector instead of growing ad-hoc hooks.
///
/// Faults are keyed by operation (FaultOp). Each operation can be armed
/// two ways:
///
///   * count-based  — the next \c AfterCalls calls pass, then \c Times
///     calls fail, then the rule disarms (deterministic one-shots for
///     unit tests);
///   * probability  — every call fails independently with probability
///     \c P, drawn from a seeded deterministic Rng (soak storms).
///
/// The injector is process-global (it must see every filesystem call,
/// including ones deep inside the store) and thread-safe (fault storms
/// run under TSan). Forked children inherit the armed plan — exactly
/// what a multi-process publish storm wants.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_SUPPORT_FAULTINJECTOR_H
#define PCC_SUPPORT_FAULTINJECTOR_H

#include "support/Error.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace pcc {

/// Injectable host operations. Write-path faults differ in what they
/// leave behind: ShortWrite/Enospc/FsyncFail/RenameFail are *clean*
/// failures (the temporary is removed, the slot untouched); TornWrite
/// simulates a writer dying mid-write, orphaning a partial temporary.
enum class FaultOp : uint8_t {
  Read,        ///< EIO from readFile/readFileRange/mmap.
  ShortWrite,  ///< fwrite stops halfway; clean IoError.
  TornWrite,   ///< Writer "crashes": partial temp left on disk.
  Enospc,      ///< No space left on device; clean IoError.
  FsyncFail,   ///< fsync of the temporary fails; clean IoError.
  RenameFail,  ///< rename(temp, slot) fails; clean IoError.
  LockTimeout, ///< Lock acquisition reports WouldBlock.
  OpCount      ///< Number of operations (array bound).
};

/// Printable name of \p Op ("read", "enospc", ...), as used in fault
/// plans.
const char *faultOpName(FaultOp Op);

/// Process-global fault-injection facility. All methods are
/// thread-safe.
class FaultInjector {
public:
  static FaultInjector &instance();

  /// Disarms every rule and zeroes the injection counters.
  void reset();

  /// Arms \p Op to fail each call independently with probability \p P,
  /// drawn from a deterministic generator seeded with \p Seed.
  void armProbability(FaultOp Op, double P, uint64_t Seed = 1);

  /// Arms \p Op to pass \p AfterCalls calls, fail the next \p Times
  /// calls, then disarm.
  void armCount(FaultOp Op, uint32_t AfterCalls = 0, uint32_t Times = 1);

  /// Arms \p Op to replay a recorded decision stream verbatim: call K
  /// returns Decisions[K] (nonzero = fail). The rule disarms itself when
  /// the stream is exhausted, mirroring the disarm point of whatever
  /// rule produced the stream at record time. An empty stream is a
  /// no-op.
  void armReplay(FaultOp Op, std::vector<uint8_t> Decisions);

  /// Disarms \p Op only.
  void disarm(FaultOp Op);

  /// Decides whether the current call to \p Op fails, advancing the
  /// rule's state. Hot paths call this through the inline enabled()
  /// guard, so an unarmed injector costs one relaxed atomic load.
  bool shouldFail(FaultOp Op);

  /// Number of faults injected for \p Op since the last reset().
  uint64_t injectedCount(FaultOp Op) const;

  /// Total faults injected across all operations since last reset().
  uint64_t totalInjected() const;

  /// True when any rule is armed.
  bool enabled() const {
    return Armed.load(std::memory_order_relaxed) != 0;
  }

  /// Arms the injector from a fault-plan string:
  ///
  ///   plan  := item (',' item)*
  ///   item  := op ':' value | "seed" ':' integer
  ///   op    := read | short-write | torn-write | enospc | fsync
  ///          | rename | lock
  ///   value := probability in [0,1] (e.g. "0.1")
  ///          | '@' N  — one-shot: pass N calls, then fail once
  ///          | '@' N '+' T — pass N calls, fail the next T, disarm
  ///
  /// e.g. "enospc:0.1,fsync:0.1,lock:0.25,seed:42". Items apply in
  /// order; "seed" affects subsequently listed probability items.
  /// Returns InvalidArgument (with the offending item) on a malformed
  /// plan, leaving already-parsed items armed.
  Status configureFromPlan(const std::string &Plan);

  /// Re-serializes the currently armed rules as a plan string that
  /// configureFromPlan() accepts, preserving *consumed* state: a
  /// partially drained count rule emits its remaining pass/fail counts,
  /// and a probability rule emits a seed reconstructing its exact
  /// mid-stream generator state. Replay rules (armReplay) are not
  /// expressible as plan items and are omitted. Feeding the result to
  /// configureFromPlan() on a fresh injector arms rules whose future
  /// decisions match this injector's bit for bit.
  std::string planString() const;

  /// Observes every shouldFail() decision made for an *armed* op, in
  /// call order (pass and fail alike). The callback runs under the
  /// injector's mutex: it must be cheap and must not re-enter the
  /// injector. Pass nullptr to detach. Used by the record/replay layer
  /// to capture fault streams.
  using DecisionObserver = std::function<void(FaultOp, bool)>;
  void setDecisionObserver(DecisionObserver Observer);

private:
  FaultInjector() = default;

  enum class RuleKind : uint8_t { Off, Count, Probability, Replay };
  struct Rule {
    RuleKind Kind = RuleKind::Off;
    uint32_t AfterCalls = 0; ///< Count: calls to pass before failing.
    uint32_t Times = 0;      ///< Count: consecutive failures remaining.
    double P = 0;            ///< Probability of failure per call.
    uint64_t RngState = 0;   ///< Per-rule SplitMix64 state.
    uint64_t Injected = 0;   ///< Faults injected since reset().
    std::vector<uint8_t> Decisions; ///< Replay: recorded stream.
    size_t NextDecision = 0;        ///< Replay: cursor into Decisions.
  };

  void recountArmed(); ///< Recomputes Armed under Mutex.

  mutable std::mutex Mutex;
  Rule Rules[static_cast<size_t>(FaultOp::OpCount)];
  DecisionObserver Observer; ///< Guarded by Mutex; may be empty.
  /// Number of armed rules, readable without the mutex so unarmed
  /// operation costs one relaxed load on every filesystem call.
  std::atomic<uint32_t> Armed{0};
};

/// RAII guard for tests: resets the global injector on construction and
/// destruction, so no armed rule leaks across test boundaries.
class FaultScope {
public:
  FaultScope() { FaultInjector::instance().reset(); }
  ~FaultScope() { FaultInjector::instance().reset(); }
  FaultScope(const FaultScope &) = delete;
  FaultScope &operator=(const FaultScope &) = delete;
};

} // namespace pcc

#endif // PCC_SUPPORT_FAULTINJECTOR_H
