//===- support/Random.h - Deterministic pseudo-random numbers ---*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic SplitMix64-based generator. All workload synthesis and
/// property tests draw from this so every experiment is reproducible on
/// any host; std::mt19937 distributions are not cross-platform stable,
/// so the range mapping is implemented here as well.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_SUPPORT_RANDOM_H
#define PCC_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace pcc {

/// SplitMix64: tiny state, excellent diffusion, sequential-seed safe.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Next raw 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow requires a nonzero bound");
    // Debiased multiply-shift (Lemire). The rejection loop terminates
    // quickly for all bounds.
    uint64_t Threshold = (0 - Bound) % Bound;
    for (;;) {
      uint64_t Value = next();
      __uint128_t Product = static_cast<__uint128_t>(Value) * Bound;
      if (static_cast<uint64_t>(Product) >= Threshold)
        return static_cast<uint64_t>(Product >> 64);
    }
  }

  /// Uniform value in [Low, High] inclusive.
  uint64_t nextInRange(uint64_t Low, uint64_t High) {
    assert(Low <= High && "inverted range");
    return Low + nextBelow(High - Low + 1);
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// True with probability \p P (clamped to [0,1]).
  bool nextBool(double P) { return nextDouble() < P; }

private:
  uint64_t State;
};

} // namespace pcc

#endif // PCC_SUPPORT_RANDOM_H
