//===- support/FileSystem.cpp ---------------------------------------------===//

#include "support/FileSystem.h"

#include "support/FaultInjector.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#define PCC_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

using namespace pcc;
namespace fs = std::filesystem;

ErrorOr<std::vector<uint8_t>> pcc::readFile(const std::string &Path) {
  FaultInjector &Injector = FaultInjector::instance();
  if (Injector.enabled() && Injector.shouldFail(FaultOp::Read))
    return Status::error(ErrorCode::IoError,
                         "(injected) read error from " + Path);
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return Status::error(ErrorCode::IoError, "cannot open " + Path);
  std::fseek(File, 0, SEEK_END);
  long Size = std::ftell(File);
  if (Size < 0) {
    std::fclose(File);
    return Status::error(ErrorCode::IoError, "cannot stat " + Path);
  }
  std::fseek(File, 0, SEEK_SET);
  std::vector<uint8_t> Bytes(static_cast<size_t>(Size));
  size_t Read = Bytes.empty()
                    ? 0
                    : std::fread(Bytes.data(), 1, Bytes.size(), File);
  std::fclose(File);
  if (Read != Bytes.size())
    return Status::error(ErrorCode::IoError, "short read from " + Path);
  return Bytes;
}

ErrorOr<uint64_t> pcc::fileSize(const std::string &Path) {
  std::error_code Ec;
  uint64_t Size = fs::file_size(Path, Ec);
  if (Ec)
    return Status::error(ErrorCode::IoError, "cannot stat " + Path);
  return Size;
}

ErrorOr<std::vector<uint8_t>> pcc::readFileRange(const std::string &Path,
                                                 uint64_t Offset,
                                                 size_t MaxBytes) {
  FaultInjector &Injector = FaultInjector::instance();
  if (Injector.enabled() && Injector.shouldFail(FaultOp::Read))
    return Status::error(ErrorCode::IoError,
                         "(injected) read error from " + Path);
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return Status::error(ErrorCode::IoError, "cannot open " + Path);
  std::vector<uint8_t> Bytes;
  if (std::fseek(File, static_cast<long>(Offset), SEEK_SET) != 0) {
    std::fclose(File);
    // Seeking past EOF on some platforms fails: treat as empty range.
    return Bytes;
  }
  Bytes.resize(MaxBytes);
  size_t Read =
      Bytes.empty() ? 0 : std::fread(Bytes.data(), 1, Bytes.size(), File);
  bool HadError = std::ferror(File) != 0;
  std::fclose(File);
  if (HadError)
    return Status::error(ErrorCode::IoError, "read error from " + Path);
  Bytes.resize(Read);
  return Bytes;
}

MappedFile &MappedFile::operator=(MappedFile &&Other) noexcept {
  if (this == &Other)
    return *this;
#if PCC_HAVE_MMAP
  if (Mapped && Data)
    ::munmap(const_cast<uint8_t *>(Data), Size);
#endif
  Data = Other.Data;
  Size = Other.Size;
  Mapped = Other.Mapped;
  FallbackCopy = std::move(Other.FallbackCopy);
  if (!Mapped && !FallbackCopy.empty())
    Data = FallbackCopy.data();
  Other.Data = nullptr;
  Other.Size = 0;
  Other.Mapped = false;
  return *this;
}

MappedFile::~MappedFile() {
#if PCC_HAVE_MMAP
  if (Mapped && Data)
    ::munmap(const_cast<uint8_t *>(Data), Size);
#endif
  Data = nullptr;
  Size = 0;
  Mapped = false;
  FallbackCopy.clear();
}

ErrorOr<MappedFile> MappedFile::open(const std::string &Path) {
  FaultInjector &Injector = FaultInjector::instance();
  if (Injector.enabled() && Injector.shouldFail(FaultOp::Read))
    return Status::error(ErrorCode::IoError,
                         "(injected) cannot map " + Path);
  MappedFile Result;
#if PCC_HAVE_MMAP
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return Status::error(ErrorCode::IoError, "cannot open " + Path);
  struct stat St;
  if (::fstat(Fd, &St) != 0 || !S_ISREG(St.st_mode)) {
    ::close(Fd);
    return Status::error(ErrorCode::IoError, "cannot stat " + Path);
  }
  if (St.st_size == 0) {
    ::close(Fd);
    return Result;
  }
  void *Addr =
      ::mmap(nullptr, static_cast<size_t>(St.st_size), PROT_READ,
             MAP_PRIVATE, Fd, 0);
  ::close(Fd);
  if (Addr != MAP_FAILED) {
    Result.Data = static_cast<const uint8_t *>(Addr);
    Result.Size = static_cast<size_t>(St.st_size);
    Result.Mapped = true;
    return Result;
  }
#endif
  auto Bytes = readFile(Path);
  if (!Bytes.ok())
    return Bytes.status();
  Result.FallbackCopy = std::move(*Bytes);
  Result.Data = Result.FallbackCopy.data();
  Result.Size = Result.FallbackCopy.size();
  return Result;
}

uint32_t pcc::currentProcessId() {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<uint32_t>(::getpid());
#else
  return 0;
#endif
}

namespace {

/// True when the fault injector wants this call to \p Op fail. The
/// enabled() fast path keeps unarmed operation to one relaxed load.
bool injectFault(FaultOp Op) {
  FaultInjector &Injector = FaultInjector::instance();
  return Injector.enabled() && Injector.shouldFail(Op);
}

/// Flushes \p File's contents to stable storage (POSIX only; elsewhere a
/// successful no-op, matching the platform's weaker guarantees).
bool syncStream(std::FILE *File) {
#if defined(__unix__) || defined(__APPLE__)
  if (std::fflush(File) != 0)
    return false;
  return ::fsync(::fileno(File)) == 0;
#else
  (void)File;
  return true;
#endif
}

/// Fsyncs the directory containing \p Path so the rename itself is
/// durable.
void syncParentDirectory(const std::string &Path) {
#if defined(__unix__) || defined(__APPLE__)
  fs::path Parent = fs::path(Path).parent_path();
  if (Parent.empty())
    Parent = ".";
  int Fd = ::open(Parent.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd >= 0) {
    (void)::fsync(Fd);
    ::close(Fd);
  }
#else
  (void)Path;
#endif
}

} // namespace

bool pcc::isAtomicTempName(const std::string &Name) {
  return Name.find(".tmp.") != std::string::npos;
}

Status pcc::writeFileAtomic(const std::string &Path,
                            const std::vector<uint8_t> &Bytes,
                            bool SyncToDisk) {
  // Unique per process and call: two writers of one slot (processes or
  // threads) must never scribble on each other's temporary.
  static std::atomic<unsigned> Serial{0};
  std::string TempPath =
      Path + formatString(".tmp.%u-%u", currentProcessId(),
                          Serial.fetch_add(1, std::memory_order_relaxed));

  if (injectFault(FaultOp::Enospc))
    // A full disk fails at open/write time; no temporary survives.
    return Status::error(ErrorCode::IoError,
                         "(injected) no space left writing " + TempPath);

  bool ShortWrite = injectFault(FaultOp::ShortWrite);
  bool TornWrite = !ShortWrite && injectFault(FaultOp::TornWrite);

  std::FILE *File = std::fopen(TempPath.c_str(), "wb");
  if (!File)
    return Status::error(ErrorCode::IoError, "cannot create " + TempPath);
  size_t ToWrite =
      ShortWrite || TornWrite ? Bytes.size() / 2 : Bytes.size();
  size_t Written =
      ToWrite == 0 ? 0 : std::fwrite(Bytes.data(), 1, ToWrite, File);
  if (TornWrite) {
    // Simulated crash: the writer dies here, after some bytes reached
    // the temporary and before the rename. The orphan stays on disk,
    // exactly as a real crash would leave it.
    std::fclose(File);
    return Status::error(ErrorCode::IoError,
                         "(injected) crash while writing " + TempPath);
  }
  bool Synced =
      !SyncToDisk || (!injectFault(FaultOp::FsyncFail) && syncStream(File));
  int CloseResult = std::fclose(File);
  if (ShortWrite || Written != ToWrite || !Synced || CloseResult != 0) {
    std::remove(TempPath.c_str());
    return Status::error(ErrorCode::IoError, "short write to " + TempPath);
  }
  if (injectFault(FaultOp::RenameFail)) {
    std::remove(TempPath.c_str());
    return Status::error(ErrorCode::IoError,
                         "(injected) cannot rename " + TempPath);
  }
  std::error_code Ec;
  fs::rename(TempPath, Path, Ec);
  if (Ec) {
    std::remove(TempPath.c_str());
    return Status::error(ErrorCode::IoError,
                         "cannot rename " + TempPath + " to " + Path);
  }
  if (SyncToDisk)
    syncParentDirectory(Path);
  return Status::success();
}

Status pcc::createDirectories(const std::string &Path) {
  std::error_code Ec;
  fs::create_directories(Path, Ec);
  if (Ec)
    return Status::error(ErrorCode::IoError, "cannot create " + Path);
  return Status::success();
}

bool pcc::fileExists(const std::string &Path) {
  std::error_code Ec;
  return fs::is_regular_file(Path, Ec);
}

Status pcc::removeFile(const std::string &Path) {
  std::error_code Ec;
  fs::remove(Path, Ec);
  if (Ec)
    return Status::error(ErrorCode::IoError, "cannot remove " + Path);
  return Status::success();
}

Status pcc::renameFile(const std::string &From, const std::string &To) {
  std::error_code Ec;
  fs::rename(From, To, Ec);
  if (Ec)
    return Status::error(ErrorCode::IoError,
                         "cannot rename " + From + " to " + To);
  return Status::success();
}

ErrorOr<std::vector<std::string>> pcc::listDirectory(const std::string &Dir) {
  std::error_code Ec;
  std::vector<std::string> Names;
  fs::directory_iterator It(Dir, Ec);
  if (Ec)
    return Status::error(ErrorCode::IoError, "cannot list " + Dir);
  for (const auto &Entry : It)
    if (Entry.is_regular_file())
      Names.push_back(Entry.path().filename().string());
  std::sort(Names.begin(), Names.end());
  return Names;
}

ErrorOr<std::string> pcc::createUniqueTempDir(const std::string &Prefix) {
  std::error_code Ec;
  fs::path Base = fs::temp_directory_path(Ec);
  if (Ec)
    return Status::error(ErrorCode::IoError, "no temp directory");
  // Clock + counter keeps this unique within and across processes.
  static unsigned Counter = 0;
  uint64_t Stamp = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  for (unsigned Attempt = 0; Attempt != 100; ++Attempt) {
    fs::path Candidate =
        Base / formatString("%s-%llx-%u", Prefix.c_str(),
                            static_cast<unsigned long long>(Stamp),
                            Counter++);
    if (fs::create_directory(Candidate, Ec) && !Ec)
      return Candidate.string();
  }
  return Status::error(ErrorCode::IoError, "cannot create temp dir");
}

Status pcc::removeRecursively(const std::string &Path) {
  std::error_code Ec;
  fs::remove_all(Path, Ec);
  if (Ec)
    return Status::error(ErrorCode::IoError, "cannot remove " + Path);
  return Status::success();
}
