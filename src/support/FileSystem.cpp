//===- support/FileSystem.cpp ---------------------------------------------===//

#include "support/FileSystem.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <system_error>

using namespace pcc;
namespace fs = std::filesystem;

ErrorOr<std::vector<uint8_t>> pcc::readFile(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return Status::error(ErrorCode::IoError, "cannot open " + Path);
  std::fseek(File, 0, SEEK_END);
  long Size = std::ftell(File);
  if (Size < 0) {
    std::fclose(File);
    return Status::error(ErrorCode::IoError, "cannot stat " + Path);
  }
  std::fseek(File, 0, SEEK_SET);
  std::vector<uint8_t> Bytes(static_cast<size_t>(Size));
  size_t Read = Bytes.empty()
                    ? 0
                    : std::fread(Bytes.data(), 1, Bytes.size(), File);
  std::fclose(File);
  if (Read != Bytes.size())
    return Status::error(ErrorCode::IoError, "short read from " + Path);
  return Bytes;
}

Status pcc::writeFileAtomic(const std::string &Path,
                            const std::vector<uint8_t> &Bytes) {
  std::string TempPath = Path + ".tmp";
  std::FILE *File = std::fopen(TempPath.c_str(), "wb");
  if (!File)
    return Status::error(ErrorCode::IoError, "cannot create " + TempPath);
  size_t Written =
      Bytes.empty() ? 0 : std::fwrite(Bytes.data(), 1, Bytes.size(), File);
  int CloseResult = std::fclose(File);
  if (Written != Bytes.size() || CloseResult != 0) {
    std::remove(TempPath.c_str());
    return Status::error(ErrorCode::IoError, "short write to " + TempPath);
  }
  std::error_code Ec;
  fs::rename(TempPath, Path, Ec);
  if (Ec) {
    std::remove(TempPath.c_str());
    return Status::error(ErrorCode::IoError,
                         "cannot rename " + TempPath + " to " + Path);
  }
  return Status::success();
}

Status pcc::createDirectories(const std::string &Path) {
  std::error_code Ec;
  fs::create_directories(Path, Ec);
  if (Ec)
    return Status::error(ErrorCode::IoError, "cannot create " + Path);
  return Status::success();
}

bool pcc::fileExists(const std::string &Path) {
  std::error_code Ec;
  return fs::is_regular_file(Path, Ec);
}

Status pcc::removeFile(const std::string &Path) {
  std::error_code Ec;
  fs::remove(Path, Ec);
  if (Ec)
    return Status::error(ErrorCode::IoError, "cannot remove " + Path);
  return Status::success();
}

ErrorOr<std::vector<std::string>> pcc::listDirectory(const std::string &Dir) {
  std::error_code Ec;
  std::vector<std::string> Names;
  fs::directory_iterator It(Dir, Ec);
  if (Ec)
    return Status::error(ErrorCode::IoError, "cannot list " + Dir);
  for (const auto &Entry : It)
    if (Entry.is_regular_file())
      Names.push_back(Entry.path().filename().string());
  std::sort(Names.begin(), Names.end());
  return Names;
}

ErrorOr<std::string> pcc::createUniqueTempDir(const std::string &Prefix) {
  std::error_code Ec;
  fs::path Base = fs::temp_directory_path(Ec);
  if (Ec)
    return Status::error(ErrorCode::IoError, "no temp directory");
  // Clock + counter keeps this unique within and across processes.
  static unsigned Counter = 0;
  uint64_t Stamp = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  for (unsigned Attempt = 0; Attempt != 100; ++Attempt) {
    fs::path Candidate =
        Base / formatString("%s-%llx-%u", Prefix.c_str(),
                            static_cast<unsigned long long>(Stamp),
                            Counter++);
    if (fs::create_directory(Candidate, Ec) && !Ec)
      return Candidate.string();
  }
  return Status::error(ErrorCode::IoError, "cannot create temp dir");
}

Status pcc::removeRecursively(const std::string &Path) {
  std::error_code Ec;
  fs::remove_all(Path, Ec);
  if (Ec)
    return Status::error(ErrorCode::IoError, "cannot remove " + Path);
  return Status::success();
}
