//===- support/StringUtils.cpp --------------------------------------------===//

#include "support/StringUtils.h"

#include <cstdarg>
#include <cstdio>

using namespace pcc;

std::string pcc::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Needed < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Result(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}

std::string pcc::toHex(uint64_t Value, unsigned Width) {
  static const char Digits[] = "0123456789abcdef";
  std::string Result;
  while (Value != 0 || Result.size() < Width) {
    Result.insert(Result.begin(), Digits[Value & 0xf]);
    Value >>= 4;
  }
  return Result;
}

std::vector<std::string> pcc::splitString(const std::string &Str, char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  for (;;) {
    size_t Pos = Str.find(Sep, Start);
    if (Pos == std::string::npos) {
      Parts.push_back(Str.substr(Start));
      return Parts;
    }
    Parts.push_back(Str.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string pcc::formatByteSize(uint64_t Bytes) {
  static const char *Units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double Value = static_cast<double>(Bytes);
  unsigned Unit = 0;
  while (Value >= 1024.0 && Unit < 4) {
    Value /= 1024.0;
    ++Unit;
  }
  if (Unit == 0)
    return formatString("%llu B", static_cast<unsigned long long>(Bytes));
  return formatString("%.1f %s", Value, Units[Unit]);
}
