//===- support/ByteStream.h - Little-endian byte serialization --*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bounds-checked little-endian serialization used by the binary module
/// format and the persistent cache file format. Readers never trust their
/// input: every read is length-checked and failure poisons the reader, so
/// deserializers can check a single error flag at the end.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_SUPPORT_BYTESTREAM_H
#define PCC_SUPPORT_BYTESTREAM_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace pcc {

/// Appends little-endian encoded values to a growable byte buffer.
class ByteWriter {
public:
  void writeU8(uint8_t Value) { Bytes.push_back(Value); }
  void writeU16(uint16_t Value) { writeLittleEndian(Value, 2); }
  void writeU32(uint32_t Value) { writeLittleEndian(Value, 4); }
  void writeU64(uint64_t Value) { writeLittleEndian(Value, 8); }
  void writeI64(int64_t Value) {
    writeU64(static_cast<uint64_t>(Value));
  }

  /// Writes a u32 length prefix followed by the raw string bytes.
  void writeString(const std::string &Str);

  /// Writes raw bytes with no length prefix.
  void writeBytes(const void *Data, size_t Size);

  /// Writes a u32 length prefix followed by the raw bytes.
  void writeBlob(const std::vector<uint8_t> &Blob);

  /// Overwrites 4 bytes at \p Offset (for back-patching size fields).
  void patchU32(size_t Offset, uint32_t Value);

  /// Pre-allocates capacity for \p Total bytes so a serializer with a
  /// computed size estimate appends without reallocation churn.
  void reserve(size_t Total) { Bytes.reserve(Total); }

  size_t capacity() const { return Bytes.capacity(); }
  size_t size() const { return Bytes.size(); }
  const std::vector<uint8_t> &bytes() const { return Bytes; }
  std::vector<uint8_t> take() { return std::move(Bytes); }

private:
  void writeLittleEndian(uint64_t Value, unsigned NumBytes);

  std::vector<uint8_t> Bytes;
};

/// Reads little-endian values from a byte span. Any out-of-bounds read
/// sets a sticky failure flag and yields zeroes, so a deserializer can
/// issue all its reads and check failed() once.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}
  explicit ByteReader(const std::vector<uint8_t> &Bytes)
      : Data(Bytes.data()), Size(Bytes.size()) {}

  uint8_t readU8();
  uint16_t readU16();
  uint32_t readU32();
  uint64_t readU64();
  int64_t readI64() { return static_cast<int64_t>(readU64()); }

  /// Reads a u32-length-prefixed string. On overflow returns "" and fails.
  std::string readString();

  /// Reads \p Size raw bytes into \p Out. On overflow zero-fills and fails.
  void readBytes(void *Out, size_t Size);

  /// Reads a u32-length-prefixed byte blob.
  std::vector<uint8_t> readBlob();

  /// Skips \p Count bytes.
  void skip(size_t Count);

  bool failed() const { return Failed; }
  size_t offset() const { return Offset; }
  size_t remaining() const { return Failed ? 0 : Size - Offset; }
  bool atEnd() const { return Failed || Offset == Size; }

private:
  uint64_t readLittleEndian(unsigned NumBytes);
  bool checkAvailable(size_t Count);

  const uint8_t *Data;
  size_t Size;
  size_t Offset = 0;
  bool Failed = false;
};

} // namespace pcc

#endif // PCC_SUPPORT_BYTESTREAM_H
