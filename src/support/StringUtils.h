//===- support/StringUtils.h - String formatting helpers --------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style formatting into std::string plus a few small helpers.
/// Library code formats into strings; only tools/benches print.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_SUPPORT_STRINGUTILS_H
#define PCC_SUPPORT_STRINGUTILS_H

#include <cstdint>
#include <string>
#include <vector>

namespace pcc {

/// printf-style formatting into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Renders "12345678" style fixed-width hex (no 0x prefix).
std::string toHex(uint64_t Value, unsigned Width = 8);

/// Splits \p Str on \p Sep; empty fields are preserved.
std::vector<std::string> splitString(const std::string &Str, char Sep);

/// Renders a byte count as "1.5 MiB" style human-readable text.
std::string formatByteSize(uint64_t Bytes);

} // namespace pcc

#endif // PCC_SUPPORT_STRINGUTILS_H
