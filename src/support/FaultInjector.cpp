//===- support/FaultInjector.cpp ------------------------------------------===//

#include "support/FaultInjector.h"

#include "support/Random.h"
#include "support/StringUtils.h"

#include <cstdlib>

using namespace pcc;

namespace {

std::string trimmed(const std::string &Str) {
  size_t Begin = Str.find_first_not_of(" \t");
  if (Begin == std::string::npos)
    return "";
  size_t End = Str.find_last_not_of(" \t");
  return Str.substr(Begin, End - Begin + 1);
}

} // namespace

const char *pcc::faultOpName(FaultOp Op) {
  switch (Op) {
  case FaultOp::Read:
    return "read";
  case FaultOp::ShortWrite:
    return "short-write";
  case FaultOp::TornWrite:
    return "torn-write";
  case FaultOp::Enospc:
    return "enospc";
  case FaultOp::FsyncFail:
    return "fsync";
  case FaultOp::RenameFail:
    return "rename";
  case FaultOp::LockTimeout:
    return "lock";
  case FaultOp::OpCount:
    break;
  }
  return "?";
}

FaultInjector &FaultInjector::instance() {
  static FaultInjector Singleton;
  return Singleton;
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> Guard(Mutex);
  for (Rule &R : Rules)
    R = Rule();
  Armed.store(0, std::memory_order_relaxed);
}

void FaultInjector::armProbability(FaultOp Op, double P, uint64_t Seed) {
  std::lock_guard<std::mutex> Guard(Mutex);
  Rule &R = Rules[static_cast<size_t>(Op)];
  R.Kind = RuleKind::Probability;
  R.P = P;
  // Diffuse Op into the seed so rules sharing one plan seed draw
  // independent streams.
  R.RngState = Seed + 0x100 * (static_cast<uint64_t>(Op) + 1);
  recountArmed();
}

void FaultInjector::armCount(FaultOp Op, uint32_t AfterCalls,
                             uint32_t Times) {
  std::lock_guard<std::mutex> Guard(Mutex);
  Rule &R = Rules[static_cast<size_t>(Op)];
  R.Kind = RuleKind::Count;
  R.AfterCalls = AfterCalls;
  R.Times = Times;
  recountArmed();
}

void FaultInjector::disarm(FaultOp Op) {
  std::lock_guard<std::mutex> Guard(Mutex);
  Rules[static_cast<size_t>(Op)].Kind = RuleKind::Off;
  recountArmed();
}

bool FaultInjector::shouldFail(FaultOp Op) {
  std::lock_guard<std::mutex> Guard(Mutex);
  Rule &R = Rules[static_cast<size_t>(Op)];
  bool Fail = false;
  switch (R.Kind) {
  case RuleKind::Off:
    break;
  case RuleKind::Count:
    if (R.AfterCalls > 0) {
      --R.AfterCalls;
    } else {
      Fail = true;
      if (--R.Times == 0) {
        R.Kind = RuleKind::Off;
        recountArmed();
      }
    }
    break;
  case RuleKind::Probability: {
    Rng Generator(R.RngState);
    Fail = Generator.nextBool(R.P);
    R.RngState = Generator.next();
    break;
  }
  }
  if (Fail)
    ++R.Injected;
  return Fail;
}

uint64_t FaultInjector::injectedCount(FaultOp Op) const {
  std::lock_guard<std::mutex> Guard(Mutex);
  return Rules[static_cast<size_t>(Op)].Injected;
}

uint64_t FaultInjector::totalInjected() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  uint64_t Total = 0;
  for (const Rule &R : Rules)
    Total += R.Injected;
  return Total;
}

void FaultInjector::recountArmed() {
  uint32_t Count = 0;
  for (const Rule &R : Rules)
    if (R.Kind != RuleKind::Off)
      ++Count;
  Armed.store(Count, std::memory_order_relaxed);
}

Status FaultInjector::configureFromPlan(const std::string &Plan) {
  uint64_t Seed = 1;
  for (const std::string &Item : splitString(Plan, ',')) {
    std::string Trimmed = trimmed(Item);
    if (Trimmed.empty())
      continue;
    size_t Colon = Trimmed.find(':');
    if (Colon == std::string::npos || Colon == 0 ||
        Colon + 1 == Trimmed.size())
      return Status::error(ErrorCode::InvalidArgument,
                           "fault plan item needs op:value: '" + Trimmed +
                               "'");
    std::string Name = Trimmed.substr(0, Colon);
    std::string Value = Trimmed.substr(Colon + 1);
    if (Name == "seed") {
      char *End = nullptr;
      Seed = std::strtoull(Value.c_str(), &End, 10);
      if (End == Value.c_str() || *End != '\0')
        return Status::error(ErrorCode::InvalidArgument,
                             "bad fault plan seed: '" + Value + "'");
      continue;
    }
    FaultOp Op = FaultOp::OpCount;
    for (size_t I = 0; I != static_cast<size_t>(FaultOp::OpCount); ++I)
      if (Name == faultOpName(static_cast<FaultOp>(I)))
        Op = static_cast<FaultOp>(I);
    if (Op == FaultOp::OpCount)
      return Status::error(ErrorCode::InvalidArgument,
                           "unknown fault plan op: '" + Name + "'");
    if (!Value.empty() && Value[0] == '@') {
      char *End = nullptr;
      unsigned long After = std::strtoul(Value.c_str() + 1, &End, 10);
      if (End == Value.c_str() + 1 || *End != '\0')
        return Status::error(ErrorCode::InvalidArgument,
                             "bad fault plan count: '" + Value + "'");
      armCount(Op, static_cast<uint32_t>(After));
      continue;
    }
    char *End = nullptr;
    double P = std::strtod(Value.c_str(), &End);
    if (End == Value.c_str() || *End != '\0' || P < 0 || P > 1)
      return Status::error(ErrorCode::InvalidArgument,
                           "bad fault plan probability: '" + Value + "'");
    armProbability(Op, P, Seed);
  }
  return Status::success();
}
