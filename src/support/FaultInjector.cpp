//===- support/FaultInjector.cpp ------------------------------------------===//

#include "support/FaultInjector.h"

#include "support/Random.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <cstdlib>

using namespace pcc;

namespace {

std::string trimmed(const std::string &Str) {
  size_t Begin = Str.find_first_not_of(" \t");
  if (Begin == std::string::npos)
    return "";
  size_t End = Str.find_last_not_of(" \t");
  return Str.substr(Begin, End - Begin + 1);
}

/// Shortest decimal form of \p P that strtod parses back to the same
/// double, so planString() round-trips through configureFromPlan().
std::string probabilityString(double P) {
  char Buffer[32];
  for (int Precision = 1; Precision <= 17; ++Precision) {
    std::snprintf(Buffer, sizeof(Buffer), "%.*g", Precision, P);
    if (std::strtod(Buffer, nullptr) == P)
      break;
  }
  return Buffer;
}

} // namespace

const char *pcc::faultOpName(FaultOp Op) {
  switch (Op) {
  case FaultOp::Read:
    return "read";
  case FaultOp::ShortWrite:
    return "short-write";
  case FaultOp::TornWrite:
    return "torn-write";
  case FaultOp::Enospc:
    return "enospc";
  case FaultOp::FsyncFail:
    return "fsync";
  case FaultOp::RenameFail:
    return "rename";
  case FaultOp::LockTimeout:
    return "lock";
  case FaultOp::OpCount:
    break;
  }
  return "?";
}

FaultInjector &FaultInjector::instance() {
  static FaultInjector Singleton;
  return Singleton;
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> Guard(Mutex);
  for (Rule &R : Rules)
    R = Rule();
  Armed.store(0, std::memory_order_relaxed);
}

void FaultInjector::armProbability(FaultOp Op, double P, uint64_t Seed) {
  std::lock_guard<std::mutex> Guard(Mutex);
  Rule &R = Rules[static_cast<size_t>(Op)];
  R.Kind = RuleKind::Probability;
  R.P = P;
  // Diffuse Op into the seed so rules sharing one plan seed draw
  // independent streams.
  R.RngState = Seed + 0x100 * (static_cast<uint64_t>(Op) + 1);
  recountArmed();
}

void FaultInjector::armCount(FaultOp Op, uint32_t AfterCalls,
                             uint32_t Times) {
  std::lock_guard<std::mutex> Guard(Mutex);
  Rule &R = Rules[static_cast<size_t>(Op)];
  R.Kind = RuleKind::Count;
  R.AfterCalls = AfterCalls;
  R.Times = Times;
  recountArmed();
}

void FaultInjector::armReplay(FaultOp Op,
                              std::vector<uint8_t> Decisions) {
  if (Decisions.empty())
    return;
  std::lock_guard<std::mutex> Guard(Mutex);
  Rule &R = Rules[static_cast<size_t>(Op)];
  R.Kind = RuleKind::Replay;
  R.Decisions = std::move(Decisions);
  R.NextDecision = 0;
  recountArmed();
}

void FaultInjector::disarm(FaultOp Op) {
  std::lock_guard<std::mutex> Guard(Mutex);
  Rules[static_cast<size_t>(Op)].Kind = RuleKind::Off;
  recountArmed();
}

void FaultInjector::setDecisionObserver(DecisionObserver NewObserver) {
  std::lock_guard<std::mutex> Guard(Mutex);
  Observer = std::move(NewObserver);
}

bool FaultInjector::shouldFail(FaultOp Op) {
  std::lock_guard<std::mutex> Guard(Mutex);
  Rule &R = Rules[static_cast<size_t>(Op)];
  bool WasArmed = R.Kind != RuleKind::Off;
  bool Fail = false;
  switch (R.Kind) {
  case RuleKind::Off:
    break;
  case RuleKind::Count:
    if (R.AfterCalls > 0) {
      --R.AfterCalls;
    } else {
      Fail = true;
      if (--R.Times == 0) {
        R.Kind = RuleKind::Off;
        recountArmed();
      }
    }
    break;
  case RuleKind::Probability: {
    Rng Generator(R.RngState);
    Fail = Generator.nextBool(R.P);
    R.RngState = Generator.next();
    break;
  }
  case RuleKind::Replay:
    Fail = R.Decisions[R.NextDecision++] != 0;
    if (R.NextDecision == R.Decisions.size()) {
      // Disarm at the same call index where the recorded rule disarmed
      // (or the recorded run ended), keeping the enabled() timeline
      // aligned with the recording.
      R.Kind = RuleKind::Off;
      R.Decisions.clear();
      R.NextDecision = 0;
      recountArmed();
    }
    break;
  }
  if (Fail)
    ++R.Injected;
  if (WasArmed && Observer)
    Observer(Op, Fail);
  return Fail;
}

uint64_t FaultInjector::injectedCount(FaultOp Op) const {
  std::lock_guard<std::mutex> Guard(Mutex);
  return Rules[static_cast<size_t>(Op)].Injected;
}

uint64_t FaultInjector::totalInjected() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  uint64_t Total = 0;
  for (const Rule &R : Rules)
    Total += R.Injected;
  return Total;
}

std::string FaultInjector::planString() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  std::string Plan;
  auto append = [&Plan](const std::string &Item) {
    if (!Plan.empty())
      Plan += ',';
    Plan += Item;
  };
  for (size_t I = 0; I != static_cast<size_t>(FaultOp::OpCount); ++I) {
    const Rule &R = Rules[I];
    const char *Name = faultOpName(static_cast<FaultOp>(I));
    switch (R.Kind) {
    case RuleKind::Off:
    case RuleKind::Replay: // Not expressible as a plan item.
      break;
    case RuleKind::Count:
      append(std::string(Name) + ":@" + std::to_string(R.AfterCalls) +
             (R.Times == 1 ? "" : "+" + std::to_string(R.Times)));
      break;
    case RuleKind::Probability: {
      // armProbability(Op, P, Seed) sets RngState = Seed + 0x100*(Op+1);
      // invert the diffusion (mod 2^64) so re-arming from the emitted
      // seed reconstructs the exact mid-stream generator state.
      uint64_t Seed = R.RngState - 0x100 * (static_cast<uint64_t>(I) + 1);
      append("seed:" + std::to_string(Seed));
      append(std::string(Name) + ":" + probabilityString(R.P));
      break;
    }
    }
  }
  return Plan;
}

void FaultInjector::recountArmed() {
  uint32_t Count = 0;
  for (const Rule &R : Rules)
    if (R.Kind != RuleKind::Off)
      ++Count;
  Armed.store(Count, std::memory_order_relaxed);
}

Status FaultInjector::configureFromPlan(const std::string &Plan) {
  uint64_t Seed = 1;
  for (const std::string &Item : splitString(Plan, ',')) {
    std::string Trimmed = trimmed(Item);
    if (Trimmed.empty())
      continue;
    size_t Colon = Trimmed.find(':');
    if (Colon == std::string::npos || Colon == 0 ||
        Colon + 1 == Trimmed.size())
      return Status::error(ErrorCode::InvalidArgument,
                           "fault plan item needs op:value: '" + Trimmed +
                               "'");
    std::string Name = Trimmed.substr(0, Colon);
    std::string Value = Trimmed.substr(Colon + 1);
    if (Name == "seed") {
      char *End = nullptr;
      Seed = std::strtoull(Value.c_str(), &End, 10);
      if (End == Value.c_str() || *End != '\0')
        return Status::error(ErrorCode::InvalidArgument,
                             "bad fault plan seed: '" + Value + "'");
      continue;
    }
    FaultOp Op = FaultOp::OpCount;
    for (size_t I = 0; I != static_cast<size_t>(FaultOp::OpCount); ++I)
      if (Name == faultOpName(static_cast<FaultOp>(I)))
        Op = static_cast<FaultOp>(I);
    if (Op == FaultOp::OpCount)
      return Status::error(ErrorCode::InvalidArgument,
                           "unknown fault plan op: '" + Name + "'");
    if (!Value.empty() && Value[0] == '@') {
      char *End = nullptr;
      unsigned long After = std::strtoul(Value.c_str() + 1, &End, 10);
      if (End == Value.c_str() + 1)
        return Status::error(ErrorCode::InvalidArgument,
                             "bad fault plan count: '" + Value + "'");
      unsigned long Times = 1;
      if (*End == '+') {
        const char *TimesBegin = End + 1;
        Times = std::strtoul(TimesBegin, &End, 10);
        if (End == TimesBegin || Times == 0)
          return Status::error(ErrorCode::InvalidArgument,
                               "bad fault plan count: '" + Value + "'");
      }
      if (*End != '\0')
        return Status::error(ErrorCode::InvalidArgument,
                             "bad fault plan count: '" + Value + "'");
      armCount(Op, static_cast<uint32_t>(After),
               static_cast<uint32_t>(Times));
      continue;
    }
    char *End = nullptr;
    double P = std::strtod(Value.c_str(), &End);
    if (End == Value.c_str() || *End != '\0' || P < 0 || P > 1)
      return Status::error(ErrorCode::InvalidArgument,
                           "bad fault plan probability: '" + Value + "'");
    armProbability(Op, P, Seed);
  }
  return Status::success();
}
