//===- support/Error.cpp --------------------------------------------------===//

#include "support/Error.h"

using namespace pcc;

const char *pcc::errorCodeName(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::Success:
    return "success";
  case ErrorCode::NotFound:
    return "not found";
  case ErrorCode::InvalidFormat:
    return "invalid format";
  case ErrorCode::VersionMismatch:
    return "version mismatch";
  case ErrorCode::KeyMismatch:
    return "key mismatch";
  case ErrorCode::OutOfMemory:
    return "out of memory";
  case ErrorCode::IoError:
    return "io error";
  case ErrorCode::GuestFault:
    return "guest fault";
  case ErrorCode::InvalidArgument:
    return "invalid argument";
  case ErrorCode::WouldBlock:
    return "would block";
  }
  return "unknown";
}

std::string Status::toString() const {
  if (ok())
    return "success";
  std::string Result = errorCodeName(Code);
  if (!Message.empty()) {
    Result += ": ";
    Result += Message;
  }
  return Result;
}
