//===- support/Hashing.h - Deterministic hash functions ---------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching:
// Exploiting Code Reuse Across Executions and Applications" (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, platform-independent hash functions used for module keys
/// (Section 3.2.1 of the paper) and cache-file integrity checks. The
/// persistent cache format embeds these hashes on disk, so they must be
/// stable across hosts and builds: no std::hash, no pointer hashing.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_SUPPORT_HASHING_H
#define PCC_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace pcc {

/// 64-bit FNV-1a offset basis.
inline constexpr uint64_t Fnv1a64Init = 0xcbf29ce484222325ULL;

/// Feeds \p Size bytes at \p Data into a running FNV-1a state \p State.
/// Returns the updated state so calls can be chained. Named distinctly
/// from the string overload: otherwise `fnv1a64("s", State)` would bind
/// the char pointer to void* and the state to the byte count.
uint64_t fnv1a64Bytes(const void *Data, size_t Size,
                      uint64_t State = Fnv1a64Init);

/// Hashes a string (chainable through \p State).
inline uint64_t fnv1a64(std::string_view Str,
                        uint64_t State = Fnv1a64Init) {
  return fnv1a64Bytes(Str.data(), Str.size(), State);
}

/// Feeds a little-endian encoding of \p Value into \p State.
uint64_t fnv1a64U64(uint64_t Value, uint64_t State);

/// CRC-32 (IEEE 802.3 polynomial, reflected). Used as the cache-file
/// payload checksum so corruption is detected before any trace is reused.
uint32_t crc32(const void *Data, size_t Size, uint32_t Seed = 0);

/// Mixes two 64-bit hash values into one (boost::hash_combine style with a
/// 64-bit constant). Order-sensitive.
uint64_t hashCombine(uint64_t A, uint64_t B);

} // namespace pcc

#endif // PCC_SUPPORT_HASHING_H
