//===- support/ThreadPool.h - Shared fixed-size worker pool -----*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool shared by the persistence pipeline: async
/// prime payload validation, background finalize publishing, and the
/// parallel maintenance scans (pcc-dbcheck, findCompatible, stats).
///
/// Host threads here are an implementation vehicle, never part of the
/// simulation: the cost model charges modeled cycles on the engine
/// thread at the same logical points regardless of the worker count, so
/// guest-visible results are bit-identical from zero workers up.
///
/// A pool with zero workers degenerates to inline execution at submit()
/// — callers need no separate synchronous code path, and tests can
/// force deterministic single-threaded execution through the exact same
/// plumbing.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_SUPPORT_THREADPOOL_H
#define PCC_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pcc {
namespace support {

/// Fixed worker threads draining a FIFO task queue.
class ThreadPool {
public:
  /// Spawns \p Workers threads. Zero workers is valid: submit() then
  /// runs the task inline on the calling thread.
  ///
  /// With \p Background set, workers try to drop to the lowest
  /// scheduling priority (nice +19 on Linux, SCHED_OTHER minimum via
  /// pthreads elsewhere on POSIX). The demotion is best-effort: where
  /// the platform refuses — or offers no per-thread priority at all —
  /// workers run at normal priority and still drain every task; see
  /// backgroundWorkerCount(). The persistence pipeline wants this:
  /// its tasks are pure latency hiding, so they should soak up idle
  /// CPU without ever preempting the engine thread — which matters
  /// most when cores are scarce, exactly when preemption would erase
  /// the pipeline's benefit. parallelFor's calling thread keeps its
  /// own priority either way.
  explicit ThreadPool(size_t Workers, bool Background = false);

  /// Drains the queue, joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  size_t workerCount() const { return Threads.size(); }

  /// Workers whose background-priority demotion actually took effect.
  /// 0 for non-background pools and on platforms without per-thread
  /// priority control; such pools still execute tasks normally.
  size_t backgroundWorkerCount() const {
    return BackgroundWorkers.load(std::memory_order_relaxed);
  }

  /// Enqueues \p Task. With zero workers, runs it before returning.
  void submit(std::function<void()> Task);

  /// Blocks until the queue is empty and no worker is mid-task. Tasks
  /// submitted by other threads while waiting extend the wait.
  void waitAll();

  /// Runs Fn(0..N-1) across the workers, the calling thread included,
  /// and returns when every index has completed. Indices are claimed
  /// dynamically, so callers must not depend on assignment order.
  /// Nested parallelFor from inside a task would deadlock-wait on its
  /// parent and is unsupported.
  void parallelFor(size_t N, const std::function<void(size_t)> &Fn);

  /// Worker count to use when the user does not specify one.
  static size_t defaultWorkerCount();

private:
  void workerMain();

  std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::condition_variable Idle;
  std::deque<std::function<void()>> Queue;
  std::vector<std::thread> Threads;
  size_t Running = 0; ///< Tasks currently executing on workers.
  bool ShuttingDown = false;
  std::atomic<size_t> BackgroundWorkers{0}; ///< Demotions that stuck.
};

} // namespace support
} // namespace pcc

#endif // PCC_SUPPORT_THREADPOOL_H
