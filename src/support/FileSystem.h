//===- support/FileSystem.h - Host filesystem helpers -----------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-file read/write helpers used by the persistent cache database.
/// Persistent caches are real files on the host disk, exactly as in the
/// paper (Section 3.2.2: "a persistent code cache is a file stored on
/// disk").
///
//===----------------------------------------------------------------------===//

#ifndef PCC_SUPPORT_FILESYSTEM_H
#define PCC_SUPPORT_FILESYSTEM_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pcc {

/// Reads the whole file at \p Path.
ErrorOr<std::vector<uint8_t>> readFile(const std::string &Path);

/// Returns the size in bytes of the regular file at \p Path.
ErrorOr<uint64_t> fileSize(const std::string &Path);

/// Reads up to \p MaxBytes starting at byte \p Offset. Returns fewer
/// bytes (possibly zero) when the file is shorter; only I/O failures and
/// a nonexistent file are errors. Lets header-only scans touch a fixed
/// prefix of arbitrarily large cache files.
ErrorOr<std::vector<uint8_t>> readFileRange(const std::string &Path,
                                            uint64_t Offset,
                                            size_t MaxBytes);

/// Read-only view of a whole file, memory-mapped when the platform
/// supports it (falls back to a heap copy otherwise). Movable, not
/// copyable; unmapped on destruction.
class MappedFile {
public:
  MappedFile() = default;
  MappedFile(MappedFile &&Other) noexcept { *this = std::move(Other); }
  MappedFile &operator=(MappedFile &&Other) noexcept;
  MappedFile(const MappedFile &) = delete;
  MappedFile &operator=(const MappedFile &) = delete;
  ~MappedFile();

  static ErrorOr<MappedFile> open(const std::string &Path);

  const uint8_t *data() const { return Data; }
  size_t size() const { return Size; }

private:
  const uint8_t *Data = nullptr;
  size_t Size = 0;
  bool Mapped = false;
  std::vector<uint8_t> FallbackCopy;
};

/// Atomically replaces the file at \p Path with \p Bytes: write to a
/// uniquely named temporary sibling (`<path>.tmp.<pid>-<n>`, so
/// concurrent writers of one path never collide), then rename over the
/// target. With \p SyncToDisk the temporary is fsync'd before the rename
/// and the parent directory after it — the transactional-publish
/// discipline of the cache store. Parent directories must exist. On any
/// error the temporary is removed; only a genuine crash can orphan one,
/// and store maintenance sweeps those.
Status writeFileAtomic(const std::string &Path,
                       const std::vector<uint8_t> &Bytes,
                       bool SyncToDisk = false);

/// True when \p Name (not a full path) looks like a writeFileAtomic
/// temporary — what a crashed writer leaves behind.
bool isAtomicTempName(const std::string &Name);

/// Identifier of this process (for lock diagnostics and writer tags).
uint32_t currentProcessId();

/// Creates \p Path and all missing parents.
Status createDirectories(const std::string &Path);

/// True if a regular file exists at \p Path.
bool fileExists(const std::string &Path);

/// Deletes the file at \p Path if it exists (missing file is success).
Status removeFile(const std::string &Path);

/// Atomically renames \p From to \p To (same filesystem), replacing any
/// existing file at \p To.
Status renameFile(const std::string &From, const std::string &To);

/// Lists regular files directly inside \p Dir (names only, sorted).
ErrorOr<std::vector<std::string>> listDirectory(const std::string &Dir);

/// Creates a fresh unique directory under the system temp directory with
/// the given prefix and returns its path. Used by tests and benches.
ErrorOr<std::string> createUniqueTempDir(const std::string &Prefix);

/// Recursively deletes \p Path (for temp-dir cleanup).
Status removeRecursively(const std::string &Path);

} // namespace pcc

#endif // PCC_SUPPORT_FILESYSTEM_H
