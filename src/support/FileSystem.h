//===- support/FileSystem.h - Host filesystem helpers -----------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-file read/write helpers used by the persistent cache database.
/// Persistent caches are real files on the host disk, exactly as in the
/// paper (Section 3.2.2: "a persistent code cache is a file stored on
/// disk").
///
//===----------------------------------------------------------------------===//

#ifndef PCC_SUPPORT_FILESYSTEM_H
#define PCC_SUPPORT_FILESYSTEM_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pcc {

/// Reads the whole file at \p Path.
ErrorOr<std::vector<uint8_t>> readFile(const std::string &Path);

/// Atomically replaces the file at \p Path with \p Bytes (write to a
/// temporary sibling, then rename). Parent directories must exist.
Status writeFileAtomic(const std::string &Path,
                       const std::vector<uint8_t> &Bytes);

/// Creates \p Path and all missing parents.
Status createDirectories(const std::string &Path);

/// True if a regular file exists at \p Path.
bool fileExists(const std::string &Path);

/// Deletes the file at \p Path if it exists (missing file is success).
Status removeFile(const std::string &Path);

/// Lists regular files directly inside \p Dir (names only, sorted).
ErrorOr<std::vector<std::string>> listDirectory(const std::string &Dir);

/// Creates a fresh unique directory under the system temp directory with
/// the given prefix and returns its path. Used by tests and benches.
ErrorOr<std::string> createUniqueTempDir(const std::string &Prefix);

/// Recursively deletes \p Path (for temp-dir cleanup).
Status removeRecursively(const std::string &Path);

} // namespace pcc

#endif // PCC_SUPPORT_FILESYSTEM_H
