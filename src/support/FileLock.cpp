//===- support/FileLock.cpp -----------------------------------------------===//

#include "support/FileLock.h"

#include "support/FaultInjector.h"

#include <cerrno>

#if defined(__unix__) || defined(__APPLE__)
#define PCC_HAVE_FLOCK 1
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#endif

using namespace pcc;

FileLock &FileLock::operator=(FileLock &&Other) noexcept {
  if (this == &Other)
    return *this;
  release();
  Fd = Other.Fd;
  Degraded = Other.Degraded;
  LockPath = std::move(Other.LockPath);
  Other.Fd = -1;
  Other.Degraded = false;
  Other.LockPath.clear();
  return *this;
}

void FileLock::release() {
#if PCC_HAVE_FLOCK
  if (Fd >= 0) {
    ::flock(Fd, LOCK_UN);
    ::close(Fd);
  }
#endif
  Fd = -1;
  Degraded = false;
}

#if PCC_HAVE_FLOCK

static ErrorOr<int> lockedFd(const std::string &Path, FileLock::Mode M,
                             bool Blocking) {
  // Injected contention: report the lock as held elsewhere. Blocking
  // callers see it too — a simulated timeout, not an infinite wait.
  FaultInjector &Injector = FaultInjector::instance();
  if (Injector.enabled() && Injector.shouldFail(FaultOp::LockTimeout))
    return Status::error(ErrorCode::WouldBlock,
                         "(injected) lock timeout: " + Path);
  int Fd = ::open(Path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0666);
  if (Fd < 0)
    return Status::error(ErrorCode::IoError,
                         "cannot open lock file " + Path);
  int Op = (M == FileLock::Mode::Shared ? LOCK_SH : LOCK_EX) |
           (Blocking ? 0 : LOCK_NB);
  while (::flock(Fd, Op) != 0) {
    if (!Blocking && (errno == EWOULDBLOCK || errno == EAGAIN)) {
      ::close(Fd);
      return Status::error(ErrorCode::WouldBlock,
                           "lock held elsewhere: " + Path);
    }
    if (errno == EINTR)
      continue;
    ::close(Fd);
    return Status::error(ErrorCode::IoError, "cannot lock " + Path);
  }
  return Fd;
}

ErrorOr<FileLock> FileLock::acquire(const std::string &Path, Mode M) {
  auto Fd = lockedFd(Path, M, /*Blocking=*/true);
  if (!Fd)
    return Fd.status();
  FileLock Lock;
  Lock.LockPath = Path;
  Lock.Fd = *Fd;
  return Lock;
}

ErrorOr<FileLock> FileLock::tryAcquire(const std::string &Path, Mode M) {
  auto Fd = lockedFd(Path, M, /*Blocking=*/false);
  if (!Fd)
    return Fd.status();
  FileLock Lock;
  Lock.LockPath = Path;
  Lock.Fd = *Fd;
  return Lock;
}

bool pcc::isFileLockHeld(const std::string &Path) {
  // Probe with a non-blocking exclusive request on the existing inode;
  // do not create the file (a pure probe must not leave state behind).
  int Fd = ::open(Path.c_str(), O_RDWR | O_CLOEXEC);
  if (Fd < 0)
    return false;
  bool Held = false;
  if (::flock(Fd, LOCK_EX | LOCK_NB) != 0)
    Held = errno == EWOULDBLOCK || errno == EAGAIN;
  else
    ::flock(Fd, LOCK_UN);
  ::close(Fd);
  return Held;
}

#else // !PCC_HAVE_FLOCK

ErrorOr<FileLock> FileLock::acquire(const std::string &Path, Mode) {
  FileLock Lock;
  Lock.LockPath = Path;
  Lock.Degraded = true;
  return Lock;
}

ErrorOr<FileLock> FileLock::tryAcquire(const std::string &Path, Mode M) {
  return acquire(Path, M);
}

bool pcc::isFileLockHeld(const std::string &) { return false; }

#endif
