//===- support/FileLock.h - Advisory file locking ---------------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAII advisory file locks (flock) for multi-process coordination on the
/// persistent cache database. The paper's motivating deployments — a GUI
/// desktop sharing library caches, an Oracle server with many worker
/// processes — have concurrent sessions racing on the same cache files;
/// every mutating store operation brackets itself with these locks.
///
/// Locks are advisory: readers never block (scans and priming stay
/// lock-free; the atomic-rename publish discipline keeps files readable
/// at every instant), only writers serialize. On platforms without flock
/// the lock degrades to a successful no-op, preserving the historical
/// single-process behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_SUPPORT_FILELOCK_H
#define PCC_SUPPORT_FILELOCK_H

#include "support/Error.h"

#include <string>

namespace pcc {

/// An acquired advisory lock on a lock file. Movable, not copyable;
/// released on destruction. The lock file itself is created on demand
/// and intentionally never deleted (deleting a lock file while another
/// process holds its inode would split future contenders onto a fresh
/// inode and break mutual exclusion).
class FileLock {
public:
  enum class Mode : uint8_t {
    Shared,    ///< Held concurrently by many (per-slot writers).
    Exclusive, ///< Sole holder (store-wide maintenance).
  };

  FileLock() = default;
  FileLock(FileLock &&Other) noexcept { *this = std::move(Other); }
  FileLock &operator=(FileLock &&Other) noexcept;
  FileLock(const FileLock &) = delete;
  FileLock &operator=(const FileLock &) = delete;
  ~FileLock() { release(); }

  /// Blocking acquire of \p Path in \p M mode, creating the lock file if
  /// needed.
  static ErrorOr<FileLock> acquire(const std::string &Path,
                                   Mode M = Mode::Exclusive);

  /// Non-blocking acquire. A conflicting holder yields
  /// ErrorCode::WouldBlock.
  static ErrorOr<FileLock> tryAcquire(const std::string &Path,
                                      Mode M = Mode::Exclusive);

  bool held() const { return Fd >= 0 || Degraded; }
  const std::string &path() const { return LockPath; }

  /// Releases early (idempotent).
  void release();

private:
  int Fd = -1;          ///< POSIX lock fd; -1 when not held.
  bool Degraded = false; ///< Held as a no-op (platform without flock).
  std::string LockPath;
};

/// Probe: true when some process currently holds a conflicting
/// (exclusive-vs-anything) lock on \p Path. Used by operator tooling
/// (`pcc-dbstat --locks`); the answer is inherently racy and only
/// advisory. A missing lock file reports false.
bool isFileLockHeld(const std::string &Path);

} // namespace pcc

#endif // PCC_SUPPORT_FILELOCK_H
