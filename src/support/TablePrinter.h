//===- support/TablePrinter.h - Aligned text tables -------------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Formats rows of cells into an aligned text table. Every bench binary
/// reproduces one of the paper's tables or figures and prints it through
/// this class so the output is uniform and diffable.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_SUPPORT_TABLEPRINTER_H
#define PCC_SUPPORT_TABLEPRINTER_H

#include <string>
#include <vector>

namespace pcc {

/// Accumulates rows and renders them with columns padded to the widest
/// cell. The first addRow() call defines the header.
class TablePrinter {
public:
  explicit TablePrinter(std::string Title = "") : Title(std::move(Title)) {}

  /// Appends one row; all rows may have different cell counts (short rows
  /// leave trailing columns empty).
  void addRow(std::vector<std::string> Cells);

  /// Inserts a horizontal separator line after the current last row.
  void addSeparator();

  /// Renders the table (title, header separator after row 0, rows).
  std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

private:
  std::string Title;
  std::vector<std::vector<std::string>> Rows;
  std::vector<size_t> SeparatorAfter;
};

} // namespace pcc

#endif // PCC_SUPPORT_TABLEPRINTER_H
