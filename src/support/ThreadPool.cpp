//===- support/ThreadPool.cpp ---------------------------------------------===//

#include "support/ThreadPool.h"

#include <atomic>
#include <memory>

#ifdef __linux__
#include <cerrno>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#elif defined(__unix__) || defined(__APPLE__)
#include <pthread.h>
#include <sched.h>
#endif

using namespace pcc;
using namespace pcc::support;

namespace {

/// Drops the calling thread to the lowest scheduling priority. Returns
/// whether the demotion actually took effect — background mode is a
/// hint, and a pool whose platform cannot honor it must still run its
/// tasks at normal priority rather than fail.
bool enterBackgroundPriority() {
#ifdef __linux__
  // Raising one's own nice value needs no privilege, and on Linux
  // setpriority() with a tid affects just this thread. setpriority()
  // can legitimately return -1 as a prior nice value, so success is
  // errno staying clear, not the return value.
  errno = 0;
  if (setpriority(PRIO_PROCESS, static_cast<id_t>(syscall(SYS_gettid)),
                  19) == -1 &&
      errno != 0)
    return false;
  return true;
#elif defined(__unix__) || defined(__APPLE__)
  // Portable POSIX fallback: pin this thread to the bottom of the
  // default scheduling class.
  sched_param Param{};
  Param.sched_priority = sched_get_priority_min(SCHED_OTHER);
  return pthread_setschedparam(pthread_self(), SCHED_OTHER, &Param) == 0;
#else
  return false; // No per-thread priority control on this platform.
#endif
}

} // namespace

ThreadPool::ThreadPool(size_t Workers, bool Background) {
  Threads.reserve(Workers);
  for (size_t I = 0; I != Workers; ++I)
    Threads.emplace_back([this, Background] {
      if (Background && enterBackgroundPriority())
        BackgroundWorkers.fetch_add(1, std::memory_order_relaxed);
      workerMain();
    });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void ThreadPool::workerMain() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(
          Lock, [this] { return ShuttingDown || !Queue.empty(); });
      if (Queue.empty())
        return; // Shutting down with nothing left to drain.
      Task = std::move(Queue.front());
      Queue.pop_front();
      ++Running;
    }
    Task();
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      --Running;
      if (Queue.empty() && Running == 0)
        Idle.notify_all();
    }
  }
}

void ThreadPool::submit(std::function<void()> Task) {
  if (Threads.empty()) {
    Task(); // Inline degenerate mode: same API, synchronous execution.
    return;
  }
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Task));
  }
  WorkAvailable.notify_one();
}

void ThreadPool::waitAll() {
  std::unique_lock<std::mutex> Lock(Mutex);
  Idle.wait(Lock, [this] { return Queue.empty() && Running == 0; });
}

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  if (Threads.empty() || N == 1) {
    for (size_t I = 0; I != N; ++I)
      Fn(I);
    return;
  }
  // Per-call completion state: waitAll() would also wait on unrelated
  // tasks sharing the pool (e.g. a background finalize in flight).
  struct LoopState {
    std::atomic<size_t> Next{0};
    std::atomic<size_t> Done{0};
    std::mutex Mutex;
    std::condition_variable AllDone;
  };
  auto State = std::make_shared<LoopState>();
  auto Drain = [State, N, &Fn] {
    size_t Completed = 0;
    for (;;) {
      size_t I = State->Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= N)
        break;
      Fn(I);
      ++Completed;
    }
    if (Completed == 0)
      return;
    size_t Total =
        State->Done.fetch_add(Completed, std::memory_order_acq_rel) +
        Completed;
    if (Total == N) {
      std::unique_lock<std::mutex> Lock(State->Mutex);
      State->AllDone.notify_all();
    }
  };
  size_t Helpers = std::min(Threads.size(), N - 1);
  for (size_t I = 0; I != Helpers; ++I)
    submit(Drain);
  // The calling thread participates, so progress never depends on the
  // pool being free of longer-running tasks.
  Drain();
  std::unique_lock<std::mutex> Lock(State->Mutex);
  State->AllDone.wait(Lock, [&] {
    return State->Done.load(std::memory_order_acquire) == N;
  });
}

size_t ThreadPool::defaultWorkerCount() {
  unsigned Hw = std::thread::hardware_concurrency();
  return Hw > 1 ? Hw - 1 : 1;
}
