//===- isa/Instruction.h - Guest instruction encoding -----------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decoded form of a guest instruction plus its fixed 8-byte encoding:
///
///   byte 0: opcode
///   byte 1: Rd   (destination register)
///   byte 2: Rs1  (source register 1 / base / indirect target)
///   byte 3: Rs2  (source register 2 / store value)
///   bytes 4..7: Imm, little-endian 32 bits (sign interpretation per op)
///
/// Factory functions build well-formed instructions; decode() validates
/// raw bytes so the VM never executes junk.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_ISA_INSTRUCTION_H
#define PCC_ISA_INSTRUCTION_H

#include "isa/Opcode.h"
#include "support/Error.h"

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

namespace pcc {
namespace isa {

/// A guest code address. The guest address space is 32-bit.
using GuestAddr = uint32_t;

/// One decoded guest instruction.
struct Instruction {
  Opcode Op = Opcode::Nop;
  uint8_t Rd = 0;
  uint8_t Rs1 = 0;
  uint8_t Rs2 = 0;
  uint32_t Imm = 0;

  bool operator==(const Instruction &Other) const = default;

  /// Encodes into the fixed 8-byte form.
  std::array<uint8_t, InstructionSize> encode() const;

  /// Appends the encoding to \p Out.
  void encodeTo(std::vector<uint8_t> &Out) const;

  /// Decodes 8 bytes; fails on invalid opcode or register fields.
  static ErrorOr<Instruction> decode(const uint8_t *Bytes);

  /// Renders "add r1, r2, r3" style disassembly.
  std::string toString() const;

  /// \returns the absolute branch/call target, valid only when
  /// hasCodeTarget(Op).
  GuestAddr codeTarget() const { return Imm; }
};

/// The in-memory Instruction layout matches the on-disk 8-byte encoding
/// field for field, which is what lets execute-in-place consumers
/// reinterpret mapped payload bytes as Instruction arrays without a
/// decode+copy step. Pin the layout so a drift breaks the build, not
/// the cache format.
static_assert(sizeof(Instruction) == InstructionSize,
              "Instruction must occupy exactly its encoded size");
static_assert(std::is_trivially_copyable_v<Instruction>,
              "Instruction must be bitwise-copyable for XIP mappings");
static_assert(offsetof(Instruction, Op) == 0 &&
                  offsetof(Instruction, Rd) == 1 &&
                  offsetof(Instruction, Rs1) == 2 &&
                  offsetof(Instruction, Rs2) == 3 &&
                  offsetof(Instruction, Imm) == 4,
              "Instruction field order must match the encoding");

/// True when this host can execute mapped instruction bytes in place:
/// the struct layout equals the encoding (asserted above) and the host
/// is little-endian like the on-disk Imm field. Big-endian hosts fall
/// back to the materializing (decode+copy) prime path.
inline constexpr bool HostExecutesInPlace =
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    true;
#else
    false;
#endif

/// Validates \p Count reinterpret-cast instructions in place: every
/// opcode below NumOpcodes and every register field below NumRegisters.
/// The XIP equivalent of decode()'s field checks — the executor indexes
/// the register file unchecked, so mapped bodies must be scanned before
/// first execution even when their CRC is intact.
bool validInPlace(const Instruction *Insts, size_t Count);

/// \name Factory functions
/// Builders assert register indices in range so malformed programs fail
/// at construction, not execution.
/// @{
Instruction makeNop();
Instruction makeHalt();
Instruction makeAlu(Opcode Op, unsigned Rd, unsigned Rs1, unsigned Rs2);
Instruction makeAluImm(Opcode Op, unsigned Rd, unsigned Rs1, uint32_t Imm);
Instruction makeLdi(unsigned Rd, uint32_t Imm);
Instruction makeLoad(unsigned Rd, unsigned Base, int32_t Offset);
Instruction makeStore(unsigned Base, int32_t Offset, unsigned Src);
Instruction makeBranch(Opcode Op, unsigned Rs1, unsigned Rs2,
                       GuestAddr Target);
Instruction makeJmp(GuestAddr Target);
Instruction makeJr(unsigned Rs1);
Instruction makeCall(GuestAddr Target);
Instruction makeCallr(unsigned Rs1);
Instruction makeRet();
Instruction makeSys(uint32_t Number);
/// @}

/// A decode failure located within a byte buffer: which instruction
/// slot could not be decoded and why. Consumers that scan untrusted
/// bytes (the CFG builder, `pcc-dbcheck --deep`) report this instead of
/// aborting on truncated or garbage input.
struct DecodeError {
  /// Byte offset of the faulting instruction's first byte.
  size_t ByteOffset = 0;
  /// Instruction slot (ByteOffset / InstructionSize).
  size_t InstIndex = 0;
  /// Underlying cause (InvalidFormat: bad opcode/register fields, or a
  /// trailing partial instruction).
  std::string Reason;

  /// Renders "instruction 3 (byte offset 24): ...".
  std::string toString() const;
  /// The error as a Status (always InvalidFormat).
  Status toStatus() const;
};

/// The decoded prefix of a byte buffer plus why decoding stopped early,
/// if it did.
struct DecodeResult {
  std::vector<Instruction> Insts; ///< Longest valid prefix.
  std::optional<DecodeError> Error;

  bool complete() const { return !Error.has_value(); }
};

/// Length-aware decoding: decodes the longest valid instruction prefix
/// of [\p Bytes, \p Bytes + \p NumBytes), never reading past the end of
/// the buffer. A trailing partial instruction or an invalid encoding
/// stops decoding with a located DecodeError rather than over-reading
/// or asserting.
DecodeResult decodeBuffer(const uint8_t *Bytes, size_t NumBytes);

/// Decodes \p Count instructions starting at \p Bytes. The error of a
/// failed decode carries the instruction index and byte offset.
ErrorOr<std::vector<Instruction>> decodeAll(const uint8_t *Bytes,
                                            size_t Count);

/// Encodes a sequence of instructions into contiguous bytes.
std::vector<uint8_t> encodeAll(const std::vector<Instruction> &Insts);

} // namespace isa
} // namespace pcc

#endif // PCC_ISA_INSTRUCTION_H
