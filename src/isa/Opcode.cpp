//===- isa/Opcode.cpp -----------------------------------------------------===//

#include "isa/Opcode.h"

#include <cassert>

using namespace pcc;
using namespace pcc::isa;

bool pcc::isa::isControlFlow(Opcode Op) {
  switch (Op) {
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Bltu:
  case Opcode::Bgeu:
  case Opcode::Jmp:
  case Opcode::Jr:
  case Opcode::Call:
  case Opcode::Callr:
  case Opcode::Ret:
  case Opcode::Halt:
  case Opcode::Sys:
    return true;
  default:
    return false;
  }
}

bool pcc::isa::isTraceTerminator(Opcode Op) {
  switch (Op) {
  case Opcode::Jmp:
  case Opcode::Jr:
  case Opcode::Call:
  case Opcode::Callr:
  case Opcode::Ret:
  case Opcode::Halt:
  case Opcode::Sys:
    return true;
  default:
    return false;
  }
}

bool pcc::isa::isConditionalBranch(Opcode Op) {
  switch (Op) {
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Bltu:
  case Opcode::Bgeu:
    return true;
  default:
    return false;
  }
}

bool pcc::isa::hasCodeTarget(Opcode Op) {
  switch (Op) {
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Bltu:
  case Opcode::Bgeu:
  case Opcode::Jmp:
  case Opcode::Call:
    return true;
  default:
    return false;
  }
}

bool pcc::isa::isMemoryAccess(Opcode Op) {
  return Op == Opcode::Ld || Op == Opcode::St;
}

const char *pcc::isa::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Nop:
    return "nop";
  case Opcode::Halt:
    return "halt";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Divu:
    return "divu";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::Sltu:
    return "sltu";
  case Opcode::Seq:
    return "seq";
  case Opcode::Addi:
    return "addi";
  case Opcode::Muli:
    return "muli";
  case Opcode::Andi:
    return "andi";
  case Opcode::Ori:
    return "ori";
  case Opcode::Xori:
    return "xori";
  case Opcode::Shli:
    return "shli";
  case Opcode::Shri:
    return "shri";
  case Opcode::Sltiu:
    return "sltiu";
  case Opcode::Ldi:
    return "ldi";
  case Opcode::Ld:
    return "ld";
  case Opcode::St:
    return "st";
  case Opcode::Beq:
    return "beq";
  case Opcode::Bne:
    return "bne";
  case Opcode::Bltu:
    return "bltu";
  case Opcode::Bgeu:
    return "bgeu";
  case Opcode::Jmp:
    return "jmp";
  case Opcode::Jr:
    return "jr";
  case Opcode::Call:
    return "call";
  case Opcode::Callr:
    return "callr";
  case Opcode::Ret:
    return "ret";
  case Opcode::Sys:
    return "sys";
  case Opcode::NumOpcodes:
    break;
  }
  assert(false && "invalid opcode");
  return "invalid";
}
