//===- isa/Instruction.cpp ------------------------------------------------===//

#include "isa/Instruction.h"

#include "support/StringUtils.h"

#include <cassert>

using namespace pcc;
using namespace pcc::isa;

std::array<uint8_t, InstructionSize> Instruction::encode() const {
  std::array<uint8_t, InstructionSize> Bytes{};
  Bytes[0] = static_cast<uint8_t>(Op);
  Bytes[1] = Rd;
  Bytes[2] = Rs1;
  Bytes[3] = Rs2;
  for (unsigned I = 0; I != 4; ++I)
    Bytes[4 + I] = static_cast<uint8_t>(Imm >> (8 * I));
  return Bytes;
}

void Instruction::encodeTo(std::vector<uint8_t> &Out) const {
  auto Bytes = encode();
  Out.insert(Out.end(), Bytes.begin(), Bytes.end());
}

ErrorOr<Instruction> Instruction::decode(const uint8_t *Bytes) {
  if (Bytes[0] >= static_cast<uint8_t>(Opcode::NumOpcodes))
    return Status::error(ErrorCode::InvalidFormat,
                         formatString("invalid opcode byte 0x%02x",
                                      Bytes[0]));
  Instruction Inst;
  Inst.Op = static_cast<Opcode>(Bytes[0]);
  Inst.Rd = Bytes[1];
  Inst.Rs1 = Bytes[2];
  Inst.Rs2 = Bytes[3];
  if (Inst.Rd >= NumRegisters || Inst.Rs1 >= NumRegisters ||
      Inst.Rs2 >= NumRegisters)
    return Status::error(ErrorCode::InvalidFormat,
                         "register field out of range");
  Inst.Imm = 0;
  for (unsigned I = 0; I != 4; ++I)
    Inst.Imm |= static_cast<uint32_t>(Bytes[4 + I]) << (8 * I);
  return Inst;
}

std::string Instruction::toString() const {
  const char *Name = opcodeName(Op);
  switch (Op) {
  case Opcode::Nop:
  case Opcode::Halt:
  case Opcode::Ret:
    return Name;
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Divu:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::Sltu:
  case Opcode::Seq:
    return formatString("%s r%u, r%u, r%u", Name, Rd, Rs1, Rs2);
  case Opcode::Addi:
  case Opcode::Muli:
  case Opcode::Andi:
  case Opcode::Ori:
  case Opcode::Xori:
  case Opcode::Shli:
  case Opcode::Shri:
  case Opcode::Sltiu:
    return formatString("%s r%u, r%u, %d", Name, Rd, Rs1,
                        static_cast<int32_t>(Imm));
  case Opcode::Ldi:
    return formatString("%s r%u, 0x%x", Name, Rd, Imm);
  case Opcode::Ld:
    return formatString("%s r%u, [r%u%+d]", Name, Rd, Rs1,
                        static_cast<int32_t>(Imm));
  case Opcode::St:
    return formatString("%s [r%u%+d], r%u", Name, Rs1,
                        static_cast<int32_t>(Imm), Rs2);
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Bltu:
  case Opcode::Bgeu:
    return formatString("%s r%u, r%u, 0x%x", Name, Rs1, Rs2, Imm);
  case Opcode::Jmp:
  case Opcode::Call:
    return formatString("%s 0x%x", Name, Imm);
  case Opcode::Jr:
  case Opcode::Callr:
    return formatString("%s r%u", Name, Rs1);
  case Opcode::Sys:
    return formatString("%s %u", Name, Imm);
  case Opcode::NumOpcodes:
    break;
  }
  assert(false && "invalid opcode");
  return "invalid";
}

static void checkReg(unsigned Reg) {
  assert(Reg < NumRegisters && "register index out of range");
  (void)Reg;
}

Instruction pcc::isa::makeNop() { return Instruction(); }

Instruction pcc::isa::makeHalt() {
  Instruction Inst;
  Inst.Op = Opcode::Halt;
  return Inst;
}

Instruction pcc::isa::makeAlu(Opcode Op, unsigned Rd, unsigned Rs1,
                              unsigned Rs2) {
  assert(Op >= Opcode::Add && Op <= Opcode::Seq && "not a reg-reg ALU op");
  checkReg(Rd);
  checkReg(Rs1);
  checkReg(Rs2);
  Instruction Inst;
  Inst.Op = Op;
  Inst.Rd = static_cast<uint8_t>(Rd);
  Inst.Rs1 = static_cast<uint8_t>(Rs1);
  Inst.Rs2 = static_cast<uint8_t>(Rs2);
  return Inst;
}

Instruction pcc::isa::makeAluImm(Opcode Op, unsigned Rd, unsigned Rs1,
                                 uint32_t Imm) {
  assert(Op >= Opcode::Addi && Op <= Opcode::Sltiu &&
         "not a reg-imm ALU op");
  checkReg(Rd);
  checkReg(Rs1);
  Instruction Inst;
  Inst.Op = Op;
  Inst.Rd = static_cast<uint8_t>(Rd);
  Inst.Rs1 = static_cast<uint8_t>(Rs1);
  Inst.Imm = Imm;
  return Inst;
}

Instruction pcc::isa::makeLdi(unsigned Rd, uint32_t Imm) {
  checkReg(Rd);
  Instruction Inst;
  Inst.Op = Opcode::Ldi;
  Inst.Rd = static_cast<uint8_t>(Rd);
  Inst.Imm = Imm;
  return Inst;
}

Instruction pcc::isa::makeLoad(unsigned Rd, unsigned Base, int32_t Offset) {
  checkReg(Rd);
  checkReg(Base);
  Instruction Inst;
  Inst.Op = Opcode::Ld;
  Inst.Rd = static_cast<uint8_t>(Rd);
  Inst.Rs1 = static_cast<uint8_t>(Base);
  Inst.Imm = static_cast<uint32_t>(Offset);
  return Inst;
}

Instruction pcc::isa::makeStore(unsigned Base, int32_t Offset,
                                unsigned Src) {
  checkReg(Base);
  checkReg(Src);
  Instruction Inst;
  Inst.Op = Opcode::St;
  Inst.Rs1 = static_cast<uint8_t>(Base);
  Inst.Rs2 = static_cast<uint8_t>(Src);
  Inst.Imm = static_cast<uint32_t>(Offset);
  return Inst;
}

Instruction pcc::isa::makeBranch(Opcode Op, unsigned Rs1, unsigned Rs2,
                                 GuestAddr Target) {
  assert(isConditionalBranch(Op) && "not a conditional branch");
  checkReg(Rs1);
  checkReg(Rs2);
  Instruction Inst;
  Inst.Op = Op;
  Inst.Rs1 = static_cast<uint8_t>(Rs1);
  Inst.Rs2 = static_cast<uint8_t>(Rs2);
  Inst.Imm = Target;
  return Inst;
}

Instruction pcc::isa::makeJmp(GuestAddr Target) {
  Instruction Inst;
  Inst.Op = Opcode::Jmp;
  Inst.Imm = Target;
  return Inst;
}

Instruction pcc::isa::makeJr(unsigned Rs1) {
  checkReg(Rs1);
  Instruction Inst;
  Inst.Op = Opcode::Jr;
  Inst.Rs1 = static_cast<uint8_t>(Rs1);
  return Inst;
}

Instruction pcc::isa::makeCall(GuestAddr Target) {
  Instruction Inst;
  Inst.Op = Opcode::Call;
  Inst.Imm = Target;
  return Inst;
}

Instruction pcc::isa::makeCallr(unsigned Rs1) {
  checkReg(Rs1);
  Instruction Inst;
  Inst.Op = Opcode::Callr;
  Inst.Rs1 = static_cast<uint8_t>(Rs1);
  return Inst;
}

Instruction pcc::isa::makeRet() {
  Instruction Inst;
  Inst.Op = Opcode::Ret;
  return Inst;
}

Instruction pcc::isa::makeSys(uint32_t Number) {
  Instruction Inst;
  Inst.Op = Opcode::Sys;
  Inst.Imm = Number;
  return Inst;
}

bool pcc::isa::validInPlace(const Instruction *Insts, size_t Count) {
  for (size_t I = 0; I != Count; ++I) {
    const Instruction &Inst = Insts[I];
    if (static_cast<uint8_t>(Inst.Op) >=
            static_cast<uint8_t>(Opcode::NumOpcodes) ||
        Inst.Rd >= NumRegisters || Inst.Rs1 >= NumRegisters ||
        Inst.Rs2 >= NumRegisters)
      return false;
  }
  return true;
}

std::string DecodeError::toString() const {
  return formatString("instruction %zu (byte offset %zu): %s", InstIndex,
                      ByteOffset, Reason.c_str());
}

Status DecodeError::toStatus() const {
  return Status::error(ErrorCode::InvalidFormat, toString());
}

DecodeResult pcc::isa::decodeBuffer(const uint8_t *Bytes,
                                    size_t NumBytes) {
  DecodeResult Result;
  size_t Count = NumBytes / InstructionSize;
  Result.Insts.reserve(Count);
  for (size_t I = 0; I != Count; ++I) {
    auto Inst = Instruction::decode(Bytes + I * InstructionSize);
    if (!Inst) {
      Result.Error = DecodeError{I * InstructionSize, I,
                                 Inst.status().message()};
      return Result;
    }
    Result.Insts.push_back(*Inst);
  }
  if (NumBytes % InstructionSize != 0)
    Result.Error = DecodeError{
        Count * InstructionSize, Count,
        formatString("truncated instruction: %zu trailing byte(s)",
                     NumBytes % InstructionSize)};
  return Result;
}

ErrorOr<std::vector<Instruction>> pcc::isa::decodeAll(const uint8_t *Bytes,
                                                      size_t Count) {
  std::vector<Instruction> Insts;
  Insts.reserve(Count);
  for (size_t I = 0; I != Count; ++I) {
    auto Inst = Instruction::decode(Bytes + I * InstructionSize);
    if (!Inst)
      return DecodeError{I * InstructionSize, I,
                         Inst.status().message()}
          .toStatus();
    Insts.push_back(*Inst);
  }
  return Insts;
}

std::vector<uint8_t> pcc::isa::encodeAll(
    const std::vector<Instruction> &Insts) {
  std::vector<uint8_t> Bytes;
  Bytes.reserve(Insts.size() * InstructionSize);
  for (const Instruction &Inst : Insts)
    Inst.encodeTo(Bytes);
  return Bytes;
}
