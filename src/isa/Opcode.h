//===- isa/Opcode.h - Guest ISA opcode definitions --------------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Opcodes of the synthetic guest ISA. The ISA stands in for IA32 in the
/// paper's setup; what matters for persistent code caching is the
/// control-flow classification: traces end at *unconditional* control
/// transfers (Section 2.1), and all control transfers use absolute target
/// addresses so that persisted translations break when a module is
/// relocated (Section 3.2.3).
///
//===----------------------------------------------------------------------===//

#ifndef PCC_ISA_OPCODE_H
#define PCC_ISA_OPCODE_H

#include <cstdint>

namespace pcc {
namespace isa {

/// Guest instruction opcodes. Fixed 8-byte encoding; see Instruction.
enum class Opcode : uint8_t {
  // No-ops and program termination.
  Nop = 0,
  Halt,

  // Register-register ALU: Rd = Rs1 op Rs2.
  Add,
  Sub,
  Mul,
  Divu, ///< Unsigned divide; divide-by-zero yields 0 (guest-visible rule).
  And,
  Or,
  Xor,
  Shl, ///< Shift amount masked to 5 bits.
  Shr,
  Sltu, ///< Rd = (Rs1 < Rs2) unsigned.
  Seq,  ///< Rd = (Rs1 == Rs2).

  // Register-immediate ALU: Rd = Rs1 op Imm (Imm sign behavior per op).
  Addi,
  Muli,
  Andi,
  Ori,
  Xori,
  Shli,
  Shri,
  Sltiu,
  Ldi, ///< Rd = Imm (32-bit immediate load).

  // Memory: 32-bit words, little-endian guest memory.
  Ld, ///< Rd = mem32[Rs1 + signext(Imm)].
  St, ///< mem32[Rs1 + signext(Imm)] = Rs2.

  // Conditional branches: absolute target address in Imm.
  Beq,
  Bne,
  Bltu,
  Bgeu,

  // Unconditional control transfers (trace enders).
  Jmp,   ///< pc = Imm.
  Jr,    ///< pc = Rs1.
  Call,  ///< push(pc + 8); pc = Imm.
  Callr, ///< push(pc + 8); pc = Rs1.
  Ret,   ///< pc = pop().

  // System call: number in Imm, args/result in r1..r3. Exits the code
  // cache to the VM's emulation unit, so it also ends a trace.
  Sys,

  NumOpcodes
};

/// Number of general-purpose registers. r15 is the stack pointer by
/// software convention (Call/Ret push/pop through it).
inline constexpr unsigned NumRegisters = 16;

/// Register index used as the stack pointer by Call/Ret.
inline constexpr unsigned StackPointerReg = 15;

/// Bytes per encoded instruction.
inline constexpr unsigned InstructionSize = 8;

/// True for any instruction that can change the PC non-sequentially.
bool isControlFlow(Opcode Op);

/// True for unconditional control transfers and Halt/Sys: these terminate
/// trace selection (execution cannot fall through them).
bool isTraceTerminator(Opcode Op);

/// True for Beq/Bne/Bltu/Bgeu.
bool isConditionalBranch(Opcode Op);

/// True for instructions whose Imm field holds an absolute code address
/// (conditional branches, Jmp, Call). These are the instructions whose
/// translations embed absolute addresses and therefore pin a persisted
/// trace to its original load address.
bool hasCodeTarget(Opcode Op);

/// True for Ld/St.
bool isMemoryAccess(Opcode Op);

/// Mnemonic for disassembly ("add", "beq", ...).
const char *opcodeName(Opcode Op);

} // namespace isa
} // namespace pcc

#endif // PCC_ISA_OPCODE_H
