//===- vm/Cpu.h - Guest CPU state and syscall environment -------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Guest-visible machine state: 16 general-purpose registers plus PC, and
/// the syscall environment (the VM's "emulation unit" state in the
/// paper's terminology). Both the reference interpreter and the DBI
/// engine's translated-code executor operate on this state, so final
/// register/memory/output contents are directly comparable.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_VM_CPU_H
#define PCC_VM_CPU_H

#include "isa/Opcode.h"

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace pcc {
namespace vm {

/// Architected register and PC state.
struct CpuState {
  std::array<uint32_t, isa::NumRegisters> Regs{};
  uint32_t Pc = 0;

  uint32_t sp() const { return Regs[isa::StackPointerReg]; }
  void setSp(uint32_t Value) { Regs[isa::StackPointerReg] = Value; }
};

/// Guest system call numbers (passed in the Sys instruction's Imm).
enum class SyscallNumber : uint32_t {
  Exit = 1,      ///< r1 = exit code; terminates the whole program.
  WriteChar = 2, ///< r1 = character appended to the output stream.
  WriteWord = 3, ///< r1 = 32-bit value appended to the word log.
  Yield = 4,     ///< No-op; exists to add syscall/emulation pressure.
  Spawn = 5,     ///< r1 = entry, r2 = arg; returns thread id in r1.
  ThreadExit = 6, ///< Ends the calling thread (see vm/Threads.h).
};

/// A requested thread creation, serviced by the scheduler.
struct SpawnRequest {
  uint32_t Entry = 0;
  uint32_t Arg = 0;
};

/// Observable side effects of a run plus exit bookkeeping. The DBI engine
/// transfers control to its emulation unit for every syscall, exactly as
/// Pin does.
struct SyscallEnv {
  std::string Output;
  std::vector<uint32_t> WordLog;
  uint64_t SyscallCount = 0;
  bool Exited = false;
  uint32_t ExitCode = 0;
  /// Thread requests, consumed by ThreadScheduler::afterSyscall.
  std::optional<SpawnRequest> PendingSpawn;
  bool CurrentThreadExited = false;

  /// Handles syscall \p Number against \p Cpu. Unknown numbers are a
  /// guest bug and terminate the program with exit code 127.
  void handle(uint32_t Number, CpuState &Cpu);
};

} // namespace vm
} // namespace pcc

#endif // PCC_VM_CPU_H
