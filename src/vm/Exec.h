//===- vm/Exec.h - Single-instruction execution semantics -------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one and only definition of guest instruction semantics.
/// The reference interpreter and the DBI engine's translated-trace
/// executor both call executeInstruction(), which guarantees the paper's
/// correctness baseline: running under the run-time compiler must be
/// observably identical to native execution.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_VM_EXEC_H
#define PCC_VM_EXEC_H

#include "isa/Instruction.h"
#include "loader/AddressSpace.h"
#include "vm/Cpu.h"

namespace pcc {
namespace vm {

/// What a single executed instruction did to control flow.
enum class StepKind : uint8_t {
  Sequential, ///< Fell through to Pc + 8.
  Control,    ///< Redirected the PC (branch taken, jump, call, return).
  Syscall,    ///< Performed a system call (falls through unless Exit).
  Halted,     ///< Halt, or Sys Exit.
};

/// Result of executing one instruction.
struct StepResult {
  StepKind Kind = StepKind::Sequential;
  uint32_t NextPc = 0;
};

/// Executes \p Inst located at \p Pc against \p Cpu / \p Space / \p Env.
/// Does not modify Cpu.Pc; the caller advances to the returned NextPc.
/// Fails with GuestFault on unmapped memory access.
ErrorOr<StepResult> executeInstruction(const isa::Instruction &Inst,
                                       uint32_t Pc, CpuState &Cpu,
                                       loader::AddressSpace &Space,
                                       SyscallEnv &Env);

} // namespace vm
} // namespace pcc

#endif // PCC_VM_EXEC_H
