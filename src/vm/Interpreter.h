//===- vm/Interpreter.h - Reference interpreter -----------------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reference ("native") execution engine: fetch/decode/execute with a
/// cost of one cycle per instruction. This models original program
/// execution on the hardware — the paper's leftmost bars — and serves as
/// the correctness oracle for the DBI engine.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_VM_INTERPRETER_H
#define PCC_VM_INTERPRETER_H

#include "loader/AddressSpace.h"
#include "vm/Cpu.h"
#include "vm/Exec.h"

#include <cstdint>

namespace pcc {
namespace vm {

/// Hard limits so runaway guests terminate deterministically.
struct RunLimits {
  uint64_t MaxInstructions = 2'000'000'000ULL;
};

/// The outcome of a guest run, on any execution engine.
struct RunResult {
  /// Failure status; success unless the guest faulted or ran past limits.
  Status Error = Status::success();
  uint32_t ExitCode = 0;
  std::string Output;
  std::vector<uint32_t> WordLog;
  uint64_t InstructionsExecuted = 0;
  uint64_t SyscallCount = 0;
  /// Cycles charged by this engine's cost model.
  uint64_t Cycles = 0;

  bool ok() const { return Error.ok(); }

  /// True when the architecturally observable outcome (exit code, output
  /// streams, instruction count) matches \p Other. Cycle counts are
  /// engine-specific and deliberately excluded.
  bool observablyEquals(const RunResult &Other) const {
    return Error.ok() && Other.Error.ok() && ExitCode == Other.ExitCode &&
           Output == Other.Output && WordLog == Other.WordLog &&
           InstructionsExecuted == Other.InstructionsExecuted &&
           SyscallCount == Other.SyscallCount;
  }
};

/// Cycle costs of native execution.
struct NativeCostModel {
  uint64_t CyclesPerInstruction = 1;
  /// Kernel entry/exit on real hardware; keeps syscall-heavy guests from
  /// looking free natively.
  uint64_t CyclesPerSyscall = 150;
};

/// Executes a guest program by interpretation.
class Interpreter {
public:
  explicit Interpreter(loader::AddressSpace &Space) : Space(Space) {}

  /// Runs from \p Cpu until halt, fault, or limit.
  RunResult run(CpuState Cpu, const RunLimits &Limits = RunLimits(),
                const NativeCostModel &Costs = NativeCostModel());

private:
  loader::AddressSpace &Space;
};

} // namespace vm
} // namespace pcc

#endif // PCC_VM_INTERPRETER_H
