//===- vm/Threads.h - Guest thread scheduling -------------------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multi-threaded guest support ("the system supports inter-execution
/// as well as inter-application persistence of single-threaded,
/// multi-threaded, and multi-process applications", Section 3.2).
///
/// Threads are cooperative: a context switch happens exactly when a
/// thread performs a system call — the one point where control returns
/// to the VM in both execution engines (system calls terminate traces),
/// so the reference interpreter and the DBI engine produce *identical*
/// thread interleavings and the equivalence tests extend to threaded
/// guests unchanged.
///
/// Guest API (see SyscallNumber):
///   Spawn      r1 = entry address, r2 = argument.
///              Returns the new thread id in r1 (0xffffffff on failure).
///              The new thread starts with r1 = argument and a fresh
///              stack.
///   ThreadExit Ends the calling thread. The program ends with exit
///              code 0 once every thread has exited. (Exit still
///              terminates the whole program immediately.)
///
//===----------------------------------------------------------------------===//

#ifndef PCC_VM_THREADS_H
#define PCC_VM_THREADS_H

#include "loader/AddressSpace.h"
#include "vm/Cpu.h"

#include <vector>

namespace pcc {
namespace vm {

/// Round-robin scheduler over cooperative guest threads, shared by the
/// interpreter and the DBI engine.
class ThreadScheduler {
public:
  /// Thread stacks: thread N (N >= 1) gets
  /// [ThreadStackBase + (N-1)*ThreadStackStride, +ThreadStackSize).
  static constexpr uint32_t ThreadStackBase = 0x78000000;
  static constexpr uint32_t ThreadStackSize = 0x20000;
  static constexpr uint32_t ThreadStackStride = 0x40000;
  static constexpr unsigned MaxThreads = 16;

  struct Thread {
    CpuState Cpu;
    bool Done = false;
  };

  /// Starts with the main thread's initial state.
  explicit ThreadScheduler(const CpuState &Main) {
    Threads.push_back(Thread{Main, false});
  }

  Thread &current() { return Threads[Current]; }
  size_t currentIndex() const { return Current; }
  size_t threadCount() const { return Threads.size(); }

  unsigned liveCount() const {
    unsigned Count = 0;
    for (const Thread &T : Threads)
      Count += T.Done ? 0 : 1;
    return Count;
  }

  /// Post-syscall bookkeeping: records the current thread's resume PC,
  /// services a pending spawn or thread-exit from \p Env, and rotates to
  /// the next live thread. \returns false when no thread remains (the
  /// program ends with exit code 0); fails only on stack-mapping errors.
  ErrorOr<bool> afterSyscall(SyscallEnv &Env,
                             loader::AddressSpace &Space,
                             uint32_t ResumePc) {
    current().Cpu.Pc = ResumePc;

    if (Env.PendingSpawn) {
      SpawnRequest Request = *Env.PendingSpawn;
      Env.PendingSpawn.reset();
      if (Threads.size() >= MaxThreads) {
        current().Cpu.Regs[1] = 0xffffffffu;
      } else {
        uint32_t Index = static_cast<uint32_t>(Threads.size());
        uint32_t StackLow =
            ThreadStackBase + (Index - 1) * ThreadStackStride;
        Status S = Space.mapRegion(StackLow, ThreadStackSize);
        if (!S.ok())
          return S;
        Thread NewThread;
        NewThread.Cpu.Pc = Request.Entry;
        NewThread.Cpu.setSp(StackLow + ThreadStackSize);
        NewThread.Cpu.Regs[1] = Request.Arg;
        current().Cpu.Regs[1] = Index; // Spawn's return value.
        Threads.push_back(NewThread);
      }
    }

    if (Env.CurrentThreadExited) {
      Env.CurrentThreadExited = false;
      current().Done = true;
    }

    // Round-robin to the next live thread.
    for (size_t Step = 1; Step <= Threads.size(); ++Step) {
      size_t Next = (Current + Step) % Threads.size();
      if (!Threads[Next].Done) {
        Current = Next;
        return true;
      }
    }
    return false; // Everyone has exited.
  }

private:
  std::vector<Thread> Threads;
  size_t Current = 0;
};

} // namespace vm
} // namespace pcc

#endif // PCC_VM_THREADS_H
