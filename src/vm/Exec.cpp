//===- vm/Exec.cpp --------------------------------------------------------===//

#include "vm/Exec.h"

#include "support/StringUtils.h"

#include <cassert>

using namespace pcc;
using namespace pcc::vm;
using isa::Instruction;
using isa::Opcode;

void SyscallEnv::handle(uint32_t Number, CpuState &Cpu) {
  ++SyscallCount;
  switch (static_cast<SyscallNumber>(Number)) {
  case SyscallNumber::Exit:
    Exited = true;
    ExitCode = Cpu.Regs[1];
    return;
  case SyscallNumber::WriteChar:
    Output.push_back(static_cast<char>(Cpu.Regs[1] & 0xff));
    return;
  case SyscallNumber::WriteWord:
    WordLog.push_back(Cpu.Regs[1]);
    return;
  case SyscallNumber::Yield:
    return;
  case SyscallNumber::Spawn:
    PendingSpawn = SpawnRequest{Cpu.Regs[1], Cpu.Regs[2]};
    return;
  case SyscallNumber::ThreadExit:
    CurrentThreadExited = true;
    return;
  }
  // Unknown syscall: guest bug, terminate deterministically.
  Exited = true;
  ExitCode = 127;
}

ErrorOr<StepResult> pcc::vm::executeInstruction(
    const Instruction &Inst, uint32_t Pc, CpuState &Cpu,
    loader::AddressSpace &Space, SyscallEnv &Env) {
  const uint32_t FallThrough = Pc + isa::InstructionSize;
  auto &Regs = Cpu.Regs;
  uint32_t A = Regs[Inst.Rs1];
  uint32_t B = Regs[Inst.Rs2];

  switch (Inst.Op) {
  case Opcode::Nop:
    return StepResult{StepKind::Sequential, FallThrough};
  case Opcode::Halt:
    return StepResult{StepKind::Halted, Pc};

  case Opcode::Add:
    Regs[Inst.Rd] = A + B;
    return StepResult{StepKind::Sequential, FallThrough};
  case Opcode::Sub:
    Regs[Inst.Rd] = A - B;
    return StepResult{StepKind::Sequential, FallThrough};
  case Opcode::Mul:
    Regs[Inst.Rd] = A * B;
    return StepResult{StepKind::Sequential, FallThrough};
  case Opcode::Divu:
    Regs[Inst.Rd] = B == 0 ? 0 : A / B;
    return StepResult{StepKind::Sequential, FallThrough};
  case Opcode::And:
    Regs[Inst.Rd] = A & B;
    return StepResult{StepKind::Sequential, FallThrough};
  case Opcode::Or:
    Regs[Inst.Rd] = A | B;
    return StepResult{StepKind::Sequential, FallThrough};
  case Opcode::Xor:
    Regs[Inst.Rd] = A ^ B;
    return StepResult{StepKind::Sequential, FallThrough};
  case Opcode::Shl:
    Regs[Inst.Rd] = A << (B & 31);
    return StepResult{StepKind::Sequential, FallThrough};
  case Opcode::Shr:
    Regs[Inst.Rd] = A >> (B & 31);
    return StepResult{StepKind::Sequential, FallThrough};
  case Opcode::Sltu:
    Regs[Inst.Rd] = A < B ? 1 : 0;
    return StepResult{StepKind::Sequential, FallThrough};
  case Opcode::Seq:
    Regs[Inst.Rd] = A == B ? 1 : 0;
    return StepResult{StepKind::Sequential, FallThrough};

  case Opcode::Addi:
    Regs[Inst.Rd] = A + Inst.Imm;
    return StepResult{StepKind::Sequential, FallThrough};
  case Opcode::Muli:
    Regs[Inst.Rd] = A * Inst.Imm;
    return StepResult{StepKind::Sequential, FallThrough};
  case Opcode::Andi:
    Regs[Inst.Rd] = A & Inst.Imm;
    return StepResult{StepKind::Sequential, FallThrough};
  case Opcode::Ori:
    Regs[Inst.Rd] = A | Inst.Imm;
    return StepResult{StepKind::Sequential, FallThrough};
  case Opcode::Xori:
    Regs[Inst.Rd] = A ^ Inst.Imm;
    return StepResult{StepKind::Sequential, FallThrough};
  case Opcode::Shli:
    Regs[Inst.Rd] = A << (Inst.Imm & 31);
    return StepResult{StepKind::Sequential, FallThrough};
  case Opcode::Shri:
    Regs[Inst.Rd] = A >> (Inst.Imm & 31);
    return StepResult{StepKind::Sequential, FallThrough};
  case Opcode::Sltiu:
    Regs[Inst.Rd] = A < Inst.Imm ? 1 : 0;
    return StepResult{StepKind::Sequential, FallThrough};
  case Opcode::Ldi:
    Regs[Inst.Rd] = Inst.Imm;
    return StepResult{StepKind::Sequential, FallThrough};

  case Opcode::Ld: {
    auto Value = Space.read32(A + Inst.Imm);
    if (!Value)
      return Value.status();
    Regs[Inst.Rd] = *Value;
    return StepResult{StepKind::Sequential, FallThrough};
  }
  case Opcode::St: {
    Status S = Space.write32(A + Inst.Imm, B);
    if (!S.ok())
      return S;
    return StepResult{StepKind::Sequential, FallThrough};
  }

  case Opcode::Beq:
    return StepResult{A == B ? StepKind::Control : StepKind::Sequential,
                      A == B ? Inst.Imm : FallThrough};
  case Opcode::Bne:
    return StepResult{A != B ? StepKind::Control : StepKind::Sequential,
                      A != B ? Inst.Imm : FallThrough};
  case Opcode::Bltu:
    return StepResult{A < B ? StepKind::Control : StepKind::Sequential,
                      A < B ? Inst.Imm : FallThrough};
  case Opcode::Bgeu:
    return StepResult{A >= B ? StepKind::Control : StepKind::Sequential,
                      A >= B ? Inst.Imm : FallThrough};

  case Opcode::Jmp:
    return StepResult{StepKind::Control, Inst.Imm};
  case Opcode::Jr:
    return StepResult{StepKind::Control, A};

  case Opcode::Call:
  case Opcode::Callr: {
    uint32_t NewSp = Cpu.sp() - 4;
    Status S = Space.write32(NewSp, FallThrough);
    if (!S.ok())
      return S;
    Cpu.setSp(NewSp);
    return StepResult{StepKind::Control,
                      Inst.Op == Opcode::Call ? Inst.Imm : A};
  }
  case Opcode::Ret: {
    auto ReturnAddr = Space.read32(Cpu.sp());
    if (!ReturnAddr)
      return ReturnAddr.status();
    Cpu.setSp(Cpu.sp() + 4);
    return StepResult{StepKind::Control, *ReturnAddr};
  }

  case Opcode::Sys:
    Env.handle(Inst.Imm, Cpu);
    if (Env.Exited)
      return StepResult{StepKind::Halted, Pc};
    return StepResult{StepKind::Syscall, FallThrough};

  case Opcode::NumOpcodes:
    break;
  }
  return Status::error(ErrorCode::GuestFault,
                       formatString("invalid opcode at 0x%x", Pc));
}
