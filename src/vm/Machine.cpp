//===- vm/Machine.cpp -----------------------------------------------------===//

#include "vm/Machine.h"

using namespace pcc;
using namespace pcc::vm;

ErrorOr<Machine> Machine::create(
    std::shared_ptr<const binary::Module> App,
    const loader::ModuleRegistry &Registry, loader::BasePolicy Policy,
    uint64_t AslrSeed, loader::Loader::LoadObserver OnLoad) {
  Machine M;
  loader::Loader TheLoader(*M.Space, Registry, Policy, AslrSeed);
  if (OnLoad)
    TheLoader.setLoadObserver(std::move(OnLoad));
  auto Image = TheLoader.load(std::move(App));
  if (!Image)
    return Image.status();
  M.Image = Image.take();
  return M;
}

Status Machine::installInput(const std::vector<uint8_t> &Blob) {
  uint32_t Size = static_cast<uint32_t>(Blob.size());
  Status S = Space->mapRegion(InputRegionBase,
                              Size == 0 ? binary::PageSize : Size);
  if (!S.ok())
    return S;
  if (Size == 0)
    return Status::success();
  return Space->writeBytes(InputRegionBase, Blob.data(), Size);
}

CpuState Machine::initialCpuState() const {
  CpuState Cpu;
  Cpu.Pc = Image.EntryAddress;
  Cpu.setSp(Image.StackTop);
  return Cpu;
}

RunResult Machine::runNative(const RunLimits &Limits,
                             const NativeCostModel &Costs) {
  Interpreter Interp(*Space);
  return Interp.run(initialCpuState(), Limits, Costs);
}
