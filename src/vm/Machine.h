//===- vm/Machine.h - Loaded guest machine facade ---------------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One process-like unit: a loaded executable, its libraries, a guest
/// address space, and an initial CPU state. A Machine is consumed by
/// exactly one run (native or under the DBI engine); multi-process
/// workloads such as the Oracle phases create one Machine per process,
/// all sharing the same ModuleRegistry and persistent cache database.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_VM_MACHINE_H
#define PCC_VM_MACHINE_H

#include "loader/AddressSpace.h"
#include "loader/Loader.h"
#include "vm/Cpu.h"
#include "vm/Interpreter.h"

#include <memory>

namespace pcc {
namespace vm {

/// A loaded guest program ready to execute.
class Machine {
public:
  /// Loads \p App (plus dependencies from \p Registry) into a fresh
  /// address space. \p Policy / \p AslrSeed control library placement.
  /// \p OnLoad, if given, observes every module mapping (used by the
  /// persistent cache manager).
  static ErrorOr<Machine>
  create(std::shared_ptr<const binary::Module> App,
         const loader::ModuleRegistry &Registry,
         loader::BasePolicy Policy = loader::BasePolicy::Fixed,
         uint64_t AslrSeed = 0,
         loader::Loader::LoadObserver OnLoad = nullptr);

  loader::AddressSpace &space() { return *Space; }
  const loader::LoadedImage &image() const { return Image; }

  /// Fixed guest address where program input is mapped. Inputs live
  /// outside every module image (like argv/env pages on Linux) so that
  /// changing the input never changes the application's module key —
  /// the paper's cross-input persistence depends on this.
  static constexpr uint32_t InputRegionBase = 0x7f000000;

  /// Maps \p Blob read-only at InputRegionBase. Call at most once,
  /// before running.
  Status installInput(const std::vector<uint8_t> &Blob);

  /// Initial architected state: PC at the entry point, SP at stack top.
  CpuState initialCpuState() const;

  /// Runs the program natively (reference interpreter).
  RunResult runNative(const RunLimits &Limits = RunLimits(),
                      const NativeCostModel &Costs = NativeCostModel());

private:
  Machine() : Space(std::make_unique<loader::AddressSpace>()) {}

  std::unique_ptr<loader::AddressSpace> Space;
  loader::LoadedImage Image;
};

} // namespace vm
} // namespace pcc

#endif // PCC_VM_MACHINE_H
