//===- vm/Interpreter.cpp -------------------------------------------------===//

#include "vm/Interpreter.h"

#include "isa/Instruction.h"
#include "vm/Threads.h"

using namespace pcc;
using namespace pcc::vm;

RunResult Interpreter::run(CpuState Cpu, const RunLimits &Limits,
                           const NativeCostModel &Costs) {
  RunResult Result;
  SyscallEnv Env;
  ThreadScheduler Threads(Cpu);

  auto finish = [&](uint32_t ExitCode) {
    Result.ExitCode = ExitCode;
    Result.Output = std::move(Env.Output);
    Result.WordLog = std::move(Env.WordLog);
    Result.SyscallCount = Env.SyscallCount;
    return Result;
  };

  while (Result.InstructionsExecuted < Limits.MaxInstructions) {
    CpuState &Current = Threads.current().Cpu;
    uint8_t Raw[isa::InstructionSize];
    Status FetchStatus = Space.fetchInstructionBytes(Current.Pc, Raw);
    if (!FetchStatus.ok()) {
      Result.Error = FetchStatus;
      break;
    }
    auto Inst = isa::Instruction::decode(Raw);
    if (!Inst) {
      Result.Error = Inst.status();
      break;
    }
    auto Step = executeInstruction(*Inst, Current.Pc, Current, Space,
                                   Env);
    if (!Step) {
      Result.Error = Step.status();
      break;
    }
    ++Result.InstructionsExecuted;
    Result.Cycles += Costs.CyclesPerInstruction;

    if (Step->Kind == StepKind::Halted) {
      if (Env.Exited)
        Result.Cycles += Costs.CyclesPerSyscall; // The Exit syscall.
      return finish(Env.Exited ? Env.ExitCode : 0);
    }

    if (Step->Kind == StepKind::Syscall) {
      // Context switches happen only here; the DBI engine switches at
      // the same points (syscalls terminate traces), keeping thread
      // interleavings identical across engines.
      Result.Cycles += Costs.CyclesPerSyscall;
      auto Alive = Threads.afterSyscall(Env, Space, Step->NextPc);
      if (!Alive) {
        Result.Error = Alive.status();
        break;
      }
      if (!*Alive)
        return finish(0); // Every thread exited.
      continue;
    }
    Current.Pc = Step->NextPc;
  }

  if (Result.Error.ok())
    Result.Error = Status::error(ErrorCode::GuestFault,
                                 "instruction limit exceeded");
  Result.Output = std::move(Env.Output);
  Result.WordLog = std::move(Env.WordLog);
  Result.SyscallCount = Env.SyscallCount;
  return Result;
}
