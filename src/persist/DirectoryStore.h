//===- persist/DirectoryStore.h - Directory-of-files backend ----*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The production CacheStore backend: a host directory of cache files,
/// one `<lookup-key-hex>.pcc` per slot — the database of Figure 1 as it
/// actually lives on disk.
///
/// Writer coordination (multi-process, advisory):
///
///   * publish() holds the store-wide lock *shared* plus the slot's
///     per-key lock *exclusive* — concurrent publishers of different
///     keys proceed in parallel; two finalizers of one key serialize,
///     and the loser merges the winner's novel traces before writing.
///   * shrinkTo() and clear() hold the store-wide lock *exclusive*,
///     quiescing all publishers, and sweep any temporaries a crashed
///     writer orphaned.
///   * Readers take no locks at all: every visible cache file is the
///     product of an atomic rename, so scans and priming always see a
///     complete file (possibly one generation stale).
///
/// Lock files live in a `.locks/` subdirectory (`store.lock`,
/// `k<hex>.lock`) so the store directory itself holds nothing but cache
/// files; they are created on demand and never deleted — see FileLock.h
/// for the inode-split hazard.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_PERSIST_DIRECTORYSTORE_H
#define PCC_PERSIST_DIRECTORYSTORE_H

#include "persist/CacheStore.h"

namespace pcc {
namespace persist {

/// Directory-backed store of persistent cache files.
class DirectoryStore : public CacheStore {
public:
  /// Opens (creating if needed) the store at \p Dir.
  explicit DirectoryStore(std::string Dir);

  const std::string &location() const override { return Dir; }
  std::string refFor(uint64_t LookupKey) const override;
  bool exists(uint64_t LookupKey) const override;
  ErrorOr<StoredCache> openRef(const std::string &Ref,
                               CacheFileView::Depth D) override;
  ErrorOr<CacheFile> loadRef(const std::string &Ref) override;
  Status put(uint64_t LookupKey, const CacheFile &File) override;
  Status putRef(const std::string &Ref, const CacheFile &File) override;
  ErrorOr<PublishResult> publish(uint64_t LookupKey, CacheFile File,
                                 uint32_t BaseGeneration) override;
  Status retire(uint64_t LookupKey) override;
  Status clear() override;
  ErrorOr<std::vector<std::string>>
  findCompatible(uint64_t EngineHash, uint64_t ToolHash) override;
  ErrorOr<StoreStats> stats() override;
  ErrorOr<uint32_t> shrinkTo(uint64_t MaxBytes) override;
  std::vector<LockInfo> locks() const override;

private:
  /// Lock-file subdirectory, created on first use by the *LockPath
  /// accessors (so read-only stores never grow one).
  std::string lockDir() const;
  std::string storeLockPath() const;
  std::string keyLockPath(uint64_t LookupKey) const;
  /// Current generation of the slot at \p Ref: 0 when missing or
  /// unreadable (an unreadable slot is overwritten, not merged).
  uint32_t slotGeneration(const std::string &Ref) const;
  /// Deletes temporaries orphaned by crashed writers. Caller must hold
  /// the store-wide lock exclusively.
  void sweepOrphanedTemps();

  std::string Dir;
};

} // namespace persist
} // namespace pcc

#endif // PCC_PERSIST_DIRECTORYSTORE_H
