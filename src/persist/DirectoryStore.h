//===- persist/DirectoryStore.h - Directory-of-files backend ----*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The production CacheStore backend: a host directory of cache files,
/// one `<lookup-key-hex>.pcc` per slot — the database of Figure 1 as it
/// actually lives on disk.
///
/// Writer coordination (multi-process, advisory):
///
///   * publish() holds the store-wide lock *shared* plus the slot's
///     per-key lock *exclusive* — concurrent publishers of different
///     keys proceed in parallel; two finalizers of one key serialize,
///     and the loser merges the winner's novel traces before writing.
///   * shrinkTo() and clear() hold the store-wide lock *exclusive*,
///     quiescing all publishers, and sweep any temporaries a crashed
///     writer orphaned.
///   * Readers take no locks at all: every visible cache file is the
///     product of an atomic rename, so scans and priming always see a
///     complete file (possibly one generation stale).
///
/// Lock files live in a `.locks/` subdirectory (`store.lock`,
/// `k<hex>.lock`) so the store directory itself holds nothing but cache
/// files; they are created on demand and never deleted — see FileLock.h
/// for the inode-split hazard.
///
/// Fault tolerance: publishers acquire their locks with bounded retry
/// (exponential backoff + jitter) instead of blocking forever, and
/// caches whose contents fail validation are moved into a
/// `.quarantine/` subdirectory — with the failure reason recorded in a
/// sibling `.reason` file — rather than silently skipped, so
/// `pcc-dbcheck` can diagnose, restore or purge them later.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_PERSIST_DIRECTORYSTORE_H
#define PCC_PERSIST_DIRECTORYSTORE_H

#include "persist/CacheStore.h"

#include "support/FileLock.h"

namespace pcc {
namespace persist {

/// Bounded-retry policy for publisher lock acquisition. Delays grow
/// exponentially from Base to Cap with uniform jitter in the upper half
/// of each step (decorrelating publishers that collided once).
struct RetryPolicy {
  uint32_t MaxAttempts = 12;
  uint32_t BaseDelayMicros = 200;
  uint32_t MaxDelayMicros = 50000;
};

/// Directory-backed store of persistent cache files.
class DirectoryStore : public CacheStore {
public:
  /// Opens (creating if needed) the store at \p Dir.
  explicit DirectoryStore(std::string Dir);

  const std::string &location() const override { return Dir; }
  std::string refFor(uint64_t LookupKey) const override;
  bool exists(uint64_t LookupKey) const override;
  ErrorOr<StoredCache> openRef(const std::string &Ref,
                               CacheFileView::Depth D) override;
  ErrorOr<CacheFile> loadRef(const std::string &Ref) override;
  Status put(uint64_t LookupKey, const CacheFile &File) override;
  Status putRef(const std::string &Ref, const CacheFile &File) override;
  ErrorOr<PublishResult> publish(uint64_t LookupKey, CacheFile File,
                                 uint32_t BaseGeneration) override;
  Status retire(uint64_t LookupKey) override;
  Status clear() override;
  ErrorOr<std::vector<std::string>>
  findCompatible(uint64_t EngineHash, uint64_t ToolHash) override;
  ErrorOr<std::vector<std::string>> listRefs() const override;
  ErrorOr<StoreStats> stats() override;
  ErrorOr<uint32_t> shrinkTo(uint64_t MaxBytes) override;
  std::vector<LockInfo> locks() const override;
  Status quarantineRef(const std::string &Ref,
                       const std::string &Reason) override;
  ErrorOr<std::vector<QuarantineEntry>> quarantined() override;
  Status restoreQuarantined(const std::string &Name) override;
  ErrorOr<uint32_t> purgeQuarantine() override;
  Status attachToQuarantine(const std::string &FileName,
                            const std::vector<uint8_t> &Bytes) override;
  ErrorOr<std::vector<uint8_t>>
  readQuarantineAttachment(const std::string &FileName) override;

  /// Replaces the publisher lock-retry policy (tests tighten it).
  void setRetryPolicy(const RetryPolicy &P) { Policy = P; }
  const RetryPolicy &retryPolicy() const { return Policy; }

  /// Quarantine subdirectory path (may not exist yet).
  std::string quarantineDir() const;

  /// Store-wide lock-file path (creating `.locks/` on first use).
  /// Maintenance passes (pcc-dbcheck --repair) acquire it exclusively
  /// to quiesce every publisher.
  std::string storeLockPath() const;

private:
  /// Lock-file subdirectory, created on first use by the *LockPath
  /// accessors (so read-only stores never grow one).
  std::string lockDir() const;
  std::string keyLockPath(uint64_t LookupKey) const;
  /// Current generation of the slot at \p Ref: 0 when missing or
  /// unreadable (an unreadable slot is overwritten, not merged).
  uint32_t slotGeneration(const std::string &Ref) const;
  /// Deletes temporaries orphaned by crashed writers. Caller must hold
  /// the store-wide lock exclusively.
  void sweepOrphanedTemps();
  /// Acquires the lock at \p Path with bounded retry on WouldBlock,
  /// accumulating the retry count into *\p Retries when given.
  ErrorOr<FileLock> lockWithRetry(const std::string &Path,
                                  FileLock::Mode M, uint32_t *Retries);
  /// Best-effort quarantine of a cache that just failed validation.
  /// Takes the slot's key lock non-blocking and re-validates under it,
  /// so a concurrently republished healthy file is never swept up;
  /// skips silently when the slot is busy or AutoQuarantine is off.
  void maybeAutoQuarantine(const std::string &Ref,
                           const Status &Failure);

  std::string Dir;
  RetryPolicy Policy;
};

} // namespace persist
} // namespace pcc

#endif // PCC_PERSIST_DIRECTORYSTORE_H
