//===- persist/CacheFile.cpp ----------------------------------------------===//

#include "persist/CacheFile.h"

#include "dbi/Compiler.h"
#include "persist/CacheView.h"
#include "support/Hashing.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <unordered_set>

using namespace pcc;
using namespace pcc::persist;

uint32_t pcc::persist::traceDataBytes(uint32_t NumExits,
                                      uint32_t NumInsts) {
  return 64 + 40 * NumExits + 24 + 8 * NumInsts;
}

uint32_t CacheFile::maxOptGen() const {
  uint32_t Max = 0;
  for (const TraceRecord &Trace : Traces)
    Max = std::max(Max, Trace.OptGen);
  return Max;
}

bool CacheFile::hasCerts() const {
  for (const TraceRecord &Trace : Traces)
    if (!Trace.Cert.empty())
      return true;
  return false;
}

uint64_t CacheFile::codeBytes() const {
  uint64_t Total = 0;
  for (const TraceRecord &Trace : Traces)
    Total += Trace.Code.size();
  return Total;
}

uint64_t CacheFile::dataBytes() const {
  uint64_t Total = 0;
  for (const TraceRecord &Trace : Traces)
    Total += traceDataBytes(static_cast<uint32_t>(Trace.Exits.size()),
                            Trace.GuestInstCount);
  return Total;
}

namespace {
constexpr uint32_t LegacyFormatVersion = 2;

/// Serialized size of one ModuleKey: u32 path length + path bytes +
/// Base/Size + four u64 hashes.
size_t moduleKeyBytes(const ModuleKey &Key) {
  return 4 + Key.Path.size() + 4 + 4 + 4 * 8;
}

size_t alignUp(size_t N, size_t Align) {
  return (N + Align - 1) / Align * Align;
}

/// Bytes the trailing certificate section adds (0 when no trace is
/// certified and the section is omitted entirely).
size_t certSectionBytes(const std::vector<TraceRecord> &Traces,
                        bool HasCerts) {
  if (!HasCerts)
    return 0;
  size_t BlobBytes = 0;
  for (const TraceRecord &Trace : Traces)
    BlobBytes += Trace.Cert.size();
  return v2::CertSectHeaderBytes +
         Traces.size() * v2::CertDirEntryBytes + BlobBytes;
}

} // namespace

size_t CacheFile::serializedSize() const {
  size_t ModuleTableSize = 0;
  for (const ModuleKey &Key : Modules)
    ModuleTableSize += moduleKeyBytes(Key);
  size_t HeapSize = 0;
  size_t PayloadBytes = 0;
  for (const TraceRecord &Trace : Traces) {
    HeapSize += Trace.Exits.size() * v2::ExitRecordBytes +
                Trace.RelocMask.size();
    PayloadBytes += Trace.Code.size();
  }
  size_t EntryBytes =
      maxOptGen() > 0 ? v2::OptIndexEntryBytes : v2::IndexEntryBytes;
  size_t IndexSize = Traces.size() * EntryBytes + HeapSize;
  size_t PayloadOffset = v2::HeaderBytes + ModuleTableSize + IndexSize;
  if (ExecuteInPlace)
    PayloadOffset = alignUp(PayloadOffset, v2::PayloadAlign);
  return PayloadOffset + PayloadBytes +
         certSectionBytes(Traces, hasCerts());
}

std::vector<uint8_t> CacheFile::serialize() const {
  // Exact section sizes, so one reserve() covers the whole file.
  size_t ModuleTableSize = 0;
  for (const ModuleKey &Key : Modules)
    ModuleTableSize += moduleKeyBytes(Key);
  size_t HeapSize = 0;
  size_t PayloadBytes = 0;
  for (const TraceRecord &Trace : Traces) {
    HeapSize += Trace.Exits.size() * v2::ExitRecordBytes +
                Trace.RelocMask.size();
    PayloadBytes += Trace.Code.size();
  }
  // Promoted files (any trace with OptGen > 0) use the wide index-entry
  // layout and announce it in the flags byte; unpromoted files keep the
  // 40-byte entries so their bytes are identical to pre-OptGen output.
  const bool HasOptGen = maxOptGen() > 0;
  // Certified files (any trace with a certificate blob) gain a trailing
  // certificate section past the payload and announce it in the flags
  // byte; uncertified files omit it so their bytes are identical to
  // pre-certificate output.
  const bool HasCerts = hasCerts();
  const size_t EntryBytes =
      HasOptGen ? v2::OptIndexEntryBytes : v2::IndexEntryBytes;
  size_t IndexSize = Traces.size() * EntryBytes + HeapSize;
  uint32_t ModuleTableOffset = static_cast<uint32_t>(v2::HeaderBytes);
  uint32_t TraceIndexOffset =
      ModuleTableOffset + static_cast<uint32_t>(ModuleTableSize);
  // XIP generations page-align the payload so consumers can hand the
  // mapped region to the engine as executable trace bodies; the gap is
  // zero padding outside every CRC domain.
  uint32_t IndexEnd = TraceIndexOffset + static_cast<uint32_t>(IndexSize);
  uint32_t PayloadOffset =
      ExecuteInPlace
          ? static_cast<uint32_t>(alignUp(IndexEnd, v2::PayloadAlign))
          : IndexEnd;
  size_t TotalSize = static_cast<size_t>(PayloadOffset) + PayloadBytes +
                     certSectionBytes(Traces, HasCerts);

  ByteWriter Writer;
  Writer.reserve(TotalSize);

  Writer.writeU32(v2::Magic);
  Writer.writeU32(ExecuteInPlace ? v2::XipVersion : v2::Version);
  Writer.writeU64(EngineHash);
  Writer.writeU64(ToolHash);
  Writer.writeU8(SpecBits);
  Writer.writeU8(static_cast<uint8_t>(
      (PositionIndependent ? v2::FlagPositionIndependent : 0) |
      (ExecuteInPlace ? v2::FlagExecuteInPlace : 0) |
      (HasOptGen ? v2::FlagOptGen : 0) |
      (HasCerts ? v2::FlagCertificates : 0)));
  Writer.writeU16(WriterTag); // Former Reserved0: last-writer pid tag.
  Writer.writeU32(Generation);
  Writer.writeU32(static_cast<uint32_t>(Modules.size()));
  Writer.writeU32(static_cast<uint32_t>(Traces.size()));
  Writer.writeU32(ModuleTableOffset);
  Writer.writeU32(static_cast<uint32_t>(ModuleTableSize));
  Writer.writeU32(TraceIndexOffset);
  Writer.writeU32(static_cast<uint32_t>(IndexSize));
  Writer.writeU32(PayloadOffset);
  Writer.writeU32(static_cast<uint32_t>(PayloadBytes));
  size_t CrcFieldsAt = Writer.size();
  Writer.writeU32(0); // ModuleTableCrc, patched below.
  Writer.writeU32(0); // TraceIndexCrc, patched below.
  Writer.writeU32(0); // HeaderCrc, patched below.
  assert(Writer.size() == v2::HeaderBytes && "v2 header layout drifted");

  for (const ModuleKey &Key : Modules)
    Key.serialize(Writer);
  assert(Writer.size() == TraceIndexOffset && "module table size drifted");

  // Index entries first, then the metadata heap they point into.
  uint32_t MetaOffset =
      static_cast<uint32_t>(Traces.size() * EntryBytes);
  uint32_t CodeOffset = 0;
  for (const TraceRecord &Trace : Traces) {
    Writer.writeU32(Trace.GuestStart);
    Writer.writeU32(Trace.ModuleIndex);
    Writer.writeU32(Trace.GuestInstCount);
    Writer.writeU32(CodeOffset);
    Writer.writeU32(static_cast<uint32_t>(Trace.Code.size()));
    Writer.writeU32(crc32(Trace.Code.data(), Trace.Code.size()));
    Writer.writeU32(MetaOffset);
    Writer.writeU32(static_cast<uint32_t>(Trace.Exits.size()));
    Writer.writeU32(static_cast<uint32_t>(Trace.RelocMask.size()));
    Writer.writeU32(Trace.Heat); // Former Reserved word.
    if (HasOptGen)
      Writer.writeU32(Trace.OptGen);
    CodeOffset += static_cast<uint32_t>(Trace.Code.size());
    MetaOffset += static_cast<uint32_t>(
        Trace.Exits.size() * v2::ExitRecordBytes + Trace.RelocMask.size());
  }
  for (const TraceRecord &Trace : Traces) {
    for (const ExitRecord &Exit : Trace.Exits) {
      Writer.writeU8(Exit.Kind);
      Writer.writeU32(Exit.InstIndex);
      Writer.writeU32(Exit.Target);
      Writer.writeU32(Exit.LinkedStart);
    }
    Writer.writeBytes(Trace.RelocMask.data(), Trace.RelocMask.size());
  }
  assert(Writer.size() == IndexEnd && "trace index size drifted");
  if (PayloadOffset != IndexEnd) {
    std::vector<uint8_t> Pad(PayloadOffset - IndexEnd, 0);
    Writer.writeBytes(Pad.data(), Pad.size());
  }
  assert(Writer.size() == PayloadOffset && "payload alignment drifted");

  for (const TraceRecord &Trace : Traces)
    Writer.writeBytes(Trace.Code.data(), Trace.Code.size());

  if (HasCerts) {
    // Trailing certificate section: fixed header, per-trace directory,
    // then the concatenated blobs. Sits entirely past the declared
    // (header-covered) file size; the directory carries its own CRC and
    // each blob its own trailing CRC.
    size_t BlobBytes = 0;
    for (const TraceRecord &Trace : Traces)
      BlobBytes += Trace.Cert.size();
    Writer.writeU32(v2::CertSectMagic);
    Writer.writeU32(static_cast<uint32_t>(Traces.size()));
    Writer.writeU32(static_cast<uint32_t>(BlobBytes));
    size_t DirCrcAt = Writer.size();
    Writer.writeU32(0); // DirCrc, patched below.
    size_t DirAt = Writer.size();
    uint32_t BlobOffset = 0;
    for (const TraceRecord &Trace : Traces) {
      Writer.writeU32(Trace.Cert.empty() ? 0 : BlobOffset);
      Writer.writeU32(static_cast<uint32_t>(Trace.Cert.size()));
      BlobOffset += static_cast<uint32_t>(Trace.Cert.size());
    }
    Writer.patchU32(DirCrcAt,
                    crc32(Writer.bytes().data() + DirAt,
                          Traces.size() * v2::CertDirEntryBytes));
    for (const TraceRecord &Trace : Traces)
      Writer.writeBytes(Trace.Cert.data(), Trace.Cert.size());
  }
  assert(Writer.size() == TotalSize && "payload size drifted");

  const uint8_t *Raw = Writer.bytes().data();
  Writer.patchU32(CrcFieldsAt,
                  crc32(Raw + ModuleTableOffset, ModuleTableSize));
  // The trace-index CRC domain excludes the alignment padding, so it is
  // identical whether or not the generation is XIP.
  Writer.patchU32(CrcFieldsAt + 4,
                  crc32(Raw + TraceIndexOffset, IndexSize));
  // Header CRC covers everything before itself, section CRCs included.
  Writer.patchU32(CrcFieldsAt + 8, crc32(Raw, v2::HeaderBytes - 4));
  return Writer.take();
}

std::vector<uint8_t> CacheFile::serializeLegacy() const {
  ByteWriter Writer;
  Writer.writeU32(LegacyCacheMagic);
  Writer.writeU32(LegacyFormatVersion);
  Writer.writeU64(EngineHash);
  Writer.writeU64(ToolHash);
  Writer.writeU8(SpecBits);
  Writer.writeU8(PositionIndependent ? 1 : 0);
  Writer.writeU32(Generation);

  Writer.writeU32(static_cast<uint32_t>(Modules.size()));
  for (const ModuleKey &Key : Modules)
    Key.serialize(Writer);

  Writer.writeU32(static_cast<uint32_t>(Traces.size()));
  for (const TraceRecord &Trace : Traces) {
    Writer.writeU32(Trace.GuestStart);
    Writer.writeU32(Trace.ModuleIndex);
    Writer.writeU32(Trace.GuestInstCount);
    Writer.writeBlob(Trace.Code);
    Writer.writeU32(static_cast<uint32_t>(Trace.Exits.size()));
    for (const ExitRecord &Exit : Trace.Exits) {
      Writer.writeU8(Exit.Kind);
      Writer.writeU32(Exit.InstIndex);
      Writer.writeU32(Exit.Target);
      Writer.writeU32(Exit.LinkedStart);
    }
    Writer.writeBlob(Trace.RelocMask);
  }

  uint32_t Checksum = crc32(Writer.bytes().data(), Writer.size());
  Writer.writeU32(Checksum);
  return Writer.take();
}

namespace {

/// Eager v1 parse: whole-file trailing CRC, then field-by-field decode.
ErrorOr<CacheFile> deserializeLegacy(const std::vector<uint8_t> &Bytes) {
  if (Bytes.size() < 4)
    return Status::error(ErrorCode::InvalidFormat,
                         "cache file too small");
  // Validate the CRC before trusting any field.
  size_t PayloadSize = Bytes.size() - 4;
  uint32_t Stored = 0;
  for (unsigned I = 0; I != 4; ++I)
    Stored |= static_cast<uint32_t>(Bytes[PayloadSize + I]) << (8 * I);
  if (crc32(Bytes.data(), PayloadSize) != Stored)
    return Status::error(ErrorCode::InvalidFormat,
                         "cache file checksum mismatch");

  ByteReader Reader(Bytes.data(), PayloadSize);
  if (Reader.readU32() != LegacyCacheMagic)
    return Status::error(ErrorCode::InvalidFormat, "bad cache magic");
  if (Reader.readU32() != LegacyFormatVersion)
    return Status::error(ErrorCode::VersionMismatch,
                         "unsupported cache format version");

  CacheFile File;
  File.SourceFormat = 1;
  File.EngineHash = Reader.readU64();
  File.ToolHash = Reader.readU64();
  File.SpecBits = Reader.readU8();
  File.PositionIndependent = Reader.readU8() != 0;
  File.Generation = Reader.readU32();

  // Reservations are capped by the bytes actually present so a
  // corrupted count cannot demand an absurd allocation (each record
  // consumes at least one byte of payload).
  uint32_t NumModules = Reader.readU32();
  File.Modules.reserve(
      std::min<size_t>(NumModules, Reader.remaining()));
  for (uint32_t I = 0; I != NumModules && !Reader.failed(); ++I)
    File.Modules.push_back(ModuleKey::deserialize(Reader));

  uint32_t NumTraces = Reader.readU32();
  File.Traces.reserve(std::min<size_t>(NumTraces, Reader.remaining()));
  for (uint32_t I = 0; I != NumTraces && !Reader.failed(); ++I) {
    TraceRecord Trace;
    Trace.GuestStart = Reader.readU32();
    Trace.ModuleIndex = Reader.readU32();
    Trace.GuestInstCount = Reader.readU32();
    Trace.Code = Reader.readBlob();
    uint32_t NumExits = Reader.readU32();
    Trace.Exits.reserve(std::min<size_t>(NumExits, Reader.remaining()));
    for (uint32_t E = 0; E != NumExits && !Reader.failed(); ++E) {
      ExitRecord Exit;
      Exit.Kind = Reader.readU8();
      Exit.InstIndex = Reader.readU32();
      Exit.Target = Reader.readU32();
      Exit.LinkedStart = Reader.readU32();
      Trace.Exits.push_back(Exit);
    }
    Trace.RelocMask = Reader.readBlob();
    if (Trace.ModuleIndex >= NumModules)
      return Status::error(ErrorCode::InvalidFormat,
                           "trace module index out of range");
    File.Traces.push_back(std::move(Trace));
  }

  if (Reader.failed() || !Reader.atEnd())
    return Status::error(ErrorCode::InvalidFormat,
                         "truncated or oversized cache payload");
  return File;
}

} // namespace

ErrorOr<CacheFile> CacheFile::deserialize(
    const std::vector<uint8_t> &Bytes) {
  if (Bytes.size() < 4)
    return Status::error(ErrorCode::InvalidFormat,
                         "cache file too small");
  uint32_t Magic = 0;
  for (unsigned I = 0; I != 4; ++I)
    Magic |= static_cast<uint32_t>(Bytes[I]) << (8 * I);
  if (Magic == LegacyCacheMagic)
    return deserializeLegacy(Bytes);

  auto View = CacheFileView::open(Bytes, CacheFileView::Depth::Index);
  if (!View)
    return View.status();
  CacheFile File;
  File.SourceFormat = View->formatVersion();
  File.EngineHash = View->engineHash();
  File.ToolHash = View->toolHash();
  File.SpecBits = View->specBits();
  File.PositionIndependent = View->positionIndependent();
  File.ExecuteInPlace = View->executeInPlace();
  File.Generation = View->generation();
  File.WriterTag = View->writerTag();
  File.Modules = View->modules();
  File.Traces.reserve(View->numTraces());
  for (uint32_t I = 0; I != View->numTraces(); ++I) {
    // The eager path checks every payload CRC up front, matching the v1
    // contract callers of deserialize() rely on.
    auto Rec = View->record(I);
    if (!Rec)
      return Rec.status();
    File.Traces.push_back(Rec.take());
  }
  return File;
}

Status CacheFile::validate() const {
  std::unordered_set<uint32_t> Starts;
  for (size_t I = 0; I != Traces.size(); ++I) {
    const TraceRecord &Trace = Traces[I];
    auto traceErr = [&](const std::string &Message) {
      return Status::error(ErrorCode::InvalidFormat,
                           formatString("trace %zu @0x%x: %s", I,
                                        Trace.GuestStart,
                                        Message.c_str()));
    };
    if (Trace.ModuleIndex >= Modules.size())
      return traceErr("module index out of range");
    const ModuleKey &Mod = Modules[Trace.ModuleIndex];
    if (Trace.GuestStart < Mod.Base ||
        Trace.GuestStart - Mod.Base >= Mod.Size)
      return traceErr("guest start outside its module mapping");
    if (!Starts.insert(Trace.GuestStart).second)
      return traceErr("duplicate guest start");
    size_t MinCode = dbi::TracePrologueBytes +
                     static_cast<size_t>(Trace.GuestInstCount) *
                         isa::InstructionSize;
    if (Trace.Code.size() < MinCode)
      return traceErr("code image smaller than instruction count");
    if (Trace.GuestInstCount == 0)
      return traceErr("empty trace");
    for (const ExitRecord &Exit : Trace.Exits) {
      if (Exit.Kind > static_cast<uint8_t>(dbi::ExitKind::Halt))
        return traceErr("invalid exit kind");
      if (Exit.InstIndex >= Trace.GuestInstCount)
        return traceErr("exit instruction index out of range");
    }
  }
  // Second pass: links must reference traces in this file.
  for (size_t I = 0; I != Traces.size(); ++I)
    for (const ExitRecord &Exit : Traces[I].Exits)
      if (Exit.LinkedStart != 0 && !Starts.count(Exit.LinkedStart))
        return Status::error(
            ErrorCode::InvalidFormat,
            formatString("trace %zu @0x%x: dangling link to 0x%x", I,
                         Traces[I].GuestStart, Exit.LinkedStart));
  return Status::success();
}
