//===- persist/Key.h - Persistent cache keys --------------------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Keys prevent the reuse of invalid or inconsistent translations
/// (Section 3.2.1): "Keys are a hash of the base address, mapping size,
/// binary path, program header, and modification timestamps." One key is
/// computed per executable mapping; at minimum the application, the
/// engine, and the tool are keyed. A persisted module key must match the
/// key of the identically-named module loaded now, or that module's
/// traces are invalidated and retranslated.
///
/// The PicHash variant excludes the base address; it backs the optional
/// position-independent-translation extension (the paper's noted future
/// work), which tolerates library relocation.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_PERSIST_KEY_H
#define PCC_PERSIST_KEY_H

#include "loader/Loader.h"
#include "support/ByteStream.h"

#include <cstdint>
#include <string>

namespace pcc {
namespace persist {

/// Identity of one executable mapping at persistent-cache creation time.
struct ModuleKey {
  std::string Path;
  uint32_t Base = 0;
  uint32_t Size = 0;
  uint64_t HeaderHash = 0;
  uint64_t ModTime = 0;
  /// Hash over all fields above (the paper's key proper).
  uint64_t FullHash = 0;
  /// Hash excluding the base address (for position-independent reuse).
  uint64_t PicHash = 0;

  /// Computes the key for a mapped module.
  static ModuleKey compute(const loader::LoadedModule &Mod);

  /// Exact match: same binary at the same address.
  bool matches(const ModuleKey &Other) const {
    return FullHash == Other.FullHash;
  }
  /// Relocation-tolerant match: same binary, any address.
  bool matchesIgnoringBase(const ModuleKey &Other) const {
    return PicHash == Other.PicHash;
  }

  void serialize(ByteWriter &Writer) const;
  static ModuleKey deserialize(ByteReader &Reader);

  bool operator==(const ModuleKey &Other) const = default;
};

/// The database lookup key for a (application, engine, tool) triple —
/// what the cache-lookup function at program startup hashes on.
uint64_t computeLookupKey(const ModuleKey &AppKey, uint64_t EngineHash,
                          uint64_t ToolHash);

} // namespace persist
} // namespace pcc

#endif // PCC_PERSIST_KEY_H
