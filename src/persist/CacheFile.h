//===- persist/CacheFile.h - On-disk persistent cache format ----*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent code cache file: "a file stored on disk containing
/// traces and their associated data structures... trace links and
/// translation maps" (Section 3.2.1). The file carries:
///
///   * engine-version and tool hashes (reuse across versions or under a
///     different tool is rejected outright),
///   * one ModuleKey per executable mapping present at creation,
///   * one record per trace: guest location, translated code bytes, exit
///     records including persisted trace links, and (in PIC mode) the
///     relocation mask that makes the translation position independent,
///   * a CRC over the whole payload so corruption is detected before any
///     trace is reused.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_PERSIST_CACHEFILE_H
#define PCC_PERSIST_CACHEFILE_H

#include "dbi/Trace.h"
#include "persist/Key.h"
#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pcc {
namespace persist {

/// A persisted trace exit, including its persisted link.
struct ExitRecord {
  uint8_t Kind = 0; ///< dbi::ExitKind.
  uint32_t InstIndex = 0;
  uint32_t Target = 0;      ///< Absolute guest target (0 if none).
  uint32_t LinkedStart = 0; ///< Guest start of the linked trace (0 if
                            ///< the exit was unlinked at store time).
};

/// One persisted trace.
struct TraceRecord {
  uint32_t GuestStart = 0;
  /// Index into CacheFile::Modules of the module containing GuestStart.
  uint32_t ModuleIndex = 0;
  uint32_t GuestInstCount = 0;
  /// Translated pool image (prologue + encoded instructions + stubs).
  std::vector<uint8_t> Code;
  std::vector<ExitRecord> Exits;
  /// PIC mode only: bit I set when instruction I's immediate holds an
  /// absolute address that must be rebased on relocated reuse.
  std::vector<uint8_t> RelocMask;
  /// Saturating lifetime execution count, accumulated across the runs
  /// that contributed this trace (stored in the index's former Reserved
  /// word, so v2 readers skip it). Groundwork for profile-guided layout.
  uint32_t Heat = 0;
  /// Optimization generation: how many finalize-time promotion passes
  /// this body has been proven through (0 = the cheap first
  /// translation). Serialized as an extra index word only when some
  /// trace in the file is promoted (header flag bit 2), so gen-0 files
  /// stay byte-identical to pre-OptGen writers and old readers still
  /// parse them.
  uint32_t OptGen = 0;
  /// Serialized analysis::Certificate blob proving this body equivalent
  /// to its gen-0 guest source (empty when uncertified). Stored in the
  /// trailing certificate section only when some trace carries one
  /// (header flag bit 3), so uncertified files stay byte-identical.
  /// The blob is self-checking (trailing CRC), so one tampered
  /// certificate degrades that trace to a full re-prove without
  /// poisoning the rest of the file.
  std::vector<uint8_t> Cert;

  bool relocBit(uint32_t InstIndex) const {
    uint32_t Byte = InstIndex / 8;
    return Byte < RelocMask.size() &&
           (RelocMask[Byte] >> (InstIndex % 8)) & 1;
  }
  void setRelocBit(uint32_t InstIndex) {
    uint32_t Byte = InstIndex / 8;
    if (RelocMask.size() <= Byte)
      RelocMask.resize(Byte + 1, 0);
    RelocMask[Byte] |= uint8_t(1u << (InstIndex % 8));
  }
};

/// In-memory image of a persistent cache file.
struct CacheFile {
  uint64_t EngineHash = 0;
  uint64_t ToolHash = 0;
  /// Serialized dbi::InstrumentationSpec flags (diagnostics; the tool
  /// hash already covers them).
  uint8_t SpecBits = 0;
  /// True when translations are position independent.
  bool PositionIndependent = false;
  /// True for an execute-in-place (XIP) generation: serialize() emits
  /// format v3 with a page-aligned payload section that consumers mmap
  /// directly as executable trace bodies. Requires PositionIndependent.
  bool ExecuteInPlace = false;
  /// Executable mappings at creation time; index 0 is the application.
  std::vector<ModuleKey> Modules;
  std::vector<TraceRecord> Traces;
  /// Accumulation generation: how many runs contributed to this cache.
  uint32_t Generation = 1;
  /// Low 16 bits of the last writer's process id (diagnostics only; the
  /// v2 header stores it in the former Reserved0 field, so old readers
  /// ignore it). 0 when unknown (legacy files, unset by caller).
  uint16_t WriterTag = 0;
  /// On-disk format the file was deserialized from (1 = legacy eager,
  /// 2 = indexed, 3 = indexed XIP). Not serialized; serialize() emits
  /// v2, or v3 when ExecuteInPlace is set.
  uint32_t SourceFormat = 2;

  /// Highest per-trace optimization generation present (0 when every
  /// trace is an unpromoted first translation). Non-zero switches
  /// serialize() to the wide (OptGen-bearing) index-entry layout.
  uint32_t maxOptGen() const;

  /// True when any trace carries a validation certificate; switches
  /// serialize() to append the trailing certificate section (header
  /// flag bit 3).
  bool hasCerts() const;

  /// Total translated-code bytes (the code half of Figure 9).
  uint64_t codeBytes() const;
  /// Total data-structure bytes (the data half of Figure 9), using the
  /// same footprint formula as the resident cache.
  uint64_t dataBytes() const;

  /// Serializes in the indexed v2 format (header + module table + trace
  /// index + payload, with per-section and per-trace CRCs). The output
  /// buffer is reserved from a computed exact size, so appending never
  /// reallocates.
  std::vector<uint8_t> serialize() const;
  /// Exact byte size serialize() would produce, without producing it
  /// (cost accounting charges by size before the store serializes).
  size_t serializedSize() const;
  /// Serializes in the legacy v1 format (whole-file trailing CRC32).
  /// Kept for migration tests and for writing donor fixtures.
  std::vector<uint8_t> serializeLegacy() const;
  /// Deserializes either format, dispatching on the magic; validates all
  /// CRCs (v2: header, module table, trace index, and every trace
  /// payload — this is the eager compatibility path; scans and priming
  /// use CacheFileView instead). SourceFormat records which format the
  /// bytes were in.
  static ErrorOr<CacheFile> deserialize(const std::vector<uint8_t> &Bytes);

  /// Deep structural validation beyond what deserialize() enforces:
  /// every trace's start lies inside its module's mapping, code images
  /// are large enough for their instruction counts, exit instruction
  /// indices are in range, linked exits reference traces present in the
  /// file, and no two traces share a guest start. Returns the first
  /// violation found.
  Status validate() const;
};

/// Data-structure footprint of one trace with \p NumExits exits and
/// \p NumInsts instructions (must agree with
/// dbi::TranslatedTrace::dataBytes()).
uint32_t traceDataBytes(uint32_t NumExits, uint32_t NumInsts);

} // namespace persist
} // namespace pcc

#endif // PCC_PERSIST_CACHEFILE_H
