//===- persist/DbCheck.h - Offline database fsck/repair ---------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Offline integrity checking and repair for a directory-backed cache
/// database — the fsck the paper's Oracle deployment would run between
/// test batches. A check pass walks every cache file and validates all
/// of it (header, module table, trace index, and every trace payload
/// CRC — deeper than any runtime path, which checks payloads lazily),
/// inventories writer-crash temporaries and lock files, and lists the
/// quarantine. A repair pass additionally:
///
///   * rebuilds partially corrupt v2 caches by dropping the traces
///     whose payload CRC fails and re-finalizing the survivors (links
///     into dropped traces are cleared),
///   * quarantines caches too damaged to salvage,
///   * sweeps orphaned write temporaries and stale per-key lock files.
///
/// Repair runs under the store-wide lock held exclusively, so no live
/// publisher can race it; a plain check takes no locks at all (readers
/// never need them) and never mutates the database.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_PERSIST_DBCHECK_H
#define PCC_PERSIST_DBCHECK_H

#include "persist/CacheStore.h"
#include "support/Error.h"
#include "support/ThreadPool.h"

#include <string>
#include <vector>

namespace pcc {
namespace persist {

struct DbCheckOptions {
  /// Fix what can be fixed (see file comment) instead of only
  /// reporting. Mutates the database; requires it to be writable.
  bool Repair = false;
  /// Worker pool to fan the per-file checks across (null: serial).
  /// Each file is checked — and under Repair, rewritten or quarantined
  /// — independently; reports land in per-file slots and are
  /// aggregated in listing order, so the DbCheckReport is identical
  /// for any worker count.
  support::ThreadPool *Pool = nullptr;
  /// Deep semantic verification: after the CRC pass, every intact
  /// trace is symbolically revalidated against its module's guest code
  /// (analysis::validateTranslation) — catching miscompiles and
  /// tampered payloads whose checksums are perfectly fine. Needs the
  /// guest modules, supplied via ModulePaths. Traces whose module is
  /// not supplied (or no longer matches its recorded key) are counted
  /// unverifiable, not failed. A file with mismatches is corrupt;
  /// under Repair it is quarantined with
  /// QuarantineReasonCode::SemanticMismatch.
  bool Deep = false;
  /// Serialized binary::Module files resolving the cache module keys
  /// for --deep, matched by recorded module path.
  std::vector<std::string> ModulePaths;
};

/// What the check found for (and possibly did to) one cache file.
struct FileCheckReport {
  enum class FileState : uint8_t {
    Clean,       ///< Every CRC checked out.
    Corrupt,     ///< Validation failed (report-only pass).
    Unreadable,  ///< I/O error before contents could be judged.
    Repaired,    ///< Rebuilt with the corrupt traces dropped.
    Quarantined, ///< Unsalvageable; moved into the quarantine.
  };

  std::string Name; ///< File name within the database directory.
  FileState State = FileState::Clean;
  std::string Detail; ///< First failure observed (empty when clean).
  /// Execute-in-place (format v3) file: its payload section is
  /// page-aligned and consumers mmap it directly as executable trace
  /// bodies. A repair rewrite preserves the XIP generation.
  bool Xip = false;
  uint32_t TracesKept = 0;
  uint32_t TracesDropped = 0; ///< Payload-CRC failures in this file.
  /// \name Certificate results
  /// Validation certificates (promoted traces carry one) are checked on
  /// every pass. A plain pass runs the self-contained check: the
  /// recorded proof is replayed against the certificate's own embedded
  /// source and the record's body bytes — no guest modules needed. A
  /// --deep pass binds the check to the real module text instead, and
  /// falls back to the full symbolic prover when a certificate is
  /// rejected or missing from a promoted body. Under --repair, rejected
  /// certificates are stripped (plain) or regenerated from a successful
  /// re-proof (--deep); the trace itself survives whenever the prover
  /// vouches for it.
  /// @{
  uint32_t CertsChecked = 0;  ///< Certificates checked on this file.
  uint32_t CertsRejected = 0; ///< Of those, failed the trusted checker.
  /// Promoted bodies the full prover had to vouch for because their
  /// certificate was rejected or absent (--deep passes only).
  uint32_t CertsReplayedByProver = 0;
  /// @}
  /// \name Deep-verification results (--deep passes only)
  /// @{
  uint32_t TracesVerified = 0;     ///< Proved effect-equivalent.
  uint32_t TracesMismatched = 0;   ///< Failed semantic validation.
  uint32_t TracesUnverifiable = 0; ///< Module missing or key changed.
  /// Of TracesVerified, bodies at optimization generation >= 1: the
  /// finalize-time AOT tier's transforms re-proved offline.
  uint32_t TracesPromotedVerified = 0;
  /// @}
};

/// Aggregate result of one check/repair pass.
struct DbCheckReport {
  std::vector<FileCheckReport> Files;
  uint32_t FilesScanned = 0;
  uint32_t FilesClean = 0;
  uint32_t FilesCorrupt = 0;    ///< Still corrupt (report-only pass).
  uint32_t FilesUnreadable = 0; ///< I/O errors (never repairable).
  uint32_t FilesRepaired = 0;
  uint32_t FilesQuarantined = 0;
  uint32_t FilesXip = 0; ///< Execute-in-place (v3) files scanned.
  uint32_t TracesDropped = 0;
  /// Certificate aggregates (see FileCheckReport).
  uint32_t CertsChecked = 0;
  uint32_t CertsRejected = 0;
  uint32_t CertsReplayedByProver = 0;
  /// Deep-verification aggregates (zero unless Opts.Deep).
  uint32_t TracesVerified = 0;
  uint32_t TracesMismatched = 0;
  uint32_t TracesUnverifiable = 0;
  uint32_t TracesPromotedVerified = 0;

  /// Writer-crash temporaries (`*.tmp.<pid>-<n>`) in the directory.
  uint32_t TempsFound = 0;
  uint32_t TempsSwept = 0;

  /// Lock-file inventory. Lock files are permanent by design (see
  /// FileLock.h); "stale" per-key lock files are swept only under the
  /// exclusive store lock, where no publisher can hold one.
  uint32_t LocksFound = 0;
  uint32_t LocksHeld = 0;
  uint32_t StaleLocksSwept = 0;

  /// Quarantine contents after the pass.
  std::vector<QuarantineEntry> Quarantine;

  /// True when the database needs no (further) attention: nothing
  /// corrupt or unreadable remains and no crash temporaries linger.
  bool clean() const {
    return FilesCorrupt == 0 && FilesUnreadable == 0 &&
           TracesMismatched == 0 && CertsRejected == 0 &&
           TempsFound == TempsSwept;
  }
};

/// Runs a check (or, with Opts.Repair, a repair) pass over the
/// directory-backed database at \p Dir. Errors are returned only for
/// whole-database failures (unlistable directory, lock acquisition);
/// per-file problems land in the report.
ErrorOr<DbCheckReport> checkDatabase(const std::string &Dir,
                                     const DbCheckOptions &Opts = {});

const char *fileCheckStateName(FileCheckReport::FileState S);

} // namespace persist
} // namespace pcc

#endif // PCC_PERSIST_DBCHECK_H
