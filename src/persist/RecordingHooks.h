//===- persist/RecordingHooks.h - record/replay taps ------------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-global observation points the record/replay layer installs
/// while a run is being recorded. The persistence stack reports the
/// nondeterministic inputs it consumes — the cache bytes an open
/// observed, which tier satisfied the prime, every quarantine decision,
/// and the install queue's scheduling outcomes — without depending on
/// `pcc::replay` (the recorder lives above this layer and implements
/// the interface).
///
/// The hooks are off in normal operation: every tap site guards itself
/// with a single relaxed atomic load of the installed pointer, so an
/// unrecorded run pays one predictable branch per site (the same
/// discipline FaultInjector::enabled() uses).
///
//===----------------------------------------------------------------------===//

#ifndef PCC_PERSIST_RECORDINGHOOKS_H
#define PCC_PERSIST_RECORDINGHOOKS_H

#include "persist/CacheStore.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace pcc {
namespace persist {

/// Install-queue scheduling outcomes of one run — how the racing of
/// background payload validation against the engine thread resolved.
/// Recorded as *diagnostics*: the PR 4 invariant makes EngineStats
/// independent of these numbers, so replay never asserts on them, but a
/// human minimizing a divergence wants to see how the schedule fell.
struct ScheduleOutcomes {
  uint64_t ChunksPublished = 0;      ///< Worker-validated chunks posted.
  uint64_t ChunksClaimed = 0;        ///< Chunks the engine consumed.
  uint64_t ChunksWithdrawn = 0;      ///< Unclaimed chunks taken back.
  uint64_t ChunksInFlightSkipped = 0; ///< Claims lost to a busy worker.
};

/// Interface the recorder implements. Callbacks may arrive from worker
/// threads; implementations synchronize internally. All callbacks must
/// be cheap and must not call back into the persistence layer.
class RecordingHooks {
public:
  virtual ~RecordingHooks() = default;

  /// A store open observed the raw bytes of the cache at \p Ref (fired
  /// before parsing, so corrupt caches are captured too).
  virtual void onCacheObserved(const std::string &Ref,
                               const std::vector<uint8_t> &Bytes) = 0;

  /// The session committed to priming from the cache at \p Ref, served
  /// by \p Tier with the given modeled remote-fetch charges.
  virtual void onCacheConsumed(const std::string &Ref, CacheTier Tier,
                               uint64_t FetchBytes,
                               uint64_t FetchCycles) = 0;

  /// A cache was quarantined (auto-quarantine on open, or the semantic
  /// validator's verdict) with the given parsed reason.
  virtual void onQuarantine(const std::string &Ref,
                            QuarantineReasonCode Code,
                            const std::string &Detail) = 0;

  /// The run's install-queue scheduling outcomes (fired once, at the
  /// session's durability barrier).
  virtual void onScheduleOutcomes(const ScheduleOutcomes &Outcomes) = 0;

  /// Name under which the in-progress recording will be persisted
  /// ("" when the recording is anonymous). Quarantine reasons embed it
  /// so `pcc-dbcheck --replay` can find the log.
  virtual std::string logName() const = 0;
};

namespace detail {
extern std::atomic<RecordingHooks *> ActiveRecordingHooks;
} // namespace detail

/// The installed hooks, or nullptr. One relaxed load — cheap enough for
/// every tap site to call unconditionally.
inline RecordingHooks *recordingHooks() {
  return detail::ActiveRecordingHooks.load(std::memory_order_acquire);
}

/// Installs \p Hooks process-globally (nullptr to detach). The caller
/// owns the object and must keep it alive until after detaching; runs
/// are recorded one at a time.
void setRecordingHooks(RecordingHooks *Hooks);

/// Encoded reason for a quarantine, annotated with the active
/// recording's log name (when a recording is in progress) so the
/// quarantine carries a pointer to the run that produced it. Also fires
/// RecordingHooks::onQuarantine. Every quarantine site in the
/// persistence stack funnels through here.
std::string annotatedQuarantineReason(const std::string &Ref,
                                      QuarantineReasonCode Code,
                                      const std::string &Detail);

/// Splits the "replay-log: <name>" annotation (if any) out of a stored
/// quarantine reason: returns the reason without the annotation line
/// and sets \p ReplayLog to the log name or "".
std::string splitReplayAnnotation(const std::string &Stored,
                                  std::string *ReplayLog);

} // namespace persist
} // namespace pcc

#endif // PCC_PERSIST_RECORDINGHOOKS_H
