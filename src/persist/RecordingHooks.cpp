//===- persist/RecordingHooks.cpp -----------------------------------------===//

#include "persist/RecordingHooks.h"

using namespace pcc;
using namespace pcc::persist;

namespace pcc {
namespace persist {
namespace detail {
std::atomic<RecordingHooks *> ActiveRecordingHooks{nullptr};
} // namespace detail
} // namespace persist
} // namespace pcc

void pcc::persist::setRecordingHooks(RecordingHooks *Hooks) {
  detail::ActiveRecordingHooks.store(Hooks, std::memory_order_release);
}

namespace {
/// The annotation is a separate line so older readers that treat the
/// whole file as a free-form reason still render sensibly.
constexpr const char *ReplayLogPrefix = "\nreplay-log: ";
} // namespace

std::string
pcc::persist::annotatedQuarantineReason(const std::string &Ref,
                                        QuarantineReasonCode Code,
                                        const std::string &Detail) {
  std::string Reason = encodeQuarantineReason(Code, Detail);
  if (RecordingHooks *Hooks = recordingHooks()) {
    Hooks->onQuarantine(Ref, Code, Detail);
    std::string Log = Hooks->logName();
    if (!Log.empty())
      Reason += ReplayLogPrefix + Log;
  }
  return Reason;
}

std::string
pcc::persist::splitReplayAnnotation(const std::string &Stored,
                                    std::string *ReplayLog) {
  if (ReplayLog)
    ReplayLog->clear();
  size_t Pos = Stored.find(ReplayLogPrefix);
  if (Pos == std::string::npos)
    return Stored;
  if (ReplayLog) {
    std::string Log =
        Stored.substr(Pos + std::string(ReplayLogPrefix).size());
    size_t End = Log.find('\n');
    if (End != std::string::npos)
      Log.resize(End);
    *ReplayLog = Log;
  }
  return Stored.substr(0, Pos);
}
