//===- persist/DirectoryStore.cpp -----------------------------------------===//

#include "persist/DirectoryStore.h"

#include "persist/RecordingHooks.h"
#include "support/FileLock.h"
#include "support/FileSystem.h"
#include "support/Random.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

using namespace pcc;
using namespace pcc::persist;

namespace {

bool isCacheFileName(const std::string &Name) {
  return Name.size() >= 4 && Name.substr(Name.size() - 4) == ".pcc";
}

bool isLockFileName(const std::string &Name) {
  return Name.size() >= 5 && Name.substr(Name.size() - 5) == ".lock";
}

bool isAttachmentFileName(const std::string &Name) {
  return Name.size() >= 5 && Name.substr(Name.size() - 5) == ".pcrr";
}

/// Raw stdio read that bypasses pcc::readFile, so observing cache bytes
/// for a recording never consumes a FaultOp::Read decision — the
/// record-time and replay-time fault streams must see the exact same
/// call sequence.
bool readFileRaw(const std::string &Path, std::vector<uint8_t> &Out) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return false;
  Out.clear();
  uint8_t Buffer[1 << 16];
  size_t Got = 0;
  while ((Got = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Out.insert(Out.end(), Buffer, Buffer + Got);
  bool Ok = std::ferror(File) == 0;
  std::fclose(File);
  return Ok;
}

} // namespace

DirectoryStore::DirectoryStore(std::string Dir) : Dir(std::move(Dir)) {
  // Creation failure surfaces later as IoError from open/publish.
  (void)createDirectories(this->Dir);
}

std::string DirectoryStore::refFor(uint64_t LookupKey) const {
  return Dir + "/" + toHex(LookupKey, 16) + ".pcc";
}

std::string DirectoryStore::lockDir() const { return Dir + "/.locks"; }

std::string DirectoryStore::quarantineDir() const {
  return Dir + "/.quarantine";
}

std::string DirectoryStore::storeLockPath() const {
  // Lock files live out of the store directory proper so directory
  // listings see nothing but cache files. Creation failure surfaces as
  // IoError from the subsequent FileLock::acquire.
  (void)createDirectories(lockDir());
  return lockDir() + "/store.lock";
}

std::string DirectoryStore::keyLockPath(uint64_t LookupKey) const {
  (void)createDirectories(lockDir());
  return lockDir() + "/k" + toHex(LookupKey, 16) + ".lock";
}

bool DirectoryStore::exists(uint64_t LookupKey) const {
  return fileExists(refFor(LookupKey));
}

ErrorOr<StoredCache> DirectoryStore::openRef(const std::string &Ref,
                                             CacheFileView::Depth D) {
  if (RecordingHooks *Hooks = recordingHooks()) {
    // Capture the slot's bytes before parsing: a corrupt cache that the
    // open below quarantines must be reproducible at replay too.
    std::vector<uint8_t> Raw;
    if (readFileRaw(Ref, Raw))
      Hooks->onCacheObserved(Ref, Raw);
  }
  StoredCache Cache;
  if (isV2CacheFile(Ref)) {
    // Indexed open: header (and at Depth::Index the module table and
    // trace index) are CRC-validated here; trace payloads stay unread
    // until first execution.
    auto View = CacheFileView::openFile(Ref, D);
    if (!View) {
      maybeAutoQuarantine(Ref, View.status());
      return View.status();
    }
    Cache.View = View.take();
    return Cache;
  }
  auto File = loadRef(Ref); // Legacy fallback: eager deserialize.
  if (!File) {
    maybeAutoQuarantine(Ref, File.status());
    return File.status();
  }
  Cache.Eager = File.take();
  return Cache;
}

ErrorOr<CacheFile> DirectoryStore::loadRef(const std::string &Ref) {
  auto Bytes = readFile(Ref);
  if (!Bytes)
    return Bytes.status();
  return CacheFile::deserialize(*Bytes);
}

Status DirectoryStore::put(uint64_t LookupKey, const CacheFile &File) {
  return writeFileAtomic(refFor(LookupKey), File.serialize());
}

Status DirectoryStore::putRef(const std::string &Ref,
                              const CacheFile &File) {
  return writeFileAtomic(Ref, File.serialize());
}

uint32_t DirectoryStore::slotGeneration(const std::string &Ref) const {
  if (!fileExists(Ref))
    return 0;
  if (isV2CacheFile(Ref)) {
    auto View =
        CacheFileView::openFile(Ref, CacheFileView::Depth::HeaderOnly);
    return View ? View->generation() : 0;
  }
  auto Bytes = readFile(Ref);
  if (!Bytes)
    return 0;
  auto File = CacheFile::deserialize(*Bytes);
  return File ? File->Generation : 0;
}

ErrorOr<FileLock> DirectoryStore::lockWithRetry(const std::string &Path,
                                                FileLock::Mode M,
                                                uint32_t *Retries) {
  // Per-call jitter stream: process id + a counter decorrelate
  // publishers that collided once, so they do not collide on every
  // retry as well.
  static std::atomic<uint64_t> SeedCounter{0};
  Rng Jitter((static_cast<uint64_t>(currentProcessId()) << 32) ^
             SeedCounter.fetch_add(1, std::memory_order_relaxed));
  uint64_t Delay = Policy.BaseDelayMicros;
  for (uint32_t Attempt = 1;; ++Attempt) {
    auto Lock = FileLock::tryAcquire(Path, M);
    if (Lock.ok() || Lock.status().code() != ErrorCode::WouldBlock)
      return Lock;
    if (Attempt >= Policy.MaxAttempts)
      return Lock; // WouldBlock: contention outlasted the budget.
    if (Retries)
      ++*Retries;
    // Sleep in [Delay/2, Delay], then double toward the cap.
    uint64_t Sleep = Delay - Jitter.nextBelow(Delay / 2 + 1);
    std::this_thread::sleep_for(std::chrono::microseconds(Sleep));
    Delay = std::min<uint64_t>(Delay * 2, Policy.MaxDelayMicros);
  }
}

ErrorOr<PublishResult> DirectoryStore::publish(uint64_t LookupKey,
                                               CacheFile File,
                                               uint32_t BaseGeneration) {
  PublishResult Result;
  // Shared on the store lock: publishers of different keys proceed in
  // parallel, while maintenance (exclusive holder) quiesces them all.
  // Both acquisitions retry with backoff: transient contention (or an
  // injected timeout) is absorbed here, not surfaced to the session.
  auto StoreLock = lockWithRetry(storeLockPath(), FileLock::Mode::Shared,
                                 &Result.LockRetries);
  if (!StoreLock)
    return StoreLock.status();
  // Exclusive on the slot: the generation read, the merge decision and
  // the rename below form one critical section per key.
  auto KeyLock = lockWithRetry(keyLockPath(LookupKey),
                               FileLock::Mode::Exclusive,
                               &Result.LockRetries);
  if (!KeyLock)
    return KeyLock.status();

  std::string Ref = refFor(LookupKey);
  uint32_t Current = slotGeneration(Ref);
  if (Current != 0 && Current != BaseGeneration) {
    // A concurrent finalizer advanced the slot since the caller primed.
    // Re-read the winner and re-accumulate its novel traces, so both
    // runs' translations survive. An unreadable winner is overwritten.
    auto Winner = loadRef(Ref);
    if (Winner) {
      File = mergeCacheFiles(*Winner, std::move(File));
      File.Generation = Current + 1;
      Result.Merged = true;
    }
  }
  Result.Generation = File.Generation;
  Status S = writeFileAtomic(Ref, File.serialize(), /*SyncToDisk=*/true);
  if (!S.ok())
    return S;
  return Result;
}

Status DirectoryStore::retire(uint64_t LookupKey) {
  return removeFile(refFor(LookupKey));
}

void DirectoryStore::sweepOrphanedTemps() {
  auto Names = listDirectory(Dir);
  if (!Names)
    return;
  for (const std::string &Name : *Names)
    if (isAtomicTempName(Name))
      (void)removeFile(Dir + "/" + Name);
}

Status DirectoryStore::clear() {
  auto Lock = FileLock::acquire(storeLockPath());
  if (!Lock)
    return Lock.status();
  sweepOrphanedTemps();
  auto Names = listDirectory(Dir);
  if (!Names)
    return Names.status();
  for (const std::string &Name : *Names) {
    // Lock files are never deleted (see FileLock.h); they normally live
    // in .locks/ (which listDirectory's files-only scan skips anyway),
    // but skip strays in the store directory too.
    if (isLockFileName(Name))
      continue;
    Status S = removeFile(Dir + "/" + Name);
    if (!S.ok())
      return S;
  }
  return Status::success();
}

ErrorOr<std::vector<std::string>>
DirectoryStore::findCompatible(uint64_t EngineHash, uint64_t ToolHash) {
  auto Names = listDirectory(Dir);
  if (!Names)
    return Names.status();
  std::vector<std::string> Candidates;
  for (const std::string &Name : *Names)
    if (isCacheFileName(Name))
      Candidates.push_back(Dir + "/" + Name);
  // Per-file probes are independent (each touches only its own file and
  // at worst its own quarantine rename), so a scan pool fans them out;
  // one match flag per candidate keeps the result in listing order
  // either way.
  std::vector<uint8_t> IsMatch(Candidates.size(), 0);
  auto Probe = [&](size_t I) {
    const std::string &Path = Candidates[I];
    if (isV2CacheFile(Path)) {
      // Header-only open: the compatibility hashes live in the first 76
      // bytes, so the scan cost is independent of cache size.
      auto View = CacheFileView::openFile(
          Path, CacheFileView::Depth::HeaderOnly);
      if (!View) {
        // Not a candidate — and corrupt contents get pulled aside so
        // the next scan is not doomed to trip over them again.
        maybeAutoQuarantine(Path, View.status());
        return;
      }
      if (View->engineHash() == EngineHash &&
          View->toolHash() == ToolHash)
        IsMatch[I] = 1;
      return;
    }
    auto File = loadRef(Path); // Legacy fallback: eager deserialize.
    if (!File) {
      maybeAutoQuarantine(Path, File.status());
      return;
    }
    if (File->EngineHash == EngineHash && File->ToolHash == ToolHash)
      IsMatch[I] = 1;
  };
  if (ScanPool && ScanPool->workerCount() > 0)
    ScanPool->parallelFor(Candidates.size(), Probe);
  else
    for (size_t I = 0; I < Candidates.size(); ++I)
      Probe(I);
  std::vector<std::string> Matches;
  for (size_t I = 0; I < Candidates.size(); ++I)
    if (IsMatch[I])
      Matches.push_back(std::move(Candidates[I]));
  return Matches;
}

ErrorOr<std::vector<std::string>> DirectoryStore::listRefs() const {
  auto Names = listDirectory(Dir);
  if (!Names)
    return Names.status();
  std::vector<std::string> Refs;
  for (const std::string &Name : *Names)
    if (isCacheFileName(Name))
      Refs.push_back(Dir + "/" + Name);
  std::sort(Refs.begin(), Refs.end());
  return Refs;
}

ErrorOr<StoreStats> DirectoryStore::stats() {
  auto Names = listDirectory(Dir);
  if (!Names)
    return Names.status();
  std::vector<std::string> Paths;
  for (const std::string &Name : *Names)
    if (isCacheFileName(Name))
      Paths.push_back(Dir + "/" + Name);
  // One partial per file; summed in listing order below so the totals
  // are identical whether or not a scan pool fans the files out.
  std::vector<StoreStats> Partials(Paths.size());
  auto ScanOne = [&](size_t I) {
    const std::string &Path = Paths[I];
    StoreStats &Part = Partials[I];
    if (isV2CacheFile(Path)) {
      // Index-deep open: trace counts and code/data totals come from
      // the trace index; payload bytes are never read.
      auto OnDisk = fileSize(Path);
      if (!OnDisk) {
        ++Part.UnreadableFiles;
        return;
      }
      ++Part.CacheFiles;
      Part.DiskBytes += *OnDisk;
      auto View =
          CacheFileView::openFile(Path, CacheFileView::Depth::Index);
      if (!View) {
        ++Part.CorruptFiles;
        return;
      }
      Part.CodeBytes += View->codeBytes();
      Part.DataBytes += View->dataBytes();
      Part.Traces += View->numTraces();
      return;
    }
    auto Bytes = readFile(Path);
    if (!Bytes) {
      ++Part.UnreadableFiles;
      return;
    }
    ++Part.CacheFiles;
    Part.DiskBytes += Bytes->size();
    auto File = CacheFile::deserialize(*Bytes);
    if (!File) {
      ++Part.CorruptFiles;
      return;
    }
    Part.CodeBytes += File->codeBytes();
    Part.DataBytes += File->dataBytes();
    Part.Traces += File->Traces.size();
  };
  if (ScanPool && ScanPool->workerCount() > 0)
    ScanPool->parallelFor(Paths.size(), ScanOne);
  else
    for (size_t I = 0; I < Paths.size(); ++I)
      ScanOne(I);
  StoreStats Result;
  for (const StoreStats &Part : Partials) {
    Result.CacheFiles += Part.CacheFiles;
    Result.CorruptFiles += Part.CorruptFiles;
    Result.UnreadableFiles += Part.UnreadableFiles;
    Result.DiskBytes += Part.DiskBytes;
    Result.CodeBytes += Part.CodeBytes;
    Result.DataBytes += Part.DataBytes;
    Result.Traces += Part.Traces;
  }
  if (auto Entries = quarantined())
    Result.QuarantinedFiles = static_cast<uint32_t>(Entries->size());
  return Result;
}

ErrorOr<uint32_t> DirectoryStore::shrinkTo(uint64_t MaxBytes) {
  // Exclusive on the store lock: no publisher may race the eviction
  // scan, and orphaned temporaries can be swept safely.
  auto Lock = FileLock::acquire(storeLockPath());
  if (!Lock)
    return Lock.status();
  sweepOrphanedTemps();

  auto Names = listDirectory(Dir);
  if (!Names)
    return Names.status();

  struct Entry {
    std::string Path;
    uint64_t Size = 0;
    uint32_t Generation = 0;
    bool Corrupt = false;
  };
  std::vector<Entry> Entries;
  uint64_t Total = 0;
  for (const std::string &Name : *Names) {
    if (!isCacheFileName(Name))
      continue;
    Entry E;
    E.Path = Dir + "/" + Name;
    if (isV2CacheFile(E.Path)) {
      // Index-deep (still payload-free): shrinkTo must flag files with
      // damaged module tables or trace indices as corrupt so they are
      // deleted unconditionally, not just truncated-header ones.
      auto OnDisk = fileSize(E.Path);
      if (!OnDisk)
        continue;
      E.Size = *OnDisk;
      auto View = CacheFileView::openFile(
          E.Path, CacheFileView::Depth::Index);
      if (!View)
        E.Corrupt = true;
      else
        E.Generation = View->generation();
    } else {
      auto Bytes = readFile(E.Path);
      if (!Bytes)
        continue;
      E.Size = Bytes->size();
      auto File = CacheFile::deserialize(*Bytes);
      if (!File)
        E.Corrupt = true;
      else
        E.Generation = File->Generation;
    }
    Total += E.Size;
    Entries.push_back(std::move(E));
  }

  uint32_t Removed = 0;
  // Corrupt files leave the store unconditionally — into the
  // quarantine (with deletion as fallback), so the evidence survives
  // for pcc-dbcheck.
  for (auto &E : Entries) {
    if (!E.Corrupt)
      continue;
    if (quarantineRef(E.Path,
                      annotatedQuarantineReason(
                          E.Path, QuarantineReasonCode::InvalidFormat,
                          "failed validation during shrink"))
            .ok() ||
        removeFile(E.Path).ok()) {
      Total -= E.Size;
      E.Size = 0;
      ++Removed;
    }
  }
  if (Total <= MaxBytes)
    return Removed;

  // Evict least-accumulated caches first (lowest reuse evidence); among
  // equals, reclaim the most bytes per eviction.
  std::sort(Entries.begin(), Entries.end(),
            [](const Entry &A, const Entry &B) {
              if (A.Generation != B.Generation)
                return A.Generation < B.Generation;
              return A.Size > B.Size;
            });
  for (const Entry &E : Entries) {
    if (Total <= MaxBytes)
      break;
    if (E.Corrupt || E.Size == 0)
      continue;
    if (removeFile(E.Path).ok()) {
      Total -= E.Size;
      ++Removed;
    }
  }
  return Removed;
}

Status DirectoryStore::quarantineRef(const std::string &Ref,
                                     const std::string &Reason) {
  if (Ref.size() <= Dir.size() + 1 ||
      Ref.compare(0, Dir.size() + 1, Dir + "/") != 0)
    return Status::error(ErrorCode::InvalidArgument,
                         "ref outside store: " + Ref);
  std::string Name = Ref.substr(Dir.size() + 1);
  if (Name.find('/') != std::string::npos)
    return Status::error(ErrorCode::InvalidArgument,
                         "ref not a store slot: " + Ref);
  Status S = createDirectories(quarantineDir());
  if (!S.ok())
    return S;
  S = renameFile(Ref, quarantineDir() + "/" + Name);
  if (!S.ok())
    return S;
  // The reason record is best-effort diagnosis; the move above is what
  // protects readers.
  std::vector<uint8_t> ReasonBytes(Reason.begin(), Reason.end());
  (void)writeFileAtomic(quarantineDir() + "/" + Name + ".reason",
                        ReasonBytes);
  return Status::success();
}

ErrorOr<std::vector<QuarantineEntry>> DirectoryStore::quarantined() {
  std::vector<QuarantineEntry> Entries;
  auto Names = listDirectory(quarantineDir());
  if (!Names)
    return Entries; // No .quarantine/ yet: nothing was ever bad.
  for (const std::string &Name : *Names) {
    if (Name.size() >= 7 && Name.substr(Name.size() - 7) == ".reason")
      continue;
    if (isAtomicTempName(Name))
      continue; // A crashed reason write, not a quarantined cache.
    if (isAttachmentFileName(Name))
      continue; // A replay-log attachment, not a quarantined cache.
    QuarantineEntry E;
    E.Name = Name;
    if (auto Reason = readFile(quarantineDir() + "/" + Name + ".reason")) {
      std::string Stored(Reason->begin(), Reason->end());
      Stored = splitReplayAnnotation(Stored, &E.ReplayLog);
      E.Code = parseQuarantineReason(Stored, &E.Reason);
    }
    if (auto Size = fileSize(quarantineDir() + "/" + Name))
      E.Bytes = *Size;
    Entries.push_back(std::move(E));
  }
  return Entries;
}

Status DirectoryStore::restoreQuarantined(const std::string &Name) {
  std::string From = quarantineDir() + "/" + Name;
  if (!fileExists(From))
    return Status::error(ErrorCode::NotFound,
                         "not in quarantine: " + Name);
  std::string To = Dir + "/" + Name;
  if (fileExists(To))
    return Status::error(ErrorCode::InvalidArgument,
                         "slot occupied, not restoring over " + To);
  Status S = renameFile(From, To);
  if (!S.ok())
    return S;
  (void)removeFile(From + ".reason");
  return Status::success();
}

ErrorOr<uint32_t> DirectoryStore::purgeQuarantine() {
  auto Entries = quarantined();
  if (!Entries)
    return Entries.status();
  uint32_t Purged = 0;
  for (const QuarantineEntry &E : *Entries) {
    if (!removeFile(quarantineDir() + "/" + E.Name).ok())
      continue;
    (void)removeFile(quarantineDir() + "/" + E.Name + ".reason");
    ++Purged;
  }
  // Attachments (replay logs) go with the evidence they document.
  if (auto Names = listDirectory(quarantineDir()))
    for (const std::string &Name : *Names)
      if (isAttachmentFileName(Name))
        (void)removeFile(quarantineDir() + "/" + Name);
  return Purged;
}

Status
DirectoryStore::attachToQuarantine(const std::string &FileName,
                                   const std::vector<uint8_t> &Bytes) {
  if (FileName.empty() || FileName.find('/') != std::string::npos)
    return Status::error(ErrorCode::InvalidArgument,
                         "bad attachment name: " + FileName);
  Status S = createDirectories(quarantineDir());
  if (!S.ok())
    return S;
  return writeFileAtomic(quarantineDir() + "/" + FileName, Bytes);
}

ErrorOr<std::vector<uint8_t>>
DirectoryStore::readQuarantineAttachment(const std::string &FileName) {
  if (FileName.empty() || FileName.find('/') != std::string::npos)
    return Status::error(ErrorCode::InvalidArgument,
                         "bad attachment name: " + FileName);
  return readFile(quarantineDir() + "/" + FileName);
}

void DirectoryStore::maybeAutoQuarantine(const std::string &Ref,
                                         const Status &Failure) {
  // Only readable-but-invalid contents are quarantine material: an
  // IoError may be transient, NotFound has nothing to move, and a
  // version/key mismatch is a perfectly healthy file for some other
  // engine build.
  if (!AutoQuarantine || Failure.code() != ErrorCode::InvalidFormat)
    return;
  if (Ref.size() <= Dir.size() + 1 ||
      Ref.compare(0, Dir.size() + 1, Dir + "/") != 0)
    return;
  std::string Name = Ref.substr(Dir.size() + 1);
  if (Name.find('/') != std::string::npos || !isCacheFileName(Name))
    return;
  // Freeze the slot while re-checking: publishers hold this lock while
  // replacing the file, so a just-republished healthy cache is never
  // swept up. A busy slot is left alone — the next reader retries.
  uint64_t Key = std::strtoull(Name.c_str(), nullptr, 16);
  auto KeyLock = FileLock::tryAcquire(keyLockPath(Key));
  if (!KeyLock)
    return;
  bool StillCorrupt = false;
  if (isV2CacheFile(Ref)) {
    auto View = CacheFileView::openFile(Ref, CacheFileView::Depth::Index);
    StillCorrupt =
        !View && View.status().code() == ErrorCode::InvalidFormat;
  } else if (auto Bytes = readFile(Ref)) {
    auto File = CacheFile::deserialize(*Bytes);
    StillCorrupt =
        !File && File.status().code() == ErrorCode::InvalidFormat;
  }
  if (StillCorrupt)
    (void)quarantineRef(Ref, annotatedQuarantineReason(
                                 Ref, QuarantineReasonCode::InvalidFormat,
                                 Failure.message()));
}

std::vector<LockInfo> DirectoryStore::locks() const {
  std::vector<LockInfo> Result;
  auto Names = listDirectory(Dir + "/.locks");
  if (!Names)
    return Result; // No .locks/ yet: nothing has ever published.
  for (const std::string &Name : *Names) {
    if (!isLockFileName(Name))
      continue;
    LockInfo Info;
    Info.Path = Dir + "/.locks/" + Name;
    Info.Held = isFileLockHeld(Info.Path);
    Result.push_back(std::move(Info));
  }
  return Result;
}
