//===- persist/Residency.h - Cross-process page residency -------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Models the operating system's page cache for shared cache-file
/// payloads: when many processes map the same persistent cache, only
/// the first toucher of each code page pays demand-paging I/O — every
/// later process takes a soft fault that wires the already-resident
/// physical page into its own tables. The map is keyed by
/// (payload identity, page number) and is shared by all simulated
/// processes of a scenario; PersistOptions::SharedResidency attaches it
/// to a session, which wires an Engine residency probe so CostModel
/// charges SharedPageTouchCycles instead of PersistPageTouchCycles for
/// pages another process already faulted in.
///
/// The map affects only the charge per newly touched page; which pages
/// are touched, and when, is unchanged — so XIP and materializing runs
/// stay bit-identical to each other under the same map history.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_PERSIST_RESIDENCY_H
#define PCC_PERSIST_RESIDENCY_H

#include <cstdint>
#include <mutex>
#include <unordered_set>

namespace pcc {
namespace persist {

/// One shared physical copy of each mapped cache payload, tracked page
/// by page across simulated processes. Thread-safe: the login-storm
/// scenarios touch it from concurrently finalizing sessions.
class SharedResidencyMap {
public:
  /// Marks page \p Page of payload \p PayloadId resident and returns
  /// true when it already was (another process got there first).
  bool touch(uint64_t PayloadId, uint32_t Page) {
    std::lock_guard<std::mutex> Lock(Mutex);
    return !Resident.insert(key(PayloadId, Page)).second;
  }

  /// True when the page is resident without marking it (probe only).
  bool resident(uint64_t PayloadId, uint32_t Page) const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Resident.count(key(PayloadId, Page)) != 0;
  }

  /// Number of distinct (payload, page) pairs resident — the modeled
  /// physical page footprint shared by every process.
  size_t residentPages() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Resident.size();
  }

  void clear() {
    std::lock_guard<std::mutex> Lock(Mutex);
    Resident.clear();
  }

private:
  static uint64_t key(uint64_t PayloadId, uint32_t Page) {
    // Payload ids are hashes; mixing the page into the low bits keeps
    // distinct payloads' pages distinct.
    return PayloadId * 1000003u + Page;
  }

  mutable std::mutex Mutex;
  std::unordered_set<uint64_t> Resident;
};

} // namespace persist
} // namespace pcc

#endif // PCC_PERSIST_RESIDENCY_H
