//===- persist/CacheStore.h - Pluggable cache storage -----------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The storage layer under the persistent cache database: an abstract
/// CacheStore keyed by the lookup key of Section 3.2.1, with caches
/// addressed by opaque refs (host paths for the directory backend,
/// slot names for the in-memory backend). The cache manager and the
/// database facade speak only this interface; all filesystem knowledge
/// lives in the backends.
///
/// The write side is transactional. publish() is the multi-process-safe
/// path: it installs a cache under a key using whatever atomicity the
/// backend offers (the directory backend: write-to-temp + fsync +
/// rename under advisory locks) and resolves concurrent finalizers of
/// the same key by *merging* — the loser re-reads the winner's cache
/// and re-accumulates the traces the winner did not have, so no run's
/// translations are clobbered (the paper's Oracle deployment has many
/// worker processes racing on one database).
///
//===----------------------------------------------------------------------===//

#ifndef PCC_PERSIST_CACHESTORE_H
#define PCC_PERSIST_CACHESTORE_H

#include "persist/CacheFile.h"
#include "persist/CacheView.h"

#include <optional>
#include <string>
#include <vector>

namespace pcc {

namespace support {
class ThreadPool;
}

namespace persist {

/// Which tier of a hierarchical store satisfied an open. Flat backends
/// (DirectoryStore, MemoryStore) leave it None; the TieredStore stamps
/// L1 (local hit) or L2 (read-through from the remote tier) so the
/// session can charge modeled remote-fetch cycles and split its hit
/// statistics.
enum class CacheTier : uint8_t { None, L1, L2 };

/// A located cache, uniform over the eagerly deserialized legacy (v1)
/// format and the indexed v2 view whose payloads stay unread until
/// first execution. Exactly one of the two members is engaged.
struct StoredCache {
  std::optional<CacheFile> Eager;
  std::optional<CacheFileView> View;

  /// Tier that satisfied the open (None for flat backends).
  CacheTier Tier = CacheTier::None;
  /// Bytes pulled over the modeled remote link to satisfy this open
  /// (0 for local hits).
  uint64_t RemoteFetchBytes = 0;
  /// Modeled cycle charge for the remote fetch: request latency plus
  /// per-page transfer cost (0 for local hits).
  uint64_t RemoteFetchCycles = 0;

  uint64_t engineHash() const {
    return View ? View->engineHash() : Eager->EngineHash;
  }
  uint64_t toolHash() const {
    return View ? View->toolHash() : Eager->ToolHash;
  }
  bool positionIndependent() const {
    return View ? View->positionIndependent()
                : Eager->PositionIndependent;
  }
  uint32_t generation() const {
    return View ? View->generation() : Eager->Generation;
  }
};

/// Aggregate statistics over a store (for operators and the
/// maintenance policy).
struct StoreStats {
  uint32_t CacheFiles = 0;
  uint32_t CorruptFiles = 0;
  /// Files the scan could not read at all (open/stat failures, as
  /// opposed to readable-but-corrupt contents).
  uint32_t UnreadableFiles = 0;
  /// Entries currently sitting in the quarantine.
  uint32_t QuarantinedFiles = 0;
  uint64_t DiskBytes = 0;
  uint64_t CodeBytes = 0;
  uint64_t DataBytes = 0;
  uint64_t Traces = 0;
};

/// Machine-readable classification of why a cache was quarantined,
/// recorded alongside the free-form reason so `pcc-dbcheck` and
/// `pcc-dbstat` can distinguish a structurally broken file from one
/// that is well-formed but semantically wrong.
enum class QuarantineReasonCode : uint8_t {
  /// Legacy entry or reason written outside the encoding below.
  Unknown,
  /// Unparseable bytes / checksum mismatch (ErrorCode::InvalidFormat).
  InvalidFormat,
  /// Engine or format version the reader refuses.
  VersionMismatch,
  /// Parsed, but the cross-record invariants do not hold.
  StructuralInvalid,
  /// Deep verification: a persisted trace is not effect-equivalent to
  /// the guest code it claims to translate.
  SemanticMismatch,
  /// A persisted validation certificate failed its check (tampered,
  /// stale against a newer body, or its obligations do not discharge)
  /// AND the full-validator fallback also rejected the body.
  CertificateInvalid,
};

/// Short stable name ("semantic-mismatch") for display and encoding.
const char *quarantineReasonCodeName(QuarantineReasonCode Code);

/// Renders \p Code plus the free-form \p Detail as the string stored in
/// a quarantine record: "<code-name>: <detail>". Older readers see a
/// plain reason string; parseQuarantineReason() recovers the code.
std::string encodeQuarantineReason(QuarantineReasonCode Code,
                                   const std::string &Detail);

/// Splits a stored reason string into its code and detail. Reasons
/// written before the encoding existed (or by hand) come back as
/// {Unknown, <whole string>}.
QuarantineReasonCode parseQuarantineReason(const std::string &Stored,
                                           std::string *Detail = nullptr);

/// One cache sitting in a store's quarantine: pulled out of the
/// candidate set because its contents failed validation, kept (with the
/// failure reason) for diagnosis instead of silently skipped or
/// deleted.
struct QuarantineEntry {
  /// The cache's name within the store (e.g. `<hex16>.pcc`).
  std::string Name;
  /// Why it was quarantined, as recorded at quarantine time (the
  /// detail part; the code prefix is parsed off into Code).
  std::string Reason;
  /// Parsed classification of Reason.
  QuarantineReasonCode Code = QuarantineReasonCode::Unknown;
  uint64_t Bytes = 0;
  /// Name of the record/replay log attached to this entry ("" when the
  /// quarantining run was not recorded). `pcc-dbcheck --replay` uses it
  /// to re-run the offending execution.
  std::string ReplayLog;
};

/// One advisory lock a store uses for writer coordination, with its
/// (racy, diagnostic-only) current status.
struct LockInfo {
  std::string Path;
  bool Held = false;
};

/// What publish() did.
struct PublishResult {
  /// Generation of the cache now stored under the key.
  uint32_t Generation = 0;
  /// True when a concurrent writer won the slot first and the caller's
  /// cache was merged with the winner's instead of replacing it.
  bool Merged = false;
  /// Lock-acquisition retries the publish needed (contention that the
  /// backoff policy absorbed before succeeding).
  uint32_t LockRetries = 0;
};

/// Abstract storage backend for persistent caches.
class CacheStore {
public:
  virtual ~CacheStore() = default;

  /// Human-readable location of the store (directory path, "<memory>").
  virtual const std::string &location() const = 0;

  /// Opaque ref of the cache slot for \p LookupKey. For directory
  /// stores this is the host path of the cache file.
  virtual std::string refFor(uint64_t LookupKey) const = 0;

  virtual bool exists(uint64_t LookupKey) const = 0;

  /// Opens the cache at \p Ref for reuse: v2 caches come back as a
  /// CRC-validated indexed view (payloads untouched), legacy caches as
  /// an eager CacheFile. NotFound/IoError when there is nothing usable;
  /// InvalidFormat/VersionMismatch on bad contents.
  virtual ErrorOr<StoredCache> openRef(const std::string &Ref,
                                       CacheFileView::Depth D) = 0;

  /// Opens the cache slot for \p LookupKey (NotFound when empty).
  ErrorOr<StoredCache> openKey(uint64_t LookupKey,
                               CacheFileView::Depth D);

  /// Eagerly loads and fully CRC-validates the cache at \p Ref — the
  /// compatibility path for tools and cross-cache accumulation.
  virtual ErrorOr<CacheFile> loadRef(const std::string &Ref) = 0;

  /// Eagerly loads the cache slot for \p LookupKey.
  ErrorOr<CacheFile> loadKey(uint64_t LookupKey);

  /// Unconditionally replaces the cache slot for \p LookupKey
  /// (atomically, but with no conflict detection — last writer wins).
  virtual Status put(uint64_t LookupKey, const CacheFile &File) = 0;

  /// Writes \p File to an explicit ref outside any key slot (donor
  /// fixtures, StoreAsPath experiments). No locking or merging.
  virtual Status putRef(const std::string &Ref,
                        const CacheFile &File) = 0;

  /// Transactionally installs \p File under \p LookupKey.
  /// \p BaseGeneration is the generation of the cache the caller primed
  /// from (0 when it started empty). When the slot still holds that
  /// generation the file is stored as given; when a concurrent writer
  /// advanced the slot first, the caller's file is merged with the
  /// winner's (the winner's still-novel traces are re-accumulated into
  /// the caller's) and the merge is stored at the next generation.
  virtual ErrorOr<PublishResult> publish(uint64_t LookupKey,
                                         CacheFile File,
                                         uint32_t BaseGeneration) = 0;

  /// Removes the cache slot for \p LookupKey if present.
  virtual Status retire(uint64_t LookupKey) = 0;

  /// Removes every cache in the store (lock files survive).
  virtual Status clear() = 0;

  /// Refs of every cache whose engine and tool hashes match — the
  /// inter-application candidate set ("a cache corresponding to any
  /// application instrumented identically", Section 3.2.3). Sorted by
  /// ref for determinism.
  virtual ErrorOr<std::vector<std::string>>
  findCompatible(uint64_t EngineHash, uint64_t ToolHash) = 0;

  /// Refs of every cache slot currently in the store, sorted. Unlike
  /// findCompatible this is a pure enumeration — no per-file opens —
  /// so hierarchical stores can reconcile their tiers cheaply.
  virtual ErrorOr<std::vector<std::string>> listRefs() const = 0;

  virtual ErrorOr<StoreStats> stats() = 0;

  /// Maintenance: shrinks the store until its total size is at most
  /// \p MaxBytes, deleting the smallest-generation (least accumulated,
  /// i.e. least reused) caches first; ties broken by size, largest
  /// first. Corrupt caches are always deleted. \returns the number of
  /// caches removed.
  virtual ErrorOr<uint32_t> shrinkTo(uint64_t MaxBytes) = 0;

  /// The store's writer-coordination locks and their current status
  /// (empty for backends that need none).
  virtual std::vector<LockInfo> locks() const { return {}; }

  /// Moves the cache at \p Ref into the store's quarantine, recording
  /// \p Reason. A quarantined cache is invisible to every scan and open
  /// until restored; unlike deletion, the evidence survives for
  /// `pcc-dbcheck` to report or repair.
  virtual Status quarantineRef(const std::string &Ref,
                               const std::string &Reason) = 0;

  /// Current quarantine contents, sorted by name.
  virtual ErrorOr<std::vector<QuarantineEntry>> quarantined() = 0;

  /// Moves the quarantined cache \p Name back into the store. Fails
  /// with InvalidArgument when the slot is occupied again (a healthy
  /// replacement was published since).
  virtual Status restoreQuarantined(const std::string &Name) = 0;

  /// Deletes every quarantined cache. \returns how many were purged.
  virtual ErrorOr<uint32_t> purgeQuarantine() = 0;

  /// Stores an auxiliary artifact (e.g. a `.pcrr` record/replay log)
  /// next to the quarantined caches under \p FileName, so the evidence
  /// for a quarantine travels with it. Purging the quarantine removes
  /// attachments too. Backends without quarantine storage may refuse.
  virtual Status attachToQuarantine(const std::string &FileName,
                                    const std::vector<uint8_t> &Bytes) {
    (void)FileName;
    (void)Bytes;
    return Status::error(ErrorCode::InvalidArgument,
                         "store does not support quarantine attachments");
  }

  /// Reads back an attachment stored by attachToQuarantine().
  virtual ErrorOr<std::vector<uint8_t>>
  readQuarantineAttachment(const std::string &FileName) {
    (void)FileName;
    return Status::error(ErrorCode::InvalidArgument,
                         "store does not support quarantine attachments");
  }

  /// Whether corrupt caches found by opens and scans are moved to the
  /// quarantine automatically (default) or merely reported. Report-only
  /// passes (pcc-dbcheck without --repair) turn this off so observing a
  /// database never mutates it. Virtual so hierarchical stores can
  /// forward the setting to their tiers.
  virtual void setAutoQuarantine(bool Enabled) {
    AutoQuarantine = Enabled;
  }
  bool autoQuarantine() const { return AutoQuarantine; }

  /// Worker pool for whole-store scans (findCompatible, stats):
  /// backends whose scans do per-file I/O fan the files across the pool
  /// when one is set. Results are identical with and without a pool —
  /// parallel scans collect into per-file slots and aggregate in
  /// listing order. The pool must outlive the store's use of it.
  /// Virtual so hierarchical stores can forward it to their tiers.
  virtual void setScanPool(support::ThreadPool *Pool) {
    ScanPool = Pool;
  }
  support::ThreadPool *scanPool() const { return ScanPool; }

protected:
  /// See setAutoQuarantine().
  bool AutoQuarantine = true;
  /// See setScanPool().
  support::ThreadPool *ScanPool = nullptr;
};

/// Merges two caches produced from the same application under the same
/// engine/tool: \p Novel is the cache a finalizer just built (its
/// module keys were validated against the live image moments ago) and
/// \p Winner is the cache a concurrent finalizer got into the slot
/// first. The result keeps all of Novel and re-accumulates from Winner
/// every trace Novel does not cover: winner modules are matched to
/// novel modules by path (key mismatch drops that module's traces);
/// winner-only modules are carried over unless their mapping overlaps
/// a retained module; trace links whose targets did not survive are
/// cleared. Generation and WriterTag are left as Novel's — publish()
/// assigns the final generation.
CacheFile mergeCacheFiles(const CacheFile &Winner, CacheFile Novel);

} // namespace persist
} // namespace pcc

#endif // PCC_PERSIST_CACHESTORE_H
