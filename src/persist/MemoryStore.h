//===- persist/MemoryStore.h - In-memory store backend ----------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An in-memory CacheStore for tests and benchmarks: slots are
/// serialized cache images in a mutex-guarded map, so the full
/// persistence protocol — including transactional publish with
/// generation-conflict merging — can be exercised without touching the
/// host filesystem. Storing the *serialized* bytes (not CacheFile
/// objects) keeps the backend honest: every open round-trips through
/// the same format and CRC checks as the directory store.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_PERSIST_MEMORYSTORE_H
#define PCC_PERSIST_MEMORYSTORE_H

#include "persist/CacheStore.h"

#include <map>
#include <mutex>

namespace pcc {
namespace persist {

/// Map-backed store of serialized cache images. Thread-safe; a single
/// mutex stands in for the directory store's file locks.
class MemoryStore : public CacheStore {
public:
  MemoryStore();
  /// A store reporting \p Label as its location — distinguishes the
  /// tiers when several memory backends coexist (e.g. "<remote>" for a
  /// TieredStore's L2). Refs are "<label>/<hex16>.pcc".
  explicit MemoryStore(std::string Label);

  const std::string &location() const override { return Location; }
  std::string refFor(uint64_t LookupKey) const override;
  bool exists(uint64_t LookupKey) const override;
  ErrorOr<StoredCache> openRef(const std::string &Ref,
                               CacheFileView::Depth D) override;
  ErrorOr<CacheFile> loadRef(const std::string &Ref) override;
  Status put(uint64_t LookupKey, const CacheFile &File) override;
  Status putRef(const std::string &Ref, const CacheFile &File) override;
  ErrorOr<PublishResult> publish(uint64_t LookupKey, CacheFile File,
                                 uint32_t BaseGeneration) override;
  Status retire(uint64_t LookupKey) override;
  Status clear() override;
  ErrorOr<std::vector<std::string>>
  findCompatible(uint64_t EngineHash, uint64_t ToolHash) override;
  ErrorOr<std::vector<std::string>> listRefs() const override;
  ErrorOr<StoreStats> stats() override;
  ErrorOr<uint32_t> shrinkTo(uint64_t MaxBytes) override;
  Status quarantineRef(const std::string &Ref,
                       const std::string &Reason) override;
  ErrorOr<std::vector<QuarantineEntry>> quarantined() override;
  Status restoreQuarantined(const std::string &Name) override;
  ErrorOr<uint32_t> purgeQuarantine() override;
  Status attachToQuarantine(const std::string &FileName,
                            const std::vector<uint8_t> &Bytes) override;
  ErrorOr<std::vector<uint8_t>>
  readQuarantineAttachment(const std::string &FileName) override;

private:
  /// A quarantined image plus the reason it was pulled aside.
  struct QuarantinedImage {
    std::vector<uint8_t> Bytes;
    std::string Reason;
  };

  /// Ref name within the store (the part after "<memory>/").
  std::string nameOf(const std::string &Ref) const;
  /// Locked-context quarantine move (caller holds Mutex).
  void quarantineLocked(const std::string &Ref, const std::string &Reason);

  std::string Location = "<memory>";
  mutable std::mutex Mutex;
  /// Slot ref -> serialized cache image. Ordered so scans are
  /// deterministic like the directory store's sorted listings.
  std::map<std::string, std::vector<uint8_t>> Slots;
  /// Name -> quarantined image; the in-memory `.quarantine/`.
  std::map<std::string, QuarantinedImage> Quarantine;
  /// Name -> attachment bytes (e.g. replay logs); purged with the
  /// quarantine.
  std::map<std::string, std::vector<uint8_t>> Attachments;
};

} // namespace persist
} // namespace pcc

#endif // PCC_PERSIST_MEMORYSTORE_H
