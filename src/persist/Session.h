//===- persist/Session.h - Persistent cache manager -------------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent cache manager (Figure 1, shaded components): performs
/// "the fundamental tasks of generating persistent caches, verifying
/// possible reuse, and storing them in the database" (Section 3.2).
///
/// A PersistentSession brackets one engine run:
///
///   prime()    — before run(): locate a cache by key (or donor path),
///                validate every module key against the loaded image,
///                install valid traces (unmaterialized, demand-paged)
///                and restore persisted trace links; invalid modules'
///                traces are dropped for retranslation.
///   finalize() — after run(): write the resident traces back to the
///                database, accumulating newly discovered translations
///                into the persistent cache (Section 4.4) and carrying
///                forward still-valid traces of modules not loaded by
///                this particular run.
///
/// Inter-application persistence (Section 3.2.3 end): lookup ignores the
/// application key and accepts a cache from any program instrumented
/// identically; the donor's application traces fail validation and are
/// retranslated while shared-library traces are reused when bases match.
///
/// Position-independent translations (Opts.PositionIndependent) are this
/// reproduction's implementation of the paper's noted future work: module
/// keys match ignoring the base address, and the install path rebases
/// every address-bearing immediate, so relocated libraries keep their
/// persisted translations instead of falling back to retranslation.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_PERSIST_SESSION_H
#define PCC_PERSIST_SESSION_H

#include "dbi/Engine.h"
#include "persist/CacheDatabase.h"
#include "persist/CacheFile.h"
#include "persist/CacheStore.h"
#include "persist/CacheView.h"
#include "persist/Key.h"
#include "persist/Residency.h"
#include "support/ThreadPool.h"

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace pcc {
namespace persist {

/// Session configuration.
struct PersistOptions {
  /// Ignore the application key at lookup (inter-application mode).
  bool InterApplication = false;
  /// Merge still-valid prior traces into the written cache. Off, the
  /// written cache contains only this run's resident traces.
  bool Accumulate = true;
  /// Write the cache back at finalize().
  bool WriteBack = true;
  /// Generate/consume position-independent translations (extension).
  bool PositionIndependent = false;
  /// Write an execute-in-place (XIP) generation at finalize: format v3
  /// with a page-aligned payload that later runs mmap directly as
  /// executable trace bodies instead of decoding private copies.
  /// Requires PositionIndependent (relocation-free bodies are what make
  /// the shared pages reusable as-is). Consuming an XIP cache needs no
  /// option — prime() engages the in-place path automatically whenever
  /// the file, host and session qualify, and falls back to the
  /// materializing path (bit-identical stats) otherwise.
  bool ExecuteInPlace = false;
  /// Cross-process page-residency model shared by every simulated
  /// process of a scenario (null: single process, every first touch is
  /// demand-paged I/O). When set, prime() attaches an engine residency
  /// probe keyed by (cache path, generation): the first toucher of each
  /// payload page pays PersistPageTouchCycles, later processes pay
  /// SharedPageTouchCycles — one shared physical copy per library
  /// cache. The map must outlive the session.
  SharedResidencyMap *SharedResidency = nullptr;
  /// Donor cache file to prime from, overriding key lookup (cross-input
  /// and inter-application experiments pick donors explicitly).
  std::string ExplicitCachePath;
  /// Write the cache to this path instead of the database slot.
  std::string StoreAsPath;
  /// Circuit breaker: consecutive store-write failures finalize()
  /// absorbs (retrying in between) before giving up on persistence for
  /// this session. The run itself still succeeds — it just leaves
  /// nothing behind, recorded in EngineStats::PersistDegraded.
  uint32_t BreakerThreshold = 3;
  /// Propagate store-write failures as finalize() errors instead of
  /// degrading (strict tools and tests that must observe the failure).
  /// With a worker pool the failure surfaces from wait() instead —
  /// finalize() has already returned by the time the publish runs.
  bool FailFast = false;
  /// Worker pool shared across the persistence pipeline (null: fully
  /// synchronous, today's behaviour). With workers, prime() returns
  /// after the header/index scan and trace installation while payload
  /// CRC + decode run in the background, and finalize() publishes off
  /// the critical path. Guest-visible results and EngineStats are
  /// bit-identical for any worker count. The pool must outlive the
  /// session.
  support::ThreadPool *Pool = nullptr;
  /// Validate, decode and materialize every installed payload before
  /// prime() returns — the fully synchronous baseline the async
  /// pipeline is benchmarked against (BM_PrimeAsyncOverlap). Modeled
  /// demand-paging costs are charged as if each trace had executed
  /// once, so this mode is for latency measurement, not stats
  /// comparison.
  bool EagerValidate = false;
  /// Deep semantic verification (analysis::validateTranslation): every
  /// primed trace must prove effect-equivalent to the guest code it
  /// claims to translate when its body is first decoded, and finalize()
  /// re-proves every trace it writes back. A primed trace that fails is
  /// dropped for retranslation and its source cache is quarantined with
  /// QuarantineReasonCode::SemanticMismatch; a finalize-time failure
  /// skips just that trace. Verified/failed counts land in
  /// EngineStats::TracesVerified / VerifyFailures.
  bool ValidateSemantic = false;
  /// Check persisted validation certificates at prime time: every
  /// promoted (OptGen > 0) trace that rode in with a certificate is
  /// re-verified by the minimal trusted checker
  /// (analysis::checkCertificateBlob) when its body is first
  /// materialized — no fixpoint solving, just replaying the recorded
  /// proof against the live guest bytes. A rejected certificate falls
  /// back to the full symbolic validator; if that also fails, the
  /// trace is dropped and the source cache quarantined with
  /// QuarantineReasonCode::CertificateInvalid. Promoted traces with no
  /// usable certificate (rebased, or written before certificates
  /// existed) are re-proved in full. Counts land in
  /// EngineStats::CertsChecked / CertChecksFailed / ProofsReplayed.
  bool CheckCertificates = true;
  /// Emit a validation certificate with every finalize-time promotion:
  /// the validator's successful proof is serialized into the trace
  /// record so later primes can verify the promoted body with the
  /// trusted checker instead of re-proving it. Files with no certified
  /// traces stay byte-identical to pre-certificate output.
  bool EmitCertificates = true;
  /// Finalize-time AOT optimization tier: promote hot traces (lifetime
  /// heat >= OptHeatThreshold) to a higher optimization generation
  /// before the cache is published — superblock formation across
  /// contiguous fall-through chains, constant propagation (non-PIC
  /// only), redundant-load elimination, and dead-def elision — with
  /// every transformed body proved by analysis::validateTranslation;
  /// rejection keeps the generation-0 body. Guest source snapshots are
  /// taken synchronously in finalize(); the transform + proof runs with
  /// the publish (on the worker pool when one is configured), behind
  /// the wait() durability barrier. Only engaged for tool-less
  /// sessions: the optimizer deletes instructions, which would change
  /// instrumentation callback sequences.
  bool OptTier = false;
  /// Minimum lifetime heat for a trace to be considered for promotion.
  uint32_t OptHeatThreshold = 2;
  /// Generation ceiling: traces already at this generation are left
  /// alone (each proved promotion pass bumps a trace by one).
  uint32_t OptMaxGen = 4;
  /// Combined instruction cap for a merged superblock body.
  uint32_t OptMaxSuperblockInsts = 256;
};

/// What prime() did, for reporting and tests.
struct PrimeResult {
  bool CacheFound = false;
  std::string CachePath;
  /// Why a located cache was rejected wholesale (empty otherwise).
  std::string RejectReason;
  uint32_t TracesInstalled = 0;
  uint32_t TracesSkipped = 0;
  uint32_t ModulesValidated = 0;
  uint32_t ModulesInvalidated = 0;
  uint32_t LinksRestored = 0;
  /// Candidate caches that exist but could not be read (I/O errors) —
  /// distinct from there being no cache at all.
  uint32_t CandidatesSkippedIo = 0;
  /// Payload-validation jobs handed to the worker pool (0 when priming
  /// synchronously).
  uint32_t PayloadJobsQueued = 0;
  /// True when the cache payload was installed execute-in-place: the
  /// code pool borrows the file's mapped payload section and prime()
  /// copied zero payload bytes.
  bool XipInstalled = false;
  /// Payload bytes the install path copied into the private code pool
  /// (0 under XIP — that is the point).
  uint64_t PayloadBytesCopied = 0;
};

/// Brackets one engine run with persistent-cache reuse and generation.
class PersistentSession {
public:
  PersistentSession(const CacheDatabase &Db,
                    PersistOptions Opts = PersistOptions())
      : Db(Db), Opts(std::move(Opts)) {}

  /// Quiesces the async pipeline: outstanding payload jobs are
  /// cancelled/drained and a background finalize is waited for (its
  /// outcome is discarded; call wait() first when it matters).
  ~PersistentSession() { (void)wait(nullptr); }

  PersistentSession(const PersistentSession &) = delete;
  PersistentSession &operator=(const PersistentSession &) = delete;

  /// Locates, validates and installs a persistent cache into \p Engine's
  /// code cache. Must be called before Engine::run(), on an engine whose
  /// cache is empty. A missing cache is success with
  /// PrimeResult::CacheFound == false.
  ErrorOr<PrimeResult> prime(dbi::Engine &Engine);

  /// Writes the persistent cache for \p Engine's application after its
  /// run. Requires a prior prime() on the same engine. The write goes
  /// through the store's transactional publish: when a concurrent
  /// session finalized the same key since prime(), the two caches are
  /// merged rather than clobbered.
  Status finalize(dbi::Engine &Engine);

  /// Durability barrier for the async pipeline: cancels payload jobs
  /// no one will consume anymore, waits for in-flight ones (they read
  /// the session-owned cache view), and blocks until a background
  /// finalize publish completes. The publish outcome — store failure
  /// and retry counts, circuit-breaker degradation — is merged into
  /// *\p Stats when given, exactly as the synchronous path records it;
  /// the returned Status is the FailFast error when one applies.
  /// Idempotent; a no-op for synchronous sessions.
  Status wait(dbi::EngineStats *Stats);

  /// Database slot key for this application/engine/tool (valid after
  /// prime()).
  uint64_t lookupKey() const { return LookupKey; }

private:
  ErrorOr<StoredCache> locateCache(dbi::Engine &Engine,
                                   PrimeResult &Result);
  /// Validates \p Persisted module keys against the loaded image,
  /// filling ModuleValidated/ModuleLoadedNow and the per-module load
  /// deltas and current mapping regions.
  void validateModules(dbi::Engine &Engine,
                       const std::vector<ModuleKey> &Persisted,
                       PrimeResult &Result, std::vector<int64_t> &Delta,
                       std::vector<std::pair<uint32_t, uint32_t>> &Region);
  Status installCache(dbi::Engine &Engine, const CacheFile &File,
                      PrimeResult &Result);
  /// v2 install: traces enter the cache as unmaterialized index
  /// references; code bytes are copied raw and their CRC + decode (and
  /// PIC rebase) deferred to Engine::ensureMaterialized().
  Status installView(dbi::Engine &Engine, const CacheFileView &View,
                     PrimeResult &Result);
  /// v3 execute-in-place install: the code cache borrows the view's
  /// page-aligned payload section (kept alive by LoadedView) and every
  /// trace is installed at its file code offset — zero payload bytes
  /// copied, zero decode work queued. Returns false without touching
  /// the engine when the file/session/host combination does not
  /// qualify (any rebase delta, any unusable trace, validation modes,
  /// big-endian host); the caller then falls back to the materializing
  /// install, whose modeled stats are bit-identical.
  ErrorOr<bool>
  installViewXip(dbi::Engine &Engine, const CacheFileView &View,
                 PrimeResult &Result, const std::vector<int64_t> &Delta,
                 const std::vector<std::pair<uint32_t, uint32_t>> &Region);

  /// Hands the deferred payload jobs recorded by installView() to the
  /// worker pool and attaches the install queue to \p Engine.
  void startAsyncPrime(dbi::Engine &Engine, PrimeResult &Result);

  const CacheDatabase &Db;
  PersistOptions Opts;

  /// One deferred payload-validation job, recorded at install time and
  /// turned into a queue job once LoadedView owns the file bytes.
  struct AsyncPayloadJob {
    uint32_t GuestStart = 0;   ///< Rebased start (the install key).
    uint32_t TraceIndex = 0;   ///< Index into the source trace index.
    uint32_t GuestInstCount = 0;
    uint32_t CodeSize = 0;
    uint32_t ExpectedCrc = 0;
    int64_t RebaseDelta = 0;
    std::vector<uint8_t> RelocMask;
  };
  std::vector<AsyncPayloadJob> AsyncJobs;
  /// One payload validated exactly as the engine's inline
  /// first-execution path does it (worker-side host work only).
  static dbi::ReadyTrace validatePayload(const CacheFileView &View,
                                         const AsyncPayloadJob &JD);
  /// Shared with the engine (consumer) and the pool workers.
  std::shared_ptr<dbi::TraceInstallQueue> Queue;

  /// Outcome slot for a background finalize publish.
  struct FinalizeState {
    std::mutex Mutex;
    std::condition_variable Completed;
    bool Done = false;
    bool Succeeded = false;
    Status LastError = Status::success();
    uint64_t StoreFailures = 0;
    uint64_t StoreRetries = 0;
    /// Optimization-tier outcome of the background promotion pass,
    /// merged into EngineStats at wait() exactly as the synchronous
    /// path records it.
    uint64_t TracesPromoted = 0;
    uint64_t SuperblocksFormed = 0;
    uint64_t OptLoadsEliminated = 0;
    uint64_t OptConstsFolded = 0;
    uint64_t OptValidatorRejections = 0;
  };
  std::shared_ptr<FinalizeState> Fin;

  /// State carried from prime() to finalize(). At most one of
  /// LoadedCache (v1) and LoadedView (v2) is engaged. The view is
  /// shared because an XIP install hands it to the code cache as the
  /// keepalive of the borrowed payload mapping.
  std::optional<CacheFile> LoadedCache;
  std::shared_ptr<CacheFileView> LoadedView;
  std::vector<bool> ModuleValidated; ///< Per LoadedCache module.
  std::vector<bool> ModuleLoadedNow; ///< Per LoadedCache module.
  /// Promoted traces installed by prime(), keyed by their (rebased)
  /// start address: the value is the validation certificate that rode
  /// in with the record, or empty when none is usable (rebase delta,
  /// or a pre-certificate file). Consumed by the materialize-check
  /// hook, which certificate-checks the former and re-proves the
  /// latter in full.
  std::unordered_map<uint32_t, std::vector<uint8_t>> PrimedCerts;
  bool LoadedWasOwn = false; ///< Cache came from this app's own slot.
  uint64_t LookupKey = 0;
  uint64_t EngineHash = 0;
  uint64_t ToolHash = 0;
  bool Primed = false;
};

/// Tool hash used when the engine runs without a tool.
uint64_t noToolHash();

/// Outcome of a full persistent run.
struct PersistentRunResult {
  vm::RunResult Run;
  dbi::EngineStats Stats;
  PrimeResult Prime;
};

/// Convenience wrapper: construct an engine over \p M with \p ClientTool,
/// prime from \p Db, run, finalize, and return everything measured.
/// EngineStats include the persistence costs charged by finalize().
ErrorOr<PersistentRunResult>
runWithPersistence(vm::Machine &M, dbi::Tool *ClientTool,
                   const dbi::EngineOptions &EngineOpts,
                   const CacheDatabase &Db,
                   const PersistOptions &Opts = PersistOptions());

} // namespace persist
} // namespace pcc

#endif // PCC_PERSIST_SESSION_H
