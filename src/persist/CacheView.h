//===- persist/CacheView.h - Indexed cache-file (v2) reader -----*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Zero-copy reader for cache-file format v2. The v2 layout front-loads
/// everything the database and the prime path need — compatibility
/// hashes, module keys, and a fixed-size per-trace index — so scans and
/// priming never touch trace payload bytes:
///
///   [ header 76 B                                    ] crc: HeaderCrc
///   [ module table: NumModules serialized ModuleKeys ] crc: ModuleTableCrc
///   [ trace index: NumTraces x 40 B entries          ]
///   [   + metadata heap: exits (13 B each) and       ] crc: TraceIndexCrc
///   [     reloc masks, in entry order                ]
///   [ payload: concatenated trace code images        ] crc: per-entry CodeCrc
///
/// Header layout (all fields little-endian):
///
///   +0  u32 Magic "PCC2"        +40 u32 ModuleTableOffset (== 76)
///   +4  u32 Version (2 or 3)    +44 u32 ModuleTableSize
///   +8  u64 EngineHash          +48 u32 TraceIndexOffset
///   +16 u64 ToolHash            +52 u32 TraceIndexSize
///   +24 u8  SpecBits            +56 u32 PayloadOffset
///   +25 u8  Flags               +60 u32 PayloadSize
///   +26 u16 WriterTag           +64 u32 ModuleTableCrc
///   +28 u32 Generation          +68 u32 TraceIndexCrc
///   +32 u32 NumModules          +72 u32 HeaderCrc (over bytes [0, 72))
///   +36 u32 NumTraces
///
/// Flags bit 0 is PositionIndependent (bit-compatible with the former
/// 0/1 byte); bit 1 marks an execute-in-place (XIP) generation; bit 2
/// marks a file whose trace-index entries are 44 bytes wide, the extra
/// trailing u32 being each trace's optimization generation (bit clear:
/// 40-byte entries, every trace generation 0 — the byte-identical
/// legacy layout); bit 3 marks a trailing certificate section past the
/// payload (validation proofs for promoted traces — see the
/// v2::CertSect* constants below). Version stays 2 for materializing
/// files and becomes
/// 3 for XIP files, whose payload section is page-aligned (the gap between the
/// trace index and the payload is zero padding, < one page) so prime
/// can hand the mapped payload directly to the engine as executable
/// trace bodies. Everything else — magic, header size, index entry
/// size — is unchanged, so v2 readers reject v3 files cleanly on the
/// version field.
///
/// CRC domains: the header CRC covers the fixed header (including the
/// two section CRCs); the module-table CRC covers the serialized module
/// keys; the trace-index CRC covers index entries *and* the metadata
/// heap — so exits, links and reloc masks are trusted right after
/// prime-time validation, while each trace's code image carries its own
/// CRC in the index, checked lazily at first execution. The v3
/// alignment padding sits outside every CRC domain and must be zero.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_PERSIST_CACHEVIEW_H
#define PCC_PERSIST_CACHEVIEW_H

#include "persist/CacheFile.h"
#include "support/FileSystem.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pcc {
namespace persist {

/// Format v2 layout constants.
namespace v2 {
inline constexpr uint32_t Magic = 0x32434350; // "PCC2"
inline constexpr uint32_t Version = 2;
/// Format v2.1: same layout with a page-aligned, execute-in-place
/// payload section. A distinct version number so v2 readers reject it.
inline constexpr uint32_t XipVersion = 3;
inline constexpr size_t HeaderBytes = 76;
inline constexpr size_t IndexEntryBytes = 40;
/// Index-entry size when the OptGen flag is set: the 40-byte entry plus
/// one trailing u32 per-trace optimization generation.
inline constexpr size_t OptIndexEntryBytes = 44;
inline constexpr size_t ExitRecordBytes = 13;
/// Header flags byte (offset +25).
inline constexpr uint8_t FlagPositionIndependent = 1u << 0;
inline constexpr uint8_t FlagExecuteInPlace = 1u << 1;
/// Some trace in the file carries a non-zero optimization generation;
/// index entries are OptIndexEntryBytes wide. Writers only set this
/// when needed, so unpromoted files stay byte-identical to pre-OptGen
/// output (and readable by pre-OptGen readers).
inline constexpr uint8_t FlagOptGen = 1u << 2;
/// The file carries a trailing certificate section (validation proofs
/// for promoted traces) after the payload. Writers only set this when
/// some trace is certified, so uncertified files stay byte-identical
/// to pre-certificate output.
inline constexpr uint8_t FlagCertificates = 1u << 3;
/// XIP payload sections start on this boundary.
inline constexpr uint32_t PayloadAlign = 4096;

/// Certificate-section layout (appended after the payload when
/// FlagCertificates is set):
///
///   u32 SectMagic 'PCRT'   u32 Count (== NumTraces)
///   u32 BlobBytes           u32 DirCrc (over the directory)
///   Count x { u32 BlobOffset, u32 BlobSize }   (0,0 = uncertified)
///   BlobBytes of concatenated certificate blobs
///
/// The directory is CRC'd as a whole; each blob carries its own
/// trailing CRC (analysis::Certificate), so one tampered blob rejects
/// per-trace while the rest of the section stays usable.
inline constexpr uint32_t CertSectMagic = 0x54524350; // "PCRT"
inline constexpr size_t CertSectHeaderBytes = 16;
inline constexpr size_t CertDirEntryBytes = 8;
} // namespace v2

/// Legacy (v1) on-disk magic, kept for read compatibility.
inline constexpr uint32_t LegacyCacheMagic = 0x31434350; // "PCC1"

/// True when the file at \p Path starts with the v2 magic. False on
/// short, unreadable or legacy files — callers then take the eager v1
/// path, which reports corruption itself.
bool isV2CacheFile(const std::string &Path);

/// One fixed-size trace-index entry.
struct TraceIndexEntry {
  uint32_t GuestStart = 0;
  uint32_t ModuleIndex = 0;
  uint32_t GuestInstCount = 0;
  /// Code image location, relative to the payload section.
  uint32_t CodeOffset = 0;
  uint32_t CodeSize = 0;
  /// CRC32 of the raw code image (checked lazily at materialization).
  uint32_t CodeCrc = 0;
  /// Exit records + reloc mask, relative to the trace-index section.
  uint32_t MetaOffset = 0;
  uint32_t ExitCount = 0;
  uint32_t RelocSize = 0;
  /// Saturating lifetime execution count, accumulated at finalize
  /// (the former Reserved word; v2 writers emitted 0 there).
  uint32_t Heat = 0;
  /// Optimization generation (trailing word of the wide entry layout;
  /// 0 for files without the FlagOptGen header bit).
  uint32_t OptGen = 0;
};

/// Read-only view of a v2 cache file. Owns its backing bytes (a loaded
/// buffer or a memory mapping); accessors hand out pointers into them,
/// so the view must outlive anything priming from it.
class CacheFileView {
public:
  /// How much of the file open() validates and parses.
  enum class Depth : uint8_t {
    /// Header only: compatibility hashes, generation and declared sizes.
    /// openFile() reads just the first 76 bytes from disk.
    HeaderOnly,
    /// Header + module table + trace index (all CRC-checked). Payload
    /// bytes are mapped but never read.
    Index,
  };

  /// Opens a view over an in-memory file image.
  static ErrorOr<CacheFileView> open(std::vector<uint8_t> Bytes,
                                     Depth D = Depth::Index);

  /// Opens a view over the file at \p Path. HeaderOnly reads a fixed
  /// prefix; Index memory-maps the whole file.
  static ErrorOr<CacheFileView> openFile(const std::string &Path,
                                         Depth D = Depth::Index);

  Depth depth() const { return OpenDepth; }

  /// \name Header fields
  /// @{
  uint64_t engineHash() const { return EngineHash; }
  uint64_t toolHash() const { return ToolHash; }
  uint8_t specBits() const { return SpecBits; }
  bool positionIndependent() const { return PositionIndependent; }
  /// True for a v3 execute-in-place generation (page-aligned payload).
  bool executeInPlace() const { return Xip; }
  /// True when index entries carry per-trace optimization generations
  /// (header FlagOptGen; the wide entry layout).
  bool optGenEntries() const { return HasOptGen; }
  /// True when the header declares a trailing certificate section
  /// (FlagCertificates), whether or not it parsed cleanly.
  bool certsFlagged() const { return HasCerts; }
  uint32_t formatVersion() const { return FormatVersion; }
  uint32_t generation() const { return Generation; }
  /// Low 16 bits of the last writer's pid (0 when untagged).
  uint16_t writerTag() const { return WriterTag; }
  uint32_t numModules() const { return NumModules; }
  uint32_t numTraces() const { return NumTraces; }
  /// Total file size declared by the header.
  uint64_t declaredFileBytes() const {
    return static_cast<uint64_t>(PayloadOffset) + PayloadSize;
  }
  /// Payload section placement (header fields; valid at any depth).
  uint32_t payloadOffset() const { return PayloadOffset; }
  uint32_t payloadSize() const { return PayloadSize; }
  /// @}

  /// \name Index accessors (Depth::Index only)
  /// @{
  const std::vector<ModuleKey> &modules() const { return Modules; }
  const TraceIndexEntry &entry(uint32_t I) const { return Entries[I]; }

  /// Decodes trace \p I's exit records from the metadata heap.
  std::vector<ExitRecord> readExits(uint32_t I) const;
  /// Copies trace \p I's reloc mask from the metadata heap.
  std::vector<uint8_t> readRelocMask(uint32_t I) const;
  /// Raw (stored, never rebased) code image of trace \p I.
  const uint8_t *codeBytesOf(uint32_t I) const;
  /// Base of the whole payload section (Depth::Index only). For XIP
  /// files this is the page-aligned region prime borrows wholesale.
  const uint8_t *payloadBytes() const;
  /// Checks trace \p I's code image against its indexed CRC.
  bool codeCrcOk(uint32_t I) const;

  /// True when a structurally valid certificate section is available
  /// (flagged, directory parsed and CRC-clean). Individual blobs still
  /// verify themselves at consumption.
  bool certsPresent() const { return HasCerts && !CertsCorrupt; }
  /// True when the header flagged certificates but the trailing section
  /// is damaged (truncated, bad magic/count, directory CRC or bounds).
  /// The file itself stays usable; every trace then re-proves at
  /// consumption instead of cert-checking.
  bool certSectionCorrupt() const { return CertsCorrupt; }
  /// Certificate blob of trace \p I, or (nullptr, 0) when the trace is
  /// uncertified or the section is absent/corrupt. The blob bytes are
  /// not yet CRC-verified — consumers verify per blob.
  std::pair<const uint8_t *, size_t> certBlobOf(uint32_t I) const;

  /// Fully decodes trace \p I into a TraceRecord, CRC-checking its code
  /// image (and attaching its certificate blob, when one is present).
  /// The eager-compat path for tools and accumulation.
  ErrorOr<TraceRecord> record(uint32_t I) const;

  /// Totals computed from the index alone (no payload reads).
  uint64_t codeBytes() const;
  uint64_t dataBytes() const;
  /// @}

private:
  Depth OpenDepth = Depth::HeaderOnly;

  /// Backing storage: exactly one of these is active.
  std::vector<uint8_t> Owned;
  MappedFile Map;
  const uint8_t *Data = nullptr;
  size_t Size = 0;

  /// Parsed header.
  uint64_t EngineHash = 0;
  uint64_t ToolHash = 0;
  uint8_t SpecBits = 0;
  bool PositionIndependent = false;
  bool Xip = false;
  bool HasOptGen = false;
  bool HasCerts = false;
  bool CertsCorrupt = false;
  uint32_t FormatVersion = 0;
  uint16_t WriterTag = 0;
  uint32_t Generation = 0;
  uint32_t NumModules = 0;
  uint32_t NumTraces = 0;
  uint32_t ModuleTableOffset = 0;
  uint32_t ModuleTableSize = 0;
  uint32_t TraceIndexOffset = 0;
  uint32_t TraceIndexSize = 0;
  uint32_t PayloadOffset = 0;
  uint32_t PayloadSize = 0;
  uint32_t ModuleTableCrc = 0;
  uint32_t TraceIndexCrc = 0;

  std::vector<ModuleKey> Modules;
  std::vector<TraceIndexEntry> Entries;
  /// Certificate directory: (offset into the blob area, size) per
  /// trace; (0, 0) marks an uncertified trace. Empty when the section
  /// is absent or corrupt.
  std::vector<std::pair<uint32_t, uint32_t>> CertDir;
  const uint8_t *CertBlobBase = nullptr;

  Status parseHeader(const uint8_t *Bytes, size_t Available);
  Status parseSections();
  void parseCertSection();
};

} // namespace persist
} // namespace pcc

#endif // PCC_PERSIST_CACHEVIEW_H
