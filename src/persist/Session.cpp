//===- persist/Session.cpp ------------------------------------------------===//

#include "persist/Session.h"

#include "analysis/CertChecker.h"
#include "analysis/Certificate.h"
#include "analysis/Optimizer.h"
#include "analysis/Validator.h"
#include "persist/RecordingHooks.h"
#include "support/FileSystem.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cassert>
#include <iterator>
#include <unordered_map>
#include <unordered_set>

using namespace pcc;
using namespace pcc::persist;
using dbi::ExitKind;
using dbi::TranslatedTrace;
using loader::LoadedModule;

uint64_t pcc::persist::noToolHash() { return fnv1a64("pcc-no-tool"); }

static uint64_t toolHashOf(const dbi::Engine &Engine) {
  return Engine.tool() ? Engine.tool()->keyHash() : noToolHash();
}

static uint8_t specBitsOf(const dbi::InstrumentationSpec &Spec) {
  return static_cast<uint8_t>((Spec.BasicBlocks ? 1 : 0) |
                              (Spec.MemoryAccesses ? 2 : 0) |
                              (Spec.Instructions ? 4 : 0));
}

static const LoadedModule *
findLoadedByPath(const loader::LoadedImage &Image,
                 const std::string &Path) {
  for (const LoadedModule &Mod : Image.Modules)
    if (Mod.Image->path() == Path)
      return &Mod;
  return nullptr;
}

static bool regionsOverlap(uint32_t BaseA, uint32_t SizeA, uint32_t BaseB,
                           uint32_t SizeB) {
  return BaseA < BaseB + SizeB && BaseB < BaseA + SizeA;
}

static uint64_t pagesOf(uint64_t Bytes) {
  return (Bytes + binary::PageSize - 1) / binary::PageSize;
}

/// Lifetime heat written back for a trace: persisted-in heat plus this
/// run's executions, saturating at the 32-bit index field.
static uint32_t accumulatedHeat(uint32_t Prior, uint64_t Executions) {
  uint64_t Sum = Prior + Executions;
  return Sum > 0xffffffffull ? 0xffffffffu
                             : static_cast<uint32_t>(Sum);
}

/// Adds \p Delta to the 32-bit immediate of the encoded instruction at
/// index \p InstIndex inside a translated code image.
static void rebaseImmediate(std::vector<uint8_t> &Code, uint32_t InstIndex,
                            int64_t Delta) {
  dbi::rebaseTranslatedImmediate(Code.data(), Code.size(), InstIndex,
                                 Delta);
}

/// Reads and decodes \p Count guest instructions starting at \p Start
/// from the live address space — the source side of a deep semantic
/// verification.
static ErrorOr<std::vector<isa::Instruction>>
fetchGuestSource(const loader::AddressSpace &Space, uint32_t Start,
                 uint32_t Count) {
  std::vector<isa::Instruction> Out;
  Out.reserve(Count);
  for (uint32_t I = 0; I != Count; ++I) {
    uint8_t Bytes[isa::InstructionSize];
    Status S = Space.fetchInstructionBytes(
        Start + I * isa::InstructionSize, Bytes);
    if (!S.ok())
      return S;
    auto Inst = isa::Instruction::decode(Bytes);
    if (!Inst)
      return Inst.status();
    Out.push_back(*Inst);
  }
  return Out;
}

ErrorOr<StoredCache>
PersistentSession::locateCache(dbi::Engine &Engine, PrimeResult &Result) {
  CacheStore &Store = *Db.backend();
  auto tryLoad = [&](const std::string &Ref,
                     bool IsOwn) -> ErrorOr<StoredCache> {
    // Indexed open for v2 caches (header, module table and trace index
    // CRC-validated here; trace payloads stay unread until first
    // execution); eager deserialize for legacy ones. The store picks.
    auto Cache = Store.openRef(Ref, CacheFileView::Depth::Index);
    if (Cache) {
      Result.CachePath = Ref;
      Result.RejectReason.clear();
      LoadedWasOwn = IsOwn;
      return Cache;
    }
    // Corrupt or unreadable caches must never break the run: record the
    // reason and fall back to an empty code cache. An I/O failure is
    // not the same as no cache existing — count it so operators can
    // tell a sick disk from a cold database.
    if (Cache.status().code() == ErrorCode::IoError) {
      ++Result.CandidatesSkippedIo;
      ++Engine.stats().PersistCandidatesSkippedIo;
    } else if (Cache.status().code() != ErrorCode::NotFound) {
      Result.RejectReason = Cache.status().toString();
    }
    return Status::error(ErrorCode::NotFound, "no usable cache");
  };

  if (!Opts.ExplicitCachePath.empty())
    return tryLoad(Opts.ExplicitCachePath,
                   Opts.ExplicitCachePath == Store.refFor(LookupKey));

  if (Store.exists(LookupKey)) {
    auto Own = tryLoad(Store.refFor(LookupKey), /*IsOwn=*/true);
    // An unreadable or rejected own slot still allows the
    // inter-application fallback below.
    if (Own || !Opts.InterApplication)
      return Own;
  }

  if (Opts.InterApplication) {
    // Try every compatible candidate, not just the first: one
    // unreadable or freshly corrupted donor must not disqualify the
    // rest of the database.
    auto Candidates = Store.findCompatible(EngineHash, ToolHash);
    if (Candidates)
      for (const std::string &Ref : *Candidates) {
        if (Ref == Store.refFor(LookupKey))
          continue; // Own slot was already tried above.
        auto Cache = tryLoad(Ref, /*IsOwn=*/false);
        if (Cache)
          return Cache;
      }
  }
  return Status::error(ErrorCode::NotFound, "no usable cache");
}

ErrorOr<PrimeResult> PersistentSession::prime(dbi::Engine &Engine) {
  assert(!Primed && "prime() is single-shot per session");
  Primed = true;

  const dbi::CostModel &Costs = Engine.options().Costs;
  const loader::LoadedImage &Image = Engine.machine().image();
  assert(!Image.Modules.empty() && "engine machine has no modules");

  EngineHash = dbi::engineVersionHash();
  ToolHash = toolHashOf(Engine);
  // Keys are computed for every executable mapping plus the engine and
  // the tool (Section 3.2.1).
  Engine.stats().PersistCycles +=
      Costs.KeyHashCyclesPerModule * (Image.Modules.size() + 2);

  ModuleKey AppKey = ModuleKey::compute(Image.Modules.front());
  LookupKey = computeLookupKey(AppKey, EngineHash, ToolHash);

  PrimeResult Result;
  auto Source = locateCache(Engine, Result);
  if (!Source)
    return Result; // No cache: start empty, still success.

  uint64_t FileEngineHash = Source->engineHash();
  uint64_t FileToolHash = Source->toolHash();
  bool FilePic = Source->positionIndependent();
  if (FileEngineHash != EngineHash) {
    Result.RejectReason = "engine version mismatch";
    return Result;
  }
  if (FileToolHash != ToolHash) {
    Result.RejectReason = "tool key mismatch";
    return Result;
  }
  if (FilePic != Opts.PositionIndependent) {
    Result.RejectReason = "translation addressing mode mismatch";
    return Result;
  }

  Result.CacheFound = true;
  Engine.stats().PersistCycles += Costs.PersistOpenCycles;
  // Tiered stores stamp which tier satisfied the open; a read-through
  // hit additionally carries the modeled remote-link charge.
  if (Source->Tier == CacheTier::L1) {
    ++Engine.stats().PersistL1Hits;
  } else if (Source->Tier == CacheTier::L2) {
    ++Engine.stats().PersistL2Hits;
    ++Engine.stats().PersistRemoteFetches;
    Engine.stats().PersistRemoteBytes += Source->RemoteFetchBytes;
    Engine.stats().PersistCycles += Source->RemoteFetchCycles;
  }
  // A recorder (if one is active) learns which cache the run actually
  // consumed, and at what modeled remote cost, so replay can seed a
  // scratch store with the identical bytes and charges.
  if (RecordingHooks *Hooks = recordingHooks())
    Hooks->onCacheConsumed(Result.CachePath, Source->Tier,
                           Source->RemoteFetchBytes,
                           Source->RemoteFetchCycles);

  if (Source->View) {
    // The session owns the view before installing: an XIP install hands
    // it to the code cache as the keepalive of the borrowed payload
    // mapping, and async payload jobs read its bytes from pool workers.
    LoadedView =
        std::make_shared<CacheFileView>(std::move(*Source->View));
    Status S = installView(Engine, *LoadedView, Result);
    if (!S.ok())
      return S;
    // Under XIP there is no decode work to offload; AsyncJobs stays
    // empty and the queue is never created.
    if (!AsyncJobs.empty())
      startAsyncPrime(Engine, Result);
  } else {
    Status S = installCache(Engine, *Source->Eager, Result);
    if (!S.ok())
      return S;
    LoadedCache = std::move(Source->Eager);
  }
  if (Opts.SharedResidency && Result.TracesInstalled != 0) {
    // One shared physical copy per (cache file, generation): every
    // simulated process priming the same payload probes and populates
    // the same residency entries. touch() marks the page and reports
    // whether another process got there first — exactly the soft-fault
    // condition the cost model wants. The probe is attached on both the
    // XIP and materializing paths, so their stats stay bit-identical.
    uint32_t Gen =
        LoadedView ? LoadedView->generation() : LoadedCache->Generation;
    uint64_t PayloadId = fnv1a64U64(Gen, fnv1a64(Result.CachePath));
    SharedResidencyMap *Map = Opts.SharedResidency;
    Engine.setResidencyProbe([Map, PayloadId](uint32_t Page) {
      return Map->touch(PayloadId, Page);
    });
  }
  if (Opts.ValidateSemantic || !PrimedCerts.empty()) {
    // Verification at materialization: whenever a primed trace's body
    // is decoded (first execution, prevalidation, or a background
    // worker's result being consumed), it is checked against the guest
    // instructions at its start address. Promoted traces that rode in
    // with a validation certificate go through the minimal trusted
    // checker (no fixpoint solving); a rejected certificate — and any
    // promoted trace without one — falls back to the full symbolic
    // validator. Under Opts.ValidateSemantic, unpromoted traces are
    // fully proved too. A trace that fails every applicable check is
    // dropped for retranslation — and, once per session, the source
    // cache is quarantined so later runs stop re-priming a miscompiled
    // database (CertificateInvalid when a certificate lied and the
    // re-proof agreed it was wrong; SemanticMismatch otherwise).
    std::shared_ptr<CacheStore> StorePtr = Db.backend();
    auto AlreadyQuarantined = std::make_shared<bool>(false);
    std::string Ref = Result.CachePath;
    loader::AddressSpace &Space = Engine.machine().space();
    auto Certs = std::make_shared<
        std::unordered_map<uint32_t, std::vector<uint8_t>>>(
        std::move(PrimedCerts));
    PrimedCerts.clear();
    const bool ValidateAll = Opts.ValidateSemantic;
    Engine.setMaterializeValidator(
        [&Space, StorePtr, AlreadyQuarantined, Ref, Certs, ValidateAll](
            uint32_t GuestStart,
            const std::vector<isa::Instruction> &Body,
            dbi::Engine::MaterializeCheckInfo &Info) -> Status {
          auto QuarantineOnce = [&](QuarantineReasonCode Code,
                                    const std::string &Detail) {
            if (!*AlreadyQuarantined && !Ref.empty()) {
              *AlreadyQuarantined = true;
              (void)StorePtr->quarantineRef(
                  Ref, annotatedQuarantineReason(Ref, Code, Detail));
            }
          };
          auto It = Certs->find(GuestStart);
          if (It == Certs->end() && !ValidateAll)
            return Status::success(); // Unpromoted, not validating.
          auto Source = fetchGuestSource(
              Space, GuestStart, static_cast<uint32_t>(Body.size()));
          if (!Source)
            return Source.status();
          bool CertRejected = false;
          std::string CertDetail;
          if (It != Certs->end() && !It->second.empty()) {
            // Certificate fast path: replay the recorded proof with
            // the trusted checker, bound to the live guest bytes.
            ++Info.CertsChecked;
            analysis::CertCheckResult R = analysis::checkCertificateBlob(
                It->second.data(), It->second.size(), GuestStart, Body,
                &*Source);
            if (R.ok()) {
              Info.Verified = true;
              return Status::success();
            }
            ++Info.CertChecksFailed;
            CertRejected = true;
            CertDetail = std::string(certCheckStatusName(R.Status)) +
                         (R.Detail.empty() ? "" : ": " + R.Detail);
          }
          // Full symbolic proof: the prover backstop for a rejected or
          // missing certificate on a promoted body, and the
          // ValidateSemantic path for unpromoted ones.
          if (It != Certs->end())
            ++Info.ProofsReplayed;
          auto Check =
              analysis::validateTranslation(GuestStart, *Source, Body);
          if (Check.Equivalent) {
            Info.Verified = true;
            return Status::success();
          }
          if (CertRejected) {
            QuarantineOnce(QuarantineReasonCode::CertificateInvalid,
                           "certificate rejected (" + CertDetail +
                               ") and re-proof failed: " +
                               Check.message());
            return Status::error(ErrorCode::InvalidFormat,
                                 "certificate rejected and re-proof "
                                 "failed: " +
                                     Check.message());
          }
          QuarantineOnce(QuarantineReasonCode::SemanticMismatch,
                         Check.message());
          return Status::error(ErrorCode::InvalidFormat,
                               "translation validation failed: " +
                                   Check.message());
        });
  }
  if (Opts.EagerValidate)
    Engine.prevalidatePersistedTraces();
  return Result;
}

/// One payload validated exactly as the engine's inline
/// first-execution path does it: CRC over the raw stored bytes,
/// decode, then rebase the decoded immediates. (The inline path
/// rebases the pool bytes before decoding; adding the delta to the
/// decoded little-endian immediate is the same mod-2^32 arithmetic.)
dbi::ReadyTrace
PersistentSession::validatePayload(const CacheFileView &View,
                                   const AsyncPayloadJob &JD) {
  dbi::ReadyTrace R;
  R.GuestStart = JD.GuestStart;
  const uint8_t *Code = View.codeBytesOf(JD.TraceIndex);
  R.CrcOk = crc32(Code, JD.CodeSize) == JD.ExpectedCrc;
  if (!R.CrcOk)
    return R;
  auto Body = isa::decodeAll(Code + dbi::TracePrologueBytes,
                             JD.GuestInstCount);
  if (!Body) {
    R.DecodeError = Body.status();
    return R;
  }
  R.Body = Body.take();
  if (JD.RebaseDelta != 0)
    for (uint32_t I = 0; I != JD.GuestInstCount; ++I)
      if (JD.RelocMask.size() > I / 8 &&
          (JD.RelocMask[I / 8] >> (I % 8)) & 1)
        R.Body[I].Imm = static_cast<uint32_t>(
            R.Body[I].Imm + static_cast<uint64_t>(JD.RebaseDelta));
  return R;
}

namespace {

/// Traces per install-queue job. Batching keeps the producer loop —
/// which runs on the engine thread inside prime() — and the queue's
/// per-boundary bookkeeping off the run's critical path; a chunk is
/// still small enough that waiting out an in-flight job or losing a
/// withdrawn chunk's background work is negligible.
constexpr size_t PayloadChunkTraces = 64;

} // namespace

void PersistentSession::startAsyncPrime(dbi::Engine &Engine,
                                        PrimeResult &Result) {
  Queue = std::make_shared<dbi::TraceInstallQueue>();
  // The jobs read only view bytes and their own descriptors — never
  // engine memory — so a mid-run flush or eviction cannot race them.
  // The view is guaranteed alive until wait()/destruction quiesces the
  // queue.
  const CacheFileView *View = &*LoadedView;
  for (size_t Begin = 0; Begin < AsyncJobs.size();
       Begin += PayloadChunkTraces) {
    size_t End = std::min(Begin + PayloadChunkTraces, AsyncJobs.size());
    auto Batch = std::make_shared<std::vector<AsyncPayloadJob>>(
        std::make_move_iterator(AsyncJobs.begin() + Begin),
        std::make_move_iterator(AsyncJobs.begin() + End));
    std::vector<uint32_t> Starts;
    Starts.reserve(Batch->size());
    for (const AsyncPayloadJob &JD : *Batch)
      Starts.push_back(JD.GuestStart);
    Queue->addJob(std::move(Starts),
                  [View, Batch]() -> std::vector<dbi::ReadyTrace> {
                    std::vector<dbi::ReadyTrace> Out;
                    Out.reserve(Batch->size());
                    for (const AsyncPayloadJob &JD : *Batch)
                      Out.push_back(validatePayload(*View, JD));
                    return Out;
                  });
  }
  AsyncJobs.clear();
  Result.PayloadJobsQueued = static_cast<uint32_t>(Queue->jobCount());
  Engine.setInstallQueue(Queue);
  auto Q = Queue;
  for (size_t W = 0; W != Opts.Pool->workerCount(); ++W)
    Opts.Pool->submit([Q] {
      while (Q->runNextJob()) {
      }
    });
}

void PersistentSession::validateModules(
    dbi::Engine &Engine, const std::vector<ModuleKey> &Persisted,
    PrimeResult &Result, std::vector<int64_t> &Delta,
    std::vector<std::pair<uint32_t, uint32_t>> &Region) {
  const loader::LoadedImage &Image = Engine.machine().image();
  const size_t NumModules = Persisted.size();
  ModuleValidated.assign(NumModules, false);
  ModuleLoadedNow.assign(NumModules, false);
  Delta.assign(NumModules, 0);
  Region.assign(NumModules, {0, 0});
  for (size_t I = 0; I != NumModules; ++I) {
    const ModuleKey &Old = Persisted[I];
    const LoadedModule *Now = findLoadedByPath(Image, Old.Path);
    if (!Now)
      continue; // Module absent this run; its traces stay on disk.
    ModuleLoadedNow[I] = true;
    ModuleKey NowKey = ModuleKey::compute(*Now);
    bool Match = Opts.PositionIndependent
                     ? Old.matchesIgnoringBase(NowKey)
                     : Old.matches(NowKey);
    if (!Match) {
      // Key conflict: the binary changed or (without PIC) relocated.
      // All its persisted translations are invalid; the engine falls
      // back to retranslation.
      ++Result.ModulesInvalidated;
      ++Engine.stats().ModulesInvalidated;
      continue;
    }
    ModuleValidated[I] = true;
    ++Result.ModulesValidated;
    Delta[I] = static_cast<int64_t>(NowKey.Base) -
               static_cast<int64_t>(Old.Base);
    Region[I] = {NowKey.Base, NowKey.Size};
  }
}

Status PersistentSession::installCache(dbi::Engine &Engine,
                                       const CacheFile &File,
                                       PrimeResult &Result) {
  dbi::CodeCache &Cache = Engine.cache();

  // Validate every persisted module key against the image loaded now.
  std::vector<int64_t> Delta;
  std::vector<std::pair<uint32_t, uint32_t>> Region;
  validateModules(Engine, File.Modules, Result, Delta, Region);

  // Build the mapped pool image from the usable trace records.
  struct PendingInstall {
    uint32_t NewStart = 0;
    uint32_t GuestInstCount = 0;
    uint32_t PoolOffset = 0;
    uint32_t PoolBytes = 0;
    uint32_t Heat = 0;
    uint32_t OptGen = 0;
    std::vector<dbi::TraceExit> Exits;
    std::vector<uint32_t> LinkedStarts;
    std::vector<uint8_t> Cert;
  };
  std::vector<PendingInstall> Installs;
  std::vector<uint8_t> Pool;
  std::unordered_set<uint32_t> SeenStarts;
  Installs.reserve(File.Traces.size());
  size_t TotalCode = 0;
  for (const TraceRecord &Rec : File.Traces)
    TotalCode += Rec.Code.size();
  Pool.reserve(TotalCode);

  for (const TraceRecord &Rec : File.Traces) {
    if (!ModuleValidated[Rec.ModuleIndex]) {
      ++Result.TracesSkipped;
      continue;
    }
    const int64_t D = Delta[Rec.ModuleIndex];
    const auto [RegionBase, RegionSize] = Region[Rec.ModuleIndex];
    const uint32_t NewStart = static_cast<uint32_t>(Rec.GuestStart + D);
    const size_t MinCodeBytes =
        dbi::TracePrologueBytes +
        static_cast<size_t>(Rec.GuestInstCount) * isa::InstructionSize;
    bool Usable = NewStart >= RegionBase &&
                  NewStart - RegionBase < RegionSize &&
                  Rec.Code.size() >= MinCodeBytes &&
                  !SeenStarts.count(NewStart);
    if (!Usable) {
      ++Result.TracesSkipped;
      continue;
    }

    std::vector<uint8_t> Code = Rec.Code;
    if (D != 0)
      for (uint32_t I = 0; I != Rec.GuestInstCount; ++I)
        if (Rec.relocBit(I))
          rebaseImmediate(Code, I, D);

    PendingInstall Install;
    Install.NewStart = NewStart;
    Install.GuestInstCount = Rec.GuestInstCount;
    Install.Heat = Rec.Heat;
    Install.OptGen = Rec.OptGen;
    // A certificate binds to the exact stored body bytes, so a rebase
    // invalidates it: the promoted trace is then re-proved in full at
    // materialization (empty map entry).
    if (Opts.CheckCertificates && Rec.OptGen > 0 && D == 0)
      Install.Cert = Rec.Cert;
    bool BadExit = false;
    for (const ExitRecord &Exit : Rec.Exits) {
      if (Exit.Kind > static_cast<uint8_t>(ExitKind::Halt)) {
        BadExit = true;
        break;
      }
      uint32_t Target =
          Exit.Target ? static_cast<uint32_t>(Exit.Target + D) : 0;
      uint32_t Linked =
          Exit.LinkedStart ? static_cast<uint32_t>(Exit.LinkedStart + D)
                           : 0;
      Install.Exits.push_back(dbi::TraceExit{
          static_cast<ExitKind>(Exit.Kind), Exit.InstIndex, Target,
          nullptr});
      Install.LinkedStarts.push_back(Linked);
    }
    if (BadExit) {
      ++Result.TracesSkipped;
      continue;
    }
    Install.PoolOffset = static_cast<uint32_t>(Pool.size());
    Install.PoolBytes = static_cast<uint32_t>(Code.size());
    Pool.insert(Pool.end(), Code.begin(), Code.end());
    Result.PayloadBytesCopied += Code.size();
    SeenStarts.insert(NewStart);
    Installs.push_back(std::move(Install));
  }

  if (Pool.size() > Engine.options().CodePoolBytes) {
    // Persistent pools unavailable: abandon persistence for this run
    // (Section 3.2.2), continue with an empty code cache.
    Result.RejectReason = "persistent pool exceeds code cache capacity";
    Result.TracesSkipped +=
        static_cast<uint32_t>(Installs.size());
    Result.TracesInstalled = 0;
    return Status::success();
  }
  Status S = Cache.installPersistedPool(std::move(Pool));
  if (!S.ok())
    return S;

  std::unordered_map<uint32_t, TranslatedTrace *> ByStart;
  std::vector<std::pair<TranslatedTrace *, std::vector<uint32_t>>>
      LinkWork;
  ByStart.reserve(Installs.size());
  LinkWork.reserve(Installs.size());
  Cache.reserveTraces(Installs.size());
  for (PendingInstall &Install : Installs) {
    auto T = std::make_unique<TranslatedTrace>(
        Install.NewStart, Install.GuestInstCount, Install.PoolOffset,
        Install.PoolBytes, std::move(Install.Exits),
        /*FromPersistentCache=*/true);
    T->setPersistedHeat(Install.Heat);
    T->setOptGen(Install.OptGen);
    auto Added = Cache.addTrace(std::move(T));
    if (!Added) {
      // Data pool exhausted: remaining traces fall back to translation.
      ++Result.TracesSkipped;
      continue;
    }
    if (Opts.CheckCertificates && Install.OptGen > 0)
      PrimedCerts.emplace(Install.NewStart, std::move(Install.Cert));
    ByStart.emplace(Install.NewStart, *Added);
    LinkWork.emplace_back(*Added, std::move(Install.LinkedStarts));
    ++Result.TracesInstalled;
  }
  Engine.stats().TracesLoadedFromCache += Result.TracesInstalled;

  // Restore persisted trace links between installed traces.
  if (Engine.options().EnableLinking) {
    for (auto &[T, LinkedStarts] : LinkWork) {
      for (uint32_t I = 0; I != LinkedStarts.size(); ++I) {
        uint32_t Target = LinkedStarts[I];
        if (Target == 0)
          continue;
        const dbi::TraceExit &Exit = T->exits()[I];
        if (!dbi::isLinkableExit(Exit.Kind) || Exit.Target != Target)
          continue;
        auto It = ByStart.find(Target);
        if (It == ByStart.end())
          continue;
        Cache.link(T, I, It->second);
        ++Result.LinksRestored;
      }
    }
  }
  return Status::success();
}

ErrorOr<bool> PersistentSession::installViewXip(
    dbi::Engine &Engine, const CacheFileView &View, PrimeResult &Result,
    const std::vector<int64_t> &Delta,
    const std::vector<std::pair<uint32_t, uint32_t>> &Region) {
  // Whole-file gate. XIP executes the mapped payload bytes as-is, so it
  // is only sound when nothing about this run wants to transform or
  // re-decode them: the file must have been written page-aligned and
  // relocation-free (v3), the host's in-memory instruction layout must
  // equal the encoding, no validation mode may demand decoded private
  // bodies, and every module must have validated at an unchanged base.
  // Any disqualifier falls back to the materializing install, whose
  // modeled charges are bit-identical.
  if (!View.executeInPlace() || !isa::HostExecutesInPlace ||
      Opts.ValidateSemantic || Opts.EagerValidate || !LoadedView)
    return false;
  for (size_t I = 0; I != Delta.size(); ++I)
    if (ModuleValidated[I] && Delta[I] != 0)
      return false; // Rebase would dirty shared pages.
  if (View.payloadSize() > Engine.options().CodePoolBytes)
    return false; // Materializing path reports the capacity rejection.

  // Every trace must be usable: the borrowed pool is the whole payload
  // section and each trace sits at its file code offset, which matches
  // the materializing path's packed pool offsets only when no entry is
  // skipped — the invariant behind the two paths' identical page-touch
  // sequences (and thus identical stats).
  struct PendingInstall {
    uint32_t Start = 0;
    uint32_t GuestInstCount = 0;
    uint32_t PoolOffset = 0;
    uint32_t PoolBytes = 0;
    uint32_t TraceIndex = 0;
    uint32_t Heat = 0;
    uint32_t OptGen = 0;
    std::vector<dbi::TraceExit> Exits;
    std::vector<uint32_t> LinkedStarts;
    std::vector<uint8_t> Cert;
  };
  std::vector<PendingInstall> Installs;
  std::unordered_set<uint32_t> SeenStarts;
  Installs.reserve(View.numTraces());
  SeenStarts.reserve(View.numTraces());
  for (uint32_t TraceI = 0; TraceI != View.numTraces(); ++TraceI) {
    const TraceIndexEntry &E = View.entry(TraceI);
    if (!ModuleValidated[E.ModuleIndex])
      return false;
    const auto [RegionBase, RegionSize] = Region[E.ModuleIndex];
    const size_t MinCodeBytes =
        dbi::TracePrologueBytes +
        static_cast<size_t>(E.GuestInstCount) * isa::InstructionSize;
    bool Usable = E.GuestStart >= RegionBase &&
                  E.GuestStart - RegionBase < RegionSize &&
                  E.CodeSize >= MinCodeBytes &&
                  static_cast<uint64_t>(E.CodeOffset) + E.CodeSize <=
                      View.payloadSize() &&
                  !SeenStarts.count(E.GuestStart);
    if (!Usable)
      return false;

    PendingInstall Install;
    Install.Start = E.GuestStart;
    Install.GuestInstCount = E.GuestInstCount;
    Install.PoolOffset = E.CodeOffset;
    Install.PoolBytes = E.CodeSize;
    Install.TraceIndex = TraceI;
    Install.Heat = E.Heat;
    Install.OptGen = E.OptGen;
    if (Opts.CheckCertificates && E.OptGen > 0) {
      // XIP never rebases (delta zero everywhere), so a certificate
      // stays bound to the mapped body bytes as-is.
      auto [CertData, CertSize] = View.certBlobOf(TraceI);
      if (CertData)
        Install.Cert.assign(CertData, CertData + CertSize);
    }
    for (const ExitRecord &Exit : View.readExits(TraceI)) {
      if (Exit.Kind > static_cast<uint8_t>(ExitKind::Halt))
        return false;
      Install.Exits.push_back(dbi::TraceExit{
          static_cast<ExitKind>(Exit.Kind), Exit.InstIndex, Exit.Target,
          nullptr});
      Install.LinkedStarts.push_back(Exit.LinkedStart);
    }
    SeenStarts.insert(E.GuestStart);
    Installs.push_back(std::move(Install));
  }

  // Borrow the mapped payload wholesale: zero bytes copied, zero decode
  // jobs queued. The view (keepalive) stays alive until the cache
  // unmaps it — flush/eviction release, never free.
  dbi::CodeCache &Cache = Engine.cache();
  Status S = Cache.installBorrowedPool(
      View.payloadBytes(), View.payloadSize(),
      std::shared_ptr<const void>(LoadedView));
  if (!S.ok())
    return S;

  std::unordered_map<uint32_t, TranslatedTrace *> ByStart;
  std::vector<std::pair<TranslatedTrace *, std::vector<uint32_t>>>
      LinkWork;
  ByStart.reserve(Installs.size());
  LinkWork.reserve(Installs.size());
  Cache.reserveTraces(Installs.size());
  for (PendingInstall &Install : Installs) {
    auto Payload = std::make_unique<dbi::PersistedPayload>();
    Payload->ExpectedCodeCrc = View.entry(Install.TraceIndex).CodeCrc;
    Payload->RebaseDelta = 0;
    // Execution never rebases (delta zero), but finalize() re-emits an
    // unexecuted trace's reloc mask with the record it carries forward.
    if (Opts.PositionIndependent)
      Payload->RelocMask = View.readRelocMask(Install.TraceIndex);
    Payload->SourceTraceIndex = Install.TraceIndex;
    Payload->Xip = true;
    auto T = std::make_unique<TranslatedTrace>(
        Install.Start, Install.GuestInstCount, Install.PoolOffset,
        Install.PoolBytes, std::move(Install.Exits),
        /*FromPersistentCache=*/true);
    T->setPersistedPayload(std::move(Payload));
    T->setPersistedHeat(Install.Heat);
    T->setOptGen(Install.OptGen);
    auto Added = Cache.addTrace(std::move(T));
    if (!Added) {
      // Data pool exhausted: remaining traces fall back to translation
      // (the materializing path hits the identical limit at the
      // identical trace, so parity holds).
      ++Result.TracesSkipped;
      continue;
    }
    if (Opts.CheckCertificates && Install.OptGen > 0)
      PrimedCerts.emplace(Install.Start, std::move(Install.Cert));
    ByStart.emplace(Install.Start, *Added);
    LinkWork.emplace_back(*Added, std::move(Install.LinkedStarts));
    ++Result.TracesInstalled;
  }
  Engine.stats().TracesLoadedFromCache += Result.TracesInstalled;

  if (Engine.options().EnableLinking) {
    for (auto &[T, LinkedStarts] : LinkWork) {
      for (uint32_t I = 0; I != LinkedStarts.size(); ++I) {
        uint32_t Target = LinkedStarts[I];
        if (Target == 0)
          continue;
        const dbi::TraceExit &Exit = T->exits()[I];
        if (!dbi::isLinkableExit(Exit.Kind) || Exit.Target != Target)
          continue;
        auto It = ByStart.find(Target);
        if (It == ByStart.end())
          continue;
        Cache.link(T, I, It->second);
        ++Result.LinksRestored;
      }
    }
  }
  Result.XipInstalled = true;
  return true;
}

Status PersistentSession::installView(dbi::Engine &Engine,
                                      const CacheFileView &View,
                                      PrimeResult &Result) {
  dbi::CodeCache &Cache = Engine.cache();

  std::vector<int64_t> Delta;
  std::vector<std::pair<uint32_t, uint32_t>> Region;
  validateModules(Engine, View.modules(), Result, Delta, Region);

  // Execute-in-place fast path: borrow the file's mapped payload as the
  // executable pool instead of copying and decoding it.
  auto Xip = installViewXip(Engine, View, Result, Delta, Region);
  if (!Xip)
    return Xip.status();
  if (*Xip)
    return Status::success();

  // Build the mapped pool image from usable index entries. Code bytes
  // are copied *raw* — no rebase — because each trace's CRC must run
  // over the stored bytes at first execution; the rebase parameters ride
  // along as the trace's PersistedPayload.
  struct PendingInstall {
    uint32_t NewStart = 0;
    uint32_t GuestInstCount = 0;
    uint32_t PoolOffset = 0;
    uint32_t PoolBytes = 0;
    uint32_t TraceIndex = 0;
    uint32_t Heat = 0;
    uint32_t OptGen = 0;
    std::vector<dbi::TraceExit> Exits;
    std::vector<uint32_t> LinkedStarts;
    std::unique_ptr<dbi::PersistedPayload> Payload;
    std::vector<uint8_t> Cert;
  };
  std::vector<PendingInstall> Installs;
  std::vector<uint8_t> Pool;
  std::unordered_set<uint32_t> SeenStarts;
  // Exact-fit reservations: the pool is at most the file's whole code
  // section and there are at most numTraces installs, so the prime hot
  // path never reallocates mid-copy.
  Installs.reserve(View.numTraces());
  Pool.reserve(View.codeBytes());
  SeenStarts.reserve(View.numTraces());
  const bool AsyncPrime =
      Opts.Pool && Opts.Pool->workerCount() > 0 && !Opts.EagerValidate;

  for (uint32_t TraceI = 0; TraceI != View.numTraces(); ++TraceI) {
    const TraceIndexEntry &E = View.entry(TraceI);
    if (!ModuleValidated[E.ModuleIndex]) {
      ++Result.TracesSkipped;
      continue;
    }
    const int64_t D = Delta[E.ModuleIndex];
    const auto [RegionBase, RegionSize] = Region[E.ModuleIndex];
    const uint32_t NewStart = static_cast<uint32_t>(E.GuestStart + D);
    const size_t MinCodeBytes =
        dbi::TracePrologueBytes +
        static_cast<size_t>(E.GuestInstCount) * isa::InstructionSize;
    bool Usable = NewStart >= RegionBase &&
                  NewStart - RegionBase < RegionSize &&
                  E.CodeSize >= MinCodeBytes && !SeenStarts.count(NewStart);
    if (!Usable) {
      ++Result.TracesSkipped;
      continue;
    }

    PendingInstall Install;
    Install.NewStart = NewStart;
    Install.GuestInstCount = E.GuestInstCount;
    bool BadExit = false;
    // Exits and links come from the trace index, whose CRC was already
    // validated at open — so restoring links here is safe even though
    // the code payload is still unverified.
    for (const ExitRecord &Exit : View.readExits(TraceI)) {
      if (Exit.Kind > static_cast<uint8_t>(ExitKind::Halt)) {
        BadExit = true;
        break;
      }
      uint32_t Target =
          Exit.Target ? static_cast<uint32_t>(Exit.Target + D) : 0;
      uint32_t Linked =
          Exit.LinkedStart ? static_cast<uint32_t>(Exit.LinkedStart + D)
                           : 0;
      Install.Exits.push_back(dbi::TraceExit{
          static_cast<ExitKind>(Exit.Kind), Exit.InstIndex, Target,
          nullptr});
      Install.LinkedStarts.push_back(Linked);
    }
    if (BadExit) {
      ++Result.TracesSkipped;
      continue;
    }

    auto Payload = std::make_unique<dbi::PersistedPayload>();
    Payload->ExpectedCodeCrc = E.CodeCrc;
    Payload->RebaseDelta = D;
    if (Opts.PositionIndependent)
      Payload->RelocMask = View.readRelocMask(TraceI);
    Payload->SourceTraceIndex = TraceI;
    Install.Payload = std::move(Payload);
    Install.TraceIndex = TraceI;
    Install.Heat = E.Heat;
    Install.OptGen = E.OptGen;
    // A certificate binds to the exact stored body bytes, so a rebase
    // invalidates it: the promoted trace is then re-proved in full at
    // materialization (empty map entry).
    if (Opts.CheckCertificates && E.OptGen > 0 && D == 0) {
      auto [CertData, CertSize] = View.certBlobOf(TraceI);
      if (CertData)
        Install.Cert.assign(CertData, CertData + CertSize);
    }

    Install.PoolOffset = static_cast<uint32_t>(Pool.size());
    Install.PoolBytes = E.CodeSize;
    const uint8_t *Code = View.codeBytesOf(TraceI);
    Pool.insert(Pool.end(), Code, Code + E.CodeSize);
    Result.PayloadBytesCopied += E.CodeSize;
    SeenStarts.insert(NewStart);
    Installs.push_back(std::move(Install));
  }

  if (Pool.size() > Engine.options().CodePoolBytes) {
    // Persistent pools unavailable: abandon persistence for this run
    // (Section 3.2.2), continue with an empty code cache.
    Result.RejectReason = "persistent pool exceeds code cache capacity";
    Result.TracesSkipped += static_cast<uint32_t>(Installs.size());
    Result.TracesInstalled = 0;
    return Status::success();
  }
  Status S = Cache.installPersistedPool(std::move(Pool));
  if (!S.ok())
    return S;

  std::unordered_map<uint32_t, TranslatedTrace *> ByStart;
  std::vector<std::pair<TranslatedTrace *, std::vector<uint32_t>>>
      LinkWork;
  ByStart.reserve(Installs.size());
  LinkWork.reserve(Installs.size());
  Cache.reserveTraces(Installs.size());
  if (AsyncPrime)
    AsyncJobs.reserve(Installs.size());
  for (PendingInstall &Install : Installs) {
    AsyncPayloadJob Job;
    if (AsyncPrime) {
      Job.GuestStart = Install.NewStart;
      Job.TraceIndex = Install.TraceIndex;
      Job.GuestInstCount = Install.GuestInstCount;
      Job.CodeSize = Install.PoolBytes;
      Job.ExpectedCrc = Install.Payload->ExpectedCodeCrc;
      Job.RebaseDelta = Install.Payload->RebaseDelta;
      Job.RelocMask = Install.Payload->RelocMask;
    }
    auto T = std::make_unique<TranslatedTrace>(
        Install.NewStart, Install.GuestInstCount, Install.PoolOffset,
        Install.PoolBytes, std::move(Install.Exits),
        /*FromPersistentCache=*/true);
    T->setPersistedPayload(std::move(Install.Payload));
    T->setPersistedHeat(Install.Heat);
    T->setOptGen(Install.OptGen);
    auto Added = Cache.addTrace(std::move(T));
    if (!Added) {
      // Data pool exhausted: remaining traces fall back to translation.
      ++Result.TracesSkipped;
      continue;
    }
    if (Opts.CheckCertificates && Install.OptGen > 0)
      PrimedCerts.emplace(Install.NewStart, std::move(Install.Cert));
    if (AsyncPrime)
      AsyncJobs.push_back(std::move(Job));
    ByStart.emplace(Install.NewStart, *Added);
    LinkWork.emplace_back(*Added, std::move(Install.LinkedStarts));
    ++Result.TracesInstalled;
  }
  Engine.stats().TracesLoadedFromCache += Result.TracesInstalled;

  // Restore persisted trace links between installed traces.
  if (Engine.options().EnableLinking) {
    for (auto &[T, LinkedStarts] : LinkWork) {
      for (uint32_t I = 0; I != LinkedStarts.size(); ++I) {
        uint32_t Target = LinkedStarts[I];
        if (Target == 0)
          continue;
        const dbi::TraceExit &Exit = T->exits()[I];
        if (!dbi::isLinkableExit(Exit.Kind) || Exit.Target != Target)
          continue;
        auto It = ByStart.find(Target);
        if (It == ByStart.end())
          continue;
        Cache.link(T, I, It->second);
        ++Result.LinksRestored;
      }
    }
  }
  return Status::success();
}

namespace {

/// What one circuit-breaker publish pass did, accumulated off to the
/// side so the same code runs inline or on a pool worker; the caller
/// (finalize() or wait()) merges it into EngineStats, keeping the
/// recorded values bit-identical either way.
struct PublishOutcome {
  bool Succeeded = false;
  Status LastError = Status::success();
  uint64_t StoreFailures = 0;
  uint64_t StoreRetries = 0;
};

/// Guest source snapshots for the optimization tier, keyed by trace
/// start. Fetched synchronously in finalize() (the address space is
/// only guaranteed alive on the engine thread); the promotion pass then
/// needs no engine or guest state at all, so it can run on a pool
/// worker alongside the publish.
using OptSourceMap =
    std::unordered_map<uint32_t, std::vector<isa::Instruction>>;

/// What one finalize promotion pass did.
struct OptOutcome {
  uint64_t TracesPromoted = 0;
  uint64_t SuperblocksFormed = 0;
  uint64_t LoadsEliminated = 0;
  uint64_t ConstsFolded = 0;
  uint64_t Rejections = 0;
};

bool sameInst(const isa::Instruction &A, const isa::Instruction &B) {
  return A.Op == B.Op && A.Rd == B.Rd && A.Rs1 == B.Rs1 &&
         A.Rs2 == B.Rs2 && A.Imm == B.Imm;
}

void clearRelocBit(TraceRecord &Rec, uint32_t I) {
  if (Rec.RelocMask.size() > I / 8)
    Rec.RelocMask[I / 8] &= static_cast<uint8_t>(~(1u << (I % 8)));
}

/// Optimizes \p Rec's body in place and proves the result equivalent to
/// \p Source; on success re-encodes the image (same size — slot-for-
/// slot rewriting) and bumps the record's generation. Rejection leaves
/// the record untouched. Replaced slots lose their reloc bits: a Nop or
/// register move carries no address-bearing immediate to rebase.
bool promoteRecord(TraceRecord &Rec,
                   const std::vector<isa::Instruction> &Source, bool Pic,
                   bool EmitCerts, OptOutcome &Out) {
  auto Decoded = isa::decodeAll(
      Rec.Code.data() + dbi::TracePrologueBytes, Rec.GuestInstCount);
  if (!Decoded)
    return false;
  std::vector<isa::Instruction> Body = Decoded.take();
  const std::vector<isa::Instruction> Original = Body;
  analysis::TraceOptStats OS;
  analysis::optimizeTraceBody(Body, Rec.GuestStart,
                              /*AllowConstFold=*/!Pic, OS);
  analysis::Certificate Cert;
  auto Check = analysis::validateTranslation(
      Rec.GuestStart, Source, Body, EmitCerts ? &Cert : nullptr);
  if (!Check.Equivalent) {
    ++Out.Rejections;
    return false;
  }
  std::vector<uint8_t> Encoded = isa::encodeAll(Body);
  std::copy(Encoded.begin(), Encoded.end(),
            Rec.Code.begin() + dbi::TracePrologueBytes);
  if (Pic)
    for (uint32_t I = 0; I != Body.size(); ++I)
      if (!sameInst(Body[I], Original[I]))
        clearRelocBit(Rec, I);
  ++Rec.OptGen;
  // The proof just ran against the new body: persist it as this
  // record's certificate. Any prior-generation certificate is stale
  // (it bound to the pre-promotion bytes) and must not survive.
  if (EmitCerts) {
    Cert.OptGen = Rec.OptGen;
    Rec.Cert = Cert.serialize();
  } else {
    Rec.Cert.clear();
  }
  ++Out.TracesPromoted;
  Out.LoadsEliminated += OS.LoadsEliminated;
  Out.ConstsFolded += OS.ConstsFolded;
  return true;
}

/// The finalize-time AOT promotion pass: merges contiguous fall-through
/// chains of hot traces into superblocks, then runs the optimizer over
/// every candidate body, accepting only what validateTranslation
/// proves. Pure host-side transform over \p File — no engine, store or
/// guest state — so it runs equally inline or on a pool worker.
void promoteCacheFile(CacheFile &File, const OptSourceMap &Sources,
                      uint32_t MaxGen, uint32_t MaxSuperblockInsts,
                      bool EmitCerts, OptOutcome &Out) {
  const bool Pic = File.PositionIndependent;

  // Candidate set: traces whose guest source was snapshotted (the heat
  // threshold was applied at snapshot time), with generation headroom
  // and a source that still matches the body length.
  std::vector<size_t> CandIdx;
  std::vector<analysis::SuperblockCandidate> Cands;
  for (size_t I = 0; I != File.Traces.size(); ++I) {
    const TraceRecord &Rec = File.Traces[I];
    auto It = Sources.find(Rec.GuestStart);
    if (It == Sources.end() || Rec.OptGen >= MaxGen ||
        It->second.size() != Rec.GuestInstCount)
      continue;
    analysis::SuperblockCandidate C;
    C.Start = Rec.GuestStart;
    C.InstCount = Rec.GuestInstCount;
    C.ModuleIndex = Rec.ModuleIndex;
    C.Heat = Rec.Heat;
    if (!Rec.Exits.empty() &&
        Rec.Exits.back().Kind ==
            static_cast<uint8_t>(ExitKind::FallThrough)) {
      C.EndsInFallThrough = true;
      C.FallTarget = Rec.Exits.back().Target;
    }
    CandIdx.push_back(I);
    Cands.push_back(C);
  }

  // Superblock formation first: each planned chain is merged into its
  // head's record — the boundary fall-through exits become internal
  // control flow; every other exit shifts by the head-relative
  // instruction offset; reloc masks concatenate. Tails keep their own
  // records (tail duplication — they remain valid entry points). A
  // chain that fails its proof is abandoned whole; its members stay
  // scalar candidates below.
  std::vector<bool> Done(Cands.size(), false);
  for (const std::vector<uint32_t> &Chain :
       analysis::planSuperblocks(Cands, MaxSuperblockInsts)) {
    std::vector<isa::Instruction> Body, Source;
    std::vector<ExitRecord> Exits;
    TraceRecord Merged;
    bool Bad = false;
    uint32_t Offset = 0;
    for (size_t K = 0; K != Chain.size(); ++K) {
      const TraceRecord &Rec = File.Traces[CandIdx[Chain[K]]];
      auto Part = isa::decodeAll(
          Rec.Code.data() + dbi::TracePrologueBytes, Rec.GuestInstCount);
      if (!Part) {
        Bad = true;
        break;
      }
      Body.insert(Body.end(), Part->begin(), Part->end());
      const std::vector<isa::Instruction> &Src =
          Sources.at(Rec.GuestStart);
      Source.insert(Source.end(), Src.begin(), Src.end());
      for (size_t X = 0; X != Rec.Exits.size(); ++X) {
        if (K + 1 != Chain.size() && X + 1 == Rec.Exits.size())
          break; // Boundary fall-through: now internal, exit dropped.
        ExitRecord E = Rec.Exits[X];
        E.InstIndex += Offset;
        Exits.push_back(E);
      }
      if (Pic)
        for (uint32_t B = 0; B != Rec.GuestInstCount; ++B)
          if (Rec.relocBit(B))
            Merged.setRelocBit(Offset + B);
      Offset += Rec.GuestInstCount;
    }
    if (Bad)
      continue;
    const TraceRecord &Head = File.Traces[CandIdx[Chain[0]]];
    Merged.GuestStart = Head.GuestStart;
    Merged.ModuleIndex = Head.ModuleIndex;
    Merged.GuestInstCount = Offset;
    Merged.Heat = Head.Heat;
    Merged.OptGen = Head.OptGen;
    Merged.Exits = std::move(Exits);

    const std::vector<isa::Instruction> Original = Body;
    analysis::TraceOptStats OS;
    analysis::optimizeTraceBody(Body, Merged.GuestStart,
                                /*AllowConstFold=*/!Pic, OS);
    analysis::Certificate Cert;
    auto Check = analysis::validateTranslation(
        Merged.GuestStart, Source, Body, EmitCerts ? &Cert : nullptr);
    if (!Check.Equivalent) {
      ++Out.Rejections;
      continue;
    }
    if (Pic)
      for (uint32_t I = 0; I != Body.size(); ++I)
        if (!sameInst(Body[I], Original[I]))
          clearRelocBit(Merged, I);
    Merged.Code.assign(dbi::TracePrologueBytes +
                           Body.size() * isa::InstructionSize +
                           Merged.Exits.size() * dbi::ExitStubBytes,
                       0);
    std::vector<uint8_t> Encoded = isa::encodeAll(Body);
    std::copy(Encoded.begin(), Encoded.end(),
              Merged.Code.begin() + dbi::TracePrologueBytes);
    ++Merged.OptGen;
    if (EmitCerts) {
      Cert.OptGen = Merged.OptGen;
      Merged.Cert = Cert.serialize();
    }
    File.Traces[CandIdx[Chain[0]]] = std::move(Merged);
    Done[Chain[0]] = true;
    ++Out.SuperblocksFormed;
    ++Out.TracesPromoted;
    Out.LoadsEliminated += OS.LoadsEliminated;
    Out.ConstsFolded += OS.ConstsFolded;
  }

  // Scalar promotion for every remaining candidate — superblock tails
  // included, since direct entries to their starts still execute them.
  for (size_t CI = 0; CI != CandIdx.size(); ++CI) {
    if (Done[CI])
      continue;
    promoteRecord(File.Traces[CandIdx[CI]], Sources.at(Cands[CI].Start),
                  Pic, EmitCerts, Out);
  }
}

/// Store-write circuit breaker: persistence is an accelerator, so a
/// failing write is retried up to the threshold and then abandoned —
/// the run completes correctly either way. Pure store-side work; no
/// engine or session state is touched, which is what makes it safe to
/// run on a pool worker after finalize() has returned.
PublishOutcome publishWithBreaker(CacheStore &Store,
                                  const std::string &StoreAsPath,
                                  uint64_t LookupKey,
                                  uint32_t BaseGeneration,
                                  uint32_t Attempts, CacheFile File) {
  PublishOutcome Out;
  for (uint32_t Attempt = 0; Attempt != Attempts; ++Attempt) {
    if (Attempt != 0)
      ++Out.StoreRetries;
    if (!StoreAsPath.empty()) {
      Status S = Store.putRef(StoreAsPath, File);
      if (S.ok()) {
        Out.Succeeded = true;
        return Out;
      }
      Out.LastError = S;
    } else {
      auto Published = Store.publish(LookupKey, File, BaseGeneration);
      if (Published) {
        Out.StoreRetries += Published->LockRetries;
        Out.Succeeded = true;
        return Out;
      }
      Out.LastError = Published.status();
    }
    ++Out.StoreFailures;
  }
  return Out;
}

} // namespace

Status PersistentSession::finalize(dbi::Engine &Engine) {
  assert(Primed && "finalize() requires a prior prime()");
  if (!Opts.WriteBack)
    return Status::success();

  // The prime pipeline is over: withdraw payload jobs no one will
  // consume so the workers free up for the publish below. In-flight
  // jobs are left to finish (they read only view bytes, which stay
  // alive until wait()/destruction).
  if (Queue)
    Queue->cancelPending();

  const loader::LoadedImage &Image = Engine.machine().image();
  const dbi::CodeCache &Cache = Engine.cache();

  CacheFile File;
  File.EngineHash = EngineHash;
  File.ToolHash = ToolHash;
  File.SpecBits = specBitsOf(Engine.spec());
  File.PositionIndependent = Opts.PositionIndependent;
  // XIP generations are only written for position-independent sessions:
  // relocation-free bodies are what make the shared payload pages
  // executable as-is by every later mapping at an unchanged base.
  File.ExecuteInPlace = Opts.ExecuteInPlace && Opts.PositionIndependent;
  File.Generation = LoadedCache   ? LoadedCache->Generation + 1
                    : LoadedView  ? LoadedView->generation() + 1
                                  : 1;
  File.WriterTag = static_cast<uint16_t>(currentProcessId() & 0xffff);

  File.Modules.reserve(Image.Modules.size());
  for (const LoadedModule &Mod : Image.Modules)
    File.Modules.push_back(ModuleKey::compute(Mod));
  // Resident traces bound the snapshot (accumulation can push past
  // this, but the resident copy loop is the hot part).
  File.Traces.reserve(Cache.traces().size());

  // Per-module set of text-relocated instruction indices, for the PIC
  // relocation masks.
  std::vector<std::unordered_set<uint32_t>> RelocSets;
  if (Opts.PositionIndependent) {
    RelocSets.resize(Image.Modules.size());
    for (size_t I = 0; I != Image.Modules.size(); ++I)
      for (uint32_t Index : Image.Modules[I].Image->textRelocations())
        RelocSets[I].insert(Index);
  }

  auto moduleIndexFor = [&](uint32_t Addr) -> int {
    for (size_t I = 0; I != Image.Modules.size(); ++I)
      if (Image.Modules[I].contains(Addr))
        return static_cast<int>(I);
    return -1;
  };

  // Deep verification at write-back (Opts.ValidateSemantic): never
  // sign a trace whose code image is no longer effect-equivalent to
  // the guest code it claims to translate — in-pool corruption would
  // otherwise be re-published under a fresh checksum. A mismatch skips
  // just that trace.
  const loader::AddressSpace &Space = Engine.machine().space();
  auto semanticallyValid = [&](TraceRecord &Rec) -> bool {
    if (!Opts.ValidateSemantic)
      return true;
    auto Translated =
        isa::decodeAll(Rec.Code.data() + dbi::TracePrologueBytes,
                       Rec.GuestInstCount);
    auto Source =
        Translated ? fetchGuestSource(Space, Rec.GuestStart,
                                      Rec.GuestInstCount)
                   : ErrorOr<std::vector<isa::Instruction>>(
                         Translated.status());
    if (!Translated || !Source) {
      ++Engine.stats().VerifyFailures;
      return false;
    }
    // Certificate fast path: a record that still carries its promotion
    // certificate is verified by the trusted checker; only a rejected
    // (or absent) certificate pays for the full symbolic proof.
    const bool HadCert = !Rec.Cert.empty();
    analysis::CertBindings Bind;
    Bind.BodyBytes = Rec.Code.data() + dbi::TracePrologueBytes;
    Bind.BodyByteCount =
        static_cast<size_t>(Rec.GuestInstCount) * isa::InstructionSize;
    if (HadCert &&
        analysis::checkCertificateBlob(Rec.Cert.data(), Rec.Cert.size(),
                                       Rec.GuestStart, *Translated,
                                       &*Source, &Bind)
            .ok()) {
      ++Engine.stats().TracesVerified;
      return true;
    }
    if (!analysis::validateTranslation(Rec.GuestStart, *Source,
                                       *Translated)
             .Equivalent) {
      ++Engine.stats().VerifyFailures;
      return false;
    }
    // The prover vouches for the body but the certificate did not:
    // drop the stale certificate, keep the trace.
    if (HadCert)
      Rec.Cert.clear();
    ++Engine.stats().TracesVerified;
    return true;
  };

  // Resident traces harvested from the engine pool lost their record
  // envelopes at install — certificates included. Re-attach each
  // promoted trace's certificate from the primed file when the body
  // bytes still match exactly (CRC-bound), so an executed-but-
  // unmodified promotion keeps its proof across generations without
  // re-proving.
  std::unordered_map<uint32_t, std::pair<const uint8_t *, size_t>>
      PriorCerts;
  if (LoadedCache) {
    for (const TraceRecord &Rec : LoadedCache->Traces)
      if (!Rec.Cert.empty())
        PriorCerts.emplace(
            Rec.GuestStart,
            std::make_pair(Rec.Cert.data(), Rec.Cert.size()));
  } else if (LoadedView && LoadedView->certsPresent()) {
    for (uint32_t J = 0; J != LoadedView->numTraces(); ++J) {
      auto [CertData, CertSize] = LoadedView->certBlobOf(J);
      if (CertData)
        PriorCerts.emplace(LoadedView->entry(J).GuestStart,
                           std::make_pair(CertData, CertSize));
    }
  }
  auto reattachCert = [&](TraceRecord &Rec) {
    if (Rec.OptGen == 0 || !Rec.Cert.empty() || PriorCerts.empty())
      return;
    auto It = PriorCerts.find(Rec.GuestStart);
    if (It == PriorCerts.end())
      return;
    auto Peek =
        analysis::peekCertificate(It->second.first, It->second.second);
    if (!Peek || Peek->GuestStart != Rec.GuestStart ||
        Peek->InstCount != Rec.GuestInstCount)
      return;
    const size_t InstBytes =
        static_cast<size_t>(Rec.GuestInstCount) * isa::InstructionSize;
    if (Rec.Code.size() < dbi::TracePrologueBytes + InstBytes ||
        crc32(Rec.Code.data() + dbi::TracePrologueBytes, InstBytes) !=
            Peek->BodyCrc)
      return; // Body changed (rebase, recompile): certificate is stale.
    Rec.Cert.assign(It->second.first,
                    It->second.first + It->second.second);
  };

  for (const auto &T : Cache.traces()) {
    int ModIndex = moduleIndexFor(T->guestStart());
    if (ModIndex < 0)
      continue; // Not backed by a file on disk: never persisted.
    TraceRecord Rec;
    Rec.GuestStart = T->guestStart();
    Rec.ModuleIndex = static_cast<uint32_t>(ModIndex);
    Rec.GuestInstCount = T->guestInstCount();
    // Heat accumulates across the runs that carried this trace: what
    // the cache file brought in plus this run's executions.
    Rec.Heat = accumulatedHeat(T->persistedHeat(), T->executionCount());
    // The optimization generation travels with the trace: a promoted
    // body that executed this run is written back at its generation.
    Rec.OptGen = T->optGen();
    const uint8_t *Code = Cache.codeAt(T->poolOffset());
    Rec.Code.assign(Code, Code + T->poolBytes());
    for (const dbi::TraceExit &Exit : T->exits())
      Rec.Exits.push_back(ExitRecord{
          static_cast<uint8_t>(Exit.Kind), Exit.InstIndex, Exit.Target,
          Exit.Link ? Exit.Link->guestStart() : 0});

    if (const dbi::PersistedPayload *P = T->persistedPayload()) {
      // Installed lazily and never executed: the pool still holds the
      // raw stored bytes, whose CRC was never checked. Verify now so a
      // damaged payload is dropped (and retranslated by whichever run
      // needs it) rather than re-signed under a fresh checksum; rebase
      // the written copy so the file's bytes match the current base.
      if (crc32(Rec.Code.data(), Rec.Code.size()) != P->ExpectedCodeCrc)
        continue;
      if (P->RebaseDelta != 0)
        for (uint32_t I = 0; I != Rec.GuestInstCount; ++I)
          if (P->RelocMask.size() > I / 8 &&
              (P->RelocMask[I / 8] >> (I % 8)) & 1)
            rebaseImmediate(Rec.Code, I, P->RebaseDelta);
      if (Opts.PositionIndependent)
        Rec.RelocMask = P->RelocMask;
      reattachCert(Rec);
      if (!semanticallyValid(Rec))
        continue;
      File.Traces.push_back(std::move(Rec));
      continue;
    }

    if (Opts.PositionIndependent) {
      // Mark every address-bearing immediate: branch/call targets plus
      // the module's own text relocations (address materialization).
      auto Body =
          T->isMaterialized()
              ? ErrorOr<std::vector<isa::Instruction>>(
                    std::vector<isa::Instruction>(T->body().begin(),
                                                  T->body().end()))
              : isa::decodeAll(Code + dbi::TracePrologueBytes,
                               T->guestInstCount());
      if (!Body)
        return Body.status();
      const LoadedModule &Mod = Image.Modules[ModIndex];
      uint32_t FirstIndex =
          (T->guestStart() - Mod.Base) / isa::InstructionSize;
      for (uint32_t I = 0; I != Body->size(); ++I) {
        bool NeedsReloc =
            isa::hasCodeTarget((*Body)[I].Op) ||
            RelocSets[ModIndex].count(FirstIndex + I);
        if (NeedsReloc)
          Rec.setRelocBit(I);
      }
    }
    reattachCert(Rec);
    if (!semanticallyValid(Rec))
      continue;
    File.Traces.push_back(std::move(Rec));
  }

  // Prior-cache accessors, uniform over the eagerly loaded v1 file and
  // the indexed v2 view. v2 record extraction CRC-checks the payload;
  // failures drop only that trace from the carry-through.
  const bool HasPrior = LoadedCache.has_value() || LoadedView != nullptr;
  size_t PriorModules = LoadedCache  ? LoadedCache->Modules.size()
                        : LoadedView ? LoadedView->numModules()
                                     : 0;
  size_t PriorTraces = LoadedCache  ? LoadedCache->Traces.size()
                       : LoadedView ? LoadedView->numTraces()
                                    : 0;
  auto priorModule = [&](size_t I) -> const ModuleKey & {
    return LoadedCache ? LoadedCache->Modules[I] : LoadedView->modules()[I];
  };
  auto priorTraceModule = [&](size_t J) -> uint32_t {
    return LoadedCache
               ? LoadedCache->Traces[J].ModuleIndex
               : LoadedView->entry(static_cast<uint32_t>(J)).ModuleIndex;
  };
  auto priorTraceStart = [&](size_t J) -> uint32_t {
    return LoadedCache
               ? LoadedCache->Traces[J].GuestStart
               : LoadedView->entry(static_cast<uint32_t>(J)).GuestStart;
  };
  auto priorRecord = [&](size_t J) -> ErrorOr<TraceRecord> {
    if (LoadedCache)
      return LoadedCache->Traces[J];
    return LoadedView->record(static_cast<uint32_t>(J));
  };

  // Accumulation carry-through, part 1: traces of *validated* modules
  // that are no longer resident in the engine cache — dropped by a
  // mid-run flush or skipped at install when a pool filled. The paper
  // writes the persistent cache "whenever the intra-execution code
  // cache becomes full" for exactly this reason; merging here keeps
  // accumulation monotone under cache pressure. Only applies to this
  // application's own cache, and only when the module's base is
  // unchanged (always true for validated non-PIC modules; PIC reuse at
  // a new base would require rebasing the stale records, so those are
  // left to retranslation instead).
  if (Opts.Accumulate && LoadedWasOwn && HasPrior) {
    std::unordered_set<uint32_t> Written;
    for (const TraceRecord &Rec : File.Traces)
      Written.insert(Rec.GuestStart);
    std::unordered_map<std::string, uint32_t> IndexByPath;
    for (size_t I = 0; I != File.Modules.size(); ++I)
      IndexByPath.emplace(File.Modules[I].Path,
                          static_cast<uint32_t>(I));
    for (size_t I = 0; I != PriorModules; ++I) {
      if (!ModuleLoadedNow[I] || !ModuleValidated[I])
        continue;
      const ModuleKey &Old = priorModule(I);
      auto It = IndexByPath.find(Old.Path);
      if (It == IndexByPath.end() ||
          File.Modules[It->second].Base != Old.Base)
        continue;
      for (size_t J = 0; J != PriorTraces; ++J) {
        if (priorTraceModule(J) != I || Written.count(priorTraceStart(J)))
          continue;
        auto Copy = priorRecord(J);
        if (!Copy)
          continue; // Corrupt prior payload: dropped from carry-through.
        Copy->ModuleIndex = It->second;
        Written.insert(Copy->GuestStart);
        File.Traces.push_back(Copy.take());
      }
    }
  }

  // Accumulation carry-through, part 2: keep still-valid traces of
  // modules that simply were not loaded by this run, so the cache's
  // coverage only grows over time (Section 4.4). Only applies to this
  // application's own cache; donor caches are never modified or
  // absorbed wholesale.
  if (Opts.Accumulate && LoadedWasOwn && HasPrior) {
    for (size_t I = 0; I != PriorModules; ++I) {
      if (ModuleLoadedNow[I])
        continue;
      const ModuleKey &Old = priorModule(I);
      bool Collides = false;
      for (const ModuleKey &Current : File.Modules)
        Collides |= regionsOverlap(Old.Base, Old.Size, Current.Base,
                                   Current.Size);
      if (Collides)
        continue;
      uint32_t NewIndex = static_cast<uint32_t>(File.Modules.size());
      File.Modules.push_back(Old);
      for (size_t J = 0; J != PriorTraces; ++J) {
        if (priorTraceModule(J) != I)
          continue;
        auto Copy = priorRecord(J);
        if (!Copy)
          continue; // Corrupt prior payload: dropped from carry-through.
        Copy->ModuleIndex = NewIndex;
        File.Traces.push_back(Copy.take());
      }
    }
  }

  // Clear links whose targets did not make it into this file (e.g. a
  // link into a trace the engine recompiled differently): readers treat
  // LinkedStart == 0 as "unlinked", and validate() requires closure.
  std::unordered_set<uint32_t> AllStarts;
  for (const TraceRecord &Rec : File.Traces)
    AllStarts.insert(Rec.GuestStart);
  for (TraceRecord &Rec : File.Traces)
    for (ExitRecord &Exit : Rec.Exits)
      if (Exit.LinkedStart != 0 && !AllStarts.count(Exit.LinkedStart))
        Exit.LinkedStart = 0;

  // Heat-ordered layout: hottest traces first in the trace index and
  // payload, so a later run's demand paging touches the fewest payload
  // pages before its hot code is resident. Correctness is order-
  // independent — records address each other by guest start.
  std::stable_sort(File.Traces.begin(), File.Traces.end(),
                   [](const TraceRecord &A, const TraceRecord &B) {
                     if (A.Heat != B.Heat)
                       return A.Heat > B.Heat;
                     return A.GuestStart < B.GuestStart;
                   });

  // Optimization tier: snapshot guest source for the hot candidates
  // now — the address space is only guaranteed alive on this thread —
  // so the transform + equivalence proof can run alongside the publish,
  // behind the wait() durability barrier. Tool-less sessions only: the
  // optimizer deletes instructions, which would change what an
  // instrumentation tool observes.
  OptSourceMap OptSources;
  if (Opts.OptTier && !Engine.tool() && File.SpecBits == 0)
    for (const TraceRecord &Rec : File.Traces) {
      if (Rec.Heat < Opts.OptHeatThreshold ||
          Rec.OptGen >= Opts.OptMaxGen)
        continue;
      auto Src =
          fetchGuestSource(Space, Rec.GuestStart, Rec.GuestInstCount);
      if (!Src)
        continue; // Unreadable source (e.g. a carried trace of a module
                  // this run never mapped): stays at its generation.
      OptSources.emplace(Rec.GuestStart, Src.take());
    }

  CacheStore &Store = *Db.backend();
  dbi::EngineStats &Stats = Engine.stats();
  // The write charge is modeled on the pre-promotion snapshot in both
  // the sync and background paths: promotion happens off the modeled
  // critical path, so architectural stats stay bit-identical whether
  // the tier is on or off, and for any worker count.
  Stats.PersistCycles +=
      Engine.options().Costs.PersistWriteCyclesPerPage *
      pagesOf(File.serializedSize());
  // Transactional publish: BaseGeneration is what this session primed
  // from its own slot (a donor prime does not claim the slot's
  // history), so a concurrent finalizer that advanced the slot first is
  // detected and merged with instead of clobbered.
  uint32_t BaseGeneration =
      LoadedWasOwn && HasPrior ? File.Generation - 1 : 0;

  uint32_t Attempts = std::max(1u, Opts.BreakerThreshold);

  if (Opts.Pool && Opts.Pool->workerCount() > 0) {
    // Background finalize: the snapshot above (and every modeled
    // charge) happened synchronously; only the serialize + store
    // publish — pure host-side I/O — moves off the critical path.
    // The breaker/degrade/FailFast outcome is delivered by wait().
    Fin = std::make_shared<FinalizeState>();
    auto FinPtr = Fin;
    std::shared_ptr<CacheStore> StorePtr = Db.backend();
    auto FilePtr = std::make_shared<CacheFile>(std::move(File));
    Opts.Pool->submit([FinPtr, StorePtr, FilePtr,
                       Sources = std::move(OptSources),
                       MaxGen = Opts.OptMaxGen,
                       MaxSb = Opts.OptMaxSuperblockInsts,
                       EmitCerts = Opts.EmitCertificates,
                       StoreAsPath = Opts.StoreAsPath,
                       Key = LookupKey, BaseGeneration, Attempts] {
      OptOutcome Opt;
      if (!Sources.empty())
        promoteCacheFile(*FilePtr, Sources, MaxGen, MaxSb, EmitCerts,
                         Opt);
      PublishOutcome Out =
          publishWithBreaker(*StorePtr, StoreAsPath, Key,
                             BaseGeneration, Attempts,
                             std::move(*FilePtr));
      {
        std::unique_lock<std::mutex> Lock(FinPtr->Mutex);
        FinPtr->Succeeded = Out.Succeeded;
        FinPtr->LastError = Out.LastError;
        FinPtr->StoreFailures = Out.StoreFailures;
        FinPtr->StoreRetries = Out.StoreRetries;
        FinPtr->TracesPromoted = Opt.TracesPromoted;
        FinPtr->SuperblocksFormed = Opt.SuperblocksFormed;
        FinPtr->OptLoadsEliminated = Opt.LoadsEliminated;
        FinPtr->OptConstsFolded = Opt.ConstsFolded;
        FinPtr->OptValidatorRejections = Opt.Rejections;
        FinPtr->Done = true;
      }
      FinPtr->Completed.notify_all();
    });
    return Status::success();
  }

  OptOutcome Opt;
  if (!OptSources.empty())
    promoteCacheFile(File, OptSources, Opts.OptMaxGen,
                     Opts.OptMaxSuperblockInsts, Opts.EmitCertificates,
                     Opt);
  Stats.TracesPromoted += Opt.TracesPromoted;
  Stats.SuperblocksFormed += Opt.SuperblocksFormed;
  Stats.OptLoadsEliminated += Opt.LoadsEliminated;
  Stats.OptConstsFolded += Opt.ConstsFolded;
  Stats.OptValidatorRejections += Opt.Rejections;

  PublishOutcome Out =
      publishWithBreaker(Store, Opts.StoreAsPath, LookupKey,
                         BaseGeneration, Attempts, std::move(File));
  Stats.PersistStoreRetries += Out.StoreRetries;
  Stats.PersistStoreFailures += Out.StoreFailures;
  if (Out.Succeeded)
    return Status::success();
  if (Opts.FailFast)
    return Out.LastError;
  Stats.PersistDegraded = true;
  Stats.PersistDegradeReason = Out.LastError.toString();
  return Status::success();
}

Status PersistentSession::wait(dbi::EngineStats *Stats) {
  if (Queue) {
    // Jobs the run never consumed are dead weight; in-flight ones must
    // finish before the cache-file view they read can be released.
    Queue->cancelPending();
    Queue->waitInFlight();
    if (RecordingHooks *Hooks = recordingHooks()) {
      // Diagnostic timeline only: engine results are invariant to the
      // claim/withdraw pattern, so replay compares these outcomes to
      // attribute a divergence, never to reproduce one.
      dbi::ScheduleStats Sched = Queue->scheduleStats();
      ScheduleOutcomes Out;
      Out.ChunksPublished = Sched.ChunksPublished;
      Out.ChunksClaimed = Sched.ChunksClaimed;
      Out.ChunksWithdrawn = Sched.ChunksWithdrawn;
      Out.ChunksInFlightSkipped = Sched.ChunksInFlightSkipped;
      Hooks->onScheduleOutcomes(Out);
    }
  }
  if (!Fin)
    return Status::success();
  PublishOutcome Out;
  OptOutcome Opt;
  {
    std::unique_lock<std::mutex> Lock(Fin->Mutex);
    Fin->Completed.wait(Lock, [&] { return Fin->Done; });
    Out.Succeeded = Fin->Succeeded;
    Out.LastError = Fin->LastError;
    Out.StoreFailures = Fin->StoreFailures;
    Out.StoreRetries = Fin->StoreRetries;
    Opt.TracesPromoted = Fin->TracesPromoted;
    Opt.SuperblocksFormed = Fin->SuperblocksFormed;
    Opt.LoadsEliminated = Fin->OptLoadsEliminated;
    Opt.ConstsFolded = Fin->OptConstsFolded;
    Opt.Rejections = Fin->OptValidatorRejections;
  }
  Fin.reset();
  if (Stats) {
    Stats->PersistStoreRetries += Out.StoreRetries;
    Stats->PersistStoreFailures += Out.StoreFailures;
    Stats->TracesPromoted += Opt.TracesPromoted;
    Stats->SuperblocksFormed += Opt.SuperblocksFormed;
    Stats->OptLoadsEliminated += Opt.LoadsEliminated;
    Stats->OptConstsFolded += Opt.ConstsFolded;
    Stats->OptValidatorRejections += Opt.Rejections;
  }
  if (Out.Succeeded)
    return Status::success();
  if (Opts.FailFast)
    return Out.LastError;
  if (Stats) {
    Stats->PersistDegraded = true;
    Stats->PersistDegradeReason = Out.LastError.toString();
  }
  return Status::success();
}

ErrorOr<PersistentRunResult> pcc::persist::runWithPersistence(
    vm::Machine &M, dbi::Tool *ClientTool,
    const dbi::EngineOptions &EngineOpts, const CacheDatabase &Db,
    const PersistOptions &Opts) {
  dbi::Engine Engine(M, ClientTool, EngineOpts);
  PersistentSession Session(Db, Opts);
  auto Prime = Session.prime(Engine);
  if (!Prime)
    return Prime.status();

  PersistentRunResult Result;
  Result.Prime = Prime.take();
  Result.Run = Engine.run();
  Status Finalized = Session.finalize(Engine);
  if (!Finalized.ok())
    return Finalized;
  // Durability barrier: with a worker pool the publish is still in
  // flight — wait for it and fold its outcome (retries, failures,
  // degradation) into the stats exactly where the synchronous path
  // records them.
  Status Waited = Session.wait(&Engine.stats());
  if (!Waited.ok())
    return Waited;
  Result.Stats = Engine.stats();
  // Include the cache write-back charged by finalize().
  Result.Run.Cycles = Result.Stats.totalCycles();
  return Result;
}
