//===- persist/MemoryStore.cpp --------------------------------------------===//

#include "persist/MemoryStore.h"

#include "persist/RecordingHooks.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace pcc;
using namespace pcc::persist;

MemoryStore::MemoryStore() = default;

MemoryStore::MemoryStore(std::string Label)
    : Location(std::move(Label)) {}

std::string MemoryStore::refFor(uint64_t LookupKey) const {
  return Location + "/" + toHex(LookupKey, 16) + ".pcc";
}

bool MemoryStore::exists(uint64_t LookupKey) const {
  std::lock_guard<std::mutex> Guard(Mutex);
  return Slots.count(refFor(LookupKey)) != 0;
}

namespace {

bool isLegacyImage(const std::vector<uint8_t> &Bytes) {
  if (Bytes.size() < 4)
    return false;
  uint32_t Magic = 0;
  for (unsigned I = 0; I != 4; ++I)
    Magic |= static_cast<uint32_t>(Bytes[I]) << (8 * I);
  return Magic == LegacyCacheMagic;
}

/// Parses generation without a full decode: 0 when unreadable.
uint32_t imageGeneration(const std::vector<uint8_t> &Bytes) {
  if (isLegacyImage(Bytes)) {
    auto File = CacheFile::deserialize(Bytes);
    return File ? File->Generation : 0;
  }
  auto View =
      CacheFileView::open(Bytes, CacheFileView::Depth::HeaderOnly);
  return View ? View->generation() : 0;
}

} // namespace

std::string MemoryStore::nameOf(const std::string &Ref) const {
  size_t Slash = Ref.rfind('/');
  return Slash == std::string::npos ? Ref : Ref.substr(Slash + 1);
}

void MemoryStore::quarantineLocked(const std::string &Ref,
                                   const std::string &Reason) {
  auto It = Slots.find(Ref);
  if (It == Slots.end())
    return;
  Quarantine[nameOf(Ref)] = {std::move(It->second), Reason};
  Slots.erase(It);
}

ErrorOr<StoredCache> MemoryStore::openRef(const std::string &Ref,
                                          CacheFileView::Depth D) {
  std::vector<uint8_t> Bytes;
  {
    std::lock_guard<std::mutex> Guard(Mutex);
    auto It = Slots.find(Ref);
    if (It == Slots.end())
      return Status::error(ErrorCode::NotFound, "no cache at " + Ref);
    Bytes = It->second;
  }
  if (RecordingHooks *Hooks = recordingHooks())
    Hooks->onCacheObserved(Ref, Bytes);
  auto Reject = [&](const Status &S) {
    // Same policy as the directory backend: readable-but-invalid
    // contents move to the quarantine; mismatched versions stay.
    if (AutoQuarantine && S.code() == ErrorCode::InvalidFormat) {
      std::string Reason = annotatedQuarantineReason(
          Ref, QuarantineReasonCode::InvalidFormat, S.message());
      std::lock_guard<std::mutex> Guard(Mutex);
      quarantineLocked(Ref, Reason);
    }
    return S;
  };
  StoredCache Cache;
  if (isLegacyImage(Bytes)) {
    auto File = CacheFile::deserialize(Bytes);
    if (!File)
      return Reject(File.status());
    Cache.Eager = File.take();
    return Cache;
  }
  auto View = CacheFileView::open(std::move(Bytes), D);
  if (!View)
    return Reject(View.status());
  Cache.View = View.take();
  return Cache;
}

ErrorOr<CacheFile> MemoryStore::loadRef(const std::string &Ref) {
  std::vector<uint8_t> Bytes;
  {
    std::lock_guard<std::mutex> Guard(Mutex);
    auto It = Slots.find(Ref);
    if (It == Slots.end())
      return Status::error(ErrorCode::NotFound, "no cache at " + Ref);
    Bytes = It->second;
  }
  return CacheFile::deserialize(Bytes);
}

Status MemoryStore::put(uint64_t LookupKey, const CacheFile &File) {
  return putRef(refFor(LookupKey), File);
}

Status MemoryStore::putRef(const std::string &Ref,
                           const CacheFile &File) {
  std::vector<uint8_t> Bytes = File.serialize();
  std::lock_guard<std::mutex> Guard(Mutex);
  Slots[Ref] = std::move(Bytes);
  return Status::success();
}

ErrorOr<PublishResult> MemoryStore::publish(uint64_t LookupKey,
                                            CacheFile File,
                                            uint32_t BaseGeneration) {
  // One mutex plays both of the directory store's lock roles: the
  // generation read, merge and slot swap are a single critical section.
  std::lock_guard<std::mutex> Guard(Mutex);
  std::string Ref = refFor(LookupKey);
  PublishResult Result;
  auto It = Slots.find(Ref);
  uint32_t Current = It == Slots.end() ? 0 : imageGeneration(It->second);
  if (Current != 0 && Current != BaseGeneration) {
    auto Winner = CacheFile::deserialize(It->second);
    if (Winner) {
      File = mergeCacheFiles(*Winner, std::move(File));
      File.Generation = Current + 1;
      Result.Merged = true;
    }
  }
  Result.Generation = File.Generation;
  Slots[Ref] = File.serialize();
  return Result;
}

Status MemoryStore::retire(uint64_t LookupKey) {
  std::lock_guard<std::mutex> Guard(Mutex);
  Slots.erase(refFor(LookupKey));
  return Status::success();
}

Status MemoryStore::clear() {
  std::lock_guard<std::mutex> Guard(Mutex);
  Slots.clear();
  return Status::success();
}

ErrorOr<std::vector<std::string>>
MemoryStore::findCompatible(uint64_t EngineHash, uint64_t ToolHash) {
  std::lock_guard<std::mutex> Guard(Mutex);
  std::vector<std::string> Matches;
  for (const auto &[Ref, Bytes] : Slots) {
    if (isLegacyImage(Bytes)) {
      auto File = CacheFile::deserialize(Bytes);
      if (File && File->EngineHash == EngineHash &&
          File->ToolHash == ToolHash)
        Matches.push_back(Ref);
      continue;
    }
    auto View =
        CacheFileView::open(Bytes, CacheFileView::Depth::HeaderOnly);
    if (View && View->engineHash() == EngineHash &&
        View->toolHash() == ToolHash)
      Matches.push_back(Ref);
  }
  return Matches;
}

ErrorOr<std::vector<std::string>> MemoryStore::listRefs() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  std::vector<std::string> Refs;
  for (const auto &[Ref, Bytes] : Slots)
    Refs.push_back(Ref);
  return Refs; // Map order is sorted already.
}

ErrorOr<StoreStats> MemoryStore::stats() {
  std::lock_guard<std::mutex> Guard(Mutex);
  StoreStats Result;
  for (const auto &[Ref, Bytes] : Slots) {
    ++Result.CacheFiles;
    Result.DiskBytes += Bytes.size();
    auto File = CacheFile::deserialize(Bytes);
    if (!File) {
      ++Result.CorruptFiles;
      continue;
    }
    Result.CodeBytes += File->codeBytes();
    Result.DataBytes += File->dataBytes();
    Result.Traces += File->Traces.size();
  }
  Result.QuarantinedFiles = static_cast<uint32_t>(Quarantine.size());
  return Result;
}

Status MemoryStore::quarantineRef(const std::string &Ref,
                                  const std::string &Reason) {
  std::lock_guard<std::mutex> Guard(Mutex);
  if (Slots.count(Ref) == 0)
    return Status::error(ErrorCode::NotFound, "no cache at " + Ref);
  quarantineLocked(Ref, Reason);
  return Status::success();
}

ErrorOr<std::vector<QuarantineEntry>> MemoryStore::quarantined() {
  std::lock_guard<std::mutex> Guard(Mutex);
  std::vector<QuarantineEntry> Entries;
  for (const auto &[Name, Image] : Quarantine) {
    QuarantineEntry E;
    E.Name = Name;
    std::string Stored = splitReplayAnnotation(Image.Reason, &E.ReplayLog);
    E.Code = parseQuarantineReason(Stored, &E.Reason);
    E.Bytes = Image.Bytes.size();
    Entries.push_back(std::move(E));
  }
  return Entries;
}

Status MemoryStore::restoreQuarantined(const std::string &Name) {
  std::lock_guard<std::mutex> Guard(Mutex);
  auto It = Quarantine.find(Name);
  if (It == Quarantine.end())
    return Status::error(ErrorCode::NotFound,
                         "not in quarantine: " + Name);
  std::string Ref = Location + "/" + Name;
  if (Slots.count(Ref) != 0)
    return Status::error(ErrorCode::InvalidArgument,
                         "slot occupied, not restoring over " + Ref);
  Slots[Ref] = std::move(It->second.Bytes);
  Quarantine.erase(It);
  return Status::success();
}

ErrorOr<uint32_t> MemoryStore::purgeQuarantine() {
  std::lock_guard<std::mutex> Guard(Mutex);
  uint32_t Purged = static_cast<uint32_t>(Quarantine.size());
  Quarantine.clear();
  Attachments.clear();
  return Purged;
}

Status
MemoryStore::attachToQuarantine(const std::string &FileName,
                                const std::vector<uint8_t> &Bytes) {
  if (FileName.empty() || FileName.find('/') != std::string::npos)
    return Status::error(ErrorCode::InvalidArgument,
                         "bad attachment name: " + FileName);
  std::lock_guard<std::mutex> Guard(Mutex);
  Attachments[FileName] = Bytes;
  return Status::success();
}

ErrorOr<std::vector<uint8_t>>
MemoryStore::readQuarantineAttachment(const std::string &FileName) {
  std::lock_guard<std::mutex> Guard(Mutex);
  auto It = Attachments.find(FileName);
  if (It == Attachments.end())
    return Status::error(ErrorCode::NotFound,
                         "no attachment: " + FileName);
  return It->second;
}

ErrorOr<uint32_t> MemoryStore::shrinkTo(uint64_t MaxBytes) {
  std::lock_guard<std::mutex> Guard(Mutex);
  struct Entry {
    std::string Ref;
    uint64_t Size = 0;
    uint32_t Generation = 0;
    bool Corrupt = false;
  };
  std::vector<Entry> Entries;
  uint64_t Total = 0;
  for (const auto &[Ref, Bytes] : Slots) {
    Entry E;
    E.Ref = Ref;
    E.Size = Bytes.size();
    auto File = CacheFile::deserialize(Bytes);
    if (!File)
      E.Corrupt = true;
    else
      E.Generation = File->Generation;
    Total += E.Size;
    Entries.push_back(std::move(E));
  }

  uint32_t Removed = 0;
  for (auto &E : Entries) {
    if (!E.Corrupt)
      continue;
    quarantineLocked(E.Ref,
                     encodeQuarantineReason(
                         QuarantineReasonCode::InvalidFormat,
                         "failed validation during shrink"));
    Total -= E.Size;
    E.Size = 0;
    ++Removed;
  }
  if (Total <= MaxBytes)
    return Removed;

  std::sort(Entries.begin(), Entries.end(),
            [](const Entry &A, const Entry &B) {
              if (A.Generation != B.Generation)
                return A.Generation < B.Generation;
              return A.Size > B.Size;
            });
  for (const Entry &E : Entries) {
    if (Total <= MaxBytes)
      break;
    if (E.Corrupt || E.Size == 0)
      continue;
    Slots.erase(E.Ref);
    Total -= E.Size;
    ++Removed;
  }
  return Removed;
}
