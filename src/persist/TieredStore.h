//===- persist/TieredStore.h - L1 + remote L2 store backend -----*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet-scale CacheStore backend: a local L1 (any CacheStore —
/// DirectoryStore on a machine, MemoryStore in simulations) backed by a
/// shared remote L2. One L2 serves many machines, so translations
/// published anywhere in the fleet become a read-through hit everywhere
/// else — the paper's inter-application reuse (Section 3.2.3) lifted
/// from one desktop's database to a population of them.
///
/// Policy, by operation:
///
///   * Reads are read-through: L1 first; on an L1 miss the file is
///     fetched from L2 (charged with modeled remote latency+bandwidth
///     cycles, reported on the StoredCache and in TieredStats), filled
///     into L1, and served locally from then on.
///   * Writes are write-through: put/publish land in L2 first (the
///     global merge truth — concurrent finalizers across machines
///     resolve there by the generation protocol) and the result is
///     filled back into L1 under a generation compare, so a stale racer
///     never overwrites a newer local copy.
///   * findCompatible unions the tiers: local matches first (no fetch
///     needed to try them), then remote-only candidates, which read
///     through on open — version-skewed machines pick up compatible
///     caches the fleet published under keys they have never seen.
///   * The remote tier is an accelerator, never a dependency: every L2
///     failure is absorbed (counted in TieredStats::RemoteFailures) and
///     RemoteBreakerThreshold consecutive failures open a circuit
///     breaker that degrades the store to L1-only for its lifetime.
///   * Quarantine is local: a cache this machine proved bad moves into
///     L1's quarantine; the L2 copy stays for other machines to judge.
///     A corrupt L1 copy self-heals — the open quarantines it locally
///     and the read-through refetches the healthy remote copy.
///   * Quotas: L1QuotaBytes caps the local tier with heat-aware LRU
///     eviction (files whose traces accumulated the least v3 Heat go
///     first, ties broken least-recently-used; evicted files remain a
///     remote fetch away). L2QuotaBytes forwards to the remote tier's
///     generation-ordered shrinkTo after each publish.
///
/// All refs the store hands out are in L1's namespace; shrinkTo applies
/// to the authoritative L2 and reconciles L1 against the survivors.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_PERSIST_TIEREDSTORE_H
#define PCC_PERSIST_TIEREDSTORE_H

#include "persist/CacheStore.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace pcc {
namespace persist {

/// Tiered-store tuning. The remote cycle charges default to the
/// dbi::CostModel values (kept in sync by a test) so the store can be
/// built without a CostModel in hand.
struct TieredOptions {
  /// Local-tier byte cap; 0 = unbounded. Enforced after every fill
  /// with heat-aware LRU eviction.
  uint64_t L1QuotaBytes = 0;
  /// Remote-tier byte cap; 0 = unbounded. Enforced via the remote
  /// store's shrinkTo after each publish.
  uint64_t L2QuotaBytes = 0;
  /// Modeled fixed latency of one remote fetch, in cycles
  /// (CostModel::RemoteFetchLatencyCycles).
  uint64_t RemoteFetchLatencyCycles = 400000;
  /// Modeled transfer cost per 4 KiB page fetched
  /// (CostModel::RemoteFetchCyclesPerPage).
  uint64_t RemoteFetchCyclesPerPage = 2000;
  /// Consecutive remote failures that open the circuit breaker and
  /// degrade the store to L1-only.
  uint32_t RemoteBreakerThreshold = 3;
};

/// Telemetry snapshot of one TieredStore (monotone counters since
/// construction).
struct TieredStats {
  uint64_t L1Hits = 0;        ///< Opens satisfied locally.
  uint64_t L2Hits = 0;        ///< Opens satisfied by read-through.
  uint64_t Misses = 0;        ///< Opens neither tier could satisfy.
  uint64_t RemoteFetches = 0; ///< Files pulled from L2.
  uint64_t RemoteFetchBytes = 0;
  uint64_t RemotePublishes = 0; ///< Files pushed to L2 (put/publish).
  uint64_t RemotePublishBytes = 0;
  uint64_t RemoteFailures = 0; ///< L2 operations absorbed as failures.
  uint64_t L1Evictions = 0;   ///< Files the L1 quota evicted.
  uint64_t ModeledRemoteCycles = 0; ///< Latency+bandwidth charges of
                                    ///< every fetch and publish.
  uint64_t CertFillChecks = 0;  ///< Validation certificates
                                ///< self-checked on L2->L1 fills (the
                                ///< module-less trusted-checker pass).
  uint64_t CertFillRejects = 0; ///< Of those, rejected. The blob is
                                ///< passed through unmodified — prime
                                ///< re-checks and quarantines with the
                                ///< full story; this counter is the
                                ///< fleet's early-warning signal.
  bool RemoteDisabled = false; ///< Circuit breaker currently open.
};

/// Two-tier store: local L1 backed by a shared remote L2.
class TieredStore : public CacheStore {
public:
  /// Both tiers are required; the L2 is typically shared by many
  /// TieredStore instances (one per simulated machine).
  TieredStore(std::shared_ptr<CacheStore> L1,
              std::shared_ptr<CacheStore> L2,
              TieredOptions Opts = TieredOptions());

  const std::string &location() const override {
    return L1->location();
  }
  std::string refFor(uint64_t LookupKey) const override {
    return L1->refFor(LookupKey);
  }
  bool exists(uint64_t LookupKey) const override;
  ErrorOr<StoredCache> openRef(const std::string &Ref,
                               CacheFileView::Depth D) override;
  ErrorOr<CacheFile> loadRef(const std::string &Ref) override;
  Status put(uint64_t LookupKey, const CacheFile &File) override;
  Status putRef(const std::string &Ref, const CacheFile &File) override;
  ErrorOr<PublishResult> publish(uint64_t LookupKey, CacheFile File,
                                 uint32_t BaseGeneration) override;
  Status retire(uint64_t LookupKey) override;
  Status clear() override;
  ErrorOr<std::vector<std::string>>
  findCompatible(uint64_t EngineHash, uint64_t ToolHash) override;
  ErrorOr<std::vector<std::string>> listRefs() const override;
  ErrorOr<StoreStats> stats() override;
  ErrorOr<uint32_t> shrinkTo(uint64_t MaxBytes) override;
  std::vector<LockInfo> locks() const override;
  Status quarantineRef(const std::string &Ref,
                       const std::string &Reason) override;
  ErrorOr<std::vector<QuarantineEntry>> quarantined() override;
  Status restoreQuarantined(const std::string &Name) override;
  ErrorOr<uint32_t> purgeQuarantine() override;
  // Quarantine (and its attachments) is a local judgment: L1 only.
  Status attachToQuarantine(const std::string &FileName,
                            const std::vector<uint8_t> &Bytes) override {
    return L1->attachToQuarantine(FileName, Bytes);
  }
  ErrorOr<std::vector<uint8_t>>
  readQuarantineAttachment(const std::string &FileName) override {
    return L1->readQuarantineAttachment(FileName);
  }
  void setAutoQuarantine(bool Enabled) override;
  void setScanPool(support::ThreadPool *Pool) override;

  /// Telemetry snapshot (thread-safe).
  TieredStats tieredStats() const;

  /// True once the circuit breaker has degraded the store to L1-only.
  bool remoteDisabled() const {
    return !RemoteEnabled.load(std::memory_order_relaxed);
  }

  CacheStore &l1() { return *L1; }
  CacheStore &l2() { return *L2; }
  const TieredOptions &options() const { return Opts; }

private:
  /// Basename ("<hex16>.pcc") of a ref in either tier's namespace.
  static std::string nameOf(const std::string &Ref);
  std::string l1RefOf(const std::string &Name) const;
  std::string l2RefOf(const std::string &Name) const;

  bool remoteUsable() const {
    return RemoteEnabled.load(std::memory_order_relaxed);
  }
  /// Breaker bookkeeping around every remote operation.
  void noteRemoteFailure();
  void noteRemoteSuccess();
  /// Modeled cycles of moving \p Bytes over the remote link once.
  uint64_t remoteCycles(uint64_t Bytes) const;

  /// Fetches \p Name from L2 (charging the fetch) and fills it into L1.
  /// Caller must hold FillMutex. Never evicts the just-filled name.
  ErrorOr<CacheFile> fetchIntoL1Locked(const std::string &Name,
                                       uint64_t *FetchBytes,
                                       uint64_t *FetchCycles);
  /// Fills \p File into L1 unless L1 already holds the same or a newer
  /// generation under \p Name (publish/fetch racers stay monotone).
  void fillL1IfNewer(const std::string &Name, const CacheFile &File);
  /// Evicts lowest-(heat, recency) L1 files until the quota holds,
  /// sparing \p Protect. Caller must hold FillMutex.
  void enforceL1QuotaLocked(const std::string &Protect);
  /// Stamps \p Name as just used (LRU clock).
  void touchUseLocked(const std::string &Name);

  std::shared_ptr<CacheStore> L1;
  std::shared_ptr<CacheStore> L2;
  TieredOptions Opts;

  /// Serializes every L1 fill and eviction: fills compare generations
  /// and the quota sweep must not race them.
  mutable std::mutex FillMutex;
  /// Basename -> last-use tick for LRU ties (guarded by FillMutex).
  std::unordered_map<std::string, uint64_t> LastUse;
  std::atomic<uint64_t> UseClock{0};

  /// Circuit breaker: consecutive failures and the (sticky) enable bit.
  std::atomic<uint32_t> RemoteConsecFailures{0};
  std::atomic<bool> RemoteEnabled{true};

  /// TieredStats counters.
  std::atomic<uint64_t> L1Hits{0}, L2Hits{0}, Misses{0};
  std::atomic<uint64_t> RemoteFetches{0}, RemoteFetchBytes{0};
  std::atomic<uint64_t> RemotePublishes{0}, RemotePublishBytes{0};
  std::atomic<uint64_t> RemoteFailures{0}, L1Evictions{0};
  std::atomic<uint64_t> ModeledRemoteCycles{0};
  std::atomic<uint64_t> CertFillChecks{0}, CertFillRejects{0};
};

} // namespace persist
} // namespace pcc

#endif // PCC_PERSIST_TIEREDSTORE_H
