//===- persist/CacheDatabase.cpp ------------------------------------------===//

#include "persist/CacheDatabase.h"

#include "persist/CacheView.h"
#include "support/FileSystem.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <optional>
#include <vector>

using namespace pcc;
using namespace pcc::persist;

CacheDatabase::CacheDatabase(std::string Dir) : Dir(std::move(Dir)) {
  // Creation failure surfaces later as IoError from load/store.
  (void)createDirectories(this->Dir);
}

std::string CacheDatabase::pathFor(uint64_t LookupKey) const {
  return Dir + "/" + toHex(LookupKey, 16) + ".pcc";
}

bool CacheDatabase::exists(uint64_t LookupKey) const {
  return fileExists(pathFor(LookupKey));
}

ErrorOr<CacheFile> CacheDatabase::load(uint64_t LookupKey) const {
  std::string Path = pathFor(LookupKey);
  if (!fileExists(Path))
    return Status::error(ErrorCode::NotFound,
                         "no persistent cache at " + Path);
  return loadPath(Path);
}

ErrorOr<CacheFile> CacheDatabase::loadPath(const std::string &Path) const {
  auto Bytes = readFile(Path);
  if (!Bytes)
    return Bytes.status();
  return CacheFile::deserialize(*Bytes);
}

Status CacheDatabase::store(uint64_t LookupKey,
                            const CacheFile &File) const {
  return writeFileAtomic(pathFor(LookupKey), File.serialize());
}

Status CacheDatabase::remove(uint64_t LookupKey) const {
  return removeFile(pathFor(LookupKey));
}

ErrorOr<std::vector<std::string>>
CacheDatabase::findCompatible(uint64_t EngineHash,
                              uint64_t ToolHash) const {
  auto Names = listDirectory(Dir);
  if (!Names)
    return Names.status();
  std::vector<std::string> Matches;
  for (const std::string &Name : *Names) {
    if (Name.size() < 4 || Name.substr(Name.size() - 4) != ".pcc")
      continue;
    std::string Path = Dir + "/" + Name;
    if (isV2CacheFile(Path)) {
      // Header-only open: the compatibility hashes live in the first 76
      // bytes, so the scan cost is independent of cache size.
      auto View = CacheFileView::openFile(
          Path, CacheFileView::Depth::HeaderOnly);
      if (!View)
        continue; // Unreadable/corrupt caches are not candidates.
      if (View->engineHash() == EngineHash &&
          View->toolHash() == ToolHash)
        Matches.push_back(Path);
      continue;
    }
    auto File = loadPath(Path); // Legacy fallback: eager deserialize.
    if (!File)
      continue; // Unreadable/corrupt caches are simply not candidates.
    if (File->EngineHash == EngineHash && File->ToolHash == ToolHash)
      Matches.push_back(Path);
  }
  return Matches;
}

Status CacheDatabase::clear() const {
  auto Names = listDirectory(Dir);
  if (!Names)
    return Names.status();
  for (const std::string &Name : *Names) {
    Status S = removeFile(Dir + "/" + Name);
    if (!S.ok())
      return S;
  }
  return Status::success();
}

namespace {

bool isCacheFileName(const std::string &Name) {
  return Name.size() >= 4 && Name.substr(Name.size() - 4) == ".pcc";
}

} // namespace

ErrorOr<CacheDatabase::Stats> CacheDatabase::stats() const {
  auto Names = listDirectory(Dir);
  if (!Names)
    return Names.status();
  Stats Result;
  for (const std::string &Name : *Names) {
    if (!isCacheFileName(Name))
      continue;
    std::string Path = Dir + "/" + Name;
    if (isV2CacheFile(Path)) {
      // Index-deep open: trace counts and code/data totals come from
      // the trace index; payload bytes are never read.
      auto OnDisk = fileSize(Path);
      if (!OnDisk)
        continue;
      ++Result.CacheFiles;
      Result.DiskBytes += *OnDisk;
      auto View =
          CacheFileView::openFile(Path, CacheFileView::Depth::Index);
      if (!View) {
        ++Result.CorruptFiles;
        continue;
      }
      Result.CodeBytes += View->codeBytes();
      Result.DataBytes += View->dataBytes();
      Result.Traces += View->numTraces();
      continue;
    }
    auto Bytes = readFile(Path);
    if (!Bytes)
      continue;
    ++Result.CacheFiles;
    Result.DiskBytes += Bytes->size();
    auto File = CacheFile::deserialize(*Bytes);
    if (!File) {
      ++Result.CorruptFiles;
      continue;
    }
    Result.CodeBytes += File->codeBytes();
    Result.DataBytes += File->dataBytes();
    Result.Traces += File->Traces.size();
  }
  return Result;
}

ErrorOr<uint32_t> CacheDatabase::shrinkTo(uint64_t MaxBytes) const {
  auto Names = listDirectory(Dir);
  if (!Names)
    return Names.status();

  struct Entry {
    std::string Path;
    uint64_t Size = 0;
    uint32_t Generation = 0;
    bool Corrupt = false;
  };
  std::vector<Entry> Entries;
  uint64_t Total = 0;
  for (const std::string &Name : *Names) {
    if (!isCacheFileName(Name))
      continue;
    Entry E;
    E.Path = Dir + "/" + Name;
    if (isV2CacheFile(E.Path)) {
      // Index-deep (still payload-free): shrinkTo must flag files with
      // damaged module tables or trace indices as corrupt so they are
      // deleted unconditionally, not just truncated-header ones.
      auto OnDisk = fileSize(E.Path);
      if (!OnDisk)
        continue;
      E.Size = *OnDisk;
      auto View = CacheFileView::openFile(
          E.Path, CacheFileView::Depth::Index);
      if (!View)
        E.Corrupt = true;
      else
        E.Generation = View->generation();
    } else {
      auto Bytes = readFile(E.Path);
      if (!Bytes)
        continue;
      E.Size = Bytes->size();
      auto File = CacheFile::deserialize(*Bytes);
      if (!File)
        E.Corrupt = true;
      else
        E.Generation = File->Generation;
    }
    Total += E.Size;
    Entries.push_back(std::move(E));
  }

  uint32_t Removed = 0;
  // Corrupt files go unconditionally.
  for (auto &E : Entries) {
    if (!E.Corrupt)
      continue;
    if (removeFile(E.Path).ok()) {
      Total -= E.Size;
      E.Size = 0;
      ++Removed;
    }
  }
  if (Total <= MaxBytes)
    return Removed;

  // Evict least-accumulated caches first (lowest reuse evidence); among
  // equals, reclaim the most bytes per eviction.
  std::sort(Entries.begin(), Entries.end(),
            [](const Entry &A, const Entry &B) {
              if (A.Generation != B.Generation)
                return A.Generation < B.Generation;
              return A.Size > B.Size;
            });
  for (const Entry &E : Entries) {
    if (Total <= MaxBytes)
      break;
    if (E.Corrupt || E.Size == 0)
      continue;
    if (removeFile(E.Path).ok()) {
      Total -= E.Size;
      ++Removed;
    }
  }
  return Removed;
}
