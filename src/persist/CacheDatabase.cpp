//===- persist/CacheDatabase.cpp ------------------------------------------===//

#include "persist/CacheDatabase.h"

#include "persist/DirectoryStore.h"

#include <cassert>

using namespace pcc;
using namespace pcc::persist;

CacheDatabase::CacheDatabase(std::string Dir)
    : Store(std::make_shared<DirectoryStore>(std::move(Dir))) {}

CacheDatabase::CacheDatabase(std::shared_ptr<CacheStore> Store)
    : Store(std::move(Store)) {
  assert(this->Store && "database requires a backend");
}
