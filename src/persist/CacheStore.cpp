//===- persist/CacheStore.cpp ---------------------------------------------===//

#include "persist/CacheStore.h"

#include <unordered_map>
#include <unordered_set>

using namespace pcc;
using namespace pcc::persist;

const char *
pcc::persist::quarantineReasonCodeName(QuarantineReasonCode Code) {
  switch (Code) {
  case QuarantineReasonCode::Unknown:
    return "unknown";
  case QuarantineReasonCode::InvalidFormat:
    return "invalid-format";
  case QuarantineReasonCode::VersionMismatch:
    return "version-mismatch";
  case QuarantineReasonCode::StructuralInvalid:
    return "structural-invalid";
  case QuarantineReasonCode::SemanticMismatch:
    return "semantic-mismatch";
  case QuarantineReasonCode::CertificateInvalid:
    return "certificate-invalid";
  }
  return "unknown";
}

std::string
pcc::persist::encodeQuarantineReason(QuarantineReasonCode Code,
                                     const std::string &Detail) {
  return std::string(quarantineReasonCodeName(Code)) + ": " + Detail;
}

QuarantineReasonCode
pcc::persist::parseQuarantineReason(const std::string &Stored,
                                    std::string *Detail) {
  static constexpr QuarantineReasonCode Codes[] = {
      QuarantineReasonCode::InvalidFormat,
      QuarantineReasonCode::VersionMismatch,
      QuarantineReasonCode::StructuralInvalid,
      QuarantineReasonCode::SemanticMismatch,
      QuarantineReasonCode::CertificateInvalid,
  };
  for (QuarantineReasonCode Code : Codes) {
    std::string Prefix = std::string(quarantineReasonCodeName(Code)) + ": ";
    if (Stored.compare(0, Prefix.size(), Prefix) == 0) {
      if (Detail)
        *Detail = Stored.substr(Prefix.size());
      return Code;
    }
  }
  if (Detail)
    *Detail = Stored;
  return QuarantineReasonCode::Unknown;
}

ErrorOr<StoredCache> CacheStore::openKey(uint64_t LookupKey,
                                         CacheFileView::Depth D) {
  if (!exists(LookupKey))
    return Status::error(ErrorCode::NotFound,
                         "no persistent cache at " + refFor(LookupKey));
  return openRef(refFor(LookupKey), D);
}

ErrorOr<CacheFile> CacheStore::loadKey(uint64_t LookupKey) {
  if (!exists(LookupKey))
    return Status::error(ErrorCode::NotFound,
                         "no persistent cache at " + refFor(LookupKey));
  return loadRef(refFor(LookupKey));
}

static bool regionsOverlap(uint32_t BaseA, uint32_t SizeA, uint32_t BaseB,
                           uint32_t SizeB) {
  return BaseA < BaseB + SizeB && BaseB < BaseA + SizeA;
}

CacheFile pcc::persist::mergeCacheFiles(const CacheFile &Winner,
                                        CacheFile Novel) {
  // Novel's traces always survive: its module keys were just validated
  // against the live image, so where the two caches disagree about a
  // guest start, Novel is fresher.
  std::unordered_set<uint32_t> Claimed;
  std::unordered_map<uint32_t, size_t> NovelIndexByStart;
  for (size_t I = 0; I != Novel.Traces.size(); ++I) {
    Claimed.insert(Novel.Traces[I].GuestStart);
    NovelIndexByStart.emplace(Novel.Traces[I].GuestStart, I);
  }

  std::unordered_map<std::string, uint32_t> NovelByPath;
  for (size_t I = 0; I != Novel.Modules.size(); ++I)
    NovelByPath.emplace(Novel.Modules[I].Path,
                        static_cast<uint32_t>(I));

  // Map each winner module onto the merged module table. A path both
  // caches know with differing keys means the winner persisted a stale
  // binary or base: its traces for that module are dropped (exactly the
  // prime-time invalidation rule, applied at merge time).
  std::vector<int64_t> Map(Winner.Modules.size(), -1);
  for (size_t I = 0; I != Winner.Modules.size(); ++I) {
    const ModuleKey &W = Winner.Modules[I];
    auto It = NovelByPath.find(W.Path);
    if (It != NovelByPath.end()) {
      if (Novel.Modules[It->second].matches(W))
        Map[I] = It->second;
      continue;
    }
    // Winner-only module: carry it over unless its mapping overlaps a
    // retained module (two binaries cannot share an address range, so
    // one of the records must be stale).
    bool Collides = false;
    for (const ModuleKey &N : Novel.Modules)
      Collides |= regionsOverlap(W.Base, W.Size, N.Base, N.Size);
    if (Collides)
      continue;
    Map[I] = static_cast<int64_t>(Novel.Modules.size());
    NovelByPath.emplace(W.Path, static_cast<uint32_t>(Map[I]));
    Novel.Modules.push_back(W);
  }

  for (const TraceRecord &Rec : Winner.Traces) {
    if (Rec.ModuleIndex >= Map.size() || Map[Rec.ModuleIndex] < 0)
      continue;
    auto Dup = NovelIndexByStart.find(Rec.GuestStart);
    if (Dup != NovelIndexByStart.end()) {
      // Both caches carry this start, and the module key matched, so
      // both bodies translate the same guest bytes. Novel is fresher,
      // but a strictly higher optimization generation is
      // validator-proved finalize work that a stale low-generation
      // writer must not clobber; lifetime heat accumulates either way.
      TraceRecord &Kept = Novel.Traces[Dup->second];
      if (Rec.OptGen > Kept.OptGen) {
        uint32_t Heat = Kept.Heat > Rec.Heat ? Kept.Heat : Rec.Heat;
        Kept = Rec;
        Kept.ModuleIndex = static_cast<uint32_t>(Map[Rec.ModuleIndex]);
        Kept.Heat = Heat;
      }
      continue;
    }
    Claimed.insert(Rec.GuestStart);
    TraceRecord Copy = Rec;
    Copy.ModuleIndex = static_cast<uint32_t>(Map[Rec.ModuleIndex]);
    Novel.Traces.push_back(std::move(Copy));
  }

  // Clear links whose targets did not survive the merge: readers treat
  // LinkedStart == 0 as "unlinked", and validate() requires closure.
  for (TraceRecord &Rec : Novel.Traces)
    for (ExitRecord &Exit : Rec.Exits)
      if (Exit.LinkedStart != 0 && !Claimed.count(Exit.LinkedStart))
        Exit.LinkedStart = 0;
  return Novel;
}
