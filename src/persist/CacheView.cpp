//===- persist/CacheView.cpp ----------------------------------------------===//

#include "persist/CacheView.h"

#include "support/ByteStream.h"
#include "support/Hashing.h"

#include <cassert>

using namespace pcc;
using namespace pcc::persist;

static Status formatError(const char *Message) {
  return Status::error(ErrorCode::InvalidFormat, Message);
}

bool pcc::persist::isV2CacheFile(const std::string &Path) {
  auto Prefix = readFileRange(Path, 0, 4);
  if (!Prefix || Prefix->size() < 4)
    return false;
  uint32_t Magic = 0;
  for (unsigned I = 0; I != 4; ++I)
    Magic |= static_cast<uint32_t>((*Prefix)[I]) << (8 * I);
  return Magic == v2::Magic;
}

Status CacheFileView::parseHeader(const uint8_t *Bytes, size_t Available) {
  if (Available < v2::HeaderBytes)
    return formatError("cache file smaller than v2 header");
  ByteReader Reader(Bytes, v2::HeaderBytes);
  uint32_t Magic = Reader.readU32();
  if (Magic != v2::Magic) {
    if (Magic == LegacyCacheMagic)
      return Status::error(ErrorCode::VersionMismatch,
                           "legacy (v1) cache file");
    return formatError("bad cache magic");
  }
  FormatVersion = Reader.readU32();
  if (FormatVersion != v2::Version && FormatVersion != v2::XipVersion)
    return Status::error(ErrorCode::VersionMismatch,
                         "unsupported cache format version");
  EngineHash = Reader.readU64();
  ToolHash = Reader.readU64();
  SpecBits = Reader.readU8();
  // Flags byte: bit 0 is PIC (bit-compatible with the former 0/1
  // PositionIndependent byte), bit 1 marks an XIP generation.
  uint8_t Flags = Reader.readU8();
  PositionIndependent = (Flags & v2::FlagPositionIndependent) != 0;
  Xip = (Flags & v2::FlagExecuteInPlace) != 0;
  HasOptGen = (Flags & v2::FlagOptGen) != 0;
  HasCerts = (Flags & v2::FlagCertificates) != 0;
  if (Xip != (FormatVersion == v2::XipVersion))
    return formatError("cache XIP flag inconsistent with version");
  WriterTag = Reader.readU16(); // Former Reserved0: last-writer pid tag.
  Generation = Reader.readU32();
  NumModules = Reader.readU32();
  NumTraces = Reader.readU32();
  ModuleTableOffset = Reader.readU32();
  ModuleTableSize = Reader.readU32();
  TraceIndexOffset = Reader.readU32();
  TraceIndexSize = Reader.readU32();
  PayloadOffset = Reader.readU32();
  PayloadSize = Reader.readU32();
  ModuleTableCrc = Reader.readU32();
  TraceIndexCrc = Reader.readU32();
  uint32_t HeaderCrc = Reader.readU32();
  assert(!Reader.failed() && "fixed-size header read cannot fail");
  if (crc32(Bytes, v2::HeaderBytes - 4) != HeaderCrc)
    return formatError("cache header checksum mismatch");

  // Section layout sanity: contiguous, in order, no overflow. A v3
  // (XIP) payload may sit past the trace index by less than one page of
  // zero padding, and must start page-aligned so the mapping is
  // executable in place.
  uint64_t IndexEnd =
      static_cast<uint64_t>(TraceIndexOffset) + TraceIndexSize;
  if (ModuleTableOffset != v2::HeaderBytes ||
      TraceIndexOffset !=
          static_cast<uint64_t>(ModuleTableOffset) + ModuleTableSize)
    return formatError("cache section layout inconsistent");
  if (Xip) {
    if (PayloadOffset < IndexEnd ||
        PayloadOffset - IndexEnd >= v2::PayloadAlign ||
        PayloadOffset % v2::PayloadAlign != 0)
      return formatError("XIP payload section not page-aligned");
  } else if (PayloadOffset != IndexEnd) {
    return formatError("cache section layout inconsistent");
  }
  if (static_cast<uint64_t>(NumTraces) *
          (HasOptGen ? v2::OptIndexEntryBytes : v2::IndexEntryBytes) >
      TraceIndexSize)
    return formatError("trace index smaller than its entry count");
  return Status::success();
}

Status CacheFileView::parseSections() {
  // A certified file carries the certificate section past the declared
  // (header-covered) size; an uncertified file must end exactly there.
  if (HasCerts ? Size < declaredFileBytes()
               : Size != declaredFileBytes())
    return formatError("cache file size does not match header");

  const uint8_t *ModTable = Data + ModuleTableOffset;
  if (crc32(ModTable, ModuleTableSize) != ModuleTableCrc)
    return formatError("module table checksum mismatch");
  ByteReader ModReader(ModTable, ModuleTableSize);
  Modules.reserve(NumModules);
  for (uint32_t I = 0; I != NumModules && !ModReader.failed(); ++I)
    Modules.push_back(ModuleKey::deserialize(ModReader));
  if (ModReader.failed() || !ModReader.atEnd())
    return formatError("truncated or oversized module table");

  const uint8_t *Index = Data + TraceIndexOffset;
  if (crc32(Index, TraceIndexSize) != TraceIndexCrc)
    return formatError("trace index checksum mismatch");
  const size_t EntryBytes =
      HasOptGen ? v2::OptIndexEntryBytes : v2::IndexEntryBytes;
  ByteReader IndexReader(Index,
                         static_cast<size_t>(NumTraces) * EntryBytes);
  Entries.reserve(NumTraces);
  for (uint32_t I = 0; I != NumTraces; ++I) {
    TraceIndexEntry E;
    E.GuestStart = IndexReader.readU32();
    E.ModuleIndex = IndexReader.readU32();
    E.GuestInstCount = IndexReader.readU32();
    E.CodeOffset = IndexReader.readU32();
    E.CodeSize = IndexReader.readU32();
    E.CodeCrc = IndexReader.readU32();
    E.MetaOffset = IndexReader.readU32();
    E.ExitCount = IndexReader.readU32();
    E.RelocSize = IndexReader.readU32();
    E.Heat = IndexReader.readU32(); // Former Reserved word.
    if (HasOptGen)
      E.OptGen = IndexReader.readU32();
    if (IndexReader.failed())
      return formatError("truncated trace index");
    // Entry bounds: everything an entry points at must land inside its
    // section, so later accessors can index without checks.
    if (E.ModuleIndex >= NumModules)
      return formatError("trace module index out of range");
    if (static_cast<uint64_t>(E.CodeOffset) + E.CodeSize > PayloadSize)
      return formatError("trace code outside payload section");
    uint64_t MetaEnd = static_cast<uint64_t>(E.MetaOffset) +
                       static_cast<uint64_t>(E.ExitCount) *
                           v2::ExitRecordBytes +
                       E.RelocSize;
    if (MetaEnd > TraceIndexSize)
      return formatError("trace metadata outside index section");
    Entries.push_back(E);
  }
  if (HasCerts)
    parseCertSection();
  return Status::success();
}

void CacheFileView::parseCertSection() {
  // Certificate damage never fails the open: the code sections stand on
  // their own CRCs, so a corrupt cert section degrades every trace to a
  // full re-prove at consumption instead of discarding the file.
  CertsCorrupt = true;
  const uint64_t Declared = declaredFileBytes();
  if (Size < Declared + v2::CertSectHeaderBytes)
    return;
  const uint8_t *Sect = Data + Declared;
  ByteReader Reader(Sect, v2::CertSectHeaderBytes);
  const uint32_t SectMagic = Reader.readU32();
  const uint32_t Count = Reader.readU32();
  const uint32_t BlobBytes = Reader.readU32();
  const uint32_t DirCrc = Reader.readU32();
  if (SectMagic != v2::CertSectMagic || Count != NumTraces)
    return;
  const uint64_t DirBytes =
      static_cast<uint64_t>(Count) * v2::CertDirEntryBytes;
  if (Size !=
      Declared + v2::CertSectHeaderBytes + DirBytes + BlobBytes)
    return;
  const uint8_t *Dir = Sect + v2::CertSectHeaderBytes;
  if (crc32(Dir, DirBytes) != DirCrc)
    return;
  ByteReader DirReader(Dir, DirBytes);
  std::vector<std::pair<uint32_t, uint32_t>> Parsed;
  Parsed.reserve(Count);
  for (uint32_t I = 0; I != Count; ++I) {
    uint32_t Off = DirReader.readU32();
    uint32_t Sz = DirReader.readU32();
    if (static_cast<uint64_t>(Off) + Sz > BlobBytes)
      return;
    Parsed.emplace_back(Off, Sz);
  }
  CertDir = std::move(Parsed);
  CertBlobBase = Dir + DirBytes;
  CertsCorrupt = false;
}

ErrorOr<CacheFileView> CacheFileView::open(std::vector<uint8_t> Bytes,
                                           Depth D) {
  CacheFileView View;
  View.OpenDepth = D;
  View.Owned = std::move(Bytes);
  View.Data = View.Owned.data();
  View.Size = View.Owned.size();
  Status S = View.parseHeader(View.Data, View.Size);
  if (!S.ok())
    return S;
  if (D == Depth::HeaderOnly) {
    // An in-memory image is complete, so the declared size is checkable
    // even without parsing the sections. Certified files legitimately
    // extend past the declared size (the trailing cert section).
    if (View.HasCerts ? View.Size < View.declaredFileBytes()
                      : View.Size != View.declaredFileBytes())
      return formatError("cache file size does not match header");
    return View;
  }
  S = View.parseSections();
  if (!S.ok())
    return S;
  return View;
}

ErrorOr<CacheFileView> CacheFileView::openFile(const std::string &Path,
                                               Depth D) {
  if (D == Depth::HeaderOnly) {
    auto Prefix = readFileRange(Path, 0, v2::HeaderBytes);
    if (!Prefix)
      return Prefix.status();
    CacheFileView View;
    View.OpenDepth = D;
    View.Owned = Prefix.take();
    View.Data = View.Owned.data();
    View.Size = View.Owned.size();
    Status S = View.parseHeader(View.Data, View.Size);
    if (!S.ok())
      return S;
    // Truncation is detectable without reading the body: the header
    // declares the exact file size.
    auto OnDisk = fileSize(Path);
    if (!OnDisk)
      return OnDisk.status();
    if (View.HasCerts ? *OnDisk < View.declaredFileBytes()
                      : *OnDisk != View.declaredFileBytes())
      return formatError("cache file size does not match header");
    return View;
  }

  auto Mapped = MappedFile::open(Path);
  if (!Mapped)
    return Mapped.status();
  CacheFileView View;
  View.OpenDepth = D;
  View.Map = Mapped.take();
  View.Data = View.Map.data();
  View.Size = View.Map.size();
  Status S = View.parseHeader(View.Data, View.Size);
  if (!S.ok())
    return S;
  S = View.parseSections();
  if (!S.ok())
    return S;
  return View;
}

std::vector<ExitRecord> CacheFileView::readExits(uint32_t I) const {
  assert(OpenDepth == Depth::Index && "exits need an index-deep open");
  const TraceIndexEntry &E = Entries[I];
  const uint8_t *Meta = Data + TraceIndexOffset + E.MetaOffset;
  ByteReader Reader(Meta, static_cast<size_t>(E.ExitCount) *
                              v2::ExitRecordBytes);
  std::vector<ExitRecord> Exits;
  Exits.reserve(E.ExitCount);
  for (uint32_t K = 0; K != E.ExitCount; ++K) {
    ExitRecord Exit;
    Exit.Kind = Reader.readU8();
    Exit.InstIndex = Reader.readU32();
    Exit.Target = Reader.readU32();
    Exit.LinkedStart = Reader.readU32();
    Exits.push_back(Exit);
  }
  assert(!Reader.failed() && "exit heap bounds were validated at open");
  return Exits;
}

std::vector<uint8_t> CacheFileView::readRelocMask(uint32_t I) const {
  assert(OpenDepth == Depth::Index && "masks need an index-deep open");
  const TraceIndexEntry &E = Entries[I];
  const uint8_t *Mask = Data + TraceIndexOffset + E.MetaOffset +
                        static_cast<size_t>(E.ExitCount) *
                            v2::ExitRecordBytes;
  return std::vector<uint8_t>(Mask, Mask + E.RelocSize);
}

const uint8_t *CacheFileView::codeBytesOf(uint32_t I) const {
  assert(OpenDepth == Depth::Index && "payload needs an index-deep open");
  return Data + PayloadOffset + Entries[I].CodeOffset;
}

const uint8_t *CacheFileView::payloadBytes() const {
  assert(OpenDepth == Depth::Index && "payload needs an index-deep open");
  return Data + PayloadOffset;
}

bool CacheFileView::codeCrcOk(uint32_t I) const {
  const TraceIndexEntry &E = Entries[I];
  return crc32(codeBytesOf(I), E.CodeSize) == E.CodeCrc;
}

std::pair<const uint8_t *, size_t>
CacheFileView::certBlobOf(uint32_t I) const {
  if (!certsPresent() || I >= CertDir.size())
    return {nullptr, 0};
  const auto &[Off, Sz] = CertDir[I];
  if (Sz == 0)
    return {nullptr, 0};
  return {CertBlobBase + Off, Sz};
}

ErrorOr<TraceRecord> CacheFileView::record(uint32_t I) const {
  const TraceIndexEntry &E = Entries[I];
  if (!codeCrcOk(I))
    return formatError("trace code checksum mismatch");
  TraceRecord Rec;
  Rec.GuestStart = E.GuestStart;
  Rec.ModuleIndex = E.ModuleIndex;
  Rec.GuestInstCount = E.GuestInstCount;
  const uint8_t *Code = codeBytesOf(I);
  Rec.Code.assign(Code, Code + E.CodeSize);
  Rec.Exits = readExits(I);
  Rec.RelocMask = readRelocMask(I);
  Rec.Heat = E.Heat;
  Rec.OptGen = E.OptGen;
  auto [CertData, CertSize] = certBlobOf(I);
  if (CertData)
    Rec.Cert.assign(CertData, CertData + CertSize);
  return Rec;
}

uint64_t CacheFileView::codeBytes() const {
  uint64_t Total = 0;
  for (const TraceIndexEntry &E : Entries)
    Total += E.CodeSize;
  return Total;
}

uint64_t CacheFileView::dataBytes() const {
  uint64_t Total = 0;
  for (const TraceIndexEntry &E : Entries)
    Total += traceDataBytes(E.ExitCount, E.GuestInstCount);
  return Total;
}
