//===- persist/TieredStore.cpp --------------------------------------------===//

#include "persist/TieredStore.h"

#include "analysis/CertChecker.h"
#include "dbi/Compiler.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <unordered_set>

using namespace pcc;
using namespace pcc::persist;

TieredStore::TieredStore(std::shared_ptr<CacheStore> L1,
                         std::shared_ptr<CacheStore> L2,
                         TieredOptions Opts)
    : L1(std::move(L1)), L2(std::move(L2)), Opts(Opts) {
  assert(this->L1 && this->L2 && "tiered store requires both tiers");
}

std::string TieredStore::nameOf(const std::string &Ref) {
  size_t Slash = Ref.rfind('/');
  return Slash == std::string::npos ? Ref : Ref.substr(Slash + 1);
}

std::string TieredStore::l1RefOf(const std::string &Name) const {
  return L1->location() + "/" + Name;
}

std::string TieredStore::l2RefOf(const std::string &Name) const {
  return L2->location() + "/" + Name;
}

void TieredStore::noteRemoteFailure() {
  uint32_t Consec =
      RemoteConsecFailures.fetch_add(1, std::memory_order_relaxed) + 1;
  if (Consec >= Opts.RemoteBreakerThreshold)
    // Sticky for the store's lifetime: a fleet machine that lost its
    // remote runs local-only until the next session rebuilds the store.
    RemoteEnabled.store(false, std::memory_order_relaxed);
}

void TieredStore::noteRemoteSuccess() {
  RemoteConsecFailures.store(0, std::memory_order_relaxed);
}

uint64_t TieredStore::remoteCycles(uint64_t Bytes) const {
  uint64_t Pages = (Bytes + 4095) / 4096;
  return Opts.RemoteFetchLatencyCycles +
         Pages * Opts.RemoteFetchCyclesPerPage;
}

void TieredStore::touchUseLocked(const std::string &Name) {
  LastUse[Name] = UseClock.fetch_add(1, std::memory_order_relaxed) + 1;
}

bool TieredStore::exists(uint64_t LookupKey) const {
  if (L1->exists(LookupKey))
    return true;
  return remoteUsable() && L2->exists(LookupKey);
}

ErrorOr<CacheFile>
TieredStore::fetchIntoL1Locked(const std::string &Name,
                               uint64_t *FetchBytes,
                               uint64_t *FetchCycles) {
  auto Remote = L2->loadRef(l2RefOf(Name));
  if (!Remote) {
    if (Remote.status().code() == ErrorCode::IoError)
      noteRemoteFailure();
    if (Remote.status().code() != ErrorCode::NotFound)
      ++RemoteFailures;
    return Remote.status();
  }
  noteRemoteSuccess();
  // Self-check the fetched records' validation certificates (the
  // module-less trusted-checker pass: recorded proof vs embedded
  // source vs body bytes). Blobs pass through unmodified either way —
  // prime re-checks against the live guest and owns the quarantine
  // decision; this is the fleet's early-warning telemetry for a
  // poisoned or bit-rotted remote tier.
  for (const TraceRecord &Rec : Remote->Traces) {
    if (Rec.Cert.empty())
      continue;
    ++CertFillChecks;
    if (Rec.Code.size() < dbi::TracePrologueBytes +
                              static_cast<size_t>(Rec.GuestInstCount) *
                                  isa::InstructionSize) {
      ++CertFillRejects;
      continue;
    }
    auto Body =
        isa::decodeAll(Rec.Code.data() + dbi::TracePrologueBytes,
                       Rec.GuestInstCount);
    analysis::CertBindings Bind;
    Bind.BodyBytes = Rec.Code.data() + dbi::TracePrologueBytes;
    Bind.BodyByteCount =
        static_cast<size_t>(Rec.GuestInstCount) * isa::InstructionSize;
    if (!Body ||
        !analysis::checkCertificateBlob(Rec.Cert.data(),
                                        Rec.Cert.size(), Rec.GuestStart,
                                        *Body, nullptr, &Bind)
             .ok())
      ++CertFillRejects;
  }
  uint64_t Size = Remote->serializedSize();
  uint64_t Cycles = remoteCycles(Size);
  ++RemoteFetches;
  RemoteFetchBytes += Size;
  ModeledRemoteCycles += Cycles;
  if (FetchBytes)
    *FetchBytes = Size;
  if (FetchCycles)
    *FetchCycles = Cycles;
  // Best-effort fill: an unwritable L1 still serves the fetched image.
  (void)L1->putRef(l1RefOf(Name), *Remote);
  touchUseLocked(Name);
  enforceL1QuotaLocked(Name);
  return Remote;
}

ErrorOr<StoredCache> TieredStore::openRef(const std::string &Ref,
                                          CacheFileView::Depth D) {
  const std::string Name = nameOf(Ref);
  const std::string LocalRef = l1RefOf(Name);
  auto Local = L1->openRef(LocalRef, D);
  if (Local) {
    {
      std::lock_guard<std::mutex> Guard(FillMutex);
      touchUseLocked(Name);
    }
    ++L1Hits;
    Local->Tier = CacheTier::L1;
    return Local;
  }
  if (!remoteUsable()) {
    if (Local.status().code() == ErrorCode::NotFound)
      ++Misses;
    return Local.status();
  }
  // Read through L2. A corrupt local copy was already pulled into L1's
  // quarantine by the open above, so a healthy remote copy self-heals
  // the slot here.
  std::unique_lock<std::mutex> Lock(FillMutex);
  auto Refilled = L1->openRef(LocalRef, D); // A racer may have filled.
  if (Refilled) {
    touchUseLocked(Name);
    Lock.unlock();
    ++L1Hits;
    Refilled->Tier = CacheTier::L1;
    return Refilled;
  }
  uint64_t FetchBytes = 0, FetchCycles = 0;
  auto Fetched = fetchIntoL1Locked(Name, &FetchBytes, &FetchCycles);
  if (!Fetched) {
    if (Fetched.status().code() == ErrorCode::NotFound) {
      ++Misses;
      return Local.status(); // Both tiers empty: the local story wins.
    }
    return Fetched.status(); // Remote failure: caller degrades.
  }
  // Serve the filled slot (the normal case); fall back to wrapping the
  // fetched image when the fill could not land.
  auto Now = L1->openRef(LocalRef, D);
  StoredCache Out;
  if (Now)
    Out = Now.take();
  else
    Out.Eager = Fetched.take();
  touchUseLocked(Name);
  Lock.unlock();
  ++L2Hits;
  Out.Tier = CacheTier::L2;
  Out.RemoteFetchBytes = FetchBytes;
  Out.RemoteFetchCycles = FetchCycles;
  return Out;
}

ErrorOr<CacheFile> TieredStore::loadRef(const std::string &Ref) {
  const std::string Name = nameOf(Ref);
  auto Local = L1->loadRef(l1RefOf(Name));
  if (Local) {
    {
      std::lock_guard<std::mutex> Guard(FillMutex);
      touchUseLocked(Name);
    }
    ++L1Hits;
    return Local;
  }
  if (!remoteUsable())
    return Local.status();
  std::lock_guard<std::mutex> Guard(FillMutex);
  auto Fetched = fetchIntoL1Locked(Name, nullptr, nullptr);
  if (!Fetched) {
    if (Fetched.status().code() == ErrorCode::NotFound) {
      ++Misses;
      return Local.status();
    }
    return Fetched.status();
  }
  ++L2Hits;
  return Fetched;
}

void TieredStore::fillL1IfNewer(const std::string &Name,
                                const CacheFile &File) {
  std::lock_guard<std::mutex> Guard(FillMutex);
  const std::string LocalRef = l1RefOf(Name);
  auto Cur = L1->openRef(LocalRef, CacheFileView::Depth::HeaderOnly);
  if (Cur) {
    if (Cur->generation() > File.Generation) {
      touchUseLocked(Name);
      return; // A racer filled something newer; stay monotone.
    }
    if (Cur->generation() == File.Generation) {
      // Equal merge generation: the copies can still differ in
      // promotion state. The header's OptGen flag says whether the
      // resident copy carries validator-proved promoted bodies; the
      // incoming file is only an upgrade when it has them and the
      // resident copy does not — a stale gen-0 finalizer must never
      // clobber a promoted artifact.
      bool CurPromoted = Cur->View && Cur->View->optGenEntries();
      if (CurPromoted || File.maxOptGen() == 0) {
        touchUseLocked(Name);
        return;
      }
    }
  }
  (void)L1->putRef(LocalRef, File);
  touchUseLocked(Name);
  enforceL1QuotaLocked(Name);
}

Status TieredStore::put(uint64_t LookupKey, const CacheFile &File) {
  Status S = L1->put(LookupKey, File);
  if (!S.ok())
    return S;
  const std::string Name = nameOf(L1->refFor(LookupKey));
  {
    std::lock_guard<std::mutex> Guard(FillMutex);
    touchUseLocked(Name);
    enforceL1QuotaLocked(Name);
  }
  if (remoteUsable()) {
    Status R = L2->put(LookupKey, File);
    if (!R.ok()) {
      if (R.code() == ErrorCode::IoError)
        noteRemoteFailure();
      ++RemoteFailures; // Absorbed: the local tier has the data.
    } else {
      noteRemoteSuccess();
      uint64_t Size = File.serializedSize();
      ++RemotePublishes;
      RemotePublishBytes += Size;
      ModeledRemoteCycles += remoteCycles(Size);
    }
  }
  return Status::success();
}

Status TieredStore::putRef(const std::string &Ref,
                           const CacheFile &File) {
  const std::string Name = nameOf(Ref);
  Status S = L1->putRef(l1RefOf(Name), File);
  if (!S.ok())
    return S;
  {
    std::lock_guard<std::mutex> Guard(FillMutex);
    touchUseLocked(Name);
    enforceL1QuotaLocked(Name);
  }
  if (remoteUsable()) {
    Status R = L2->putRef(l2RefOf(Name), File);
    if (!R.ok()) {
      if (R.code() == ErrorCode::IoError)
        noteRemoteFailure();
      ++RemoteFailures;
    } else {
      noteRemoteSuccess();
      uint64_t Size = File.serializedSize();
      ++RemotePublishes;
      RemotePublishBytes += Size;
      ModeledRemoteCycles += remoteCycles(Size);
    }
  }
  return Status::success();
}

ErrorOr<PublishResult> TieredStore::publish(uint64_t LookupKey,
                                            CacheFile File,
                                            uint32_t BaseGeneration) {
  const std::string Name = nameOf(L1->refFor(LookupKey));
  if (remoteUsable()) {
    // L2 first: the shared tier is the global merge truth — concurrent
    // finalizers anywhere in the fleet resolve their generations there.
    uint64_t Size = File.serializedSize();
    auto R = L2->publish(LookupKey, File, BaseGeneration);
    if (R) {
      noteRemoteSuccess();
      ++RemotePublishes;
      RemotePublishBytes += Size;
      ModeledRemoteCycles += remoteCycles(Size);
      if (R->Merged) {
        // The slot holds a merge of ours and a concurrent winner's:
        // pull the union back so the local tier serves it too.
        auto Current = L2->loadKey(LookupKey);
        if (Current) {
          uint64_t MergedSize = Current->serializedSize();
          ++RemoteFetches;
          RemoteFetchBytes += MergedSize;
          ModeledRemoteCycles += remoteCycles(MergedSize);
          fillL1IfNewer(Name, *Current);
        }
      } else {
        // Stored as given: fill from the in-hand copy, no link trip.
        fillL1IfNewer(Name, File);
      }
      if (Opts.L2QuotaBytes)
        (void)L2->shrinkTo(Opts.L2QuotaBytes);
      return R;
    }
    if (R.status().code() == ErrorCode::IoError)
      noteRemoteFailure();
    ++RemoteFailures;
    // Fall through: degrade to a local-only publish so the session's
    // translations survive on this machine.
  }
  auto R = L1->publish(LookupKey, std::move(File), BaseGeneration);
  if (R) {
    std::lock_guard<std::mutex> Guard(FillMutex);
    touchUseLocked(Name);
    enforceL1QuotaLocked(Name);
  }
  return R;
}

Status TieredStore::retire(uint64_t LookupKey) {
  Status S = L1->retire(LookupKey);
  {
    std::lock_guard<std::mutex> Guard(FillMutex);
    LastUse.erase(nameOf(L1->refFor(LookupKey)));
  }
  if (remoteUsable()) {
    Status R = L2->retire(LookupKey);
    if (!R.ok()) {
      if (R.code() == ErrorCode::IoError)
        noteRemoteFailure();
      ++RemoteFailures;
    }
  }
  return S;
}

Status TieredStore::clear() {
  Status S = L1->clear();
  {
    std::lock_guard<std::mutex> Guard(FillMutex);
    LastUse.clear();
  }
  if (remoteUsable()) {
    Status R = L2->clear();
    if (!R.ok()) {
      if (R.code() == ErrorCode::IoError)
        noteRemoteFailure();
      ++RemoteFailures;
    }
  }
  return S;
}

ErrorOr<std::vector<std::string>>
TieredStore::findCompatible(uint64_t EngineHash, uint64_t ToolHash) {
  auto Local = L1->findCompatible(EngineHash, ToolHash);
  if (!Local)
    return Local.status();
  std::unordered_set<std::string> Seen;
  std::vector<std::string> Matches;
  for (const std::string &Ref : *Local) {
    Seen.insert(nameOf(Ref));
    Matches.push_back(Ref);
  }
  std::sort(Matches.begin(), Matches.end());
  if (remoteUsable()) {
    auto Remote = L2->findCompatible(EngineHash, ToolHash);
    if (!Remote) {
      if (Remote.status().code() == ErrorCode::IoError)
        noteRemoteFailure();
      ++RemoteFailures; // Degrade to the local candidate set.
    } else {
      noteRemoteSuccess();
      // Remote-only candidates come after every local one (no fetch
      // needed to try those first) in L1's namespace, so opening one
      // reads it through.
      std::vector<std::string> Extra;
      for (const std::string &Ref : *Remote) {
        std::string Name = nameOf(Ref);
        if (!Seen.count(Name))
          Extra.push_back(l1RefOf(Name));
      }
      std::sort(Extra.begin(), Extra.end());
      Matches.insert(Matches.end(), Extra.begin(), Extra.end());
    }
  }
  return Matches;
}

ErrorOr<std::vector<std::string>> TieredStore::listRefs() const {
  auto Local = L1->listRefs();
  if (!Local)
    return Local.status();
  std::unordered_set<std::string> Names;
  for (const std::string &Ref : *Local)
    Names.insert(nameOf(Ref));
  if (remoteUsable())
    if (auto Remote = L2->listRefs())
      for (const std::string &Ref : *Remote)
        Names.insert(nameOf(Ref));
  std::vector<std::string> Refs;
  Refs.reserve(Names.size());
  for (const std::string &Name : Names)
    Refs.push_back(l1RefOf(Name));
  std::sort(Refs.begin(), Refs.end());
  return Refs;
}

ErrorOr<StoreStats> TieredStore::stats() {
  // Write-through makes the remote tier the superset, so its scan is
  // the fleet-wide truth; quarantine is a local judgment, so that count
  // comes from L1 either way.
  if (remoteUsable()) {
    auto S = L2->stats();
    if (S) {
      noteRemoteSuccess();
      S->QuarantinedFiles = 0;
      if (auto Q = L1->quarantined())
        S->QuarantinedFiles = static_cast<uint32_t>(Q->size());
      return S;
    }
    if (S.status().code() == ErrorCode::IoError)
      noteRemoteFailure();
    ++RemoteFailures;
  }
  return L1->stats();
}

ErrorOr<uint32_t> TieredStore::shrinkTo(uint64_t MaxBytes) {
  if (!remoteUsable())
    return L1->shrinkTo(MaxBytes);
  auto Removed = L2->shrinkTo(MaxBytes);
  if (!Removed) {
    if (Removed.status().code() == ErrorCode::IoError)
      noteRemoteFailure();
    ++RemoteFailures;
    return L1->shrinkTo(MaxBytes);
  }
  noteRemoteSuccess();
  // Reconcile: local copies of files the authoritative tier evicted go
  // too, uncounted — the caller asked about the store, which is L2.
  auto Survivors = L2->listRefs();
  auto LocalRefs = L1->listRefs();
  if (Survivors && LocalRefs) {
    std::unordered_set<std::string> Keep;
    for (const std::string &Ref : *Survivors)
      Keep.insert(nameOf(Ref));
    std::lock_guard<std::mutex> Guard(FillMutex);
    for (const std::string &Ref : *LocalRefs) {
      std::string Name = nameOf(Ref);
      if (Keep.count(Name))
        continue;
      uint64_t Key = std::strtoull(Name.c_str(), nullptr, 16);
      if (l1RefOf(Name) != L1->refFor(Key))
        continue; // Not a key slot (donor fixture): leave it alone.
      (void)L1->retire(Key);
      LastUse.erase(Name);
    }
  }
  return Removed;
}

std::vector<LockInfo> TieredStore::locks() const {
  std::vector<LockInfo> Result = L1->locks();
  std::vector<LockInfo> Remote = L2->locks();
  Result.insert(Result.end(), Remote.begin(), Remote.end());
  return Result;
}

Status TieredStore::quarantineRef(const std::string &Ref,
                                  const std::string &Reason) {
  // Quarantine is local: this machine proved its copy bad; the remote
  // copy stays for the rest of the fleet to judge (and for pcc-dbcheck
  // against the shared tier).
  return L1->quarantineRef(l1RefOf(nameOf(Ref)), Reason);
}

ErrorOr<std::vector<QuarantineEntry>> TieredStore::quarantined() {
  return L1->quarantined();
}

Status TieredStore::restoreQuarantined(const std::string &Name) {
  return L1->restoreQuarantined(Name);
}

ErrorOr<uint32_t> TieredStore::purgeQuarantine() {
  return L1->purgeQuarantine();
}

void TieredStore::setAutoQuarantine(bool Enabled) {
  CacheStore::setAutoQuarantine(Enabled);
  L1->setAutoQuarantine(Enabled);
  L2->setAutoQuarantine(Enabled);
}

void TieredStore::setScanPool(support::ThreadPool *Pool) {
  CacheStore::setScanPool(Pool);
  L1->setScanPool(Pool);
  L2->setScanPool(Pool);
}

void TieredStore::enforceL1QuotaLocked(const std::string &Protect) {
  if (Opts.L1QuotaBytes == 0)
    return;
  auto S = L1->stats();
  if (!S || S->DiskBytes <= Opts.L1QuotaBytes)
    return;
  auto Refs = L1->listRefs();
  if (!Refs)
    return;
  struct Victim {
    std::string Name;
    uint64_t Heat = 0;
    uint64_t Last = 0;
    uint64_t Bytes = 0;
  };
  std::vector<Victim> Victims;
  bool SawCorrupt = false;
  for (const std::string &Ref : *Refs) {
    std::string Name = nameOf(Ref);
    if (Name == Protect)
      continue;
    Victim V;
    V.Name = std::move(Name);
    auto It = LastUse.find(V.Name);
    V.Last = It == LastUse.end() ? 0 : It->second;
    auto Cache = L1->openRef(Ref, CacheFileView::Depth::Index);
    if (!Cache) {
      // Corrupt copies were just auto-quarantined by the open (or are
      // unreadable); either way they are not eviction candidates.
      SawCorrupt = true;
      continue;
    }
    if (Cache->View) {
      V.Bytes = Cache->View->declaredFileBytes();
      for (uint32_t I = 0; I != Cache->View->numTraces(); ++I)
        V.Heat += Cache->View->entry(I).Heat;
    } else {
      V.Bytes = Cache->Eager->serializedSize();
      for (const TraceRecord &T : Cache->Eager->Traces)
        V.Heat += T.Heat;
    }
    Victims.push_back(std::move(V));
  }
  uint64_t Total = S->DiskBytes;
  if (SawCorrupt) {
    // Quarantine moves freed bytes; re-measure before evicting.
    auto Fresh = L1->stats();
    if (Fresh)
      Total = Fresh->DiskBytes;
  }
  // Coldest first: least accumulated heat, then least recently used.
  // Evicted files stay one remote fetch away, so the worst case of a
  // wrong choice is a read-through, never a retranslation.
  std::sort(Victims.begin(), Victims.end(),
            [](const Victim &A, const Victim &B) {
              if (A.Heat != B.Heat)
                return A.Heat < B.Heat;
              if (A.Last != B.Last)
                return A.Last < B.Last;
              return A.Name < B.Name;
            });
  for (const Victim &V : Victims) {
    if (Total <= Opts.L1QuotaBytes)
      break;
    uint64_t Key = std::strtoull(V.Name.c_str(), nullptr, 16);
    if (l1RefOf(V.Name) != L1->refFor(Key))
      continue; // Not a key slot: the quota never touches fixtures.
    if (!L1->retire(Key).ok())
      continue;
    ++L1Evictions;
    LastUse.erase(V.Name);
    Total -= std::min(Total, V.Bytes);
  }
}

TieredStats TieredStore::tieredStats() const {
  TieredStats S;
  S.L1Hits = L1Hits.load(std::memory_order_relaxed);
  S.L2Hits = L2Hits.load(std::memory_order_relaxed);
  S.Misses = Misses.load(std::memory_order_relaxed);
  S.RemoteFetches = RemoteFetches.load(std::memory_order_relaxed);
  S.RemoteFetchBytes = RemoteFetchBytes.load(std::memory_order_relaxed);
  S.RemotePublishes = RemotePublishes.load(std::memory_order_relaxed);
  S.RemotePublishBytes =
      RemotePublishBytes.load(std::memory_order_relaxed);
  S.RemoteFailures = RemoteFailures.load(std::memory_order_relaxed);
  S.L1Evictions = L1Evictions.load(std::memory_order_relaxed);
  S.ModeledRemoteCycles =
      ModeledRemoteCycles.load(std::memory_order_relaxed);
  S.CertFillChecks = CertFillChecks.load(std::memory_order_relaxed);
  S.CertFillRejects = CertFillRejects.load(std::memory_order_relaxed);
  S.RemoteDisabled = remoteDisabled();
  return S;
}
