//===- persist/CacheDatabase.h - Persistent cache database ------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent cache database of Figure 1: cache files indexed by
/// lookup key (application × engine version × tool). Multiple guest
/// "processes" share one database, which is how the multi-process
/// Oracle workload accumulates a cache across phases.
///
/// The database is a thin facade over a pluggable CacheStore backend:
/// the historical constructor-from-directory keeps every existing
/// caller working against a DirectoryStore, while tests and benches
/// can substitute a MemoryStore.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_PERSIST_CACHEDATABASE_H
#define PCC_PERSIST_CACHEDATABASE_H

#include "persist/CacheFile.h"
#include "persist/CacheStore.h"

#include <memory>
#include <string>
#include <vector>

namespace pcc {
namespace persist {

/// Store-backed database of persistent cache files.
class CacheDatabase {
public:
  /// Opens (creating if needed) a directory-backed database at \p Dir.
  explicit CacheDatabase(std::string Dir);

  /// Wraps an existing storage backend.
  explicit CacheDatabase(std::shared_ptr<CacheStore> Store);

  /// Location of the backing store (the directory path for
  /// directory-backed databases).
  const std::string &directory() const { return Store->location(); }

  /// The storage backend (never null).
  const std::shared_ptr<CacheStore> &backend() const { return Store; }

  /// Ref (host path for directory stores) of the cache for \p LookupKey.
  std::string pathFor(uint64_t LookupKey) const {
    return Store->refFor(LookupKey);
  }

  bool exists(uint64_t LookupKey) const {
    return Store->exists(LookupKey);
  }

  /// Loads and validates the cache for \p LookupKey. NotFound when no
  /// file exists; InvalidFormat/VersionMismatch on bad contents.
  ErrorOr<CacheFile> load(uint64_t LookupKey) const {
    return Store->loadKey(LookupKey);
  }

  /// Loads an explicit cache ref (cross-input / inter-application
  /// experiments pick their donor caches this way).
  ErrorOr<CacheFile> loadPath(const std::string &Path) const {
    return Store->loadRef(Path);
  }

  /// Atomically writes the cache for \p LookupKey (unconditional
  /// replace; concurrent finalizers use CacheStore::publish instead).
  Status store(uint64_t LookupKey, const CacheFile &File) const {
    return Store->put(LookupKey, File);
  }

  /// Removes the cache for \p LookupKey if present.
  Status remove(uint64_t LookupKey) const {
    return Store->retire(LookupKey);
  }

  /// Refs of every cache in the database whose engine and tool hashes
  /// match — the inter-application candidate set ("a cache
  /// corresponding to any application instrumented identically",
  /// Section 3.2.3). Sorted by ref for determinism.
  ErrorOr<std::vector<std::string>>
  findCompatible(uint64_t EngineHash, uint64_t ToolHash) const {
    return Store->findCompatible(EngineHash, ToolHash);
  }

  /// Deletes every cache file in the database.
  Status clear() const { return Store->clear(); }

  /// Aggregate statistics over the database (for operators and the
  /// maintenance policy).
  using Stats = StoreStats;
  ErrorOr<Stats> stats() const { return Store->stats(); }

  /// Maintenance: shrinks the database until its total on-disk size is
  /// at most \p MaxBytes, deleting the smallest-generation (least
  /// accumulated, i.e. least reused) caches first; ties broken by file
  /// size, largest first. Corrupt cache files are always deleted.
  /// \returns the number of files removed. This is the analogue of the
  /// cache-database housekeeping a deployment needs once hundreds of
  /// applications persist translations (the paper's Oracle setting has
  /// 100,000 tests sharing one database).
  ErrorOr<uint32_t> shrinkTo(uint64_t MaxBytes) const {
    return Store->shrinkTo(MaxBytes);
  }

  /// The database's quarantine: caches pulled out of the candidate set
  /// because their contents failed validation, kept with the failure
  /// reason for pcc-dbcheck to report, restore or purge.
  ErrorOr<std::vector<QuarantineEntry>> quarantined() const {
    return Store->quarantined();
  }
  Status restoreQuarantined(const std::string &Name) const {
    return Store->restoreQuarantined(Name);
  }
  ErrorOr<uint32_t> purgeQuarantine() const {
    return Store->purgeQuarantine();
  }

private:
  std::shared_ptr<CacheStore> Store;
};

} // namespace persist
} // namespace pcc

#endif // PCC_PERSIST_CACHEDATABASE_H
