//===- persist/CacheDatabase.h - Persistent cache database ------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent cache database of Figure 1: a host directory of cache
/// files indexed by lookup key (application × engine version × tool).
/// Multiple guest "processes" share one database, which is how the
/// multi-process Oracle workload accumulates a cache across phases.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_PERSIST_CACHEDATABASE_H
#define PCC_PERSIST_CACHEDATABASE_H

#include "persist/CacheFile.h"

#include <string>
#include <vector>

namespace pcc {
namespace persist {

/// Directory-backed store of persistent cache files.
class CacheDatabase {
public:
  /// Opens (creating if needed) the database at \p Dir.
  explicit CacheDatabase(std::string Dir);

  const std::string &directory() const { return Dir; }

  /// Host path of the cache file for \p LookupKey.
  std::string pathFor(uint64_t LookupKey) const;

  bool exists(uint64_t LookupKey) const;

  /// Loads and validates the cache for \p LookupKey. NotFound when no
  /// file exists; InvalidFormat/VersionMismatch on bad contents.
  ErrorOr<CacheFile> load(uint64_t LookupKey) const;

  /// Loads an explicit cache file (cross-input / inter-application
  /// experiments pick their donor caches this way).
  ErrorOr<CacheFile> loadPath(const std::string &Path) const;

  /// Atomically writes the cache for \p LookupKey.
  Status store(uint64_t LookupKey, const CacheFile &File) const;

  /// Removes the cache for \p LookupKey if present.
  Status remove(uint64_t LookupKey) const;

  /// Paths of every cache in the database whose engine and tool hashes
  /// match — the inter-application candidate set ("a cache corresponding
  /// to any application instrumented identically", Section 3.2.3).
  /// Sorted by path for determinism.
  ErrorOr<std::vector<std::string>>
  findCompatible(uint64_t EngineHash, uint64_t ToolHash) const;

  /// Deletes every cache file in the database.
  Status clear() const;

  /// Aggregate statistics over the database (for operators and the
  /// maintenance policy).
  struct Stats {
    uint32_t CacheFiles = 0;
    uint32_t CorruptFiles = 0;
    uint64_t DiskBytes = 0;
    uint64_t CodeBytes = 0;
    uint64_t DataBytes = 0;
    uint64_t Traces = 0;
  };
  ErrorOr<Stats> stats() const;

  /// Maintenance: shrinks the database until its total on-disk size is
  /// at most \p MaxBytes, deleting the smallest-generation (least
  /// accumulated, i.e. least reused) caches first; ties broken by file
  /// size, largest first. Corrupt cache files are always deleted.
  /// \returns the number of files removed. This is the analogue of the
  /// cache-database housekeeping a deployment needs once hundreds of
  /// applications persist translations (the paper's Oracle setting has
  /// 100,000 tests sharing one database).
  ErrorOr<uint32_t> shrinkTo(uint64_t MaxBytes) const;

private:
  std::string Dir;
};

} // namespace persist
} // namespace pcc

#endif // PCC_PERSIST_CACHEDATABASE_H
