//===- persist/DbCheck.cpp ------------------------------------------------===//

#include "persist/DbCheck.h"

#include "analysis/CertChecker.h"
#include "analysis/Certificate.h"
#include "analysis/Validator.h"
#include "binary/Module.h"
#include "dbi/Compiler.h"
#include "persist/CacheFile.h"
#include "persist/CacheView.h"
#include "persist/DirectoryStore.h"
#include "persist/Key.h"
#include "support/FileLock.h"
#include "support/FileSystem.h"
#include "support/StringUtils.h"

#include <optional>
#include <set>
#include <unordered_map>

using namespace pcc;
using namespace pcc::persist;

namespace {

bool isCacheFileName(const std::string &Name) {
  return Name.size() >= 4 && Name.substr(Name.size() - 4) == ".pcc";
}

/// The guest modules a --deep pass resolves cache ModuleKeys against,
/// loaded once and shared read-only by every per-file worker.
struct DeepContext {
  std::unordered_map<std::string, std::shared_ptr<const binary::Module>>
      ByPath;
};

/// Classification a store Status maps to when it sends a file to the
/// quarantine.
QuarantineReasonCode reasonCodeFor(const Status &S) {
  switch (S.code()) {
  case ErrorCode::InvalidFormat:
    return QuarantineReasonCode::InvalidFormat;
  case ErrorCode::VersionMismatch:
    return QuarantineReasonCode::VersionMismatch;
  default:
    return QuarantineReasonCode::Unknown;
  }
}

/// Self-contained certificate sweep (no guest modules needed): each
/// record carrying a certificate has its recorded proof replayed
/// against the certificate's own embedded source and the record's body
/// bytes — so a bit-flipped certificate, a certificate bound to a
/// different generation's bytes, or an unsound proof is caught without
/// ever resolving the guest. Under \p Repair a rejected certificate is
/// stripped in place (the caller rewrites the file); the trace itself
/// is kept — its payload CRC already checked out, it just loses its
/// fast-path proof. Returns the first rejection description.
std::string certSweepFile(CacheFile &File, bool Repair,
                          FileCheckReport &R) {
  std::string FirstReject;
  for (TraceRecord &Rec : File.Traces) {
    if (Rec.Cert.empty())
      continue;
    ++R.CertsChecked;
    auto Translated =
        isa::decodeAll(Rec.Code.data() + dbi::TracePrologueBytes,
                       Rec.GuestInstCount);
    analysis::CertCheckResult C;
    if (Translated) {
      // The decoded body came straight from the record's stored
      // encodings, so bind those bytes and spare the checker a
      // re-encode.
      analysis::CertBindings Bind;
      Bind.BodyBytes = Rec.Code.data() + dbi::TracePrologueBytes;
      Bind.BodyByteCount =
          static_cast<size_t>(Rec.GuestInstCount) * isa::InstructionSize;
      C = analysis::checkCertificateBlob(Rec.Cert.data(),
                                         Rec.Cert.size(), Rec.GuestStart,
                                         *Translated, nullptr, &Bind);
    } else {
      C.Status = analysis::CertCheckStatus::Malformed;
      C.Detail = Translated.status().message();
    }
    if (C.ok())
      continue;
    ++R.CertsRejected;
    if (FirstReject.empty())
      FirstReject = formatString(
          "trace @%08x: certificate rejected (%s%s%s)", Rec.GuestStart,
          analysis::certCheckStatusName(C.Status),
          C.Detail.empty() ? "" : ": ", C.Detail.c_str());
    if (Repair)
      Rec.Cert.clear();
  }
  return FirstReject;
}

/// Deep semantic sweep over one (CRC-intact) cache file: every trace is
/// symbolically validated against the guest instructions its module
/// supplies. Traces carrying a validation certificate go through the
/// trusted checker first, bound to the real module text; only a
/// rejected (or absent) certificate on a promoted body pays for the
/// full prover. Under \p Repair, a promoted trace the prover vouched
/// for gets a fresh certificate (regenerated from that very proof) and
/// a rejected certificate on a failing trace is simply part of the
/// mismatch disposition. Fills the TracesVerified/Mismatched/
/// Unverifiable and certificate counters; sets \p CertsDirty when a
/// repair changed any record's certificate; returns the first mismatch
/// description (empty when none).
std::string deepCheckFile(CacheFile &File, const DeepContext &Deep,
                          bool Repair, FileCheckReport &R,
                          bool &CertsDirty) {
  const size_t NumMods = File.Modules.size();
  // Per-module relocated guest text, resolved lazily: a module whose
  // key no longer matches its on-disk image produces unverifiable
  // traces, never false mismatches.
  std::vector<std::optional<std::vector<isa::Instruction>>> Text(NumMods);
  std::vector<bool> Resolved(NumMods, false);
  auto textOf =
      [&](uint32_t M) -> const std::vector<isa::Instruction> * {
    if (!Resolved[M]) {
      Resolved[M] = true;
      const ModuleKey &K = File.Modules[M];
      auto It = Deep.ByPath.find(K.Path);
      if (It != Deep.ByPath.end()) {
        loader::LoadedModule Mapped{It->second, K.Base, K.Size};
        ModuleKey Now = ModuleKey::compute(Mapped);
        bool Match = File.PositionIndependent
                         ? Now.matchesIgnoringBase(K)
                         : Now.matches(K);
        if (Match) {
          // The recorded base frames both the persisted GuestStarts
          // and the stored immediates, so the source text is rebased
          // into that same frame.
          std::vector<isa::Instruction> Insts =
              It->second->instructions();
          for (uint32_t Idx : It->second->textRelocations())
            if (Idx < Insts.size())
              Insts[Idx].Imm += K.Base;
          Text[M] = std::move(Insts);
        }
      }
    }
    return Text[M] ? &*Text[M] : nullptr;
  };

  std::string FirstMismatch;
  for (TraceRecord &Rec : File.Traces) {
    auto Flag = [&](const std::string &What) {
      ++R.TracesMismatched;
      if (FirstMismatch.empty())
        FirstMismatch = formatString("trace @%08x: %s", Rec.GuestStart,
                                     What.c_str());
    };
    const std::vector<isa::Instruction> *Insts =
        Rec.ModuleIndex < NumMods ? textOf(Rec.ModuleIndex) : nullptr;
    if (!Insts) {
      ++R.TracesUnverifiable;
      continue;
    }
    const uint32_t Base = File.Modules[Rec.ModuleIndex].Base;
    if (Rec.GuestStart < Base ||
        (Rec.GuestStart - Base) % isa::InstructionSize != 0) {
      Flag("start address outside module text");
      continue;
    }
    uint32_t First = (Rec.GuestStart - Base) / isa::InstructionSize;
    if (First + Rec.GuestInstCount > Insts->size()) {
      Flag("body extends past module text");
      continue;
    }
    if (Rec.Code.size() < dbi::TracePrologueBytes +
                              static_cast<size_t>(Rec.GuestInstCount) *
                                  isa::InstructionSize) {
      Flag("code image smaller than its instruction count");
      continue;
    }
    auto Translated =
        isa::decodeAll(Rec.Code.data() + dbi::TracePrologueBytes,
                       Rec.GuestInstCount);
    if (!Translated) {
      Flag(Translated.status().message());
      continue;
    }
    std::vector<isa::Instruction> Source(
        Insts->begin() + First,
        Insts->begin() + First + Rec.GuestInstCount);
    // Certificate fast path: replay the recorded proof with the
    // trusted checker, bound to the real module text.
    bool CertRejected = false;
    if (!Rec.Cert.empty()) {
      ++R.CertsChecked;
      analysis::CertBindings Bind;
      Bind.BodyBytes = Rec.Code.data() + dbi::TracePrologueBytes;
      Bind.BodyByteCount =
          static_cast<size_t>(Rec.GuestInstCount) * isa::InstructionSize;
      if (analysis::checkCertificateBlob(Rec.Cert.data(),
                                         Rec.Cert.size(), Rec.GuestStart,
                                         *Translated, &Source, &Bind)
              .ok()) {
        ++R.TracesVerified;
        if (Rec.OptGen > 0)
          ++R.TracesPromotedVerified;
        continue;
      }
      ++R.CertsRejected;
      CertRejected = true;
    }
    analysis::Certificate Fresh;
    const bool WantFresh = Repair && Rec.OptGen > 0;
    auto Check = analysis::validateTranslation(
        Rec.GuestStart, Source, *Translated,
        WantFresh ? &Fresh : nullptr);
    if (!Check.Equivalent) {
      Flag(Check.message());
      continue;
    }
    if (Rec.OptGen > 0 && (CertRejected || Rec.Cert.empty()))
      ++R.CertsReplayedByProver;
    if (WantFresh && (CertRejected || Rec.Cert.empty())) {
      // The prover just vouched for this promoted body against the
      // real source: persist that proof as a fresh certificate.
      Fresh.OptGen = Rec.OptGen;
      Rec.Cert = Fresh.serialize();
      CertsDirty = true;
    } else if (Repair && CertRejected) {
      Rec.Cert.clear();
      CertsDirty = true;
    }
    ++R.TracesVerified;
    if (Rec.OptGen > 0)
      ++R.TracesPromotedVerified;
  }
  return FirstMismatch;
}

/// Checks (and with \p Repair, fixes) one cache file. nullopt when the
/// file vanished between the listing and the open — a concurrent
/// retire/quarantine, not a problem.
std::optional<FileCheckReport> checkFile(DirectoryStore &Store,
                                         const std::string &Dir,
                                         const std::string &Name,
                                         bool Repair,
                                         const DeepContext *Deep) {
  using FileState = FileCheckReport::FileState;
  FileCheckReport R;
  R.Name = Name;
  std::string Path = Dir + "/" + Name;

  // Shared disposition for contents we cannot (or may not) fix in
  // place: I/O failures are never repair material, everything else is
  // quarantined under --repair (with \p Code recorded machine-readably)
  // and merely reported otherwise.
  auto Condemn = [&](const Status &Why, QuarantineReasonCode Code) {
    R.Detail = Why.toString();
    if (Why.code() == ErrorCode::IoError)
      R.State = FileState::Unreadable;
    else if (Repair &&
             Store
                 .quarantineRef(Path,
                                encodeQuarantineReason(Code, R.Detail))
                 .ok())
      R.State = FileState::Quarantined;
    else
      R.State = FileState::Corrupt;
  };

  // Deep semantic sweep, shared by the v1 and v2 clean paths. Decides
  // the final file state: a mismatch makes the file corrupt (or
  // quarantined under Repair — semantically wrong code must leave the
  // candidate set even though every checksum is fine); a rejected
  // certificate the prover overruled makes the file corrupt on a
  // report-only pass and is repaired in place (stripped or
  // regenerated) when \p CanRewrite.
  auto DeepVerdict = [&](CacheFile &File, bool CanRewrite) {
    bool CertsDirty = false;
    std::string Mismatch =
        deepCheckFile(File, *Deep, Repair && CanRewrite, R, CertsDirty);
    if (R.TracesMismatched != 0) {
      R.Detail = Mismatch;
      if (Repair &&
          Store
              .quarantineRef(
                  Path, encodeQuarantineReason(
                            QuarantineReasonCode::SemanticMismatch,
                            Mismatch))
              .ok())
        R.State = FileState::Quarantined;
      else
        R.State = FileState::Corrupt;
      return;
    }
    if (CertsDirty && CanRewrite) {
      if (Status W = writeFileAtomic(Path, File.serialize(),
                                     /*SyncToDisk=*/true);
          !W.ok()) {
        R.State = FileState::Unreadable;
        R.Detail = W.toString();
        return;
      }
      R.State = FileState::Repaired;
      return;
    }
    if (R.CertsRejected != 0) {
      R.State = FileState::Corrupt;
      R.Detail = formatString(
          "%u certificate(s) rejected; bodies re-proved by the full "
          "validator",
          R.CertsRejected);
      return;
    }
    R.State = FileState::Clean;
  };

  if (!fileExists(Path))
    return std::nullopt;

  if (isV2CacheFile(Path)) {
    // Index-deep open validates the header, module table and trace
    // index CRCs; the payload sweep below covers what every runtime
    // path defers to first execution.
    auto View = CacheFileView::openFile(Path, CacheFileView::Depth::Index);
    if (!View) {
      if (View.status().code() == ErrorCode::NotFound)
        return std::nullopt;
      Condemn(View.status(), reasonCodeFor(View.status()));
      return R;
    }
    CacheFile Out;
    Out.EngineHash = View->engineHash();
    Out.ToolHash = View->toolHash();
    Out.SpecBits = View->specBits();
    Out.PositionIndependent = View->positionIndependent();
    // A salvage rewrite must not silently downgrade an XIP (v3) file
    // to a materializing one: consumers mmap its payload in place and
    // the repaired file must stay page-aligned and flagged.
    Out.ExecuteInPlace = View->executeInPlace();
    R.Xip = View->executeInPlace();
    Out.Generation = View->generation();
    Out.WriterTag = View->writerTag();
    Out.Modules = View->modules();
    for (uint32_t I = 0; I < View->numTraces(); ++I) {
      auto Rec = View->record(I); // CRC-checks the code image.
      if (!Rec) {
        ++R.TracesDropped;
        if (R.Detail.empty())
          R.Detail = formatString("trace %u: %s", I,
                                  Rec.status().toString().c_str());
        continue;
      }
      Out.Traces.push_back(Rec.take());
      ++R.TracesKept;
    }
    if (R.TracesDropped == 0) {
      // Structural validation on top of the CRCs: a file whose bytes
      // are all intact can still carry nonsense (out-of-range exits,
      // duplicate starts) if its writer was buggy.
      if (Status V = Out.validate(); !V.ok()) {
        Condemn(V, QuarantineReasonCode::StructuralInvalid);
        return R;
      }
      if (Deep) {
        DeepVerdict(Out, /*CanRewrite=*/true);
        return R;
      }
      // Plain pass: self-contained certificate sweep (rejections are
      // stripped in place under Repair — the trace survives on its
      // intact payload, it just loses its fast-path proof).
      std::string CertReject = certSweepFile(Out, Repair, R);
      if (R.CertsRejected == 0) {
        R.State = FileState::Clean;
        return R;
      }
      R.Detail = CertReject;
      if (!Repair) {
        R.State = FileState::Corrupt;
        return R;
      }
      if (Status W = writeFileAtomic(Path, Out.serialize(),
                                     /*SyncToDisk=*/true);
          !W.ok()) {
        R.State = FileState::Unreadable;
        R.Detail = W.toString();
        return R;
      }
      R.State = FileState::Repaired;
      return R;
    }
    if (!Repair) {
      R.State = FileState::Corrupt;
      return R;
    }
    // Salvage: keep the traces whose payloads survived, clear links
    // into the dropped ones, and re-finalize in place. Identity fields
    // and the generation carry over so the slot's merge discipline is
    // undisturbed.
    std::set<uint32_t> Kept;
    for (const TraceRecord &T : Out.Traces)
      Kept.insert(T.GuestStart);
    for (TraceRecord &T : Out.Traces)
      for (ExitRecord &E : T.Exits)
        if (E.LinkedStart != 0 && !Kept.count(E.LinkedStart))
          E.LinkedStart = 0;
    if (Status V = Out.validate(); !V.ok()) {
      // Damage beyond the payloads: not salvageable.
      Condemn(V, QuarantineReasonCode::StructuralInvalid);
      return R;
    }
    if (Status W =
            writeFileAtomic(Path, Out.serialize(), /*SyncToDisk=*/true);
        !W.ok()) {
      R.State = FileState::Unreadable;
      R.Detail = W.toString();
      return R;
    }
    R.State = FileState::Repaired;
    return R;
  }

  // Legacy v1: one whole-file CRC means corruption cannot be pinned to
  // individual traces, so a bad file is quarantine material outright.
  auto Bytes = readFile(Path);
  if (!Bytes) {
    if (Bytes.status().code() == ErrorCode::NotFound)
      return std::nullopt;
    Condemn(Bytes.status(), reasonCodeFor(Bytes.status()));
    return R;
  }
  auto File = CacheFile::deserialize(*Bytes);
  if (!File) {
    Condemn(File.status(), reasonCodeFor(File.status()));
    return R;
  }
  if (Status V = File->validate(); !V.ok()) {
    Condemn(V, QuarantineReasonCode::StructuralInvalid);
    return R;
  }
  R.TracesKept = static_cast<uint32_t>(File->Traces.size());
  if (Deep) {
    // Legacy v1 files predate certificates (and a rewrite would be a
    // format upgrade), so no in-place certificate repair here.
    DeepVerdict(*File, /*CanRewrite=*/false);
    return R;
  }
  R.State = FileState::Clean;
  return R;
}

} // namespace

const char *
pcc::persist::fileCheckStateName(FileCheckReport::FileState S) {
  switch (S) {
  case FileCheckReport::FileState::Clean:
    return "clean";
  case FileCheckReport::FileState::Corrupt:
    return "corrupt";
  case FileCheckReport::FileState::Unreadable:
    return "unreadable";
  case FileCheckReport::FileState::Repaired:
    return "repaired";
  case FileCheckReport::FileState::Quarantined:
    return "quarantined";
  }
  return "?";
}

ErrorOr<DbCheckReport>
pcc::persist::checkDatabase(const std::string &Dir,
                            const DbCheckOptions &Opts) {
  using FileState = FileCheckReport::FileState;
  DirectoryStore Store(Dir);
  // Observation must not mutate: the store's open paths auto-quarantine
  // corrupt files by default, which is exactly wrong for a plain check.
  // Repair quarantines explicitly, where it can report what it did.
  Store.setAutoQuarantine(false);

  // Repair quiesces every publisher by taking the store lock
  // exclusively (publishers hold it shared for their whole critical
  // section). A plain check takes no locks at all: readers never need
  // them, and a read-only database must stay untouched.
  FileLock StoreLock;
  if (Opts.Repair) {
    auto Lock = FileLock::acquire(Store.storeLockPath());
    if (!Lock)
      return Lock.status();
    StoreLock = Lock.take();
  }

  // --deep needs the guest modules; load them once up front. A module
  // file the operator explicitly named but we cannot read or parse is
  // a whole-pass error, not a per-file one.
  DeepContext Deep;
  if (Opts.Deep) {
    for (const std::string &ModPath : Opts.ModulePaths) {
      auto Bytes = readFile(ModPath);
      if (!Bytes)
        return Status::error(ErrorCode::IoError,
                             "cannot read module file " + ModPath);
      auto Mod = binary::Module::deserialize(*Bytes);
      if (!Mod)
        return Status::error(ErrorCode::InvalidFormat,
                             "cannot parse module file " + ModPath +
                                 ": " + Mod.status().message());
      auto Shared =
          std::make_shared<const binary::Module>(Mod.take());
      Deep.ByPath[Shared->path()] = Shared;
    }
  }

  auto Names = listDirectory(Dir);
  if (!Names)
    return Names.status();

  DbCheckReport Report;
  std::vector<std::string> CacheNames;
  for (const std::string &Name : *Names) {
    if (isAtomicTempName(Name)) {
      // A crashed writer's temporary: invisible to readers, but dead
      // weight until maintenance sweeps it.
      ++Report.TempsFound;
      if (Opts.Repair && removeFile(Dir + "/" + Name).ok())
        ++Report.TempsSwept;
      continue;
    }
    if (isCacheFileName(Name))
      CacheNames.push_back(Name);
  }

  // Files are checked (and under Repair, rewritten/quarantined)
  // independently, so the per-file pass fans across the pool; the
  // per-slot results are aggregated in listing order below, keeping the
  // report byte-identical for any worker count.
  std::vector<std::optional<FileCheckReport>> Checked(CacheNames.size());
  auto CheckOne = [&](size_t I) {
    Checked[I] = checkFile(Store, Dir, CacheNames[I], Opts.Repair,
                           Opts.Deep ? &Deep : nullptr);
  };
  if (Opts.Pool && Opts.Pool->workerCount() > 0)
    Opts.Pool->parallelFor(CacheNames.size(), CheckOne);
  else
    for (size_t I = 0; I < CacheNames.size(); ++I)
      CheckOne(I);

  for (std::optional<FileCheckReport> &R : Checked) {
    if (!R)
      continue; // Vanished mid-scan (concurrent retire).
    ++Report.FilesScanned;
    if (R->Xip)
      ++Report.FilesXip;
    Report.TracesDropped += R->TracesDropped;
    Report.CertsChecked += R->CertsChecked;
    Report.CertsRejected += R->CertsRejected;
    Report.CertsReplayedByProver += R->CertsReplayedByProver;
    Report.TracesVerified += R->TracesVerified;
    Report.TracesMismatched += R->TracesMismatched;
    Report.TracesUnverifiable += R->TracesUnverifiable;
    Report.TracesPromotedVerified += R->TracesPromotedVerified;
    switch (R->State) {
    case FileState::Clean:
      ++Report.FilesClean;
      break;
    case FileState::Corrupt:
      ++Report.FilesCorrupt;
      break;
    case FileState::Unreadable:
      ++Report.FilesUnreadable;
      break;
    case FileState::Repaired:
      ++Report.FilesRepaired;
      break;
    case FileState::Quarantined:
      ++Report.FilesQuarantined;
      break;
    }
    Report.Files.push_back(std::move(*R));
  }

  for (const LockInfo &Info : Store.locks()) {
    ++Report.LocksFound;
    if (Info.Held) {
      ++Report.LocksHeld;
      continue;
    }
    // Stale per-key lock files can be swept here and only here: with
    // the store lock held exclusively no publisher holds (or can
    // acquire) a key lock. The store lock itself is never deleted —
    // we are holding its inode. The sweep re-checks by acquiring each
    // candidate non-blocking first; the one non-publish key-lock user
    // (auto-quarantine's re-validation) also acquires non-blocking and
    // re-checks the file, so the residual inode-split window is
    // harmless.
    std::string Base = Info.Path.substr(Info.Path.rfind('/') + 1);
    if (!Opts.Repair || Base == "store.lock" || Base.empty() ||
        Base[0] != 'k')
      continue;
    auto Guard = FileLock::tryAcquire(Info.Path);
    if (Guard && removeFile(Info.Path).ok())
      ++Report.StaleLocksSwept;
  }

  if (auto Entries = Store.quarantined())
    Report.Quarantine = Entries.take();
  return Report;
}
