//===- persist/Key.cpp ----------------------------------------------------===//

#include "persist/Key.h"

#include "support/Hashing.h"

using namespace pcc;
using namespace pcc::persist;

ModuleKey ModuleKey::compute(const loader::LoadedModule &Mod) {
  ModuleKey Key;
  Key.Path = Mod.Image->path();
  Key.Base = Mod.Base;
  Key.Size = Mod.Size;
  Key.HeaderHash = Mod.Image->programHeaderHash();
  Key.ModTime = Mod.Image->modificationTime();

  uint64_t Hash = fnv1a64(Key.Path);
  Hash = fnv1a64U64(Key.Size, Hash);
  Hash = fnv1a64U64(Key.HeaderHash, Hash);
  Hash = fnv1a64U64(Key.ModTime, Hash);
  Key.PicHash = Hash;
  Key.FullHash = fnv1a64U64(Key.Base, Hash);
  return Key;
}

void ModuleKey::serialize(ByteWriter &Writer) const {
  Writer.writeString(Path);
  Writer.writeU32(Base);
  Writer.writeU32(Size);
  Writer.writeU64(HeaderHash);
  Writer.writeU64(ModTime);
  Writer.writeU64(FullHash);
  Writer.writeU64(PicHash);
}

ModuleKey ModuleKey::deserialize(ByteReader &Reader) {
  ModuleKey Key;
  Key.Path = Reader.readString();
  Key.Base = Reader.readU32();
  Key.Size = Reader.readU32();
  Key.HeaderHash = Reader.readU64();
  Key.ModTime = Reader.readU64();
  Key.FullHash = Reader.readU64();
  Key.PicHash = Reader.readU64();
  return Key;
}

uint64_t pcc::persist::computeLookupKey(const ModuleKey &AppKey,
                                        uint64_t EngineHash,
                                        uint64_t ToolHash) {
  // The application's identity here must not depend on its base address:
  // the lookup happens before any key validation, and executables load
  // at a fixed base anyway.
  return hashCombine(hashCombine(AppKey.PicHash, EngineHash), ToolHash);
}
