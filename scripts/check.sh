#!/bin/sh
# Tier-1 check: configure, build, and run the full test suite — the
# exact gate a change must pass before merging.
#
#   scripts/check.sh                 standard RelWithDebInfo build
#   scripts/check.sh --tsan          ThreadSanitizer build (separate
#                                    build tree; vets the concurrent
#                                    store publish/lock paths)
#   scripts/check.sh --faults        fault-tolerance soak: runs the
#                                    fault_injection_test and
#                                    parallel_pipeline_test binaries
#                                    repeatedly under ASan and then
#                                    TSan (separate build trees)
#   scripts/check.sh --tidy          clang-tidy over src/ with the
#                                    repo .clang-tidy (bugprone-*,
#                                    concurrency-*, performance-*);
#                                    skips gracefully when clang-tidy
#                                    is not installed; the default
#                                    (no-mode) gate also runs this
#                                    after its ctest pass whenever
#                                    clang-tidy is present
#   scripts/check.sh --certs         certificate soak: runs the
#                                    cert_test binary repeatedly under
#                                    ASan and then TSan, grows a
#                                    certified store under an injected
#                                    fault storm (certificate-section
#                                    writes failing and retrying), and
#                                    holds the survivor to the full
#                                    proof contract with pcc-dbcheck
#                                    (plain certificate replay, then
#                                    --deep module-bound re-check)
#   scripts/check.sh --xip           execute-in-place soak: runs the
#                                    xip_test and fault_injection_test
#                                    binaries plus the shared_desktop
#                                    login-storm demo repeatedly under
#                                    ASan and then TSan (the mapped-
#                                    payload lifetime and concurrent
#                                    sharing paths are exactly what
#                                    those sanitizers catch)
#   scripts/check.sh --fleet         fleet smoke: a small pcc-fleetsim
#                                    run under ASan with --verify (the
#                                    tiered run must converge and beat
#                                    the no-L2 baseline), plus the
#                                    tiered-store slice of the test
#                                    suite
#   scripts/check.sh --replay        record/replay soak: runs the
#                                    replay_test binary (fault-storm
#                                    recording over 20 seeds, tiered
#                                    and XIP configs, differential
#                                    legs) under ASan and then TSan,
#                                    plus a pccrun --record/--replay/
#                                    --replay-diff round trip over a
#                                    faulty tiered run; the TSan pass
#                                    records on 4 workers and replays
#                                    with --jobs 0 and --jobs 16 to
#                                    prove worker-count independence
#   scripts/check.sh --opt           optimization-tier soak: runs the
#                                    opt_tier_test binary under ASan
#                                    and then TSan, fault-injects a
#                                    tiered finalize promotion, and
#                                    races gen-0 against promoting
#                                    finalizers on one shared database
#                                    key, deep-checking the survivor
#
# Extra arguments after the mode are forwarded to ctest, e.g.
#   scripts/check.sh --tsan -R CacheStore
# In --faults, --xip, --replay and --opt modes the first extra argument
# is the number of soak iterations per sanitizer (default 5, 2 for
# --xip, --replay and --opt); in --fleet
# mode it is the simulated machine count (default 96) and the rest goes
# to pcc-fleetsim.
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD="$ROOT/build"
EXTRA_CMAKE=""

if [ "${1:-}" = "--faults" ]; then
  shift
  ITERS="${1:-5}"
  [ $# -gt 0 ] && shift
  for SAN in address thread; do
    SOAK="$ROOT/build-$SAN"
    cmake -B "$SOAK" -S "$ROOT" -DPCC_SANITIZE=$SAN
    cmake --build "$SOAK" -j --target fault_injection_test \
      --target parallel_pipeline_test
    I=1
    while [ "$I" -le "$ITERS" ]; do
      echo "== fault soak ($SAN) iteration $I/$ITERS =="
      "$SOAK/tests/fault_injection_test"
      "$SOAK/tests/parallel_pipeline_test"
      I=$((I + 1))
    done
  done
  echo "fault soak passed: $ITERS iteration(s) each under ASan and TSan"
  exit 0
fi

if [ "${1:-}" = "--xip" ]; then
  shift
  ITERS="${1:-2}"
  [ $# -gt 0 ] && shift
  for SAN in address thread; do
    SOAK="$ROOT/build-$SAN"
    cmake -B "$SOAK" -S "$ROOT" -DPCC_SANITIZE=$SAN
    cmake --build "$SOAK" -j --target xip_test \
      --target fault_injection_test --target shared_desktop
    I=1
    while [ "$I" -le "$ITERS" ]; do
      echo "== xip soak ($SAN) iteration $I/$ITERS =="
      "$SOAK/tests/xip_test"
      "$SOAK/tests/fault_injection_test"
      "$SOAK/examples/shared_desktop"
      I=$((I + 1))
    done
  done
  echo "xip soak passed: $ITERS iteration(s) each under ASan and TSan"
  exit 0
fi

if [ "${1:-}" = "--fleet" ]; then
  shift
  MACHINES="${1:-96}"
  [ $# -gt 0 ] && shift
  SOAK="$ROOT/build-address"
  cmake -B "$SOAK" -S "$ROOT" -DPCC_SANITIZE=address
  cmake --build "$SOAK" -j --target pcc-fleetsim --target pcc_tests
  echo "== fleet smoke: $MACHINES machines under ASan =="
  "$SOAK/tools/pcc-fleetsim" --machines "$MACHINES" --rounds 3 --verify "$@"
  "$SOAK/tests/pcc_tests" --gtest_filter='*Tiered*:Backends/*'
  echo "fleet smoke passed: $MACHINES machines, tiered suite clean"
  exit 0
fi

if [ "${1:-}" = "--replay" ]; then
  shift
  ITERS="${1:-2}"
  [ $# -gt 0 ] && shift
  for SAN in address thread; do
    SOAK="$ROOT/build-$SAN"
    cmake -B "$SOAK" -S "$ROOT" -DPCC_SANITIZE=$SAN
    cmake --build "$SOAK" -j --target replay_test --target pccrun \
      --target pcc-asm
    I=1
    while [ "$I" -le "$ITERS" ]; do
      echo "== replay soak ($SAN) iteration $I/$ITERS =="
      "$SOAK/tests/replay_test"
      I=$((I + 1))
    done
    # Tool-level round trip over a faulty tiered store. The TSan pass
    # records on four pipeline workers and then replays the same log
    # synchronously and on sixteen workers: any worker count must
    # reproduce the recording bit for bit.
    REC_JOBS=0
    [ "$SAN" = thread ] && REC_JOBS=4
    TMP=$(mktemp -d)
    "$SOAK/tools/pcc-asm" "$ROOT/examples/asm/fib.s" -o "$TMP/fib.mod"
    for LOG in cold warm; do
      "$SOAK/tools/pccrun" --mode persist --db "$TMP/l1" \
        --l2 "$TMP/l2" --jobs "$REC_JOBS" \
        --fault-plan "enospc:0.1,fsync:0.1,lock:0.25" \
        --record "$TMP/$LOG.pcrr" "$TMP/fib.mod"
    done
    "$SOAK/tools/pccrun" --replay "$TMP/cold.pcrr" --jobs 0
    "$SOAK/tools/pccrun" --replay "$TMP/warm.pcrr" --jobs 0
    "$SOAK/tools/pccrun" --replay "$TMP/warm.pcrr" --jobs 16
    "$SOAK/tools/pccrun" --replay-diff "$TMP/warm.pcrr"
    rm -rf "$TMP"
  done
  echo "replay soak passed: $ITERS iteration(s) each under ASan and TSan"
  exit 0
fi

if [ "${1:-}" = "--opt" ]; then
  shift
  ITERS="${1:-2}"
  [ $# -gt 0 ] && shift
  for SAN in address thread; do
    SOAK="$ROOT/build-$SAN"
    cmake -B "$SOAK" -S "$ROOT" -DPCC_SANITIZE=$SAN
    cmake --build "$SOAK" -j --target opt_tier_test --target pccrun \
      --target pcc-asm --target pcc-dbstat --target pcc-dbcheck
    I=1
    while [ "$I" -le "$ITERS" ]; do
      echo "== opt-tier soak ($SAN) iteration $I/$ITERS =="
      "$SOAK/tests/opt_tier_test"
      I=$((I + 1))
    done
    TMP=$(mktemp -d)
    "$SOAK/tools/pcc-asm" "$ROOT/examples/asm/fib.s" -o "$TMP/fib.mod"
    # Fault-injected finalize promotion over a tiered store: the
    # promotion pass runs behind a publish that keeps failing and
    # retrying; the session must degrade gracefully, never crash.
    for I in 1 2; do
      "$SOAK/tools/pccrun" --mode persist --db "$TMP/l1" \
        --l2 "$TMP/l2" --opt-tier --stats \
        --fault-plan "enospc:0.1,fsync:0.1,lock:0.25" "$TMP/fib.mod"
    done
    # Concurrent finalizers merging different generations: gen-0
    # sessions race promoting sessions on the same database key; the
    # merge must keep the highest proven generation per trace and the
    # offline deep check must re-prove every promoted body.
    PIDS=""
    for J in 1 2 3 4; do
      if [ $((J % 2)) -eq 0 ]; then
        "$SOAK/tools/pccrun" --mode persist --db "$TMP/shared" \
          --opt-tier "$TMP/fib.mod" >/dev/null &
      else
        "$SOAK/tools/pccrun" --mode persist --db "$TMP/shared" \
          "$TMP/fib.mod" >/dev/null &
      fi
      PIDS="$PIDS $!"
    done
    for P in $PIDS; do wait "$P"; done
    "$SOAK/tools/pcc-dbstat" "$TMP/shared" --gens
    "$SOAK/tools/pcc-dbcheck" "$TMP/shared" --deep \
      --module "$TMP/fib.mod"
    rm -rf "$TMP"
  done
  echo "opt-tier soak passed: $ITERS iteration(s) each under ASan and TSan"
  exit 0
fi

if [ "${1:-}" = "--certs" ]; then
  shift
  ITERS="${1:-2}"
  [ $# -gt 0 ] && shift
  for SAN in address thread; do
    SOAK="$ROOT/build-$SAN"
    cmake -B "$SOAK" -S "$ROOT" -DPCC_SANITIZE=$SAN
    cmake --build "$SOAK" -j --target cert_test --target pccrun \
      --target pcc-asm --target pcc-dbcheck --target pcc-dbstat
    I=1
    while [ "$I" -le "$ITERS" ]; do
      echo "== certificate soak ($SAN) iteration $I/$ITERS =="
      "$SOAK/tests/cert_test"
      I=$((I + 1))
    done
    # Fault-injected certificate writes: grow a certified store while
    # publishes keep failing and retrying, then hold whatever survived
    # to the full proof contract — plain dbcheck replays every
    # persisted certificate self-contained, --deep re-binds each one
    # to the real module text (and re-proves anything certificateless).
    TMP=$(mktemp -d)
    "$SOAK/tools/pcc-asm" "$ROOT/examples/asm/fib.s" -o "$TMP/fib.mod"
    for I in 1 2 3; do
      "$SOAK/tools/pccrun" --mode persist --db "$TMP/db" --opt-tier \
        --fault-plan "enospc:0.1,fsync:0.1,lock:0.25" "$TMP/fib.mod"
    done
    "$SOAK/tools/pcc-dbstat" "$TMP/db" --gens
    "$SOAK/tools/pcc-dbcheck" "$TMP/db"
    "$SOAK/tools/pcc-dbcheck" "$TMP/db" --deep --module "$TMP/fib.mod"
    rm -rf "$TMP"
  done
  echo "certificate soak passed: $ITERS iteration(s) each under ASan and TSan"
  exit 0
fi

if [ "${1:-}" = "--tidy" ]; then
  shift
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "check.sh --tidy: clang-tidy not installed; skipping" >&2
    exit 0
  fi
  TIDY_BUILD="$ROOT/build-tidy"
  cmake -B "$TIDY_BUILD" -S "$ROOT" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  # Every translation unit in src/; tests and tools are gated by the
  # normal build + ctest tier instead.
  find "$ROOT/src" -name '*.cpp' -print | sort |
    xargs clang-tidy -p "$TIDY_BUILD" "$@"
  echo "clang-tidy clean"
  exit 0
fi

if [ "${1:-}" = "--tsan" ]; then
  shift
  BUILD="$ROOT/build-tsan"
  EXTRA_CMAKE="-DPCC_SANITIZE=thread"
fi

# shellcheck disable=SC2086  # EXTRA_CMAKE is intentionally word-split.
cmake -B "$BUILD" -S "$ROOT" $EXTRA_CMAKE
cmake --build "$BUILD" -j
(cd "$BUILD" && ctest --output-on-failure -j "$@")

# Static analysis rides the default gate whenever clang-tidy is
# around; machines without it still ran the full build + test tier.
if [ "$BUILD" = "$ROOT/build" ] && command -v clang-tidy >/dev/null 2>&1
then
  exec "$ROOT/scripts/check.sh" --tidy
fi
