#!/bin/sh
# Tier-1 check: configure, build, and run the full test suite — the
# exact gate a change must pass before merging.
#
#   scripts/check.sh                 standard RelWithDebInfo build
#   scripts/check.sh --tsan          ThreadSanitizer build (separate
#                                    build tree; vets the concurrent
#                                    store publish/lock paths)
#
# Extra arguments after the mode are forwarded to ctest, e.g.
#   scripts/check.sh --tsan -R CacheStore
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD="$ROOT/build"
EXTRA_CMAKE=""

if [ "${1:-}" = "--tsan" ]; then
  shift
  BUILD="$ROOT/build-tsan"
  EXTRA_CMAKE="-DPCC_SANITIZE=thread"
fi

# shellcheck disable=SC2086  # EXTRA_CMAKE is intentionally word-split.
cmake -B "$BUILD" -S "$ROOT" $EXTRA_CMAKE
cmake --build "$BUILD" -j
cd "$BUILD"
exec ctest --output-on-failure -j "$@"
