//===- bench/table1_gui_libcode.cpp ---------------------------------------===//
//
// Reproduces Table 1: the percentage of GUI startup code executed from
// shared libraries (Gftp 97%, Gvim 80%, Dia 96%, File-Roller 97%,
// Gqview 95%). Measured as the library share of the static code covered
// by compiled traces during the startup run.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "workloads/Gui.h"

#include <cstdio>

using namespace pcc;
using namespace pcc::bench;
using namespace pcc::workloads;

int main() {
  banner("Table 1: GUI applications - % library code at startup",
         "GUI apps execute 80-97% of their startup code from shared "
         "libraries");

  GuiSuite Suite = buildGuiSuite();
  const std::vector<double> Targets = guiLibCodeFractionTargets();
  TablePrinter Table;
  Table.addRow({"application", "% lib code (paper)",
                "% lib code (measured)", "libraries"});
  for (size_t I = 0; I != Suite.Apps.size(); ++I) {
    const GuiApp &App = Suite.Apps[I];
    auto R = mustOk(
        runUnderEngine(Suite.Registry, App.App, App.StartupInput),
        App.Name.c_str());
    uint64_t Total = intervalBytes(R.Coverage);
    uint64_t Lib = 0;
    for (const loader::LoadedModule &Mod : R.Modules) {
      if (Mod.Image->isExecutable())
        continue;
      AddressIntervals ModRange = {{Mod.Base, Mod.Base + Mod.Size}};
      Lib += intervalIntersectionBytes(R.Coverage, ModRange);
    }
    double Measured =
        Total == 0 ? 0
                   : 100.0 * static_cast<double>(Lib) /
                         static_cast<double>(Total);
    Table.addRow({App.Name, pct(Targets[I] * 100.0), pct(Measured),
                  formatString("%zu", App.Libraries.size())});
  }
  Table.print();
  return 0;
}
