//===- bench/fig2b_gui_startup.cpp ----------------------------------------===//
//
// Reproduces Figure 2(b): GUI startup overhead breakdown under the
// engine. The paper reports startup times 20x-100x slower than native,
// dominated by VM overhead (trace generation) for every application
// except File-Roller, whose replaced signal handlers force expensive
// emulation, making its translated-code time the large share.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "workloads/Gui.h"

#include <cstdio>

using namespace pcc;
using namespace pcc::bench;
using namespace pcc::workloads;

int main() {
  banner("Figure 2(b): GUI startup overhead breakdown",
         "20x-100x slower startup; VM overhead dominates except "
         "File-Roller (emulation-bound)");

  GuiSuite Suite = buildGuiSuite();
  TablePrinter Table;
  Table.addRow({"application", "slowdown", "vm%", "translated+emul%",
                "native Mcycles", "engine Mcycles"});
  for (const GuiApp &App : Suite.Apps) {
    auto Native = mustOk(
        runNative(Suite.Registry, App.App, App.StartupInput),
        App.Name.c_str());
    auto Engine = mustOk(
        runUnderEngine(Suite.Registry, App.App, App.StartupInput),
        App.Name.c_str());
    const dbi::EngineStats &S = Engine.Stats;
    double VmPct = 100.0 * static_cast<double>(S.vmCycles()) /
                   static_cast<double>(S.totalCycles());
    double RunPct =
        100.0 *
        static_cast<double>(S.translatedCycles() + S.EmulationCycles) /
        static_cast<double>(S.totalCycles());
    Table.addRow({App.Name,
                  times(slowdown(Native.Cycles, Engine.Run.Cycles)),
                  pct(VmPct), pct(RunPct), cyclesMega(Native.Cycles),
                  cyclesMega(Engine.Run.Cycles)});
  }
  Table.print();
  std::printf("\nExpected shape: slowdowns between ~20x and ~100x; the "
              "vm%% column dominates for all\napplications except "
              "file-roller, whose signal emulation inflates the "
              "translated+emulation share.\n");
  return 0;
}
