//===- bench/table4_gui_libcoverage.cpp -----------------------------------===//
//
// Reproduces Table 4: library code coverage between GUI applications —
// the share of one application's executed *library* code that another
// application's run also executes (55-84% in the paper). Because the
// same library can load at different bases in different applications,
// coverage is compared in module-relative coordinates.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "workloads/Gui.h"

#include <cstdio>

using namespace pcc;
using namespace pcc::bench;
using namespace pcc::workloads;

int main() {
  banner("Table 4: library code coverage between GUI applications",
         "55-84% of one app's library code appears in another's cache");

  GuiSuite Suite = buildGuiSuite();
  const CoverageMatrix Paper = guiLibCoverageTarget();

  // Library-only, module-relative coverage per application.
  std::vector<std::map<std::string, AddressIntervals>> LibCovers;
  for (const GuiApp &App : Suite.Apps) {
    auto R = mustOk(
        runUnderEngine(Suite.Registry, App.App, App.StartupInput),
        App.Name.c_str());
    std::vector<loader::LoadedModule> Libraries;
    for (const loader::LoadedModule &Mod : R.Modules)
      if (!Mod.Image->isExecutable())
        Libraries.push_back(Mod);
    LibCovers.push_back(moduleRelativeCoverage(R.Coverage, Libraries));
  }

  TablePrinter Table;
  std::vector<std::string> Header = {"coverage of \\ by"};
  for (const GuiApp &App : Suite.Apps)
    Header.push_back(App.Name);
  Table.addRow(Header);
  double MaxErr = 0;
  for (size_t I = 0; I != Suite.Apps.size(); ++I) {
    std::vector<std::string> Row = {Suite.Apps[I].Name};
    for (size_t J = 0; J != Suite.Apps.size(); ++J) {
      double Measured =
          moduleRelativeCodeCoverage(LibCovers[I], LibCovers[J]);
      Row.push_back(formatString("%3.0f%% (%3.0f%%)", Measured * 100,
                                 Paper[I][J] * 100));
      if (I != J)
        MaxErr =
            std::max(MaxErr, std::abs(Measured - Paper[I][J]) * 100);
    }
    Table.addRow(Row);
  }
  Table.print();
  std::printf("\nCells: measured%% (paper%%). Max off-diagonal "
              "deviation: %.1f percentage points.\n",
              MaxErr);
  return 0;
}
