//===- bench/fig7_accumulation.cpp ----------------------------------------===//
//
// Reproduces Figure 7: persistent cache accumulation. For each
// evaluated input, persistent caches of the *other* inputs are
// accumulated in ascending order (Set 1 = first other input, Set 2
// adds the next, ...) and the evaluated input runs against each
// accumulated set, bracketed by base (no persistence) and same-input
// persistence.
//
// Paper observations: for gcc, accumulated caches nearly match
// same-input persistence after two accumulations; for Oracle,
// accumulation keeps improving through Set 3 (which adds the Open
// phase's large footprint) and lands within 22% of same-input.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "workloads/Oracle.h"
#include "workloads/Spec2k.h"

#include <cstdio>

using namespace pcc;
using namespace pcc::bench;
using namespace pcc::workloads;
using persist::CacheDatabase;
using persist::PersistOptions;

namespace {

void accumulationGrid(const std::string &Title,
                      const loader::ModuleRegistry &Registry,
                      std::shared_ptr<const binary::Module> App,
                      const std::vector<std::vector<uint8_t>> &Inputs,
                      const std::vector<std::string> &Names,
                      const std::string &ScratchPath) {
  CacheDatabase Db(ScratchPath);
  const size_t NumSets = Inputs.size() - 1;

  TablePrinter Table(Title);
  std::vector<std::string> Header = {"input", "no persist"};
  for (size_t K = 1; K <= NumSets; ++K)
    Header.push_back("Set " + std::to_string(K));
  Header.push_back("same-input");
  Table.addRow(Header);

  for (size_t I = 0; I != Inputs.size(); ++I) {
    auto Base =
        mustOk(runUnderEngine(Registry, App, Inputs[I]), "baseline");
    std::vector<std::string> Row = {Names[I],
                                    cyclesMega(Base.Run.Cycles)};

    // Accumulate the other inputs' caches in ascending order into one
    // growing cache file, evaluating after each addition.
    std::string Accumulated =
        ScratchPath + "/accum-" + std::to_string(I) + ".pcc";
    bool First = true;
    for (size_t J = 0; J != Inputs.size(); ++J) {
      if (J == I)
        continue;
      PersistOptions Grow;
      if (!First)
        Grow.ExplicitCachePath = Accumulated;
      Grow.StoreAsPath = Accumulated;
      (void)mustOk(runPersistent(Registry, App, Inputs[J], Db, Grow),
                   "accumulation run");
      First = false;

      PersistOptions Eval;
      Eval.ExplicitCachePath = Accumulated;
      Eval.WriteBack = false;
      auto R = mustOk(runPersistent(Registry, App, Inputs[I], Db, Eval),
                      "accumulated-set run");
      Row.push_back(cyclesMega(R.Run.Cycles));
    }

    // Same-input persistence bracket.
    PersistOptions Own;
    Own.StoreAsPath =
        ScratchPath + "/own-" + std::to_string(I) + ".pcc";
    (void)mustOk(runPersistent(Registry, App, Inputs[I], Db, Own),
                 "own-cache generation");
    PersistOptions UseOwn;
    UseOwn.ExplicitCachePath = Own.StoreAsPath;
    UseOwn.WriteBack = false;
    auto Same = mustOk(
        runPersistent(Registry, App, Inputs[I], Db, UseOwn),
        "same-input run");
    Row.push_back(cyclesMega(Same.Run.Cycles));
    Table.addRow(Row);
  }
  Table.print();
  std::printf("Cells are Mcycles; Set k accumulates the first k other "
              "inputs' caches (ascending, skipping the evaluated "
              "input).\n\n");
}

} // namespace

int main() {
  banner("Figure 7: time savings under persistent cache accumulation",
         "accumulated caches approach same-input persistence; Oracle "
         "gains through Set 3");
  ScratchDir Scratch("pcc-fig7");

  SpecSuite Suite = buildSpecSuite();
  for (const SpecBenchmark &Bench : Suite.Benchmarks) {
    if (Bench.Profile.Name != "176.gcc")
      continue;
    std::vector<std::string> Names;
    for (size_t I = 0; I != Bench.RefInputs.size(); ++I)
      Names.push_back("Input " + std::to_string(I + 1));
    accumulationGrid("Figure 7(a): 176.gcc", Suite.Registry, Bench.App,
                     Bench.RefInputs, Names, Scratch.path() + "/gcc");
  }

  OracleSetup Oracle = buildOracleSetup();
  std::vector<std::string> Names;
  for (unsigned Phase = 0; Phase != OraclePhases; ++Phase)
    Names.push_back(oraclePhaseName(Phase));
  accumulationGrid("Figure 7(b): Oracle", Oracle.Registry, Oracle.App,
                   Oracle.PhaseInputs, Names,
                   Scratch.path() + "/oracle");
  return 0;
}
