//===- bench/table3_coverage.cpp ------------------------------------------===//
//
// Reproduces Table 3: code-coverage matrices for (a) 176.gcc across its
// five Reference inputs (84-98%) and (b) Oracle across its five phases
// (18-91%). Each cell prints measured% (paper%).
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "workloads/Oracle.h"
#include "workloads/Spec2k.h"

#include <cstdio>

using namespace pcc;
using namespace pcc::bench;
using namespace pcc::workloads;

namespace {

void printMatrix(const std::string &Title,
                 const std::vector<std::string> &Names,
                 const std::vector<AddressIntervals> &Covers,
                 const CoverageMatrix &Paper) {
  TablePrinter Table(Title);
  std::vector<std::string> Header = {"coverage of \\ by"};
  for (const std::string &Name : Names)
    Header.push_back(Name);
  Table.addRow(Header);
  double MaxErr = 0;
  for (size_t I = 0; I != Covers.size(); ++I) {
    std::vector<std::string> Row = {Names[I]};
    for (size_t J = 0; J != Covers.size(); ++J) {
      double Measured = codeCoverage(Covers[I], Covers[J]);
      Row.push_back(formatString("%3.0f%% (%3.0f%%)", Measured * 100,
                                 Paper[I][J] * 100));
      if (I != J)
        MaxErr = std::max(MaxErr,
                          std::abs(Measured - Paper[I][J]) * 100);
    }
    Table.addRow(Row);
  }
  Table.print();
  std::printf("Max off-diagonal deviation from the paper: %.1f "
              "percentage points.\n\n",
              MaxErr);
}

} // namespace

int main() {
  banner("Table 3: code coverage matrices (measured vs paper)",
         "gcc inputs cover each other 84-98%; Oracle phases 18-91%");

  // (a) 176.gcc.
  SpecSuite Suite = buildSpecSuite();
  for (const SpecBenchmark &Bench : Suite.Benchmarks) {
    if (Bench.Profile.Name != "176.gcc")
      continue;
    std::vector<AddressIntervals> Covers;
    std::vector<std::string> Names;
    for (size_t I = 0; I != Bench.RefInputs.size(); ++I) {
      Covers.push_back(mustOk(runUnderEngine(Suite.Registry, Bench.App,
                                             Bench.RefInputs[I]),
                              "gcc input")
                           .Coverage);
      Names.push_back("Input " + std::to_string(I + 1));
    }
    printMatrix("Table 3(a): 176.gcc", Names, Covers,
                gccCoverageTarget());
  }

  // (b) Oracle.
  OracleSetup Oracle = buildOracleSetup();
  std::vector<AddressIntervals> Covers;
  std::vector<std::string> Names;
  for (unsigned Phase = 0; Phase != OraclePhases; ++Phase) {
    Covers.push_back(mustOk(runUnderEngine(Oracle.Registry, Oracle.App,
                                           Oracle.PhaseInputs[Phase]),
                            "oracle phase")
                         .Coverage);
    Names.push_back(oraclePhaseName(Phase));
  }
  printMatrix("Table 3(b): Oracle", Names, Covers,
              oracleCoverageTarget());
  return 0;
}
