//===- bench/ablate_pools.cpp ---------------------------------------------===//
//
// Ablation of the separate code/data persistent memory pools
// (Section 3.2.2): "Persistent memory pools for data structures and
// traces are maintained separately for performance reasons; intermixing
// code and data structures results in poor performance ... increased
// cache misses/conflicts, page faults, and translation lookaside buffer
// misses." The engine models intermixing as a locality penalty on
// translated-code execution; this bench quantifies the cost across the
// workload classes.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "workloads/Gui.h"
#include "workloads/Spec2k.h"

#include <cstdio>

using namespace pcc;
using namespace pcc::bench;
using namespace pcc::workloads;

int main() {
  banner("Ablation: separate vs intermixed code/data pools",
         "Section 3.2.2 - intermixing code and data structures "
         "degrades translated-code locality");

  TablePrinter Table;
  Table.addRow({"workload", "separate Mcycles", "intermixed Mcycles",
                "slowdown"});

  auto measure = [&](const std::string &Name,
                     const loader::ModuleRegistry &Registry,
                     std::shared_ptr<const binary::Module> App,
                     const std::vector<uint8_t> &Input) {
    dbi::EngineOptions Separate;
    auto A = mustOk(runUnderEngine(Registry, App, Input, nullptr,
                                   Separate),
                    Name.c_str());
    dbi::EngineOptions Intermixed;
    Intermixed.IntermixPools = true;
    auto B = mustOk(runUnderEngine(Registry, App, Input, nullptr,
                                   Intermixed),
                    Name.c_str());
    Table.addRow({Name, cyclesMega(A.Run.Cycles),
                  cyclesMega(B.Run.Cycles),
                  times(slowdown(A.Run.Cycles, B.Run.Cycles))});
  };

  SpecSuite Suite = buildSpecSuite();
  for (const SpecBenchmark &Bench : Suite.Benchmarks)
    if (Bench.Profile.Name == "176.gcc" ||
        Bench.Profile.Name == "164.gzip")
      measure(Bench.Profile.Name, Suite.Registry, Bench.App,
              Bench.RefInputs[0]);
  GuiSuite Gui = buildGuiSuite();
  measure(Gui.Apps[0].Name, Gui.Registry, Gui.Apps[0].App,
          Gui.Apps[0].StartupInput);
  Table.print();
  std::printf("\nExecution-bound workloads (gzip) pay the most; "
              "translation-bound ones (gcc, GUI startup) less, since "
              "the penalty applies only to translated-code time.\n");
  return 0;
}
