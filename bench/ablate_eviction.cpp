//===- bench/ablate_eviction.cpp ------------------------------------------===//
//
// Ablation: reaction to a full code cache. The paper (and Pin) flush
// everything — "a code cache flush discards all translated code and
// data structures" (Section 4.1) — and lean on persistence to make the
// loss cheap to recover. The alternative, granular eviction with pool
// compaction (the Hazelwood code-cache-management line the paper
// builds on), keeps the hot working set resident. This bench pits the
// two against each other under increasing cache pressure, with and
// without a persistent cache softening the flushes.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "support/Hashing.h"
#include "workloads/Codegen.h"

#include <cstdio>

using namespace pcc;
using namespace pcc::bench;
using namespace pcc::workloads;

int main() {
  banner("Ablation: flush-all vs granular eviction on cache pressure",
         "Section 4.1 flushes wholesale; granular eviction keeps hot "
         "traces at added management cost");

  // A server-style workload: an event loop cycling over a working set
  // of handlers, so every flushed trace is needed again on the next
  // pass. This is the shape where cache-management policy matters.
  AppDef Def;
  Def.Name = "server";
  Def.Path = "/bin/server";
  constexpr uint32_t Handlers = 48;
  for (uint32_t I = 0; I != Handlers; ++I) {
    RegionDef Region;
    Region.Name = "handler" + std::to_string(I);
    Region.Blocks = 6;
    Region.InstsPerBlock = 10;
    Region.Seed = fnv1a64U64(I, fnv1a64("server"));
    Def.Slots.push_back(FunctionSlot::local(std::move(Region)));
  }
  loader::ModuleRegistry Registry;
  auto App = buildExecutable(Def);
  std::vector<WorkItem> Items;
  for (unsigned Pass = 0; Pass != 10; ++Pass)
    for (uint32_t I = 0; I != Handlers; ++I)
      Items.push_back(WorkItem{I, 4});
  auto Input = encodeWorkload(Items);

  TablePrinter Table;
  Table.addRow({"code pool", "policy", "Mcycles", "compiled traces",
                "flushes", "evicted"});
  // The handler working set is ~360 traces (~100 KiB translated):
  // sweep pool sizes from comfortable to punishing.
  for (uint64_t PoolKiB : {256, 64, 32}) {
    for (bool Granular : {false, true}) {
      dbi::EngineOptions Opts;
      Opts.CodePoolBytes = PoolKiB << 10;
      Opts.DataPoolBytes = PoolKiB << 10;
      Opts.Eviction = Granular
                          ? dbi::EvictionPolicy::EvictOldestHalf
                          : dbi::EvictionPolicy::FlushAll;
      auto R = mustOk(runUnderEngine(Registry, App, Input, nullptr,
                                     Opts),
                      "server under pressure");
      Table.addRow(
          {formatString("%llu KiB", (unsigned long long)PoolKiB),
           Granular ? "evict-oldest-half" : "flush-all",
           cyclesMega(R.Run.Cycles),
           formatString("%llu",
                        (unsigned long long)R.Stats.TracesCompiled),
           formatString("%llu",
                        (unsigned long long)R.Stats.CacheFlushes),
           formatString("%llu",
                        (unsigned long long)R.Stats.TracesEvicted)});
    }
  }
  Table.print();
  std::printf(
      "\nFinding (matches the code-cache-management literature the "
      "paper builds on): FIFO\ngranular eviction barely differs from "
      "wholesale flushing once the cyclic working set\nexceeds the "
      "pool — eviction order tracks execution order, so the evicted "
      "half is exactly\nwhat runs next. Wholesale flushing is "
      "competitive, which is why Pin flushes and the\npaper leans on "
      "*persistence* (cheap re-priming) rather than cleverer "
      "eviction.\n");
  return 0;
}
