//===- bench/fig5a_same_input.cpp -----------------------------------------===//
//
// Reproduces Figure 5(a): performance improvement from same-input
// persistence, relative to running the base engine without persistence.
//
// Paper results this bench mirrors:
//   * SPEC2K Train inputs benefit more than Reference (6x shorter runs;
//     197.parser and 254.gap save ~50% under Train, little under Ref).
//   * Only 176.gcc (>30%) and 253.perlbmk (~10%) gain much on Ref.
//   * GUI startup improves by ~90% on average.
//   * Oracle's regression unit test improves ~63% without
//     instrumentation and ~4x with memory-reference instrumentation
//     (Section 4.2: 80 s native, ~1300 s under Pin, ~490 s persistent;
//     ~4000 s instrumented, ~1000 s persistent).
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "workloads/Gui.h"
#include "workloads/Oracle.h"
#include "workloads/Spec2k.h"

#include <cstdio>

using namespace pcc;
using namespace pcc::bench;
using namespace pcc::workloads;
using persist::CacheDatabase;
using persist::PersistOptions;

namespace {

/// Runs (app, input) once cold to create the cache, then once warm, and
/// returns (baseline engine cycles, warm persistent cycles).
struct SameInputResult {
  uint64_t BaseCycles = 0;
  uint64_t WarmCycles = 0;
  uint64_t WarmCompiles = 0;
};

SameInputResult measureSameInput(const loader::ModuleRegistry &Registry,
                                 std::shared_ptr<const binary::Module> App,
                                 const std::vector<uint8_t> &Input,
                                 const std::string &DbDir,
                                 dbi::Tool *ColdTool = nullptr,
                                 dbi::Tool *WarmTool = nullptr) {
  SameInputResult Result;
  auto Base = mustOk(runUnderEngine(Registry, App, Input, ColdTool),
                     "base run");
  Result.BaseCycles = Base.Run.Cycles;

  CacheDatabase Db(DbDir);
  (void)mustOk(runPersistent(Registry, App, Input, Db, PersistOptions(),
                             ColdTool),
               "cache generation run");
  auto Warm = mustOk(runPersistent(Registry, App, Input, Db,
                                   PersistOptions(), WarmTool),
                     "warm persistent run");
  Result.WarmCycles = Warm.Run.Cycles;
  Result.WarmCompiles = Warm.Stats.TracesCompiled;
  return Result;
}

} // namespace

int main() {
  banner("Figure 5(a): same-input persistence improvement",
         "GUI ~90%, Oracle ~63% (4x instrumented), gcc >30%, "
         "perlbmk ~10%, Train > Ref");
  ScratchDir Scratch("pcc-fig5a");

  // --- SPEC2K INT: Train and Reference inputs ---
  TablePrinter Spec("SPEC2K INT");
  Spec.addRow({"benchmark", "ref improv", "train improv", "bb instr",
               "ref vm%", "warm compiles"});
  SpecSuite Suite = buildSpecSuite();
  double SpecSum = 0;
  double TrainSum = 0;
  double InstrSum = 0;
  for (size_t I = 0; I != Suite.Benchmarks.size(); ++I) {
    const SpecBenchmark &Bench = Suite.Benchmarks[I];
    std::string RefDb =
        Scratch.path() + "/spec-ref-" + std::to_string(I);
    std::string TrainDb =
        Scratch.path() + "/spec-train-" + std::to_string(I);
    auto Ref = measureSameInput(Suite.Registry, Bench.App,
                                Bench.RefInputs[0], RefDb);
    auto Train = measureSameInput(Suite.Registry, Bench.App,
                                  Bench.TrainInput, TrainDb);
    // Same-input persistence under basic-block instrumentation.
    dbi::BasicBlockCounterTool ColdBb, GenBb, WarmBb;
    std::string InstrDb =
        Scratch.path() + "/spec-instr-" + std::to_string(I);
    auto Instr = [&] {
      auto Base = mustOk(runUnderEngine(Suite.Registry, Bench.App,
                                        Bench.RefInputs[0], &ColdBb),
                         "instr base");
      CacheDatabase Db(InstrDb);
      (void)mustOk(runPersistent(Suite.Registry, Bench.App,
                                 Bench.RefInputs[0], Db,
                                 PersistOptions(), &GenBb),
                   "instr gen");
      auto Warm = mustOk(runPersistent(Suite.Registry, Bench.App,
                                       Bench.RefInputs[0], Db,
                                       PersistOptions(), &WarmBb),
                         "instr warm");
      return improvementPct(Base.Run.Cycles, Warm.Run.Cycles);
    }();
    auto BaseRun = mustOk(
        runUnderEngine(Suite.Registry, Bench.App, Bench.RefInputs[0]),
        "vm share");
    double VmPct =
        100.0 * static_cast<double>(BaseRun.Stats.vmCycles()) /
        static_cast<double>(BaseRun.Stats.totalCycles());
    double RefImp = improvementPct(Ref.BaseCycles, Ref.WarmCycles);
    double TrainImp =
        improvementPct(Train.BaseCycles, Train.WarmCycles);
    SpecSum += RefImp;
    TrainSum += TrainImp;
    InstrSum += Instr;
    Spec.addRow({Bench.Profile.Name, pct(RefImp), pct(TrainImp),
                 pct(Instr), pct(VmPct),
                 formatString("%llu",
                              (unsigned long long)Ref.WarmCompiles)});
  }
  double N = static_cast<double>(Suite.Benchmarks.size());
  Spec.addRow({"average", pct(SpecSum / N), pct(TrainSum / N),
               pct(InstrSum / N)});
  Spec.print();
  std::printf("Paper: suite average of 26%% under dynamic binary "
              "instrumentation (our ref+train+instr averages above "
              "bracket it).\n");

  // --- GUI startup ---
  TablePrinter Gui("GUI application startup");
  Gui.addRow({"application", "improvement", "base Mcycles",
              "warm Mcycles"});
  GuiSuite GuiApps = buildGuiSuite();
  double GuiSum = 0;
  for (size_t I = 0; I != GuiApps.Apps.size(); ++I) {
    const GuiApp &App = GuiApps.Apps[I];
    std::string Db = Scratch.path() + "/gui-" + std::to_string(I);
    auto R = measureSameInput(GuiApps.Registry, App.App,
                              App.StartupInput, Db);
    double Imp = improvementPct(R.BaseCycles, R.WarmCycles);
    GuiSum += Imp;
    Gui.addRow({App.Name, pct(Imp), cyclesMega(R.BaseCycles),
                cyclesMega(R.WarmCycles)});
  }
  Gui.addRow({"average", pct(GuiSum / GuiApps.Apps.size())});
  Gui.print();
  std::printf("Paper: GUI average improvement is nearly 90%%.\n");

  // --- Oracle regression unit test (all phases in sequence) ---
  TablePrinter Ora("Oracle regression unit test");
  Ora.addRow({"configuration", "base Mcycles", "warm Mcycles",
              "improvement"});
  OracleSetup Oracle = buildOracleSetup();

  auto runUnitTest = [&](const CacheDatabase *Db, dbi::Tool *Tool) {
    uint64_t Cycles = 0;
    for (unsigned Phase = 0; Phase != OraclePhases; ++Phase) {
      if (Db) {
        auto R = mustOk(runPersistent(Oracle.Registry, Oracle.App,
                                      Oracle.PhaseInputs[Phase], *Db,
                                      PersistOptions(), Tool),
                        "oracle phase");
        Cycles += R.Run.Cycles;
      } else {
        auto R = mustOk(runUnderEngine(Oracle.Registry, Oracle.App,
                                       Oracle.PhaseInputs[Phase], Tool),
                        "oracle phase");
        Cycles += R.Run.Cycles;
      }
    }
    return Cycles;
  };

  {
    uint64_t Base = runUnitTest(nullptr, nullptr);
    CacheDatabase Db(Scratch.path() + "/oracle");
    runUnitTest(&Db, nullptr); // Generation pass.
    uint64_t Warm = runUnitTest(&Db, nullptr);
    Ora.addRow({"translation only", cyclesMega(Base), cyclesMega(Warm),
                pct(improvementPct(Base, Warm))});
  }
  {
    dbi::MemRefTraceTool ColdTool;
    uint64_t Base = 0;
    for (unsigned Phase = 0; Phase != OraclePhases; ++Phase)
      Base += mustOk(runUnderEngine(Oracle.Registry, Oracle.App,
                                    Oracle.PhaseInputs[Phase], &ColdTool),
                     "oracle instr")
                  .Run.Cycles;
    CacheDatabase Db(Scratch.path() + "/oracle-instr");
    dbi::MemRefTraceTool GenTool;
    for (unsigned Phase = 0; Phase != OraclePhases; ++Phase)
      (void)mustOk(runPersistent(Oracle.Registry, Oracle.App,
                                 Oracle.PhaseInputs[Phase], Db,
                                 PersistOptions(), &GenTool),
                   "oracle instr gen");
    dbi::MemRefTraceTool WarmTool;
    uint64_t Warm = 0;
    for (unsigned Phase = 0; Phase != OraclePhases; ++Phase)
      Warm += mustOk(runPersistent(Oracle.Registry, Oracle.App,
                                   Oracle.PhaseInputs[Phase], Db,
                                   PersistOptions(), &WarmTool),
                     "oracle instr warm")
                  .Run.Cycles;
    Ora.addRow({"memtrace instrumentation", cyclesMega(Base),
                cyclesMega(Warm),
                formatString("%.1fx speedup", slowdown(Warm, Base))});
  }
  Ora.print();
  std::printf("Paper: ~63%% improvement translating Oracle; ~4x speedup "
              "with memory instrumentation.\n");
  return 0;
}
