//===- bench/fig8_interapp.cpp --------------------------------------------===//
//
// Reproduces Figure 8: time savings under inter-application
// persistence. For every GUI application: startup time without
// persistence, with same-input persistence, with its own *library-only*
// cache (application traces stripped — the paper's "Persistent Library
// Cache <self>" bars, which come within a second or two of same-input
// persistence), and primed with every other application's cache.
//
// Paper observations: inter-application improvements average ~59%,
// below the ~70% library code coverage, because identical libraries
// loaded at different addresses cannot be reused and fall back to
// retranslation.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "workloads/Gui.h"

#include <cstdio>

using namespace pcc;
using namespace pcc::bench;
using namespace pcc::workloads;
using persist::CacheDatabase;
using persist::CacheFile;
using persist::PersistOptions;

int main() {
  banner("Figure 8: time savings under inter-application persistence",
         "average ~59% improvement; library-only self caches near "
         "same-input persistence");
  ScratchDir Scratch("pcc-fig8");
  GuiSuite Suite = buildGuiSuite();
  CacheDatabase Db(Scratch.path());

  // Donor caches for every application.
  std::vector<std::string> DonorPaths;
  for (size_t J = 0; J != Suite.Apps.size(); ++J) {
    PersistOptions Store;
    Store.StoreAsPath =
        Scratch.path() + "/donor-" + std::to_string(J) + ".pcc";
    (void)mustOk(runPersistent(Suite.Registry, Suite.Apps[J].App,
                               Suite.Apps[J].StartupInput, Db, Store),
                 "donor generation");
    DonorPaths.push_back(Store.StoreAsPath);
  }

  // Library-only variants: strip the application-module traces.
  std::vector<std::string> LibOnlyPaths;
  for (size_t J = 0; J != Suite.Apps.size(); ++J) {
    auto File = mustOk(Db.loadPath(DonorPaths[J]), "donor load");
    CacheFile Stripped = File;
    Stripped.Traces.clear();
    for (const persist::TraceRecord &Trace : File.Traces)
      if (Trace.ModuleIndex != 0) // Index 0 is the application.
        Stripped.Traces.push_back(Trace);
    std::string Path =
        Scratch.path() + "/libonly-" + std::to_string(J) + ".pcc";
    if (!writeFileAtomic(Path, Stripped.serialize()).ok()) {
      std::fprintf(stderr, "fatal: cannot write %s\n", Path.c_str());
      return 1;
    }
    LibOnlyPaths.push_back(Path);
  }

  TablePrinter Table;
  std::vector<std::string> Header = {"app", "no persist", "same-input",
                                     "lib-only self"};
  for (const GuiApp &App : Suite.Apps)
    Header.push_back("cache " + App.Name);
  Table.addRow(Header);

  double InterAppSum = 0;
  unsigned InterAppCount = 0;
  for (size_t I = 0; I != Suite.Apps.size(); ++I) {
    const GuiApp &App = Suite.Apps[I];
    auto Base = mustOk(
        runUnderEngine(Suite.Registry, App.App, App.StartupInput),
        "baseline");
    std::vector<std::string> Row = {App.Name,
                                    cyclesMega(Base.Run.Cycles)};

    auto evalWith = [&](const std::string &Path) {
      PersistOptions Use;
      Use.ExplicitCachePath = Path;
      Use.WriteBack = false;
      auto R = mustOk(runPersistent(Suite.Registry, App.App,
                                    App.StartupInput, Db, Use),
                      "inter-app run");
      return R.Run.Cycles;
    };

    Row.push_back(cyclesMega(evalWith(DonorPaths[I])));
    Row.push_back(cyclesMega(evalWith(LibOnlyPaths[I])));
    for (size_t J = 0; J != Suite.Apps.size(); ++J) {
      uint64_t Cycles = evalWith(DonorPaths[J]);
      Row.push_back(cyclesMega(Cycles));
      if (J != I) {
        InterAppSum += improvementPct(Base.Run.Cycles, Cycles);
        ++InterAppCount;
      }
    }
    Table.addRow(Row);
  }
  Table.print();
  std::printf("\nCells are Mcycles. Average inter-application "
              "improvement: %s (paper: ~59%%).\n",
              pct(InterAppSum / InterAppCount).c_str());
  return 0;
}
