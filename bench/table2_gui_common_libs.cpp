//===- bench/table2_gui_common_libs.cpp -----------------------------------===//
//
// Reproduces Table 2: the number of shared libraries common to each
// pair of GUI applications. The paper finds that on average at least a
// third of the libraries used by one GUI application are also used by
// the others — the raw material of inter-application persistence.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "workloads/Gui.h"

#include <algorithm>
#include <cstdio>

using namespace pcc;
using namespace pcc::bench;
using namespace pcc::workloads;

int main() {
  banner("Table 2: number of common libraries between GUI applications",
         "at least a third of each app's libraries are shared with "
         "the others");

  GuiSuite Suite = buildGuiSuite();
  TablePrinter Table;
  std::vector<std::string> Header = {"(common libs)"};
  for (const GuiApp &App : Suite.Apps)
    Header.push_back(App.Name);
  Table.addRow(Header);

  double MinSharedFraction = 1.0;
  for (const GuiApp &RowApp : Suite.Apps) {
    std::vector<std::string> Row = {RowApp.Name};
    for (const GuiApp &ColApp : Suite.Apps) {
      std::vector<std::string> A = RowApp.Libraries;
      std::vector<std::string> B = ColApp.Libraries;
      std::sort(A.begin(), A.end());
      std::sort(B.begin(), B.end());
      std::vector<std::string> Common;
      std::set_intersection(A.begin(), A.end(), B.begin(), B.end(),
                            std::back_inserter(Common));
      Row.push_back(formatString("%zu", Common.size()));
      if (&RowApp != &ColApp && !A.empty())
        MinSharedFraction = std::min(
            MinSharedFraction,
            static_cast<double>(Common.size()) /
                static_cast<double>(A.size()));
    }
    Table.addRow(Row);
  }
  Table.print();
  std::printf("\nDiagonal = total libraries linked by the application. "
              "Minimum pairwise shared fraction: %s (paper: at least "
              "a third).\n",
              pct(MinSharedFraction * 100.0).c_str());
  return 0;
}
