//===- bench/fig2a_spec_timeline.cpp --------------------------------------===//
//
// Reproduces Figure 2(a): SPEC2K INT behaviour under the engine with
// Reference inputs. The paper plots VM translation requests (vertical
// lines) over each program's run; translation clusters at startup for
// every benchmark except 176.gcc, which keeps discovering new code —
// over 60% of its run is spent generating code that is not reused
// enough to amortize VM overhead.
//
// Here each benchmark prints an ASCII timeline (one column per 1/60th of
// the executed instructions; darker = more translation requests) plus
// the VM-overhead share of total cycles.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "workloads/Spec2k.h"

#include <cstdio>

using namespace pcc;
using namespace pcc::bench;
using namespace pcc::workloads;

static std::string renderTimeline(const dbi::EngineStats &Stats,
                                  unsigned Columns) {
  std::vector<uint32_t> Buckets(Columns, 0);
  uint64_t Total = Stats.GuestInstsExecuted;
  if (Total == 0)
    return std::string(Columns, ' ');
  for (const dbi::CompileEvent &Event : Stats.Timeline) {
    auto Bucket = static_cast<size_t>(
        Event.GuestInstsExecuted * Columns / (Total + 1));
    ++Buckets[std::min<size_t>(Bucket, Columns - 1)];
  }
  std::string Line;
  for (uint32_t Count : Buckets) {
    if (Count == 0)
      Line += ' ';
    else if (Count <= 2)
      Line += '.';
    else if (Count <= 8)
      Line += ':';
    else if (Count <= 32)
      Line += '|';
    else
      Line += '#';
  }
  return Line;
}

int main() {
  banner("Figure 2(a): SPEC2K INT behavior under the engine (ref inputs)",
         "translation requests cluster at startup; 176.gcc keeps "
         "translating all run long");

  SpecSuite Suite = buildSpecSuite();
  TablePrinter Table;
  Table.addRow({"benchmark", "timeline (translation requests over run)",
                "vm%", "traces", "late%"});
  for (const SpecBenchmark &Bench : Suite.Benchmarks) {
    auto R = mustOk(runUnderEngine(Suite.Registry, Bench.App,
                                   Bench.RefInputs[0]),
                    Bench.Profile.Name.c_str());
    const dbi::EngineStats &S = R.Stats;
    // Fraction of translation requests after the first 10% of the run.
    uint64_t Late = 0;
    for (const dbi::CompileEvent &Event : S.Timeline)
      if (Event.GuestInstsExecuted * 10 > S.GuestInstsExecuted)
        ++Late;
    double LatePct = S.Timeline.empty()
                         ? 0
                         : 100.0 * static_cast<double>(Late) /
                               static_cast<double>(S.Timeline.size());
    double VmPct = 100.0 * static_cast<double>(S.vmCycles()) /
                   static_cast<double>(S.totalCycles());
    Table.addRow({Bench.Profile.Name,
                  "[" + renderTimeline(S, 56) + "]", pct(VmPct),
                  formatString("%llu",
                               (unsigned long long)S.TracesCompiled),
                  pct(LatePct)});
  }
  Table.print();
  std::printf("\nExpected shape: all benchmarks translate mostly in the "
              "first decile (late%% near 0),\nexcept 176.gcc whose "
              "translation requests continue throughout and whose VM "
              "share is the largest.\n");
  return 0;
}
