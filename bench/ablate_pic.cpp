//===- bench/ablate_pic.cpp -----------------------------------------------===//
//
// Ablation of position-independent translations — the paper's noted
// extension ("the run-time compiler can be adapted to generate position
// independent translations capable of coping with library relocation",
// Section 3.2.3). With libraries loading at randomized bases across
// runs (ASLR, the paper cites PaX), absolute translations lose all
// library reuse while PIC translations keep it.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "workloads/Gui.h"

#include <cstdio>

using namespace pcc;
using namespace pcc::bench;
using namespace pcc::workloads;
using persist::CacheDatabase;
using persist::PersistOptions;

int main() {
  banner("Ablation: absolute vs position-independent translations "
         "under ASLR",
         "Section 3.2.3 - relocated libraries invalidate absolute "
         "translations; PIC keeps them");

  GuiSuite Suite = buildGuiSuite();
  ScratchDir Scratch("pcc-ablate-pic");

  TablePrinter Table;
  Table.addRow({"app", "mode", "warm Mcycles", "retranslated traces",
                "modules invalidated", "improvement"});
  for (size_t I = 0; I != 2; ++I) { // Two apps suffice for the shape.
    const GuiApp &App = Suite.Apps[I];
    auto Base = mustOk(
        runUnderEngine(Suite.Registry, App.App, App.StartupInput,
                       nullptr, dbi::EngineOptions(),
                       loader::BasePolicy::Randomized, /*AslrSeed=*/1),
        "baseline");

    for (bool Pic : {false, true}) {
      CacheDatabase Db(Scratch.path() + "/" + App.Name +
                       (Pic ? "-pic" : "-abs"));
      PersistOptions Opts;
      Opts.PositionIndependent = Pic;
      // Generate under layout seed 1, reuse under layout seed 2.
      (void)mustOk(runPersistent(Suite.Registry, App.App,
                                 App.StartupInput, Db, Opts, nullptr,
                                 dbi::EngineOptions(),
                                 loader::BasePolicy::Randomized, 1),
                   "cache generation");
      auto Warm = mustOk(
          runPersistent(Suite.Registry, App.App, App.StartupInput, Db,
                        Opts, nullptr, dbi::EngineOptions(),
                        loader::BasePolicy::Randomized, 2),
          "warm run");
      Table.addRow(
          {App.Name, Pic ? "PIC" : "absolute",
           cyclesMega(Warm.Run.Cycles),
           formatString("%llu",
                        (unsigned long long)Warm.Stats.TracesCompiled),
           formatString("%u", Warm.Prime.ModulesInvalidated),
           pct(improvementPct(Base.Run.Cycles, Warm.Run.Cycles))});
    }
  }
  Table.print();
  std::printf("\nExpected shape: with absolute translations every "
              "relocated library is invalidated and retranslated; "
              "position-independent translations retain near "
              "same-input improvement.\n");
  return 0;
}
