//===- bench/ablate_linking.cpp -------------------------------------------===//
//
// Ablation: trace linking. Section 2.1 of the paper: "translated branch
// instructions with targets corresponding to the compiled trace are
// linked together. Hence, subsequent executions of the same code
// require no re-translation and control remains in the code cache."
// Without linking, every trace exit returns to the dispatcher. This
// bench quantifies linking across the workload classes, and shows that
// persisted caches restore their links (warm runs re-enter a
// pre-linked cache).
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "workloads/Gui.h"
#include "workloads/Spec2k.h"

#include <cstdio>

using namespace pcc;
using namespace pcc::bench;
using namespace pcc::workloads;
using persist::CacheDatabase;
using persist::PersistOptions;

int main() {
  banner("Ablation: trace linking on/off",
         "linked exits keep control in the code cache; unlinked exits "
         "pay the dispatcher on every transfer");

  SpecSuite Suite = buildSpecSuite();
  TablePrinter Table;
  Table.addRow({"workload", "linked Mcycles", "unlinked Mcycles",
                "slowdown", "links", "dispatches saved"});
  for (const SpecBenchmark &Bench : Suite.Benchmarks) {
    if (Bench.Profile.Name != "164.gzip" &&
        Bench.Profile.Name != "176.gcc")
      continue;
    dbi::EngineOptions Linked;
    auto A = mustOk(runUnderEngine(Suite.Registry, Bench.App,
                                   Bench.RefInputs[0], nullptr, Linked),
                    "linked");
    dbi::EngineOptions Unlinked;
    Unlinked.EnableLinking = false;
    auto B = mustOk(runUnderEngine(Suite.Registry, Bench.App,
                                   Bench.RefInputs[0], nullptr,
                                   Unlinked),
                    "unlinked");
    uint64_t SavedDispatches =
        (B.Stats.DispatchCycles - A.Stats.DispatchCycles) /
        Linked.Costs.DispatchCycles;
    Table.addRow(
        {Bench.Profile.Name, cyclesMega(A.Run.Cycles),
         cyclesMega(B.Run.Cycles),
         times(slowdown(A.Run.Cycles, B.Run.Cycles)),
         formatString("%llu", (unsigned long long)A.Stats.LinksCreated),
         formatString("%llu", (unsigned long long)SavedDispatches)});
  }
  Table.print();

  // Persisted links: a warm run starts with its hot paths pre-linked,
  // so it creates (almost) no links of its own.
  ScratchDir Scratch("pcc-ablate-linking");
  CacheDatabase Db(Scratch.path());
  GuiSuite Gui = buildGuiSuite();
  const GuiApp &App = Gui.Apps[0];
  (void)mustOk(runPersistent(Gui.Registry, App.App, App.StartupInput,
                             Db),
               "cache generation");
  auto Warm = mustOk(runPersistent(Gui.Registry, App.App,
                                   App.StartupInput, Db),
                     "warm run");
  std::printf("\n%s warm run: %u links restored from the persistent "
              "cache, %llu created at run time.\n",
              App.Name.c_str(), Warm.Prime.LinksRestored,
              (unsigned long long)Warm.Stats.LinksCreated);
  std::printf("The persisted translation maps and links (Section 3.2.1) "
              "mean a primed run re-enters an already-linked cache.\n");
  return 0;
}
