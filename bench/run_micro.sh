#!/bin/sh
# Runs the google-benchmark microbenchmarks and writes BENCH_micro.json
# next to the build (same output as the bench_micro_json CMake target).
#
#   bench/run_micro.sh [BUILD_DIR] [extra --benchmark_* flags...]
set -e
BUILD="${1:-build}"
if [ $# -gt 0 ]; then shift; fi
exec "$BUILD/bench/micro_core" \
  --benchmark_out="$BUILD/BENCH_micro.json" \
  --benchmark_out_format=json "$@"
