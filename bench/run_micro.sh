#!/bin/sh
# Runs the google-benchmark microbenchmarks and writes BENCH_micro.json
# next to the build (same output as the bench_micro_json CMake target).
#
#   bench/run_micro.sh [BUILD_DIR] [extra --benchmark_* flags...]
#
# Regression mode:
#
#   bench/run_micro.sh --check [BUILD_DIR] [extra --benchmark_* flags...]
#
# runs the benchmarks, then diffs the fresh BENCH_micro.json against the
# committed bench/BENCH_micro.json baseline and fails when any prime/
# finalize benchmark (BM_Prime*, BM_Finalize*, BM_OptTierWarm) regressed
# by more than 10% in CPU time. Other benchmarks are reported but do not
# fail the check — they measure host-dependent work (hashing, CRC) too
# noisy to gate on.
set -e
ROOT=$(cd "$(dirname "$0")/.." && pwd)

CHECK=0
if [ "${1:-}" = "--check" ]; then
  CHECK=1
  shift
fi

BUILD="${1:-build}"
if [ $# -gt 0 ]; then shift; fi

"$BUILD/bench/micro_core" \
  --benchmark_out="$BUILD/BENCH_micro.json" \
  --benchmark_out_format=json "$@"

if [ "$CHECK" = 1 ]; then
  if ! command -v python3 >/dev/null 2>&1; then
    echo "run_micro.sh --check: python3 not installed; skipping diff" >&2
    exit 0
  fi
  python3 - "$ROOT/bench/BENCH_micro.json" "$BUILD/BENCH_micro.json" <<'EOF'
import json
import sys

GATED_PREFIXES = ("BM_Prime", "BM_Finalize", "BM_OptTierWarm")
THRESHOLD = 0.10


def by_name(path):
    with open(path) as fh:
        doc = json.load(fh)
    return {
        b["name"]: b
        for b in doc.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration"
    }


base = by_name(sys.argv[1])
fresh = by_name(sys.argv[2])
failures = []
for name in sorted(fresh):
    if name not in base:
        print(f"  new        {name} (no baseline)")
        continue
    old = base[name]["cpu_time"]
    new = fresh[name]["cpu_time"]
    if old <= 0:
        continue
    delta = (new - old) / old
    gated = name.startswith(GATED_PREFIXES)
    tag = "gated" if gated else "info "
    print(f"  {tag}  {delta:+7.1%}  {name}")
    if gated and delta > THRESHOLD:
        failures.append((name, delta))
for name in sorted(set(base) - set(fresh)):
    print(f"  missing    {name} (in baseline, not in this run)")
if failures:
    print("regressions over 10% on prime/finalize benchmarks:")
    for name, delta in failures:
        print(f"  {name}: {delta:+.1%}")
    sys.exit(1)
print("bench check passed: no gated benchmark regressed more than 10%")
EOF
fi
