//===- bench/fig5b_overhead_breakdown.cpp ---------------------------------===//
//
// Reproduces Figure 5(b): SPEC2K INT Reference-input execution-time
// breakdown — original program, engine without instrumentation (split
// into translated-code time and VM overhead), and engine with basic-
// block counting instrumentation. The paper's observations: 176.gcc and
// 253.perlbmk have the significant VM overheads; detailed basic-block
// profiling increases VM overhead by as much as 25%.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "workloads/Spec2k.h"

#include <cstdio>

using namespace pcc;
using namespace pcc::bench;
using namespace pcc::workloads;

int main() {
  banner("Figure 5(b): SPEC2K ref overheads with and without "
         "instrumentation",
         "gcc/perlbmk dominate VM overhead; bbcount adds up to ~25% "
         "more VM work");

  SpecSuite Suite = buildSpecSuite();
  TablePrinter Table;
  Table.addRow({"benchmark", "native", "engine run", "engine vm",
                "bb run", "bb vm", "vm share growth"});
  for (const SpecBenchmark &Bench : Suite.Benchmarks) {
    auto Native = mustOk(
        runNative(Suite.Registry, Bench.App, Bench.RefInputs[0]),
        Bench.Profile.Name.c_str());
    auto Plain = mustOk(
        runUnderEngine(Suite.Registry, Bench.App, Bench.RefInputs[0]),
        Bench.Profile.Name.c_str());
    dbi::BasicBlockCounterTool Tool;
    auto Instr = mustOk(runUnderEngine(Suite.Registry, Bench.App,
                                       Bench.RefInputs[0], &Tool),
                        Bench.Profile.Name.c_str());

    auto runCycles = [](const dbi::EngineStats &S) {
      return S.translatedCycles() + S.EmulationCycles;
    };
    // VM-overhead share of total engine time, in percentage points.
    double PlainShare =
        100.0 * static_cast<double>(Plain.Stats.vmCycles()) /
        static_cast<double>(Plain.Stats.totalCycles());
    double InstrShare =
        100.0 * static_cast<double>(Instr.Stats.vmCycles()) /
        static_cast<double>(Instr.Stats.totalCycles());
    double VmGrowth = InstrShare - PlainShare;
    Table.addRow(
        {Bench.Profile.Name, cyclesMega(Native.Cycles),
         cyclesMega(runCycles(Plain.Stats)),
         cyclesMega(Plain.Stats.vmCycles()),
         cyclesMega(runCycles(Instr.Stats)),
         cyclesMega(Instr.Stats.vmCycles()),
         formatString("+%.1f pp", VmGrowth)});
  }
  Table.print();
  std::printf("\nColumns are Mcycles: the engine bars split into "
              "translated-code time (run) and VM overhead (vm), as in "
              "the paper's stacked bars.\n");
  return 0;
}
