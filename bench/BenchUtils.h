//===- bench/BenchUtils.h - Shared bench-harness helpers --------*- C++ -*-===//
//
// Part of the PCC project: reproduction of "Persistent Code Caching"
// (CGO 2007).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-figure bench binaries: formatting, paper-vs-
/// measured rows, temp cache databases, and canned run configurations.
///
//===----------------------------------------------------------------------===//

#ifndef PCC_BENCH_BENCHUTILS_H
#define PCC_BENCH_BENCHUTILS_H

#include "persist/Session.h"
#include "support/FileSystem.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "workloads/Runner.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace pcc {
namespace bench {

/// RAII temp directory for a bench's cache database.
class ScratchDir {
public:
  explicit ScratchDir(const std::string &Prefix) {
    auto Dir = createUniqueTempDir(Prefix);
    if (!Dir) {
      std::fprintf(stderr, "fatal: %s\n",
                   Dir.status().toString().c_str());
      std::exit(1);
    }
    Path = Dir.take();
  }
  ~ScratchDir() { (void)removeRecursively(Path); }
  ScratchDir(const ScratchDir &) = delete;
  ScratchDir &operator=(const ScratchDir &) = delete;

  const std::string &path() const { return Path; }

private:
  std::string Path;
};

/// Aborts the bench with a message when a run fails.
template <typename T> T mustOk(ErrorOr<T> Result, const char *What) {
  if (!Result) {
    std::fprintf(stderr, "fatal: %s: %s\n", What,
                 Result.status().toString().c_str());
    std::exit(1);
  }
  return Result.take();
}

/// Percent improvement of \p New over \p Base: (Base-New)/Base.
inline double improvementPct(uint64_t Base, uint64_t New) {
  if (Base == 0)
    return 0;
  return 100.0 * (static_cast<double>(Base) - static_cast<double>(New)) /
         static_cast<double>(Base);
}

/// Slowdown factor New/Base.
inline double slowdown(uint64_t Base, uint64_t New) {
  return Base == 0 ? 0 : static_cast<double>(New) /
                             static_cast<double>(Base);
}

inline std::string pct(double Value) {
  return formatString("%.1f%%", Value);
}

inline std::string cyclesMega(uint64_t Cycles) {
  return formatString("%.2f", static_cast<double>(Cycles) / 1e6);
}

inline std::string times(double Value) {
  return formatString("%.1fx", Value);
}

/// Prints the bench banner with its paper reference.
inline void banner(const char *Id, const char *PaperClaim) {
  std::printf("\n################################################"
              "################\n");
  std::printf("# %s\n# Paper: %s\n", Id, PaperClaim);
  std::printf("##################################################"
              "##############\n");
}

} // namespace bench
} // namespace pcc

#endif // PCC_BENCH_BENCHUTILS_H
