//===- bench/fig9_cache_sizes.cpp -----------------------------------------===//
//
// Reproduces Figure 9: persistent code cache sizes, split into the
// translated-trace pool and the data-structures pool. The paper's key
// observation: the data structures (links, liveness, register bindings,
// map nodes) consume *more* memory than the traces themselves; most
// SPEC2K caches are small, 176.gcc's is several times larger, and the
// GUI/Oracle caches are larger still.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "workloads/Gui.h"
#include "workloads/Oracle.h"
#include "workloads/Spec2k.h"

#include <cstdio>

using namespace pcc;
using namespace pcc::bench;
using namespace pcc::workloads;
using persist::CacheDatabase;
using persist::PersistOptions;

namespace {

std::string stackedBar(uint64_t Code, uint64_t Data, uint64_t Max,
                       unsigned Width) {
  auto CodeCols = static_cast<unsigned>(Code * Width / (Max + 1));
  auto DataCols = static_cast<unsigned>(Data * Width / (Max + 1));
  return std::string(CodeCols, 'C') + std::string(DataCols, 'D');
}

} // namespace

int main() {
  banner("Figure 9: persistent cache sizes (code vs data structures)",
         "data structures outweigh translated code; gcc/GUI/Oracle "
         "have the largest caches");
  ScratchDir Scratch("pcc-fig9");
  CacheDatabase Db(Scratch.path());

  struct Entry {
    std::string Name;
    uint64_t CodeBytes = 0;
    uint64_t DataBytes = 0;
  };
  std::vector<Entry> Entries;

  auto collect = [&](const std::string &Name,
                     const loader::ModuleRegistry &Registry,
                     std::shared_ptr<const binary::Module> App,
                     const std::vector<std::vector<uint8_t>> &Inputs) {
    std::string Path = Scratch.path() + "/" + Name + ".pcc";
    // Accumulate all inputs so the cache holds the full footprint.
    bool First = true;
    for (const auto &Input : Inputs) {
      PersistOptions Grow;
      if (!First)
        Grow.ExplicitCachePath = Path;
      Grow.StoreAsPath = Path;
      (void)mustOk(runPersistent(Registry, App, Input, Db, Grow),
                   Name.c_str());
      First = false;
    }
    auto File = mustOk(Db.loadPath(Path), Name.c_str());
    Entries.push_back({Name, File.codeBytes(), File.dataBytes()});
  };

  SpecSuite Suite = buildSpecSuite();
  for (const SpecBenchmark &Bench : Suite.Benchmarks)
    collect(Bench.Profile.Name, Suite.Registry, Bench.App,
            Bench.RefInputs);
  GuiSuite Gui = buildGuiSuite();
  for (const GuiApp &App : Gui.Apps)
    collect(App.Name, Gui.Registry, App.App, {App.StartupInput});
  OracleSetup Oracle = buildOracleSetup();
  collect("Oracle", Oracle.Registry, Oracle.App, Oracle.PhaseInputs);

  uint64_t Max = 0;
  for (const Entry &E : Entries)
    Max = std::max(Max, E.CodeBytes + E.DataBytes);

  TablePrinter Table;
  Table.addRow({"workload", "code", "data structs", "total",
                "data/code", "C=code D=data"});
  for (const Entry &E : Entries)
    Table.addRow({E.Name, formatByteSize(E.CodeBytes),
                  formatByteSize(E.DataBytes),
                  formatByteSize(E.CodeBytes + E.DataBytes),
                  formatString("%.2fx", static_cast<double>(E.DataBytes) /
                                            static_cast<double>(
                                                E.CodeBytes)),
                  stackedBar(E.CodeBytes, E.DataBytes, Max, 44)});
  Table.print();
  std::printf("\nExpected shape: data/code > 1 everywhere (the paper's "
              "central Figure 9 point); 176.gcc\nhas the largest SPEC "
              "cache; GUI and Oracle caches are larger than typical "
              "SPEC ones.\n");
  return 0;
}
