//===- bench/fig4_code_invariance.cpp -------------------------------------===//
//
// Reproduces Figure 4: the average inter-execution code coverage scale.
// gzip and bzip2 cluster near 100% (all inputs exercise identical
// code); gcc, perlbmk and vpr sit lower; Oracle's phases share the
// least code (~55%). Coverage is measured the way the paper defines it:
// the static code of one input/phase also executed by the others.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "workloads/Oracle.h"
#include "workloads/Spec2k.h"

#include <algorithm>
#include <cstdio>

using namespace pcc;
using namespace pcc::bench;
using namespace pcc::workloads;

namespace {

double averageCoverage(const std::vector<AddressIntervals> &Covers) {
  double Sum = 0;
  unsigned Count = 0;
  for (size_t I = 0; I != Covers.size(); ++I)
    for (size_t J = 0; J != Covers.size(); ++J) {
      if (I == J)
        continue;
      Sum += codeCoverage(Covers[I], Covers[J]);
      ++Count;
    }
  return Count == 0 ? 1.0 : Sum / Count;
}

std::string bar(double Fraction, unsigned Width) {
  auto Filled = static_cast<unsigned>(Fraction * Width + 0.5);
  return std::string(Filled, '#') + std::string(Width - Filled, ' ');
}

} // namespace

int main() {
  banner("Figure 4: average inter-execution code coverage",
         "gzip/bzip2 ~100%; gcc/perlbmk/vpr lower; Oracle lowest "
         "(~55%)");

  struct Entry {
    std::string Name;
    double Coverage;
  };
  std::vector<Entry> Entries;

  SpecSuite Suite = buildSpecSuite();
  for (const SpecBenchmark &Bench : Suite.Benchmarks) {
    if (Bench.RefInputs.size() < 2)
      continue;
    std::vector<AddressIntervals> Covers;
    for (const auto &Input : Bench.RefInputs)
      Covers.push_back(
          mustOk(runUnderEngine(Suite.Registry, Bench.App, Input),
                 Bench.Profile.Name.c_str())
              .Coverage);
    Entries.push_back({Bench.Profile.Name, averageCoverage(Covers)});
  }

  OracleSetup Oracle = buildOracleSetup();
  {
    std::vector<AddressIntervals> Covers;
    for (const auto &Input : Oracle.PhaseInputs)
      Covers.push_back(
          mustOk(runUnderEngine(Oracle.Registry, Oracle.App, Input),
                 "oracle")
              .Coverage);
    Entries.push_back({"Oracle", averageCoverage(Covers)});
  }

  std::sort(Entries.begin(), Entries.end(),
            [](const Entry &A, const Entry &B) {
              return A.Coverage < B.Coverage;
            });
  TablePrinter Table;
  Table.addRow({"workload", "avg coverage", "scale 0..100%"});
  for (const Entry &E : Entries)
    Table.addRow({E.Name, pct(E.Coverage * 100.0),
                  "[" + bar(E.Coverage, 40) + "]"});
  Table.print();
  std::printf("\nExpected order (paper): Oracle lowest (~55%%), then "
              "vpr/perlbmk/gcc, with gzip and bzip2 near 100%%.\n");
  return 0;
}
