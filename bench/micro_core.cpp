//===- bench/micro_core.cpp -----------------------------------------------===//
//
// google-benchmark microbenchmarks of the core engine operations whose
// costs the cycle model abstracts: module key hashing, translation-map
// lookup, trace selection+compilation, persistent cache file
// serialization/deserialization, and CRC validation. These measure the
// *host* implementation (how fast the simulator itself runs), not the
// modeled guest cycles.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "analysis/CertChecker.h"
#include "analysis/Certificate.h"
#include "analysis/Validator.h"
#include "binary/Assembler.h"
#include "dbi/Compiler.h"
#include "dbi/Engine.h"
#include "persist/CacheDatabase.h"
#include "persist/CacheFile.h"
#include "persist/DbCheck.h"
#include "persist/Key.h"
#include "persist/MemoryStore.h"
#include "persist/Session.h"
#include "persist/TieredStore.h"
#include "support/FileSystem.h"
#include "support/Hashing.h"
#include "support/ThreadPool.h"
#include "workloads/Codegen.h"
#include "workloads/Fleet.h"
#include "workloads/Runner.h"

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <memory>

using namespace pcc;

namespace {

/// A loaded machine shared by the microbenchmarks.
struct Fixture {
  loader::ModuleRegistry Registry;
  std::shared_ptr<binary::Module> App;
  std::unique_ptr<vm::Machine> M;

  Fixture() {
    workloads::AppDef Def;
    Def.Name = "micro";
    Def.Path = "/bin/micro";
    for (uint32_t I = 0; I != 16; ++I) {
      workloads::RegionDef Region;
      Region.Name = "r" + std::to_string(I);
      Region.Blocks = 6;
      Region.InstsPerBlock = 10;
      Region.Seed = I + 1;
      Def.Slots.push_back(
          workloads::FunctionSlot::local(std::move(Region)));
    }
    App = workloads::buildExecutable(Def);
    std::vector<workloads::WorkItem> Items;
    for (uint32_t I = 0; I != 16; ++I)
      Items.push_back(workloads::WorkItem{I, 20});
    auto Machine = workloads::makeMachine(
        Registry, App, workloads::encodeWorkload(Items));
    M = std::make_unique<vm::Machine>(Machine.take());
  }
};

Fixture &fixture() {
  static Fixture F;
  return F;
}

void BM_ModuleKeyCompute(benchmark::State &State) {
  const auto &Mod = fixture().M->image().Modules[0];
  for (auto _ : State)
    benchmark::DoNotOptimize(persist::ModuleKey::compute(Mod));
}
BENCHMARK(BM_ModuleKeyCompute);

void BM_Fnv1a64(benchmark::State &State) {
  std::vector<uint8_t> Data(State.range(0), 0x5a);
  for (auto _ : State)
    benchmark::DoNotOptimize(fnv1a64Bytes(Data.data(), Data.size()));
  State.SetBytesProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_Fnv1a64)->Arg(64)->Arg(4096)->Arg(65536);

void BM_Crc32(benchmark::State &State) {
  std::vector<uint8_t> Data(State.range(0), 0xa5);
  for (auto _ : State)
    benchmark::DoNotOptimize(crc32(Data.data(), Data.size()));
  State.SetBytesProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_Crc32)->Arg(4096)->Arg(65536);

void BM_TraceSelection(benchmark::State &State) {
  Fixture &F = fixture();
  uint32_t Entry = F.M->image().EntryAddress;
  for (auto _ : State)
    benchmark::DoNotOptimize(dbi::selectTrace(F.M->space(), Entry, 16));
}
BENCHMARK(BM_TraceSelection);

void BM_TraceCompile(benchmark::State &State) {
  Fixture &F = fixture();
  uint32_t Entry = F.M->image().EntryAddress;
  dbi::CostModel Costs;
  for (auto _ : State) {
    dbi::CodeCache Cache(1 << 20, 1 << 20);
    dbi::Compiler Comp(F.M->space(), Cache, Costs,
                       dbi::InstrumentationSpec(), 16);
    dbi::EngineStats Stats;
    benchmark::DoNotOptimize(Comp.compile(Entry, Stats));
  }
}
BENCHMARK(BM_TraceCompile);

void BM_TranslationMapLookup(benchmark::State &State) {
  dbi::CodeCache Cache(1 << 20, 1 << 24);
  for (uint32_t I = 0; I != 4096; ++I)
    (void)Cache.addTrace(std::make_unique<dbi::TranslatedTrace>(
        0x1000 + I * 64, 4, 0, 0, std::vector<dbi::TraceExit>{},
        false));
  uint32_t Probe = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Cache.lookup(0x1000 + (Probe & 4095) * 64));
    ++Probe;
  }
}
BENCHMARK(BM_TranslationMapLookup);

persist::CacheFile makeCacheFile(unsigned NumTraces) {
  persist::CacheFile File;
  File.EngineHash = 1;
  persist::ModuleKey Key;
  Key.Path = "/bin/micro";
  File.Modules.push_back(Key);
  for (unsigned I = 0; I != NumTraces; ++I) {
    persist::TraceRecord Trace;
    Trace.GuestStart = 0x400000 + I * 128;
    Trace.GuestInstCount = 12;
    Trace.Code.assign(160, static_cast<uint8_t>(I));
    Trace.Exits.push_back(
        persist::ExitRecord{0, 11, Trace.GuestStart + 96, 0});
    File.Traces.push_back(std::move(Trace));
  }
  return File;
}

void BM_CacheFileSerialize(benchmark::State &State) {
  persist::CacheFile File =
      makeCacheFile(static_cast<unsigned>(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(File.serialize());
}
BENCHMARK(BM_CacheFileSerialize)->Arg(128)->Arg(1024);

void BM_CacheFileDeserialize(benchmark::State &State) {
  std::vector<uint8_t> Bytes =
      makeCacheFile(static_cast<unsigned>(State.range(0))).serialize();
  for (auto _ : State)
    benchmark::DoNotOptimize(persist::CacheFile::deserialize(Bytes));
}
BENCHMARK(BM_CacheFileDeserialize)->Arg(128)->Arg(1024);

/// A 64-file database, half of it compatible with (engine 1, tool 0),
/// for the header-scan vs. eager-scan comparison.
struct ScanDb {
  bench::ScratchDir Dir{"pcc-bench-scan"};
  persist::CacheDatabase Db{Dir.path()};

  ScanDb() {
    persist::CacheFile File = makeCacheFile(256);
    for (uint64_t Key = 1; Key <= 64; ++Key) {
      File.EngineHash = (Key % 2) ? 1 : 2;
      if (!Db.store(Key, File).ok())
        std::abort();
    }
  }
};

ScanDb &scanDb() {
  static ScanDb S;
  return S;
}

void BM_HeaderScan(benchmark::State &State) {
  persist::CacheDatabase &Db = scanDb().Db;
  for (auto _ : State)
    benchmark::DoNotOptimize(Db.findCompatible(1, 0));
  State.SetItemsProcessed(State.iterations() * 64);
  State.SetLabel("cache files");
}
BENCHMARK(BM_HeaderScan);

/// The same compatibility scan done the v1 way — every file fully
/// deserialized and CRC-checked — as the baseline BM_HeaderScan is
/// measured against.
void BM_DatabaseEagerScan(benchmark::State &State) {
  ScanDb &S = scanDb();
  auto Names = listDirectory(S.Dir.path());
  if (!Names)
    std::abort();
  for (auto _ : State) {
    uint32_t Matches = 0;
    for (const std::string &Name : *Names) {
      auto File = S.Db.loadPath(S.Dir.path() + "/" + Name);
      if (File && File->EngineHash == 1 && File->ToolHash == 0)
        ++Matches;
    }
    benchmark::DoNotOptimize(Matches);
  }
  State.SetItemsProcessed(State.iterations() * 64);
  State.SetLabel("cache files");
}
BENCHMARK(BM_DatabaseEagerScan);

/// Records the wall-clock instant the first translated basic block
/// executes. Keyed into the cache like any tool, so fixtures that prime
/// under it must also have cold-populated under it.
struct FirstBlockTimerTool : dbi::Tool {
  std::chrono::steady_clock::time_point FirstBlock;
  bool Seen = false;

  std::string name() const override { return "first-block-timer"; }
  dbi::InstrumentationSpec spec() const override {
    dbi::InstrumentationSpec Spec;
    Spec.BasicBlocks = true;
    return Spec;
  }
  void onBasicBlock(uint32_t, uint32_t) override {
    if (!Seen) {
      Seen = true;
      FirstBlock = std::chrono::steady_clock::now();
    }
  }
};

/// A large persisted application whose warm runs touch only a couple of
/// regions: measures prime + partial execution, where lazy validation
/// means only the executed traces' payloads are CRC-checked and decoded.
struct PrimeFixture {
  loader::ModuleRegistry Registry;
  std::shared_ptr<binary::Module> App;
  bench::ScratchDir Dir{"pcc-bench-prime"};
  persist::CacheDatabase Db{Dir.path()};
  std::vector<uint8_t> FullInput;
  std::vector<uint8_t> WarmInput;

  PrimeFixture() {
    workloads::AppDef Def;
    Def.Name = "prime";
    Def.Path = "/bin/prime";
    for (uint32_t I = 0; I != 208; ++I) {
      workloads::RegionDef Region;
      Region.Name = "p" + std::to_string(I);
      Region.Blocks = 32;
      Region.InstsPerBlock = 10;
      Region.Seed = I + 101;
      Def.Slots.push_back(
          workloads::FunctionSlot::local(std::move(Region)));
    }
    App = workloads::buildExecutable(Def);
    std::vector<workloads::WorkItem> All;
    for (uint32_t I = 0; I != 208; ++I)
      All.push_back(workloads::WorkItem{I, 1});
    FullInput = workloads::encodeWorkload(All);
    bench::mustOk(workloads::runPersistent(Registry, App, FullInput, Db),
                  "cold run populating the prime-bench cache");
    std::vector<workloads::WorkItem> Few;
    for (uint32_t I = 0; I != 2; ++I)
      Few.push_back(workloads::WorkItem{I, 1});
    WarmInput = workloads::encodeWorkload(Few);
  }
};

PrimeFixture &primeFixture() {
  static PrimeFixture F;
  return F;
}

void BM_PrimeCold(benchmark::State &State) {
  PrimeFixture &F = primeFixture();
  persist::PersistOptions ReadOnly;
  ReadOnly.WriteBack = false;
  // A residency map observes which payload pages the partial run
  // actually faults in: lazy validation means only the executed traces'
  // pages are touched, and that count is the modeled I/O bill of
  // getting to the first N traces (the paper's "disk I/O occurs based
  // on the access pattern of the executing code").
  persist::SharedResidencyMap Touched;
  ReadOnly.SharedResidency = &Touched;
  uint64_t Installed = 0;
  uint64_t Materialized = 0;
  uint64_t PagesTouched = 0;
  for (auto _ : State) {
    Touched.clear(); // Fresh process model each iteration.
    auto R = workloads::runPersistent(F.Registry, F.App, F.WarmInput,
                                      F.Db, ReadOnly);
    if (R) {
      Installed = R->Prime.TracesInstalled;
      Materialized = R->Stats.TracePayloadsValidated;
      PagesTouched = Touched.residentPages();
    }
    benchmark::DoNotOptimize(R);
  }
  State.SetLabel(formatString(
      "%llu traces primed, %llu payloads validated, "
      "%llu pages touched to first %llu traces",
      (unsigned long long)Installed, (unsigned long long)Materialized,
      (unsigned long long)PagesTouched,
      (unsigned long long)Materialized));
}
BENCHMARK(BM_PrimeCold);

/// Fixture for the execute-in-place prime benchmark: the PrimeFixture
/// application persisted twice — once as a materializing v2 cache and
/// once as an XIP v3 generation — so the two warm-prime mechanisms are
/// measured over identical trace populations.
struct XipPrimeFixture {
  loader::ModuleRegistry Registry;
  std::shared_ptr<binary::Module> App;
  bench::ScratchDir MatDir{"pcc-bench-xip-mat"};
  bench::ScratchDir XipDir{"pcc-bench-xip"};
  persist::CacheDatabase MatDb{MatDir.path()};
  persist::CacheDatabase XipDb{XipDir.path()};
  std::vector<uint8_t> WarmInput;

  XipPrimeFixture() {
    workloads::AppDef Def;
    Def.Name = "xip";
    Def.Path = "/bin/xip";
    for (uint32_t I = 0; I != 208; ++I) {
      workloads::RegionDef Region;
      Region.Name = "x" + std::to_string(I);
      Region.Blocks = 32;
      Region.InstsPerBlock = 10;
      Region.Seed = I + 701;
      Def.Slots.push_back(
          workloads::FunctionSlot::local(std::move(Region)));
    }
    App = workloads::buildExecutable(Def);
    std::vector<workloads::WorkItem> All;
    for (uint32_t I = 0; I != 208; ++I)
      All.push_back(workloads::WorkItem{I, 1});
    auto Input = workloads::encodeWorkload(All);
    persist::PersistOptions Mat;
    Mat.PositionIndependent = true;
    bench::mustOk(
        workloads::runPersistent(Registry, App, Input, MatDb, Mat),
        "cold run populating the materializing xip-bench cache");
    persist::PersistOptions Xip = Mat;
    Xip.ExecuteInPlace = true;
    bench::mustOk(
        workloads::runPersistent(Registry, App, Input, XipDb, Xip),
        "cold run populating the xip-bench cache");
    std::vector<workloads::WorkItem> Few;
    for (uint32_t I = 0; I != 2; ++I)
      Few.push_back(workloads::WorkItem{I, 1});
    WarmInput = workloads::encodeWorkload(Few);
  }
};

XipPrimeFixture &xipPrimeFixture() {
  static XipPrimeFixture F;
  return F;
}

/// Warm prime + partial run over the same trace population, Arg 0 via
/// the materializing path (every installed trace's payload copied into
/// the private code pool) and Arg 1 execute-in-place (the payload
/// section borrowed as mapped executable bodies — zero per-trace
/// decode/copy charges at prime). The label reports the copy bill.
void BM_XipPrime(benchmark::State &State) {
  XipPrimeFixture &F = xipPrimeFixture();
  const bool Xip = State.range(0) != 0;
  persist::PersistOptions Opts;
  Opts.PositionIndependent = true;
  Opts.ExecuteInPlace = Xip;
  Opts.WriteBack = false;
  uint64_t Installed = 0;
  uint64_t BytesCopied = 0;
  for (auto _ : State) {
    auto R = workloads::runPersistent(F.Registry, F.App, F.WarmInput,
                                      Xip ? F.XipDb : F.MatDb, Opts);
    if (!R || !R->Prime.CacheFound || R->Prime.XipInstalled != Xip)
      std::abort();
    Installed = R->Prime.TracesInstalled;
    BytesCopied = R->Prime.PayloadBytesCopied;
    benchmark::DoNotOptimize(R);
  }
  if (Xip && BytesCopied != 0)
    std::abort();
  State.SetLabel(formatString(
      "%s, %llu traces primed, %llu payload bytes copied",
      Xip ? "execute-in-place" : "materializing",
      (unsigned long long)Installed, (unsigned long long)BytesCopied));
}
BENCHMARK(BM_XipPrime)->Arg(0)->Arg(1);

/// Fixture for the prime/execution overlap benchmark: the same scale of
/// application as PrimeFixture, but traced with MaxTraceInsts = 64.
/// Longer traces shift prime()'s cost balance away from trace install
/// (a per-trace constant) toward payload validation (CRC + decode,
/// proportional to instructions) — which is exactly the work the async
/// pipeline moves off the critical path. Cold-populated under
/// FirstBlockTimerTool, since the tool identity keys the cache and the
/// benchmark always runs under the timer.
struct OverlapFixture {
  loader::ModuleRegistry Registry;
  std::shared_ptr<binary::Module> App;
  bench::ScratchDir Dir{"pcc-bench-overlap"};
  persist::CacheDatabase Db{Dir.path()};
  dbi::EngineOptions EngineOpts;
  std::vector<uint8_t> WarmInput;

  OverlapFixture() {
    EngineOpts.MaxTraceInsts = 128;
    workloads::AppDef Def;
    Def.Name = "overlap";
    Def.Path = "/bin/overlap";
    for (uint32_t I = 0; I != 208; ++I) {
      workloads::RegionDef Region;
      Region.Name = "o" + std::to_string(I);
      Region.Blocks = 32;
      Region.InstsPerBlock = 16;
      Region.Seed = I + 301;
      Def.Slots.push_back(
          workloads::FunctionSlot::local(std::move(Region)));
    }
    App = workloads::buildExecutable(Def);
    std::vector<workloads::WorkItem> All;
    for (uint32_t I = 0; I != 208; ++I)
      All.push_back(workloads::WorkItem{I, 1});
    FirstBlockTimerTool Timer;
    bench::mustOk(workloads::runPersistent(
                      Registry, App, workloads::encodeWorkload(All), Db,
                      persist::PersistOptions(), &Timer, EngineOpts),
                  "cold run populating the overlap-bench cache");
    std::vector<workloads::WorkItem> Few;
    for (uint32_t I = 0; I != 2; ++I)
      Few.push_back(workloads::WorkItem{I, 1});
    WarmInput = workloads::encodeWorkload(Few);
  }
};

OverlapFixture &overlapFixture() {
  static OverlapFixture F;
  return F;
}

/// Time-to-first-trace-execution on a warm cache: from run start until
/// the first translated basic block executes. Arg 0 is the fully
/// synchronous baseline (EagerValidate: every payload CRC-checked,
/// decoded and materialized before prime() returns); Arg N > 0 primes
/// asynchronously with N background workers, so execution starts while
/// payload validation is still in flight.
void BM_PrimeAsyncOverlap(benchmark::State &State) {
  OverlapFixture &F = overlapFixture();
  const bool Async = State.range(0) != 0;
  std::unique_ptr<support::ThreadPool> Pool;
  persist::PersistOptions Opts;
  Opts.WriteBack = false;
  if (Async) {
    Pool = std::make_unique<support::ThreadPool>(
        static_cast<size_t>(State.range(0)), /*Background=*/true);
    Opts.Pool = Pool.get();
  } else {
    Opts.EagerValidate = true;
  }
  for (auto _ : State) {
    FirstBlockTimerTool Timer;
    auto Start = std::chrono::steady_clock::now();
    auto R = workloads::runPersistent(F.Registry, F.App, F.WarmInput,
                                      F.Db, Opts, &Timer, F.EngineOpts);
    if (!R || !R->Prime.CacheFound || !Timer.Seen)
      std::abort();
    State.SetIterationTime(
        std::chrono::duration<double>(Timer.FirstBlock - Start).count());
    benchmark::DoNotOptimize(R);
  }
  State.SetLabel(Async ? "async prime"
                       : "synchronous eager-validate prime");
}
BENCHMARK(BM_PrimeAsyncOverlap)->Arg(0)->Arg(1)->Arg(2)->UseManualTime();

/// finalize() critical-path latency after a full run. Arg 0 serializes,
/// CRCs and publishes inline; Arg 1 snapshots the resident traces and
/// hands the publish to the worker pool, so only the snapshot remains on
/// the critical path (wait() — the durability barrier — is excluded from
/// the timed region, as an engine would overlap it with teardown).
void BM_FinalizeBackground(benchmark::State &State) {
  PrimeFixture &F = primeFixture();
  const bool Background = State.range(0) != 0;
  std::unique_ptr<support::ThreadPool> Pool;
  persist::PersistOptions Opts;
  if (Background) {
    Pool = std::make_unique<support::ThreadPool>(4, /*Background=*/true);
    Opts.Pool = Pool.get();
  }
  for (auto _ : State) {
    vm::Machine M = bench::mustOk(
        workloads::makeMachine(F.Registry, F.App, F.FullInput),
        "machine for the finalize bench");
    dbi::Engine Engine(M, nullptr);
    persist::PersistentSession Session(F.Db, Opts);
    bench::mustOk(Session.prime(Engine), "prime for the finalize bench");
    benchmark::DoNotOptimize(Engine.run());
    auto Start = std::chrono::steady_clock::now();
    Status Finalized = Session.finalize(Engine);
    auto End = std::chrono::steady_clock::now();
    if (!Finalized.ok())
      std::abort();
    State.SetIterationTime(
        std::chrono::duration<double>(End - Start).count());
    if (!Session.wait(&Engine.stats()).ok())
      std::abort();
  }
  State.SetLabel(Background ? "background publish, 4 workers"
                            : "inline publish");
}
BENCHMARK(BM_FinalizeBackground)->Arg(0)->Arg(1)->UseManualTime();

/// Host-side cost of one cache open through the tiered store. Arg 0 is
/// an L1 hit, Arg 1 forces a read-through fetch from L2 on every open
/// (the L1 copy is retired first, so the fill + quota path runs each
/// iteration), Arg 2 is a miss in both tiers. The modeled remote cycles
/// are a guest-side charge; this measures what the *simulator* pays.
void BM_TieredLoad(benchmark::State &State) {
  auto L1 = std::make_shared<persist::MemoryStore>("<l1>");
  auto L2 = std::make_shared<persist::MemoryStore>("<remote>");
  persist::TieredStore Store(L1, L2);
  if (!Store.put(1, makeCacheFile(256)).ok())
    std::abort();
  const int Mode = static_cast<int>(State.range(0));
  for (auto _ : State) {
    if (Mode == 1 && !L1->retire(1).ok())
      std::abort();
    uint64_t Key = Mode == 2 ? 999 : 1;
    auto R = Store.openKey(Key, persist::CacheFileView::Depth::Index);
    if ((Mode == 2) == R.ok())
      std::abort();
    benchmark::DoNotOptimize(R);
  }
  State.SetLabel(Mode == 0   ? "L1 hit"
                 : Mode == 1 ? "L2 read-through fetch"
                             : "miss in both tiers");
}
BENCHMARK(BM_TieredLoad)->Arg(0)->Arg(1)->Arg(2);

/// End-to-end host cost of one small fleet simulation (64 machines x 3
/// rounds), Arg 0 without and Arg 1 with the shared L2. The label
/// carries the cumulative hit rate, so the run doubles as a smoke check
/// that the tiered fleet actually converges.
void BM_FleetConvergence(benchmark::State &State) {
  workloads::FleetOptions Opts;
  Opts.Machines = 64;
  Opts.Rounds = 3;
  Opts.Libraries = 4;
  Opts.RegionsPerLibrary = 6;
  Opts.WithL2 = State.range(0) != 0;
  uint64_t Hits = 0, Runs = 0;
  for (auto _ : State) {
    auto R = workloads::runFleet(Opts);
    if (!R || (Opts.WithL2 && !R->MonotoneConvergence))
      std::abort();
    Hits += R->TotalHits;
    Runs += R->TotalRuns;
    benchmark::DoNotOptimize(R);
  }
  State.SetLabel(formatString(
      "%s, cumulative hit rate %.1f%%",
      Opts.WithL2 ? "shared L2" : "no L2",
      Runs ? 100.0 * double(Hits) / double(Runs) : 0.0));
}
BENCHMARK(BM_FleetConvergence)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_EngineThroughput(benchmark::State &State) {
  Fixture &F = fixture();
  std::vector<workloads::WorkItem> Items;
  for (uint32_t I = 0; I != 16; ++I)
    Items.push_back(workloads::WorkItem{I, 50});
  auto Input = workloads::encodeWorkload(Items);
  uint64_t GuestInsts = 0;
  for (auto _ : State) {
    auto R = workloads::runUnderEngine(F.Registry, F.App, Input);
    if (R)
      GuestInsts += R->Run.InstructionsExecuted;
    benchmark::DoNotOptimize(R);
  }
  State.SetItemsProcessed(static_cast<int64_t>(GuestInsts));
  State.SetLabel("guest insts/s");
}
BENCHMARK(BM_EngineThroughput);

/// A persisted database plus the serialized guest module that resolves
/// it, for the deep semantic-verification benchmark.
struct DeepVerifyFixture {
  loader::ModuleRegistry Registry;
  std::shared_ptr<binary::Module> App;
  bench::ScratchDir Dir{"pcc-bench-deep"};
  bench::ScratchDir ModDir{"pcc-bench-deep-mod"};
  persist::CacheDatabase Db{Dir.path()};

  DeepVerifyFixture() {
    workloads::AppDef Def;
    Def.Name = "deep";
    Def.Path = "/bin/deep";
    for (uint32_t I = 0; I != 32; ++I) {
      workloads::RegionDef Region;
      Region.Name = "d" + std::to_string(I);
      Region.Blocks = 16;
      Region.InstsPerBlock = 12;
      Region.Seed = I + 501;
      Def.Slots.push_back(
          workloads::FunctionSlot::local(std::move(Region)));
    }
    App = workloads::buildExecutable(Def);
    std::vector<workloads::WorkItem> All;
    for (uint32_t I = 0; I != 32; ++I)
      All.push_back(workloads::WorkItem{I, 1});
    bench::mustOk(workloads::runPersistent(
                      Registry, App, workloads::encodeWorkload(All), Db),
                  "cold run populating the deep-verify cache");
    if (!writeFileAtomic(ModDir.path() + "/app.mod", App->serialize())
             .ok())
      std::abort();
  }
};

DeepVerifyFixture &deepVerifyFixture() {
  static DeepVerifyFixture F;
  return F;
}

/// pcc-dbcheck --deep over a persisted database: CRC pass plus a
/// symbolic equivalence proof of every trace against its module's guest
/// code. Arg is the worker count — 1 checks serially, N fans the
/// per-file passes across a thread pool.
void BM_DeepVerify(benchmark::State &State) {
  DeepVerifyFixture &F = deepVerifyFixture();
  const auto Jobs = static_cast<size_t>(State.range(0));
  std::unique_ptr<support::ThreadPool> Pool;
  if (Jobs > 1)
    Pool = std::make_unique<support::ThreadPool>(Jobs);
  persist::DbCheckOptions Opts;
  Opts.Deep = true;
  Opts.Pool = Pool.get();
  Opts.ModulePaths.push_back(F.ModDir.path() + "/app.mod");
  uint64_t Verified = 0;
  for (auto _ : State) {
    auto Report = persist::checkDatabase(F.Dir.path(), Opts);
    if (!Report || Report->TracesMismatched != 0 ||
        Report->TracesVerified == 0)
      std::abort();
    Verified += Report->TracesVerified;
    benchmark::DoNotOptimize(Report);
  }
  State.SetItemsProcessed(static_cast<int64_t>(Verified));
  State.SetLabel("traces proved");
}
BENCHMARK(BM_DeepVerify)->Arg(1)->Arg(4);

/// Engine run with the dead-def elision pass off (Arg 0) and on
/// (Arg 1). The pass costs liveness plus a validator proof per
/// compiled trace, so the delta is the compile-time price of the
/// optimization; guest-visible results and architectural statistics
/// are identical either way.
void BM_FlagElision(benchmark::State &State) {
  Fixture &F = fixture();
  dbi::EngineOptions Opts;
  Opts.OptimizeFlags = State.range(0) != 0;
  std::vector<workloads::WorkItem> Items;
  for (uint32_t I = 0; I != 16; ++I)
    Items.push_back(workloads::WorkItem{I, 50});
  auto Input = workloads::encodeWorkload(Items);
  uint64_t Proved = 0;
  uint64_t Elided = 0;
  for (auto _ : State) {
    auto R = workloads::runUnderEngine(F.Registry, F.App, Input,
                                       nullptr, Opts);
    if (!R || R->Stats.VerifyFailures != 0)
      std::abort();
    Proved += R->Stats.TracesVerified;
    Elided += R->Stats.FlagsElided;
    benchmark::DoNotOptimize(R);
  }
  State.SetLabel(Opts.OptimizeFlags
                     ? formatString("%llu traces proved, %llu defs elided",
                                    (unsigned long long)Proved,
                                    (unsigned long long)Elided)
                     : "elision off");
}
BENCHMARK(BM_FlagElision)->Arg(0)->Arg(1);

/// Fixture for the heat-ordered layout benchmark: 128 small regions,
/// every 8th one hot, persisted twice — once as finalize writes today
/// (hot-first payload layout) and once re-sorted into guest-address
/// order (the pre-heat-layout writer) — so the page-touch bill of a
/// warm run over just the hot slots is measured over identical trace
/// populations.
struct HotFirstFixture {
  loader::ModuleRegistry Registry;
  std::shared_ptr<binary::Module> App;
  bench::ScratchDir HotDir{"pcc-bench-hotfirst"};
  bench::ScratchDir AddrDir{"pcc-bench-addrorder"};
  persist::CacheDatabase HotDb{HotDir.path()};
  persist::CacheDatabase AddrDb{AddrDir.path()};
  std::vector<uint8_t> WarmInput;

  HotFirstFixture() {
    workloads::AppDef Def;
    Def.Name = "hotfirst";
    Def.Path = "/bin/hotfirst";
    for (uint32_t I = 0; I != 128; ++I) {
      workloads::RegionDef Region;
      Region.Name = "h" + std::to_string(I);
      Region.Blocks = 2;
      Region.InstsPerBlock = 10;
      Region.Seed = I + 901;
      Def.Slots.push_back(
          workloads::FunctionSlot::local(std::move(Region)));
    }
    App = workloads::buildExecutable(Def);
    // Cold run: everything executes once, but every 8th slot re-runs
    // enough to dominate the heat counters — a hot minority scattered
    // across the whole address space.
    // Hot slots are heated by *repeated work items*, not a bigger
    // iteration count: repeating the call re-executes the region's
    // whole trace path (entry, body, exit), so every trace the warm
    // run will walk ranks above the run-once majority.
    std::vector<workloads::WorkItem> Cold;
    for (uint32_t I = 0; I != 128; ++I)
      for (uint32_t Rep = 0, N = I % 8 == 0 ? 12u : 1u; Rep != N; ++Rep)
        Cold.push_back(workloads::WorkItem{I, 1});
    bench::mustOk(workloads::runPersistent(
                      Registry, App, workloads::encodeWorkload(Cold),
                      HotDb),
                  "cold run populating the hot-first bench cache");
    // Address-ordered baseline: the identical records with the payload
    // re-laid-out by guest start, stored under the same lookup key.
    auto Names = listDirectory(HotDir.path());
    if (!Names)
      std::abort();
    std::string PccName;
    for (const std::string &N : *Names)
      if (N.size() >= 4 && N.substr(N.size() - 4) == ".pcc")
        PccName = N;
    if (PccName.empty())
      std::abort();
    auto File = HotDb.loadPath(HotDir.path() + "/" + PccName);
    if (!File)
      std::abort();
    std::stable_sort(File->Traces.begin(), File->Traces.end(),
                     [](const persist::TraceRecord &A,
                        const persist::TraceRecord &B) {
                       return A.GuestStart < B.GuestStart;
                     });
    uint64_t Key = std::strtoull(
        PccName.substr(0, PccName.size() - 4).c_str(), nullptr, 16);
    if (!AddrDb.store(Key, *File).ok())
      std::abort();
    // Warm work list: one call per hot slot — the exact trace path the
    // cold run heated.
    std::vector<workloads::WorkItem> Warm;
    for (uint32_t I = 0; I != 128; I += 8)
      Warm.push_back(workloads::WorkItem{I, 1});
    WarmInput = workloads::encodeWorkload(Warm);
  }
};

HotFirstFixture &hotFirstFixture() {
  static HotFirstFixture F;
  return F;
}

/// Warm prime + hot-slots-only run, Arg 0 over the address-ordered
/// payload layout and Arg 1 over the hot-first layout finalize writes.
/// With lazy validation only the executed traces' payload pages fault
/// in, so packing the hot traces first shrinks the pages-touched bill
/// (BM_PrimeCold's metric) without changing a single record.
void BM_PrimeHotFirst(benchmark::State &State) {
  HotFirstFixture &F = hotFirstFixture();
  const bool HotFirst = State.range(0) != 0;
  persist::PersistOptions ReadOnly;
  ReadOnly.WriteBack = false;
  persist::SharedResidencyMap Touched;
  ReadOnly.SharedResidency = &Touched;
  uint64_t Installed = 0;
  uint64_t PagesTouched = 0;
  for (auto _ : State) {
    Touched.clear();
    auto R = workloads::runPersistent(F.Registry, F.App, F.WarmInput,
                                      HotFirst ? F.HotDb : F.AddrDb,
                                      ReadOnly);
    if (!R || !R->Prime.CacheFound)
      std::abort();
    Installed = R->Prime.TracesInstalled;
    PagesTouched = Touched.residentPages();
    benchmark::DoNotOptimize(R);
  }
  State.SetLabel(formatString(
      "%s payload layout: %llu traces primed, %llu payload pages "
      "touched by the hot slots",
      HotFirst ? "hot-first" : "address-ordered",
      (unsigned long long)Installed,
      (unsigned long long)PagesTouched));
}
BENCHMARK(BM_PrimeHotFirst)->Arg(0)->Arg(1);

/// A hot loop whose body re-loads the same word it just loaded — the
/// redundancy the finalize-time optimization tier eliminates. Written
/// by hand so the win is structural, not an accident of the generator.
constexpr const char *OptWarmAsm = R"(
.module optwarm "/bin/optwarm"
.entry main
.data
count: .word 512
buf:   .word 7
.text
main:
  ldi r4, @count
  ld r10, [r4+0]
  ldi r9, @buf
  ldi r12, 0
loop:
  ld r1, [r9+0]
  add r2, r1, r1
  ld r1, [r9+0]
  add r3, r1, r2
  ld r1, [r9+0]
  add r2, r1, r3
  addi r10, r10, -1
  bne r10, r12, loop
  ldi r1, 0
  sys 1
)";

/// Fixture for the optimization-tier benchmark: the same hand-written
/// redundant-load program persisted twice, once plain (generation 0)
/// and once with the finalize promotion tier on (generation 1+). The
/// constructor asserts the tier's contract: cold-run modeled cycles
/// are bit-identical (promotion is free background work), warm
/// guest-visible results agree, and the promoted warm run costs
/// strictly fewer modeled cycles.
struct OptTierFixture {
  loader::ModuleRegistry Registry;
  std::shared_ptr<binary::Module> App;
  bench::ScratchDir Gen0Dir{"pcc-bench-opt0"};
  bench::ScratchDir Gen1Dir{"pcc-bench-opt1"};
  persist::CacheDatabase Gen0Db{Gen0Dir.path()};
  persist::CacheDatabase Gen1Db{Gen1Dir.path()};

  OptTierFixture() {
    auto M = binary::assemble(OptWarmAsm);
    if (!M)
      std::abort();
    App = std::make_shared<binary::Module>(M.take());
    persist::PersistOptions Plain;
    auto Cold0 = bench::mustOk(
        workloads::runPersistent(Registry, App, {}, Gen0Db, Plain),
        "cold run populating the gen-0 opt-tier cache");
    persist::PersistOptions Opt;
    Opt.OptTier = true;
    auto Cold1 = bench::mustOk(
        workloads::runPersistent(Registry, App, {}, Gen1Db, Opt),
        "cold run populating the promoted opt-tier cache");
    if (Cold0.Stats.totalCycles() != Cold1.Stats.totalCycles())
      std::abort(); // Promotion must never charge the cold run.
    persist::PersistOptions ReadOnly;
    ReadOnly.WriteBack = false;
    auto Warm0 = bench::mustOk(
        workloads::runPersistent(Registry, App, {}, Gen0Db, ReadOnly),
        "gen-0 warm run");
    auto Warm1 = bench::mustOk(
        workloads::runPersistent(Registry, App, {}, Gen1Db, ReadOnly),
        "promoted warm run");
    if (Warm0.Run.ExitCode != Warm1.Run.ExitCode ||
        Warm0.Run.InstructionsExecuted != Warm1.Run.InstructionsExecuted)
      std::abort(); // Architectural results must be identical.
    if (Warm1.Stats.ExecCycles >= Warm0.Stats.ExecCycles)
      std::abort(); // The promoted cache must show a modeled exec win.
  }
};

OptTierFixture &optTierFixture() {
  static OptTierFixture F;
  return F;
}

/// Warm run of the redundant-load program, Arg 0 primed from the gen-0
/// cache and Arg 1 from the promoted (gen-1+) cache. The label carries
/// the modeled cycle split; eliminated loads execute as discounted
/// Nops, so the promoted leg's translated-exec bill is strictly lower
/// at identical guest-visible results.
void BM_OptTierWarm(benchmark::State &State) {
  OptTierFixture &F = optTierFixture();
  const bool Promoted = State.range(0) != 0;
  persist::PersistOptions ReadOnly;
  ReadOnly.WriteBack = false;
  uint64_t Exec = 0;
  uint64_t Total = 0;
  uint64_t NopsDiscounted = 0;
  for (auto _ : State) {
    auto R = workloads::runPersistent(F.Registry, F.App, {},
                                      Promoted ? F.Gen1Db : F.Gen0Db,
                                      ReadOnly);
    if (!R || !R->Prime.CacheFound)
      std::abort();
    Exec = R->Stats.ExecCycles;
    Total = R->Stats.totalCycles();
    NopsDiscounted = R->Stats.OptNopsExecuted;
    benchmark::DoNotOptimize(R);
  }
  State.SetLabel(formatString(
      "%s: %llu modeled exec cycles (%llu total, %llu eliminated-load "
      "nops discounted)",
      Promoted ? "gen-1+ cache" : "gen-0 cache",
      (unsigned long long)Exec, (unsigned long long)Total,
      (unsigned long long)NopsDiscounted));
}
BENCHMARK(BM_OptTierWarm)->Arg(0)->Arg(1);

/// Fixture for the proof-check benchmark: a certified cache grown by
/// the real opt-tier pipeline (cold run hot enough to promote), with
/// every promoted record's guest start, certificate blob, embedded
/// source, and decoded gen-N body pre-extracted so the measured loop
/// is pure proof work — trusted-checker replay vs full re-prove.
struct ProofCheckFixture {
  struct Item {
    uint32_t GuestStart = 0;
    std::vector<isa::Instruction> Source;
    std::vector<isa::Instruction> Body;
    std::vector<uint8_t> Cert;
    /// Raw at-rest encodings of Source/Body, kept alive so the checker
    /// can run its binding CRCs over stored bytes (CertBindings) the
    /// way dbcheck and L2 fills do.
    std::vector<uint8_t> SrcBytes;
    std::vector<uint8_t> BodyBytes;
  };
  loader::ModuleRegistry Registry;
  std::shared_ptr<binary::Module> App;
  bench::ScratchDir Dir{"pcc-bench-proof"};
  persist::CacheDatabase Db{Dir.path()};
  std::vector<Item> Items;

  ProofCheckFixture() {
    // Several hot loops with superblock-scale straight-line bodies: a
    // long run of distinct loads, a redundantly re-loaded word whose
    // first occurrence sits late in the load order, and a long ALU
    // dependence chain over the loaded values. The finalize tier
    // promotes each body and eliminates the repeated loads, so the
    // full re-prove pays its map-based hash-consing per expression
    // plus a linear witness search per eliminated load, while the
    // trusted checker verifies recorded steps and witnesses in
    // constant time each — the record shape the certificate layer
    // exists for.
    std::string Asm = ".module proof \"/bin/proof\"\n"
                      ".entry main\n"
                      ".data\n"
                      "count: .word 96\n"
                      "buf:   .space 1024\n"
                      ".text\n"
                      "main:\n"
                      "  ldi r9, @buf\n"
                      "  ldi r12, 0\n";
    for (int L = 0; L != 6; ++L) {
      Asm += formatString("  ldi r4, @count\n"
                          "  ld r10, [r4+0]\n"
                          "loop%d:\n",
                          L);
      for (int I = 0; I != 238; ++I)
        Asm += formatString("  ld r1, [r9+%d]\n", 4 + 4 * I);
      for (int I = 0; I != 12; ++I)
        Asm += "  ld r5, [r9+0]\n";
      Asm += formatString("  add r2, r5, r1\n"
                          "  addi r10, r10, -1\n"
                          "  bne r10, r12, loop%d\n",
                          L);
    }
    Asm += "  ldi r1, 0\n  sys 1\n";
    auto M = binary::assemble(Asm.c_str());
    if (!M)
      std::abort();
    App = std::make_shared<binary::Module>(M.take());
    persist::PersistOptions Opt;
    Opt.OptTier = true;
    dbi::EngineOptions EngineOpts;
    EngineOpts.MaxTraceInsts = 256; // Superblock-scale trace bodies.
    bench::mustOk(workloads::runPersistent(Registry, App, {}, Db, Opt,
                                           nullptr, EngineOpts),
                  "cold run populating the certified proof cache");
    auto Names = listDirectory(Dir.path());
    if (!Names)
      std::abort();
    for (const std::string &Name : *Names) {
      if (Name.size() < 4 || Name.substr(Name.size() - 4) != ".pcc")
        continue;
      auto File = Db.loadPath(Dir.path() + "/" + Name);
      if (!File)
        std::abort();
      for (const persist::TraceRecord &Rec : File->Traces) {
        if (Rec.OptGen == 0 || Rec.Cert.empty())
          continue;
        auto Cert = analysis::Certificate::deserialize(Rec.Cert.data(),
                                                       Rec.Cert.size());
        auto Body = isa::decodeAll(Rec.Code.data() + dbi::TracePrologueBytes,
                                   Rec.GuestInstCount);
        if (!Cert || !Body)
          std::abort();
        const uint8_t *Enc = Rec.Code.data() + dbi::TracePrologueBytes;
        const size_t EncLen =
            static_cast<size_t>(Rec.GuestInstCount) * isa::InstructionSize;
        Items.push_back(Item{Rec.GuestStart, Cert->Source, Body.take(),
                             Rec.Cert, isa::encodeAll(Cert->Source),
                             std::vector<uint8_t>(Enc, Enc + EncLen)});
      }
    }
    if (Items.empty())
      std::abort(); // No promoted traces: the benchmark would be vacuous.
    if (getenv("PCC_PROOF_SIZES")) {
      for (const Item &It : Items) {
        auto C = bench::mustOk(analysis::Certificate::deserialize(
                                   It.Cert.data(), It.Cert.size()),
                               "size probe");
        std::fprintf(stderr,
                     "body=%zu insts cert=%zu B steps=%zu wits=%zu "
                     "flat-steps=%zu B src-section=%zu B\n",
                     It.Body.size(), It.Cert.size(), C.Steps.size(),
                     C.Witnesses.size(), C.Steps.size() * 4,
                     It.SrcBytes.size());
      }
    }
    for (const Item &It : Items) {
      if (!analysis::checkCertificateBlob(It.Cert.data(), It.Cert.size(),
                                          It.GuestStart, It.Body, &It.Source)
               .ok())
        std::abort();
      if (!analysis::validateTranslation(It.GuestStart, It.Source, It.Body)
               .Equivalent)
        std::abort();
    }
  }
};

ProofCheckFixture &proofCheckFixture() {
  static ProofCheckFixture F;
  return F;
}

/// Prime-time proof work over every promoted trace of the certified
/// cache. Args are {mode, jobs}: mode 0 replays the persisted
/// certificate through the minimal trusted checker
/// (analysis::checkCertificateBlob), mode 1 re-proves from scratch with
/// the full validator; jobs 1 runs serially, jobs N fans the per-trace
/// work across a thread pool (the shape of parallel prime). Any
/// rejected proof aborts — these are untampered records, so both modes
/// must accept everything.
void BM_ProofCheck(benchmark::State &State) {
  ProofCheckFixture &F = proofCheckFixture();
  const bool Reprove = State.range(0) != 0;
  const auto Jobs = static_cast<size_t>(State.range(1));
  std::unique_ptr<support::ThreadPool> Pool;
  if (Jobs > 1)
    Pool = std::make_unique<support::ThreadPool>(Jobs);
  uint64_t Checked = 0;
  for (auto _ : State) {
    std::atomic<uint64_t> Bad{0};
    auto CheckOne = [&](size_t I) {
      const ProofCheckFixture::Item &It = F.Items[I];
      if (Reprove) {
        auto R =
            analysis::validateTranslation(It.GuestStart, It.Source, It.Body);
        if (!R.Equivalent)
          ++Bad;
        benchmark::DoNotOptimize(R);
      } else {
        // Bind the at-rest encodings exactly as a primed install or a
        // dbcheck sweep would, so the measured check is the deployed
        // fast path.
        analysis::CertBindings Bind;
        Bind.BodyBytes = It.BodyBytes.data();
        Bind.BodyByteCount = It.BodyBytes.size();
        Bind.SourceBytes = It.SrcBytes.data();
        Bind.SourceByteCount = It.SrcBytes.size();
        auto R = analysis::checkCertificateBlob(It.Cert.data(),
                                                It.Cert.size(), It.GuestStart,
                                                It.Body, &It.Source, &Bind);
        if (!R.ok())
          ++Bad;
        benchmark::DoNotOptimize(R);
      }
    };
    if (Pool)
      Pool->parallelFor(F.Items.size(), CheckOne);
    else
      for (size_t I = 0; I != F.Items.size(); ++I)
        CheckOne(I);
    if (Bad.load() != 0)
      std::abort();
    Checked += F.Items.size();
  }
  State.SetItemsProcessed(static_cast<int64_t>(Checked));
  State.SetLabel(formatString(
      "%s, %zu promoted traces",
      Reprove ? "full re-prove" : "certificate check", F.Items.size()));
}
BENCHMARK(BM_ProofCheck)->Args({0, 1})->Args({0, 4})->Args({1, 1})->Args({1, 4});

} // namespace

BENCHMARK_MAIN();
