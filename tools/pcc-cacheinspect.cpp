//===- tools/pcc-cacheinspect.cpp - persistent cache inspector -------------===//
//
// Dumps a persistent code cache file (.pcc): header, module keys, size
// accounting (the Figure 9 split), and optionally every trace record.
//
//   pcc-cacheinspect cache.pcc [--traces]
//
//===----------------------------------------------------------------------===//

#include "persist/CacheFile.h"
#include "persist/DirectoryStore.h"
#include "support/FileSystem.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <cstring>
#include <map>

using namespace pcc;
using namespace pcc::persist;

int main(int Argc, char **Argv) {
  const char *Path = nullptr;
  bool DumpTraces = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--traces") == 0)
      DumpTraces = true;
    else if (std::strcmp(Argv[I], "--help") == 0) {
      std::printf("usage: pcc-cacheinspect cache.pcc [--traces]\n");
      return 0;
    } else if (!Path)
      Path = Argv[I];
  }
  if (!Path) {
    std::fprintf(stderr,
                 "usage: pcc-cacheinspect cache.pcc [--traces]\n");
    return 2;
  }

  auto OnDisk = fileSize(Path);
  if (!OnDisk) {
    std::fprintf(stderr, "pcc-cacheinspect: %s\n",
                 OnDisk.status().toString().c_str());
    return 1;
  }
  // Eager load through the storage interface: full deserialize with
  // every CRC checked, same path accumulation uses.
  std::string PathStr(Path);
  size_t Slash = PathStr.find_last_of('/');
  DirectoryStore Store(Slash == std::string::npos
                           ? std::string(".")
                           : PathStr.substr(0, Slash));
  auto File = Store.loadRef(PathStr);
  if (!File) {
    std::fprintf(stderr, "pcc-cacheinspect: %s: %s\n", Path,
                 File.status().toString().c_str());
    return 1;
  }

  Status Structural = File->validate();
  std::printf("persistent code cache %s (%s on disk, CRC ok, "
              "structure %s)\n",
              Path, formatByteSize(*OnDisk).c_str(),
              Structural.ok() ? "ok"
                              : Structural.toString().c_str());
  std::printf("  format         v%u (%s)\n", File->SourceFormat,
              File->SourceFormat >= 2 ? "indexed, lazy per-trace CRCs"
                                      : "legacy, whole-file CRC");
  std::printf("  engine key     %016llx\n",
              (unsigned long long)File->EngineHash);
  std::printf("  tool key       %016llx  (spec bits 0x%02x)\n",
              (unsigned long long)File->ToolHash, File->SpecBits);
  std::printf("  addressing     %s\n",
              File->PositionIndependent ? "position-independent"
                                        : "absolute");
  std::printf("  generation     %u accumulation(s)\n",
              File->Generation);
  if (File->WriterTag)
    std::printf("  last writer    pid tag %u\n", File->WriterTag);
  std::printf("  code pool      %s\n",
              formatByteSize(File->codeBytes()).c_str());
  std::printf("  data structs   %s (%.2fx code)\n",
              formatByteSize(File->dataBytes()).c_str(),
              File->codeBytes()
                  ? static_cast<double>(File->dataBytes()) /
                        static_cast<double>(File->codeBytes())
                  : 0.0);

  TablePrinter Modules("modules (keys)");
  Modules.addRow({"#", "path", "base", "size", "mtime", "traces",
                  "full hash"});
  std::map<uint32_t, uint32_t> TraceCount;
  for (const TraceRecord &Trace : File->Traces)
    ++TraceCount[Trace.ModuleIndex];
  for (size_t I = 0; I != File->Modules.size(); ++I) {
    const ModuleKey &Key = File->Modules[I];
    Modules.addRow({formatString("%zu", I), Key.Path,
                    "0x" + toHex(Key.Base, 8),
                    formatByteSize(Key.Size),
                    formatString("%llu",
                                 (unsigned long long)Key.ModTime),
                    formatString("%u", TraceCount[(uint32_t)I]),
                    toHex(Key.FullHash, 16)});
  }
  Modules.print();

  if (DumpTraces) {
    TablePrinter Traces("traces");
    Traces.addRow({"guest start", "module", "insts", "code bytes",
                   "exits", "linked"});
    for (const TraceRecord &Trace : File->Traces) {
      unsigned Linked = 0;
      for (const ExitRecord &Exit : Trace.Exits)
        Linked += Exit.LinkedStart != 0 ? 1 : 0;
      Traces.addRow({"0x" + toHex(Trace.GuestStart, 8),
                     formatString("%u", Trace.ModuleIndex),
                     formatString("%u", Trace.GuestInstCount),
                     formatString("%zu", Trace.Code.size()),
                     formatString("%zu", Trace.Exits.size()),
                     formatString("%u", Linked)});
    }
    Traces.print();
  } else {
    std::printf("(%zu traces; pass --traces to list them)\n",
                File->Traces.size());
  }
  return 0;
}
