//===- tools/pcc-dbcheck.cpp - cache database fsck/repair ------------------===//
//
// Offline integrity checker and repair tool for a persistent cache
// database directory.
//
//   pcc-dbcheck DIR                    check every cache file (header,
//                                      module table, trace index, and
//                                      every trace payload CRC), report
//                                      crash temporaries, lock files and
//                                      the quarantine; mutates nothing
//   pcc-dbcheck DIR --repair           additionally rebuild salvageable
//                                      caches (dropping corrupt traces),
//                                      quarantine unsalvageable ones and
//                                      sweep temporaries / stale locks
//   pcc-dbcheck DIR --quarantine       list quarantined caches
//   pcc-dbcheck DIR --restore NAME     move a quarantined cache back
//   pcc-dbcheck DIR --purge-quarantine delete every quarantined cache
//   pcc-dbcheck DIR --jobs N           check (or repair) N cache files
//                                      in parallel; the report is
//                                      identical for any N
//   pcc-dbcheck DIR --deep
//       --module FILE | --modules MDIR deep semantic verification: every
//                                      CRC-intact trace is symbolically
//                                      revalidated against its module's
//                                      guest code; mismatched caches are
//                                      corrupt (quarantined under
//                                      --repair with reason code
//                                      semantic-mismatch)
//   pcc-dbcheck DIR --replay NAME      re-drive the recorded run whose
//                                      .pcrr log was attached to the
//                                      quarantine as NAME (runs that
//                                      auto-quarantine under --record
//                                      leave one), under forced deep
//                                      validation, and verify it
//                                      reproduces the same quarantine
//                                      verdicts; exit 0 reproduced, 1
//                                      not
//
// Certificate contract (every pass): validation certificates on
// promoted traces are always checked — a plain pass replays each
// recorded proof against the certificate's own embedded source (no
// modules needed); --deep binds the check to the real module text and
// falls back to the full symbolic prover when a certificate is rejected
// or missing. The report distinguishes certificates *checked*,
// *replayed by the prover*, and *rejected*; any rejected certificate
// makes the database NOT clean (exit 1) even when every CRC passes,
// because a lying proof is exactly the corruption the certificate layer
// exists to catch. Under --repair, rejected certificates are stripped
// (plain pass) or regenerated from a successful re-proof (--deep); the
// trace itself survives whenever the prover vouches for it.
//
// Exit status: 0 when the database is (now) clean — no corrupt or
// unreadable files, no semantic mismatches, no rejected certificates,
// no lingering crash temporaries; 1 when problems were found (or remain
// after repair); 2 on usage errors.
//
//===----------------------------------------------------------------------===//

#include "persist/CacheDatabase.h"
#include "persist/DbCheck.h"
#include "replay/Replay.h"
#include "support/FileSystem.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace pcc;
using namespace pcc::persist;

static int listQuarantine(const CacheDatabase &Db) {
  auto Entries = Db.quarantined();
  if (!Entries) {
    std::fprintf(stderr, "pcc-dbcheck: %s\n",
                 Entries.status().toString().c_str());
    return 1;
  }
  if (Entries->empty()) {
    std::printf("quarantine is empty\n");
    return 0;
  }
  TablePrinter Table("quarantined caches");
  Table.addRow({"file", "size", "code", "replay-log", "reason"});
  for (const QuarantineEntry &E : *Entries)
    Table.addRow({E.Name, formatByteSize(E.Bytes),
                  quarantineReasonCodeName(E.Code),
                  E.ReplayLog.empty() ? "-" : E.ReplayLog,
                  E.Reason.empty() ? "-" : E.Reason});
  Table.print();
  return 0;
}

/// --replay NAME: re-drives the quarantine's attached recording under
/// forced deep validation and demands the same verdicts back.
static int replayQuarantined(const CacheDatabase &Db,
                             const std::string &Name) {
  auto Bytes = Db.backend()->readQuarantineAttachment(Name);
  if (!Bytes) {
    std::fprintf(stderr, "pcc-dbcheck: %s\n",
                 Bytes.status().toString().c_str());
    return 1;
  }
  auto Rec = replay::deserializeLog(*Bytes);
  if (!Rec) {
    std::fprintf(stderr, "pcc-dbcheck: %s: %s\n", Name.c_str(),
                 Rec.status().toString().c_str());
    return 1;
  }
  replay::ReplayOptions Opts;
  Opts.ForceValidate = true;
  auto Out = replay::replayRun(*Rec, Opts);
  if (!Out) {
    std::fprintf(stderr, "pcc-dbcheck: replay failed: %s\n",
                 Out.status().toString().c_str());
    return 1;
  }
  std::printf("replayed %s: %zu quarantine decision(s) recorded, %zu "
              "reproduced\n",
              Name.c_str(), Rec->Quarantines.size(),
              Out->Quarantines.size());
  bool Reproduced = !Rec->Quarantines.empty();
  for (const replay::RecordedQuarantine &Q : Rec->Quarantines) {
    bool Found = false;
    for (const replay::RecordedQuarantine &R : Out->Quarantines)
      Found = Found || (R.RefName == Q.RefName && R.Code == Q.Code);
    std::printf("  %s (%s): %s\n", Q.RefName.c_str(),
                quarantineReasonCodeName(
                    static_cast<QuarantineReasonCode>(Q.Code)),
                Found ? "reproduced" : "NOT reproduced");
    Reproduced = Reproduced && Found;
  }
  return Reproduced ? 0 : 1;
}

int main(int Argc, char **Argv) {
  const char *Dir = nullptr;
  const char *Restore = nullptr;
  const char *Replay = nullptr;
  bool Repair = false;
  bool Quarantine = false;
  bool Purge = false;
  bool Deep = false;
  unsigned Jobs = 1;
  std::vector<std::string> ModulePaths;
  std::vector<std::string> ModuleDirs;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--repair") == 0)
      Repair = true;
    else if (std::strcmp(Argv[I], "--quarantine") == 0)
      Quarantine = true;
    else if (std::strcmp(Argv[I], "--purge-quarantine") == 0)
      Purge = true;
    else if (std::strcmp(Argv[I], "--restore") == 0 && I + 1 < Argc)
      Restore = Argv[++I];
    else if (std::strcmp(Argv[I], "--replay") == 0 && I + 1 < Argc)
      Replay = Argv[++I];
    else if (std::strcmp(Argv[I], "--jobs") == 0 && I + 1 < Argc)
      Jobs = static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 0));
    else if (std::strcmp(Argv[I], "--deep") == 0)
      Deep = true;
    else if (std::strcmp(Argv[I], "--module") == 0 && I + 1 < Argc)
      ModulePaths.push_back(Argv[++I]);
    else if (std::strcmp(Argv[I], "--modules") == 0 && I + 1 < Argc)
      ModuleDirs.push_back(Argv[++I]);
    else if (std::strcmp(Argv[I], "--help") == 0) {
      std::printf(
          "usage: pcc-dbcheck DIR [--repair | --quarantine | "
          "--restore NAME | --purge-quarantine] [--jobs N]\n"
          "  (no flag)          full check: every header, index and\n"
          "                     trace-payload CRC, plus every validation\n"
          "                     certificate replayed against its own\n"
          "                     embedded source; never mutates\n"
          "  --repair           rebuild salvageable caches (dropping\n"
          "                     corrupt traces), strip or (under --deep)\n"
          "                     regenerate rejected certificates,\n"
          "                     quarantine the rest, sweep crash\n"
          "                     temporaries and stale locks\n"
          "  --quarantine       list quarantined caches with reasons\n"
          "  --restore NAME     move a quarantined cache back in place\n"
          "  --purge-quarantine delete every quarantined cache\n"
          "  --jobs N           check N cache files in parallel (the\n"
          "                     report is identical for any N)\n"
          "  --deep             semantic verification: prove every\n"
          "                     CRC-intact trace effect-equivalent to\n"
          "                     its module's guest code — certificates\n"
          "                     checked against the real module text\n"
          "                     first, full prover as the backstop for\n"
          "                     rejected or missing ones (needs\n"
          "                     --module or --modules)\n"
          "  --module FILE      serialized guest module for --deep\n"
          "  --modules MDIR     directory of .mod module files\n"
          "  --replay NAME      re-drive the quarantine's attached\n"
          "                     .pcrr recording under forced deep\n"
          "                     validation; exit 0 when it reproduces\n"
          "                     the recorded quarantine verdicts\n"
          "exit status: 0 clean, 1 problems found/remaining, 2 usage\n");
      return 0;
    } else if (!Dir)
      Dir = Argv[I];
    else {
      std::fprintf(stderr, "pcc-dbcheck: unexpected argument %s\n",
                   Argv[I]);
      return 2;
    }
  }
  if (!Dir) {
    std::fprintf(stderr,
                 "usage: pcc-dbcheck DIR [--repair | --quarantine | "
                 "--restore NAME | --purge-quarantine] [--jobs N]\n");
    return 2;
  }

  CacheDatabase Db(Dir);
  if (Quarantine)
    return listQuarantine(Db);
  if (Replay)
    return replayQuarantined(Db, Replay);
  if (Restore) {
    Status S = Db.restoreQuarantined(Restore);
    if (!S.ok()) {
      std::fprintf(stderr, "pcc-dbcheck: %s\n", S.toString().c_str());
      return 1;
    }
    std::printf("restored %s\n", Restore);
    return 0;
  }
  if (Purge) {
    auto Purged = Db.purgeQuarantine();
    if (!Purged) {
      std::fprintf(stderr, "pcc-dbcheck: %s\n",
                   Purged.status().toString().c_str());
      return 1;
    }
    std::printf("purged %u quarantined cache(s)\n", *Purged);
    return 0;
  }

  DbCheckOptions Opts;
  Opts.Repair = Repair;
  if (Deep) {
    Opts.Deep = true;
    for (const std::string &MDir : ModuleDirs) {
      auto Names = listDirectory(MDir);
      if (!Names) {
        std::fprintf(stderr, "pcc-dbcheck: cannot list %s: %s\n",
                     MDir.c_str(), Names.status().toString().c_str());
        return 2;
      }
      for (const std::string &Name : *Names)
        if (Name.size() >= 4 &&
            Name.substr(Name.size() - 4) == ".mod")
          ModulePaths.push_back(MDir + "/" + Name);
    }
    if (ModulePaths.empty()) {
      std::fprintf(stderr,
                   "pcc-dbcheck: --deep needs at least one --module "
                   "FILE or --modules MDIR with .mod files\n");
      return 2;
    }
    Opts.ModulePaths = ModulePaths;
  }
  std::unique_ptr<support::ThreadPool> Pool;
  if (Jobs > 1) {
    Pool = std::make_unique<support::ThreadPool>(Jobs);
    Opts.Pool = Pool.get();
  }
  auto Report = checkDatabase(Dir, Opts);
  if (!Report) {
    std::fprintf(stderr, "pcc-dbcheck: %s\n",
                 Report.status().toString().c_str());
    return 1;
  }

  std::printf("%s of cache database %s\n",
              Repair ? "repair" : "check", Dir);
  for (const FileCheckReport &F : Report->Files) {
    if (F.State == FileCheckReport::FileState::Clean)
      continue;
    std::printf("  %-11s %s%s%s\n", fileCheckStateName(F.State),
                F.Name.c_str(), F.Detail.empty() ? "" : ": ",
                F.Detail.c_str());
    if (F.TracesDropped != 0)
      std::printf("              %u trace(s) dropped, %u kept\n",
                  F.TracesDropped, F.TracesKept);
  }
  std::printf("  cache files  %u scanned, %u clean", Report->FilesScanned,
              Report->FilesClean);
  if (Report->FilesRepaired)
    std::printf(", %u repaired", Report->FilesRepaired);
  if (Report->FilesQuarantined)
    std::printf(", %u quarantined", Report->FilesQuarantined);
  if (Report->FilesCorrupt)
    std::printf(", %u corrupt", Report->FilesCorrupt);
  if (Report->FilesUnreadable)
    std::printf(", %u unreadable", Report->FilesUnreadable);
  std::printf("\n");
  if (Report->FilesXip)
    std::printf("  xip files    %u execute-in-place (v3, page-aligned "
                "payload)\n",
                Report->FilesXip);
  if (Report->TracesDropped)
    std::printf("  traces       %u corrupt payload(s) dropped\n",
                Report->TracesDropped);
  if (Report->CertsChecked || Report->CertsRejected ||
      Report->CertsReplayedByProver)
    std::printf("  certificates %u checked, %u replayed by the full "
                "prover, %u REJECTED\n",
                Report->CertsChecked, Report->CertsReplayedByProver,
                Report->CertsRejected);
  if (Deep) {
    std::printf("  deep verify  %u trace(s) proved equivalent, "
                "%u mismatched, %u unverifiable\n",
                Report->TracesVerified, Report->TracesMismatched,
                Report->TracesUnverifiable);
    if (Report->TracesPromotedVerified)
      std::printf("  opt tier     %u promoted bod%s (gen >= 1) "
                  "re-proved against guest code\n",
                  Report->TracesPromotedVerified,
                  Report->TracesPromotedVerified == 1 ? "y" : "ies");
  }
  if (Report->TempsFound)
    std::printf("  temporaries  %u found, %u swept\n", Report->TempsFound,
                Report->TempsSwept);
  if (Report->LocksFound)
    std::printf("  lock files   %u (%u held, %u stale swept)\n",
                Report->LocksFound, Report->LocksHeld,
                Report->StaleLocksSwept);
  if (!Report->Quarantine.empty())
    std::printf("  quarantine   %u entr%s (--quarantine to list)\n",
                (unsigned)Report->Quarantine.size(),
                Report->Quarantine.size() == 1 ? "y" : "ies");
  std::printf("  database is %s\n",
              Report->clean() ? "clean" : "NOT clean");
  return Report->clean() ? 0 : 1;
}
