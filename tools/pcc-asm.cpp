//===- tools/pcc-asm.cpp - guest assembler driver -------------------------===//
//
// Assembles a .s source file into a serialized guest module (.mod).
//
//   pcc-asm input.s -o output.mod
//
//===----------------------------------------------------------------------===//

#include "binary/Assembler.h"
#include "support/FileSystem.h"

#include <cstdio>
#include <cstring>

using namespace pcc;

int main(int Argc, char **Argv) {
  const char *InputPath = nullptr;
  const char *OutputPath = nullptr;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "-o") == 0 && I + 1 < Argc) {
      OutputPath = Argv[++I];
    } else if (std::strcmp(Argv[I], "--help") == 0) {
      std::printf("usage: pcc-asm input.s -o output.mod\n");
      return 0;
    } else if (!InputPath) {
      InputPath = Argv[I];
    } else {
      std::fprintf(stderr, "pcc-asm: unexpected argument %s\n",
                   Argv[I]);
      return 2;
    }
  }
  if (!InputPath || !OutputPath) {
    std::fprintf(stderr, "usage: pcc-asm input.s -o output.mod\n");
    return 2;
  }

  auto Source = readFile(InputPath);
  if (!Source) {
    std::fprintf(stderr, "pcc-asm: %s\n",
                 Source.status().toString().c_str());
    return 1;
  }
  std::string Text(Source->begin(), Source->end());
  auto M = binary::assemble(Text);
  if (!M) {
    std::fprintf(stderr, "pcc-asm: %s: %s\n", InputPath,
                 M.status().toString().c_str());
    return 1;
  }
  Status S = writeFileAtomic(OutputPath, M->serialize());
  if (!S.ok()) {
    std::fprintf(stderr, "pcc-asm: %s\n", S.toString().c_str());
    return 1;
  }
  std::printf("pcc-asm: wrote %s (%u text bytes, %zu data bytes, "
              "%zu symbols, %zu imports)\n",
              OutputPath, M->textSize(), M->data().size(),
              M->symbols().size(), M->imports().size());
  return 0;
}
