//===- tools/pcc-disasm.cpp - guest module disassembler --------------------===//
//
// Prints a serialized guest module (.mod) as annotated assembly.
//
//   pcc-disasm module.mod
//
//===----------------------------------------------------------------------===//

#include "binary/Assembler.h"
#include "support/FileSystem.h"

#include <cstdio>
#include <cstring>

using namespace pcc;

int main(int Argc, char **Argv) {
  if (Argc != 2 || std::strcmp(Argv[1], "--help") == 0) {
    std::fprintf(stderr, "usage: pcc-disasm module.mod\n");
    return Argc == 2 ? 0 : 2;
  }
  auto Bytes = readFile(Argv[1]);
  if (!Bytes) {
    std::fprintf(stderr, "pcc-disasm: %s\n",
                 Bytes.status().toString().c_str());
    return 1;
  }
  auto M = binary::Module::deserialize(*Bytes);
  if (!M) {
    std::fprintf(stderr, "pcc-disasm: %s: %s\n", Argv[1],
                 M.status().toString().c_str());
    return 1;
  }
  std::string Text = binary::disassembleModule(*M);
  std::fwrite(Text.data(), 1, Text.size(), stdout);
  return 0;
}
