//===- tools/pcc-fleetsim.cpp - fleet-scale shared-cache simulation -------===//
//
// Simulates a fleet of machines sharing one remote (L2) cache tier and
// reports cache-hit convergence, remote-link traffic and modeled
// time-to-first-trace percentiles — against a no-L2 baseline where
// every machine only has its private store.
//
//   pcc-fleetsim [options]
//     --machines N    simulated machines                 (default 1000)
//     --rounds N      runs per machine                   (default 4)
//     --apps N        applications in the catalog        (default 6)
//     --versions N    staggered versions per app         (default 3)
//     --libraries N   shared libraries                   (default 4)
//     --zipf S        app popularity skew                (default 1.1)
//     --seed S        simulation seed                    (default 1)
//     --l1-quota B    per-machine L1 byte cap            (default none)
//     --l2-quota B    shared L2 byte cap                 (default none)
//     --jobs N        machines running concurrently
//                     (default: host cores - 1)
//     --no-baseline   skip the no-L2 comparison run
//     --opt-tier      enable the finalize-time optimization tier on
//                     every machine: hot traces are promoted with
//                     validation certificates, and the report gains the
//                     proof-work ledger (prime-time certificate checks
//                     vs full symbolic re-proofs)
//     --tamper-certs  adversarial leg (implies --opt-tier): between
//                     rounds, every certificate in the shared L2 has a
//                     bit flipped; the ledger must show the trusted
//                     checker rejecting them with the prover re-proving
//                     every affected body
//     --verify        exit nonzero unless the tiered run converges
//                     monotonically and beats the baseline's final-round
//                     p99 time-to-first-trace (implies the baseline run).
//                     With --opt-tier, additionally requires >= 90% of
//                     verified promotion installs to be served by the
//                     certificate check (no prover) and zero rejects;
//                     with --tamper-certs, requires every tampered-cert
//                     rejection to have been re-proved by the prover
//                     (rejections > 0, proofs >= rejections, fill-time
//                     self-checks caught tampered blobs) and no false
//                     accepts to have surfaced as quarantines.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "support/ThreadPool.h"
#include "workloads/Fleet.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

using namespace pcc;
using namespace pcc::workloads;

namespace {

void printReport(const char *Title, const FleetReport &Report) {
  TablePrinter Table(Title);
  Table.addRow({"round", "runs", "hit rate", "cumulative", "L1 hits",
                "L2 hits", "fetch bytes", "publish bytes", "compiled",
                "ttft p50", "ttft p99"});
  for (size_t I = 0; I != Report.Rounds.size(); ++I) {
    const FleetRound &Round = Report.Rounds[I];
    Table.addRow({formatString("%zu", I + 1),
                  formatString("%llu", (unsigned long long)Round.Runs),
                  formatString("%5.1f%%", 100.0 * Round.HitRate),
                  formatString("%5.1f%%", 100.0 * Round.CumulativeHitRate),
                  formatString("%llu", (unsigned long long)Round.L1Hits),
                  formatString("%llu", (unsigned long long)Round.L2Hits),
                  formatByteSize(Round.RemoteFetchBytes),
                  formatByteSize(Round.RemotePublishBytes),
                  formatString("%llu",
                               (unsigned long long)Round.TracesCompiled),
                  formatString("%llu", (unsigned long long)Round.TtftP50),
                  formatString("%llu", (unsigned long long)Round.TtftP99)});
  }
  Table.print();
}

uint64_t finalP99(const FleetReport &Report) {
  return Report.Rounds.empty() ? 0 : Report.Rounds.back().TtftP99;
}

/// Per-round proof-work ledger: who vouched for promoted bodies at
/// prime time — the trusted checker (cheap) or the full prover.
void printLedger(const FleetReport &Report) {
  TablePrinter Table("proof-work ledger");
  Table.addRow({"round", "certs checked", "rejected", "proofs replayed",
                "cert-served"});
  for (size_t I = 0; I != Report.Rounds.size(); ++I) {
    const FleetRound &Round = Report.Rounds[I];
    uint64_t Served = Round.CertsChecked - Round.CertChecksFailed;
    uint64_t Work = Served + Round.ProofsReplayed;
    Table.addRow(
        {formatString("%zu", I + 1),
         formatString("%llu", (unsigned long long)Round.CertsChecked),
         formatString("%llu",
                      (unsigned long long)Round.CertChecksFailed),
         formatString("%llu", (unsigned long long)Round.ProofsReplayed),
         Work ? formatString("%5.1f%%", 100.0 * double(Served) /
                                            double(Work))
              : std::string("-")});
  }
  Table.print();
  std::printf("ledger: %llu cert check(s), %llu rejected, %llu full "
              "re-proof(s); %.1f%% of verified installs cert-served; "
              "%llu cert(s) tampered in L2; fill-time self-check %llu "
              "checked / %llu rejected\n",
              (unsigned long long)Report.CertsChecked,
              (unsigned long long)Report.CertChecksFailed,
              (unsigned long long)Report.ProofsReplayed,
              100.0 * Report.certServedRatio(),
              (unsigned long long)Report.CertsTampered,
              (unsigned long long)Report.CertFillChecks,
              (unsigned long long)Report.CertFillRejects);
}

} // namespace

int main(int Argc, char **Argv) {
  FleetOptions Opts;
  bool Baseline = true;
  bool Verify = false;
  unsigned Jobs =
      static_cast<unsigned>(support::ThreadPool::defaultWorkerCount());
  for (int I = 1; I < Argc; ++I) {
    auto next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    auto nextU64 = [&](uint64_t &Out) {
      const char *V = next();
      if (V)
        Out = std::strtoull(V, nullptr, 0);
      return V != nullptr;
    };
    auto nextU32 = [&](uint32_t &Out) {
      uint64_t Wide = 0;
      if (!nextU64(Wide))
        return false;
      Out = static_cast<uint32_t>(Wide);
      return true;
    };
    std::string Arg = Argv[I];
    bool Ok = true;
    if (Arg == "--machines")
      Ok = nextU32(Opts.Machines);
    else if (Arg == "--rounds")
      Ok = nextU32(Opts.Rounds);
    else if (Arg == "--apps")
      Ok = nextU32(Opts.Apps);
    else if (Arg == "--versions")
      Ok = nextU32(Opts.AppVersions);
    else if (Arg == "--libraries")
      Ok = nextU32(Opts.Libraries);
    else if (Arg == "--seed")
      Ok = nextU64(Opts.Seed);
    else if (Arg == "--l1-quota")
      Ok = nextU64(Opts.Tier.L1QuotaBytes);
    else if (Arg == "--l2-quota")
      Ok = nextU64(Opts.Tier.L2QuotaBytes);
    else if (Arg == "--zipf") {
      const char *V = next();
      Ok = V != nullptr;
      if (V)
        Opts.ZipfS = std::strtod(V, nullptr);
    } else if (Arg == "--jobs") {
      uint32_t N = 0;
      Ok = nextU32(N);
      Jobs = N;
    } else if (Arg == "--no-baseline")
      Baseline = false;
    else if (Arg == "--opt-tier")
      Opts.OptTier = true;
    else if (Arg == "--tamper-certs")
      Opts.OptTier = Opts.TamperCerts = true;
    else if (Arg == "--verify")
      Verify = true;
    else if (Arg == "--help") {
      std::printf(
          "usage: pcc-fleetsim [--machines N] [--rounds N] [--apps N]\n"
          "                    [--versions N] [--libraries N] [--zipf S]\n"
          "                    [--seed S] [--l1-quota B] [--l2-quota B]\n"
          "                    [--jobs N] [--no-baseline] [--opt-tier]\n"
          "                    [--tamper-certs] [--verify]\n");
      return 0;
    } else {
      std::fprintf(stderr, "pcc-fleetsim: unknown argument %s\n",
                   Argv[I]);
      return 2;
    }
    if (!Ok) {
      std::fprintf(stderr, "pcc-fleetsim: %s requires a value\n",
                   Arg.c_str());
      return 2;
    }
  }
  if (Verify)
    Baseline = true;

  std::unique_ptr<support::ThreadPool> Pool;
  if (Jobs > 1) {
    Pool = std::make_unique<support::ThreadPool>(Jobs);
    Opts.Pool = Pool.get();
  }

  std::printf("fleet: %u machines x %u rounds, %u apps x %u versions, "
              "%u shared libraries, zipf %.2f, %u job(s)\n",
              Opts.Machines, Opts.Rounds, Opts.Apps, Opts.AppVersions,
              Opts.Libraries, Opts.ZipfS, Jobs > 1 ? Jobs : 1);

  Opts.WithL2 = true;
  auto Tiered = runFleet(Opts);
  if (!Tiered) {
    std::fprintf(stderr, "pcc-fleetsim: %s\n",
                 Tiered.status().toString().c_str());
    return 1;
  }
  printReport("tiered (shared L2)", *Tiered);
  std::printf("shared L2: %llu cache file(s), %s; %llu absorbed remote "
              "failure(s)\n",
              (unsigned long long)Tiered->L2Files,
              formatByteSize(Tiered->L2Bytes).c_str(),
              (unsigned long long)Tiered->RemoteFailures);
  if (Opts.OptTier)
    printLedger(*Tiered);

  if (Verify && Opts.OptTier) {
    if (Opts.TamperCerts) {
      // Adversarial gate: tampering must have happened, the trusted
      // checker must have rejected tampered certificates (soundness
      // means a tampered blob can only be rejected — a pass would be a
      // false accept, surfacing as a CertificateInvalid quarantine and
      // a failed run), and every rejection must have been backstopped
      // by a full re-proof. The fill-time self-check must have flagged
      // tampered blobs on the way into machines' L1 tiers.
      if (Tiered->CertsTampered == 0 ||
          Tiered->CertChecksFailed == 0 ||
          Tiered->ProofsReplayed < Tiered->CertChecksFailed ||
          Tiered->CertFillRejects == 0) {
        std::fprintf(
            stderr,
            "pcc-fleetsim: FAIL: tamper leg: %llu tampered, %llu "
            "rejected, %llu re-proved, %llu fill rejects — expected "
            "tampering, rejections, proofs >= rejections and fill-time "
            "detection\n",
            (unsigned long long)Tiered->CertsTampered,
            (unsigned long long)Tiered->CertChecksFailed,
            (unsigned long long)Tiered->ProofsReplayed,
            (unsigned long long)Tiered->CertFillRejects);
        return 1;
      }
    } else {
      // Warm-fleet gate: with nobody tampering, the trusted checker
      // must carry the verification load — >= 90% of verified
      // promotion installs served without the prover, and zero
      // rejects (a reject here would be a checker/prover divergence).
      if (Tiered->certServedRatio() < 0.90 ||
          Tiered->CertChecksFailed != 0) {
        std::fprintf(
            stderr,
            "pcc-fleetsim: FAIL: proof-work ledger: %.1f%% cert-served "
            "(want >= 90%%), %llu unexpected rejection(s)\n",
            100.0 * Tiered->certServedRatio(),
            (unsigned long long)Tiered->CertChecksFailed);
        return 1;
      }
    }
  }

  if (!Baseline)
    return 0;

  FleetOptions BaseOpts = Opts;
  BaseOpts.WithL2 = false;
  auto NoL2 = runFleet(BaseOpts);
  if (!NoL2) {
    std::fprintf(stderr, "pcc-fleetsim: %s\n",
                 NoL2.status().toString().c_str());
    return 1;
  }
  printReport("baseline (no L2)", *NoL2);

  uint64_t TieredP99 = finalP99(*Tiered);
  uint64_t BaseP99 = finalP99(*NoL2);
  double TieredRate =
      double(Tiered->TotalHits) / double(Tiered->TotalRuns);
  double BaseRate = double(NoL2->TotalHits) / double(NoL2->TotalRuns);
  std::printf("summary: hit rate %.1f%% vs %.1f%% baseline; final-round "
              "ttft p99 %llu vs %llu cycles (%.2fx); convergence %s\n",
              100.0 * TieredRate, 100.0 * BaseRate,
              (unsigned long long)TieredP99,
              (unsigned long long)BaseP99,
              TieredP99 ? double(BaseP99) / double(TieredP99) : 0.0,
              Tiered->MonotoneConvergence ? "monotone" : "NON-MONOTONE");

  if (Verify) {
    if (!Tiered->MonotoneConvergence) {
      std::fprintf(stderr, "pcc-fleetsim: FAIL: tiered hit rate did not "
                           "converge monotonically\n");
      return 1;
    }
    if (TieredP99 >= BaseP99) {
      std::fprintf(stderr,
                   "pcc-fleetsim: FAIL: tiered final-round p99 ttft "
                   "(%llu) did not beat the no-L2 baseline (%llu)\n",
                   (unsigned long long)TieredP99,
                   (unsigned long long)BaseP99);
      return 1;
    }
    std::printf("verify: OK\n");
  }
  return 0;
}
